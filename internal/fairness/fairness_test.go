package fairness

import (
	"bytes"
	"testing"

	"ditto/internal/core"
	"ditto/internal/sim"
)

const missCost = 500 * sim.Microsecond

func newCluster(env *sim.Env) *core.Cluster {
	return core.NewCluster(env, core.DefaultOptions(500, 500*320))
}

func TestOwnTenantHitsAreFast(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("a", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		a.Set([]byte("k"), []byte("v"))
		start := p.Now()
		v, ok := a.Get([]byte("k"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("got %q ok=%v", v, ok)
		}
		if lat := p.Now() - start; lat >= missCost {
			t.Fatalf("own-tenant hit delayed: %d ns", lat)
		}
		if a.CrossHits != 0 {
			t.Fatal("own hit counted as cross-tenant")
		}
	})
	env.Run()
}

func TestCrossTenantHitsAreDelayed(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		a.Set([]byte("shared"), []byte("v"))

		start := p.Now()
		v, ok := b.Get([]byte("shared"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("cross-tenant read failed: %q %v", v, ok)
		}
		if lat := p.Now() - start; lat < missCost {
			t.Fatalf("free ride not delayed: %d ns < %d", lat, missCost)
		}
		if b.CrossHits != 1 || b.Delayed != 1 {
			t.Fatalf("counters: %+v", b)
		}
	})
	env.Run()
}

func TestOwnershipTransfersOnOverwrite(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		a.Set([]byte("k"), []byte("va"))
		b.Set([]byte("k"), []byte("vb")) // B now pays for it...
		start := p.Now()
		if v, _ := b.Get([]byte("k")); !bytes.Equal(v, []byte("vb")) {
			t.Fatalf("got %q", v)
		}
		if lat := p.Now() - start; lat >= missCost {
			t.Fatal("owner delayed on own object after overwrite")
		}
	})
	env.Run()
}

func TestBlockProbZeroDisablesDelaying(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		b.BlockProb = 0
		a.Set([]byte("k"), []byte("v"))
		start := p.Now()
		b.Get([]byte("k"))
		if lat := p.Now() - start; lat >= missCost {
			t.Fatal("delayed despite BlockProb=0")
		}
		if b.CrossHits != 1 || b.Delayed != 0 {
			t.Fatalf("counters: %+v", b)
		}
	})
	env.Run()
}

func TestFreeRidingBuysNothing(t *testing.T) {
	// The economic property: a tenant that never inserts sees effective
	// latency no better than running against storage directly.
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		owner := New(cl.NewClient(p), 1, missCost)
		rider := New(cl.NewClient(p), 2, missCost)
		for i := 0; i < 50; i++ {
			owner.Set([]byte{byte(i)}, []byte("v"))
		}
		start := p.Now()
		for i := 0; i < 50; i++ {
			rider.Get([]byte{byte(i)})
		}
		perOp := (p.Now() - start) / 50
		if perOp < missCost {
			t.Fatalf("free rider got %d ns/op, cheaper than storage %d", perOp, missCost)
		}
	})
	env.Run()
}
