package core

import "encoding/binary"

// Object block layout in the heap. The extension metadata lives directly
// after the fixed header so eviction can fetch slots' extensions with a
// single fixed-size READ per candidate without knowing key lengths
// (§4.4, "Metadata extensions"):
//
//	offset 0  keyLen (2 B) | valLen (4 B) | extLen (2 B)
//	offset 8  expiry (8 B, absolute virtual ns; 0 = no lease)
//	offset 16 tenant (1 B) | ver (6 B: client 2 B, seq 4 B) | reserved (1 B)
//	offset 24 extension metadata (extLen bytes, experts' segments in order)
//	then      key, then value
//
// The expiry and tenant fields generalize internal/fairness's one-byte
// value-prefix owner tag into the header proper: they are stamped at
// construction (Set) and never rewritten in place, so the read path
// stays zero-copy and a lease never needs a second CAS to install.
//
// ver is the image's incarnation stamp: a 48-bit value unique across
// every object image ever staged in the cluster (a cluster-assigned
// client id concatenated with the client's staging sequence number —
// deterministic, no RNG draw). It is what makes one-RTT speculative
// Gets sound: a location-cache hint remembers the stamp of the image it
// observed, and a speculative READ is a hit only when the block still
// carries EXACTLY that stamp. A reused block carries a different stamp
// (every staging is unique, including CAS-losing stagings that were
// never published), and a freed-but-not-yet-reused block has its stamp
// cleared by the freeing client (freeStampAsync in plan.go) — so a
// matching stamp proves the block still holds the same published image
// the hint was built from. ver 0 never validates.
const objHeader = 24

const (
	objExpiryOff = 8  // expiry stamp within the header
	objTenantOff = 16 // tenant tag within the header
	objVerOff    = 17 // incarnation stamp within the header (6 B)
)

// objBytes returns the exact byte size of an encoded object.
func objBytes(keyLen, valLen, extLen int) int {
	return objHeader + extLen + keyLen + valLen
}

// encodeObject serializes an object block.
func encodeObject(key, value, ext []byte, tenant TenantID, expiry int64, ver uint64) []byte {
	return encodeObjectInto(nil, key, value, ext, tenant, expiry, ver)
}

// encodeObjectInto is encodeObject building into buf (reused when it
// has capacity) — the allocation-free form pooled set plans use; every
// byte of the image is written, so a recycled buffer needs no clearing.
func encodeObjectInto(buf, key, value, ext []byte, tenant TenantID, expiry int64, ver uint64) []byte {
	buf = grow(buf, objBytes(len(key), len(value), len(ext)))
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[2:], uint32(len(value)))
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(ext)))
	binary.LittleEndian.PutUint64(buf[objExpiryOff:], uint64(expiry))
	buf[objTenantOff] = byte(tenant)
	binary.LittleEndian.PutUint16(buf[objVerOff:], uint16(ver>>32))
	binary.LittleEndian.PutUint32(buf[objVerOff+2:], uint32(ver))
	buf[objHeader-1] = 0
	copy(buf[objHeader:], ext)
	copy(buf[objHeader+len(ext):], key)
	copy(buf[objHeader+len(ext)+len(key):], value)
	return buf
}

// decodedObject is a parsed object block.
type decodedObject struct {
	key    []byte
	value  []byte
	ext    []byte
	tenant TenantID
	expiry int64  // absolute virtual ns; 0 = no lease
	ver    uint64 // incarnation stamp; 0 = cleared/freed or pre-stamp image
	ok     bool
}

// expired reports whether the object's lease (if any) has lapsed at
// virtual time now.
func (d *decodedObject) expired(now int64) bool {
	return d.expiry != 0 && d.expiry <= now
}

// decodeObject parses an object block image; ok=false when the image is
// malformed (e.g. a stale pointer led us to reused memory).
func decodeObject(buf []byte) decodedObject {
	if len(buf) < objHeader {
		return decodedObject{}
	}
	kl := int(binary.LittleEndian.Uint16(buf[0:]))
	vl := int(binary.LittleEndian.Uint32(buf[2:]))
	el := int(binary.LittleEndian.Uint16(buf[6:]))
	if objHeader+el+kl+vl > len(buf) {
		return decodedObject{}
	}
	return decodedObject{
		ext:    buf[objHeader : objHeader+el],
		key:    buf[objHeader+el : objHeader+el+kl],
		value:  buf[objHeader+el+kl : objHeader+el+kl+vl],
		tenant: TenantID(buf[objTenantOff]),
		expiry: int64(binary.LittleEndian.Uint64(buf[objExpiryOff:])),
		ver: uint64(binary.LittleEndian.Uint16(buf[objVerOff:]))<<32 |
			uint64(binary.LittleEndian.Uint32(buf[objVerOff+2:])),
		ok: true,
	}
}
