package lockverb_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/lockverb"
)

// TestFixture runs lockverb over its testdata package: verbs and
// exec.Run entry points issued while a sync mutex is held (directly or
// via defer Unlock) are flagged; release-before-issue is not.
func TestFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, lockverb.Analyzer, "../testdata/lockverb", "ditto/internal/lockverbfixture")
}
