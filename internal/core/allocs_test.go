//go:build !race

package core

import (
	"testing"

	"ditto/internal/sim"
)

// TestAllocsPerOpSteadyState enforces the zero-allocation hot-path
// contract: once the per-client plan pools, scratch buffers, and the
// sim's event heap are warm, a steady-state Get (via GetAppend with a
// reused destination) and an overwriting Set must allocate NOTHING.
// MGet keeps a small ceiling — its output (the vals/oks slices and
// one fresh copy per returned value) allocates by design — but the
// ceiling is tight enough that a single per-key regression (a closure
// capture, a rebuilt plan, an un-pooled buffer) trips it. MSet, which
// owns no outputs, is held to zero like the serial paths. The counts are meaningless under the race detector, so
// the -race build gets a skipping twin (allocs_race_test.go).
func TestAllocsPerOpSteadyState(t *testing.T) {
	env := sim.NewEnv(11)
	cl := NewCluster(env, DefaultOptions(1000, 1000*320))
	env.Go("meter", func(p *sim.Proc) {
		c := cl.NewClient(p)

		const batch = 32
		keys := make([][]byte, batch)
		pairs := make([]KV, batch)
		for i := 0; i < batch; i++ {
			keys[i] = key(i)
			pairs[i] = KV{Key: key(i), Value: value(i)}
		}
		dst := make([]byte, 0, 512)

		// Warm every pool the measured loops touch: plan free lists,
		// runner scratch, endpoint batches, the sim event heap, and the
		// hash-table buckets for every key the loops revisit.
		for r := 0; r < 3; r++ {
			c.MSet(pairs)
			c.MGet(keys)
			c.Set(keys[0], pairs[0].Value)
			dst, _ = c.GetAppend(dst[:0], keys[0])
		}

		gets := testing.AllocsPerRun(200, func() {
			dst, _ = c.GetAppend(dst[:0], keys[0])
		})
		sets := testing.AllocsPerRun(200, func() {
			c.Set(keys[0], pairs[0].Value)
		})
		mgets := testing.AllocsPerRun(50, func() {
			c.MGet(keys)
		})
		msets := testing.AllocsPerRun(50, func() {
			c.MSet(pairs)
		})
		t.Logf("allocs/op: get=%.1f set=%.1f mget(%d)=%.1f mset(%d)=%.1f",
			gets, sets, batch, mgets, batch, msets)
		if gets != 0 {
			t.Errorf("steady-state Get allocates %.1f objects/op, want 0", gets)
		}
		if sets != 0 {
			t.Errorf("steady-state Set allocates %.1f objects/op, want 0", sets)
		}
		if mgets > batch+4 {
			t.Errorf("MGet(%d) allocates %.1f objects/op, ceiling %d", batch, mgets, batch+4)
		}
		if msets != 0 {
			t.Errorf("steady-state MSet(%d) allocates %.1f objects/op, want 0", batch, msets)
		}

		// Tenant mode on: header stamping, the per-tenant accounting
		// cell, and TryMSet's shed check must add nothing to the same
		// steady-state paths.
		cl.SetTenantQuota(1, 1<<40)
		c.BindTenant(1)
		var err error
		for r := 0; r < 3; r++ {
			c.Set(keys[0], pairs[0].Value)
			dst, _ = c.GetAppend(dst[:0], keys[0])
			if err = c.TryMSet(pairs); err != nil {
				t.Fatalf("TryMSet under open quota: %v", err)
			}
		}
		tgets := testing.AllocsPerRun(200, func() {
			dst, _ = c.GetAppend(dst[:0], keys[0])
		})
		tsets := testing.AllocsPerRun(200, func() {
			c.Set(keys[0], pairs[0].Value)
		})
		tmsets := testing.AllocsPerRun(50, func() {
			err = c.TryMSet(pairs)
		})
		t.Logf("tenant-mode allocs/op: get=%.1f set=%.1f trymset(%d)=%.1f",
			tgets, tsets, batch, tmsets)
		if tgets != 0 {
			t.Errorf("tenant-mode Get allocates %.1f objects/op, want 0", tgets)
		}
		if tsets != 0 {
			t.Errorf("tenant-mode Set allocates %.1f objects/op, want 0", tsets)
		}
		if tmsets != 0 {
			t.Errorf("tenant-mode TryMSet(%d) allocates %.1f objects/op, want 0", batch, tmsets)
		}
	})
	env.Run()
}

// TestAllocsPerOpSteadyStateSpecGet holds the one-RTT speculative path
// to the same contract: once the hint is recorded and the spec-plan pool
// is warm, a hinted Get via GetAppend — Lookup, the speculative READ,
// in-place validation, metadata maintenance, and the hint refresh — must
// allocate NOTHING. The -race build gets a skipping twin
// (allocs_race_test.go).
func TestAllocsPerOpSteadyStateSpecGet(t *testing.T) {
	env := sim.NewEnv(12)
	opts := DefaultOptions(1000, 1000*320)
	opts.LocCacheSlots = 256
	cl := NewCluster(env, opts)
	env.Go("meter", func(p *sim.Proc) {
		c := cl.NewClient(p)
		k := key(0)
		c.Set(k, value(0))
		dst := make([]byte, 0, 512)
		for r := 0; r < 3; r++ { // warm the spec-plan pool and the hint
			dst, _ = c.GetAppend(dst[:0], k)
		}
		before := c.Stats.SpecGetHits
		gets := testing.AllocsPerRun(200, func() {
			dst, _ = c.GetAppend(dst[:0], k)
		})
		t.Logf("allocs/op: hinted get=%.1f", gets)
		if gets != 0 {
			t.Errorf("steady-state hinted Get allocates %.1f objects/op, want 0", gets)
		}
		// Prove the meter measured the speculative path, not a silent
		// fallback to the two-RTT walk.
		if c.Stats.SpecGetHits <= before {
			t.Error("measured loop never took the speculative path")
		}
		if c.Stats.SpecGetFallbacks != 0 {
			t.Errorf("fallbacks = %d, want 0", c.Stats.SpecGetFallbacks)
		}
	})
	env.Run()
}
