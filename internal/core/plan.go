package core

// The verb plans: each cache operation's one-sided verb sequence (§4.1),
// written ONCE as an exec.Plan and executed under either strategy.
//
//	Get:     bucket READ(s) → object READ(s)                → hit/miss/stale
//	SpecGet: ONE hinted object READ, validated in place     → hit/fall back
//	Set:     bucket READ(s) → object READ(s) → classify →
//	         object WRITE → publish CAS                     → done/noFree/casLost
//	Migrate: Set in insert-if-absent mode (absence verified
//	         in BOTH buckets, metadata carried over, post-
//	         publish duplicate sweep) → source delete CAS    → moved/skipped/retry
//	Delete:  bucket READs → object READs → delete CASes     → deleted?
//
// Serial traversal (exec.Serial) is lazy and reproduces the hand-written
// per-key paths verb for verb: a Get that hits in the main bucket never
// reads the backup bucket, an insert stops at the first bucket with a
// reclaimable slot. Doorbell traversal (exec.Doorbell) is eager — both
// buckets, then every candidate object, as one stage each — so N plans
// advance as shared doorbell batches. Complications (stale snapshot,
// lost CAS, full bucket) finish the plan with that outcome and the
// driver demotes the key to the serial retry loop.
//
// Metadata maintenance stays off the critical path exactly as before:
// plans issue only the synchronous critical-path verbs; frequency FAAs
// (via the FC cache), last_ts and insert-metadata WRITEs ride
// asynchronously from the completion hooks.

import (
	"bytes"

	"ditto/internal/cachealgo"
	"ditto/internal/exec"
	"ditto/internal/hashtable"
	"ditto/internal/history"
	"ditto/internal/loccache"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
)

// bucketVerb is the bucket READ of a plan stage, delivered into the
// plan-owned buffer at *buf (sized here, allocated at most once per
// pooled plan). A nil *buf pointer keeps the allocate-per-READ shape.
func (c *Client) bucketVerb(b int, buf *[]byte) exec.Verb {
	op := c.cl.Layout.BucketReadOp(b)
	if buf != nil {
		*buf = grow(*buf, op.Len)
		op.Buf = *buf
	}
	return exec.Verb{EP: c.ep, Op: op}
}

// objectVerb is the object READ behind a slot, delivered into the
// plan-owned buffer at *buf (see bucketVerb).
func (c *Client) objectVerb(s hashtable.Slot, buf *[]byte) exec.Verb {
	op := rdma.BatchOp{
		Kind: rdma.BatchRead, Addr: s.Atomic.Pointer(), Len: s.Atomic.SizeBytes(),
	}
	if buf != nil {
		*buf = grow(*buf, op.Len)
		op.Buf = *buf
	}
	return exec.Verb{EP: c.ep, Op: op}
}

// casVerb is a slot-atomic CAS.
func casVerb(c *Client, slotAddr uint64, expect, swap hashtable.AtomicField) exec.Verb {
	return exec.Verb{EP: c.ep, Op: rdma.BatchOp{
		Kind: rdma.BatchCAS, Addr: hashtable.AtomicAddr(slotAddr),
		Expect: uint64(expect), Swap: uint64(swap),
	}}
}

// ---------------------------------------------------- single verbs ----
//
// Not every remote access is a multi-verb sequence: metadata
// maintenance, ablation probes, and migration re-reads are lone verbs.
// They still belong to this file — the declare-once invariant (PR 3)
// says every verb the client issues is visible here, so changing a wire
// interaction never means hunting call sites. dittolint's verbplan
// analyzer enforces exactly that: a raw endpoint verb outside plan.go,
// internal/exec, internal/baselines, or the handle layer fails CI.

// readObject synchronously fetches the object behind a live slot.
func (c *Client) readObject(s hashtable.Slot) []byte {
	return c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
}

// issueRead synchronously issues one declared READ op (the op itself is
// built by an addressing owner such as extReadOp).
func (c *Client) issueRead(op rdma.BatchOp) []byte {
	return c.ep.Read(op.Addr, op.Len)
}

// metaWriteAsync rides metadata maintenance off the critical path with
// one asynchronous WRITE (completion ignored; §4.1 "stateless fields").
func (c *Client) metaWriteAsync(addr uint64, data []byte) {
	c.ep.WriteAsync(addr, data)
}

// freeStampAsync clears a published block's tenant+incarnation bytes
// with one asynchronous 8-byte WRITE before the block is freed, so a
// lingering image in freed-but-not-yet-reused memory can never validate
// a speculative read (object.go: ver 0 never validates). That closes the
// resurrection window for deleted/evicted keys and the stale-read window
// for superseded updates; block REUSE needs no stamp at all, since the
// next image's unique ver already mismatches every outstanding hint.
//
// MUST be called BEFORE alloc.Free of the same block — after the free,
// another client may already have reallocated and republished the
// address, and the stamp would corrupt a live object. Gated on specMode:
// with the location cache off nothing ever reads the stamp, and skipping
// the WRITE keeps the seed's verb shapes byte-for-byte.
func (c *Client) freeStampAsync(addr uint64) {
	if !c.cl.specMode() {
		return
	}
	c.ep.WriteAsync(addr+objTenantOff, c.stamp8[:])
}

// probeConventionalIndex models the conventional design's per-miss probe
// of a separate remote index over the history (DisableLWH ablation): one
// extra 8-byte READ against the history counter.
func (c *Client) probeConventionalIndex() {
	c.ep.Read(memnode.HistCounterAddr, 8)
}

// readObjects fetches the objects behind the given slots with one
// doorbell batch of READs (used by the resharder's scan pipeline).
func (c *Client) readObjects(slots []hashtable.Slot) [][]byte {
	if len(slots) == 0 {
		return nil
	}
	ops := make([]rdma.BatchOp, len(slots))
	for i, s := range slots {
		ops[i] = rdma.BatchOp{Kind: rdma.BatchRead, Addr: s.Atomic.Pointer(), Len: s.Atomic.SizeBytes()}
	}
	res := c.ep.PostBatch(ops)
	out := make([][]byte, len(slots))
	for i := range res {
		out[i] = res[i].Data
	}
	return out
}

// keyBuckets returns a key's main and backup bucket, in scan order.
func (c *Client) keyBuckets(kh uint64) [2]int {
	return [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)}
}

// stageEnd returns the exclusive end of one stage's next verb group:
// the single next item under lazy traversal, every remaining item under
// eager — the shared emission rule of all plan stages. next is the
// stage's progress cursor (advanced by Absorb), total its item count.
// Each Step emits the group [next, stageEnd) into the plan's own verbs
// scratch; the closure-per-stage emission helper this replaces was one
// of the hot path's top allocation sites.
func stageEnd(eager bool, next, total int) int {
	if eager {
		return total
	}
	return next + 1
}

// ------------------------------------------------------------------- Get ----

// getPlan states.
const (
	gBuckets = iota
	gObjects
	gDone
)

// getPlan is one Get attempt: stage bucket READs, stage candidate object
// READs, with the stale-snapshot fallback edge surfaced as the `stale`
// outcome (the driver re-runs a fresh attempt, bounded by getRetries).
type getPlan struct {
	c       *Client
	key     []byte
	kh      uint64
	fp      byte
	buckets [2]int

	st    int
	bi    int              // next bucket to absorb
	cands []hashtable.Slot // fingerprint-matching live slots, scan order
	ci    int              // next candidate to absorb

	histMatches []hashtable.Slot
	stale       bool

	// rnow is the attempt's reference time for lease-expiry checks,
	// captured at reset so a doorbell batch judges every key against one
	// clock reading.
	rnow int64

	hit  bool
	slot hashtable.Slot
	dec  decodedObject

	// Pooled scratch, kept across reset: verb-group emission, READ
	// delivery buffers (one per verb index), and bucket decoding.
	verbs    []exec.Verb
	bktBuf   [][]byte
	objBufs  [][]byte
	decSlots []hashtable.Slot
}

// reset re-aims the plan at key, keeping its scratch buffers.
func (pl *getPlan) reset(c *Client, key []byte) {
	kh := hashtable.KeyHash(key)
	pl.c, pl.key, pl.kh = c, key, kh
	pl.fp = hashtable.Fingerprint(kh)
	pl.buckets = c.keyBuckets(kh)
	pl.st, pl.bi, pl.ci = gBuckets, 0, 0
	pl.cands = pl.cands[:0]
	pl.histMatches = pl.histMatches[:0]
	pl.stale, pl.hit = false, false
	pl.rnow = c.p.Now()
	pl.slot, pl.dec = hashtable.Slot{}, decodedObject{}
}

func (c *Client) newGetPlan(key []byte) *getPlan {
	pl := &getPlan{}
	pl.reset(c, key)
	return pl
}

func (pl *getPlan) Step(eager bool) []exec.Verb {
	for {
		switch pl.st {
		case gBuckets:
			if pl.bi >= len(pl.buckets) {
				pl.st = gDone
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.bi; i < stageEnd(eager, pl.bi, len(pl.buckets)); i++ {
				pl.verbs = append(pl.verbs, pl.c.bucketVerb(pl.buckets[i], bufAt(&pl.bktBuf, i)))
			}
			return pl.verbs
		case gObjects:
			if pl.ci >= len(pl.cands) {
				pl.st = gBuckets
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.ci; i < stageEnd(eager, pl.ci, len(pl.cands)); i++ {
				pl.verbs = append(pl.verbs, pl.c.objectVerb(pl.cands[i], bufAt(&pl.objBufs, i)))
			}
			return pl.verbs
		default:
			return nil
		}
	}
}

func (pl *getPlan) Absorb(res []exec.Result) {
	switch pl.st {
	case gBuckets:
		for _, r := range res {
			b := pl.buckets[pl.bi]
			pl.bi++
			pl.decSlots = pl.c.cl.Layout.AppendBucket(pl.decSlots[:0], b, r.Data)
			for _, s := range pl.decSlots {
				switch {
				case s.Atomic.IsEmpty():
				case s.Atomic.IsHistory():
					if s.Hash == pl.kh {
						pl.histMatches = append(pl.histMatches, s)
					}
				case s.Atomic.FP() == pl.fp:
					pl.cands = append(pl.cands, s)
				}
			}
		}
		if pl.ci < len(pl.cands) {
			pl.st = gObjects
		}
	case gObjects:
		for _, r := range res {
			s := pl.cands[pl.ci]
			pl.ci++
			dec := decodeObject(r.Data)
			if !dec.ok {
				pl.stale = true // reused memory behind a stale slot snapshot
				continue
			}
			if !bytes.Equal(dec.key, pl.key) {
				continue // fingerprint collision
			}
			if pl.c.cl.tenantMode && dec.expired(pl.rnow) {
				// A lapsed lease reads as a miss immediately; reclaiming the
				// block is the eviction sampler's job (never a reader's —
				// the read path stays write-free).
				continue
			}
			pl.hit, pl.slot, pl.dec = true, s, dec
			pl.st = gDone
			return // first match wins; later candidates are stale copies
		}
	}
}

// --------------------------------------------------- Speculative Get ----

// specGetPlan states.
const (
	spRead = iota
	spDone
)

// specGetPlan is the one-RTT speculative Get behind a location-cache
// hint: ONE READ of the hinted block at its remembered size class, then
// in-place validation of the returned image against the hint — the
// 24-byte header must decode, the incarnation stamp must equal the
// hint's exactly (object.go explains why that is sufficient), the inline
// key must match, the tenant must match, and under tenantMode the lease
// must be live. Any failure leaves ok=false and the driver falls back to
// the ordinary two-RTT getPlan; a speculative plan NEVER retries or
// issues further verbs, so the hint-hit path is exactly one verb (pinned
// by TestSpecGetVerbBudget).
//
// Under Doorbell the plan is single-stage: its READ joins the batch's
// first doorbell alongside unhinted keys' bucket READs, and Step returns
// nil from round two on — no executor changes needed.
type specGetPlan struct {
	c    *Client
	key  []byte
	hint loccache.Hint

	// rnow is the attempt's reference time for the lease-expiry check,
	// captured at reset (same convention as getPlan).
	rnow int64

	st  int
	ok  bool
	dec decodedObject

	// Pooled scratch, kept across reset: verb-group emission and the READ
	// delivery buffer.
	verbs []exec.Verb
	buf   []byte
}

// reset re-aims the plan at key/hint, keeping its scratch buffers.
func (pl *specGetPlan) reset(c *Client, key []byte, h loccache.Hint) {
	pl.c, pl.key, pl.hint = c, key, h
	pl.rnow = c.p.Now()
	pl.st = spRead
	pl.ok = false
	pl.dec = decodedObject{}
}

func (c *Client) newSpecGetPlan(key []byte, h loccache.Hint) *specGetPlan {
	pl := &specGetPlan{}
	pl.reset(c, key, h)
	return pl
}

func (pl *specGetPlan) Step(eager bool) []exec.Verb {
	if pl.st != spRead {
		return nil
	}
	pl.buf = grow(pl.buf, pl.hint.Len)
	pl.verbs = append(pl.verbs[:0], exec.Verb{EP: pl.c.ep, Op: rdma.BatchOp{
		Kind: rdma.BatchRead, Addr: pl.hint.Addr, Len: pl.hint.Len, Buf: pl.buf,
	}})
	return pl.verbs
}

func (pl *specGetPlan) Absorb(res []exec.Result) {
	pl.st = spDone
	dec := decodeObject(res[0].Data)
	h := &pl.hint
	if !dec.ok || dec.ver == 0 || dec.ver != h.Ver ||
		!bytes.Equal(dec.key, pl.key) || dec.tenant != TenantID(h.Tenant) {
		return // block freed, reused, or never what we thought: fall back
	}
	if pl.c.cl.tenantMode && dec.expired(pl.rnow) {
		// Lapsed lease: fall back so the full plan applies the exact
		// lease-as-miss semantics (and its counting conventions).
		return
	}
	pl.ok, pl.dec = true, dec
}

// ------------------------------------------------------------------- Set ----

// setPlan states.
const (
	sBuckets = iota
	sObjects
	sWrite
	sCAS
	sSweepBuckets // migrate mode: post-publish duplicate sweep
	sSweepObjects
	sDone
)

// setPlan outcomes.
const (
	setPending = iota
	setDone    // published; migrate mode: insert survived the sweep
	setNoFree  // both buckets full of live objects and valid history
	setCASLost // publish CAS lost a race; staged object freed
	setPresent // migrate mode: key already present, or our copy yielded
)

// publish modes.
const (
	pUpdate = iota
	pInsert
)

// setCand is one fingerprint-matching slot, tagged with which of the
// key's buckets (0 = main, 1 = backup) held it.
type setCand struct {
	bkt  int
	slot hashtable.Slot
	dec  decodedObject
	got  bool
}

// setPlan is one Set attempt (§4.1 UPDATE/INSERT): stage bucket READs,
// stage candidate object READs, classify update-in-place vs insert with
// the same per-bucket precedence as the hand-written path (a bucket's
// key match beats its reclaimable slot beats the next bucket), then
// stage the object WRITE and the publishing CAS.
//
// In migrate mode the plan is the resharder's insert-if-absent: the
// absence check covers BOTH buckets before committing (a newer
// client-written copy in the backup bucket must win), the carried
// metadata is written instead of fresh metadata, and a post-publish
// duplicate sweep re-reads the buckets — a racing Set that read them
// before our CAS landed can have published the same key into a different
// slot; that copy is newer by construction, so ours yields.
type setPlan struct {
	c          *Client
	key, value []byte
	kh         uint64
	fp         byte
	size       int
	buckets    [2]int

	migrate            bool
	mExt               []byte
	mInsertTs, mLastTs int64
	mFreq              uint64

	// Tenancy: the header stamp of the staged object image (the client's
	// bound tenant and pending lease — or, in migrate mode, the moved
	// copy's carried values), the attempt's reference time for expiry
	// checks, and expUpd marking an update whose matched copy had an
	// EXPIRED lease — staged and finished with fresh metadata, as an
	// insert would be (a dead object is not "accessed" by replacing it).
	tenant TenantID
	expiry int64
	rnow   int64
	expUpd bool

	st          int
	lastEager   bool // traversal mode of the in-flight group
	bi          int
	doneBkt     int              // first bucket whose post-candidate logic hasn't run
	scanned     []hashtable.Slot // every slot seen (bucketEvict fallback)
	bucketSlots [2][]hashtable.Slot
	cands       []setCand
	ci          int

	mode    int
	updSlot hashtable.Slot
	updDec  decodedObject
	insSlot hashtable.Slot
	haveIns bool

	now  int64
	addr uint64
	ver  uint64 // incarnation stamp of the staged image (nextVer at stage)
	data []byte
	want hashtable.AtomicField

	outcome  int
	slotAddr uint64 // published slot (migrate: undo handle with `want`)

	swBi    int
	swCands []hashtable.Slot
	swi     int

	// Pooled scratch, kept across reset: verb-group emission, READ
	// delivery buffers, bucket decoding, and the extension/object-image
	// build buffers (extBuf backs the ext passed to stage; data backs
	// the staged WRITE and is retained until the publishing CAS).
	verbs    []exec.Verb
	bktBuf   [][]byte
	objBufs  [][]byte
	decSlots []hashtable.Slot
	extBuf   []byte
}

// reset re-aims the plan at key/value in normal (non-migrate) mode,
// keeping its scratch buffers.
func (pl *setPlan) reset(c *Client, key, value []byte) {
	kh := hashtable.KeyHash(key)
	pl.c, pl.key, pl.value, pl.kh = c, key, value, kh
	pl.fp = hashtable.Fingerprint(kh)
	pl.size = objBytes(len(key), len(value), c.cl.totalExt)
	pl.buckets = c.keyBuckets(kh)
	pl.migrate, pl.mExt = false, nil
	pl.mInsertTs, pl.mLastTs, pl.mFreq = 0, 0, 0
	pl.tenant, pl.expiry = c.tenant, c.nextExpiry
	pl.rnow = c.p.Now()
	pl.expUpd = false
	pl.st, pl.lastEager = sBuckets, false
	pl.bi, pl.doneBkt, pl.ci = 0, 0, 0
	pl.scanned = pl.scanned[:0]
	pl.bucketSlots[0] = pl.bucketSlots[0][:0]
	pl.bucketSlots[1] = pl.bucketSlots[1][:0]
	pl.cands = pl.cands[:0]
	pl.mode = pUpdate
	pl.updSlot, pl.insSlot = hashtable.Slot{}, hashtable.Slot{}
	pl.updDec = decodedObject{}
	pl.haveIns = false
	pl.now, pl.addr, pl.ver = 0, 0, 0
	pl.data = pl.data[:0]
	pl.want = 0
	pl.outcome = setPending
	pl.slotAddr = 0
	pl.swBi, pl.swi = 0, 0
	pl.swCands = pl.swCands[:0]
}

func (c *Client) newSetPlan(key, value []byte) *setPlan {
	pl := &setPlan{}
	pl.reset(c, key, value)
	return pl
}

// newMigrateSetPlan builds the insert-if-absent flavour carrying the
// access metadata — and the tenant/lease header stamp — the key had on
// its old memory node.
func (c *Client) newMigrateSetPlan(key, value, ext []byte, insertTs, lastTs int64,
	freq uint64, tenant TenantID, expiry int64) *setPlan {
	pl := c.newSetPlan(key, value)
	pl.migrate = true
	pl.mExt, pl.mInsertTs, pl.mLastTs, pl.mFreq = ext, insertTs, lastTs, freq
	pl.tenant, pl.expiry = tenant, expiry
	return pl
}

func (pl *setPlan) Step(eager bool) []exec.Verb {
	pl.lastEager = eager
	for {
		switch pl.st {
		case sBuckets:
			if pl.bi >= len(pl.buckets) {
				pl.finishScan()
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.bi; i < stageEnd(eager, pl.bi, len(pl.buckets)); i++ {
				pl.verbs = append(pl.verbs, pl.c.bucketVerb(pl.buckets[i], bufAt(&pl.bktBuf, i)))
			}
			return pl.verbs
		case sObjects:
			if pl.ci >= len(pl.cands) {
				pl.st = sBuckets
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.ci; i < stageEnd(eager, pl.ci, len(pl.cands)); i++ {
				pl.verbs = append(pl.verbs, pl.c.objectVerb(pl.cands[i].slot, bufAt(&pl.objBufs, i)))
			}
			return pl.verbs
		case sWrite:
			pl.verbs = append(pl.verbs[:0], exec.Verb{EP: pl.c.ep, Op: rdma.BatchOp{
				Kind: rdma.BatchWrite, Addr: pl.addr, Data: pl.data,
			}})
			return pl.verbs
		case sCAS:
			target := pl.insSlot
			if pl.mode == pUpdate {
				target = pl.updSlot
			}
			pl.verbs = append(pl.verbs[:0], casVerb(pl.c, target.Addr, target.Atomic, pl.want))
			return pl.verbs
		case sSweepBuckets:
			if pl.swBi >= len(pl.buckets) {
				pl.outcome = setDone // no duplicate: the insert stands
				pl.st = sDone
				continue
			}
			// Migrate-mode only (cold): no plan-owned delivery buffer.
			pl.verbs = pl.verbs[:0]
			for i := pl.swBi; i < stageEnd(eager, pl.swBi, len(pl.buckets)); i++ {
				pl.verbs = append(pl.verbs, pl.c.bucketVerb(pl.buckets[i], nil))
			}
			return pl.verbs
		case sSweepObjects:
			if pl.swi >= len(pl.swCands) {
				pl.st = sSweepBuckets
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.swi; i < stageEnd(eager, pl.swi, len(pl.swCands)); i++ {
				pl.verbs = append(pl.verbs, pl.c.objectVerb(pl.swCands[i], nil))
			}
			return pl.verbs
		default:
			return nil
		}
	}
}

func (pl *setPlan) Absorb(res []exec.Result) {
	switch pl.st {
	case sBuckets:
		for _, r := range res {
			b := pl.buckets[pl.bi]
			slots := pl.c.cl.Layout.AppendBucket(pl.bucketSlots[pl.bi][:0], b, r.Data)
			pl.bucketSlots[pl.bi] = slots
			pl.scanned = append(pl.scanned, slots...)
			for i := range slots {
				s := slots[i]
				if s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != pl.fp {
					continue
				}
				pl.cands = append(pl.cands, setCand{bkt: pl.bi, slot: s})
			}
			pl.bi++
		}
		if pl.ci < len(pl.cands) {
			pl.st = sObjects
			return
		}
		pl.classifyThrough(pl.bi)
	case sObjects:
		for _, r := range res {
			cand := &pl.cands[pl.ci]
			pl.ci++
			cand.dec = decodeObject(r.Data)
			cand.got = true
			// Lazy traversal commits at the FIRST key match, before later
			// candidates (or the next bucket) are even read — exactly the
			// hand-written scan. Eager traversal decodes everything first
			// and lets classifyThrough apply the per-bucket precedence.
			if !pl.lastEager && cand.dec.ok && bytes.Equal(cand.dec.key, pl.key) {
				if pl.migrate {
					pl.outcome = setPresent // newer copy already here; it wins
					pl.st = sDone
				} else {
					if pl.c.cl.tenantMode && cand.dec.expired(pl.rnow) {
						pl.expUpd = true
					}
					pl.startUpdate(*cand)
				}
				return
			}
		}
		if pl.ci < len(pl.cands) {
			return // lazy traversal: more candidates to read
		}
		pl.classifyThrough(pl.bi)
	case sWrite:
		pl.st = sCAS
	case sCAS:
		target := pl.insSlot
		if pl.mode == pUpdate {
			target = pl.updSlot
		}
		if !res[0].Swapped {
			pl.c.alloc.Free(pl.addr, pl.size)
			pl.outcome = setCASLost
			pl.st = sDone
			return
		}
		pl.slotAddr = target.Addr
		// Block ownership transferred: charge the new image to the
		// stamped tenant, credit a superseded block back to ITS tenant
		// (cross-tenant updates move the bytes between them).
		pl.c.accountTenant(pl.tenant, int64(pl.want.SizeBytes()))
		if pl.mode == pUpdate {
			pl.c.accountTenant(pl.updDec.tenant, -int64(pl.updSlot.Atomic.SizeBytes()))
			if pl.expUpd {
				// The superseded copy's lease had lapsed: finish as an
				// insert (free the dead block, drop its stale FC delta,
				// fresh slot metadata) — replacing a dead object is not an
				// access to it.
				pl.c.freeStampAsync(pl.updSlot.Atomic.Pointer())
				pl.c.alloc.Free(pl.updSlot.Atomic.Pointer(), pl.updSlot.Atomic.SizeBytes())
				pl.c.finishInsert(target.Addr, pl.kh, pl.now)
			} else {
				pl.c.finishUpdate(pl.updSlot, len(pl.key), pl.now)
			}
			pl.outcome = setDone
			pl.st = sDone
			return
		}
		if !pl.migrate {
			pl.c.finishInsert(target.Addr, pl.kh, pl.now)
			pl.outcome = setDone
			pl.st = sDone
			return
		}
		pl.c.fc.Forget(target.Addr)
		pl.c.ht.WriteMetaOnInsert(target.Addr, pl.kh, pl.mInsertTs, pl.mLastTs, pl.mFreq)
		pl.st = sSweepBuckets
	case sSweepBuckets:
		for _, r := range res {
			b := pl.buckets[pl.swBi]
			pl.swBi++
			pl.decSlots = pl.c.cl.Layout.AppendBucket(pl.decSlots[:0], b, r.Data)
			for _, s := range pl.decSlots {
				if s.Addr == pl.slotAddr || s.Atomic.IsEmpty() || s.Atomic.IsHistory() ||
					s.Atomic.FP() != pl.fp {
					continue
				}
				pl.swCands = append(pl.swCands, s)
			}
		}
		if pl.swi < len(pl.swCands) {
			pl.st = sSweepObjects
		}
	case sSweepObjects:
		for _, r := range res {
			pl.swi++
			dec := decodeObject(r.Data)
			if dec.ok && bytes.Equal(dec.key, pl.key) {
				// A racing write published the same key into another slot
				// after our CAS; that copy is newer — ours must yield.
				pl.c.dropMigrated(pl.slotAddr, pl.want, pl.tenant)
				pl.outcome = setPresent
				pl.st = sDone
				return
			}
		}
	}
}

// classifyThrough runs the post-candidate classification for every bucket
// read so far (buckets [doneBkt, upTo)), with the shared precedence: a
// bucket's key match beats its reclaimable slot beats the next bucket. In
// migrate mode a match anywhere wins first (absence must cover both
// buckets) and the reclaimable slot is only committed once the scan is
// complete.
func (pl *setPlan) classifyThrough(upTo int) {
	if pl.migrate {
		for i := range pl.cands {
			c := &pl.cands[i]
			if c.got && c.dec.ok && bytes.Equal(c.dec.key, pl.key) {
				pl.outcome = setPresent // newer copy already here; it wins
				pl.st = sDone
				return
			}
		}
		for b := pl.doneBkt; b < upTo; b++ {
			if !pl.haveIns {
				pl.findFree(b)
			}
		}
		pl.doneBkt = upTo
		if upTo >= len(pl.buckets) {
			pl.finishScan()
		}
		// else: Step continues with the next bucket.
		return
	}
	for b := pl.doneBkt; b < upTo; b++ {
		for i := range pl.cands {
			c := &pl.cands[i]
			if c.bkt != b || !c.got {
				continue
			}
			if c.dec.ok && bytes.Equal(c.dec.key, pl.key) {
				if pl.c.cl.tenantMode && c.dec.expired(pl.rnow) {
					pl.expUpd = true
				}
				pl.startUpdate(*c)
				return
			}
		}
		pl.doneBkt = b + 1
		if pl.findFree(b) {
			pl.startInsert() // insert into the main bucket when possible
			return
		}
	}
	if upTo >= len(pl.buckets) {
		pl.finishScan()
	}
}

// findFree searches bucket b for the first reclaimable slot.
func (pl *setPlan) findFree(b int) bool {
	if pl.haveIns {
		return true
	}
	for i := range pl.bucketSlots[b] {
		if pl.c.hist.Reclaimable(pl.bucketSlots[b][i]) {
			pl.insSlot = pl.bucketSlots[b][i]
			pl.haveIns = true
			return true
		}
	}
	return false
}

// finishScan ends the bucket scan without an update match: commit the
// insert when a reclaimable slot was found, else report full buckets.
func (pl *setPlan) finishScan() {
	if pl.haveIns {
		pl.startInsert()
		return
	}
	pl.outcome = setNoFree
	pl.st = sDone
}

// startUpdate stages the out-of-place UPDATE: write the new value to a
// fresh block and CAS the slot's pointer (as in RACE hashing).
func (pl *setPlan) startUpdate(cand setCand) {
	pl.mode = pUpdate
	pl.updSlot, pl.updDec = cand.slot, cand.dec
	pl.stage(pl.updSlot.Atomic.FP())
}

// startInsert stages the INSERT into the claimed reclaimable slot.
func (pl *setPlan) startInsert() {
	pl.mode = pInsert
	pl.stage(pl.fp)
}

// stage allocates the object block (may evict, with serial verbs — the
// same off-plan work the hand-written paths did between stages), builds
// its image and the publishing atomic, and advances to the WRITE stage.
func (pl *setPlan) stage(fp byte) {
	c := pl.c
	pl.now = c.p.Now()
	pl.addr = c.allocOrEvict(pl.size)
	var ext []byte
	switch {
	case pl.mode == pUpdate && pl.expUpd:
		// Superseding an EXPIRED copy: the lease lapsed, so its access
		// history is void — stage fresh metadata exactly as an insert.
		pl.extBuf = c.initExts(pl.extBuf, pl.size, pl.now)
		ext = pl.extBuf
	case pl.mode == pUpdate:
		pl.extBuf = c.updateExt(pl.extBuf, pl.updSlot, pl.updDec, pl.size, pl.now)
		ext = pl.extBuf
	case pl.migrate:
		// The extension layout matches across nodes (same expert list), so
		// the old node's expert metadata transfers verbatim; pad or trim
		// defensively in case configurations ever diverge.
		pl.extBuf = grow(pl.extBuf, c.cl.totalExt)
		n := copy(pl.extBuf, pl.mExt)
		clear(pl.extBuf[n:])
		ext = pl.extBuf
	default:
		pl.extBuf = c.initExts(pl.extBuf, pl.size, pl.now)
		ext = pl.extBuf
	}
	// Every staged image gets a fresh incarnation stamp — unconditionally,
	// because nextVer is a plain counter (no RNG, no verbs) and an
	// unconditional stamp keeps the image layout identical whether or not
	// speculative Gets are enabled.
	pl.ver = c.nextVer()
	pl.data = encodeObjectInto(pl.data, pl.key, pl.value, ext, pl.tenant, pl.expiry, pl.ver)
	pl.want = hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(pl.size), pl.addr)
	pl.st = sWrite
}

// ---------------------------------------------------------------- Delete ----

// delPlan states.
const (
	dBuckets = iota
	dObjects
	dCAS
	dDone
)

// delPlan removes every live copy of a key: stage bucket READs, stage
// candidate object READs, stage delete CASes. The scan covers BOTH
// buckets to completion rather than stopping at the first match: a
// reshard's migration window can briefly leave two live copies of a key,
// and deleting only the first would let the survivor resurrect it. A
// lost CAS means someone else deleted or replaced that copy — keep going.
type delPlan struct {
	c       *Client
	key     []byte
	kh      uint64
	fp      byte
	buckets [2]int

	st      int
	bi      int
	cands   []hashtable.Slot
	ci      int
	matches []hashtable.Slot
	mi      int

	// matchMeta parallels matches: the tenant each matched copy is
	// charged to, and whether its lease had lapsed — an expired copy is
	// still CASed away and freed, but does not count toward `deleted`
	// (observationally it was already gone; the TTL≡Delete property test
	// pins exactly this).
	matchMeta []delMatch
	rnow      int64

	deleted bool

	// Pooled scratch, kept across reset (see getPlan).
	verbs    []exec.Verb
	bktBuf   [][]byte
	objBufs  [][]byte
	decSlots []hashtable.Slot
}

// delMatch is the per-match tenancy view of a delPlan candidate.
type delMatch struct {
	tenant  TenantID
	expired bool
}

// reset re-aims the plan at key, keeping its scratch buffers.
func (pl *delPlan) reset(c *Client, key []byte) {
	kh := hashtable.KeyHash(key)
	pl.c, pl.key, pl.kh = c, key, kh
	pl.fp = hashtable.Fingerprint(kh)
	pl.buckets = c.keyBuckets(kh)
	pl.st, pl.bi, pl.ci, pl.mi = dBuckets, 0, 0, 0
	pl.cands = pl.cands[:0]
	pl.matches = pl.matches[:0]
	pl.matchMeta = pl.matchMeta[:0]
	pl.rnow = c.p.Now()
	pl.deleted = false
}

func (c *Client) newDelPlan(key []byte) *delPlan {
	pl := &delPlan{}
	pl.reset(c, key)
	return pl
}

func (pl *delPlan) Step(eager bool) []exec.Verb {
	for {
		switch pl.st {
		case dBuckets:
			if pl.bi >= len(pl.buckets) {
				if pl.mi < len(pl.matches) {
					pl.st = dCAS
					continue
				}
				pl.st = dDone
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.bi; i < stageEnd(eager, pl.bi, len(pl.buckets)); i++ {
				pl.verbs = append(pl.verbs, pl.c.bucketVerb(pl.buckets[i], bufAt(&pl.bktBuf, i)))
			}
			return pl.verbs
		case dObjects:
			if pl.ci >= len(pl.cands) {
				pl.st = dBuckets
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.ci; i < stageEnd(eager, pl.ci, len(pl.cands)); i++ {
				pl.verbs = append(pl.verbs, pl.c.objectVerb(pl.cands[i], bufAt(&pl.objBufs, i)))
			}
			return pl.verbs
		case dCAS:
			if pl.mi >= len(pl.matches) {
				pl.st = dObjects // lazy: resume the candidate scan where it left off
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.mi; i < stageEnd(eager, pl.mi, len(pl.matches)); i++ {
				pl.verbs = append(pl.verbs, casVerb(pl.c, pl.matches[i].Addr, pl.matches[i].Atomic, 0))
			}
			return pl.verbs
		default:
			return nil
		}
	}
}

func (pl *delPlan) Absorb(res []exec.Result) {
	switch pl.st {
	case dBuckets:
		for _, r := range res {
			b := pl.buckets[pl.bi]
			pl.bi++
			pl.decSlots = pl.c.cl.Layout.AppendBucket(pl.decSlots[:0], b, r.Data)
			for _, s := range pl.decSlots {
				if s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != pl.fp {
					continue
				}
				pl.cands = append(pl.cands, s)
			}
		}
		if pl.ci < len(pl.cands) {
			pl.st = dObjects
		}
	case dObjects:
		for _, r := range res {
			s := pl.cands[pl.ci]
			pl.ci++
			dec := decodeObject(r.Data)
			if dec.ok && bytes.Equal(dec.key, pl.key) {
				pl.matches = append(pl.matches, s)
				pl.matchMeta = append(pl.matchMeta, delMatch{
					tenant:  dec.tenant,
					expired: pl.c.cl.tenantMode && dec.expired(pl.rnow),
				})
			}
		}
		if pl.mi < len(pl.matches) {
			pl.st = dCAS // serial path CASes each match as it is found
		}
	case dCAS:
		for _, r := range res {
			s, m := pl.matches[pl.mi], pl.matchMeta[pl.mi]
			pl.mi++
			if r.Swapped {
				pl.c.freeStampAsync(s.Atomic.Pointer())
				pl.c.alloc.Free(s.Atomic.Pointer(), s.Atomic.SizeBytes())
				pl.c.fc.Forget(s.Addr)
				pl.c.accountTenant(m.tenant, -int64(s.Atomic.SizeBytes()))
				if !m.expired {
					pl.deleted = true
				}
			}
			// On a lost CAS race someone else deleted or replaced this
			// copy; keep scanning for further copies either way.
		}
	}
}

// ------------------------------------------------------------- Eviction ----

// evictPlan states.
const (
	evSample = iota
	evExt
	evFAA
	evCAS
	evLWH
	evDone
)

// evictPlan outcomes.
const (
	evictPending = iota
	evictWon     // a victim was reclaimed (block freed, history inserted)
	evictNone    // the sample window held no live object
	evictLost    // the victim CAS lost a race; resample
)

// evictPlan is one sample-based eviction attempt (§4.2) as a verb plan:
// stage the sample-window READ(s), stage any extension-metadata READs,
// then — once every expert has nominated and the pre-drawn deciding
// expert picked the victim — stage the history-ID FAA and the victim CAS
// (plain CAS-to-empty when adaptive caching is off). The sample start
// and the deciding expert are drawn from the client RNG at CONSTRUCTION
// time, so a batch of plans consumes the same random sequence whichever
// strategy executes it — the hinge of the Serial/Doorbell equivalence.
//
// CAS losses and empty windows finish the plan with that outcome; the
// drivers (evictOne, evictBatch) resample with a fresh plan, bounded by
// evictAttempts. fullScan marks a window that covered the whole table:
// an empty outcome is then definitive (nothing evictable), not a miss
// of the sample.
type evictPlan struct {
	c        *Client
	k        int
	start    int
	window   int
	deciding int
	now      int64 // priority-evaluation time, fixed at construction
	fullScan bool

	// Tenancy: overQ snapshots the over-quota tenant set at reset (one
	// consistent set per batch under either strategy — evictBatch
	// acquires every plan before running any); expVictim marks a victim
	// reclaimed because its lease lapsed — a plain CAS-to-empty with no
	// history entry and no expert blamed, the Delete-equivalent form.
	overQ     uint64
	expVictim bool

	st        int
	sampleOps []rdma.BatchOp
	slots     []hashtable.Slot
	cands     []candidate
	ei        int // next candidate ext READ to absorb

	victim candidate
	bitmap uint64
	prio   []float64
	histID uint64

	outcome int

	// Pooled scratch, kept across reset: verb-group emission, sample and
	// extension READ delivery buffers, and the per-expert nominee list.
	verbs   []exec.Verb
	sampBuf [][]byte
	extBufs [][]byte
	nomBuf  []int
}

// newEvictPlan draws the attempt's randomness (window start, then the
// deciding expert — PickExpert depends only on the current weights, not
// on the sample, so it can be drawn up front) and precomputes the sample
// verbs. Construction order therefore fixes the random sequence of a
// batch regardless of execution strategy; the priority-evaluation time
// is captured here too, so time-dependent experts (LRFU, Hyperbolic)
// rank candidates identically under either strategy.
func (c *Client) newEvictPlan() *evictPlan {
	pl := &evictPlan{}
	pl.reset(c)
	return pl
}

// reset re-draws the attempt's randomness in construction order (window
// start, then deciding expert — pooling must consume the client RNG
// exactly as a fresh plan would) and rebuilds the sample verbs into the
// plan's scratch.
func (pl *evictPlan) reset(c *Client) {
	pl.c = c
	pl.k = c.cl.opts.SampleK
	pl.window = c.evictWindow()
	pl.now = c.p.Now()
	pl.st = evSample
	pl.ei = 0
	pl.slots = pl.slots[:0]
	pl.cands = pl.cands[:0]
	pl.victim = candidate{}
	pl.bitmap = 0
	pl.prio = pl.prio[:0]
	pl.histID = 0
	pl.outcome = evictPending
	n := c.cl.Layout.NumSlots()
	pl.start = c.p.Rand().Intn(n)
	pl.deciding = 0
	if c.adapt != nil {
		pl.deciding = c.adapt.PickExpert(c.p.Rand())
	}
	// Snapshotted AFTER the RNG draws (it consumes none, so the random
	// sequence is untouched) and at reset time, so every plan of a batch
	// judges quotas against the same aggregation.
	pl.overQ = 0
	pl.expVictim = false
	if c.cl.tenantMode {
		pl.overQ = c.cl.overQuotaMask()
	}
	pl.fullScan = pl.window >= n
	pl.sampleOps = c.cl.Layout.AppendSampleOps(pl.sampleOps[:0], pl.start, pl.window)
	for i := range pl.sampleOps {
		b := bufAt(&pl.sampBuf, i)
		*b = grow(*b, pl.sampleOps[i].Len)
		pl.sampleOps[i].Buf = *b
	}
}

// evictWindow sizes the sample READ so that ~SampleK live objects are
// expected in it at the table's CURRENT occupancy — sizing against
// ExpectedObjects instead (the design load) made near-empty tables
// sample tiny windows that mostly hold empty slots, burning an attempt
// (and a READ) per resample. The live count is estimated from the heap
// accounting divided by the running victim-size average (seeded at one
// block, so before any eviction the estimate is an upper bound on the
// object count and the window errs small — bounded by resampling). The
// window is clamped to the whole table; a full-table sample that finds
// nothing live is then proof that nothing is evictable.
func (c *Client) evictWindow() int {
	k, n := c.cl.opts.SampleK, c.cl.Layout.NumSlots()
	objBlocks := c.cl.avgVictimBlocks
	if objBlocks < 1 {
		objBlocks = 1
	}
	live := int(float64(c.cl.MN.UsedBytes) / (objBlocks * memnode.BlockSize))
	if live > c.cl.opts.ExpectedObjects {
		live = c.cl.opts.ExpectedObjects
	}
	if live < 1 {
		live = 1
	}
	window := k * (n/live + 1)
	if window > n {
		window = n
	}
	return window
}

func (pl *evictPlan) Step(eager bool) []exec.Verb {
	for {
		switch pl.st {
		case evSample:
			// No short-circuit between the (at most two) wrap-around READs:
			// emit them as one group under either traversal, exactly as the
			// synchronous Sample issues them back to back.
			pl.verbs = pl.verbs[:0]
			for _, op := range pl.sampleOps {
				pl.verbs = append(pl.verbs, exec.Verb{EP: pl.c.ep, Op: op})
			}
			return pl.verbs
		case evExt:
			if pl.ei >= len(pl.cands) {
				pl.nominate()
				continue
			}
			pl.verbs = pl.verbs[:0]
			for i := pl.ei; i < stageEnd(eager, pl.ei, len(pl.cands)); i++ {
				op := pl.c.extReadOp(pl.cands[i].slot)
				b := bufAt(&pl.extBufs, i)
				*b = grow(*b, op.Len)
				op.Buf = *b
				pl.verbs = append(pl.verbs, exec.Verb{EP: pl.c.ep, Op: op})
			}
			return pl.verbs
		case evFAA:
			pl.verbs = append(pl.verbs[:0], exec.Verb{EP: pl.c.ep, Op: pl.c.hist.NextIDOp()})
			return pl.verbs
		case evCAS:
			swap := hashtable.AtomicField(0)
			if pl.c.adapt != nil && !pl.expVictim {
				swap = history.EntryFor(pl.victim.slot, pl.histID)
			}
			pl.verbs = append(pl.verbs[:0], casVerb(pl.c, pl.victim.slot.Addr, pl.victim.slot.Atomic, swap))
			return pl.verbs
		case evLWH:
			// DisableLWH ablation (cold): a conventional remote FIFO history
			// costs an actual queue enqueue — FAA the tail, WRITE the entry.
			pl.verbs = append(pl.verbs[:0],
				exec.Verb{EP: pl.c.ep, Op: rdma.BatchOp{
					Kind: rdma.BatchFAA, Addr: memnode.HistCounterAddr + 8, Delta: 1,
				}},
				exec.Verb{EP: pl.c.ep, Op: rdma.BatchOp{
					Kind: rdma.BatchWrite, Addr: memnode.HistCounterAddr + 16,
					//dittolint:allow hotalloc (DisableLWH ablation branch: cold, runs only with the flag set)
					Data: make([]byte, 40),
				}})
			return pl.verbs
		default:
			return nil
		}
	}
}

func (pl *evictPlan) Absorb(res []exec.Result) {
	c := pl.c
	switch pl.st {
	case evSample:
		for i, r := range res {
			pl.slots = c.cl.Layout.AppendSlots(pl.slots, pl.sampleOps[i].Addr, r.Data)
		}
		c.Stats.SampledSlots += int64(len(pl.slots))
		for _, s := range pl.slots {
			if cand, ok := c.liveCandidate(s); ok {
				pl.cands = append(pl.cands, cand)
			}
		}
		if len(pl.cands) == 0 {
			pl.outcome = evictNone
			pl.st = evDone
			return
		}
		if c.needsExtRead() {
			pl.st = evExt
			return
		}
		pl.nominate()
	case evExt:
		for _, r := range res {
			c.applyExt(&pl.cands[pl.ei], r.Data)
			pl.ei++
		}
	case evFAA:
		pl.histID = c.hist.AbsorbID(res[0].Old)
		pl.st = evCAS
	case evCAS:
		if !res[0].Swapped {
			pl.outcome = evictLost // raced with another client; resample
			pl.st = evDone
			return
		}
		if c.adapt != nil && !pl.expVictim {
			c.hist.FinishInsert(pl.victim.slot.Addr, pl.bitmap)
			if c.cl.opts.DisableLWH {
				pl.st = evLWH
				return
			}
		}
		pl.finishWin()
	case evLWH:
		pl.finishWin()
	}
}

// nominate runs the local half of the attempt once the sample (and any
// extension metadata) is in: every expert nominates its lowest-priority
// candidate, the pre-drawn deciding expert's nominee becomes the victim,
// and the expert bitmap records who shares the blame. Advances to the
// history FAA (adaptive) or straight to the victim CAS.
func (pl *evictPlan) nominate() {
	c := pl.c
	// The paper samples K OBJECTS; the window covers more slots so K live
	// ones are expected — trim any surplus, as the hand-written path did.
	if len(pl.cands) > pl.k {
		pl.cands = pl.cands[:pl.k]
	}
	if c.cl.tenantMode {
		// Lease expiry first: a lapsed entry is dead weight no policy
		// should out-rank. It is reclaimed with a plain CAS-to-empty —
		// no history entry, no expert blamed — observationally the same
		// removal an explicit Delete would have done.
		for i := range pl.cands {
			if ex := pl.cands[i].expiry; ex != 0 && ex <= pl.now {
				pl.victim = pl.cands[i]
				pl.expVictim = true
				pl.st = evCAS
				return
			}
		}
		// Quota enforcement: while any tenant is over quota, the experts
		// nominate only among over-quota candidates — an over-quota
		// tenant can never displace an in-quota one that has victims
		// available. A sample with no over-quota candidate is treated
		// like a lost CAS and resampled (the over-quota tenant's usage
		// exceeds its quota, so victims exist somewhere in the table);
		// only a FULL-table scan with no over-quota candidate proves no
		// such victim remains, and then the global policy may run over
		// whatever is left.
		if pl.overQ != 0 {
			n := 0
			for i := range pl.cands {
				if pl.overQ&(1<<uint(pl.cands[i].tenant)) != 0 {
					pl.cands[n] = pl.cands[i]
					n++
				}
			}
			if n > 0 {
				pl.cands = pl.cands[:n]
			} else if !pl.fullScan {
				pl.outcome = evictLost
				pl.st = evDone
				return
			}
		}
	}
	now := pl.now
	pl.nomBuf, pl.prio = pl.nomBuf[:0], pl.prio[:0]
	for range c.experts {
		pl.nomBuf = append(pl.nomBuf, 0)
		pl.prio = append(pl.prio, 0)
	}
	nominee := pl.nomBuf
	for e, a := range c.experts {
		best, bestP := -1, 0.0
		for i := range pl.cands {
			m := pl.cands[i].meta
			if off := c.extOff[e]; a.ExtSize() > 0 {
				m.Ext = pl.cands[i].meta.Ext[off : off+a.ExtSize()]
			}
			p := a.Priority(&m, now)
			if best < 0 || p < bestP {
				best, bestP = i, p
			}
		}
		nominee[e], pl.prio[e] = best, bestP
	}
	pl.victim = pl.cands[nominee[pl.deciding]]
	// Expert bitmap: every expert whose nominee is this victim shares the
	// blame if the eviction turns out to be a regret.
	for e := range c.experts {
		if pl.cands[nominee[e]].slot.Addr == pl.victim.slot.Addr {
			pl.bitmap |= 1 << uint(e)
		}
	}
	if c.adapt != nil {
		pl.st = evFAA
	} else {
		pl.st = evCAS
	}
}

// finishWin applies the local effects of a won eviction: expert
// penalties-on-evict, the block free, FC-cache cleanup, stats, and the
// hot-key hook that lets the replication layer demote an entry whose
// primary copy was just evicted.
func (pl *evictPlan) finishWin() {
	c := pl.c
	for e, a := range c.experts {
		if pl.bitmap&(1<<uint(e)) == 0 {
			continue
		}
		if obs, ok := a.(cachealgo.EvictionObserver); ok {
			obs.OnEvict(pl.prio[e])
		}
	}
	c.freeStampAsync(pl.victim.slot.Atomic.Pointer())
	c.alloc.Free(pl.victim.slot.Atomic.Pointer(), pl.victim.slot.Atomic.SizeBytes())
	c.fc.Forget(pl.victim.slot.Addr)
	c.accountTenant(pl.victim.tenant, -int64(pl.victim.slot.Atomic.SizeBytes()))
	c.cl.noteVictimBlocks(int(pl.victim.slot.Atomic.SizeBlocks()))
	c.Stats.Evictions++
	if c.cl.onEvictHash != nil {
		c.cl.onEvictHash(pl.victim.slot.Hash)
	}
	pl.outcome = evictWon
	pl.st = evDone
}

// ------------------------------------------------------------- Migration ----

// migratePlan outcomes.
const (
	migMoved    = iota // insert published, survived the sweep, source removed
	migSkipped         // destination copy was newer (or ours yielded); source removal was GC
	migRetry           // the source slot changed under the copy: re-read and redo
	migFallback        // destination complication (full bucket / lost CAS): retry the slot
)

// migratePlan moves one live object between memory nodes: the
// destination's insert-if-absent setPlan (migrate mode, including the
// post-publish duplicate sweep), then the source delete CAS that verifies
// the copy did not change while in flight. If that CAS fails — the key
// was concurrently deleted, evicted, or replaced — the fresh insert is
// undone with a precise CAS so a dead value can never resurface.
type migratePlan struct {
	src *Client
	s   hashtable.Slot
	ins *setPlan

	st       int // 0 insert phase, 1 source CAS, 2 done
	inserted bool
	outcome  int
}

func newMigratePlan(src, dst *Client, s hashtable.Slot, dec decodedObject) *migratePlan {
	key := append([]byte(nil), dec.key...)
	val := append([]byte(nil), dec.value...)
	ext := append([]byte(nil), dec.ext...)
	return &migratePlan{
		src: src, s: s,
		ins: dst.newMigrateSetPlan(key, val, ext, s.InsertTs, s.LastTs, s.Freq,
			dec.tenant, dec.expiry),
	}
}

func (pl *migratePlan) Step(eager bool) []exec.Verb {
	if pl.st != 0 {
		return nil
	}
	if vs := pl.ins.Step(eager); len(vs) > 0 {
		return vs
	}
	switch pl.ins.outcome {
	case setDone:
		pl.inserted = true
	case setPresent:
		pl.inserted = false
	default: // setNoFree / setCASLost: destination needs the serial retry loop
		pl.outcome = migFallback
		pl.st = 2
		return nil
	}
	pl.st = 1
	//dittolint:allow hotalloc (migrate plans are cold-path resharder work and are not pooled — see pool.go)
	return []exec.Verb{casVerb(pl.src, pl.s.Addr, pl.s.Atomic, 0)}
}

func (pl *migratePlan) Absorb(res []exec.Result) {
	if pl.st == 0 {
		pl.ins.Absorb(res)
		return
	}
	pl.st = 2
	if res[0].Swapped {
		pl.src.freeStampAsync(pl.s.Atomic.Pointer())
		pl.src.alloc.Free(pl.s.Atomic.Pointer(), pl.s.Atomic.SizeBytes())
		pl.src.fc.Forget(pl.s.Addr)
		// The moved copy's bytes leave the SOURCE node's accounting (the
		// destination charged them at its insert CAS).
		pl.src.accountTenant(pl.ins.tenant, -int64(pl.s.Atomic.SizeBytes()))
		// inserted=false here means the destination already held a newer
		// client-written copy: the source removal is garbage collection,
		// not a migration.
		if pl.inserted {
			pl.outcome = migMoved
		} else {
			pl.outcome = migSkipped
		}
		return
	}
	// The source slot changed while we copied it: if we inserted, our copy
	// is stale — take it back. The driver re-reads the slot and redoes the
	// copy with the fresh value (or gives up if the key is gone).
	if pl.inserted {
		pl.ins.c.dropMigrated(pl.ins.slotAddr, pl.ins.want, pl.ins.tenant)
	}
	pl.outcome = migRetry
}
