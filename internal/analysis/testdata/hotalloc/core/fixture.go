// Fixture for the hotalloc analyzer, plan side: loaded by RunFixture
// under the import path ditto/internal/core, so methods on types whose
// name ends in "Plan" are swept. Lines carrying no annotation are the
// sanctioned zero-alloc patterns the real plans use.

package core

type verb struct {
	addr uint64
	data []byte
}

type fakePlan struct {
	c     int
	verbs []verb
	bufs  [][]byte
	done  func()
}

// Step shows the sanctioned idiom — value struct literals appended
// into the plan's retained slice allocate nothing — next to every
// flagged form.
func (pl *fakePlan) Step(eager bool) []verb {
	pl.verbs = append(pl.verbs[:0], verb{addr: 8}) // value literal into retained slice: no finding

	scratch := make([]byte, 40)                    // want `make in hot function Step allocates per call`
	pl.verbs = append(pl.verbs, verb{data: scratch})

	return []verb{{addr: 16}} // want `\[\]core\.verb literal in hot function Step allocates per call`
}

func (pl *fakePlan) Absorb(res []int) {
	pl.done = func() { pl.c++ } // want `function literal in hot function Absorb allocates its closure per call`

	p := &fakePlan{} // want `&core\.fakePlan literal in hot function Absorb heap-allocates per call`
	_ = p

	seen := map[uint64]bool{} // want `map\[uint64\]bool literal in hot function Absorb allocates per call`
	_ = seen

	q := new(fakePlan) // want `new in hot function Absorb allocates per call`
	_ = q
}

func (pl *fakePlan) reset(c int) {
	pl.c = c
	pl.verbs = pl.verbs[:0] // retained-scratch reset: no finding
	// Cold ablation branch, deliberately allocating — the escape hatch.
	if c < 0 {
		//dittolint:allow hotalloc (cold ablation branch: runs only under a disabled-by-default flag)
		pl.bufs = append(pl.bufs, make([]byte, 40))
	}
}

// newFakePlan is a constructor, not a plan method by receiver — the
// allocate-on-construction form stays legal (pool misses call it).
func newFakePlan() *fakePlan {
	return &fakePlan{verbs: make([]verb, 0, 4)} // constructor: no finding
}

type helper struct{}

// run is a method on a non-Plan receiver: not swept.
func (helper) run() []byte {
	return make([]byte, 8) // non-Plan receiver: no finding
}
