package hotalloc_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/hotalloc"
)

// TestPlanFixture runs hotalloc over the plan-side fixture under the
// core import path: per-call allocation forms inside *Plan methods are
// flagged, the value-literal-into-retained-slice idiom and constructors
// are not, and the allow annotation suppresses a reasoned cold branch.
func TestPlanFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, hotalloc.Analyzer, "../testdata/hotalloc/core", "ditto/internal/core")
}

// TestExecFixture runs hotalloc over the executor-side fixture under
// the exec import path: pooled runner methods are swept, the free
// allocate-per-call functions are not.
func TestExecFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, hotalloc.Analyzer, "../testdata/hotalloc/exec", "ditto/internal/exec")
}

// TestOutsideHotPackages: the same plan-shaped code under any other
// import path produces no findings — pooling is a core/exec contract,
// not a module-wide style rule.
func TestOutsideHotPackages(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("../testdata/hotalloc/core", "ditto/internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{hotalloc.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("hotalloc flagged a non-hot package: %v", diags)
	}
}
