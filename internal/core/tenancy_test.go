package core

// Tenant isolation: quota-aware eviction, TTL leases, overload shedding,
// and per-tenant byte accounting. The three pinned invariants of the
// multi-tenancy PR live here:
//
//   (a) quota enforcement never evicts an in-quota tenant's key while an
//       over-quota tenant still has victims to give (model test),
//   (b) Serial and Doorbell reclaim choose identical quota victims
//       (seed-pinned equivalence), and
//   (c) a lapsed TTL lease is observationally identical to an explicit
//       Delete at the same virtual instant (property test).

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
)

// blockBytes mirrors the allocator's size-class rounding for the 64-byte
// test values under key(i)/value(i): one object = header + key + value,
// rounded up by the block allocator. Derived from live state rather than
// hardcoded so allocator retuning does not silently break the tests.
func liveBlockSize(cl *Cluster) int64 {
	return int64(cl.MN.UsedBytes)
}

// TestTenantQuotaSparesInQuotaTenants is pinned invariant (a): with a
// noisy tenant far over its quota sharing the cache with a small
// in-quota tenant, reclaiming until the noisy tenant is back under quota
// must never take one of the in-quota tenant's keys — the over-quota
// filter steers every nomination while over-quota victims exist.
func TestTenantQuotaSparesInQuotaTenants(t *testing.T) {
	const noisyKeys, quietKeys = 60, 4
	env := sim.NewEnv(17)
	cl := newTestCluster(env, 4000)
	// Arm tenant mode BEFORE any write: accounting is gated on it, and a
	// quota can only bind against accounted usage.
	cl.SetTenantQuota(1, 1<<40)
	cl.SetTenantQuota(2, 1<<40)
	env.Go("tenants", func(p *sim.Proc) {
		noisy := cl.NewClient(p)
		noisy.BindTenant(1)
		quiet := cl.NewClient(p)
		quiet.BindTenant(2)
		for i := 0; i < noisyKeys; i++ {
			noisy.Set(key(i), value(i))
		}
		for i := 0; i < quietKeys; i++ {
			quiet.Set(key(1000+i), value(i))
		}
		perKey := cl.TenantUsage(1) / noisyKeys
		// Quota allows ~1/4 of what the noisy tenant holds; the quiet
		// tenant's quota is far above its usage.
		cl.SetTenantQuota(1, perKey*noisyKeys/4)
		cl.SetTenantQuota(2, perKey*quietKeys*8)
		if !cl.OverQuota(1) || cl.OverQuota(2) {
			t.Fatalf("setup: overQuota(1)=%v overQuota(2)=%v", cl.OverQuota(1), cl.OverQuota(2))
		}
		for cl.OverQuota(1) {
			if !noisy.evictOne() {
				t.Fatal("nothing evictable while a tenant is over quota")
			}
			// The invariant: every reclaim taken while tenant 1 was over
			// quota came out of tenant 1.
			for i := 0; i < quietKeys; i++ {
				if _, ok := quiet.Get(key(1000 + i)); !ok {
					t.Fatalf("in-quota tenant lost key %d while tenant 1 was over quota (usage=%d quota=%d)",
						i, cl.TenantUsage(1), cl.TenantQuota(1))
				}
			}
		}
		if got := cl.TenantUsage(2); got != perKey*quietKeys {
			t.Errorf("tenant 2 usage changed: %d, want %d", got, perKey*quietKeys)
		}
		t.Logf("tenant 1 reclaimed to %d B (quota %d); tenant 2 untouched at %d B",
			cl.TenantUsage(1), cl.TenantQuota(1), cl.TenantUsage(2))
	})
	env.Run()
}

// TestQuotaVictimChoiceStrategyEquivalent is pinned invariant (b): with
// quotas active, a batch of reclaim plans picks exactly the same victims
// under exec.Serial and exec.Doorbell — the over-quota mask is
// snapshotted at plan reset (before any verb, consuming no randomness),
// so both strategies filter the same nomination sets. Same seed, same
// survivors, same per-tenant usage.
func TestQuotaVictimChoiceStrategyEquivalent(t *testing.T) {
	const noisyKeys, quietKeys, evictions = 2000, 600, 48
	run := func(strat exec.Strategy) (map[string]bool, [2]int64, Stats) {
		env := sim.NewEnv(17)
		cl := newTestCluster(env, 4000)
		cl.SetTenantQuota(1, 1<<40) // arm accounting before the writes
		cl.SetTenantQuota(2, 1<<40)
		survivors := make(map[string]bool)
		var usage [2]int64
		var st Stats
		env.Go("tenants", func(p *sim.Proc) {
			noisy := cl.NewClient(p)
			noisy.BindTenant(1)
			quiet := cl.NewClient(p)
			quiet.BindTenant(2)
			for i := 0; i < noisyKeys; i++ {
				noisy.Set(key(i), value(i))
			}
			for i := 0; i < quietKeys; i++ {
				quiet.Set(key(10000+i), value(i))
			}
			cl.SetTenantQuota(1, cl.TenantUsage(1)/2)
			got := 0
			for got < evictions {
				got += noisy.evictBatch(8, strat)
			}
			st = noisy.Stats
			usage = [2]int64{cl.TenantUsage(1), cl.TenantUsage(2)}
			probe := func(k []byte) {
				pl := noisy.newGetPlan(k)
				exec.RunSerial(pl)
				if pl.hit {
					survivors[string(k)] = true
				}
			}
			for i := 0; i < noisyKeys; i++ {
				probe(key(i))
			}
			for i := 0; i < quietKeys; i++ {
				probe(key(10000 + i))
			}
		})
		env.Run()
		return survivors, usage, st
	}

	serialSurv, serialUsage, serialStats := run(exec.Serial)
	doorSurv, doorUsage, doorStats := run(exec.Doorbell)

	if serialStats.Evictions != evictions || doorStats.Evictions != evictions {
		t.Fatalf("evictions: serial=%d doorbell=%d, want %d",
			serialStats.Evictions, doorStats.Evictions, evictions)
	}
	if serialUsage != doorUsage {
		t.Fatalf("per-tenant usage diverged: serial=%v doorbell=%v", serialUsage, doorUsage)
	}
	if len(serialSurv) != len(doorSurv) {
		t.Fatalf("survivors differ: serial=%d doorbell=%d", len(serialSurv), len(doorSurv))
	}
	for k := range serialSurv {
		if !doorSurv[k] {
			t.Fatalf("key %s survived serial but not doorbell reclaim", k)
		}
	}
	// Quota steering must have done real work: the over-quota tenant
	// absorbed every eviction this seed produced.
	if quiet := quietKeys - countPrefix(serialSurv, "key-01"); quiet != 0 {
		t.Errorf("%d in-quota keys evicted under quota steering", quiet)
	}
}

func countPrefix(set map[string]bool, prefix string) int {
	n := 0
	for k := range set {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

// TestTTLExpiryEquivalentToDelete is pinned invariant (c): pick a random
// subset of keys and either (A) store them with a TTL that lapses at
// horizon H, or (B) store them plain and explicitly Delete them at H.
// Every client-visible observation after H — Get, MGet, Delete's report,
// re-insert round trips — must be identical between the two runs.
func TestTTLExpiryEquivalentToDelete(t *testing.T) {
	const n = 64
	const ttl = 10 * sim.Millisecond
	observe := func(viaTTL bool) []string {
		env := sim.NewEnv(11)
		cl := newTestCluster(env, 1000)
		cl.SetTenantQuota(1, 1<<40) // tenant mode on; quota never binds
		var out []string
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			c.BindTenant(1)
			rng := rand.New(rand.NewSource(99))
			leased := make([]bool, n)
			for i := 0; i < n; i++ {
				leased[i] = rng.Intn(2) == 0
				if viaTTL && leased[i] {
					c.SetTTL(key(i), value(i), ttl)
				} else {
					c.Set(key(i), value(i))
				}
			}
			p.Sleep(ttl + sim.Millisecond) // past the lease horizon
			if !viaTTL {
				for i := 0; i < n; i++ {
					if leased[i] {
						c.Delete(key(i))
					}
				}
			}
			for i := 0; i < n; i++ {
				v, ok := c.Get(key(i))
				out = append(out, fmt.Sprintf("get %d %v %q", i, ok, v))
			}
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = key(i)
			}
			vals, oks := c.MGet(keys)
			for i := range keys {
				out = append(out, fmt.Sprintf("mget %d %v %q", i, oks[i], vals[i]))
			}
			// Delete of a lapsed lease reports false — exactly like a key
			// already deleted.
			for i := 0; i < n; i++ {
				out = append(out, fmt.Sprintf("del %d %v", i, c.Delete(key(i))))
			}
			// The key space is fully reusable afterwards in both worlds.
			for i := 0; i < n; i++ {
				c.Set(key(i), value(i+1))
				v, ok := c.Get(key(i))
				out = append(out, fmt.Sprintf("reset %d %v %q", i, ok, v))
			}
			if got := cl.TenantUsage(1); got != liveBlockSize(cl) {
				t.Errorf("usage %d != live bytes %d after churn", got, liveBlockSize(cl))
			}
		})
		env.Run()
		return out
	}

	ttlObs, delObs := observe(true), observe(false)
	if len(ttlObs) != len(delObs) {
		t.Fatalf("observation counts differ: %d vs %d", len(ttlObs), len(delObs))
	}
	for i := range ttlObs {
		if ttlObs[i] != delObs[i] {
			t.Fatalf("observation %d diverged:\n  ttl:    %s\n  delete: %s", i, ttlObs[i], delObs[i])
		}
	}
}

// TestExpiredEntryLifecycle pins the lease mechanics around invariant
// (c): a leased entry hits before the horizon, misses immediately after
// it WITHOUT any reader freeing it (readers stay write-free), and the
// eviction sampler then reclaims it preferentially — as a plain
// CAS-to-empty that blames no expert and writes no history entry.
func TestExpiredEntryLifecycle(t *testing.T) {
	env := sim.NewEnv(7)
	cl := newTestCluster(env, 1000)
	cl.SetTenantQuota(1, 1<<40)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.BindTenant(1)
		c.SetTTL([]byte("lease"), []byte("v"), 5*sim.Millisecond)
		c.Set([]byte("keep"), []byte("v"))
		if _, ok := c.Get([]byte("lease")); !ok {
			t.Fatal("leased key missed before expiry")
		}
		used := cl.MN.UsedBytes
		p.Sleep(6 * sim.Millisecond)
		if _, ok := c.Get([]byte("lease")); ok {
			t.Fatal("lapsed lease still readable")
		}
		if cl.MN.UsedBytes != used {
			t.Fatalf("a reader reclaimed the expired block: used %d -> %d", used, cl.MN.UsedBytes)
		}
		evs := c.Stats.Evictions
		if !c.evictOne() {
			t.Fatal("eviction found nothing with an expired entry live")
		}
		if c.Stats.Evictions != evs+1 {
			t.Fatalf("evictions %d, want %d", c.Stats.Evictions, evs+1)
		}
		if _, ok := c.Get([]byte("keep")); !ok {
			t.Fatal("eviction took a live key while an expired victim was available")
		}
		if cl.TenantUsage(1) != liveBlockSize(cl) {
			t.Fatalf("usage %d != live bytes %d after expired reclaim",
				cl.TenantUsage(1), liveBlockSize(cl))
		}
	})
	env.Run()
}

// TestTenantAccountingTracksLiveBytes checks the accounting identity the
// quota policies stand on: at every quiescent point, the per-tenant
// usage cells sum exactly to the node's live heap bytes — insert,
// larger/smaller overwrite, delete, and eviction all transfer block
// ownership through accountTenant.
func TestTenantAccountingTracksLiveBytes(t *testing.T) {
	env := sim.NewEnv(3)
	cl := newTestCluster(env, 1000)
	cl.SetTenantQuota(1, 1<<40)
	cl.SetTenantQuota(2, 1<<40)
	env.Go("tenants", func(p *sim.Proc) {
		a := cl.NewClient(p)
		a.BindTenant(1)
		b := cl.NewClient(p)
		b.BindTenant(2)
		total := func() int64 { return cl.TenantUsage(0) + cl.TenantUsage(1) + cl.TenantUsage(2) }
		check := func(phase string) {
			if total() != liveBlockSize(cl) {
				t.Fatalf("%s: tenant usage %d != live bytes %d", phase, total(), liveBlockSize(cl))
			}
		}
		for i := 0; i < 40; i++ {
			a.Set(key(i), value(i))
		}
		for i := 0; i < 20; i++ {
			b.Set(key(100+i), value(i))
		}
		check("insert")
		for i := 0; i < 10; i++ { // same-tenant overwrite, larger class
			a.Set(key(i), bytes.Repeat([]byte{byte(i)}, 200))
		}
		check("grow-overwrite")
		for i := 0; i < 10; i++ { // cross-tenant overwrite transfers ownership
			b.Set(key(10+i), value(i))
		}
		if got := cl.TenantUsage(2); got <= 0 {
			t.Fatalf("tenant 2 usage %d after taking over 10 keys", got)
		}
		check("cross-overwrite")
		for i := 0; i < 5; i++ {
			a.Delete(key(i))
		}
		check("delete")
		for i := 0; i < 8; i++ {
			if !a.evictOne() {
				t.Fatal("evictOne found nothing")
			}
		}
		check("evict")
	})
	env.Run()
}

// TestOverloadShedsOnlyOverQuotaTenants: with the write-stall overload
// signal armed and firing, TryMSet rejects batches from the over-quota
// tenant with a typed *ShedError (wrapping both ErrShed and
// ErrOverQuota) without issuing a verb, keeps serving the in-quota
// tenant, and resumes the shed tenant once the stall window drains.
func TestOverloadShedsOnlyOverQuotaTenants(t *testing.T) {
	env := sim.NewEnv(5)
	cl := newTestCluster(env, 1000)
	cl.EnableOverloadControl(4, sim.Millisecond)
	cl.SetTenantQuota(1, 1<<40) // arm accounting before the writes
	cl.SetTenantQuota(2, 1<<40)
	env.Go("tenants", func(p *sim.Proc) {
		noisy := cl.NewClient(p)
		noisy.BindTenant(1)
		quiet := cl.NewClient(p)
		quiet.BindTenant(2)
		for i := 0; i < 20; i++ {
			noisy.Set(key(i), value(i))
		}
		quiet.Set(key(100), value(0))
		cl.SetTenantQuota(1, cl.TenantUsage(1)/2) // noisy is over
		cl.SetTenantQuota(2, 1<<40)               // quiet is not
		batch := []KV{{Key: []byte("bk"), Value: []byte("bv")}}

		// Not overloaded yet: over-quota alone does not shed.
		if err := noisy.TryMSet(batch); err != nil {
			t.Fatalf("shed without overload: %v", err)
		}
		// Synthesize a stall burst past the threshold (the write path
		// feeds the same NoteStallTick from its reclaimer stall loop).
		for i := 0; i < 10; i++ {
			cl.MN.NoteStallTick(p.Now())
		}
		if !cl.Overloaded(p.Now()) {
			t.Fatal("overload signal not raised")
		}
		err := noisy.TryMSet(batch)
		if err == nil {
			t.Fatal("over-quota tenant not shed under overload")
		}
		if !errors.Is(err, ErrShed) || !errors.Is(err, ErrOverQuota) {
			t.Fatalf("shed error not typed: %v", err)
		}
		var shed *ShedError
		if !errors.As(err, &shed) || shed.Tenant != 1 || shed.Usage <= shed.Quota {
			t.Fatalf("shed detail wrong: %+v", shed)
		}
		if noisy.Stats.ShedOps != 1 {
			t.Fatalf("ShedOps = %d, want 1", noisy.Stats.ShedOps)
		}
		if err := quiet.TryMSet(batch); err != nil {
			t.Fatalf("in-quota tenant shed: %v", err)
		}
		// The sliding window drains: two epochs later the tenant serves
		// again.
		p.Sleep(3 * sim.Millisecond)
		if err := noisy.TryMSet(batch); err != nil {
			t.Fatalf("still shed after the stall window drained: %v", err)
		}
	})
	env.Run()
}

// TestMultiClusterTenancyPropagates checks the pool-level wiring: a
// pool-wide quota splits across nodes, BindTenant reaches every per-node
// client (including lazily opened ones), aggregate usage sums the
// shards, and a node added later inherits quotas and overload arming.
func TestMultiClusterTenancyPropagates(t *testing.T) {
	env := sim.NewEnv(9)
	mc := NewMultiCluster(env, 2, DefaultOptions(2000, 2000*320))
	mc.SetTenantQuota(1, 64*1024)
	mc.EnableOverloadControl(8, sim.Millisecond)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		m.BindTenant(1)
		for i := 0; i < 200; i++ {
			m.Set(key(i), value(i))
		}
		var nodeSum int64
		for i := 0; i < mc.NumNodes(); i++ {
			nodeSum += mc.Node(i).TenantUsage(1)
		}
		if nodeSum == 0 || nodeSum != mc.TenantUsage(1) {
			t.Fatalf("aggregate usage %d != node sum %d", mc.TenantUsage(1), nodeSum)
		}
		id := mc.AddNode()
		mc.WaitReshard(p)
		late := mc.nodes[id]
		if !late.TenantMode() || late.TenantQuota(1) != 32*1024 {
			t.Fatalf("late node quota: mode=%v quota=%d", late.TenantMode(), late.TenantQuota(1))
		}
		// Everything the reshard moved to the new node is still charged
		// to tenant 1, node by node.
		var after int64
		for i := 0; i < mc.NumNodes(); i++ {
			after += mc.Node(i).TenantUsage(1)
		}
		if after != mc.TenantUsage(1) {
			t.Fatalf("post-reshard aggregate %d != node sum %d", mc.TenantUsage(1), after)
		}
		for i := 0; i < 200; i++ {
			if _, ok := m.Get(key(i)); !ok {
				t.Fatalf("key %d lost across reshard", i)
			}
		}
	})
	env.Run()
}
