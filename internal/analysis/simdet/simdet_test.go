package simdet_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/simdet"
)

// TestFixture runs simdet over its testdata package, loaded under a
// sim-driven import path so the rules are live: wall-clock time and the
// global rand source are flagged, seeded generators and annotated
// order-independent ranges are not.
func TestFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, simdet.Analyzer, "../testdata/simdet", "ditto/internal/core")
}

// TestOutsideSimDrivenPackages: the same fixture under a non-sim path
// produces no findings — workload generators and bench drivers may use
// wall-clock time and ambient randomness.
func TestOutsideSimDrivenPackages(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("../testdata/simdet", "ditto/internal/workload")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{simdet.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("simdet flagged a non-sim-driven package: %v", diags)
	}
}
