package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/exec"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// tenantsRow is one measured configuration of the tenants scenario, as
// serialized into BENCH_tenants.json.
type tenantsRow struct {
	Config string `json:"config"` // "solo" | "noisy-no-quota" | "noisy-quota"

	// Victim (in-quota serving tenant) figures — the isolation headline.
	VictimMops     float64 `json:"victim_mops"`
	VictimGetP50Us float64 `json:"victim_get_p50_us"`
	VictimGetP99Us float64 `json:"victim_get_p99_us"`
	VictimHitRate  float64 `json:"victim_hit_rate"`
	// Degradation vs the solo baseline (0 for the baseline row): the
	// acceptance bar is < 0.10 on both under "noisy-quota".
	VictimP99Degradation     float64 `json:"victim_p99_degradation_vs_solo"`
	VictimHitRateDegradation float64 `json:"victim_hit_rate_degradation_vs_solo"`

	// Noisy (over-quota churn tenant) figures — what isolation costs it.
	NoisyMops    float64 `json:"noisy_mops"`
	NoisyHitRate float64 `json:"noisy_hit_rate"`
	NoisyShedOps int64   `json:"noisy_shed_ops"`

	// Accounting at end of run (block-rounded bytes).
	VictimUsageBytes int64 `json:"victim_usage_bytes"`
	NoisyUsageBytes  int64 `json:"noisy_usage_bytes"`
	Evictions        int64 `json:"evictions"`
}

// Tenants measures noisy-neighbor isolation under the multi-tenant
// policies: a read-heavy serving tenant (the "victim", comfortably
// inside its quota) shares one MN with a write-heavy churn tenant whose
// working set far exceeds its own quota. Three configurations run the
// same victim workload:
//
//   - solo: the victim alone (tenant mode armed, quotas set) — the
//     baseline for its Get p99 and hit rate.
//   - noisy-no-quota: the churn tenant joins with an unlimited quota —
//     the classic noisy neighbor. Global eviction policy treats both
//     tenants' objects alike, so churn pressure evicts the victim's
//     keys and its hit rate collapses.
//   - noisy-quota: the churn tenant joins with a binding quota. Quota
//     steering narrows every eviction sample to the over-quota tenant's
//     objects, and overload control sheds its batched writes while the
//     reclaimer is behind — the victim's p99 and hit rate must stay
//     within 10% of solo (the isolation acceptance bar).
func Tenants(w io.Writer, scale Scale) error {
	header(w, "Tenants: noisy-neighbor isolation — quotas + overload shedding")
	objects := scale.pick(2000, 8000)
	victimClients := scale.pick(4, 8)
	noisyClients := scale.pick(8, 16)
	opsEach := scale.pick(3000, 12000)

	configs := []struct {
		name  string
		noisy bool
		quota bool
	}{
		{"solo", false, true},
		{"noisy-no-quota", true, false},
		{"noisy-quota", true, true},
	}
	row(w, "config", "victim Mops", "get p50(us)", "get p99(us)", "hit rate", "noisy Mops", "shed ops")
	var rows []tenantsRow
	baseP99, baseHit := 0.0, 0.0
	for _, cfg := range configs {
		r := runTenants(objects, victimClients, noisyClients, opsEach, cfg.noisy, cfg.quota)
		if cfg.name == "solo" {
			baseP99, baseHit = r.VictimGetP99Us, r.VictimHitRate
		}
		if baseP99 > 0 {
			r.VictimP99Degradation = (r.VictimGetP99Us - baseP99) / baseP99
		}
		if baseHit > 0 {
			r.VictimHitRateDegradation = (baseHit - r.VictimHitRate) / baseHit
		}
		r.Config = cfg.name
		row(w, cfg.name, r.VictimMops, r.VictimGetP50Us, r.VictimGetP99Us, r.VictimHitRate,
			r.NoisyMops, r.NoisyShedOps)
		fmt.Fprintf(w, "  victim degradation vs solo: p99 %+.1f%%, hit rate %+.1f%%; usage victim %d B / noisy %d B, %d evictions\n",
			r.VictimP99Degradation*100, r.VictimHitRateDegradation*100,
			r.VictimUsageBytes, r.NoisyUsageBytes, r.Evictions)
		rows = append(rows, r)
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario":       "tenants",
		"scale":          scale.String(),
		"objects":        objects,
		"victim_clients": victimClients,
		"noisy_clients":  noisyClients,
		"ops_each":       opsEach,
		"results":        rows,
	})
}

// runTenants runs one configuration: the victim tenant is preloaded and
// served read-heavy over a working set ~30% of capacity (inside its
// quota); when enabled, the noisy tenant churns write-heavy over a
// keyspace ~3x capacity, with a binding ~50%-of-capacity quota (quota
// true) or an unlimited one (quota false). Overload control is armed in
// every configuration; the noisy tenant issues part of its writes as
// TryMSet batches, the shape the shed policy gates.
func runTenants(objects, victimClients, noisyClients, opsEach int, noisy, quota bool) tenantsRow {
	env := sim.NewEnv(benchSeed(61))
	capBytes := int64(objects) * 320
	opts := core.DefaultOptions(objects, int(capBytes))
	cl := core.NewCluster(env, opts)
	cl.ReclaimStrategy = exec.Doorbell
	cl.EnableBackgroundReclaim(0, 0)

	const victimTenant, noisyTenant = core.TenantID(1), core.TenantID(2)
	victimKeys := objects * 30 / 100
	// Victim quota: 60% of capacity, ~2x its working set — never binds.
	cl.SetTenantQuota(victimTenant, capBytes*60/100)
	if quota {
		// Noisy quota: half the pool — binds almost immediately under a
		// churn keyspace 3x capacity.
		cl.SetTenantQuota(noisyTenant, capBytes*50/100)
	} else {
		cl.SetTenantQuota(noisyTenant, 1<<40)
	}
	cl.EnableOverloadControl(200, 0)

	// Preload the victim's working set under its own tenant stamp.
	env.Go("loader", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.BindTenant(victimTenant)
		for i := 0; i < victimKeys; i++ {
			c.Set(workload.KeyBytes(uint64(i)), make([]byte, 240))
		}
	})
	env.Run()

	victim := Result{Hist: &stats.Histogram{}}
	noisyRes := Result{Hist: &stats.Histogram{}}
	var noisyStats, victimStats core.Stats
	start := env.Now()
	// Victim ops are light (reads, mostly hits) while the noisy churn's
	// Sets carry eviction work, so a fixed op count would let the victim
	// drain long before the churn peaks and measure no contention at
	// all. Victim clients instead serve at least opsEach ops AND as long
	// as any noisy client is still churning.
	noisyLeft := noisyClients
	if !noisy {
		noisyLeft = 0
	}
	for i := 0; i < victimClients; i++ {
		i := i
		env.Go("victim", func(p *sim.Proc) {
			c := cl.NewClient(p)
			c.BindTenant(victimTenant)
			rng := rand.New(rand.NewSource(int64(900 + i)))
			// Mild skew: the victim reads across its whole working set,
			// so evictions anywhere in it show up as misses — heavy skew
			// would hide the damage behind a few self-refreshing hot keys.
			next := zipfSampler(rng, 0.6, uint64(victimKeys))
			for n := 0; n < opsEach || noisyLeft > 0; n++ {
				k := workload.KeyBytes(next())
				t0 := p.Now()
				if rng.Intn(10) == 0 {
					c.Set(k, make([]byte, 240))
				} else if _, ok := c.Get(k); ok {
					victim.Hits++
				} else {
					victim.Misses++
				}
				victim.Hist.Record(p.Now() - t0)
				victim.Ops++
			}
			victimStats.Add(c.Stats)
		})
	}
	if noisy {
		// Churn keys live in a disjoint range far above the victim's.
		const noisyBase = 1 << 20
		keyspace := uint64(objects * 3)
		for i := 0; i < noisyClients; i++ {
			i := i
			env.Go("noisy", func(p *sim.Proc) {
				c := cl.NewClient(p)
				c.BindTenant(noisyTenant)
				rng := rand.New(rand.NewSource(int64(700 + i)))
				next := zipfSampler(rng, 0.8, keyspace)
				batch := make([]core.KV, 0, 8)
				for n := 0; n < opsEach; n++ {
					k := workload.KeyBytes(noisyBase + next())
					if n%64 == 63 {
						// Part of the churn arrives as doorbell-batched
						// multi-writes — the shape overload control gates.
						batch = batch[:0]
						for j := 0; j < 8; j++ {
							batch = append(batch, core.KV{
								Key: workload.KeyBytes(noisyBase + next()), Value: make([]byte, 240)})
						}
						if err := c.TryMSet(batch); err != nil && !errors.Is(err, core.ErrShed) {
							//dittolint:allow typederr (bench driver: any non-shed TryMSet error is a harness bug)
							panic(err)
						}
						noisyRes.Ops += 8
						continue
					}
					if rng.Intn(10) < 8 {
						c.Set(k, make([]byte, 240))
					} else if _, ok := c.Get(k); ok {
						noisyRes.Hits++
					} else {
						noisyRes.Misses++
					}
					noisyRes.Ops++
				}
				noisyStats.Add(c.Stats)
				noisyLeft--
			})
		}
	}
	env.Run()
	victim.ElapsedNs = env.Now() - start
	noisyRes.ElapsedNs = victim.ElapsedNs

	return tenantsRow{
		VictimMops:       victim.Mops(),
		VictimGetP50Us:   victim.P50(),
		VictimGetP99Us:   victim.P99(),
		VictimHitRate:    victim.HitRate(),
		NoisyMops:        noisyRes.Mops(),
		NoisyHitRate:     noisyRes.HitRate(),
		NoisyShedOps:     noisyStats.ShedOps,
		VictimUsageBytes: cl.TenantUsage(victimTenant),
		NoisyUsageBytes:  cl.TenantUsage(noisyTenant),
		Evictions:        victimStats.Evictions + noisyStats.Evictions + cl.ReclaimerStats().Evictions,
	}
}
