// Package simdet checks that sim-driven packages stay deterministic:
// it is what keeps `CHAOS_SEED=<seed> go test ./internal/chaos/`
// reproduction honest.
//
// The simulation substrate (internal/sim, PR 6) guarantees that a run
// is a pure function of its seed: every event, every fault point, every
// random choice derives from one printed number. Three things silently
// break that guarantee without failing any test until a chaos seed
// refuses to reproduce:
//
//   - wall-clock time (time.Now) leaking into virtual-time logic,
//   - the process-global math/rand source, which is shared across
//     goroutines and seeded per-run, instead of the per-process seeded
//     *rand.Rand (sim.Proc.Rand) or an explicit rand.New(rand.NewSource),
//   - iterating a Go map where the iteration order can reach behavior
//     (verb issue order, victim choice, lock acquisition order): map
//     order differs between runs, so the event interleaving diverges
//     from the recorded seed's. The fix is to iterate a sorted key
//     slice — sortedNodeIDs (internal/core/multi.go) is the canonical
//     pattern — or, when the loop body is provably order-independent,
//     to annotate the range statement with
//     //dittolint:allow simdet (reason).
package simdet

import (
	"go/ast"
	"go/types"

	"ditto/internal/analysis"
)

// simDriven is the set of packages whose code executes inside the
// virtual-time simulation and therefore must be a pure function of the
// seed. workload/bench generators are seeded by construction and tests
// are free to use real randomness, so neither is swept.
var simDriven = map[string]bool{
	"ditto/internal/core":   true,
	"ditto/internal/exec":   true,
	"ditto/internal/chaos":  true,
	"ditto/internal/sim":    true,
	"ditto/internal/hotset": true,
}

// globalRandAllowed lists the math/rand package-level functions that do
// NOT touch the global source: constructors for explicitly seeded
// generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer is the simdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "forbid wall-clock time, the global math/rand source, and " +
		"behavior-reaching map iteration in sim-driven packages " +
		"(determinism contract of PR 6's CHAOS_SEED reproduction)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !simDriven[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags time.Now and global math/rand source use.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || analysis.ReceiverNamed(fn) != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine: the receiver carries the seed
	}
	switch analysis.FuncPkgPath(fn) {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"wall-clock time.Now in sim-driven code breaks CHAOS_SEED reproduction; use the virtual clock (sim.Proc.Now / sim.Env.Now)")
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand source (rand.%s) in sim-driven code breaks CHAOS_SEED reproduction; use a seeded *rand.Rand (sim.Proc.Rand or rand.New(rand.NewSource(seed)))", fn.Name())
		}
	}
}

// checkRange flags `for range` over a map. Map iteration order differs
// between runs, so any loop whose body can reach behavior (issue verbs,
// pick victims, take locks) diverges from the seed's recorded
// interleaving. Loops that are provably order-independent carry a
// dittolint:allow annotation stating why.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order can reach behavior in sim-driven code and breaks CHAOS_SEED reproduction; iterate a sorted key slice (e.g. sortedNodeIDs) or annotate an order-independent body with //dittolint:allow simdet (reason)")
}
