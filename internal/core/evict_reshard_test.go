package core

// Eviction racing the other maintenance planes: a live reshard (a victim
// concurrently migrated must not double-free a block or resurrect a
// key) and hot-key replication (evicting a promoted key's primary copy
// must demote the entry and dissolve its replicas, not let them serve a
// key the cache dropped). Model tests in the style of replica_test.go.

import (
	"bytes"
	"math/rand"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
)

// churnValue is a bench-sized (320-byte-class) value that varies by key
// and round, so staleness is detectable.
func churnValue(k, round int) []byte {
	return bytes.Repeat([]byte{byte(k*7 + round + 1)}, 240)
}

// TestEvictionRacingLiveReshard churns writes and deletes at ~100%
// occupancy — with background reclaimers running on every node — across
// a live AddNode reshard, under both reclaim strategies. The invariants:
// no block is double-freed (the memnode allocator panics on that), no
// deleted key is durably resurrected by a migration of its dying copy,
// and every surviving key reads back its exact last-written value once
// the reshard completes. Eviction-vs-migration races on the same slot
// are the point: the victim CAS and the migration's source CAS target
// the same atomic, so exactly one side frees the block, and a migrated
// insert whose source was evicted mid-copy must be taken back.
func TestEvictionRacingLiveReshard(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		t.Run(strat.String(), func(t *testing.T) {
			env := sim.NewEnv(31)
			mc := NewMultiCluster(env, 2, DefaultOptions(3000, 3000*320))
			mc.ReclaimStrategy = strat
			mc.EnableBackgroundReclaim(0, 0)
			model := make(map[string][]byte)
			deleted := make(map[string]bool)
			sawReshard := false
			env.Go("mutator", func(p *sim.Proc) {
				m := mc.NewClient(p)
				rng := rand.New(rand.NewSource(77))
				for i := 0; i < 3000; i++ {
					m.Set(key(i), churnValue(i, 0))
					model[string(key(i))] = churnValue(i, 0)
				}
				for round := 1; round <= 50; round++ {
					if round == 4 {
						mc.AddNode()
					}
					if mc.Resharding() {
						sawReshard = true
					}
					for j := 0; j < 40; j++ {
						k := rng.Intn(4000)
						v := churnValue(k, round)
						m.Set(key(k), v)
						model[string(key(k))] = v
						delete(deleted, string(key(k)))
					}
					for j := 0; j < 4; j++ {
						k := rng.Intn(4000)
						m.Delete(key(k))
						delete(model, string(key(k)))
						deleted[string(key(k))] = true
					}
				}
				mc.WaitReshard(p)
				// Post-reshard sweep: hits must be exact, deleted keys dead.
				hits := 0
				for i := 0; i < 4000; i++ {
					v, ok := m.Get(key(i))
					if !ok {
						continue // evicted (or never written): a legal miss
					}
					hits++
					if deleted[string(key(i))] {
						t.Errorf("deleted key %d resurrected across the reshard", i)
					} else if want := model[string(key(i))]; !bytes.Equal(v, want) {
						t.Errorf("key %d stale after eviction/reshard churn", i)
					}
				}
				if hits == 0 {
					t.Error("no key survived the churn at all")
				}
				s := m.Stats()
				if s.Gets != s.Hits+s.Misses {
					t.Errorf("accounting broken: %+v", s)
				}
			})
			env.Run()
			if !sawReshard {
				t.Error("churn never overlapped the reshard window")
			}
			if mc.Reshards != 1 || mc.NumNodes() != 3 {
				t.Errorf("reshards=%d nodes=%d", mc.Reshards, mc.NumNodes())
			}
		})
	}
}

// TestEvictedHotKeyDemotes pins the eviction/replication interaction:
// when memory pressure evicts a promoted key's PRIMARY copy, the hotset
// entry is flagged by the eviction hook, the next directory touch
// demotes it, and the replica copies are dissolved — a spread read must
// never resurrect a key the cache decided to drop.
func TestEvictedHotKeyDemotes(t *testing.T) {
	env := sim.NewEnv(11)
	mc := NewMultiCluster(env, 3, DefaultOptions(3000, 3000*320))
	mc.EnableHotKeyReplication(2, 8, 64)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		K := []byte("hot-key-0")
		m.Set(K, churnValue(1, 0))
		for i := 0; i < 12; i++ {
			if _, ok := m.Get(K); !ok {
				t.Fatal("hot key unreadable while warming it up")
			}
		}
		m.Get(K) // operation boundary: drain the queued promotion
		e := mc.hot.Lookup(K)
		if e == nil {
			t.Fatal("key not promoted despite crossing the threshold")
		}

		// Force eviction on the primary: K's copy there is the only live
		// object on that node, so one sample-based eviction reclaims it.
		pc := m.clientFor(e.Primary)
		for i := 0; i < 50; i++ {
			if !pc.evictOne() {
				break
			}
		}
		pl := pc.newGetPlan(K)
		exec.RunSerial(pl)
		if pl.hit {
			t.Fatal("primary copy survived forced eviction")
		}
		if !e.Evicted {
			t.Fatal("eviction hook did not flag the promoted entry")
		}

		// The next read must demote instead of serving from a replica.
		demBefore := mc.Demotions
		if _, ok := m.Get(K); ok {
			t.Fatal("evicted hot key still readable — a replica resurrected it")
		}
		if mc.hot.Lookup(K) != nil {
			t.Fatal("entry not demoted after primary eviction")
		}
		if mc.Demotions != demBefore+1 {
			t.Errorf("demotions = %d, want %d", mc.Demotions, demBefore+1)
		}
		for _, id := range e.Replicas {
			rpl := m.clientFor(id).newGetPlan(K)
			exec.RunSerial(rpl)
			if rpl.hit {
				t.Errorf("replica copy on node %d survived the demotion", id)
			}
		}

		// The key keeps working (and can re-promote) afterwards.
		m.Set(K, churnValue(2, 1))
		if v, ok := m.Get(K); !ok || !bytes.Equal(v, churnValue(2, 1)) {
			t.Fatal("key broken after eviction-driven demotion")
		}
	})
	env.Run()
}
