package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ditto/internal/ring"
	"ditto/internal/sim"
)

func TestMultiClusterRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 4, DefaultOptions(1000, 1000*320))
	if mc.NumNodes() != 4 {
		t.Fatalf("nodes = %d", mc.NumNodes())
	}
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 200; i++ {
			c.Set(key(i), value(i))
		}
		for i := 0; i < 200; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost across MNs", i)
			}
		}
		if !c.Delete(key(7)) {
			t.Fatal("delete failed")
		}
		if _, ok := c.Get(key(7)); ok {
			t.Fatal("deleted key readable")
		}
		c.Close()
		s := c.Stats()
		if s.Gets != 201 || s.Sets != 200 {
			t.Fatalf("stats = %+v", s)
		}
	})
	env.Run()
}

func TestMultiClusterSpreadsKeys(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 4, DefaultOptions(2000, 2000*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 400; i++ {
			c.Set(key(i), value(i))
		}
	})
	env.Run()
	// Every MN must hold a reasonable share.
	for i := 0; i < 4; i++ {
		used := mc.Node(i).MN.UsedBytes
		if used == 0 {
			t.Fatalf("MN %d holds nothing", i)
		}
	}
}

func TestMultiClusterRoutingStable(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 3, DefaultOptions(300, 300*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		// A key written through one client must be readable through another
		// (same routing function).
		c.Set([]byte("stable"), []byte("v"))
		c2 := mc.NewClient(p)
		if _, ok := c2.Get([]byte("stable")); !ok {
			t.Error("routing not stable across clients")
		}
	})
	env.Run()
}

func TestMultiClusterEvictsIndependently(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 2, DefaultOptions(100, 100*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 800; i++ {
			c.Set(key(i), value(i))
		}
		if s := c.Stats(); s.Evictions == 0 {
			t.Error("no evictions at 8x capacity")
		}
	})
	env.Run()
	for i := 0; i < 2; i++ {
		cl := mc.Node(i)
		if cl.MN.UsedBytes > cl.Options().CacheBytes {
			t.Fatalf("MN %d over capacity", i)
		}
	}
}

func TestMultiClusterGrowCache(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 2, DefaultOptions(100, 64000))
	before := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	mc.GrowCache(32000)
	after := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	if after-before < 32000 {
		t.Fatalf("grew %d, want >= 32000", after-before)
	}
}

func TestMultiClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero nodes")
		}
	}()
	NewMultiCluster(sim.NewEnv(1), 0, DefaultOptions(100, 1<<20))
}

// TestMultiGetMissCountedWhenClientsVanish is the regression test for
// the silent-miss accounting hole: a Get that returns false must
// increment Gets and Misses on SOME surviving client even when the
// routed owner has no client (node just removed) — both outside and
// inside the forwarding window. Before the fix these Gets vanished from
// the stats and HitRate() overstated the hit rate during a shrink.
func TestMultiGetMissCountedWhenClientsVanish(t *testing.T) {
	env := sim.NewEnv(3)
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		real := mc.snap().hashRing

		// Case 1: no forwarding window, current owner unreachable (a ring
		// member with no backing node).
		mc.publishRoute(ring.New(0, 99), nil, -1)
		if _, ok := m.Get([]byte("absent-1")); ok {
			t.Fatal("phantom hit")
		}
		if s := m.Stats(); s.Gets != 1 || s.Misses != 1 {
			t.Errorf("case 1: stats = %+v, want 1 get / 1 miss", s)
		}

		// Case 2: forwarding window whose current owner is unreachable;
		// the old-owner probe is silent, so the logical miss must be
		// counted explicitly on a surviving client.
		mc.publishRoute(mc.snap().hashRing, real, -1)
		if _, ok := m.Get([]byte("absent-2")); ok {
			t.Fatal("phantom hit")
		}
		if s := m.Stats(); s.Gets != 2 || s.Misses != 2 {
			t.Errorf("case 2: stats = %+v, want 2 gets / 2 misses", s)
		}

		// Case 3: the batched path under the same conditions.
		if _, oks := m.MGet([][]byte{[]byte("absent-3"), []byte("absent-4")}); oks[0] || oks[1] {
			t.Fatal("phantom hit")
		}
		if s := m.Stats(); s.Gets != 4 || s.Misses != 4 {
			t.Errorf("case 3: stats = %+v, want 4 gets / 4 misses", s)
		}

		mc.publishRoute(real, nil, -1)
	})
	env.Run()
}

// TestMultiBatchedOpsDuringLiveReshard drives MGet/MSet batches across a
// live AddNode reshard and checks every result against an exact model:
// batched operations must behave like their sequential counterparts even
// while keys migrate (no lost keys, no stale values, no phantom hits).
func TestMultiBatchedOpsDuringLiveReshard(t *testing.T) {
	env := sim.NewEnv(5)
	mc := NewMultiCluster(env, 2, DefaultOptions(4000, 4000*320))
	model := make(map[string][]byte)
	env.Go("mutator", func(p *sim.Proc) {
		m := mc.NewClient(p)
		rng := rand.New(rand.NewSource(42))
		pairs := make([]KV, 0, 400)
		for i := 0; i < 400; i++ {
			pairs = append(pairs, KV{Key: key(i), Value: value(i)})
			model[string(key(i))] = value(i)
		}
		m.MSet(pairs)
		for round := 0; round < 60; round++ {
			if round == 5 {
				mc.AddNode()
			}
			batch := make([]KV, 6)
			for j := range batch {
				k := rng.Intn(500)
				v := value(k*7 + round)
				batch[j] = KV{Key: key(k), Value: v}
				model[string(key(k))] = v
			}
			m.MSet(batch)
			gets := make([][]byte, 12)
			for j := range gets {
				gets[j] = key(rng.Intn(600))
			}
			vs, oks := m.MGet(gets)
			for j := range gets {
				want, present := model[string(gets[j])]
				if oks[j] != present {
					t.Errorf("round %d (resharding=%v) key %s: ok=%v, present=%v",
						round, mc.Resharding(), gets[j], oks[j], present)
				} else if present && !bytes.Equal(vs[j], want) {
					t.Errorf("round %d key %s: stale value", round, gets[j])
				}
			}
		}
		mc.WaitReshard(p)
		all := make([][]byte, 600)
		for i := range all {
			all[i] = key(i)
		}
		vs, oks := m.MGet(all)
		for i := range all {
			want, present := model[string(all[i])]
			if oks[i] != present {
				t.Errorf("post-reshard key %d: ok=%v, present=%v", i, oks[i], present)
			} else if present && !bytes.Equal(vs[i], want) {
				t.Errorf("post-reshard key %d: stale value", i)
			}
		}
		s := m.Stats()
		if s.Gets != s.Hits+s.Misses {
			t.Errorf("accounting broken: %+v", s)
		}
	})
	env.Run()
	if mc.Reshards != 1 || mc.NumNodes() != 3 {
		t.Errorf("reshards=%d nodes=%d", mc.Reshards, mc.NumNodes())
	}
}
