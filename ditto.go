// Package ditto is the public API of this reproduction of "Ditto: An
// Elastic and Adaptive Memory-Disaggregated Caching System" (SOSP 2023).
//
// Ditto is an in-memory cache for disaggregated memory (DM): clients in
// the compute pool execute Get/Set directly against the memory pool with
// one-sided verbs (no server CPU on the data path), hotness metadata lives
// in the hash-table slots so eviction candidates can be sampled with a
// single READ, and multiple caching algorithms run simultaneously as
// experts of a regret-minimization bandit that adapts the eviction policy
// to the workload and to elastic resource changes. Multi-key batches
// (MGet/MSet) post each pipeline stage as one RNIC doorbell so verb
// round trips overlap instead of serializing on the RTT.
//
// Elasticity has two memory axes here: a node's heap can grow and shrink
// in place (Cluster.GrowCache/ShrinkCache, no migration), and a multi-MN
// pool can gain or lose whole memory nodes at runtime
// (MultiCluster.AddNode/RemoveNode) with live consistent-hash resharding
// that migrates only the keys whose owner changed.
//
// Because RDMA hardware is not assumed, the fabric is a deterministic
// virtual-time simulation (see internal/sim and internal/rdma): every verb
// costs its round trip and queues on the modelled RNIC/CPU resources, so
// systems-level behaviour (who saturates, how elasticity plays out) is
// preserved while everything runs in-process.
//
// Quick start:
//
//	env := ditto.NewEnv(42)
//	cluster := ditto.NewCluster(env, ditto.DefaultOptions(100_000, 64<<20))
//	env.Go("app", func(p *ditto.Proc) {
//		c := cluster.NewClient(p)
//		c.Set([]byte("hello"), []byte("world"))
//		v, ok := c.Get([]byte("hello"))
//		_ = v
//		_ = ok
//	})
//	env.Run()
//
// See examples/ for runnable programs and internal/bench for the full
// evaluation harness reproducing every figure and table of the paper.
package ditto

import (
	"ditto/internal/cachealgo"
	"ditto/internal/core"
	"ditto/internal/exec"
	"ditto/internal/fairness"
	"ditto/internal/sim"
)

// Env is the virtual-time environment all clients run in.
type Env = sim.Env

// Proc is a process (client thread) in the environment.
type Proc = sim.Proc

// NewEnv creates a deterministic environment from a seed.
func NewEnv(seed int64) *Env { return sim.NewEnv(seed) }

// Cluster is a Ditto deployment: a memory pool plus shared configuration.
type Cluster = core.Cluster

// Client is a Ditto cache client bound to one process.
type Client = core.Client

// Options configures a cluster; see DefaultOptions.
type Options = core.Options

// Stats are per-client operation counters.
type Stats = core.Stats

// KV is one key/value pair of an MSet batch.
//
// Multi-key traffic should prefer Client.MGet / MSet / MDelete (and
// their MultiClient counterparts) over per-key loops: the batched
// operations run the same verb plans as Get/Set/Delete, posting each
// stage's verbs with a single RNIC doorbell so the round trips overlap —
// an all-hit MGet costs two doorbell batches total (bucket READs, then
// object READs) instead of two round trips per key, while returning
// exactly what per-key operations would.
type KV = core.KV

// NewCluster builds a Ditto deployment inside env.
func NewCluster(env *Env, opts Options) *Cluster { return core.NewCluster(env, opts) }

// DefaultOptions returns the paper's default parameterization (LRU+LFU
// experts, 5 samples, 10 MB FC cache with threshold 10, learning rate 0.1,
// weight-update batch 100).
func DefaultOptions(expectedObjects, cacheBytes int) Options {
	return core.DefaultOptions(expectedObjects, cacheBytes)
}

// Algorithms returns the names of the twelve integrated caching
// algorithms, usable in Options.Experts.
func Algorithms() []string { return cachealgo.Names() }

// MultiCluster is a Ditto deployment spanning several memory nodes
// (§5.1's multi-MN compatibility note). Keys are partitioned by a
// consistent-hash ring, and the pool is elastic at node granularity:
// AddNode and RemoveNode reshape it at runtime, migrating only the keys
// whose owner changed through a background reshard that keeps every key
// readable (Gets are forwarded to a key's old owner until its copy has
// moved). Use Resharding/WaitReshard to observe migration progress, and
// GrowCache/ShrinkCache for pool-wide byte-granular elasticity.
//
// EnableHotKeyReplication relieves zipfian skew: keys whose hit
// frequency crosses a threshold are copied to their ring-successor
// nodes and their reads spread across all copies, while writes stay
// linearizable — under a per-key lock, a write first invalidates the
// replica copies, then publishes on the primary, then re-materializes
// them, so a spreadable replica only ever holds the current value or
// nothing. Call it before creating clients.
type MultiCluster = core.MultiCluster

// MultiClient routes operations to the memory node owning each key and
// serves the forwarding window during live reshards.
type MultiClient = core.MultiClient

// ReshardStrategy selects how a MultiCluster's resharder executes its
// migration verb plans (MultiCluster.ReshardStrategy).
type ReshardStrategy = exec.Strategy

// Reshard strategies: ReshardDoorbell (the default) pipelines the table
// scan and the per-key migrations as doorbell batches, cutting reshard
// completion time severalfold; ReshardSerial issues one verb per round
// trip — the paper-faithful baseline. Results are identical.
const (
	ReshardSerial   ReshardStrategy = exec.Serial
	ReshardDoorbell ReshardStrategy = exec.Doorbell
)

// NewMultiCluster builds a deployment over n memory nodes; opts describes
// the pool's aggregate capacity. Nodes added later with AddNode receive
// the same per-node provisioning.
func NewMultiCluster(env *Env, n int, opts Options) *MultiCluster {
	return core.NewMultiCluster(env, n, opts)
}

// FairClient wraps a Client with FairRide-style expected delaying so
// co-located tenants cannot free-ride on each other's cached objects
// (§4.4's fairness discussion).
type FairClient = fairness.Client

// NewFairClient wraps c for the given tenant; missCost is the virtual-time
// penalty equivalent to a backing-store fetch.
func NewFairClient(c *Client, tenant byte, missCost int64) *FairClient {
	return fairness.New(c, tenant, missCost)
}

// Virtual-time unit constants for Proc.Sleep and friends.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)
