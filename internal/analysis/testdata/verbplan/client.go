// Fixture half 2: the same package (ditto/internal/core), but a file
// that is NOT plan.go — every raw verb here re-creates a verb sequence
// outside the declared plans and must be flagged.

package core

import "ditto/internal/rdma"

type fixtureClient struct {
	ep *rdma.Endpoint
}

func (c *fixtureClient) rawRead(addr uint64) []byte {
	return c.ep.Read(addr, 8) // want `raw rdma\.Endpoint\.Read call outside the verb-plan layer`
}

func (c *fixtureClient) rawWrite(addr uint64, data []byte) {
	c.ep.WriteAsync(addr, data) // want `raw rdma\.Endpoint\.WriteAsync call`
}

func (c *fixtureClient) rawBatch(ops []rdma.BatchOp) {
	c.ep.PostBatch(ops) // want `raw rdma\.Endpoint\.PostBatch call`
}

// A hinted speculative READ issued outside plan.go re-creates the
// one-RTT Get outside the declared verb vocabulary — flagged the same
// as any other raw verb.
func (c *fixtureClient) rawSpecRead(hintAddr uint64, hintLen int) []byte {
	return c.ep.Read(hintAddr, hintLen) // want `raw rdma\.Endpoint\.Read call outside the verb-plan layer`
}

func rawMulti(batches []rdma.EndpointBatch) {
	rdma.PostMulti(batches) // want `raw rdma\.PostMulti call`
}

func (c *fixtureClient) accessors() {
	_ = c.ep.Proc() // accessors are not verbs: no finding
	_ = c.ep.Node()
}

func (c *fixtureClient) viaPlan(addr uint64) []byte {
	return planRead(c.ep, addr) // calling into plan.go's vocabulary: no finding
}
