package exec

import (
	"bytes"
	"testing"

	"ditto/internal/rdma"
	"ditto/internal/sim"
)

// scriptPlan replays a fixed sequence of verb groups and records every
// completion, optionally short-circuiting after a group.
type scriptPlan struct {
	groups [][]Verb
	stopAt int // short-circuit: finish after absorbing group stopAt (-1 = never)
	next   int
	got    [][]Result
	eager  []bool
}

func (p *scriptPlan) Step(eager bool) []Verb {
	if p.next >= len(p.groups) {
		return nil
	}
	if p.stopAt >= 0 && p.next > p.stopAt {
		return nil
	}
	p.eager = append(p.eager, eager)
	g := p.groups[p.next]
	p.next++
	return g
}

func (p *scriptPlan) Absorb(res []Result) { p.got = append(p.got, res) }

func testNode(env *sim.Env) *rdma.Node {
	return rdma.NewNode(env, 1<<16, rdma.DefaultConfig())
}

func read(ep *rdma.Endpoint, addr uint64, n int) Verb {
	return Verb{EP: ep, Op: rdma.BatchOp{Kind: rdma.BatchRead, Addr: addr, Len: n}}
}

func write(ep *rdma.Endpoint, addr uint64, data []byte) Verb {
	return Verb{EP: ep, Op: rdma.BatchOp{Kind: rdma.BatchWrite, Addr: addr, Data: data}}
}

func cas(ep *rdma.Endpoint, addr, expect, swap uint64) Verb {
	return Verb{EP: ep, Op: rdma.BatchOp{Kind: rdma.BatchCAS, Addr: addr, Expect: expect, Swap: swap}}
}

// TestSerialRunsPlanToCompletion checks the serial strategy issues one
// synchronous verb per round trip in plan order and feeds groups back.
func TestSerialRunsPlanToCompletion(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(n, p)
		pl := &scriptPlan{stopAt: -1, groups: [][]Verb{
			{write(ep, 0, []byte("hello"))},
			{read(ep, 0, 5), read(ep, 0, 2)},
		}}
		RunSerial(pl)
		if len(pl.got) != 2 {
			t.Fatalf("absorbed %d groups, want 2", len(pl.got))
		}
		if !bytes.Equal(pl.got[1][0].Data, []byte("hello")) || !bytes.Equal(pl.got[1][1].Data, []byte("he")) {
			t.Fatalf("reads returned %q, %q", pl.got[1][0].Data, pl.got[1][1].Data)
		}
		for _, e := range pl.eager {
			if e {
				t.Fatal("serial strategy asked for eager traversal")
			}
		}
		if n.Stats.DoorbellBatches != 0 {
			t.Fatalf("serial run posted %d doorbells", n.Stats.DoorbellBatches)
		}
	})
	env.Run()
}

// TestDoorbellOneBatchPerRound checks that a round posts exactly one
// doorbell per endpoint regardless of how many plans contributed.
func TestDoorbellOneBatchPerRound(t *testing.T) {
	env := sim.NewEnv(2)
	n := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(n, p)
		var plans []Plan
		for i := 0; i < 8; i++ {
			addr := uint64(i * 8)
			plans = append(plans, &scriptPlan{stopAt: -1, groups: [][]Verb{
				{write(ep, addr, []byte{byte(i)})},
				{read(ep, addr, 1)},
			}})
		}
		RunDoorbell(plans)
		if n.Stats.DoorbellBatches != 2 {
			t.Fatalf("posted %d doorbells, want 2 (one per round)", n.Stats.DoorbellBatches)
		}
		for i, pl := range plans {
			got := pl.(*scriptPlan).got
			if got[1][0].Data[0] != byte(i) {
				t.Fatalf("plan %d read %d", i, got[1][0].Data[0])
			}
			for _, e := range pl.(*scriptPlan).eager {
				if !e {
					t.Fatal("doorbell strategy asked for lazy traversal")
				}
			}
		}
	})
	env.Run()
}

// TestDoorbellDedupsIdenticalReads checks identical READs across plans in
// one round issue once and fan out, while distinct reads don't merge.
func TestDoorbellDedupsIdenticalReads(t *testing.T) {
	env := sim.NewEnv(3)
	n := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(n, p)
		copy(n.Mem()[0:], "shared!!")
		a := &scriptPlan{stopAt: -1, groups: [][]Verb{{read(ep, 0, 8)}}}
		b := &scriptPlan{stopAt: -1, groups: [][]Verb{{read(ep, 0, 8), read(ep, 8, 8)}}}
		RunDoorbell([]Plan{a, b})
		if n.Stats.Reads != 2 {
			t.Fatalf("issued %d READs, want 2 (shared read deduped)", n.Stats.Reads)
		}
		if !bytes.Equal(a.got[0][0].Data, []byte("shared!!")) ||
			!bytes.Equal(b.got[0][0].Data, []byte("shared!!")) {
			t.Fatal("deduped read did not fan out to both plans")
		}
	})
	env.Run()
}

// TestDoorbellMultiEndpoint checks a round spanning two nodes posts one
// doorbell per endpoint and routes results correctly.
func TestDoorbellMultiEndpoint(t *testing.T) {
	env := sim.NewEnv(4)
	n1, n2 := testNode(env), testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep1, ep2 := rdma.NewEndpoint(n1, p), rdma.NewEndpoint(n2, p)
		copy(n1.Mem()[0:], "one")
		copy(n2.Mem()[0:], "two")
		pl := &scriptPlan{stopAt: -1, groups: [][]Verb{
			{read(ep1, 0, 3), read(ep2, 0, 3)},
		}}
		RunDoorbell([]Plan{pl})
		if !bytes.Equal(pl.got[0][0].Data, []byte("one")) || !bytes.Equal(pl.got[0][1].Data, []byte("two")) {
			t.Fatalf("cross-node results misrouted: %q %q", pl.got[0][0].Data, pl.got[0][1].Data)
		}
		if n1.Stats.DoorbellBatches != 1 || n2.Stats.DoorbellBatches != 1 {
			t.Fatalf("doorbells: %d/%d, want 1/1", n1.Stats.DoorbellBatches, n2.Stats.DoorbellBatches)
		}
	})
	env.Run()
}

// TestDoorbellPlanOrderPreserved checks same-round CASes land in plan
// order: the first plan's CAS wins, later ones observe it.
func TestDoorbellPlanOrderPreserved(t *testing.T) {
	env := sim.NewEnv(5)
	n := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(n, p)
		a := &scriptPlan{stopAt: -1, groups: [][]Verb{{cas(ep, 0, 0, 11)}}}
		b := &scriptPlan{stopAt: -1, groups: [][]Verb{{cas(ep, 0, 0, 22)}}}
		RunDoorbell([]Plan{a, b})
		if !a.got[0][0].Swapped {
			t.Fatal("first plan's CAS lost")
		}
		if b.got[0][0].Swapped || b.got[0][0].Old != 11 {
			t.Fatalf("second plan's CAS: swapped=%v old=%d, want loss observing 11",
				b.got[0][0].Swapped, b.got[0][0].Old)
		}
	})
	env.Run()
}

// TestShortCircuitSkipsRemainingStages checks a plan that finishes early
// (hit in the first bucket) stops being stepped under both strategies.
func TestShortCircuitSkipsRemainingStages(t *testing.T) {
	for _, s := range []Strategy{Serial, Doorbell} {
		env := sim.NewEnv(6)
		n := testNode(env)
		env.Go("c", func(p *sim.Proc) {
			ep := rdma.NewEndpoint(n, p)
			pl := &scriptPlan{stopAt: 0, groups: [][]Verb{
				{read(ep, 0, 4)},
				{read(ep, 8, 4)}, // must never be issued
			}}
			Run(s, pl)
			if len(pl.got) != 1 || n.Stats.Reads != 1 {
				t.Fatalf("%v: absorbed %d groups with %d READs, want 1/1",
					s, len(pl.got), n.Stats.Reads)
			}
		})
		env.Run()
	}
}

// TestRunEmpty covers degenerate inputs.
func TestRunEmpty(t *testing.T) {
	RunDoorbell(nil)
	Run(Serial)
	env := sim.NewEnv(7)
	n := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		pl := &scriptPlan{stopAt: -1} // no groups at all
		Run(Doorbell, pl)
		RunSerial(pl)
		if n.Stats.Total() != 0 {
			t.Fatal("empty plans issued verbs")
		}
	})
	env.Run()
}
