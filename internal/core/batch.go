package core

// Doorbell-batched multi-key operations. Real cache front ends fetch and
// store keys in batches, and Ditto's verb budget (§4.1) makes each key
// cheap — but a round trip per key still serializes on the network RTT.
// MGet and MSet instead post every verb of a pipeline stage with ONE RNIC
// doorbell (rdma.Endpoint.PostBatch): the verbs' completions overlap, so
// a whole stage costs its RNIC service time plus a single RTT.
//
//	MGet: 1 doorbell (all bucket READs) + 1 doorbell (all object READs)
//	MSet: 1 doorbell (bucket READs) + 1 doorbell (candidate object READs)
//	      + 1 doorbell (object WRITEs) + 1 doorbell (publishing CASes)
//
// Races are resolved exactly as in the serial paths: a key whose snapshot
// went stale or whose publishing CAS lost re-runs through Get/Set's
// bounded retry loops, so batched and serial operations are observably
// equivalent.

import (
	"bytes"

	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
)

// KV is one key/value pair of an MSet batch.
type KV struct {
	Key, Value []byte
}

// batchKey caches the per-key hash facts shared by MGet and MSet.
type batchKey struct {
	kh uint64
	fp byte
	b  [2]int // main, backup bucket
}

// batchKeys hashes every key and collects the distinct buckets the batch
// must read, in first-use order (deterministic; bucketIdx maps a bucket
// to its position in the returned list).
func (c *Client) batchKeys(keys [][]byte) (infos []batchKey, bucketList []int, bucketIdx map[int]int) {
	infos = make([]batchKey, len(keys))
	bucketIdx = make(map[int]int)
	for i, k := range keys {
		kh := hashtable.KeyHash(k)
		infos[i] = batchKey{
			kh: kh,
			fp: hashtable.Fingerprint(kh),
			b:  [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)},
		}
		for _, b := range infos[i].b {
			if _, seen := bucketIdx[b]; !seen {
				bucketIdx[b] = len(bucketList)
				bucketList = append(bucketList, b)
			}
		}
	}
	return infos, bucketList, bucketIdx
}

// readObjects fetches the objects behind the given slots with one
// doorbell batch of READs.
func (c *Client) readObjects(slots []hashtable.Slot) [][]byte {
	if len(slots) == 0 {
		return nil
	}
	ops := make([]rdma.BatchOp, len(slots))
	for i, s := range slots {
		ops[i] = rdma.BatchOp{Kind: rdma.BatchRead, Addr: s.Atomic.Pointer(), Len: s.Atomic.SizeBytes()}
	}
	res := c.ep.PostBatch(ops)
	out := make([][]byte, len(slots))
	for i := range res {
		out[i] = res[i].Data
	}
	return out
}

// ------------------------------------------------------------------ MGet ----

// MGet fetches a batch of keys. An all-hit batch costs exactly two
// doorbell batches — every bucket READ, then every object READ — instead
// of two round trips per key; per-key hit handling (stats, frequency,
// last_ts, expert extensions) is identical to Get's.
func (c *Client) MGet(keys [][]byte) ([][]byte, []bool) { return c.mget(keys, false) }

// mget implements MGet; probe=true silences misses (no counters, no
// regrets, no observer report), the batched counterpart of getProbe —
// MultiClient's forwarding window probes with it.
func (c *Client) mget(keys [][]byte, probe bool) ([][]byte, []bool) {
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	start := c.p.Now()
	infos, bucketList, bucketIdx := c.batchKeys(keys)
	buckets := c.ht.ReadBuckets(bucketList)

	// Candidates in per-key scan order (main bucket before backup), so
	// the first key match below is the copy a serial Get would return.
	type cand struct {
		key  int
		slot hashtable.Slot
	}
	var cands []cand
	histMatches := make([][]hashtable.Slot, len(keys))
	for i := range keys {
		for _, b := range infos[i].b {
			for _, s := range buckets[bucketIdx[b]] {
				switch {
				case s.Atomic.IsEmpty():
				case s.Atomic.IsHistory():
					if s.Hash == infos[i].kh {
						histMatches[i] = append(histMatches[i], s)
					}
				case s.Atomic.FP() == infos[i].fp:
					cands = append(cands, cand{key: i, slot: s})
				}
			}
		}
	}
	slots := make([]hashtable.Slot, len(cands))
	for j := range cands {
		slots[j] = cands[j].slot
	}
	objs := c.readObjects(slots)

	stale := make([]bool, len(keys))
	for j := range cands {
		i := cands[j].key
		if oks[i] {
			continue // an earlier candidate already hit for this key
		}
		dec := decodeObject(objs[j])
		if !dec.ok {
			stale[i] = true // reused memory behind a stale slot snapshot
			continue
		}
		if !bytes.Equal(dec.key, keys[i]) {
			continue // fingerprint collision
		}
		c.touchOnHit(cands[j].slot, dec, len(keys[i]))
		c.Stats.Gets++
		c.Stats.Hits++
		vals[i] = append([]byte(nil), dec.value...)
		oks[i] = true
		c.report(OpGet, start, true)
	}

	for i := range keys {
		if oks[i] {
			continue
		}
		if stale[i] {
			// Rare: the snapshot raced a concurrent update. Re-run the key
			// through the serial path, which retries bounded re-reads
			// exactly as a lone Get would.
			vals[i], oks[i] = c.get(keys[i], probe)
			continue
		}
		if probe {
			continue
		}
		c.Stats.Gets++
		c.Stats.Misses++
		if c.adapt != nil {
			c.collectRegrets(histMatches[i])
			if c.cl.opts.DisableLWH {
				c.ep.Read(memnode.HistCounterAddr, 8)
			}
		}
		c.report(OpGet, start, false)
	}
	return vals, oks
}

// ------------------------------------------------------------------ MSet ----

// msetCand is one fingerprint-matching slot observed for a pair, tagged
// with which of the pair's buckets (0 = main, 1 = backup) held it.
type msetCand struct {
	pair int
	bkt  int
	slot hashtable.Slot
}

// msetPlan classifies one pair of an MSet batch.
type msetPlan struct {
	mode int // planFallback / planUpdate / planInsert
	slot hashtable.Slot // update target, or the reclaimable slot to claim
	dec  decodedObject  // planUpdate: the current copy
}

const (
	planFallback = iota // no free slot in either bucket: serial Set path
	planUpdate
	planInsert
)

// MSet stores a batch of key/value pairs with up to four doorbell batches
// (bucket READs, candidate object READs, object WRITEs, publishing
// CASes). Each pair is classified exactly as one trySet attempt would —
// update-in-place when the key's current copy is found, else an insert
// into the first reclaimable slot, preferring the main bucket — and any
// pair whose CAS loses a race or whose buckets are full falls back to the
// serial Set retry loop, so batched and serial stores behave identically
// under contention.
func (c *Client) MSet(pairs []KV) {
	if len(pairs) == 0 {
		return
	}
	start := c.p.Now()
	// Same over-budget drain budget a sequence of len(pairs) Sets would
	// have, so batched writes shrink an over-budget heap at the same rate
	// as sequential ones.
	for i := 0; i < shrinkEvictBatch*len(pairs) && c.cl.MN.OverBudget(); i++ {
		if !c.evictOne() {
			break
		}
	}
	keys := make([][]byte, len(pairs))
	for i := range pairs {
		keys[i] = pairs[i].Key
	}
	infos, bucketList, bucketIdx := c.batchKeys(keys)
	buckets := c.ht.ReadBuckets(bucketList)

	// Every fingerprint match is a possible current copy of its pair's
	// key; fetch them all in one doorbell to classify update vs insert.
	var cands []msetCand
	for i := range pairs {
		for bi, b := range infos[i].b {
			for _, s := range buckets[bucketIdx[b]] {
				if s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != infos[i].fp {
					continue
				}
				cands = append(cands, msetCand{pair: i, bkt: bi, slot: s})
			}
		}
	}
	slots := make([]hashtable.Slot, len(cands))
	for j := range cands {
		slots[j] = cands[j].slot
	}
	objs := c.readObjects(slots)

	// Classify. Like trySet, the backup bucket is not searched for an
	// update match when the main bucket already offers a free slot.
	plans := make([]msetPlan, len(pairs))
	decoded := make([]decodedObject, len(cands))
	for j := range cands {
		decoded[j] = decodeObject(objs[j])
	}
	for i := range pairs {
		plans[i] = c.classifyPair(i, infos[i], buckets, bucketIdx, cands, decoded, keys[i])
	}

	// Allocate and write every planned object, then publish with one CAS
	// doorbell. Allocation may evict (serial verbs between doorbells);
	// the publishing CAS detects any slot our eviction or a concurrent
	// client touched, and those pairs retry through Set.
	now := c.p.Now()
	type commit struct {
		pair int
		addr uint64
		size int
		want hashtable.AtomicField
	}
	var commits []commit
	var writeOps, casOps []rdma.BatchOp
	var fallback []int
	for i := range pairs {
		pl := &plans[i]
		if pl.mode == planFallback {
			fallback = append(fallback, i)
			continue
		}
		size := objBytes(len(pairs[i].Key), len(pairs[i].Value), c.cl.totalExt)
		addr := c.allocOrEvict(size)
		var ext []byte
		fp := infos[i].fp
		if pl.mode == planUpdate {
			ext = c.updateExt(pl.slot, pl.dec, size, now)
			fp = pl.slot.Atomic.FP()
		} else {
			ext = c.initExts(size, now)
		}
		want := hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(size), addr)
		writeOps = append(writeOps, rdma.BatchOp{
			Kind: rdma.BatchWrite, Addr: addr,
			Data: encodeObject(pairs[i].Key, pairs[i].Value, ext),
		})
		casOps = append(casOps, rdma.BatchOp{
			Kind: rdma.BatchCAS, Addr: hashtable.AtomicAddr(pl.slot.Addr),
			Expect: uint64(pl.slot.Atomic), Swap: uint64(want),
		})
		commits = append(commits, commit{pair: i, addr: addr, size: size, want: want})
	}
	c.ep.PostBatch(writeOps)
	res := c.ep.PostBatch(casOps)
	for j := range commits {
		cm := &commits[j]
		pl := &plans[cm.pair]
		if !res[j].Swapped {
			// Lost the slot to a concurrent writer, an eviction, or an
			// earlier pair of this very batch: release the staged object
			// and retry serially.
			c.alloc.Free(cm.addr, cm.size)
			c.Stats.SetRetries++
			fallback = append(fallback, cm.pair)
			continue
		}
		if pl.mode == planUpdate {
			c.finishUpdate(pl.slot, len(pairs[cm.pair].Key), now)
		} else {
			c.finishInsert(pl.slot.Addr, infos[cm.pair].kh, now)
		}
		c.Stats.Sets++
		c.report(OpSet, start, true)
	}
	for _, i := range fallback {
		c.Set(pairs[i].Key, pairs[i].Value) // counts its own Sets/retries
	}
}

// classifyPair decides update/insert/fallback for one pair against the
// batch's bucket snapshot, mirroring one trySet attempt's scan order.
func (c *Client) classifyPair(pair int, info batchKey, buckets [][]hashtable.Slot,
	bucketIdx map[int]int, cands []msetCand, decoded []decodedObject, key []byte) msetPlan {

	for bi, b := range info.b {
		for j := range cands {
			if cands[j].pair != pair || cands[j].bkt != bi {
				continue
			}
			if dec := decoded[j]; dec.ok && bytes.Equal(dec.key, key) {
				return msetPlan{mode: planUpdate, slot: cands[j].slot, dec: dec}
			}
		}
		for _, s := range buckets[bucketIdx[b]] {
			if c.hist.Reclaimable(s) {
				return msetPlan{mode: planInsert, slot: s}
			}
		}
	}
	return msetPlan{mode: planFallback}
}
