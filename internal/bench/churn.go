package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/exec"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// churnRow is one measured configuration of the churn scenario, as
// serialized into BENCH_churn.json.
type churnRow struct {
	Mode       string  `json:"mode"` // "inline-serial" | "background-serial" | "background-doorbell"
	Mops       float64 `json:"mops"`
	SetP50Us   float64 `json:"set_p50_us"`
	SetP99Us   float64 `json:"set_p99_us"`
	P99Speedup float64 `json:"set_p99_speedup_vs_inline_serial"`
	HitRate    float64 `json:"hit_rate"`

	// Eviction observability (core.Stats, aggregated over the clients
	// plus the reclaimer).
	Evictions          int64   `json:"evictions"`
	SampledPerEviction float64 `json:"sampled_slots_per_eviction"`
	EvictResamples     int64   `json:"evict_resamples"`
	WriteStallTicks    int64   `json:"write_stall_ticks"`
	WriteStallMs       float64 `json:"write_stall_ms"` // eviction-stall time, all clients
	ReclaimerEvictions int64   `json:"reclaimer_evictions"`
	ReclaimerWakeups   int64   `json:"reclaimer_wakeups"`

	// Host-side cost of simulating the measured phase (see Result):
	// allocations and wall-clock nanoseconds per operation — the
	// simulator-hot-path figures the alloc gate diffs across commits.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HostNsPerOp float64 `json:"host_ns_per_op"`
}

// Churn measures eviction as a first-class I/O plane: write-heavy
// zipfian churn at ~100% heap occupancy, where every insert needs a
// block some victim must give up. Three reclaim configurations run the
// SAME workload:
//
//   - inline-serial: no background reclaimer; each Set that cannot
//     allocate runs the eviction verb chain itself, one verb per RTT —
//     the paper-faithful baseline, with the whole chain on the write's
//     critical path.
//   - background-serial: the proactive reclaimer evicts ahead of demand
//     between the free-space watermarks, but runs its plans serially.
//   - background-doorbell: the reclaimer additionally batches its
//     eviction plans — one doorbell samples several windows and CASes
//     several victims per round.
//
// The headline is Set p99: inline eviction puts sample READ, per-
// candidate ext READs (the GDSF expert), history FAA and victim CAS on
// the tail of every allocating Set, while background reclaim leaves
// Sets stalling only when the reclaimer genuinely fell behind — visible
// as write_stall_ms and the p99 gap. background-serial typically CANNOT
// keep up (stall ticks pile up and p99 explodes): one reclaimer issuing
// one verb per RTT evicts slower than many writers allocate, so the
// doorbell batching is what makes background reclaim viable at all.
func Churn(w io.Writer, scale Scale) error {
	header(w, "Churn: write-heavy zipf at ~100% occupancy — inline vs background reclaim")
	objects := scale.pick(2000, 8000)
	clients := scale.pick(8, 24)
	opsEach := scale.pick(2500, 10000)

	modes := []struct {
		name       string
		background bool
		strat      exec.Strategy
	}{
		{"inline-serial", false, exec.Serial},
		{"background-serial", true, exec.Serial},
		{"background-doorbell", true, exec.Doorbell},
	}
	row(w, "mode", "tput(Mops)", "set p50(us)", "set p99(us)", "p99 speedup", "hit rate", "stall(ms)")
	var rows []churnRow
	baseP99 := 0.0
	for _, md := range modes {
		res, setHist, st, rs := runChurn(objects, clients, opsEach, md.background, md.strat)
		p50 := float64(setHist.Percentile(50)) / 1000
		p99 := float64(setHist.Percentile(99)) / 1000
		if md.name == "inline-serial" {
			baseP99 = p99
		}
		speedup := 0.0
		if p99 > 0 {
			speedup = baseP99 / p99
		}
		stallMs := float64(st.WriteStallNs) / 1e6
		row(w, md.name, res.Mops(), p50, p99, speedup, res.HitRate(), stallMs)
		fmt.Fprintf(w, "  evictions: %d client + %d reclaimer (%.1f slots sampled/eviction, %d resamples), %d stall ticks, %d wakeups\n",
			st.Evictions, rs.Evictions, sampledPerEviction(st, rs), st.EvictResamples+rs.EvictResamples,
			st.WriteStallTicks, rs.ReclaimerWakeups)
		rows = append(rows, churnRow{
			Mode: md.name, Mops: res.Mops(), SetP50Us: p50, SetP99Us: p99,
			P99Speedup: speedup, HitRate: res.HitRate(),
			Evictions:          st.Evictions + rs.Evictions,
			SampledPerEviction: sampledPerEviction(st, rs),
			EvictResamples:     st.EvictResamples + rs.EvictResamples,
			WriteStallTicks:    st.WriteStallTicks,
			WriteStallMs:       stallMs,
			ReclaimerEvictions: rs.Evictions,
			ReclaimerWakeups:   rs.ReclaimerWakeups,
			AllocsPerOp:        res.AllocsPerOp(),
			HostNsPerOp:        res.HostNsPerOp(),
		})
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario": "churn",
		"scale":    scale.String(),
		"objects":  objects,
		"clients":  clients,
		"ops_each": opsEach,
		"results":  rows,
	})
}

// sampledPerEviction folds client and reclaimer sampling into the
// slots-sampled-per-eviction figure.
func sampledPerEviction(st, rs core.Stats) float64 {
	ev := st.Evictions + rs.Evictions
	if ev == 0 {
		return 0
	}
	return float64(st.SampledSlots+rs.SampledSlots) / float64(ev)
}

// runChurn loads one MN to capacity, then runs `clients` closed-loop
// clients issuing 70% Sets / 30% Gets over zipf(0.8) keys drawn from a
// keyspace 3x the cache capacity — every Set of an uncached key must
// claim a block from some victim. (Moderate skew: heavier tails shift
// the Set tail to hot-key CAS contention, which no reclaim scheme can
// remove; 0.8 keeps the tail owned by eviction work.) It returns the
// aggregate result, the Set latency histogram, the summed client stats,
// and the reclaimer's.
func runChurn(objects, clients, opsEach int, background bool, strat exec.Strategy) (Result, *stats.Histogram, core.Stats, core.Stats) {
	env := sim.NewEnv(benchSeed(43))
	// 320-byte-class values against a CacheBytes of objects*320: the heap
	// binds at ~`objects` live keys, the table (2.5 slots per expected
	// object) does not.
	opts := core.DefaultOptions(objects, objects*320)
	// A three-expert mix including GDSF: its extension metadata makes the
	// sampling chain pay per-candidate ext READs — the client-overhead
	// regime where moving eviction off the write path matters most.
	opts.Experts = []string{"LRU", "LFU", "GDSF"}
	cl := core.NewCluster(env, opts)
	cl.ReclaimStrategy = strat
	if background {
		cl.EnableBackgroundReclaim(0, 0)
	}
	factory := DittoFactory(cl)
	RunLoad(env, factory, loadKeys(objects), 16)

	keyspace := uint64(objects * 3)
	res := Result{Hist: &stats.Histogram{}}
	setHist := &stats.Histogram{}
	var clientStats core.Stats
	meter := startHostMeter()
	start := env.Now()
	for i := 0; i < clients; i++ {
		i := i
		env.Go("client", func(p *sim.Proc) {
			c := cl.NewClient(p)
			c.OnOp = func(op core.OpKind, latency int64, hit bool) {
				res.Hist.Record(latency)
				if op == core.OpSet {
					setHist.Record(latency)
				}
			}
			rng := rand.New(rand.NewSource(int64(500 + i)))
			next := zipfSampler(rng, 0.8, keyspace)
			for n := 0; n < opsEach; n++ {
				k := workload.KeyBytes(next())
				if rng.Intn(10) < 7 {
					c.Set(k, make([]byte, 240))
				} else if _, ok := c.Get(k); ok {
					res.Hits++
				} else {
					res.Misses++
				}
				res.Ops++
			}
			clientStats.Add(c.Stats)
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start
	meter.stop(&res)
	return res, setHist, clientStats, cl.ReclaimerStats()
}
