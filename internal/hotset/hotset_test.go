package hotset

import (
	"testing"

	"ditto/internal/sim"
)

func TestReadTargetRotates(t *testing.T) {
	e := &Entry{Primary: 7, Replicas: []int{1, 3}}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, e.ReadTarget(int64(i)))
	}
	want := []int{7, 1, 3, 7, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	if e.Reads != 6 || e.lastRead != 5 {
		t.Fatalf("reads=%d lastRead=%d", e.Reads, e.lastRead)
	}
}

func TestInsertLookupRemove(t *testing.T) {
	env := sim.NewEnv(1)
	s := New(env, 4)
	e := &Entry{Key: []byte("k"), Primary: 0, Replicas: []int{1}}
	if !s.Insert(nil, e) {
		t.Fatal("insert failed")
	}
	if !e.busy {
		t.Fatal("entry not born locked")
	}
	if s.Insert(nil, &Entry{Key: []byte("k")}) {
		t.Fatal("duplicate insert succeeded")
	}
	if s.Lookup([]byte("k")) != e || s.Lookup([]byte("x")) != nil {
		t.Fatal("lookup wrong")
	}
	s.Unlock(e)
	env.Go("p", func(p *sim.Proc) {
		got := s.Lock(p, []byte("k"))
		if got != e {
			t.Fatal("lock did not return the entry")
		}
		s.Remove(got)
		if s.Len() != 0 || s.Lookup([]byte("k")) != nil {
			t.Fatal("remove did not delete")
		}
		if s.Lock(p, []byte("k")) != nil {
			t.Fatal("lock on absent key returned an entry")
		}
	})
	env.Run()
}

// TestLockSerializesMaintainers runs two processes contending for one
// entry's lock: the second must wait until the first releases, and a
// waiter whose entry is removed while blocked must get nil.
func TestLockSerializesMaintainers(t *testing.T) {
	env := sim.NewEnv(2)
	s := New(env, 4)
	e := &Entry{Key: []byte("k")}
	s.Insert(nil, e) // born locked by "promoter" below
	var order []string

	env.Go("promoter", func(p *sim.Proc) {
		p.Sleep(10)
		order = append(order, "promote-done")
		s.Unlock(e)
	})
	env.Go("writer", func(p *sim.Proc) {
		got := s.Lock(p, []byte("k"))
		order = append(order, "writer-locked")
		if got != e {
			t.Fatal("writer locked wrong entry")
		}
		p.Sleep(10)
		s.Remove(got)
	})
	env.Go("late", func(p *sim.Proc) {
		p.Sleep(5)
		if got := s.Lock(p, []byte("k")); got != nil {
			t.Fatalf("late locker got %v after removal", got)
		}
		order = append(order, "late-nil")
	})
	env.Run()
	if len(order) != 3 || order[0] != "promote-done" || order[1] != "writer-locked" || order[2] != "late-nil" {
		t.Fatalf("order = %v", order)
	}
}

func TestVictimPicksColdestUnlocked(t *testing.T) {
	env := sim.NewEnv(3)
	s := New(env, 8)
	mk := func(k string, last int64) *Entry {
		e := &Entry{Key: []byte(k)}
		s.Insert(nil, e)
		s.Unlock(e)
		e.ReadTarget(last)
		return e
	}
	cold := mk("cold", 1)
	mk("warm", 50)
	hot := mk("hot", 100)
	if v := s.Victim(); v != cold {
		t.Fatalf("victim = %s, want cold", v.Key)
	}
	// A busy entry is never the victim, even if coldest.
	cold.busy = true
	if v := s.Victim(); v == cold {
		t.Fatal("victim picked a busy entry")
	}
	if len(s.Keys()) != 3 {
		t.Fatalf("keys = %d", len(s.Keys()))
	}
	_ = hot
}

// TestLockStealFromKilledOwner: a lock whose holder is Killed is stolen
// by the next locker after CrashWake, and the entry comes back Warming
// (the dead holder may have left the copy set half-mutated).
func TestLockStealFromKilledOwner(t *testing.T) {
	env := sim.NewEnv(4)
	s := New(env, 4)
	e := &Entry{Key: []byte("k")}
	s.Insert(nil, e)
	s.Unlock(e)
	stole := false
	var holder *sim.Proc
	holder = env.Go("holder", func(p *sim.Proc) {
		got := s.Lock(p, []byte("k"))
		if got.Owner() != p {
			t.Error("Owner() not recorded by Lock")
		}
		p.Sleep(1000) // dies holding the lock
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(5) // let holder take the lock first
		got := s.Lock(p, []byte("k"))
		if got != e {
			t.Error("waiter did not steal the entry")
		}
		if !got.Warming {
			t.Error("stolen entry not marked Warming")
		}
		if got.Owner() != p {
			t.Error("steal did not transfer ownership")
		}
		stole = true
		s.Unlock(got)
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(10)
		env.Kill(holder)
		s.CrashWake()
	})
	env.Run()
	if !stole {
		t.Fatal("waiter never stole the killed holder's lock")
	}
}

func TestMarkPrimaryEvicted(t *testing.T) {
	env := sim.NewEnv(1)
	s := New(env, 8)
	e := &Entry{Key: []byte("k"), KeyHash: 42, Primary: 3, Replicas: []int{1, 2}}
	s.Insert(nil, e)
	s.Unlock(e)

	// A replica node evicting the copy (or any other hash) must not flag.
	s.MarkPrimaryEvicted(1, 42)
	s.MarkPrimaryEvicted(3, 7)
	if e.Evicted {
		t.Fatal("flagged by a non-primary eviction or a foreign hash")
	}
	// The primary's eviction of the matching hash flags the entry, with
	// no lock taken (busy stays false).
	s.MarkPrimaryEvicted(3, 42)
	if !e.Evicted {
		t.Fatal("primary eviction did not flag the entry")
	}
	if e.busy {
		t.Fatal("marking must not take the entry lock")
	}
}
