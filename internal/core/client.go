package core

import (
	"bytes"
	"fmt"

	"ditto/internal/adaptive"
	"ditto/internal/cachealgo"
	"ditto/internal/exec"
	"ditto/internal/fccache"
	"ditto/internal/hashtable"
	"ditto/internal/history"
	"ditto/internal/loccache"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// getRetries bounds re-reads when a stale pointer is observed under
// concurrent updates.
const getRetries = 3

// evictAttempts bounds resampling before giving up on one eviction round
// (generous: under heavy multi-client thrash, CAS losses burn attempts).
const evictAttempts = 512

// Stats are per-client operation counters.
type Stats struct {
	Gets, Sets, Deletes int64
	Hits, Misses        int64
	Evictions           int64
	Regrets             int64
	SetRetries          int64
	BucketEvictions     int64

	// Eviction observability. SampledSlots counts slots fetched by
	// eviction sample READs (SampledSlots/Evictions is the sampled-slots-
	// per-eviction figure); EvictResamples counts eviction attempts that
	// found no live candidate or lost the victim CAS and had to resample.
	SampledSlots   int64
	EvictResamples int64

	// WriteStallTicks counts the bounded stall rounds a write's
	// allocOrEvict slept waiting for the background reclaimer (zero when
	// none is enabled). WriteStallNs is the total virtual time writes
	// spent beyond a clean allocation — reclaimer stall ticks plus any
	// inline eviction verbs — the eviction-stall time of the churn bench.
	WriteStallTicks int64
	WriteStallNs    int64

	// ReclaimerWakeups counts pressure wakeups; only the background
	// reclaimer's own client (Cluster.ReclaimerStats) increments it.
	ReclaimerWakeups int64

	// ShedOps counts operations overload control rejected up front
	// (TryMSet on an over-quota tenant while the node was overloaded);
	// no verbs were issued for them.
	ShedOps int64

	// Speculative-Get observability (Options.LocCacheSlots > 0).
	// SpecGetHits counts Gets served by ONE speculative READ of a
	// location-cache hint that validated in place; SpecGetFallbacks counts
	// hinted Gets whose speculative image failed validation (block reused,
	// freed, lease lapsed, …) and fell back to the ordinary bucket walk —
	// those Gets paid one extra READ. Unhinted Gets touch neither counter.
	SpecGetHits      int64
	SpecGetFallbacks int64
}

// Add folds other's counters into s — the one summation every
// aggregator (MultiClient.Stats, the bench harnesses) shares, so a new
// counter cannot be silently dropped from one of them.
func (s *Stats) Add(other Stats) {
	s.Gets += other.Gets
	s.Sets += other.Sets
	s.Deletes += other.Deletes
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Regrets += other.Regrets
	s.SetRetries += other.SetRetries
	s.BucketEvictions += other.BucketEvictions
	s.SampledSlots += other.SampledSlots
	s.EvictResamples += other.EvictResamples
	s.WriteStallTicks += other.WriteStallTicks
	s.WriteStallNs += other.WriteStallNs
	s.ReclaimerWakeups += other.ReclaimerWakeups
	s.ShedOps += other.ShedOps
	s.SpecGetHits += other.SpecGetHits
	s.SpecGetFallbacks += other.SpecGetFallbacks
}

// SpecGetHitRate returns SpecGetHits/Gets — the fraction of Gets served
// in one RTT by a validated speculative read. Denominator is all Gets
// (not just hinted ones): the rate answers "how much of the read traffic
// went one-RTT", the number the benches report.
func (s *Stats) SpecGetHitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.SpecGetHits) / float64(s.Gets)
}

// HitRate returns Hits/(Hits+Misses).
func (s *Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Client is one Ditto client: the library instance an application links
// against on a compute node. It must run inside its own sim process.
type Client struct {
	cl    *Cluster
	p     *sim.Proc
	ep    *rdma.Endpoint
	ht    *hashtable.Handle
	alloc *memnode.Alloc
	hist  *history.Client
	adapt *adaptive.Client
	fc    *fccache.Cache

	experts []cachealgo.Algorithm
	extOff  []int // offset of each expert's extension segment

	// runner owns the pooled executor scratch; served is this client's
	// shard of the cluster's ServedReads counter. meta8 backs the
	// DisableSFHT ablation's per-hit metadata WRITE (safe to reuse:
	// WriteAsync applies before returning). extMeta is the scratch
	// Metadata handed to expert Init/UpdateExt calls — passing a local
	// through the interface forces a heap allocation per call, and the
	// contract says experts must not retain the pointer.
	runner  exec.Runner
	served  *stats.CounterCell
	meta8   [8]byte
	extMeta cachealgo.Metadata

	// Plan free lists and in-flight batch scratch (see pool.go). runOps
	// carries one M-operation's plans; runEv the eviction batches —
	// separate because inline eviction can fire while an M-operation's
	// doorbell round is mid-absorb.
	freeGet   []*getPlan
	freeSet   []*setPlan
	freeDel   []*delPlan
	freeEv    []*evictPlan
	freeSpec  []*specGetPlan
	getPlans  []*getPlan
	setPlans  []*setPlan
	delPlans  []*delPlan
	evPlans   []*evictPlan
	specPlans []*specGetPlan
	runOps    []exec.Plan
	runEv     []exec.Plan
	specIdx   []int // key index each in-flight spec plan serves (mget)
	getIdx    []int // key index each in-flight get plan serves (mget)

	// Location cache behind one-RTT speculative Gets (nil unless
	// Options.LocCacheSlots > 0; see internal/loccache). verBase/verSeq
	// generate this client's object incarnation stamps: verBase is the
	// cluster-assigned 16-bit client id pre-shifted into stamp position,
	// verSeq the per-staging sequence — deterministic counters, no RNG
	// draw, so enabling stamps never perturbs randomness order. stamp8 is
	// the reusable all-zero image freeStampAsync writes over a freed
	// block's tenant+ver bytes (safe to share: WriteAsync applies before
	// returning, and the stamp is always zero).
	loc     *loccache.Cache
	verBase uint64
	verSeq  uint32
	stamp8  [8]byte

	// Stats accumulates this client's counters.
	Stats Stats

	// OnOp, when non-nil, observes every completed Get/Set with its
	// virtual-time latency; benchmark harnesses install collectors here.
	OnOp func(op OpKind, latency int64, hit bool)

	// onHit, when non-nil, observes every hit with the key's owning
	// tenant and logical frequency (noteHit's convention: remote snapshot
	// + pending FC-cache delta + this hit). MultiClient installs it as
	// the hot-key promotion signal; the hook must not issue verbs (it
	// runs inside the hit path).
	onHit func(key []byte, tenant TenantID, freq uint64)

	// Tenancy (see tenancy.go): the bound tenant stamped into objects
	// this client stores, the client's shard of the cluster's per-tenant
	// usage counter, and the pending lease expiry SetTTL arms for the
	// next Set (0 = no lease).
	tenant     TenantID
	tcell      *stats.TenantCell
	nextExpiry int64
}

// OpKind labels operations for OnOp.
type OpKind int

// Operation kinds reported to OnOp.
const (
	OpGet OpKind = iota
	OpSet
)

// NewClient creates a Ditto client for process p. Each application thread
// gets its own client, matching the paper's one-client-per-core model.
func (cl *Cluster) NewClient(p *sim.Proc) *Client {
	ep := rdma.NewEndpoint(cl.MN.Node, p)
	c := &Client{
		cl:     cl,
		p:      p,
		ep:     ep,
		ht:     hashtable.NewHandle(cl.Layout, ep),
		alloc:  memnode.NewAlloc(cl.MN, ep),
		hist:   history.NewClient(ep, hashtable.NewHandle(cl.Layout, ep), cl.histSize),
		served: cl.servedReads.NewCell(),
		tcell:  cl.tenantUsage.NewCell(),
	}
	cl.verClients++
	c.verBase = uint64(cl.verClients) << 32
	if cl.specMode() {
		c.loc = loccache.New(cl.opts.LocCacheSlots)
	}
	off := 0
	for _, name := range cl.opts.Experts {
		a, err := cachealgo.New(name)
		if err != nil {
			//dittolint:allow typederr (config validation: unknown expert name, caught at client construction)
			panic(fmt.Sprintf("core: %v", err))
		}
		c.experts = append(c.experts, a)
		c.extOff = append(c.extOff, off)
		off += a.ExtSize()
	}
	if cl.Adaptive() {
		c.adapt = adaptive.NewClient(adaptive.Config{
			NumExperts:   len(c.experts),
			LearningRate: cl.opts.LearningRate,
			HistorySize:  cl.histSize,
			BatchSize:    cl.opts.BatchSize,
			Eager:        cl.opts.EagerWeightSync,
		}, ep)
	}
	c.fc = fccache.New(cl.opts.FCCacheBytes, cl.opts.FCThreshold, c.ht.FAAFreqAsync)
	return c
}

// Weights exposes the client's local expert weights (nil when adaptive
// caching is off).
func (c *Client) Weights() adaptive.Weights {
	if c.adapt == nil {
		return nil
	}
	return c.adapt.Weights()
}

// Proc returns the owning sim process.
func (c *Client) Proc() *sim.Proc { return c.p }

// Close flushes client-side buffered state (FC cache deltas, pending
// weight penalties).
func (c *Client) Close() {
	c.fc.FlushAll()
	if c.adapt != nil {
		c.adapt.Sync()
	}
}

// ----------------------------------------------------------------- Get ----

// Get fetches the value cached under key, returning ok=false on a miss.
// Critical path: one READ of the key's bucket plus one READ of the object
// (a second bucket READ only on overflow), with metadata maintenance off
// the critical path (§4.1). The verb sequence is the getPlan in plan.go —
// the same plan MGet runs as doorbell batches — traversed serially here.
// The returned value is a fresh copy; use GetAppend to reuse a buffer.
func (c *Client) Get(key []byte) ([]byte, bool) { return c.get(key, false, nil) }

// GetAppend is Get appending the value to dst and returning the extended
// slice — the allocation-free form for callers that reuse a buffer
// across operations.
func (c *Client) GetAppend(dst, key []byte) ([]byte, bool) { return c.get(key, false, dst) }

// getProbe is a Get whose miss is silent: no counters, no regret
// collection, no observer report. MultiClient's forwarding window probes
// with it so a key sitting on its old owner does not record a phantom
// miss (and adaptive penalties) on the new owner for every forwarded
// hit. A probe that hits counts as a normal Get.
func (c *Client) getProbe(key []byte) ([]byte, bool) { return c.get(key, true, nil) }

// get runs the plan and, on a hit, appends the value to dst. The copy
// happens before the plan is released: pl.dec.value is a view into the
// plan's pooled object buffer.
//
// With a location cache enabled, a hinted key first tries the one-RTT
// speculative path: one READ of the hinted block, validated in place by
// specGetPlan (plan.go). A validated hit is a normal hit — same
// counters, same metadata maintenance, same observer report — served in
// a single round trip. Any validation failure silently drops the hint
// and falls through to the ordinary bucket walk below, whose own hit
// path re-records a fresh hint; correctness never depends on the hint.
func (c *Client) get(key []byte, probe bool, dst []byte) ([]byte, bool) {
	start := c.p.Now()
	if c.loc != nil {
		if h, ok := c.loc.Lookup(key); ok {
			spl := c.acquireSpecGetPlan(key, h)
			c.runner.Serial.Run(spl)
			if spl.ok {
				c.Stats.SpecGetHits++
				c.touchOnSpecHit(spl)
				c.Stats.Gets++
				c.Stats.Hits++
				c.served.Inc()
				val := append(dst, spl.dec.value...)
				c.releaseSpecGetPlan(spl)
				c.report(OpGet, start, true)
				return val, true
			}
			c.Stats.SpecGetFallbacks++
			c.loc.Drop(key)
			c.releaseSpecGetPlan(spl)
		}
	}
	var pl *getPlan
	for attempt := 0; attempt < getRetries; attempt++ {
		if pl == nil {
			pl = c.acquireGetPlan(key)
		} else {
			pl.reset(c, key)
		}
		c.runner.Serial.Run(pl)
		if pl.hit {
			freq := c.touchOnHit(pl.slot, pl.dec, len(key))
			c.noteLocation(key, pl.slot, pl.dec, freq)
			c.Stats.Gets++
			c.Stats.Hits++
			c.served.Inc()
			val := append(dst, pl.dec.value...)
			c.releaseGetPlan(pl)
			c.report(OpGet, start, true)
			return val, true
		}
		if !pl.stale {
			break // a clean miss; stale snapshots retry (bounded)
		}
	}

	if probe {
		c.releaseGetPlan(pl)
		return dst, false
	}
	c.Stats.Gets++
	c.Stats.Misses++
	c.served.Inc()
	if c.adapt != nil {
		c.collectRegrets(pl.histMatches)
		if c.cl.opts.DisableLWH {
			// Conventional design: a separate remote hash index over the
			// history must be probed on every miss.
			c.probeConventionalIndex()
		}
	}
	c.releaseGetPlan(pl)
	c.report(OpGet, start, false)
	return dst, false
}

// noteHit buffers this hit's +1 in the FC cache and returns the key's
// logical frequency including it. The pending delta MUST be read before
// fc.Add: the remote snapshot s.Freq predates every buffered increment,
// so the logical count is snapshot + buffered-before-this-hit + 1. Adding
// first would fold the current hit into the pending delta and count it
// twice whenever it was buffered, biasing LFU-family expert priorities
// upward on exactly the keys the FC cache combines hardest.
func (c *Client) noteHit(s hashtable.Slot, keyLen int) uint64 {
	freq := s.Freq + 1 + c.fc.PendingDelta(s.Addr)
	c.fc.Add(s.Addr, keyLen)
	return freq
}

// touchOnHit applies the framework's metadata maintenance after a hit:
// the stateful freq through the FC cache (combined RDMA_FAA), the
// stateless last_ts with one asynchronous RDMA_WRITE, and any expert
// extension metadata with one more asynchronous RDMA_WRITE to the object.
// It returns the hit's logical frequency (noteHit's convention) so the
// caller can seed a location-cache hint without recomputing it.
func (c *Client) touchOnHit(s hashtable.Slot, dec decodedObject, keyLen int) uint64 {
	now := c.p.Now()
	freq := c.noteHit(s, keyLen)
	c.ht.TouchLastTs(s.Addr, now)
	if c.cl.opts.DisableSFHT {
		// Metadata scattered with the object: stateless fields cannot be
		// grouped into a single WRITE. meta8 is reusable because the
		// async WRITE applies before returning.
		c.metaWriteAsync(s.Atomic.Pointer(), c.meta8[:])
	}
	if len(dec.ext) > 0 {
		meta := &c.extMeta
		*meta = cachealgo.Metadata{
			Size:     s.Atomic.SizeBytes(),
			InsertTs: s.InsertTs,
			LastTs:   s.LastTs,
			Freq:     freq,
		}
		for i, a := range c.experts {
			n := a.ExtSize()
			if n == 0 {
				continue
			}
			meta.Ext = dec.ext[c.extOff[i] : c.extOff[i]+n]
			a.UpdateExt(meta, now)
		}
		c.metaWriteAsync(s.Atomic.Pointer()+objHeader, dec.ext)
	}
	if c.onHit != nil {
		c.onHit(dec.key, dec.tenant, freq)
	}
	return freq
}

// touchOnSpecHit is touchOnHit for a validated speculative hit: the same
// maintenance — FC-cache freq buffering, async last_ts touch, expert
// extension updates, the hot-key promotion hook — driven from the hint's
// slot-metadata snapshot instead of a fresh bucket READ (the whole point
// is not to have one). The frequency convention is hint.Freq + 1: the
// hint's Freq already folded the pending FC delta when it was recorded
// off a full bucket walk, so re-adding PendingDelta here would double
// count; between full walks the estimate is blind to other clients'
// accesses, the same fidelity class as the FC cache itself. The
// refreshed hint keeps Addr/Ver — a validated hit proves them current.
func (c *Client) touchOnSpecHit(sp *specGetPlan) {
	now := c.p.Now()
	h := &sp.hint
	freq := h.Freq + 1
	c.fc.Add(h.SlotAddr, len(sp.key))
	c.ht.TouchLastTs(h.SlotAddr, now)
	if c.cl.opts.DisableSFHT {
		c.metaWriteAsync(h.Addr, c.meta8[:])
	}
	if len(sp.dec.ext) > 0 {
		meta := &c.extMeta
		*meta = cachealgo.Metadata{
			Size:     h.Len,
			InsertTs: h.InsertTs,
			LastTs:   h.LastTs,
			Freq:     freq,
		}
		for i, a := range c.experts {
			n := a.ExtSize()
			if n == 0 {
				continue
			}
			meta.Ext = sp.dec.ext[c.extOff[i] : c.extOff[i]+n]
			a.UpdateExt(meta, now)
		}
		c.metaWriteAsync(h.Addr+objHeader, sp.dec.ext)
	}
	h.Freq = freq
	h.LastTs = now
	c.loc.Record(sp.key, *h)
	if c.onHit != nil {
		c.onHit(sp.dec.key, sp.dec.tenant, freq)
	}
}

// noteLocation records (or refreshes) key's location-cache hint off a
// full bucket-walk hit: the slot's published pointer and size class, the
// image's incarnation stamp, and the slot-metadata snapshot a future
// speculative hit maintains metadata from. Hints are recorded on EVERY
// full-plan hit — main bucket or overflow — so repeat reads of
// overflowed keys reach one RTT too. Pre-stamp images (ver 0: written
// by a binary predating the stamp, impossible in-sim but cheap to
// guard) are never hinted; ver 0 is the cleared/freed marker.
func (c *Client) noteLocation(key []byte, s hashtable.Slot, dec decodedObject, freq uint64) {
	if c.loc == nil || dec.ver == 0 {
		return
	}
	c.loc.Record(key, loccache.Hint{
		Addr:     s.Atomic.Pointer(),
		Len:      s.Atomic.SizeBytes(),
		Ver:      dec.ver,
		Tenant:   uint8(dec.tenant),
		SlotAddr: s.Addr,
		InsertTs: s.InsertTs,
		LastTs:   c.p.Now(),
		Freq:     freq,
	})
}

// noteSetLocation records the hint for a setDone outcome: the writer
// knows the block it just published (address, size class, stamp) without
// any extra verbs, so its own next Get of the key starts one-RTT. For an
// out-of-place update the slot keeps its insert timestamp and running
// frequency; a fresh insert starts at freq 1.
func (c *Client) noteSetLocation(pl *setPlan) {
	if c.loc == nil {
		return
	}
	h := loccache.Hint{
		Addr:     pl.addr,
		Len:      pl.want.SizeBytes(),
		Ver:      pl.ver,
		Tenant:   uint8(pl.tenant),
		SlotAddr: pl.slotAddr,
		InsertTs: pl.now,
		LastTs:   pl.now,
		Freq:     1,
	}
	if pl.mode == pUpdate && !pl.expUpd {
		h.InsertTs = pl.updSlot.InsertTs
		h.Freq = pl.updSlot.Freq + 1
	}
	c.loc.Record(pl.key, h)
}

// nextVer returns the next incarnation stamp for an image this client
// stages: the cluster-assigned client id (verBase) concatenated with a
// per-staging sequence. Unique across the cluster (object.go), never 0,
// and drawn from plain counters so determinism and randomness order are
// untouched.
func (c *Client) nextVer() uint64 {
	c.verSeq++
	return c.verBase | uint64(c.verSeq)
}

// collectRegrets penalizes experts recorded in valid history entries for
// the missed key (§4.3.1 "Regret collection"), then consumes the entries.
func (c *Client) collectRegrets(matches []hashtable.Slot) {
	if len(matches) == 0 {
		return
	}
	// One cheap counter refresh per miss-with-candidates keeps expiry
	// checks honest for get-dominated clients.
	c.hist.RefreshCounter()
	for _, s := range matches {
		bitmap, age, ok := c.hist.Match(s, s.Hash)
		if !ok {
			continue
		}
		c.adapt.Penalize(bitmap, age)
		c.Stats.Regrets++
		c.hist.ClearHash(s.Addr)
	}
}

// ----------------------------------------------------------------- Set ----

// shrinkEvictBatch bounds how many over-budget evictions one Set absorbs
// after a ShrinkCache, amortizing the drain across the write path.
const shrinkEvictBatch = 8

// Set inserts or updates key. Critical path for an insert: one READ
// (bucket search), one WRITE (object to a free location) and one CAS
// (publish the pointer) — §4.1 — plus eviction work only when the memory
// pool is full. The verb sequence is the setPlan in plan.go — the same
// plan MSet runs as doorbell batches — traversed serially here with the
// bounded retry/backoff loop around it.
func (c *Client) Set(key, value []byte) {
	start := c.p.Now()
	c.Stats.Sets++
	c.drainOverBudget(shrinkEvictBatch)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.Stats.SetRetries++
			// Hot keys attract concurrent out-of-place updates; the CAS
			// loser backs off briefly (like the paper's lock back-off) so
			// contenders don't stay lock-stepped.
			c.p.Sleep(c.p.Rand().Int63n(2 * sim.Microsecond))
		}
		if attempt > 4096 {
			panic(fmt.Errorf("%w: Set retries exhausted (table misconfigured?)", ErrNoProgress))
		}
		pl := c.acquireSetPlan(key, value)
		c.runner.Serial.Run(pl)
		switch pl.outcome {
		case setDone:
			c.noteSetLocation(pl)
			c.releaseSetPlan(pl)
			c.report(OpSet, start, true)
			return
		case setNoFree:
			// Both buckets full of live objects and valid history entries:
			// evict the lowest-priority live object from the key's buckets
			// directly (slot reclaimed immediately; no history entry for
			// this corner case — see DESIGN.md §6). If the buckets hold no
			// live object at all (all history), sacrifice the oldest
			// history entry. Then retry with a freed slot.
			// pl.scanned views the plan's pooled slot scratch — consumed
			// before the release.
			if !c.bucketEvict(pl.scanned) {
				c.reclaimOldestHistory(pl.scanned)
			}
		case setCASLost:
			// Lost a race; retry with a fresh snapshot.
		}
		c.releaseSetPlan(pl)
	}
}

// allocStallTick is how long a write sleeps per stall round waiting for
// the background reclaimer (about one eviction RTT chain), and
// allocStallRounds bounds those rounds before the write gives up on the
// reclaimer and evicts inline.
const (
	allocStallTick   = 2 * sim.Microsecond
	allocStallRounds = 64
)

// allocOrEvict allocates size bytes, evicting objects until space frees
// up; it panics only when the pool is exhausted with nothing evictable.
//
// With a background reclaimer enabled (Cluster.EnableBackgroundReclaim)
// the inline eviction is the LAST resort: a successful allocation that
// dipped below the low watermark kicks the reclaimer ahead of demand,
// and a failed one stalls in bounded ticks — polling the local allocator
// and the controller pool the reclaimer surrenders freed blocks into —
// so the write's latency is the reclaimer's catch-up time, not the full
// eviction verb chain. WriteStallNs accumulates everything a write
// waited beyond a clean allocation (reclaimer ticks AND inline eviction
// verbs — the "eviction-stall time" the churn bench reports);
// WriteStallTicks counts only the reclaimer stall rounds.
func (c *Client) allocOrEvict(size int) uint64 {
	addr, ok := c.alloc.Alloc(size)
	if ok {
		c.cl.maybeKickReclaim()
		return addr
	}
	start := c.p.Now()
	defer func() { c.Stats.WriteStallNs += c.p.Now() - start }()
	if c.cl.reclaimEnabled {
		c.cl.kickReclaimer()
		// Blocks the reclaimer surrendered earlier may already sit in the
		// controller pool (the local allocator only probes it on its
		// backoff intervals): check before paying the first stall tick.
		if addr, ok = c.alloc.AllocFromPool(size); ok {
			return addr
		}
		for round := 0; round < allocStallRounds; round++ {
			c.Stats.WriteStallTicks++
			// Feed the node's overload signal: the stall rate is what
			// TryMSet's shed decision reads (tenancy.go).
			c.cl.MN.NoteStallTick(c.p.Now())
			c.p.Sleep(allocStallTick)
			if addr, ok = c.alloc.Alloc(size); ok {
				return addr
			}
			if addr, ok = c.alloc.AllocFromPool(size); ok {
				return addr
			}
			c.cl.kickReclaimer() // re-kick: a kick sent mid-round is lost
		}
	}
	for !ok {
		if !c.evictOne() {
			panic(fmt.Errorf("%w: memory pool exhausted and nothing evictable", ErrNoProgress))
		}
		addr, ok = c.alloc.Alloc(size)
	}
	return addr
}

// updateExt rebuilds an object's extension metadata for an out-of-place
// update, into dst (reused when it has capacity). The frequency
// convention matches noteHit — snapshot + pending delta + 1 for the
// current access, with the pending delta read before the access is
// buffered (finishUpdate's fc.Add runs only after the CAS publishes the
// update).
func (c *Client) updateExt(dst []byte, s hashtable.Slot, old decodedObject, size int, now int64) []byte {
	ext := grow(dst, c.cl.totalExt)
	n := copy(ext, old.ext)
	clear(ext[n:])
	meta := &c.extMeta
	*meta = cachealgo.Metadata{
		Size:     hashtable.SizeClassBytes(size),
		InsertTs: s.InsertTs,
		LastTs:   s.LastTs,
		Freq:     s.Freq + 1 + c.fc.PendingDelta(s.Addr),
	}
	for i, a := range c.experts {
		if n := a.ExtSize(); n > 0 {
			meta.Ext = ext[c.extOff[i] : c.extOff[i]+n]
			a.UpdateExt(meta, now)
		}
	}
	return ext
}

// finishUpdate applies the post-CAS effects of a successful out-of-place
// update: free the superseded block (stamping it first, see
// freeStampAsync), buffer the access's freq increment, and touch last_ts
// (async).
func (c *Client) finishUpdate(s hashtable.Slot, keyLen int, now int64) {
	c.freeStampAsync(s.Atomic.Pointer())
	c.alloc.Free(s.Atomic.Pointer(), s.Atomic.SizeBytes())
	c.fc.Add(s.Addr, keyLen)
	c.ht.TouchLastTs(s.Addr, now)
}

// finishInsert applies the post-CAS effects of a successful insert: drop
// any stale buffered delta bound to the recycled slot and initialize the
// slot metadata (async).
func (c *Client) finishInsert(slotAddr uint64, kh uint64, now int64) {
	c.fc.Forget(slotAddr)
	c.ht.WriteMetaOnInsert(slotAddr, kh, now, now, 1)
}

// initExts builds the initial extension metadata for a new object, into
// dst (reused when it has capacity).
func (c *Client) initExts(dst []byte, size int, now int64) []byte {
	if c.cl.totalExt == 0 {
		return nil
	}
	ext := grow(dst, c.cl.totalExt)
	clear(ext)
	meta := &c.extMeta
	*meta = cachealgo.Metadata{
		Size:     hashtable.SizeClassBytes(size),
		InsertTs: now,
		LastTs:   now,
		Freq:     1,
	}
	for i, a := range c.experts {
		if n := a.ExtSize(); n > 0 {
			meta.Ext = ext[c.extOff[i] : c.extOff[i]+n]
			a.InitExt(meta, now)
		}
	}
	return ext
}

// ----------------------------------------------------------- Migration ----

// The SET half of a reshard's READ-old/SET-new/delete-behind step is the
// setPlan in migrate (insert-if-absent) mode plus the source delete CAS —
// see migratePlan in plan.go and the resharder drivers in multi.go.

// hasOtherCopy reports whether a live copy of key exists in its buckets
// at a slot other than exclAddr.
func (c *Client) hasOtherCopy(kh uint64, fp byte, key []byte, exclAddr uint64) bool {
	for _, b := range [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)} {
		for _, s := range c.ht.ReadBucket(b) {
			if s.Addr == exclAddr || s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != fp {
				continue
			}
			obj := c.readObject(s)
			if dec := decodeObject(obj); dec.ok && bytes.Equal(dec.key, key) {
				return true
			}
		}
	}
	return false
}

// surrenderFreeBlocks hands the client's local free lists back to the MN
// controller; called by transient clients (the resharder) on their way
// out so freed space is not stranded.
func (c *Client) surrenderFreeBlocks() { c.alloc.Surrender() }

// dropMigrated undoes a migrated insert (a migrate-mode setPlan) with a
// precise CAS on the exact
// slot/value it created. A failed CAS means a client already replaced or
// deleted the copy — the newer state wins and nothing is freed. t is the
// tenant the insert was charged to; the undo credits it back.
func (c *Client) dropMigrated(slotAddr uint64, atom hashtable.AtomicField, t TenantID) {
	if _, swapped := c.ht.CASAtomic(slotAddr, atom, 0); swapped {
		c.freeStampAsync(atom.Pointer())
		c.alloc.Free(atom.Pointer(), atom.SizeBytes())
		c.fc.Forget(slotAddr)
		c.accountTenant(t, -int64(atom.SizeBytes()))
	}
}

// -------------------------------------------------------------- Delete ----

// Delete removes key from the cache, reporting whether it was present.
// The verb sequence is the delPlan in plan.go — the same plan MDelete
// runs as doorbell batches — traversed serially here; see its comment for
// why the scan covers BOTH buckets to completion.
func (c *Client) Delete(key []byte) bool {
	c.Stats.Deletes++
	if c.loc != nil {
		c.loc.Drop(key)
	}
	pl := c.acquireDelPlan(key)
	c.runner.Serial.Run(pl)
	deleted := pl.deleted
	c.releaseDelPlan(pl)
	return deleted
}
