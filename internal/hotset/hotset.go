// Package hotset is the client-shared directory of replicated hot keys —
// the bookkeeping half of Ditto's hot-key replication layer (the I/O half
// lives in internal/core, which materializes and maintains the actual
// copies with one-sided verbs).
//
// The consistent-hash ring maps every key to exactly one memory node, so
// on a skewed workload the node owning the hottest keys saturates while
// its peers idle. The replication layer promotes keys whose observed hit
// frequency crosses a threshold (the same client-side hotness signal the
// FC cache and the adaptive engine already maintain, §4.2.2/§4.3) into
// this directory: each Entry records the key's primary ring owner, the
// ring-successor nodes holding its data replicas, and a rotating read
// cursor that spreads subsequent reads across all copies.
//
// Concurrency discipline (all under the cooperative sim scheduler):
//
//   - READERS consult entries without locking: Lookup + Entry.ReadTarget
//     are yield-free, so a read path never blocks on replica maintenance.
//     A reader that picks a replica whose copy is missing (not yet
//     materialized, or evicted) simply falls back to the primary.
//   - WRITERS and maintainers (promotion, demotion, invalidation) hold
//     the per-entry lock (Lock/Unlock) across their verbs. This
//     serializes all mutations of one hot key's copy set, which is what
//     keeps every replica equal to the last completed write — the
//     invariant that makes a replica-served read indistinguishable from a
//     primary-served one.
//   - An entry is "born locked": Insert marks it busy, so the promoter
//     materializes copies before any writer can slip between directory
//     insertion and materialization.
//   - Replicated writes are invalidate-first (the core layer deletes
//     every replica copy under the lock BEFORE the primary's publishing
//     CAS, then re-materializes): a spreadable replica only ever holds
//     the primary's current value or nothing, so reads stay monotonic
//     with no reader-side locking — a probe miss just falls back to the
//     primary.
//   - The one divergence no lock covers — a promotion that materialized
//     its copies while an unreplicated write (which checked the
//     directory before the entry existed) was still in flight — is
//     handled by the WARMING state plus the write registry
//     (BeginWrite/EndWrite): such writers run unreplicated but
//     registered, the promoter publishes the entry as Warming when any
//     registration is live at publish time, readers refuse to spread
//     from warming entries, and the entry turns spreadable only when a
//     repair (the core layer's resyncAfterWrite) or a replicated write
//     completes its fan-out with no other registered writer in flight —
//     a moment at which every copy provably equals the primary.
//
// Entries also carry the load accounting (reads vs writes since
// promotion) that drives load-aware demotion: replication pays 1+R writes
// per Set, so a key whose write rate overtakes its read rate is demoted
// by the core layer using these counters.
package hotset

import (
	"bytes"
	"sort"
	"sync/atomic"

	"ditto/internal/sim"
)

// Entry is one replicated hot key. Primary/Replicas/Epoch are fixed at
// promotion (a ring change makes the entry stale rather than rewriting
// it); the counters and cursor mutate in place.
type Entry struct {
	// Key is the promoted key (the entry owns this copy).
	Key []byte
	// KeyHash is the key's table hash, set at promotion. Eviction only
	// ever learns a victim's hash (the slot stores no key bytes), so the
	// evicted-primary sweep matches on it.
	KeyHash uint64
	// Epoch is the routing epoch the replica set was computed under. An
	// entry whose Epoch no longer matches the cluster's is STALE: readers
	// must not spread from it and the next writer demotes it.
	Epoch uint64
	// Primary is the key's ring owner at promotion time.
	Primary int
	// Replicas are the ring-successor nodes holding data replicas, in
	// successor order (never including Primary).
	Replicas []int

	// Tenant is the owning tenant observed at promotion (a core.TenantID;
	// this package stays below core in the import order, so it is a raw
	// byte here). The replication layer refuses promotion to — and
	// demotes entries of — tenants over their byte quota, since every
	// replica copy multiplies the tenant's footprint.
	Tenant byte

	// Warming marks an entry whose copies may still diverge from an
	// unreplicated write: the promotion is still materializing, or a
	// write that predates the entry was in flight when it published
	// (see the package comment). Readers must not spread from it.
	// Cleared — under the entry lock — by the first fan-out that
	// completes with no registered writer in flight.
	Warming bool

	// Evicted marks an entry whose PRIMARY copy was evicted by the
	// cache's memory pressure (MarkPrimaryEvicted). The cache chose to
	// drop the key, so the replicas must not keep serving it: readers
	// refuse to spread from the entry and the next toucher demotes it,
	// dissolving the replica copies. Set without the entry lock (the
	// eviction path must not block or issue verbs); acted on under it.
	Evicted bool

	// Reads and Writes count operations routed through this entry since
	// promotion — the load signal for write-heavy demotion.
	Reads, Writes int64

	rr       uint64    // rotating cursor over [Primary]+Replicas
	seq      uint64    // insertion order, Victim's deterministic tie-break
	lastRead int64     // virtual time of the most recent read routed via this entry
	busy     bool      // held by one writer/maintainer; see package comment
	owner    *sim.Proc // the process holding the lock (crash-steal support)
}

// Owner returns the process currently holding the entry's lock, or nil.
func (e *Entry) Owner() *sim.Proc { return e.owner }

// NoteRead records one read routed through this entry without choosing
// a spread target — the fallback paths (busy or warming entry) use it so
// the demotion heuristics still see the key's read load.
func (e *Entry) NoteRead(now int64) {
	e.Reads++
	e.lastRead = now
}

// Touch stamps the entry's last-read time without counting a read.
// Promotion calls it before Insert so a freshly promoted entry is not
// Victim's strict minimum (lastRead zero) — otherwise, at capacity,
// each new promotion would evict the most recently promoted entry
// before it served a single spread read.
func (e *Entry) Touch(now int64) { e.lastRead = now }

// ReadTarget returns the node the next spread read should probe,
// rotating over the primary and every replica so each copy serves an
// equal share, and records the read (Reads, last-read time) for the
// demotion heuristics. now is the caller's virtual time.
func (e *Entry) ReadTarget(now int64) int {
	order := 1 + len(e.Replicas)
	i := int(e.rr % uint64(order))
	e.rr++
	e.NoteRead(now)
	if i == 0 {
		return e.Primary
	}
	return e.Replicas[i-1]
}

// Set is the directory of replicated hot keys, shared by every client of
// one MultiCluster. It is safe only under the cooperative sim scheduler
// (mutations between yields are atomic); cross-process exclusion for
// maintenance is provided by the per-entry Lock.
type Set struct {
	limit   int
	seq     uint64 // insertion counter; stamps Entry.seq
	entries map[string]*Entry
	// read is the COW (copy-on-write) snapshot of entries behind an
	// atomic pointer, RCU-style: Lookup — the per-read hot path — loads
	// it once and probes a map no writer will ever mutate, while Insert
	// and Remove (rare maintenance events, bounded by limit) republish a
	// fresh copy after mutating the master map. The snapshot covers
	// MEMBERSHIP only; the *Entry values are shared and their counters
	// mutate in place under the usual discipline (yield-free readers,
	// per-entry locks for maintainers).
	read     atomic.Pointer[map[string]*Entry]
	inflight map[string]int // unreplicated writes in flight, per key
	unlocked *sim.Cond      // broadcast whenever any entry lock is released
}

// New creates an empty directory holding at most limit entries (the
// promotion path evicts the least-recently-read entry beyond it).
func New(env *sim.Env, limit int) *Set {
	if limit < 1 {
		limit = 1
	}
	s := &Set{
		limit:    limit,
		entries:  make(map[string]*Entry),
		inflight: make(map[string]int),
		unlocked: sim.NewCond(env),
	}
	s.publishRead()
	return s
}

// publishRead republishes the read-side COW snapshot after a membership
// mutation. O(Len) per call, bounded by limit — promotion and demotion
// are maintenance events, so the copy is off every per-operation path.
func (s *Set) publishRead() {
	m := make(map[string]*Entry, len(s.entries))
	//dittolint:allow simdet (map-to-map copy: the resulting snapshot is iteration-order independent)
	for k, e := range s.entries {
		m[k] = e
	}
	s.read.Store(&m)
}

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.entries) }

// Limit returns the entry capacity.
func (s *Set) Limit() int { return s.limit }

// Lookup returns the entry for key, or nil. It never blocks and probes
// the immutable read snapshot (one atomic load — writers republish on
// Insert/Remove, never mutate it), so the read hot path cannot observe
// a map mid-mutation and allocates nothing. The result may be busy
// (under maintenance), which only matters to writers — they must use
// Lock instead.
func (s *Set) Lookup(key []byte) *Entry { return (*s.read.Load())[string(key)] }

// Lock acquires the maintenance lock on key's entry, waiting (yielding p)
// while another process holds it. It returns nil — without ever having
// held the lock — when the key has no entry, including when the entry is
// removed while waiting; callers must handle nil by falling back to the
// unreplicated path. On success the caller MUST release with Unlock or
// Remove.
//
// Crash stealing: a lock whose holder was Killed mid-maintenance would
// otherwise wedge every future writer of the key. Lock detects a dead
// holder and STEALS the lock, first marking the entry Warming — the dead
// holder may have left the copy set half-mutated, and invalidate-first
// ordering guarantees half-mutated means "some replicas deleted", never
// "some replicas stale" — so readers fall back to the primary until the
// stealer's own fan-out (or a demotion) repairs the entry. Waiters parked
// before the kill are woken by Set.CrashWake, which the killer's OnCrash
// hooks invoke.
func (s *Set) Lock(p *sim.Proc, key []byte) *Entry {
	for {
		e := s.entries[string(key)]
		if e == nil {
			return nil
		}
		if !e.busy {
			e.busy = true
			e.owner = p
			return e
		}
		if e.owner != nil && e.owner.Killed() {
			e.owner = p
			e.Warming = true
			return e
		}
		s.unlocked.Wait(p)
	}
}

// CrashWake wakes every process waiting for an entry lock so it can
// re-check for a dead holder and steal. Call it after killing a process
// that may have held entry locks (OnCrash hooks do).
func (s *Set) CrashWake() { s.unlocked.Broadcast() }

// Unlock releases a lock taken by Lock (or implicitly by Insert) and
// wakes every waiter.
func (s *Set) Unlock(e *Entry) {
	e.busy = false
	e.owner = nil
	s.unlocked.Broadcast()
}

// Insert adds e to the directory with its lock HELD by p ("born locked"),
// so copies can be materialized before any writer observes the entry
// unlocked. It returns false (and inserts nothing) when the key already
// has an entry. Capacity is the caller's concern: check Len against Limit
// and demote a Victim first.
func (s *Set) Insert(p *sim.Proc, e *Entry) bool {
	k := string(e.Key)
	if _, ok := s.entries[k]; ok {
		return false
	}
	e.busy = true
	e.owner = p
	s.seq++
	e.seq = s.seq
	s.entries[k] = e
	s.publishRead()
	return true
}

// Remove deletes a LOCKED entry from the directory and wakes every
// waiter (whose Lock retry then observes the key gone and returns nil).
// The caller must hold e's lock and must not touch e afterwards.
func (s *Set) Remove(e *Entry) {
	delete(s.entries, string(e.Key))
	s.publishRead()
	e.busy = false
	e.owner = nil
	s.unlocked.Broadcast()
}

// Victim returns the unlocked entry with the oldest last-read time — the
// candidate to demote when the directory is full — or nil when every
// entry is under maintenance. Last-read ties are broken by insertion
// order (oldest entry wins), so the scan computes a strict minimum
// under a total order: the result is independent of map iteration
// order, which keeps demotion choices reproducible under CHAOS_SEED.
func (s *Set) Victim() *Entry {
	var v *Entry
	//dittolint:allow simdet (strict minimum under a total order: lastRead ties broken by unique insertion seq, so the result is iteration-order independent)
	for _, e := range s.entries {
		if e.busy {
			continue
		}
		if v == nil || e.lastRead < v.lastRead || (e.lastRead == v.lastRead && e.seq < v.seq) {
			v = e
		}
	}
	return v
}

// MarkPrimaryEvicted flags the entry (if any) whose key hash matches an
// eviction victim on node — but only when that node is the entry's
// PRIMARY: a replica copy evicted under its own node's pressure is just
// a silent probe miss, while a primary copy evicted means the cache
// dropped the key and the replicas would resurrect it. Pure bookkeeping
// (no verbs, no locks — callable from the eviction completion path);
// the demotion itself happens lazily at the next directory touch. The
// directory is small (Limit entries), so the scan is bounded. Every
// matching entry is flagged — two distinct hot keys can collide in
// (KeyHash, Primary), and stopping at the first hit would make the
// flagged set depend on map iteration order; over-flagging only costs a
// spurious demote-and-repromote.
func (s *Set) MarkPrimaryEvicted(node int, keyHash uint64) {
	//dittolint:allow simdet (flags every match, no early exit: the resulting state is iteration-order independent)
	for _, e := range s.entries {
		if e.KeyHash == keyHash && e.Primary == node {
			e.Evicted = true
		}
	}
}

// BeginWrite registers an unreplicated write in flight on key. Write
// paths that did NOT find an entry under Lock bracket their whole span
// (verbs + post-CAS repair) with BeginWrite/EndWrite; the registry never
// blocks anyone — it only tells promotion to publish Warming and tells
// fan-outs when the key is write-quiescent (InflightWrites). The
// registration must happen in the same scheduling slice as the nil Lock
// result (no verb in between): an entry inserted later then provably
// either sees the registration or was seen by the writer.
func (s *Set) BeginWrite(key []byte) { s.inflight[string(key)]++ }

// EndWrite unregisters a write registered by BeginWrite. Call it only
// after the write's repair re-check (resyncAfterWrite) has completed,
// so a clearing fan-out that still sees this registration knows the
// repair is yet to run.
func (s *Set) EndWrite(key []byte) {
	k := string(key)
	if s.inflight[k]--; s.inflight[k] <= 0 {
		delete(s.inflight, k)
	}
}

// InflightWrites returns the number of registered unreplicated writes
// in flight on key.
func (s *Set) InflightWrites(key []byte) int { return s.inflight[string(key)] }

// Keys returns a snapshot of every entry's key (locked or not), sorted
// bytewise, for maintenance sweeps that demote entries one by one via
// Lock (which tolerates entries vanishing between the snapshot and the
// lock). The sort keeps sweep order — and therefore the verb schedule
// of a demotion sweep — independent of map iteration order.
func (s *Set) Keys() [][]byte {
	out := make([][]byte, 0, len(s.entries))
	//dittolint:allow simdet (collects into a slice that is sorted below; iteration order cannot escape)
	for _, e := range s.entries {
		out = append(out, e.Key)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}
