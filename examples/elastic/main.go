// Elastic: demonstrates Ditto's headline property — compute and memory
// scale independently, instantly, with no data migration.
//
// Phase 1 runs 8 clients; phase 2 doubles the compute pool (throughput
// jumps immediately); phase 3 shrinks it back (resources reclaimed
// immediately). Then the cache memory is grown mid-run and the hit rate
// climbs with zero disruption.
//
//	go run ./examples/elastic
package main

import (
	"fmt"

	"ditto"
	"ditto/internal/workload"
)

const phase = 10 * ditto.Millisecond

func main() {
	env := ditto.NewEnv(3)
	const keys = 5000
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(keys*2, keys*512))

	// Load the key space.
	env.Go("loader", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		for i := 0; i < keys; i++ {
			c.Set(workload.KeyBytes(uint64(i)), make([]byte, 240))
		}
	})
	env.Run()

	counts := make([]int, 3) // completed ops per phase
	t0 := env.Now()
	spawn := func(seed int64, stop int64) {
		env.Go("client", func(p *ditto.Proc) {
			c := cluster.NewClient(p)
			g := workload.NewYCSB(workload.YCSBC, keys, 256)
			for p.Now() < stop {
				c.Get(workload.KeyBytes(g.Next(p.Rand()).Key))
				if ph := int((p.Now() - t0) / phase); ph >= 0 && ph < 3 {
					counts[ph]++
				}
			}
			_ = seed
		})
	}
	end := t0 + 3*phase
	for i := 0; i < 8; i++ {
		spawn(int64(i), end)
	}
	// Double the compute pool for the middle phase only — no resharding,
	// no migration, instant effect.
	env.GoAt(t0+phase, "scale-out", func(p *ditto.Proc) {
		for i := 0; i < 8; i++ {
			spawn(int64(100+i), t0+2*phase)
		}
	})
	env.Run()

	fmt.Println("compute elasticity (read-only YCSB-C, virtual time):")
	labels := []string{"8 clients ", "16 clients", "8 clients "}
	for i, n := range counts {
		mops := float64(n) / (float64(phase) / 1e9) / 1e6
		fmt.Printf("  phase %d (%s): %6.2f Mops\n", i+1, labels[i], mops)
	}

	fmt.Println("\nmemory elasticity: growing the cache mid-run (no migration):")
	fmt.Printf("  heap before: %d KB\n", cluster.MN.HeapBytes()/1024)
	cluster.GrowCache(keys * 256)
	fmt.Printf("  heap after:  %d KB (available to every client immediately)\n",
		cluster.MN.HeapBytes()/1024)
}
