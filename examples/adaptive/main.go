// Adaptive: demonstrates distributed adaptive caching on a changing
// workload. Four phases alternate between an LRU-friendly regime (bursty
// re-references) and an LFU-friendly one (stable hot set buried in scans);
// the expert weights visibly track the phases, and adaptive Ditto's hit
// rate approaches the per-phase best.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"ditto"
	"ditto/internal/workload"
)

func main() {
	const (
		footprint = 4000
		perPhase  = 20000
		capObjs   = footprint / 10
	)
	trace := workload.Changing(perPhase, footprint, 7).Build()

	run := func(experts ...string) float64 {
		env := ditto.NewEnv(1)
		opts := ditto.DefaultOptions(capObjs, capObjs*320)
		opts.Experts = experts
		cluster := ditto.NewCluster(env, opts)
		var hits, total int
		env.Go("app", func(p *ditto.Proc) {
			c := cluster.NewClient(p)
			for i, r := range trace {
				key := workload.KeyBytes(r.Key)
				if _, ok := c.Get(key); ok {
					hits++
				} else {
					c.Set(key, make([]byte, 240))
				}
				total++
				if len(experts) > 1 && i%perPhase == perPhase-1 {
					w := c.Weights()
					fmt.Printf("  after phase %d: weights LRU=%.2f LFU=%.2f\n",
						i/perPhase+1, w[0], w[1])
				}
			}
		})
		env.Run()
		return float64(hits) / float64(total)
	}

	fmt.Println("adaptive Ditto (LRU+LFU experts):")
	adaptive := run("LRU", "LFU")
	lru := run("LRU")
	lfu := run("LFU")

	fmt.Printf("\nhit rates over the 4-phase changing workload:\n")
	fmt.Printf("  Ditto-LRU: %.3f\n", lru)
	fmt.Printf("  Ditto-LFU: %.3f\n", lfu)
	fmt.Printf("  Ditto:     %.3f (adapts to each phase)\n", adaptive)
}
