package baselines

import (
	"bytes"
	"fmt"
	"testing"

	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

func kvKey(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func kvValue(i int) []byte { return bytes.Repeat([]byte{byte(i%250 + 1)}, 64) }

// ------------------------------- KVS / KVC / KVC-S -----------------------

func TestKVSRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewKVCluster(env, KVS, 1000, rdma.DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewKVClient(p)
		for i := 0; i < 200; i++ {
			cl.Set(kvKey(i), kvValue(i))
		}
		for i := 0; i < 200; i++ {
			v, ok := cl.Get(kvKey(i))
			if !ok || !bytes.Equal(v, kvValue(i)) {
				t.Fatalf("key %d wrong", i)
			}
		}
		if _, ok := cl.Get([]byte("nope")); ok {
			t.Fatal("phantom hit")
		}
	})
	env.Run()
}

func TestKVCMaintainsRemoteList(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewKVCluster(env, KVC, 100, rdma.DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewKVClient(p)
		cl.Set(kvKey(1), kvValue(1))
		s0 := c.MN.Node.Stats
		if _, ok := cl.Get(kvKey(1)); !ok {
			t.Fatal("miss")
		}
		d := c.MN.Node.Stats
		// KVC Get = 2 data READs + lock CAS + list maintenance verbs.
		if cas := d.CASes - s0.CASes; cas < 1 {
			t.Errorf("no lock CAS on cached Get (%d)", cas)
		}
		if w := d.Writes - s0.Writes; w < 3 {
			t.Errorf("list move-to-front used %d writes, want >= 3", w)
		}
	})
	env.Run()
	// Sentinel list must be a consistent ring containing the node.
	head := c.headAddr[0]
	next := c.MN.Node.Uint64At(head + 8)
	if next == head {
		t.Fatal("list empty after insert")
	}
	back := c.MN.Node.Uint64At(next)
	if back != head {
		t.Fatalf("broken ring: node.prev = %d, head = %d", back, head)
	}
}

func TestKVSFasterThanKVC(t *testing.T) {
	// Figure 2a: KVC throughput is a fraction of KVS with a single client
	// due to list maintenance on the critical path.
	run := func(kind KVKind) float64 {
		env := sim.NewEnv(1)
		c := NewKVCluster(env, kind, 500, rdma.DefaultConfig())
		var elapsed int64
		env.Go("c", func(p *sim.Proc) {
			cl := c.NewKVClient(p)
			for i := 0; i < 200; i++ {
				cl.Set(kvKey(i), kvValue(i))
			}
			start := p.Now()
			for i := 0; i < 1000; i++ {
				cl.Get(kvKey(i % 200))
			}
			elapsed = p.Now() - start
		})
		env.Run()
		return 1000 / (float64(elapsed) / 1e9)
	}
	kvs, kvc := run(KVS), run(KVC)
	if kvc >= kvs*0.6 {
		t.Fatalf("KVC (%.0f ops/s) should be well below KVS (%.0f ops/s)", kvc, kvs)
	}
}

func TestKVCLockContentionCollapses(t *testing.T) {
	// Figure 2b: with many clients, KVC throughput collapses under lock
	// contention while KVC-S degrades more mildly thanks to sharding+backoff.
	run := func(kind KVKind, clients int) (opsPerSec float64, retries int64) {
		env := sim.NewEnv(1)
		c := NewKVCluster(env, kind, 2000, rdma.DefaultConfig())
		env.Go("load", func(p *sim.Proc) {
			cl := c.NewKVClient(p)
			for i := 0; i < 512; i++ {
				cl.Set(kvKey(i), kvValue(i))
			}
		})
		env.Run()
		start := env.Now()
		var total int64
		for w := 0; w < clients; w++ {
			w := w
			env.Go("c", func(p *sim.Proc) {
				cl := c.NewKVClient(p)
				for i := 0; i < 300; i++ {
					cl.Get(kvKey((i*7 + w) % 512))
				}
				total += 300
				retries += cl.LockRetries
			})
		}
		env.Run()
		return float64(total) / (float64(env.Now()-start) / 1e9), retries
	}
	kvc1, _ := run(KVC, 1)
	kvc32, r32 := run(KVC, 32)
	kvcs32, _ := run(KVCS, 32)
	if r32 == 0 {
		t.Fatal("no lock retries under 32-way contention")
	}
	if kvc32 > kvc1*4 {
		t.Fatalf("KVC scaled too well: 1→%.0f, 32→%.0f ops/s", kvc1, kvc32)
	}
	if kvcs32 <= kvc32 {
		t.Fatalf("KVC-S (%.0f) should beat KVC (%.0f) at 32 clients", kvcs32, kvc32)
	}
}

// ------------------------------------ CliqueMap ---------------------------

func TestCMSetGet(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewCMCluster(env, CMLRU, 1000, 1<<20, CMFabric())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewCMClient(p)
		for i := 0; i < 200; i++ {
			if !cl.Set(kvKey(i), kvValue(i)) {
				t.Fatalf("set %d failed", i)
			}
		}
		for i := 0; i < 200; i++ {
			v, ok := cl.Get(kvKey(i))
			if !ok || !bytes.Equal(v, kvValue(i)) {
				t.Fatalf("key %d wrong", i)
			}
		}
	})
	env.Run()
}

func TestCMGetIsOneSided(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewCMCluster(env, CMLRU, 1000, 1<<20, CMFabric())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewCMClient(p)
		cl.Set(kvKey(1), kvValue(1))
		s0 := c.MN.Node.Stats
		cl.Get(kvKey(1))
		d := c.MN.Node.Stats
		if rpc := d.RPCs - s0.RPCs; rpc != 0 {
			t.Errorf("Get issued %d RPCs, want 0 (one-sided)", rpc)
		}
		if reads := d.Reads - s0.Reads; reads != 2 {
			t.Errorf("Get used %d READs, want 2", reads)
		}
	})
	env.Run()
}

func TestCMSyncBatches(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewCMCluster(env, CMLFU, 1000, 1<<20, CMFabric())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewCMClient(p)
		cl.Set(kvKey(1), kvValue(1))
		s0 := c.MN.Node.Stats.RPCs
		for i := 0; i < 2*CMSyncEvery; i++ {
			cl.Get(kvKey(1))
		}
		if syncs := c.MN.Node.Stats.RPCs - s0; syncs != 2 {
			t.Errorf("sync RPCs = %d, want 2", syncs)
		}
	})
	env.Run()
	if c.SyncRecords == 0 {
		t.Fatal("server merged no access records")
	}
}

func TestCMEvictionIsExactLRU(t *testing.T) {
	env := sim.NewEnv(1)
	// Capacity for exactly 4 × 128-byte-class objects.
	c := NewCMCluster(env, CMLRU, 64, 512, CMFabric())
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewCMClient(p)
		for i := 0; i < 4; i++ {
			cl.Set(kvKey(i), kvValue(i))
		}
		cl.Get(kvKey(0)) // 0 is now MRU; LRU victim should be 1
		cl.FlushSync()   // make the server see the access order
		cl.Set(kvKey(9), kvValue(9))
		if _, ok := cl.Get(kvKey(1)); ok {
			t.Error("LRU victim 1 still cached")
		}
		if _, ok := cl.Get(kvKey(0)); !ok {
			t.Error("recently used key 0 evicted")
		}
	})
	env.Run()
	if c.Evictions == 0 {
		t.Fatal("no evictions")
	}
}

func TestCMSetThroughputBoundByServerCPU(t *testing.T) {
	// §5.3: CliqueMap's write path saturates the MN CPU.
	env := sim.NewEnv(1)
	c := NewCMCluster(env, CMLRU, 4000, 4<<20, CMFabric())
	const clients, opsEach = 32, 50
	for w := 0; w < clients; w++ {
		w := w
		env.Go("c", func(p *sim.Proc) {
			cl := c.NewCMClient(p)
			for i := 0; i < opsEach; i++ {
				cl.Set(kvKey(w*opsEach+i), kvValue(i))
			}
		})
	}
	env.Run()
	opsPerSec := float64(clients*opsEach) / (float64(env.Now()) / 1e9)
	cpuBound := 1e9 / float64(CMFabric().RPCSvc+int64(CMFabric().RPCByteSvcNs*76))
	if opsPerSec > cpuBound*1.2 {
		t.Fatalf("Set throughput %.0f exceeds 1-core CPU bound %.0f", opsPerSec, cpuBound)
	}
}

// ------------------------------------ Redis-like --------------------------

func TestRedisRoundTripAndEviction(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewRedisCluster(env, 4, 50) // 200 objects total
	env.Go("c", func(p *sim.Proc) {
		cl := c.NewRedisClient(p)
		for i := 0; i < 400; i++ {
			cl.Set(uint64(i), kvValue(i))
		}
		hits := 0
		for i := 0; i < 400; i++ {
			if v, ok := cl.Get(uint64(i)); ok {
				hits++
				if !bytes.Equal(v, kvValue(i)) {
					t.Fatalf("key %d corrupted", i)
				}
			}
		}
		if hits == 400 || hits == 0 {
			t.Fatalf("hits = %d, want partial residency after eviction", hits)
		}
	})
	env.Run()
}

func TestRedisSkewBottleneck(t *testing.T) {
	// Figure 13/15: skewed load pins the hottest shard's core while other
	// cores idle — the aggregate is far below shards × per-core rate.
	env := sim.NewEnv(1)
	c := NewRedisCluster(env, 8, 100000)
	spec := workload.NewYCSB(workload.YCSBC, 100000, 64)
	reqs := workload.Generate(spec, 6000, 9)
	env.Go("load", func(p *sim.Proc) {
		cl := c.NewRedisClient(p)
		seen := map[uint64]bool{}
		for _, r := range reqs {
			if !seen[r.Key] {
				cl.Set(r.Key, kvValue(int(r.Key)))
				seen[r.Key] = true
			}
		}
	})
	env.Run()
	start := env.Now()
	const clients = 32
	shards := workload.Shard(reqs, clients)
	for w := 0; w < clients; w++ {
		mine := shards[w]
		env.Go("c", func(p *sim.Proc) {
			cl := c.NewRedisClient(p)
			for _, r := range mine {
				cl.Get(r.Key)
			}
		})
	}
	env.Run()
	elapsed := env.Now() - start
	perCore := 1e9 / 1100.0
	aggregate := float64(len(reqs)) / (float64(elapsed) / 1e9)
	if aggregate > 6*perCore {
		t.Fatalf("aggregate %.0f ops/s too close to ideal %d×%.0f (no skew bottleneck)",
			aggregate, 8, perCore)
	}
}

func TestRedisScaleOutMigrationDelaysRoutability(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewRedisCluster(env, 2, 1000)
	env.Go("driver", func(p *sim.Proc) {
		c.ScaleTo(4, 1000, 512<<20) // 512 MB to move at 256 MB/s ⇒ 1 s/shard
		if c.Routable() != 2 {
			t.Error("new shards routable before migration finished")
		}
		p.Sleep(3 * sim.Second)
		if c.Routable() != 4 {
			t.Errorf("routable = %d after migration window", c.Routable())
		}
	})
	env.Run()
}

func TestRedisScaleInReclaimsLate(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewRedisCluster(env, 4, 1000)
	env.Go("driver", func(p *sim.Proc) {
		c.ScaleTo(2, 1000, 256<<20)
		if c.Routable() != 2 {
			t.Error("scale-in must route to survivors immediately")
		}
		if c.Shards() != 4 {
			t.Error("old shards reclaimed before migration finished")
		}
		p.Sleep(2 * sim.Second)
		if c.Shards() != 2 {
			t.Errorf("shards = %d after reclamation", c.Shards())
		}
	})
	env.Run()
}
