package bench

import (
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

// batchedRow is one measured configuration of the batched-throughput
// scenario, as serialized into the JSON summary.
type batchedRow struct {
	Workload string  `json:"workload"`
	Batch    int     `json:"batch"`
	LocCache bool    `json:"loc_cache"` // client-side location cache on?
	Mops     float64 `json:"mops"`
	Speedup  float64 `json:"speedup_vs_seq"`
	HitRate  float64 `json:"hit_rate"`

	// Speculative-Get effectiveness over the measured phase: the fraction
	// of Gets served by one validated hinted READ, and the mean READ verbs
	// per Get (2.0 with the cache off; toward 1.0 as hints hit). In the
	// doorbell rows the hinted READs also fold MGet's two doorbells into
	// one for all-hinted windows.
	SpecGetHitRate float64 `json:"spec_get_hit_rate"`
	VerbsPerGet    float64 `json:"verbs_per_get"`

	// Host-side cost of simulating the measured phase (see Result):
	// allocations and wall-clock nanoseconds per key-operation. These
	// track the simulator's own hot path, not Ditto's virtual-time
	// performance; the alloc gate diffs them across commits.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HostNsPerOp float64 `json:"host_ns_per_op"`
}

// BatchedThroughput measures the doorbell-batching lever: MGet/MSet
// pipelines against per-key Get/Set over a 2-MN pool, across batch sizes
// 1/8/32/128, under YCSB-C (read-only) and YCSB-A (50% writes, the mixed
// workload). Batch size 1 IS the sequential baseline — the speedup
// column is each batch size's throughput relative to it. The shape to
// expect: throughput grows steeply with batch size while round trips
// amortize, then flattens as the RNIC message rate (which batching does
// not reduce) becomes the binding resource.
func BatchedThroughput(w io.Writer, scale Scale) error {
	header(w, "Batched throughput: doorbell-batched MGet/MSet vs sequential ops")
	keys := scale.pick(4000, 20000)
	clients := scale.pick(4, 8)
	opsEach := scale.pick(4096, 32768) // key-operations per client
	batchSizes := []int{1, 8, 32, 128}

	var rows []batchedRow
	for _, wl := range []struct {
		name string
		kind workload.YCSBKind
	}{
		{"ycsb-c", workload.YCSBC},
		{"mixed", workload.YCSBA},
	} {
		for _, locCache := range []bool{false, true} {
			row(w, wl.name+"/loc-"+onOff(locCache), "batch", "tput(Mops)", "speedup",
				"hit rate", "spec hit", "verbs/get", "allocs/op", "host ns/op")
			base := 0.0
			for _, bs := range batchSizes {
				res, spec, vpg := runBatchedYCSB(wl.kind, keys, clients, opsEach, bs, locCache)
				if bs == 1 {
					base = res.Mops()
				}
				speedup := 0.0
				if base > 0 {
					speedup = res.Mops() / base
				}
				row(w, "", bs, res.Mops(), speedup, res.HitRate(), spec, vpg,
					res.AllocsPerOp(), res.HostNsPerOp())
				rows = append(rows, batchedRow{
					Workload: wl.name, Batch: bs, LocCache: locCache,
					Mops: res.Mops(), Speedup: speedup, HitRate: res.HitRate(),
					SpecGetHitRate: spec, VerbsPerGet: vpg,
					AllocsPerOp: res.AllocsPerOp(), HostNsPerOp: res.HostNsPerOp(),
				})
			}
		}
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario":        "batched-throughput",
		"scale":           scale.String(),
		"keys":            keys,
		"clients":         clients,
		"loc_cache_slots": keys,
		"results":         rows,
	})
}

// runBatchedYCSB runs `clients` closed-loop clients against a 2-MN pool,
// each issuing opsEach key-operations in windows of batchSize requests:
// the window's writes go out as one MSet, its reads as one MGet.
// batchSize 1 degenerates to per-key Set/Get — the sequential baseline.
// With locCache the location cache is sized to the key space, so steady
// state approaches the all-hinted regime; returns the result plus the
// measured-phase spec_get_hit_rate and READ verbs per Get.
func runBatchedYCSB(kind workload.YCSBKind, keys, clients, opsEach, batchSize int, locCache bool) (Result, float64, float64) {
	env := sim.NewEnv(benchSeed(23))
	opts := core.DefaultOptions(keys*2, keys*512)
	if locCache {
		opts.LocCacheSlots = keys
	}
	mc := core.NewMultiCluster(env, 2, opts)
	factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
	RunLoad(env, factory, loadKeys(keys), 16)

	reads0 := nodeReads(mc)
	res := Result{}
	var agg core.Stats
	meter := startHostMeter()
	start := env.Now()
	for w := 0; w < clients; w++ {
		w := w
		env.Go("client", func(p *sim.Proc) {
			m := mc.NewClient(p)
			g := workload.NewYCSB(kind, uint64(keys), 256)
			rng := rand.New(rand.NewSource(int64(40 + w)))
			for done := 0; done < opsEach; done += batchSize {
				n := batchSize
				if rem := opsEach - done; n > rem {
					n = rem
				}
				var pairs []core.KV
				var gets [][]byte
				for j := 0; j < n; j++ {
					r := g.Next(rng)
					if r.Write {
						pairs = append(pairs, core.KV{Key: workload.KeyBytes(r.Key), Value: valueFor(r)})
					} else {
						gets = append(gets, workload.KeyBytes(r.Key))
					}
				}
				if batchSize == 1 {
					for _, kv := range pairs {
						m.Set(kv.Key, kv.Value)
					}
					for _, k := range gets {
						if _, ok := m.Get(k); ok {
							res.Hits++
						} else {
							res.Misses++
						}
					}
				} else {
					m.MSet(pairs)
					_, oks := m.MGet(gets)
					for _, ok := range oks {
						if ok {
							res.Hits++
						} else {
							res.Misses++
						}
					}
				}
				res.Ops += int64(n)
			}
			agg.Add(m.Stats())
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start
	meter.stop(&res)
	vpg := 0.0
	if agg.Gets > 0 {
		vpg = float64(nodeReads(mc)-reads0) / float64(agg.Gets)
	}
	return res, agg.SpecGetHitRate(), vpg
}
