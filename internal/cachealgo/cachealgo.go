// Package cachealgo implements Ditto's caching-algorithm framework: the
// per-object access metadata recorded by the client-centric caching
// framework (Table 1 of the paper), the priority-function interface through
// which caching algorithms are integrated, and the twelve algorithms the
// paper integrates (Table 3): LRU, LFU, MRU, GDS, LIRS, FIFO, SIZE, GDSF,
// LRFU, LRU-K, LFUDA and HYPERBOLIC.
//
// The key observation of §4.2 is that the only difference between caching
// algorithms is how they define eviction priority over recorded access
// information. An algorithm is therefore just:
//
//   - Priority(meta, now) — maps an object's metadata to a real number;
//     the sampled object with the LOWEST priority is evicted;
//   - optionally, extension-metadata rules (InitExt/UpdateExt) for advanced
//     algorithms that need more state than the default fields; extension
//     bytes are stored with the object in the memory pool;
//   - optionally, an OnEvict hook for algorithms with client-local state
//     (the inflation value L of the GreedyDual family).
//
// The framework itself (internal/core) maintains the default fields on
// every access, mirroring the sample-friendly hash table's metadata layout.
package cachealgo

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Metadata is the access information recorded for each cached object
// (Table 1). Size, InsertTs, LastTs and Freq are global (stored in the
// hash-table slot); Latency and Cost are local estimates; Ext holds
// algorithm-specific extension metadata stored with the object.
type Metadata struct {
	Size     int     // object size in bytes (global, stateless)
	InsertTs int64   // insert timestamp (global, stateless)
	LastTs   int64   // last access timestamp (global, stateless)
	Freq     uint64  // access count (global, stateful)
	Latency  int64   // access latency estimate (local)
	Cost     float64 // cost to fetch the object from the storage server (local)
	Ext      []byte  // extension metadata (stored with the object)
}

// Algorithm is a caching algorithm expressed through the priority
// interface. Instances may hold client-local state, so each client creates
// its own instance via the registry.
type Algorithm interface {
	// Name returns the canonical algorithm name (e.g. "LRU").
	Name() string
	// Priority maps metadata to eviction priority; the lowest-priority
	// sampled object is evicted.
	Priority(m *Metadata, now int64) float64
	// ExtSize returns the number of extension-metadata bytes this algorithm
	// stores with each object (0 for algorithms served by default fields).
	ExtSize() int
	// InitExt initializes extension metadata at insert time. m.Ext has
	// ExtSize bytes. Called only when ExtSize > 0.
	InitExt(m *Metadata, now int64)
	// UpdateExt applies the algorithm's metadata update rule on an access.
	// The default fields have already been updated by the framework (Freq
	// incremented, LastTs still holding the PREVIOUS access time until the
	// framework overwrites it after UpdateExt returns, so update rules can
	// see both).
	UpdateExt(m *Metadata, now int64)
}

// EvictionObserver is implemented by algorithms with client-local aging
// state (GreedyDual family): OnEvict is invoked with the victim's priority
// so the inflation value can advance.
type EvictionObserver interface {
	OnEvict(victimPriority float64)
}

// base provides the no-extension defaults.
type base struct{ name string }

func (b base) Name() string             { return b.name }
func (base) ExtSize() int               { return 0 }
func (base) InitExt(*Metadata, int64)   {}
func (base) UpdateExt(*Metadata, int64) {}

// ---------------------------------------------------------------- LRU ----

// LRU evicts the least recently used object: priority is the last access
// timestamp. Info used: ts_L. (Table 3: 9 LOC.)
type LRU struct{ base }

// NewLRU returns an LRU instance.
func NewLRU() *LRU { return &LRU{base{"LRU"}} }

// Priority implements Algorithm.
func (*LRU) Priority(m *Metadata, _ int64) float64 { return float64(m.LastTs) }

// ---------------------------------------------------------------- LFU ----

// LFU evicts the least frequently used object: priority is the access
// count. Info used: F. (Table 3: 9 LOC.)
type LFU struct{ base }

// NewLFU returns an LFU instance.
func NewLFU() *LFU { return &LFU{base{"LFU"}} }

// Priority implements Algorithm.
func (*LFU) Priority(m *Metadata, _ int64) float64 { return float64(m.Freq) }

// ---------------------------------------------------------------- MRU ----

// MRU evicts the MOST recently used object (useful for cyclic scans):
// priority is the negated last access timestamp. Info used: ts_L.
type MRU struct{ base }

// NewMRU returns an MRU instance.
func NewMRU() *MRU { return &MRU{base{"MRU"}} }

// Priority implements Algorithm.
func (*MRU) Priority(m *Metadata, _ int64) float64 { return -float64(m.LastTs) }

// --------------------------------------------------------------- FIFO ----

// FIFO evicts the oldest-inserted object: priority is the insert
// timestamp. Info used: ts_I.
type FIFO struct{ base }

// NewFIFO returns a FIFO instance.
func NewFIFO() *FIFO { return &FIFO{base{"FIFO"}} }

// Priority implements Algorithm.
func (*FIFO) Priority(m *Metadata, _ int64) float64 { return float64(m.InsertTs) }

// --------------------------------------------------------------- SIZE ----

// Size evicts the largest object first: priority is the negated size.
// Info used: S.
type Size struct{ base }

// NewSize returns a SIZE instance.
func NewSize() *Size { return &Size{base{"SIZE"}} }

// Priority implements Algorithm.
func (*Size) Priority(m *Metadata, _ int64) float64 { return -float64(m.Size) }

// ---------------------------------------------------------------- GDS ----

// GDS is GreedyDual-Size (Cao & Irani): H = L + cost/size, where L is the
// client-local inflation value advanced to the priority of each victim.
// The current H of each object is extension metadata (8 bytes).
// Info used: S (with cost); M. (Table 3: 14 LOC.)
type GDS struct {
	base
	l float64
}

// NewGDS returns a GDS instance.
func NewGDS() *GDS { return &GDS{base: base{"GDS"}} }

func cost(m *Metadata) float64 {
	if m.Cost > 0 {
		return m.Cost
	}
	return 1
}

// ExtSize implements Algorithm.
func (*GDS) ExtSize() int { return 8 }

// InitExt implements Algorithm.
func (g *GDS) InitExt(m *Metadata, now int64) { g.UpdateExt(m, now) }

// UpdateExt implements Algorithm: H ← L + cost/size.
func (g *GDS) UpdateExt(m *Metadata, _ int64) {
	putF64(m.Ext, g.l+cost(m)/float64(max(m.Size, 1)))
}

// Priority implements Algorithm.
func (*GDS) Priority(m *Metadata, _ int64) float64 { return getF64(m.Ext) }

// OnEvict implements EvictionObserver.
func (g *GDS) OnEvict(victim float64) {
	if victim > g.l {
		g.l = victim
	}
}

// --------------------------------------------------------------- GDSF ----

// GDSF is GreedyDual-Size-Frequency: H = L + freq·cost/size.
// Info used: F, S; M.
type GDSF struct {
	base
	l float64
}

// NewGDSF returns a GDSF instance.
func NewGDSF() *GDSF { return &GDSF{base: base{"GDSF"}} }

// ExtSize implements Algorithm.
func (*GDSF) ExtSize() int { return 8 }

// InitExt implements Algorithm.
func (g *GDSF) InitExt(m *Metadata, now int64) { g.UpdateExt(m, now) }

// UpdateExt implements Algorithm.
func (g *GDSF) UpdateExt(m *Metadata, _ int64) {
	putF64(m.Ext, g.l+float64(m.Freq+1)*cost(m)/float64(max(m.Size, 1)))
}

// Priority implements Algorithm.
func (*GDSF) Priority(m *Metadata, _ int64) float64 { return getF64(m.Ext) }

// OnEvict implements EvictionObserver.
func (g *GDSF) OnEvict(victim float64) {
	if victim > g.l {
		g.l = victim
	}
}

// -------------------------------------------------------------- LFUDA ----

// LFUDA is LFU with Dynamic Aging: H = L + freq. Aging lets formerly hot
// objects drain out. Info used: F; M.
type LFUDA struct {
	base
	l float64
}

// NewLFUDA returns an LFUDA instance.
func NewLFUDA() *LFUDA { return &LFUDA{base: base{"LFUDA"}} }

// ExtSize implements Algorithm.
func (*LFUDA) ExtSize() int { return 8 }

// InitExt implements Algorithm.
func (a *LFUDA) InitExt(m *Metadata, now int64) { a.UpdateExt(m, now) }

// UpdateExt implements Algorithm.
func (a *LFUDA) UpdateExt(m *Metadata, _ int64) {
	putF64(m.Ext, a.l+float64(m.Freq+1))
}

// Priority implements Algorithm.
func (*LFUDA) Priority(m *Metadata, _ int64) float64 { return getF64(m.Ext) }

// OnEvict implements EvictionObserver.
func (a *LFUDA) OnEvict(victim float64) {
	if victim > a.l {
		a.l = victim
	}
}

// --------------------------------------------------------------- LRUK ----

// LRUK is LRU-K (K=2 by default): evicts the object with the oldest K-th
// most recent access, falling back to FIFO on insert timestamp for objects
// accessed fewer than K times — exactly the pseudocode of Listing 1 in the
// paper. The extension metadata is a ring buffer of K reduced-precision
// timestamps indexed by freq. Info used: M. (Table 3: 23 LOC.)
type LRUK struct {
	base
	k int
}

// NewLRUK returns an LRU-K instance with the given K (K >= 1).
func NewLRUK(k int) *LRUK {
	if k < 1 {
		panic("cachealgo: LRU-K needs K >= 1")
	}
	return &LRUK{base{fmt.Sprintf("LRU%dK", k)}, k}
}

// NewLRU2 returns the default LRU-2 used in the evaluation.
func NewLRU2() *LRUK { a := NewLRUK(2); a.name = "LRUK"; return a }

// ExtSize implements Algorithm.
func (a *LRUK) ExtSize() int { return 8 * a.k }

// InitExt implements Algorithm: the insert is the first access, so it
// lands at ring index freq%K just as Listing 1's update rule would place
// it (the framework sets Freq=1 before calling InitExt).
func (a *LRUK) InitExt(m *Metadata, now int64) {
	idx := int(m.Freq % uint64(a.k))
	putI64(m.Ext[8*idx:], now)
}

// UpdateExt implements Algorithm: Listing 1's update rule. The framework
// has already incremented Freq for this access.
func (a *LRUK) UpdateExt(m *Metadata, now int64) {
	idx := int(m.Freq % uint64(a.k))
	putI64(m.Ext[8*idx:], now)
}

// Priority implements Algorithm: Listing 1's priority rule.
func (a *LRUK) Priority(m *Metadata, _ int64) float64 {
	if m.Freq < uint64(a.k) {
		return float64(m.InsertTs)
	}
	idx := int((m.Freq - uint64(a.k) + 1) % uint64(a.k))
	return float64(getI64(m.Ext[8*idx:]))
}

// --------------------------------------------------------------- LRFU ----

// LRFU blends recency and frequency through a decayed reference count
// (CRF): on each access CRF ← 1 + CRF·2^(−λ·Δt); priority is the CRF
// decayed to "now". Extension metadata stores the CRF and its update time.
// Info used: ts_L; M. (Table 3: 17 LOC.)
type LRFU struct {
	base
	lambda float64 // decay per nanosecond of virtual time
}

// NewLRFU returns an LRFU instance with the default decay constant.
func NewLRFU() *LRFU { return &LRFU{base{"LRFU"}, 1e-10} }

// ExtSize implements Algorithm.
func (*LRFU) ExtSize() int { return 16 }

// InitExt implements Algorithm.
func (*LRFU) InitExt(m *Metadata, now int64) {
	putF64(m.Ext[0:], 1)
	putI64(m.Ext[8:], now)
}

// UpdateExt implements Algorithm.
func (a *LRFU) UpdateExt(m *Metadata, now int64) {
	crf := getF64(m.Ext[0:])
	last := getI64(m.Ext[8:])
	crf = 1 + crf*math.Exp2(-a.lambda*float64(now-last))
	putF64(m.Ext[0:], crf)
	putI64(m.Ext[8:], now)
}

// Priority implements Algorithm.
func (a *LRFU) Priority(m *Metadata, now int64) float64 {
	crf := getF64(m.Ext[0:])
	last := getI64(m.Ext[8:])
	return crf * math.Exp2(-a.lambda*float64(now-last))
}

// --------------------------------------------------------------- LIRS ----

// LIRS is integrated in its sampling approximation (the stack-based
// original cannot be expressed over per-object metadata, which is the
// paper's constraint too): hotness is the inter-reference recency (IRR),
// the gap between the two most recent accesses. Objects referenced once
// have infinite IRR (HIR blocks) and are preferred victims, which gives
// LIRS its scan resistance; among re-referenced objects, small IRR and
// recent access win. Extension metadata stores the previous access
// timestamp. Info used: F, ts_L, M. (Table 3: 12 LOC.)
type LIRS struct{ base }

// NewLIRS returns a LIRS (approximation) instance.
func NewLIRS() *LIRS { return &LIRS{base{"LIRS"}} }

// ExtSize implements Algorithm.
func (*LIRS) ExtSize() int { return 8 }

// InitExt implements Algorithm.
func (*LIRS) InitExt(m *Metadata, now int64) { putI64(m.Ext, now) }

// UpdateExt implements Algorithm: remember the previous access time.
func (*LIRS) UpdateExt(m *Metadata, _ int64) { putI64(m.Ext, m.LastTs) }

// Priority implements Algorithm.
func (*LIRS) Priority(m *Metadata, _ int64) float64 {
	if m.Freq < 2 {
		// HIR block: rank below all LIR blocks, FIFO among themselves.
		return float64(m.InsertTs) - math.MaxInt32
	}
	irr := m.LastTs - getI64(m.Ext)
	return float64(m.LastTs - irr)
}

// --------------------------------------------------------- HYPERBOLIC ----

// Hyperbolic implements hyperbolic caching (Blankstein et al.): priority
// is freq divided by the object's age in cache, so objects are ranked by
// their observed request rate. Info used: ts_L, F, S. (Table 3: 11 LOC.)
type Hyperbolic struct{ base }

// NewHyperbolic returns a HYPERBOLIC instance.
func NewHyperbolic() *Hyperbolic { return &Hyperbolic{base{"HYPERBOLIC"}} }

// Priority implements Algorithm.
func (*Hyperbolic) Priority(m *Metadata, now int64) float64 {
	age := now - m.InsertTs
	if age < 1 {
		age = 1
	}
	return float64(m.Freq) / float64(age)
}

// ------------------------------------------------------------- RANDOM ----

// Random evicts a uniformly random sampled object (constant priority). It
// is not one of the paper's twelve integrated algorithms — it is the
// normalization baseline of Figure 18 — so it is registered as hidden.
type Random struct{ base }

// NewRandom returns the random-eviction baseline.
func NewRandom() *Random { return &Random{base{"RANDOM"}} }

// Priority implements Algorithm: all objects tie, so the sampler's first
// candidate (a uniformly random slot) wins.
func (*Random) Priority(*Metadata, int64) float64 { return 0 }

// ----------------------------------------------------------- registry ----

// Info describes a registered algorithm for Table 3.
type Info struct {
	Name string
	// LOC is the implementation size of the algorithm's definition in this
	// package (priority + metadata rules), for the Table 3 reproduction.
	LOC int
	// Uses lists the access information consumed, in the paper's notation
	// (tsI, tsL, F, S, M).
	Uses string
	New  func() Algorithm
	// hidden excludes baselines (RANDOM) from the Table 3 listing.
	hidden bool
}

var registry = []Info{
	{Name: "LRU", LOC: 4, Uses: "tsL", New: func() Algorithm { return NewLRU() }},
	{Name: "LFU", LOC: 4, Uses: "F", New: func() Algorithm { return NewLFU() }},
	{Name: "MRU", LOC: 4, Uses: "tsL", New: func() Algorithm { return NewMRU() }},
	{Name: "GDS", LOC: 14, Uses: "S, M", New: func() Algorithm { return NewGDS() }},
	{Name: "LIRS", LOC: 12, Uses: "F, tsL, M", New: func() Algorithm { return NewLIRS() }},
	{Name: "FIFO", LOC: 4, Uses: "tsI", New: func() Algorithm { return NewFIFO() }},
	{Name: "SIZE", LOC: 4, Uses: "S", New: func() Algorithm { return NewSize() }},
	{Name: "GDSF", LOC: 14, Uses: "F, S, M", New: func() Algorithm { return NewGDSF() }},
	{Name: "LRFU", LOC: 17, Uses: "tsL, M", New: func() Algorithm { return NewLRFU() }},
	{Name: "LRUK", LOC: 18, Uses: "M", New: func() Algorithm { return NewLRU2() }},
	{Name: "LFUDA", LOC: 14, Uses: "F, M", New: func() Algorithm { return NewLFUDA() }},
	{Name: "HYPERBOLIC", LOC: 7, Uses: "tsL, F, S", New: func() Algorithm { return NewHyperbolic() }},
	{Name: "RANDOM", LOC: 3, Uses: "-", New: func() Algorithm { return NewRandom() }, hidden: true},
}

// All returns the registry of the twelve integrated algorithms in Table 3
// order (hidden baselines excluded).
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		if !info.hidden {
			out = append(out, info)
		}
	}
	return out
}

// New instantiates a registered algorithm by name.
func New(name string) (Algorithm, error) {
	for _, info := range registry {
		if info.Name == name {
			return info.New(), nil
		}
	}
	return nil, fmt.Errorf("cachealgo: unknown algorithm %q", name)
}

// Names returns the registered algorithm names sorted alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, info := range registry {
		if !info.hidden {
			names = append(names, info.Name)
		}
	}
	sort.Strings(names)
	return names
}

// ------------------------------------------------------------ helpers ----

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }
func putI64(b []byte, v int64)   { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getI64(b []byte) int64      { return int64(binary.LittleEndian.Uint64(b)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
