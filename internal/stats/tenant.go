package stats

// Per-tenant byte accounting, sharded like ShardedCounter: each client
// owns one TenantCell (a fixed-size array of per-tenant words, one row
// per tenant) and ticks only its own cell on the hot path; quota checks
// aggregate across cells on read. As with CounterCell, the simulator
// runs exactly one process at a time so the cells need no atomics — the
// sharding preserves the one-client-per-core model for any future
// real-parallel harness.

// TenantCell is one client's shard of a TenantCounter: a dense array of
// per-tenant values indexed by tenant ID.
type TenantCell struct {
	v []int64
}

// Add folds delta into tenant t's word in the owning client's shard.
func (c *TenantCell) Add(t int, delta int64) { c.v[t] += delta }

// Get returns tenant t's value in this shard alone (diagnostics).
func (c *TenantCell) Get(t int) int64 { return c.v[t] }

// TenantCounter aggregates per-tenant values across per-client cells.
// Construct with NewTenantCounter; NewCell registers a shard (one per
// client, at client construction); Sum aggregates one tenant's value
// across all shards on read.
type TenantCounter struct {
	tenants int
	cells   []*TenantCell
}

// NewTenantCounter returns a counter tracking the given number of
// tenant IDs (0..tenants-1).
func NewTenantCounter(tenants int) *TenantCounter {
	return &TenantCounter{tenants: tenants}
}

// Tenants returns the number of tenant IDs the counter tracks.
func (s *TenantCounter) Tenants() int { return s.tenants }

// NewCell registers and returns a new shard. Call once per client, off
// the hot path.
func (s *TenantCounter) NewCell() *TenantCell {
	c := &TenantCell{v: make([]int64, s.tenants)}
	s.cells = append(s.cells, c)
	return c
}

// Sum aggregates tenant t's value across every shard. Read-side only;
// linear in the number of registered clients.
func (s *TenantCounter) Sum(t int) int64 {
	var total int64
	for _, c := range s.cells {
		total += c.v[t]
	}
	return total
}
