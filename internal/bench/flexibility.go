package bench

import (
	"fmt"
	"io"

	"ditto/internal/cachealgo"
	"ditto/internal/workload"
)

// Fig23 reproduces Figure 23: throughput and hit rate of the twelve
// integrated caching algorithms, each running as Ditto's single expert on
// the webmail-like workload.
func Fig23(w io.Writer, scale Scale) error {
	header(w, "Figure 23: the 12 integrated algorithms (webmail-like workload)")
	n := scale.pick(30000, 200000)
	fp := scale.pick(4000, 20000)
	clients := scale.pick(8, 64)
	trace := workload.Webmail(n, fp, 231).Build()
	capObjs := fp / 10

	row(w, "algorithm", "tput(Mops)", "hit rate")
	for _, info := range cachealgo.All() {
		r := runDittoTrace(trace, capObjs, clients, 0, info.Name)
		row(w, info.Name, r.Mops(), r.HitRate())
	}
	return nil
}

// Table3 reproduces Table 3: integration effort (LOC) and access
// information used by each algorithm.
func Table3(w io.Writer, _ Scale) error {
	header(w, "Table 3: integration effort of the 12 caching algorithms")
	row(w, "algorithm", "LOC", "info used")
	for _, info := range cachealgo.All() {
		row(w, info.Name, info.LOC, info.Uses)
	}
	fmt.Fprintln(w, "LOC counts the priority/update/init definitions in internal/cachealgo.")
	return nil
}
