package core

import (
	"ditto/internal/cachealgo"
	"ditto/internal/hashtable"
	"ditto/internal/memnode"
)

// candidate pairs a sampled slot with the metadata view the priority
// functions consume.
type candidate struct {
	slot hashtable.Slot
	meta cachealgo.Metadata
}

// evictOne performs one sample-based eviction (§4.2): sample K slots with
// one READ, let every expert nominate its lowest-priority candidate, pick
// the deciding expert by weight, evict its nominee, and (when adaptive)
// convert the victim's slot into a lightweight history entry.
//
// It returns false when no object could be evicted after bounded
// resampling (e.g. an empty cache).
func (c *Client) evictOne() bool {
	k := c.cl.opts.SampleK
	n := c.cl.Layout.NumSlots()
	// The paper samples K OBJECTS; slots also hold empty entries and
	// history entries, so one READ covers enough consecutive slots that K
	// live objects are expected at the table's design load factor.
	window := k * (n/c.cl.opts.ExpectedObjects + 1)
	if window > n {
		window = n
	}
	for attempt := 0; attempt < evictAttempts; attempt++ {
		start := c.p.Rand().Intn(n)
		slots := c.ht.Sample(start, window)
		cands := c.buildCandidates(slots)
		if len(cands) == 0 {
			continue
		}
		if len(cands) > k {
			cands = cands[:k]
		}

		now := c.p.Now()
		// Each expert nominates its minimum-priority candidate.
		nominee := make([]int, len(c.experts))
		prio := make([]float64, len(c.experts))
		for e, a := range c.experts {
			best, bestP := -1, 0.0
			for i := range cands {
				m := cands[i].meta
				if off := c.extOff[e]; a.ExtSize() > 0 {
					m.Ext = cands[i].meta.Ext[off : off+a.ExtSize()]
				}
				p := a.Priority(&m, now)
				if best < 0 || p < bestP {
					best, bestP = i, p
				}
			}
			nominee[e], prio[e] = best, bestP
		}

		deciding := 0
		if c.adapt != nil {
			deciding = c.adapt.PickExpert(c.p.Rand())
		}
		victim := cands[nominee[deciding]]

		// Expert bitmap: every expert whose nominee is this victim shares
		// the blame if the eviction turns out to be a regret.
		var bitmap uint64
		for e := range c.experts {
			if cands[nominee[e]].slot.Addr == victim.slot.Addr {
				bitmap |= 1 << uint(e)
			}
		}

		var won bool
		if c.adapt != nil {
			_, won = c.hist.Insert(victim.slot, bitmap)
			if won && c.cl.opts.DisableLWH {
				// Conventional remote FIFO history: enqueue into an actual
				// remote queue (FAA tail + entry WRITE) instead of reusing
				// the slot in place.
				c.ep.FAA(memnode.HistCounterAddr+8, 1)
				c.ep.Write(memnode.HistCounterAddr+16, make([]byte, 40))
			}
		} else {
			_, won = c.ht.CASAtomic(victim.slot.Addr, victim.slot.Atomic, 0)
		}
		if !won {
			continue // raced with another client; resample
		}

		for e, a := range c.experts {
			if bitmap&(1<<uint(e)) == 0 {
				continue
			}
			if obs, ok := a.(cachealgo.EvictionObserver); ok {
				obs.OnEvict(prio[e])
			}
		}
		c.alloc.Free(victim.slot.Atomic.Pointer(),
			victim.slot.Atomic.SizeBytes())
		c.fc.Forget(victim.slot.Addr)
		c.Stats.Evictions++
		return true
	}
	return false
}

// buildCandidates filters a sample down to live object slots and attaches
// metadata. With the sample-friendly hash table all default metadata
// arrived with the sample READ; extension metadata (or, under the
// DisableSFHT ablation, all metadata) costs one more READ per candidate.
func (c *Client) buildCandidates(slots []hashtable.Slot) []candidate {
	cands := make([]candidate, 0, len(slots))
	for _, s := range slots {
		if s.Atomic.IsEmpty() || s.Atomic.IsHistory() {
			continue
		}
		// Frequency convention (shared with noteHit/updateExt): remote
		// snapshot plus the buffered delta. Sampling is not an access, so
		// no +1 and no fc.Add here.
		meta := cachealgo.Metadata{
			Size:     s.Atomic.SizeBytes(),
			InsertTs: s.InsertTs,
			LastTs:   s.LastTs,
			Freq:     s.Freq + c.fc.PendingDelta(s.Addr),
		}
		switch {
		case c.cl.opts.DisableSFHT:
			// Metadata stored with objects: every candidate costs a READ.
			raw := c.ep.Read(s.Atomic.Pointer(), objHeader+c.cl.totalExt)
			if c.cl.totalExt > 0 {
				meta.Ext = raw[objHeader:]
			}
		case c.cl.totalExt > 0:
			meta.Ext = c.ep.Read(s.Atomic.Pointer()+objHeader, c.cl.totalExt)
		}
		cands = append(cands, candidate{slot: s, meta: meta})
	}
	return cands
}

// bucketEvict frees a slot in the key's own buckets when both are full of
// live objects and valid history entries: the deciding expert's
// lowest-priority live object is deleted outright (slot reclaimed
// immediately). Rare by construction (the table is oversized), counted in
// Stats.BucketEvictions.
func (c *Client) bucketEvict(slots []hashtable.Slot) bool {
	cands := c.buildCandidates(slots)
	if len(cands) == 0 {
		return false
	}
	deciding := 0
	if c.adapt != nil {
		deciding = c.adapt.PickExpert(c.p.Rand())
	}
	a := c.experts[deciding]
	now := c.p.Now()
	best, bestP := -1, 0.0
	for i := range cands {
		m := cands[i].meta
		if off := c.extOff[deciding]; a.ExtSize() > 0 {
			m.Ext = cands[i].meta.Ext[off : off+a.ExtSize()]
		}
		p := a.Priority(&m, now)
		if best < 0 || p < bestP {
			best, bestP = i, p
		}
	}
	victim := cands[best]
	if _, won := c.ht.CASAtomic(victim.slot.Addr, victim.slot.Atomic, 0); !won {
		return false
	}
	if obs, ok := a.(cachealgo.EvictionObserver); ok {
		obs.OnEvict(bestP)
	}
	c.alloc.Free(victim.slot.Atomic.Pointer(),
		victim.slot.Atomic.SizeBytes())
	c.fc.Forget(victim.slot.Addr)
	c.Stats.Evictions++
	c.Stats.BucketEvictions++
	return true
}

// reclaimOldestHistory frees the bucket-local history entry closest to
// expiry so an insert can proceed when a bucket is saturated with valid
// history entries (shortening the logical FIFO for those entries only).
func (c *Client) reclaimOldestHistory(slots []hashtable.Slot) {
	best := -1
	var bestAge uint64
	for i, s := range slots {
		if !s.Atomic.IsHistory() {
			continue
		}
		if age := c.hist.Age(s.Atomic.Pointer()); best < 0 || age > bestAge {
			best, bestAge = i, age
		}
	}
	if best >= 0 {
		c.ht.CASAtomic(slots[best].Addr, slots[best].Atomic, 0)
	}
}

// report delivers an operation sample to the installed observer.
func (c *Client) report(op OpKind, start int64, hit bool) {
	if c.OnOp != nil {
		c.OnOp(op, c.p.Now()-start, hit)
	}
}
