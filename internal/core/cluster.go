// Package core implements Ditto itself: the client-centric caching
// framework (§4.2) and distributed adaptive caching (§4.3) over the
// simulated disaggregated-memory substrate.
//
// A Cluster owns the memory node, hash-table layout and controller-side
// adaptive state; each client (one per sim process) executes Get/Set/
// Delete entirely with one-sided verbs:
//
//	Get: 1 READ (bucket) + 1 READ (object) + async metadata update
//	Set: 1 READ (bucket) + 1 WRITE (object) + 1 CAS (slot) + async metadata
//	Evict: 1 READ (sample) [+ ext READs] + 1 FAA (history ID) +
//	       1 CAS (slot→history) + async bitmap WRITE
//	MGet/MSet/MDelete: the same verb plans, posted stage-by-stage as
//	       doorbell batches so round trips overlap across the keys
//
// matching §4.1's operation descriptions and the verb budgets asserted in
// the tests. Every verb sequence — eviction included — is declared once
// as a plan (plan.go) and executed through internal/exec under the
// Serial strategy (per-key paths, this file's budgets) or the Doorbell
// strategy (batch.go, the resharder in multi.go, the background
// reclaimer and over-budget drains in evict.go).
package core

import (
	"fmt"

	"ditto/internal/adaptive"
	"ditto/internal/cachealgo"
	"ditto/internal/exec"
	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// Options configures a Ditto cluster. The zero value is not usable; use
// DefaultOptions and override.
type Options struct {
	// ExpectedObjects sizes the hash table (slots ≈ 2.5× objects, so live
	// slots and unexpired history entries coexist) and the default history
	// capacity.
	ExpectedObjects int
	// CacheBytes is the object heap budget: the memory resource of the
	// cache. Evictions begin when it is exhausted.
	CacheBytes int
	// Experts names the caching algorithms run simultaneously as adaptive
	// experts. One entry disables adaptive caching (no history, no
	// regrets) — that is the Ditto-LRU / Ditto-LFU configuration.
	Experts []string
	// SampleK is the eviction sample size (paper default 5, from Redis).
	SampleK int
	// HistorySize overrides the eviction-history capacity (default:
	// ExpectedObjects, following LeCaR).
	HistorySize int
	// FCCacheBytes sizes the client-side frequency-counter cache (paper
	// default 10 MB; 0 disables write combining).
	FCCacheBytes int
	// FCThreshold is the combining threshold t (paper default 10).
	FCThreshold uint64
	// LearningRate is the regret-minimization λ (paper default 0.1).
	LearningRate float64
	// BatchSize is the lazy-weight-update batch (paper default 100).
	BatchSize int
	// SlotsPerBucket sets bucket associativity.
	SlotsPerBucket int
	// MaxCacheBytes reserves registered memory for future GrowCache calls
	// beyond the default slack (elasticity experiments).
	MaxCacheBytes int
	// LocCacheSlots bounds each client's location cache (internal/loccache)
	// behind one-RTT speculative Gets; 0 (the default) disables the cache
	// entirely — no speculative READs, no free-stamp WRITEs — so the verb
	// shapes and virtual-time results are byte-for-byte the seed's.
	LocCacheSlots int
	// Fabric is the timing model.
	Fabric rdma.Config

	// Ablation switches (Figure 24):
	// DisableSFHT models storing access metadata with objects instead of
	// hash-table slots: sampling needs one extra READ per candidate and
	// stateless metadata can no longer be grouped into one WRITE.
	DisableSFHT bool
	// DisableLWH models a conventional remote FIFO history: extra verbs on
	// every history insert and an extra indexed lookup per miss.
	DisableLWH bool
	// EagerWeightSync disables the lazy weight update (one RPC per regret).
	EagerWeightSync bool
}

// DefaultOptions returns the paper's default parameterization for a cache
// of the given expected object count and byte budget.
func DefaultOptions(expectedObjects, cacheBytes int) Options {
	return Options{
		ExpectedObjects: expectedObjects,
		CacheBytes:      cacheBytes,
		Experts:         []string{"LRU", "LFU"},
		SampleK:         5,
		FCCacheBytes:    10 << 20,
		FCThreshold:     10,
		LearningRate:    0.1,
		BatchSize:       100,
		SlotsPerBucket:  hashtable.DefaultSlotsPerBucket,
		Fabric:          rdma.DefaultConfig(),
	}
}

// Cluster is a Ditto deployment: one memory pool plus shared configuration
// for any number of clients in the compute pool.
type Cluster struct {
	Env    *sim.Env
	MN     *memnode.MemNode
	Layout hashtable.Layout
	opts   Options

	// WeightSvc is the controller-side adaptive state (nil when a single
	// expert is configured).
	WeightSvc *adaptive.Service

	// servedReads counts the read operations this memory node actually
	// served (hits — including forwarding-window and read-spread probe
	// hits — plus counted misses). It is the per-node load signal the
	// hotspot bench reports: under hot-key replication, read spreading
	// shifts ServedReads from a key's primary owner to its replicas.
	// Sharded into per-client cells so the hot-path increment touches
	// only client-local state; read it through ServedReads().
	servedReads stats.ShardedCounter

	// ReclaimStrategy selects how multi-victim eviction batches execute —
	// the background reclaimer's rounds and the write paths' over-budget
	// drains: exec.Doorbell (the default) samples several windows and
	// CASes several victims per doorbell round; exec.Serial issues one
	// verb per round trip, the paper-faithful per-key chain. Results are
	// identical (pinned by the eviction equivalence test); single
	// evictions on the write path always run serially.
	ReclaimStrategy exec.Strategy

	reclaimEnabled bool
	reclaimKick    *sim.Cond
	reclaimer      *Client
	reclaimProc    *sim.Proc

	// reclaimRestarts counts reclaimer respawns after a crash (fault
	// injection); dead marks a fail-stopped node (Crash).
	reclaimRestarts int64
	dead            bool

	// reclaimStratFn, when non-nil, overrides ReclaimStrategy at use
	// time. MultiCluster installs it on every node so a pool-level
	// MultiCluster.ReclaimStrategy assignment takes effect like its
	// ReshardStrategy/ReplicaStrategy siblings — read when batches run,
	// not copied at construction.
	reclaimStratFn func() exec.Strategy

	// avgVictimBlocks is a running estimate of the eviction victim size
	// (in blocks), used to size multi-victim reclaim rounds so a drain
	// does not overshoot the budget by more than the estimate's error.
	avgVictimBlocks float64

	// onEvictHash, when non-nil, observes the key hash of every eviction
	// victim on this node. MultiCluster's hot-key replication layer
	// installs it so the eviction of a promoted key's primary copy can
	// demote the entry (the hook must not issue verbs — demotion happens
	// lazily at the next directory touch).
	onEvictHash func(keyHash uint64)

	// Tenancy (quotas, TTL leases, overload shedding). tenantMode turns
	// the whole tenant path on — off (the default) nothing reads the
	// header's tenant/expiry fields, accounting is skipped, and eviction
	// samples with the seed's verb shapes, so single-tenant deployments
	// are byte-for-byte unchanged. SetTenantQuota enables it.
	tenantMode  bool
	tenantQuota [MaxTenants]int64 // bytes; 0 = unlimited
	tenantUsage *stats.TenantCounter

	// verClients hands out the 16-bit client ids behind object incarnation
	// stamps (object.go): each NewClient takes the next id, so stamps from
	// different clients can never collide. Wraps after 65535 clients per
	// cluster — far beyond the one-client-per-core model's populations.
	verClients uint16

	histSize int
	extSizes []int // per-expert extension bytes (from a prototype instance)
	totalExt int
}

// NewCluster builds the memory pool, places the hash table and registers
// controller services.
func NewCluster(env *sim.Env, opts Options) *Cluster {
	if opts.ExpectedObjects <= 0 {
		//dittolint:allow typederr (config validation at cluster construction)
		panic("core: ExpectedObjects must be positive")
	}
	if opts.CacheBytes <= 0 {
		//dittolint:allow typederr (config validation at cluster construction)
		panic("core: CacheBytes must be positive")
	}
	if len(opts.Experts) == 0 {
		opts.Experts = []string{"LRU", "LFU"}
	}
	if len(opts.Experts) > 32 {
		//dittolint:allow typederr (config validation at cluster construction)
		panic("core: at most 32 experts (expert bitmap is 32-bit in a 64-bit field)")
	}
	if opts.SampleK <= 0 {
		opts.SampleK = 5
	}
	if opts.SlotsPerBucket <= 0 {
		opts.SlotsPerBucket = hashtable.DefaultSlotsPerBucket
	}
	if opts.FCThreshold == 0 {
		opts.FCThreshold = 10
	}

	slots := opts.ExpectedObjects * 5 / 2
	buckets := (slots + opts.SlotsPerBucket - 1) / opts.SlotsPerBucket
	if buckets < 4 {
		buckets = 4
	}
	tblCfg := hashtable.Config{Buckets: buckets, SlotsPerBucket: opts.SlotsPerBucket}

	// Segments must be small relative to the heap so capacity is granular
	// and many clients can hold private segments without exhausting the
	// pool; clamp between 512 B and the 64 KB default.
	seg := opts.CacheBytes / 64 / memnode.BlockSize * memnode.BlockSize
	if seg > memnode.DefaultSegmentSize {
		seg = memnode.DefaultSegmentSize
	}
	if seg < 8*memnode.BlockSize {
		seg = 8 * memnode.BlockSize
	}

	// Registered region: header + table + requested heap + generous slack
	// so elasticity experiments can grow the heap later.
	slack := opts.CacheBytes * 3
	if opts.MaxCacheBytes > 0 && opts.MaxCacheBytes+opts.CacheBytes > slack {
		slack = opts.MaxCacheBytes + opts.CacheBytes
	}
	memBytes := 64 + tblCfg.Bytes() + slack + seg*4
	mn := memnode.New(env, memnode.Config{MemBytes: memBytes, SegmentSize: seg, Fabric: opts.Fabric})
	base := mn.PlaceTable(tblCfg.Bytes())
	mn.SetHeapLimit(opts.CacheBytes)

	cl := &Cluster{
		Env:             env,
		MN:              mn,
		Layout:          hashtable.Layout{Config: tblCfg, Base: base},
		opts:            opts,
		ReclaimStrategy: exec.Doorbell,
		tenantUsage:     stats.NewTenantCounter(MaxTenants),
	}

	cl.histSize = opts.HistorySize
	if cl.histSize <= 0 {
		cl.histSize = opts.ExpectedObjects
	}

	for _, name := range opts.Experts {
		proto, err := cachealgo.New(name)
		if err != nil {
			//dittolint:allow typederr (config validation: unknown expert name, caught at cluster construction)
			panic(fmt.Sprintf("core: %v", err))
		}
		cl.extSizes = append(cl.extSizes, proto.ExtSize())
		cl.totalExt += proto.ExtSize()
	}

	if cl.Adaptive() {
		cl.WeightSvc = adaptive.RegisterService(mn.Node, len(opts.Experts))
	}
	return cl
}

// Adaptive reports whether distributed adaptive caching is active (more
// than one expert).
func (cl *Cluster) Adaptive() bool { return len(cl.opts.Experts) > 1 }

// specMode reports whether one-RTT speculative Gets are enabled
// (Options.LocCacheSlots > 0). It gates every verb the feature adds —
// speculative READs and free-stamp WRITEs — so specMode=false keeps the
// seed's verb shapes exactly.
func (cl *Cluster) specMode() bool { return cl.opts.LocCacheSlots > 0 }

// Options returns the cluster's configuration.
func (cl *Cluster) Options() Options { return cl.opts }

// HistorySize returns the logical FIFO history capacity.
func (cl *Cluster) HistorySize() int { return cl.histSize }

// ServedReads sums the sharded per-client served-read cells — the
// per-node load signal the hotspot bench reports.
func (cl *Cluster) ServedReads() int64 { return cl.servedReads.Sum() }

// GrowCache raises the cache's memory budget by bytes at runtime — the
// "add memory" elasticity knob of Figure 13/22: no data migration, the new
// space is simply allocatable by every client.
func (cl *Cluster) GrowCache(bytes int) { cl.MN.GrowHeap(bytes) }

// ShrinkCache lowers the cache's memory budget by bytes at runtime — the
// "remove memory" counterpart of GrowCache, completing the second
// elasticity axis. The limit drops immediately; live objects above the
// new budget are drained by client write paths, which evict a bounded
// batch per Set while the node is over budget (so the cost is amortized
// across operations instead of stalling one unlucky client), or by the
// background reclaimer when one is enabled (the shrink kicks it).
func (cl *Cluster) ShrinkCache(bytes int) {
	cl.MN.ShrinkHeap(bytes)
	cl.kickReclaimer()
}

// ------------------------------------------------------ Background reclaim ----

// reclaimBatchMax bounds how many victims one reclaimer round attempts
// (one doorbell batch of evict plans under exec.Doorbell).
const reclaimBatchMax = 16

// EnableBackgroundReclaim starts this cluster's proactive reclaimer: a
// background sim process that watches the allocator's free-space
// watermarks (memnode.SetWatermarks) and runs batched eviction plans
// under ReclaimStrategy AHEAD of demand — it wakes when free space dips
// below the low watermark and reclaims until it is back above the high
// one, surrendering the freed blocks to the controller pool where any
// client's allocator can fetch them. Client writes then stall on
// allocOrEvict only when the reclaimer has genuinely fallen behind (and
// fall back to inline eviction after a bounded stall).
//
// low/high are free-byte watermarks; values <= 0 pick defaults of 1/16
// and 1/8 of the heap. The process parks when there is no pressure and
// is kicked by allocations, drains and shrinks that cross the low
// watermark, so it adds no load to an idle cluster.
func (cl *Cluster) EnableBackgroundReclaim(low, high int) {
	if cl.reclaimEnabled {
		return
	}
	hb := cl.MN.HeapBytes()
	if low <= 0 {
		low = hb / 16
	}
	if high <= 0 {
		high = hb / 8
	}
	if low < memnode.BlockSize {
		low = memnode.BlockSize
	}
	if high < low {
		high = low
	}
	cl.MN.SetWatermarks(low, high)
	cl.reclaimKick = sim.NewCond(cl.Env)
	cl.reclaimEnabled = true
	cl.spawnReclaimer()
}

// spawnReclaimer starts (or restarts) the background reclaimer process.
// The OnCrash hook makes the reclaimer self-healing under fault
// injection: a killed reclaimer respawns immediately, and the pending
// kick re-fires so pressure accumulated during the outage is not lost.
// Safe because reclaim work is idempotent — eviction CASes are atomic,
// and blocks the dead incarnation freed but had not yet surrendered are
// merely stranded (a bounded leak a real crashed client would also
// leave), never double-owned.
func (cl *Cluster) spawnReclaimer() {
	cl.reclaimProc = cl.Env.Go("reclaimer", func(p *sim.Proc) {
		p.OnCrash(func() {
			if cl.dead {
				return // the whole node crashed: the reclaimer dies with it
			}
			cl.reclaimRestarts++
			cl.spawnReclaimer()
			cl.kickReclaimer()
		})
		rc := cl.NewClient(p)
		cl.reclaimer = rc
		for {
			cl.reclaimKick.Wait(p)
			if cl.dead || !cl.MN.BelowLowWater() {
				if cl.dead {
					return // the node is gone; no heap left to reclaim
				}
				continue // spurious kick: pressure resolved before we ran
			}
			rc.Stats.ReclaimerWakeups++
			for cl.MN.BelowHighWater() {
				n := cl.victimsFor(cl.MN.ReclaimTarget() - cl.MN.FreeBytes())
				if n > reclaimBatchMax {
					n = reclaimBatchMax
				}
				got := rc.evictBatch(n, cl.reclaimStrategy())
				// Freed blocks land on the reclaimer's own lists; surrender
				// them immediately so stalled writers can fetch them from
				// the controller pool.
				rc.surrenderFreeBlocks()
				if got == 0 {
					break // nothing evictable right now; re-arm on the next kick
				}
			}
		}
	})
}

// Crash fail-stops this node: the fabric goes unreachable (in-flight
// verbs time out, see internal/rdma) and the node's background
// reclaimer — a server-side process that dies with its node — is killed
// without respawn. MultiCluster.CrashNode drives this together with the
// membership change.
func (cl *Cluster) Crash() {
	cl.dead = true
	cl.MN.Node.Fail()
	if cl.reclaimProc != nil {
		cl.Env.Kill(cl.reclaimProc)
	}
}

// ReclaimerRestarts returns how many times the background reclaimer was
// respawned after being killed by fault injection.
func (cl *Cluster) ReclaimerRestarts() int64 { return cl.reclaimRestarts }

// Dead reports whether this node was fail-stopped by Crash.
func (cl *Cluster) Dead() bool { return cl.dead }

// ReclaimEnabled reports whether a background reclaimer is running.
func (cl *Cluster) ReclaimEnabled() bool { return cl.reclaimEnabled }

// ReclaimerStats returns the background reclaimer's own client counters
// (its evictions, sample volume and wakeups); zero when no reclaimer is
// enabled or it has not run yet.
func (cl *Cluster) ReclaimerStats() Stats {
	if cl.reclaimer == nil {
		return Stats{}
	}
	return cl.reclaimer.Stats
}

// reclaimStrategy resolves the strategy eviction batches run under:
// the pool-level override when this cluster belongs to a MultiCluster,
// else the cluster's own field.
func (cl *Cluster) reclaimStrategy() exec.Strategy {
	if cl.reclaimStratFn != nil {
		return cl.reclaimStratFn()
	}
	return cl.ReclaimStrategy
}

// kickReclaimer wakes the background reclaimer unconditionally (no-op
// when none is enabled).
func (cl *Cluster) kickReclaimer() {
	if cl.reclaimKick != nil {
		cl.reclaimKick.Broadcast()
	}
}

// maybeKickReclaim wakes the reclaimer when free space has dipped below
// the low watermark — the proactive half: called on the write path's
// successful allocations, so reclaim starts before writers stall.
func (cl *Cluster) maybeKickReclaim() {
	if cl.reclaimEnabled && cl.MN.BelowLowWater() {
		cl.reclaimKick.Broadcast()
	}
}

// noteVictimBlocks feeds the running victim-size estimate with a won
// eviction's size (in blocks).
func (cl *Cluster) noteVictimBlocks(b int) {
	if cl.avgVictimBlocks == 0 {
		cl.avgVictimBlocks = float64(b)
		return
	}
	cl.avgVictimBlocks += (float64(b) - cl.avgVictimBlocks) / 16
}

// victimsFor estimates how many evictions free `bytes` of heap, from the
// running victim-size average (assuming one block before any eviction
// has been observed). Always at least 1.
func (cl *Cluster) victimsFor(bytes int) int {
	avg := cl.avgVictimBlocks
	if avg < 1 {
		avg = 1
	}
	n := int(float64(bytes) / (avg * memnode.BlockSize))
	if n < 1 {
		n = 1
	}
	return n
}
