package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file loads real trace files for users who have them (the paper's
// IBM/CloudPhysics/Twitter/FIU suites are not redistributable; the
// synthetic stand-ins in traces.go are used by default — DESIGN.md §2).
//
// Two formats are supported:
//
//   - Twitter cache-trace (github.com/twitter/cache-trace):
//     timestamp,anonymized key,key size,value size,client id,operation,TTL
//   - generic CSV: key[,size[,op]] — op in {get,set,read,write,update};
//     header lines and comments (#) are skipped.

// LoadTwitterTrace parses the Twitter production cache-trace format.
// maxReqs > 0 truncates the trace (the paper truncates traces for
// concurrent loading).
func LoadTwitterTrace(r io.Reader, maxReqs int) ([]Req, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	keyIDs := make(map[string]uint64)
	var out []Req
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("workload: twitter trace line %d: %d fields, want >= 6", line, len(fields))
		}
		key := internKey(keyIDs, fields[1])
		ksz, _ := strconv.Atoi(fields[2])
		vsz, _ := strconv.Atoi(fields[3])
		size := ksz + vsz
		if size <= 0 {
			size = DefaultObjectSize
		}
		op := strings.ToLower(fields[5])
		out = append(out, Req{
			Key:   key,
			Size:  size,
			Write: op == "set" || op == "add" || op == "replace" || op == "cas" || op == "append" || op == "prepend",
		})
		if maxReqs > 0 && len(out) >= maxReqs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: twitter trace: %w", err)
	}
	return out, nil
}

// LoadCSVTrace parses the generic key[,size[,op]] format.
func LoadCSVTrace(r io.Reader, maxReqs int) ([]Req, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	keyIDs := make(map[string]uint64)
	var out []Req
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if line == 1 && !looksLikeData(fields) {
			continue // header
		}
		req := Req{Key: internKey(keyIDs, strings.TrimSpace(fields[0])), Size: DefaultObjectSize}
		if len(fields) > 1 {
			if sz, err := strconv.Atoi(strings.TrimSpace(fields[1])); err == nil && sz > 0 {
				req.Size = sz
			}
		}
		if len(fields) > 2 {
			switch strings.ToLower(strings.TrimSpace(fields[2])) {
			case "set", "write", "update", "insert", "w":
				req.Write = true
			}
		}
		out = append(out, req)
		if maxReqs > 0 && len(out) >= maxReqs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: csv trace: %w", err)
	}
	return out, nil
}

// internKey maps arbitrary key strings to stable dense uint64 ids.
func internKey(ids map[string]uint64, key string) uint64 {
	if id, ok := ids[key]; ok {
		return id
	}
	id := uint64(len(ids))
	ids[key] = id
	return id
}

// looksLikeData reports whether a first CSV line is data rather than a
// header (second column numeric, or single column not naming "key").
func looksLikeData(fields []string) bool {
	if len(fields) > 1 {
		_, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		return err == nil
	}
	low := strings.ToLower(strings.TrimSpace(fields[0]))
	return low != "key" && low != "object" && low != "id"
}
