package bench

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(w io.Writer, scale Scale) error

// Experiment is a registered runner plus the provenance line shown by
// RunAll and `dittobench -list`: which figure or table of the paper the
// ID reproduces (or, for the extra sweeps, what design question it
// answers).
type Experiment struct {
	Run  Runner
	Desc string
}

// Experiments maps experiment IDs (as accepted by dittobench -fig /
// -table) to their runners. IDs "1"–"25" reproduce the paper's figures,
// "table3" its Table 3; the "abl-*" sweeps and "elastic-reshard" are
// extensions of this reproduction (design-choice ablations and the
// multi-MN elasticity scenario the paper only sketches in §5.1).
var Experiments = map[string]Experiment{
	"1":      {Fig01, "Figure 1: Redis resource adjustment — scale out/in with stop-the-world migration (motivation)"},
	"2":      {Fig02, "Figure 2: single-client performance and multi-client throughput (YCSB-C, no misses)"},
	"3":      {Fig03, "Figure 3: hit rate vs. client split between LRU- and LFU-friendly apps (motivation)"},
	"4":      {Fig04, "Figure 4: LRU vs LFU across cache sizes on the webmail-like workload (motivation)"},
	"5":      {Fig05, "Figure 5: hit-rate sensitivity to client count (CDF and per-count series)"},
	"13":     {Fig13, "Figure 13: Ditto under dynamic compute/memory adjustment, no migration"},
	"14":     {Fig14, "Figure 14: YCSB throughput vs. client count against the baselines"},
	"15":     {Fig15, "Figure 15: latency percentiles under load"},
	"16":     {Fig16, "Figure 16: penalized throughput on the five real-world trace stand-ins"},
	"17":     {Fig17, "Figure 17: hit rates on the five real-world trace stand-ins"},
	"18":     {Fig18, "Figure 18: relative hit rate over the workload suite (vs random eviction)"},
	"19":     {Fig19, "Figure 19: adaptivity to a changing workload (4 phases, LRU↔LFU friendly)"},
	"20":     {Fig20, "Figure 20: hit rate vs proportion of LRU-app clients (relative to Ditto-LRU)"},
	"21":     {Fig21, "Figure 21: hit rate under dynamically growing client counts"},
	"22":     {Fig22, "Figure 22: hit rate under dynamically growing cache size"},
	"23":     {Fig23, "Figure 23: the 12 integrated caching algorithms (throughput and hit rate)"},
	"24":     {Fig24, "Figure 24: ablation of the sample-friendly table, lightweight history and lazy weights"},
	"25":     {Fig25, "Figure 25: throughput/p99 vs client-side FC cache size (YCSB-C)"},
	"table3": {Table3, "Table 3: integration effort (LOC) and access information of the 12 algorithms"},
	// Design-choice ablation sweeps (DESIGN.md §5) — not paper figures.
	"abl-k":     {SweepSampleK, "Sweep: eviction sample size K (paper default 5)"},
	"abl-fct":   {SweepFCThreshold, "Sweep: FC cache combining threshold t (paper default 10)"},
	"abl-batch": {SweepBatchSize, "Sweep: lazy weight-update batch size (paper default 100)"},
	"abl-hist":  {SweepHistorySize, "Sweep: eviction history size (paper default = cache size)"},
	"abl-mn":    {SweepMultiMN, "Sweep: static multi-MN deployments (aggregate RNIC scaling)"},
	// Elasticity beyond the paper's single-MN evaluation (§5.1 note).
	"elastic-reshard": {ElasticReshard, "Elastic scale-out 2→4 MNs with live resharding, serial vs doorbell resharder (hit rate, throughput, reshard time)"},
	// Doorbell-batched multi-key pipeline (MGet/MSet) — extension.
	"batched-throughput": {BatchedThroughput, "Doorbell-batched MGet/MSet vs sequential ops across batch sizes 1/8/32/128 (YCSB-C and mixed), location cache off/on: spec_get_hit_rate and verbs_per_get per row"},
	// Hot-key replication with load-aware read spreading — extension.
	"hotspot": {Hotspot, "Hot-key replication on a zipfian read-heavy workload, 4 MNs: throughput and per-node read imbalance, replicated vs unreplicated, location cache off/on (speculative one-RTT Gets)"},
	// Eviction as verb plans + proactive background reclaim — extension.
	"churn": {Churn, "Write-heavy zipf churn at ~100% occupancy: Set p99 and eviction-stall time, inline-serial vs background-doorbell reclaim"},
	// Fault injection: crash + replacement under load — extension.
	"chaos": {Chaos, "MN crash + replacement under flash-crowd load: recovery time, error window, post-fault hit rate (seed-reproducible)"},
	// Multi-tenant quotas + TTL leases + overload shedding — extension.
	"tenants": {Tenants, "Noisy-neighbor isolation: in-quota tenant p99/hit rate solo vs alongside an over-quota churn tenant, with and without quota steering + overload shedding"},
}

// IDs returns the experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := len(ids[i]), len(ids[j])
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Describe returns the provenance line for an experiment ID ("" when
// unknown).
func Describe(id string) string { return Experiments[id].Desc }

// Run executes one experiment by ID.
func Run(id string, w io.Writer, scale Scale) error {
	e, ok := Experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(w, scale)
}

// RunAll executes every experiment in order, announcing each ID with the
// figure/table it reproduces.
func RunAll(w io.Writer, scale Scale) error {
	for _, id := range IDs() {
		fmt.Fprintf(w, "\n[%s] %s\n", id, Describe(id))
		if err := Run(id, w, scale); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
