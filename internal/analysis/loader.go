// Module-aware source loader for the standalone dittolint driver and
// the fixture runner.
//
// The module has no external dependencies, so import resolution needs
// exactly two rules: an import path under the module path maps to a
// directory inside the module root, and everything else is stdlib,
// resolved by the go/importer source importer (which type-checks GOROOT
// packages from source — slower than export data, but dependency-free
// and fully offline). The vettool driver (unitchecker.go) does not use
// this loader at all: cmd/go hands it gc export data instead.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, in filename order
	Types *types.Package
	Info  *types.Info
}

// A Loader type-checks packages of one module. It caches type-checked
// packages, so loading ./... costs each package (and each reached
// stdlib package) once.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod

	std    types.ImporterFrom
	loaded map[string]*Package // import path → package
	refcnt map[string]bool     // cycle guard: import path → in progress
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     std,
		loaded:  make(map[string]*Package),
		refcnt:  make(map[string]bool),
	}, nil
}

// ModulePath returns the module path declared by go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ListPackages returns the import paths of every package in the module,
// in sorted order: directories under the module root that contain at
// least one non-test .go file, skipping testdata, vendored trees, and
// dot-directories.
func (l *Loader) ListPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// goFilesIn returns dir's non-test .go files in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// Load parses and type-checks the module package with the given import
// path (loading its module dependencies recursively).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.refcnt[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.refcnt[path] = true
	defer delete(l.refcnt, path)

	dir := l.root
	if path != l.modPath {
		rel, ok := strings.CutPrefix(path, l.modPath+"/")
		if !ok {
			return nil, fmt.Errorf("analysis: %s is not in module %s", path, l.modPath)
		}
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	pkg, err := l.check(path, dir, nil)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// LoadDir type-checks the .go files of one directory OUTSIDE the module
// package tree (a testdata fixture) under a caller-chosen import path,
// so package-scoped analyzers see the path their invariant keys on.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.check(asPath, dir, nil)
}

// check parses and type-checks one package. files overrides the file
// list when non-nil.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	if files == nil {
		var err error
		files, err = goFilesIn(dir)
		if err != nil {
			return nil, err
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var parsed []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// loaderImporter adapts the Loader to types.Importer: module-local
// paths load from source inside the module, everything else delegates
// to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}
