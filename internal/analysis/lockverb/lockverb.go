// Package lockverb forbids holding a sync mutex across a doorbell post
// or blocking verb issue.
//
// A verb blocks for queueing plus at least one round trip; a doorbell
// batch blocks for a whole round of them. Holding a sync.Mutex (or
// RWMutex) across that wait turns one slow or dead remote node into a
// pile-up of every thread that touches the lock — the deadlock/latency
// hazard the background reclaimer and the replica write-through paths
// are carefully structured to avoid (their per-entry locks are
// virtual-time constructs that yield to the scheduler; OS mutexes do
// not). Today the sim-driven packages are cooperatively scheduled and
// hold no OS mutexes at all, so this analyzer is a tripwire for the
// refactors the ROADMAP queues next: the zero-alloc hot path (sharded
// stat counters, RCU snapshots) and the pluggable wire transport both
// introduce real concurrency around exactly these call sites.
//
// The check is an intra-function, syntactic over-approximation: a
// mutex is "held" from a Lock/RLock call (or for the remainder of the
// function after a defer Unlock/RUnlock, the usual pairing) until a
// matching Unlock/RUnlock on the same receiver expression. Any rdma
// verb, doorbell post, or exec.Run* reached while held is reported.
// Code that genuinely must post under a mutex (none should) states why
// with //dittolint:allow lockverb (reason).
package lockverb

import (
	"go/ast"
	"go/types"

	"ditto/internal/analysis"
)

// Analyzer is the lockverb pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockverb",
	Doc: "no sync mutex may be held (including via defer) across a " +
		"doorbell post or blocking verb issue (reclaimer/replica " +
		"write-through latency contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return false // nested FuncLits are walked by checkBody
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body in statement order, tracking the
// set of held mutexes (by receiver expression text).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]ast.Node)
	walkStmts(pass, body.List, held)
}

func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]ast.Node) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

// walkStmt processes one statement: classifies lock/unlock calls,
// reports verb issues while a mutex is held, and recurses into nested
// blocks with the current held set (branch-insensitive: an unlock seen
// in a branch releases for the code after it — a deliberate
// under-approximation that keeps the check quiet on conditional-unlock
// idioms).
func walkStmt(pass *analysis.Pass, s ast.Stmt, held map[string]ast.Node) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the mutex held for the rest of the
		// function; a deferred Lock (pathological) is ignored.
		if recv, kind := lockKind(pass.Info, s.Call); kind == unlockCall {
			held[recv] = s
		}
		scanCalls(pass, s.Call.Args, held) // verb calls evaluated now, as defer args
		return
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		scanCalls(pass, []ast.Expr{s.Cond}, held)
		walkStmt(pass, s.Body, held)
		if s.Else != nil {
			walkStmt(pass, s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			scanCalls(pass, []ast.Expr{s.Cond}, held)
		}
		walkStmt(pass, s.Body, held)
		if s.Post != nil {
			walkStmt(pass, s.Post, held)
		}
		return
	case *ast.RangeStmt:
		scanCalls(pass, []ast.Expr{s.X}, held)
		walkStmt(pass, s.Body, held)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			scanCalls(pass, []ast.Expr{s.Tag}, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanCalls(pass, cc.List, held)
				walkStmts(pass, cc.Body, held)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		walkStmt(pass, s.Body, held)
		return
	case *ast.SelectStmt:
		walkStmt(pass, s.Body, held)
		return
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, kind := lockKind(pass.Info, call); kind != notLock {
				if kind == lockCall {
					held[recv] = s
				} else {
					delete(held, recv)
				}
				return
			}
		}
		scanCalls(pass, []ast.Expr{s.X}, held)
		return
	default:
		// Assignments, returns, go/send statements, decls: scan every
		// contained expression for verb-issuing calls.
		var exprs []ast.Expr
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				exprs = append(exprs, e)
				return false // scanCalls walks the subtree itself
			}
			return true
		})
		scanCalls(pass, exprs, held)
		return
	}
}

// scanCalls reports every verb-issuing call under the expressions while
// a mutex is held.
func scanCalls(pass *analysis.Pass, exprs []ast.Expr, held map[string]ast.Node) {
	if len(held) == 0 {
		// Fast path: still need to walk for nested Lock calls inside
		// expressions? Lock/Unlock as expression operands is not idiomatic;
		// statement-position calls handle the real pattern.
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if len(held) == 0 {
				return true
			}
			if name, isVerb := analysis.BlockingVerbIssue(pass.Info, call); isVerb {
				pass.Reportf(call.Pos(),
					"%s issued while holding %s: a blocked round trip stalls every thread behind the mutex; release it before posting (see the reclaimer/replica write-through structure)",
					name, heldNames(held))
			}
			return true
		})
	}
}

// heldNames renders the held set for the diagnostic.
func heldNames(held map[string]ast.Node) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return "mutex " + names[0]
	}
	s := "mutexes"
	// Deterministic enough for diagnostics: sort small slice.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		s += " " + n
	}
	return s
}

type lockClass int

const (
	notLock lockClass = iota
	lockCall
	unlockCall
)

// lockKind classifies call as a sync.Mutex/RWMutex (R)Lock/(R)Unlock
// method call, returning the receiver's expression text as the held-set
// key.
func lockKind(info *types.Info, call *ast.CallExpr) (recv string, kind lockClass) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", notLock
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || analysis.FuncPkgPath(fn) != "sync" {
		return "", notLock
	}
	named := analysis.ReceiverNamed(fn)
	if named == nil {
		return "", notLock
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", notLock
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockCall
	case "Unlock", "RUnlock":
		kind = unlockCall
	default:
		return "", notLock
	}
	return types.ExprString(sel.X), kind
}
