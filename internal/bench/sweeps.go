package bench

import (
	"fmt"
	"io"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

// The sweeps below are the ablation benches DESIGN.md §5 calls out for
// Ditto's tunable design choices. They are not figures in the paper — the
// paper reports only the grid-searched defaults (K=5, t=10, batch=100,
// history=cache size) — but they regenerate the trade-offs behind those
// choices.

// runSweepPoint replays the webmail stand-in against one configuration.
func runSweepPoint(scale Scale, mod func(*core.Options)) Result {
	n := scale.pick(30000, 150000)
	fp := scale.pick(4000, 20000)
	clients := scale.pick(8, 32)
	trace := workload.Webmail(n, fp, 301).Build()
	capObjs := fp / 10
	env := sim.NewEnv(51)
	opts := core.DefaultOptions(capObjs, capObjs*objClassBytes)
	mod(&opts)
	cl := core.NewCluster(env, opts)
	return RunTrace(env, DittoFactory(cl), trace, clients, 2, 0)
}

// SweepSampleK regenerates the sample-size trade-off: larger K approaches
// the exact policy (hit rate) but costs larger sample READs.
func SweepSampleK(w io.Writer, scale Scale) error {
	header(w, "Ablation sweep: eviction sample size K (paper default 5)")
	row(w, "K", "tput(Mops)", "hit rate")
	for _, k := range []int{1, 3, 5, 8, 16} {
		r := runSweepPoint(scale, func(o *core.Options) { o.SampleK = k })
		row(w, fmt.Sprintf("%d", k), r.Mops(), r.HitRate())
	}
	return nil
}

// SweepFCThreshold regenerates the FC-cache threshold trade-off: larger t
// combines more FAAs but lets remote counters lag further.
func SweepFCThreshold(w io.Writer, scale Scale) error {
	header(w, "Ablation sweep: FC cache threshold t (paper default 10)")
	row(w, "t", "tput(Mops)", "hit rate")
	for _, t := range []uint64{1, 5, 10, 25, 100} {
		r := runSweepPoint(scale, func(o *core.Options) { o.FCThreshold = t })
		row(w, fmt.Sprintf("%d", t), r.Mops(), r.HitRate())
	}
	return nil
}

// SweepBatchSize regenerates the lazy-weight-update batch trade-off:
// larger batches reduce controller RPCs but slow global convergence.
func SweepBatchSize(w io.Writer, scale Scale) error {
	header(w, "Ablation sweep: weight-update batch size (paper default 100)")
	row(w, "batch", "tput(Mops)", "hit rate")
	for _, b := range []int{1, 10, 100, 1000} {
		r := runSweepPoint(scale, func(o *core.Options) { o.BatchSize = b })
		row(w, fmt.Sprintf("%d", b), r.Mops(), r.HitRate())
	}
	return nil
}

// SweepHistorySize regenerates the eviction-history capacity trade-off:
// larger histories collect more regrets (faster adaptation) at more
// metadata (paper default: cache size in objects, after LeCaR).
func SweepHistorySize(w io.Writer, scale Scale) error {
	header(w, "Ablation sweep: eviction history size (paper default = cache size)")
	row(w, "history/cache", "tput(Mops)", "hit rate")
	for _, frac := range []float64{0.25, 0.5, 1, 2, 4} {
		r := runSweepPoint(scale, func(o *core.Options) {
			o.HistorySize = int(float64(o.ExpectedObjects) * frac)
		})
		row(w, fmt.Sprintf("%.2fx", frac), r.Mops(), r.HitRate())
	}
	return nil
}

// SweepMultiMN measures throughput scaling across memory nodes (the §5.1
// compatibility note): the aggregate NIC message rate scales with MNs.
func SweepMultiMN(w io.Writer, scale Scale) error {
	header(w, "Ablation sweep: multiple memory nodes (aggregate RNIC scaling)")
	keys := scale.pick(4000, 20000)
	clients := scale.pick(64, 128)
	opsEach := scale.pick(500, 2000)
	row(w, "MNs", "tput(Mops)")
	for _, n := range []int{1, 2, 4} {
		env := sim.NewEnv(52)
		mc := core.NewMultiCluster(env, n, core.DefaultOptions(keys*2, keys*512))
		factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
		RunLoad(env, factory, loadKeys(keys), 16)
		r := RunClosedLoop(env, factory, ycsbGen(workload.YCSBC, keys), clients, opsEach, 5)
		row(w, fmt.Sprintf("%d", n), r.Mops())
	}
	return nil
}
