package verbplan_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/verbplan"
)

// TestFixture runs verbplan over a two-file fixture loaded as
// ditto/internal/core: raw verbs in plan.go are sanctioned, the same
// calls in any other file of the package are flagged.
func TestFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, verbplan.Analyzer, "../testdata/verbplan", "ditto/internal/core")
}

// TestSanctionedPackage: the whole fixture under a sanctioned import
// path (the executor) produces no findings at all.
func TestSanctionedPackage(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("../testdata/verbplan", "ditto/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{verbplan.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("verbplan flagged a sanctioned package: %v", diags)
	}
}
