package ring

import "testing"

func TestOwnerDeterministic(t *testing.T) {
	a := New(0, 0, 1, 2)
	b := New(0, 2, 1, 0) // insertion order must not matter
	for k := uint64(0); k < 5000; k++ {
		p := Point(k)
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("key %d: owner differs across construction orders", k)
		}
	}
}

func TestBalance(t *testing.T) {
	r := New(0, 0, 1, 2, 3)
	counts := map[int]int{}
	const n = 40000
	for k := uint64(0); k < n; k++ {
		counts[r.Owner(Point(k))]++
	}
	mean := n / 4
	for node, c := range counts {
		if c < mean*6/10 || c > mean*14/10 {
			t.Errorf("node %d owns %d keys, want within 40%% of %d", node, c, mean)
		}
	}
}

func TestWithMovesKeysOnlyToNewNode(t *testing.T) {
	old := New(0, 0, 1, 2)
	grown := old.With(3)
	moved := 0
	const n = 20000
	for k := uint64(0); k < n; k++ {
		p := Point(k)
		was, is := old.Owner(p), grown.Owner(p)
		if was != is {
			moved++
			if is != 3 {
				t.Fatalf("key %d moved %d→%d; only the new node may gain keys", k, was, is)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if moved > n/2 {
		t.Fatalf("%d/%d keys moved; consistent hashing should move ~1/4", moved, n)
	}
}

func TestWithoutMovesOnlyRemovedNodesKeys(t *testing.T) {
	old := New(0, 0, 1, 2, 3)
	shrunk := old.Without(3)
	for k := uint64(0); k < 20000; k++ {
		p := Point(k)
		was, is := old.Owner(p), shrunk.Owner(p)
		if was != 3 && was != is {
			t.Fatalf("key %d moved %d→%d although its owner was not removed", k, was, is)
		}
		if is == 3 {
			t.Fatalf("key %d still routed to removed node", k)
		}
	}
}

func TestMembership(t *testing.T) {
	r := New(4)
	if r.NumNodes() != 0 {
		t.Fatal("empty ring has members")
	}
	r = r.With(7).With(7).With(2)
	if r.NumNodes() != 2 || !r.Has(7) || !r.Has(2) || r.Has(3) {
		t.Fatalf("membership wrong: %v", r.Nodes())
	}
	if got := r.Nodes(); got[0] != 2 || got[1] != 7 {
		t.Fatalf("nodes not sorted: %v", got)
	}
	r = r.Without(9) // no-op
	if r.NumNodes() != 2 {
		t.Fatal("removing non-member changed ring")
	}
	if r.Replicas() != 4 {
		t.Fatalf("replicas = %d", r.Replicas())
	}
}

func TestOwnerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty ring")
		}
	}()
	New(0).Owner(1)
}
