package core

import (
	"bytes"
	"testing"

	"ditto/internal/sim"
)

func TestMultiClusterRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 4, DefaultOptions(1000, 1000*320))
	if mc.NumNodes() != 4 {
		t.Fatalf("nodes = %d", mc.NumNodes())
	}
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 200; i++ {
			c.Set(key(i), value(i))
		}
		for i := 0; i < 200; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost across MNs", i)
			}
		}
		if !c.Delete(key(7)) {
			t.Fatal("delete failed")
		}
		if _, ok := c.Get(key(7)); ok {
			t.Fatal("deleted key readable")
		}
		c.Close()
		s := c.Stats()
		if s.Gets != 201 || s.Sets != 200 {
			t.Fatalf("stats = %+v", s)
		}
	})
	env.Run()
}

func TestMultiClusterSpreadsKeys(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 4, DefaultOptions(2000, 2000*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 400; i++ {
			c.Set(key(i), value(i))
		}
	})
	env.Run()
	// Every MN must hold a reasonable share.
	for i := 0; i < 4; i++ {
		used := mc.Node(i).MN.UsedBytes
		if used == 0 {
			t.Fatalf("MN %d holds nothing", i)
		}
	}
}

func TestMultiClusterRoutingStable(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 3, DefaultOptions(300, 300*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		// A key written through one client must be readable through another
		// (same routing function).
		c.Set([]byte("stable"), []byte("v"))
		c2 := mc.NewClient(p)
		if _, ok := c2.Get([]byte("stable")); !ok {
			t.Error("routing not stable across clients")
		}
	})
	env.Run()
}

func TestMultiClusterEvictsIndependently(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 2, DefaultOptions(100, 100*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < 800; i++ {
			c.Set(key(i), value(i))
		}
		if s := c.Stats(); s.Evictions == 0 {
			t.Error("no evictions at 8x capacity")
		}
	})
	env.Run()
	for i := 0; i < 2; i++ {
		cl := mc.Node(i)
		if cl.MN.UsedBytes > cl.Options().CacheBytes {
			t.Fatalf("MN %d over capacity", i)
		}
	}
}

func TestMultiClusterGrowCache(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 2, DefaultOptions(100, 64000))
	before := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	mc.GrowCache(32000)
	after := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	if after-before < 32000 {
		t.Fatalf("grew %d, want >= 32000", after-before)
	}
}

func TestMultiClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero nodes")
		}
	}()
	NewMultiCluster(sim.NewEnv(1), 0, DefaultOptions(100, 1<<20))
}
