package loccache

import (
	"fmt"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func hint(i int) Hint {
	return Hint{Addr: uint64(i) * 64, Len: 64, Ver: uint64(i) + 1}
}

func TestRecordLookupRefresh(t *testing.T) {
	c := New(4)
	c.Record(key(1), hint(1))
	h, ok := c.Lookup(key(1))
	if !ok || h != hint(1) {
		t.Fatalf("Lookup = %+v, %v; want %+v, true", h, ok, hint(1))
	}
	if _, ok := c.Lookup(key(2)); ok {
		t.Fatalf("Lookup of unrecorded key succeeded")
	}
	// Refresh replaces the hint in place.
	c.Record(key(1), hint(9))
	if h, _ := c.Lookup(key(1)); h != hint(9) {
		t.Fatalf("after refresh, Lookup = %+v; want %+v", h, hint(9))
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d; want 1", c.Len())
	}
}

// TestCapacityEviction pins the bound: inserting past capacity never
// grows the cache, and the CLOCK policy victimizes an unreferenced
// entry while keeping a recently-looked-up one.
func TestCapacityEviction(t *testing.T) {
	const capacity = 8
	c := New(capacity)
	for i := 0; i < capacity; i++ {
		c.Record(key(i), hint(i))
	}
	if c.Len() != capacity {
		t.Fatalf("Len = %d; want %d", c.Len(), capacity)
	}
	// Touch key 0 so it survives the first eviction sweep.
	c.Lookup(key(0))
	for i := capacity; i < 3*capacity; i++ {
		c.Record(key(i), hint(i))
		if c.Len() > capacity {
			t.Fatalf("Len = %d exceeds capacity %d after insert %d", c.Len(), capacity, i)
		}
	}
	if c.Len() != capacity {
		t.Fatalf("Len = %d; want %d (bounded)", c.Len(), capacity)
	}
	// The newest inserts must be present (they were just recorded).
	for i := 3*capacity - capacity/2; i < 3*capacity; i++ {
		if _, ok := c.Lookup(key(i)); !ok {
			t.Fatalf("recently recorded key %d was evicted", i)
		}
	}
}

func TestDropAndReuse(t *testing.T) {
	c := New(2)
	c.Record(key(1), hint(1))
	c.Record(key(2), hint(2))
	c.Drop(key(1))
	if _, ok := c.Lookup(key(1)); ok {
		t.Fatalf("dropped key still resolves")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d; want 1 after drop", c.Len())
	}
	c.Drop(key(1)) // idempotent
	// The vacated slot is reused without evicting the survivor.
	c.Record(key(3), hint(3))
	if _, ok := c.Lookup(key(2)); !ok {
		t.Fatalf("survivor evicted although a dropped slot was free")
	}
	if _, ok := c.Lookup(key(3)); !ok {
		t.Fatalf("newly recorded key missing")
	}
}

// TestLookupAllocFree pins the zero-allocation contract of the
// steady-state hot path: Lookup and a refreshing Record.
func TestLookupAllocFree(t *testing.T) {
	c := New(16)
	k := key(1)
	c.Record(k, hint(1))
	h := hint(2)
	allocs := testing.AllocsPerRun(200, func() {
		c.Lookup(k)
		c.Record(k, h)
	})
	if allocs != 0 {
		t.Fatalf("Lookup+refresh Record = %v allocs/op; want 0", allocs)
	}
}
