package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// hotspotRow is one measured configuration of the hotspot scenario, as
// serialized into BENCH_hotspot.json.
type hotspotRow struct {
	Theta       float64 `json:"theta"`
	Workload    string  `json:"workload"`  // "read-only" | "mixed-5pct-writes"
	Mode        string  `json:"mode"`      // "unreplicated" | "replicated"
	LocCache    bool    `json:"loc_cache"` // client-side location cache on?
	Mops        float64 `json:"mops"`
	Speedup     float64 `json:"speedup_vs_unreplicated"`
	HitRate     float64 `json:"hit_rate"`
	Imbalance   float64 `json:"read_imbalance"` // max node share / mean share (1.0 = even)
	Promotions  int64   `json:"promotions"`
	Demotions   int64   `json:"demotions"`
	SpreadReads int64   `json:"spread_reads"`

	// Speculative-Get effectiveness over the measured phase: the fraction
	// of Gets served by one validated hinted READ, and the mean READ verbs
	// each Get cost (2.0 with the cache off: bucket + object; approaching
	// 1.0 as hints hit — eviction sampling and write-path candidate READs
	// keep it from reaching the floor exactly).
	SpecGetHitRate float64 `json:"spec_get_hit_rate"`
	VerbsPerGet    float64 `json:"verbs_per_get"`

	// Host-side cost of simulating the measured phase (see Result): the
	// alloc gate diffs these across commits.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HostNsPerOp float64 `json:"host_ns_per_op"`
}

// Hotspot measures the hot-key replication lever on a 4-MN pool, with
// and without replication. The headline rows are read-only zipfian
// closed loops (the canonical YCSB-C-style cache read workload) across
// skew exponents from YCSB's 0.99 up to the heavy hot tails real cache
// front ends report: unreplicated, the ring concentrates the hot tail
// on whichever MNs own the top keys and their RNICs become the binding
// resource while the others idle — visible as read_imbalance well above
// 1. With replication (factor 3: hot keys copied to every other MN),
// promoted reads rotate across all four nodes, imbalance collapses to
// ~1, and closed-loop throughput scales with the aggregate RNIC budget:
// >=2x at the heavy tail, smaller at moderate skew where no single node
// is as saturated.
//
// The final pair repeats the heavy tail with 5% writes. Every write to
// a replicated key suspends that key's spreading for the write's span
// (the invalidate-first write-through empties the replicas before the
// new value becomes readable — the price of linearizable reads), and
// under saturation those spans stretch, so the speedup shrinks. That
// shape is the point: replication pays on read-dominated hot keys,
// which is why write-heavy keys are demoted rather than replicated.
func Hotspot(w io.Writer, scale Scale) error {
	header(w, "Hotspot: hot-key replication + load-aware read spreading, 4 MNs")
	keys := scale.pick(2048, 16384)
	clients := scale.pick(48, 96)
	opsEach := scale.pick(1500, 8000)

	var rows []hotspotRow
	configs := []struct {
		theta      float64
		writeDenom int // 0 = read-only, N = 1-in-N writes
		label      string
	}{
		{0.99, 0, "read-only"},
		{1.3, 0, "read-only"},
		{1.6, 0, "read-only"},
		{1.6, 20, "mixed-5pct-writes"},
	}
	for _, cfg := range configs {
		for _, locCache := range []bool{false, true} {
			fmt.Fprintf(w, "-- zipf theta=%.2f, %s, loc-cache %s --\n",
				cfg.theta, cfg.label, onOff(locCache))
			row(w, "mode", "tput(Mops)", "speedup", "hit rate", "imbalance", "spec hit", "verbs/get")
			base := 0.0
			for _, replicate := range []bool{false, true} {
				m := runHotspot(cfg.theta, replicate, locCache, keys, clients, opsEach, cfg.writeDenom)
				if !replicate {
					base = m.res.Mops()
				}
				speedup := 0.0
				if base > 0 {
					speedup = m.res.Mops() / base
				}
				mode := "unreplicated"
				if replicate {
					mode = "replicated"
				}
				row(w, mode, m.res.Mops(), speedup, m.res.HitRate(), m.imb, m.spec, m.vpg)
				rows = append(rows, hotspotRow{
					Theta: cfg.theta, Workload: cfg.label, Mode: mode, LocCache: locCache,
					Mops: m.res.Mops(), Speedup: speedup, HitRate: m.res.HitRate(), Imbalance: m.imb,
					Promotions: m.mc.Promotions, Demotions: m.mc.Demotions, SpreadReads: m.mc.SpreadReads,
					SpecGetHitRate: m.spec, VerbsPerGet: m.vpg,
					AllocsPerOp: m.res.AllocsPerOp(), HostNsPerOp: m.res.HostNsPerOp(),
				})
				if replicate {
					fmt.Fprintf(w, "promotions: %d, demotions: %d, spread reads: %d\n",
						m.mc.Promotions, m.mc.Demotions, m.mc.SpreadReads)
				}
			}
		}
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario":        "hotspot",
		"scale":           scale.String(),
		"keys":            keys,
		"clients":         clients,
		"nodes":           4,
		"loc_cache_slots": hotspotLocSlots,
		"results":         rows,
	})
}

// onOff renders a bool dimension for the text table headers.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// hotspotLocSlots is the per-client location-cache capacity the loc-cache
// rows run with: enough for the zipfian hot tail that dominates the Gets,
// far from enough to pin the whole key space — the regime the hint cache
// is built for.
const hotspotLocSlots = 4096

// hotspotMeasure is one runHotspot measurement.
type hotspotMeasure struct {
	res  Result
	imb  float64
	mc   *core.MultiCluster
	spec float64 // fraction of Gets served speculatively
	vpg  float64 // READ verbs per Get over the measured phase
}

// runHotspot runs `clients` closed-loop clients (zipf(theta)-skewed
// keys; writeDenom == 0 means read-only, N means 1-in-N ops are Sets)
// against a 4-MN pool and reports the result plus the per-node
// served-read imbalance. theta <= 1 uses the YCSB scrambled-zipfian
// generator; heavier tails use the classical zipf sampler
// (math/rand.Zipf), whose rank-0 key is simply key 0 — ring placement
// hashes the key bytes, so the hot ranks still land on effectively
// random nodes.
func runHotspot(theta float64, replicate, locCache bool, keys, clients, opsEach, writeDenom int) hotspotMeasure {
	env := sim.NewEnv(benchSeed(29))
	opts := core.DefaultOptions(keys*3, keys*1200) // headroom for 1+R hot-key copies
	if locCache {
		opts.LocCacheSlots = hotspotLocSlots
	}
	// The replication lever only matters once a single MN's RNIC is the
	// binding resource. The default calibration's 40 M msg/s per node
	// needs hundreds of closed-loop clients to saturate; scale the
	// message rate down (the reproduction target is the SHAPE: what
	// happens once the hot node saturates) so a quick run reaches that
	// regime with tens of clients.
	opts.Fabric.MsgSvc = 300 // ~3.3 M msg/s per MN
	mc := core.NewMultiCluster(env, 4, opts)
	if replicate {
		// Copies on every other MN, promotion after a few dozen observed
		// hits, directory comfortably covering the hot tail.
		mc.EnableHotKeyReplication(3, 32, 512)
	}
	factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
	RunLoad(env, factory, loadKeys(keys), 16)

	// Verb deltas start AFTER the load phase so verbs_per_get charges only
	// the measured clients' traffic (plus the eviction/write READs their
	// ops trigger — part of the honest per-Get cost).
	reads0 := nodeReads(mc)
	res := Result{}
	var agg core.Stats
	meter := startHostMeter()
	start := env.Now()
	for w := 0; w < clients; w++ {
		w := w
		env.Go("client", func(p *sim.Proc) {
			m := mc.NewClient(p)
			rng := rand.New(rand.NewSource(int64(300 + w)))
			next := zipfSampler(rng, theta, uint64(keys))
			for i := 0; i < opsEach; i++ {
				k := workload.KeyBytes(next())
				if writeDenom > 0 && rng.Intn(writeDenom) == 0 {
					m.Set(k, make([]byte, 240))
				} else if _, ok := m.Get(k); ok {
					res.Hits++
				} else {
					res.Misses++
				}
				res.Ops++
			}
			agg.Add(m.Stats())
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start
	meter.stop(&res)

	served := make([]int64, mc.NumNodes())
	for i := range served {
		served[i] = mc.Node(i).ServedReads()
	}
	vpg := 0.0
	if agg.Gets > 0 {
		vpg = float64(nodeReads(mc)-reads0) / float64(agg.Gets)
	}
	return hotspotMeasure{
		res: res, imb: stats.Imbalance(served), mc: mc,
		spec: agg.SpecGetHitRate(), vpg: vpg,
	}
}

// nodeReads sums the READ verb counters across the pool's RNICs.
func nodeReads(mc *core.MultiCluster) int64 {
	var n int64
	for i := 0; i < mc.NumNodes(); i++ {
		n += mc.Node(i).MN.Node.Stats.Reads
	}
	return n
}

// zipfSampler returns a key sampler for the given skew: the YCSB
// scrambled-zipfian port for theta < 1, math/rand's classical zipf for
// theta >= 1 (the YCSB formula diverges there).
func zipfSampler(rng *rand.Rand, theta float64, keys uint64) func() uint64 {
	if theta < 1 {
		z := workload.NewScrambledZipfian(keys, theta)
		return func() uint64 { return z.Next(rng) }
	}
	z := rand.NewZipf(rng, theta, 1, keys-1)
	return z.Uint64
}
