package sim

import (
	"fmt"
	"testing"
)

// TestKillStopsProc: a killed process never runs again, and Run still
// terminates (its pending event is discarded, not executed).
func TestKillStopsProc(t *testing.T) {
	env := NewEnv(1)
	steps := 0
	var victim *Proc
	victim = env.Go("victim", func(p *Proc) {
		for {
			p.Sleep(10)
			steps++
		}
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(25)
		if !env.Kill(victim) {
			t.Error("Kill of a live proc returned false")
		}
		if env.Kill(victim) {
			t.Error("second Kill of the same proc returned true")
		}
	})
	env.Run()
	if steps != 2 {
		t.Fatalf("victim took %d steps, want 2 (killed at t=25, steps at 10 and 20)", steps)
	}
	if !victim.Killed() {
		t.Error("victim.Killed() = false after Kill")
	}
	if victim.Alive() {
		t.Error("victim.Alive() = true after Kill")
	}
}

// TestKillSelfPanics: a process cannot Kill itself (crash injection is
// always external, like a real fail-stop).
func TestKillSelfPanics(t *testing.T) {
	env := NewEnv(1)
	panicked := false
	env.Go("suicidal", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		env.Kill(p)
	})
	env.Run()
	if !panicked {
		t.Fatal("self-Kill did not panic")
	}
}

// TestOnCrashLIFOAndRespawn: OnCrash hooks run in LIFO order at the kill
// point, do not run on normal exit, and may respawn a replacement proc.
func TestOnCrashLIFOAndRespawn(t *testing.T) {
	env := NewEnv(1)
	var order []string
	respawned := false
	var victim *Proc
	victim = env.Go("worker", func(p *Proc) {
		p.OnCrash(func() { order = append(order, "first-registered") })
		p.OnCrash(func() {
			order = append(order, "second-registered")
			env.Go("worker", func(p2 *Proc) {
				respawned = true
			})
		})
		for {
			p.Sleep(5)
		}
	})
	env.Go("clean", func(p *Proc) {
		p.OnCrash(func() { t.Error("OnCrash hook ran on normal exit") })
		p.Sleep(3)
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(12)
		env.Kill(victim)
	})
	env.Run()
	if len(order) != 2 || order[0] != "second-registered" || order[1] != "first-registered" {
		t.Fatalf("OnCrash order = %v, want LIFO", order)
	}
	if !respawned {
		t.Fatal("respawn from OnCrash hook did not run")
	}
}

// TestFindProc returns the newest live proc with a name, skipping dead ones.
func TestFindProc(t *testing.T) {
	env := NewEnv(1)
	var first, second *Proc
	first = env.Go("dup", func(p *Proc) { p.Sleep(100) })
	env.Go("driver", func(p *Proc) {
		if got := env.FindProc("dup"); got != first {
			t.Errorf("FindProc before respawn = %v, want first", got)
		}
		if got := env.FindProc("nobody"); got != nil {
			t.Errorf("FindProc(nobody) = %v, want nil", got)
		}
		env.Kill(first)
		second = env.Go("dup", func(p *Proc) { p.Sleep(100) })
		if got := env.FindProc("dup"); got != second {
			t.Errorf("FindProc after respawn = %v, want second", got)
		}
	})
	env.Run()
}

// TestKillDiscardPendingCondWake: killing a proc parked on a Cond must not
// wedge Run or resurrect the proc when the Cond broadcasts.
func TestKillDiscardPendingCondWake(t *testing.T) {
	env := NewEnv(1)
	cond := NewCond(env)
	woke := false
	var waiter *Proc
	waiter = env.Go("waiter", func(p *Proc) {
		cond.Wait(p)
		woke = true
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(5)
		env.Kill(waiter)
		cond.Broadcast()
	})
	env.Run()
	if woke {
		t.Fatal("killed waiter ran after Cond.Broadcast")
	}
}

// TestFaultScheduleDeterministic: identical seeds give identical armed
// times; different seeds differ somewhere across a spread of windows.
func TestFaultScheduleDeterministic(t *testing.T) {
	arm := func(seed int64) []int64 {
		env := NewEnv(1)
		fs := NewFaultSchedule(env, seed)
		var ts []int64
		for i := 0; i < 8; i++ {
			ts = append(ts, fs.Between(1000, 1000000, fmt.Sprintf("f%d", i), func(p *Proc) {}))
		}
		return ts
	}
	a, b := arm(42), arm(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different times at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := arm(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 armed identical schedules")
	}
}

// TestFaultScheduleFiresAtTime: the fault function runs at the armed
// virtual time and its name shows up in Armed.
func TestFaultScheduleFiresAtTime(t *testing.T) {
	env := NewEnv(1)
	fs := NewFaultSchedule(env, 7)
	var firedAt int64 = -1
	fs.At(500, "boom", func(p *Proc) {
		firedAt = env.Now()
	})
	env.Go("bg", func(p *Proc) { p.Sleep(1000) })
	env.Run()
	if firedAt != 500 {
		t.Fatalf("fault fired at %d, want 500", firedAt)
	}
	if len(fs.Armed) != 1 || fs.Armed[0].Name != "boom" || fs.Armed[0].T != 500 {
		t.Fatalf("Armed = %+v", fs.Armed)
	}
	if fs.Seed() != 7 {
		t.Fatalf("Seed() = %d", fs.Seed())
	}
	if fs.String() == "" {
		t.Fatal("String() empty")
	}
}

// TestKillRunningCountProperty: after killing k of n sleepers, Run exits
// (running-count bookkeeping stays balanced).
func TestKillRunningCountProperty(t *testing.T) {
	env := NewEnv(1)
	var procs []*Proc
	for i := 0; i < 10; i++ {
		procs = append(procs, env.Go(fmt.Sprintf("s%d", i), func(p *Proc) {
			p.Sleep(1000)
		}))
	}
	env.Go("killer", func(p *Proc) {
		p.Sleep(10)
		for i := 0; i < 5; i++ {
			env.Kill(procs[i*2])
		}
	})
	env.Run() // must terminate; a leak would hang the test
	if env.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", env.Now())
	}
}
