// Package sim implements a deterministic discrete-event virtual-time
// execution environment.
//
// Ditto's evaluation depends on counting round trips and on which shared
// resource (the memory-node RNIC's message rate, or the memory-node CPU)
// saturates first. This package provides the substrate used to model that
// behaviour without RDMA hardware: goroutine-backed processes advance a
// shared virtual clock one event at a time, and Resource models k-server
// FIFO queueing in virtual time.
//
// Exactly one process runs at any instant; processes hand control back to
// the scheduler whenever they sleep, wait, or finish. Interleaving therefore
// happens at event boundaries, which is precisely the granularity at which
// remote verbs (READ/WRITE/CAS/FAA) interleave on real disaggregated
// memory. The model is fully deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Virtual-time unit constants. Virtual time is int64 nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
	Minute      int64 = 60 * Second
)

// event is a scheduled wake-up of a process.
type event struct {
	t   int64
	seq uint64 // tiebreak for deterministic ordering of same-time events
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Env is a virtual-time environment. Create one with NewEnv, register
// processes with Go, and drive them with Run.
type Env struct {
	now     int64
	seq     uint64
	events  eventHeap
	sched   chan struct{} // processes signal the scheduler here after yielding
	running int           // live (started, unfinished) processes
	nextID  int
	seed    int64
	stopped bool
}

// NewEnv returns an environment at virtual time zero. The seed determines
// every random choice made by processes that use their per-process RNG.
func NewEnv(seed int64) *Env {
	return &Env{
		sched: make(chan struct{}),
		seed:  seed,
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Env) Now() int64 { return e.now }

// Stop makes Run return after the currently running process yields.
// Remaining events are discarded. Processes blocked in Sleep or Wait never
// resume; their goroutines are abandoned (acceptable for one-shot
// experiment runs, which always terminate the whole environment).
func (e *Env) Stop() { e.stopped = true }

func (e *Env) push(t int64, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// Proc is a process executing in virtual time. A Proc must only be used
// from its own goroutine (the function passed to Go).
type Proc struct {
	env    *Env
	resume chan struct{}
	id     int
	name   string
	rng    *rand.Rand
	done   bool
}

// ID returns the process's unique id, assigned in Go order.
func (p *Proc) ID() int { return p.id }

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Rand returns the process's private deterministic RNG.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.env.now }

// Go registers fn as a new process starting at the current virtual time.
// It may be called before Run or from inside a running process (e.g. to add
// clients mid-experiment, as the elasticity experiments do).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt registers fn as a new process that starts at virtual time t (which
// must be >= Now).
func (e *Env) GoAt(t int64, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: GoAt(%d) in the past (now=%d)", t, e.now))
	}
	p := &Proc{
		env:    e,
		resume: make(chan struct{}),
		id:     e.nextID,
		name:   name,
		rng:    rand.New(rand.NewSource(e.seed ^ int64(uint64(e.nextID+1)*0x9e3779b97f4a7c15>>1))),
	}
	e.nextID++
	e.running++
	go func() {
		// The final yield is deferred so the scheduler survives a process
		// that exits via runtime.Goexit (e.g. t.Fatal inside a test body).
		defer func() {
			p.done = true
			e.running--
			e.sched <- struct{}{}
		}()
		<-p.resume // wait for the scheduler to start us
		fn(p)
	}()
	e.push(t, p)
	return p
}

// Run executes events until none remain or Stop is called. It must be
// called from the goroutine that owns the Env (typically the test or
// benchmark body). Run may be called repeatedly; later Go calls followed by
// Run continue the same timeline.
func (e *Env) Run() {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if ev.p.done {
			continue // stale wake-up for a finished process
		}
		if ev.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.t
		ev.p.resume <- struct{}{}
		<-e.sched
	}
	e.stopped = false
}

// yield returns control to the scheduler and blocks until resumed.
func (p *Proc) yield() {
	p.env.sched <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d nanoseconds. d < 0 is
// treated as 0 (a pure yield that lets same-time events interleave).
func (p *Proc) Sleep(d int64) {
	if d < 0 {
		d = 0
	}
	p.env.push(p.env.now+d, p)
	p.yield()
}

// SleepUntil advances the process to virtual time t. If t is in the past it
// behaves like Sleep(0).
func (p *Proc) SleepUntil(t int64) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.push(t, p)
	p.yield()
}

// park blocks the process without scheduling a wake-up. Something else must
// wake it via wake.
func (p *Proc) park() { p.yield() }

// wake schedules p to resume at time t.
func (e *Env) wake(p *Proc, t int64) { e.push(t, p) }

// Cond is a virtual-time condition variable: processes Wait, another
// process Broadcasts to wake all waiters at the current virtual time.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a condition variable bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every waiter at the current virtual time. The caller
// keeps running; waiters resume when the caller next yields.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.env.wake(w, c.env.now)
	}
	c.waiters = c.waiters[:0]
}

// NumWaiters returns how many processes are blocked on the Cond.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Resource models a k-server FIFO queue in virtual time: think NIC message
// processors or memory-node CPU cores. Acquire reserves the earliest
// available server for a given service time and returns the completion
// time; the caller decides whether to wait for it (synchronous verb) or not
// (asynchronous/doorbell verb). Because exactly one process runs at a time,
// no locking is needed.
type Resource struct {
	env  *Env
	free []int64 // next-free virtual time per server
	// Busy accumulates total service time charged, for utilization stats.
	Busy int64
	// Ops counts Acquire calls.
	Ops int64
}

// NewResource creates a resource with `servers` parallel servers.
func NewResource(env *Env, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{env: env, free: make([]int64, servers)}
}

// Servers returns the number of parallel servers.
func (r *Resource) Servers() int { return len(r.free) }

// SetServers changes the number of servers (used by experiments that scale
// MN CPU cores at runtime). Growing adds idle servers; shrinking drops the
// busiest ones.
func (r *Resource) SetServers(n int) {
	if n < 1 {
		panic("sim: resource needs at least one server")
	}
	for len(r.free) < n {
		r.free = append(r.free, r.env.now)
	}
	if len(r.free) > n {
		// Keep the n earliest-free servers.
		for i := 0; i < n; i++ {
			for j := i + 1; j < len(r.free); j++ {
				if r.free[j] < r.free[i] {
					r.free[i], r.free[j] = r.free[j], r.free[i]
				}
			}
		}
		r.free = r.free[:n]
	}
}

// Acquire reserves the earliest-free server for svc nanoseconds of service
// starting no earlier than now, and returns the completion time.
func (r *Resource) Acquire(svc int64) int64 {
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	start := r.free[best]
	if now := r.env.now; start < now {
		start = now
	}
	end := start + svc
	r.free[best] = end
	r.Busy += svc
	r.Ops++
	return end
}

// Utilization returns Busy divided by (servers × elapsed) for elapsed > 0.
func (r *Resource) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / (float64(elapsed) * float64(len(r.free)))
}
