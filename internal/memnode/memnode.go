// Package memnode implements the memory-pool side of Ditto: the memory
// node's address-space layout, the two-level memory management scheme
// (segment allocation served by the weak MN controller, block carving done
// client-side), and the registry of controller RPC opcodes shared by every
// protocol in this repository.
//
// Layout of the registered region:
//
//	[0,   8)          global history counter (48-bit circular, RDMA_FAA'd)
//	[8,   headerEnd)  reserved words
//	[headerEnd, T)    sample-friendly hash table (placed by PlaceTable)
//	[T,   end)        object heap, carved into segments
//
// The controller owns the segment free list; clients obtain segments over
// RPC (infrequent — the second level) and carve 64-byte-granularity blocks
// from them locally (the common case — zero network cost), exactly as the
// two-level scheme of FUSEE that the paper adopts (§5.1 Implementations).
package memnode

import (
	"encoding/binary"
	"fmt"

	"ditto/internal/rdma"
	"ditto/internal/sim"
)

// Controller RPC opcodes. All protocols in this repository register their
// handlers out of this space so a single memory node can host any mix.
const (
	OpAllocSeg uint8 = iota + 1
	OpFreeSeg
	OpWeightUpdate // distributed adaptive caching: lazy weight update
	OpCMSet        // CliqueMap baseline: server-executed Set
	OpCMSync       // CliqueMap baseline: client access-info synchronization
	OpServerOp     // monolithic-server baseline (Redis-like shard op)
)

// BlockSize is the allocation granularity of the object heap; the paper's
// slot size field counts object sizes in units of 64-byte blocks.
const BlockSize = 64

// DefaultSegmentSize is how much memory one ALLOC RPC hands a client.
const DefaultSegmentSize = 64 * 1024

// headerBytes reserves space for the global history counter and future
// control words at the base of the region.
const headerBytes = 64

// HistCounterAddr is the address of the global history counter.
const HistCounterAddr uint64 = 0

// MemNode wraps an rdma.Node with Ditto's layout and the segment-level
// allocator run by the controller.
type MemNode struct {
	Node *rdma.Node

	segmentSize int
	tableAddr   uint64
	tableBytes  int
	heapAddr    uint64
	heapEnd     uint64
	nextSeg     uint64
	freeSegs    []uint64

	// SegAllocs counts segment allocations served (controller-side metric).
	SegAllocs int64

	// UsedBytes tracks live heap bytes across ALL clients. Free lists are
	// per-client (the evicting client reuses the victim's space, as in the
	// paper), but accounting must be global because any client may evict —
	// and thus free — any other client's allocation.
	UsedBytes int
}

// Config configures a memory node.
type Config struct {
	// MemBytes is the total registered memory (table + heap + header).
	MemBytes int
	// SegmentSize overrides DefaultSegmentSize when > 0.
	SegmentSize int
	// Fabric is the timing model for the node's NIC/CPU.
	Fabric rdma.Config
}

// New creates a memory node and registers the ALLOC/FREE handlers.
func New(env *sim.Env, cfg Config) *MemNode {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.SegmentSize%BlockSize != 0 {
		panic("memnode: segment size must be a multiple of the block size")
	}
	mn := &MemNode{
		Node:        rdma.NewNode(env, cfg.MemBytes, cfg.Fabric),
		segmentSize: cfg.SegmentSize,
	}
	mn.tableAddr = headerBytes
	mn.heapAddr = headerBytes
	mn.heapEnd = uint64(cfg.MemBytes)
	mn.nextSeg = mn.heapAddr
	mn.Node.Handle(OpAllocSeg, mn.handleAllocSeg)
	mn.Node.Handle(OpFreeSeg, mn.handleFreeSeg)
	return mn
}

// PlaceTable reserves bytes for the hash table directly after the header
// and returns its base address. It must be called before any segment is
// allocated.
func (mn *MemNode) PlaceTable(bytes int) uint64 {
	if mn.nextSeg != mn.heapAddr || len(mn.freeSegs) > 0 {
		panic("memnode: PlaceTable after segment allocation")
	}
	if uint64(headerBytes+bytes) > mn.heapEnd {
		panic(fmt.Sprintf("memnode: table of %d bytes does not fit in %d", bytes, mn.heapEnd))
	}
	mn.tableAddr = headerBytes
	mn.tableBytes = bytes
	mn.heapAddr = headerBytes + uint64(bytes)
	// Segments are block-aligned.
	if r := mn.heapAddr % BlockSize; r != 0 {
		mn.heapAddr += BlockSize - r
	}
	mn.nextSeg = mn.heapAddr
	return mn.tableAddr
}

// TableAddr returns the hash table base address.
func (mn *MemNode) TableAddr() uint64 { return mn.tableAddr }

// HeapBytes returns the number of bytes available for cached objects.
func (mn *MemNode) HeapBytes() int { return int(mn.heapEnd - mn.heapAddr) }

// SegmentSize returns the segment granularity.
func (mn *MemNode) SegmentSize() int { return mn.segmentSize }

// GrowHeap extends the heap by bytes (the "add memory" elasticity
// experiments). The underlying region must have been sized generously; in
// simulation we model growth by raising the allocatable limit.
func (mn *MemNode) GrowHeap(bytes int) {
	newEnd := mn.heapEnd + uint64(bytes)
	if newEnd > uint64(mn.Node.MemSize()) {
		panic("memnode: GrowHeap beyond registered region")
	}
	mn.heapEnd = newEnd
}

// SetHeapLimit sets the allocatable heap end to heapAddr+bytes, used to
// start an elastic experiment with a small cache and grow it later.
func (mn *MemNode) SetHeapLimit(bytes int) {
	newEnd := mn.heapAddr + uint64(bytes)
	if newEnd > uint64(mn.Node.MemSize()) {
		panic("memnode: heap limit beyond registered region")
	}
	mn.heapEnd = newEnd
}

func (mn *MemNode) handleAllocSeg([]byte) []byte {
	reply := make([]byte, 9)
	var addr uint64
	switch {
	case len(mn.freeSegs) > 0:
		addr = mn.freeSegs[len(mn.freeSegs)-1]
		mn.freeSegs = mn.freeSegs[:len(mn.freeSegs)-1]
	case mn.nextSeg+uint64(mn.segmentSize) <= mn.heapEnd:
		addr = mn.nextSeg
		mn.nextSeg += uint64(mn.segmentSize)
	default:
		reply[0] = 0 // out of memory
		return reply
	}
	mn.SegAllocs++
	reply[0] = 1
	binary.LittleEndian.PutUint64(reply[1:], addr)
	return reply
}

func (mn *MemNode) handleFreeSeg(payload []byte) []byte {
	addr := binary.LittleEndian.Uint64(payload)
	mn.freeSegs = append(mn.freeSegs, addr)
	return []byte{1}
}

// Alloc is the client-side (first-level) block allocator: it carves
// BlockSize-granularity blocks out of controller-provided segments and
// keeps per-size-class free lists. All methods run inside the owning sim
// process.
type Alloc struct {
	ep *rdma.Endpoint
	mn *MemNode

	cursor    uint64 // next unused byte in the current segment
	remaining int    // bytes left in the current segment
	free      map[int][]uint64

	// segFailBackoff suppresses repeat ALLOC RPCs after the controller
	// reported exhaustion, so steady-state eviction/insert cycles don't
	// spam the weak controller. The client re-probes periodically, which
	// is how it discovers memory grown by the elasticity knobs.
	segFailBackoff int
}

// segRetryInterval is how many failed Allocs to wait before re-asking the
// controller for a segment.
const segRetryInterval = 256

// NewAlloc creates a client allocator speaking to mn through ep.
func NewAlloc(mn *MemNode, ep *rdma.Endpoint) *Alloc {
	return &Alloc{ep: ep, mn: mn, free: make(map[int][]uint64)}
}

// SizeClass rounds size up to the block granularity.
func SizeClass(size int) int {
	if size <= 0 {
		return BlockSize
	}
	return (size + BlockSize - 1) / BlockSize * BlockSize
}

// Alloc returns the address of a block that fits size bytes, or ok=false
// when the memory pool is exhausted (the caller then evicts and retries).
func (a *Alloc) Alloc(size int) (addr uint64, ok bool) {
	cl := SizeClass(size)
	if cl > a.mn.segmentSize {
		panic(fmt.Sprintf("memnode: object of %d bytes exceeds segment size %d", size, a.mn.segmentSize))
	}
	if lst := a.free[cl]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		a.free[cl] = lst[:len(lst)-1]
		a.mn.UsedBytes += cl
		return addr, true
	}
	if a.remaining < cl {
		if a.segFailBackoff > 0 {
			a.segFailBackoff--
			return 0, false
		}
		// Second level: fetch a fresh segment from the controller. The tail
		// of the old segment (if any) is parked on free lists so it is not
		// leaked.
		a.shredTail()
		reply := a.ep.RPC(OpAllocSeg, nil)
		if reply[0] == 0 {
			a.segFailBackoff = segRetryInterval
			return 0, false
		}
		a.cursor = binary.LittleEndian.Uint64(reply[1:])
		a.remaining = a.mn.segmentSize
	}
	addr = a.cursor
	a.cursor += uint64(cl)
	a.remaining -= cl
	a.mn.UsedBytes += cl
	return addr, true
}

// shredTail converts the remainder of the current segment into free blocks
// of the largest classes that fit, so switching segments never leaks space.
func (a *Alloc) shredTail() {
	for a.remaining >= BlockSize {
		cl := a.remaining / BlockSize * BlockSize
		if cl > a.mn.segmentSize {
			cl = a.mn.segmentSize
		}
		// Park as one big block in its own class; Alloc of smaller sizes
		// won't use it, but Free/Alloc cycles of equal classes dominate in
		// caches with stable object sizes. Remainders are rare (segment
		// switches only).
		a.free[cl] = append(a.free[cl], a.cursor)
		a.cursor += uint64(cl)
		a.remaining -= cl
	}
	a.remaining = 0
}

// Free returns the block at addr (of the class that fits size) to the
// client-local free list — no network cost, as in the paper's design where
// the evicting client reuses the victim's space. The block need not have
// been allocated by this client: evictions free other clients' blocks.
func (a *Alloc) Free(addr uint64, size int) {
	cl := SizeClass(size)
	a.free[cl] = append(a.free[cl], addr)
	a.mn.UsedBytes -= cl
	if a.mn.UsedBytes < 0 {
		panic("memnode: double free (used bytes went negative)")
	}
}

// FreeBlocks reports how many blocks are parked on local free lists.
func (a *Alloc) FreeBlocks() int {
	n := 0
	for _, lst := range a.free {
		n += len(lst)
	}
	return n
}
