package bench

import (
	"fmt"
	"io"

	"ditto/internal/baselines"
	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// MissPenalty is the simulated distributed-storage fetch on a miss
// (§5.4: 500 µs).
const MissPenalty = 500 * sim.Microsecond

// objClassBytes is the heap footprint of one ~256 B object (block-granular).
const objClassBytes = 320

// dittoTraceCluster builds a Ditto cluster whose capacity is capObjs
// objects of the trace's size class.
func dittoTraceCluster(env *sim.Env, capObjs int, experts ...string) *core.Cluster {
	opts := core.DefaultOptions(capObjs, capObjs*objClassBytes)
	if len(experts) > 0 {
		opts.Experts = experts
	}
	return core.NewCluster(env, opts)
}

// runDittoTrace replays a trace against a fresh Ditto cluster.
func runDittoTrace(trace []workload.Req, capObjs, clients int, penalty int64, experts ...string) Result {
	env := sim.NewEnv(21)
	cl := dittoTraceCluster(env, capObjs, experts...)
	return RunTrace(env, DittoFactory(cl), trace, clients, 2, penalty)
}

// runCMTrace replays a trace against a fresh CliqueMap cluster.
func runCMTrace(algo baselines.CMAlgo, trace []workload.Req, capObjs, clients int, penalty int64) Result {
	env := sim.NewEnv(22)
	c := baselines.NewCMCluster(env, algo, capObjs, capObjs*objClassBytes, baselines.CMFabric())
	factory := func(p *sim.Proc) CacheOps { return cmOps{c.NewCMClient(p)} }
	return RunTrace(env, factory, trace, clients, 2, penalty)
}

// realWorldTraces builds the five stand-in workloads of Table 2 used in
// Figures 16 and 17.
func realWorldTraces(scale Scale) map[string][]workload.Req {
	n := scale.pick(40000, 400000)
	fp := scale.pick(4000, 40000)
	return map[string][]workload.Req{
		"webmail":           workload.Webmail(n, fp, 101).Build(),
		"twitter-transient": workload.TwitterTransient(n, fp, 102).Build(),
		"twitter-storage":   workload.TwitterStorage(n, fp, 103).Build(),
		"twitter-compute":   workload.TwitterCompute(n, fp, 104).Build(),
		"ibm":               workload.IBMLike(n, fp, 105).Build(),
	}
}

var realWorldOrder = []string{"webmail", "twitter-transient", "twitter-storage", "twitter-compute", "ibm"}

// Fig16 reproduces Figure 16: penalized throughput (500 µs miss penalty)
// of CM-LRU, CM-LFU, Ditto-LRU, Ditto-LFU and adaptive Ditto on the five
// real-world stand-ins.
func Fig16(w io.Writer, scale Scale) error {
	return realWorldMatrix(w, scale, "Figure 16: penalized throughput (Mops)", MissPenalty,
		func(r Result) float64 { return r.Mops() })
}

// Fig17 reproduces Figure 17: hit rates on the same matrix.
func Fig17(w io.Writer, scale Scale) error {
	return realWorldMatrix(w, scale, "Figure 17: hit rates", MissPenalty,
		func(r Result) float64 { return r.HitRate() })
}

func realWorldMatrix(w io.Writer, scale Scale, title string, penalty int64,
	metric func(Result) float64) error {

	header(w, title)
	clients := scale.pick(8, 64)
	traces := realWorldTraces(scale)
	row(w, "workload", "CM-LRU", "CM-LFU", "Ditto-LRU", "Ditto-LFU", "Ditto")
	for _, name := range realWorldOrder {
		trace := traces[name]
		capObjs := workload.Footprint(trace) / 10
		cmLRU := runCMTrace(baselines.CMLRU, trace, capObjs, clients, penalty)
		cmLFU := runCMTrace(baselines.CMLFU, trace, capObjs, clients, penalty)
		dLRU := runDittoTrace(trace, capObjs, clients, penalty, "LRU")
		dLFU := runDittoTrace(trace, capObjs, clients, penalty, "LFU")
		d := runDittoTrace(trace, capObjs, clients, penalty, "LRU", "LFU")
		row(w, name, metric(cmLRU), metric(cmLFU), metric(dLRU), metric(dLFU), metric(d))
	}
	return nil
}

// Fig18 reproduces Figure 18: box plot of hit rates of Ditto,
// max(Ditto-LRU, Ditto-LFU) and min(Ditto-LRU, Ditto-LFU) over the trace
// suite, normalized to random eviction.
func Fig18(w io.Writer, scale Scale) error {
	header(w, "Figure 18: relative hit rate over the workload suite (vs random eviction)")
	nSpecs := scale.pick(10, 33)
	n := scale.pick(30000, 150000)
	fp := scale.pick(3000, 15000)
	clients := scale.pick(4, 16)
	specs := workload.Suite(nSpecs, n, fp)

	var dittoRel, maxRel, minRel []float64
	for _, spec := range specs {
		trace := spec.Build()
		capObjs := spec.Footprint / 10
		rnd := runDittoTrace(trace, capObjs, clients, 0, "RANDOM").HitRate()
		if rnd <= 0 {
			continue
		}
		lru := runDittoTrace(trace, capObjs, clients, 0, "LRU").HitRate()
		lfu := runDittoTrace(trace, capObjs, clients, 0, "LFU").HitRate()
		d := runDittoTrace(trace, capObjs, clients, 0, "LRU", "LFU").HitRate()
		hi, lo := lru, lfu
		if lfu > lru {
			hi, lo = lfu, lru
		}
		dittoRel = append(dittoRel, d/rnd)
		maxRel = append(maxRel, hi/rnd)
		minRel = append(minRel, lo/rnd)
	}
	row(w, "series", "min", "q1", "median", "q3", "max")
	for _, s := range []struct {
		name string
		v    []float64
	}{{"Ditto", dittoRel}, {"max(LRU,LFU)", maxRel}, {"min(LRU,LFU)", minRel}} {
		b := stats.BoxStats(s.v)
		row(w, s.name, b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	return nil
}

// Fig19 reproduces Figure 19: the four-phase changing workload. Only
// adaptive Ditto tracks the alternating LRU-/LFU-friendly regimes.
func Fig19(w io.Writer, scale Scale) error {
	header(w, "Figure 19: changing workload (4 phases, LRU↔LFU friendly)")
	perPhase := scale.pick(15000, 100000)
	fp := scale.pick(4000, 20000)
	clients := scale.pick(8, 64)
	trace := workload.Changing(perPhase, fp, 77).Build()
	capObjs := fp / 10

	row(w, "system", "pen.tput(Mops)", "hit rate")
	for _, cfg := range []struct {
		name    string
		experts []string
	}{
		{"Ditto-LRU", []string{"LRU"}},
		{"Ditto-LFU", []string{"LFU"}},
		{"Ditto", []string{"LRU", "LFU"}},
	} {
		r := runDittoTrace(trace, capObjs, clients, MissPenalty, cfg.experts...)
		row(w, cfg.name, r.Mops(), r.HitRate())
	}
	for _, cm := range []baselines.CMAlgo{baselines.CMLRU, baselines.CMLFU} {
		r := runCMTrace(cm, trace, capObjs, clients, MissPenalty)
		row(w, cm.String(), r.Mops(), r.HitRate())
	}
	return nil
}

// Fig20 reproduces Figure 20: hit rates (relative to Ditto-LRU) as the
// proportion of clients running the LRU-friendly application varies.
func Fig20(w io.Writer, scale Scale) error {
	header(w, "Figure 20: hit rate vs proportion of LRU-app clients (relative to Ditto-LRU)")
	n := scale.pick(30000, 200000)
	fp := scale.pick(4000, 20000)
	total := 8
	lruTrace := workload.LRUFriendly(n, fp, 201).Build()
	lfuTrace := workload.LFUFriendly(n, fp, 202).Build()
	capObjs := fp / 10

	// Clients are assigned directly to their application (nLRU clients run
	// the LRU-friendly app, the rest the LFU-friendly one) and share one
	// cache — the shared-cache setting of §5.4.2.
	runSplit := func(nLRU int, experts ...string) float64 {
		env := sim.NewEnv(33)
		cl := dittoTraceCluster(env, capObjs, experts...)
		var hits, total64 int64
		runApp := func(trace []workload.Req, nClients int, measure *bool) {
			if nClients == 0 {
				return
			}
			for _, sh := range workload.Shard(trace, nClients) {
				mine := sh
				env.Go("client", func(p *sim.Proc) {
					c := cl.NewClient(p)
					for _, r := range mine {
						key := workload.KeyBytes(r.Key)
						if _, ok := c.Get(key); ok {
							if *measure {
								hits++
								total64++
							}
						} else {
							c.Set(key, valueFor(r))
							if *measure {
								total64++
							}
						}
					}
				})
			}
		}
		measure := false
		for loop := 0; loop < 2; loop++ {
			if loop == 1 {
				measure = true
			}
			runApp(lruTrace, nLRU, &measure)
			runApp(lfuTrace, total-nLRU, &measure)
			env.Run()
		}
		if total64 == 0 {
			return 0
		}
		return float64(hits) / float64(total64)
	}

	row(w, "lru-portion", "Ditto-LRU", "Ditto-LFU", "Ditto")
	for nLRU := 0; nLRU <= total; nLRU += 2 {
		base := runSplit(nLRU, "LRU")
		lfu := runSplit(nLRU, "LFU")
		d := runSplit(nLRU, "LRU", "LFU")
		if base <= 0 {
			base = 1e-9
		}
		row(w, fmt.Sprintf("%.2f", float64(nLRU)/float64(total)), 1.0, lfu/base, d/base)
	}
	return nil
}

// Fig21 reproduces Figure 21: hit rates while the number of concurrent
// clients grows mid-run; adaptive Ditto follows the shifting access
// pattern of the webmail-like workload.
func Fig21(w io.Writer, scale Scale) error {
	header(w, "Figure 21: hit rate under dynamically growing client counts")
	n := scale.pick(60000, 300000)
	fp := scale.pick(4000, 20000)
	trace := workload.Webmail(n, fp, 211).Build()
	// Sized near the workload's LRU/LFU crossover (Figure 4), where the
	// diurnal phase alternation actually flips the best algorithm.
	capObjs := fp * 35 / 100
	phases := []int{4, 8, 16} // concurrent clients per phase

	runStaged := func(experts ...string) float64 {
		env := sim.NewEnv(31)
		cl := dittoTraceCluster(env, capObjs, experts...)
		chunk := len(trace) / len(phases)
		var hits, total int64
		for pi, k := range phases {
			part := trace[pi*chunk : (pi+1)*chunk]
			shards := workload.Shard(part, k)
			for _, sh := range shards {
				mine := sh
				env.Go("client", func(p *sim.Proc) {
					c := cl.NewClient(p)
					for _, r := range mine {
						key := workload.KeyBytes(r.Key)
						if _, ok := c.Get(key); ok {
							if pi > 0 { // first phase warms the cache
								hits++
								total++
							}
						} else {
							c.Set(key, valueFor(r))
							if pi > 0 {
								total++
							}
						}
					}
				})
			}
			env.Run()
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}

	base := runStaged("LRU")
	lfu := runStaged("LFU")
	d := runStaged("LRU", "LFU")
	if base <= 0 {
		base = 1e-9
	}
	row(w, "system", "hit rate", "rel. to Ditto-LRU")
	row(w, "Ditto-LRU", base, 1.0)
	row(w, "Ditto-LFU", lfu, lfu/base)
	row(w, "Ditto", d, d/base)
	return nil
}

// Fig22 reproduces Figure 22: hit rate while cache memory grows mid-run
// (10% → 40% of the footprint), with no migration.
func Fig22(w io.Writer, scale Scale) error {
	header(w, "Figure 22: hit rate under dynamically growing cache size")
	n := scale.pick(60000, 300000)
	fp := scale.pick(4000, 20000)
	clients := scale.pick(8, 64)
	trace := workload.Webmail(n, fp, 221).Build()

	runGrowing := func(experts ...string) float64 {
		env := sim.NewEnv(32)
		startObjs := fp / 10
		opts := core.DefaultOptions(fp/2, startObjs*objClassBytes)
		opts.MaxCacheBytes = 6 * startObjs * objClassBytes
		opts.Experts = experts
		cl := core.NewCluster(env, opts)
		chunks := 3
		chunk := len(trace) / chunks
		var hits, total int64
		for pi := 0; pi < chunks; pi++ {
			if pi > 0 {
				// Grow 10% → 30% → 50% of the footprint: the growth crosses
				// the workload's LRU/LFU crossover point (Figure 4).
				cl.GrowCache(2 * startObjs * objClassBytes)
			}
			part := trace[pi*chunk : (pi+1)*chunk]
			for _, sh := range workload.Shard(part, clients) {
				mine := sh
				env.Go("client", func(p *sim.Proc) {
					c := cl.NewClient(p)
					for _, r := range mine {
						key := workload.KeyBytes(r.Key)
						if _, ok := c.Get(key); ok {
							if pi > 0 {
								hits++
								total++
							}
						} else {
							c.Set(key, valueFor(r))
							if pi > 0 {
								total++
							}
						}
					}
				})
			}
			env.Run()
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}

	row(w, "system", "hit rate")
	row(w, "Ditto-LRU", runGrowing("LRU"))
	row(w, "Ditto-LFU", runGrowing("LFU"))
	row(w, "Ditto", runGrowing("LRU", "LFU"))
	return nil
}
