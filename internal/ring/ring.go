// Package ring implements the consistent-hash ring that routes keys to
// memory nodes in a multi-MN Ditto deployment.
//
// The paper's multi-MN compatibility note (§5.1) hash-partitions the key
// space across memory nodes. A fixed modulo would reshuffle almost every
// key when the node count changes; the ring instead places each node at
// VirtualPoints pseudo-random points on a 64-bit circle and assigns a key
// to the first node point at or after the key's point. Adding a node then
// reassigns only the keys that land on the new node's arcs (~1/n of the
// key space), and removing a node reassigns only the removed node's keys
// — exactly the property live resharding needs so a scale-out migrates
// the minimum amount of cached data.
//
// Two unrelated notions of "replica" meet in this package, so the names
// keep them apart explicitly:
//
//   - VIRTUAL POINTS (VirtualPoints, DefaultVirtualPoints) are the
//     pseudo-random positions each node occupies on the circle — a load-
//     balancing device only. No data is stored per point.
//   - DATA REPLICAS are the additional memory nodes a hot key's value is
//     copied to by the replication layer (internal/core's hot-key
//     replication). OwnersN enumerates them: the R distinct ring-successor
//     nodes of a key, starting with its primary owner.
//
// Rings are immutable: With and Without return new rings, so a reshard
// can hold the old and new ring side by side and serve the forwarding
// window from both.
package ring

import (
	"slices"
	"sort"
)

// DefaultVirtualPoints is the number of virtual points per node. 128
// points keep the per-node load within roughly ±10% of even (relative
// imbalance shrinks with 1/sqrt(points)).
const DefaultVirtualPoints = 128

// point is one virtual node position on the circle.
type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over integer node IDs. All
// methods are read-only and safe to call concurrently; With and Without
// never modify the receiver, so a pointer to a Ring may be republished
// (e.g. swapped during a reshard) without invalidating concurrent
// lookups against the old value.
type Ring struct {
	points  []point // sorted by (hash, node)
	nodes   []int   // sorted member IDs
	perNode int     // virtual points per node
}

// New builds a ring with the given virtual-point count per node
// (DefaultVirtualPoints when points <= 0) and initial members. The
// point count is fixed for the ring's lifetime and inherited by every
// ring derived from it with With/Without.
func New(points int, nodes ...int) *Ring {
	if points <= 0 {
		points = DefaultVirtualPoints
	}
	r := &Ring{perNode: points}
	for _, n := range nodes {
		r = r.With(n)
	}
	return r
}

// VirtualPoints returns the virtual-point count per node — the circle-
// placement granularity, NOT the data-replication factor (that is the
// caller's R in OwnersN; see the package comment).
func (r *Ring) VirtualPoints() int { return r.perNode }

// Nodes returns the member IDs in ascending order. The caller must not
// modify the returned slice (it aliases the ring's internal state).
func (r *Ring) Nodes() []int { return r.nodes }

// NumNodes returns the member count.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// Has reports whether node is a member.
func (r *Ring) Has(node int) bool {
	i := sort.SearchInts(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// With returns a new ring that additionally contains node; the receiver
// is unchanged (rings are immutable). Adding an existing member returns
// the receiver itself. Key assignments under the new ring differ from
// the receiver's only for keys that now map to the added node.
func (r *Ring) With(node int) *Ring {
	if r.Has(node) {
		return r
	}
	nr := &Ring{
		perNode: r.perNode,
		points:  make([]point, 0, len(r.points)+r.perNode),
		nodes:   make([]int, 0, len(r.nodes)+1),
	}
	nr.nodes = append(nr.nodes, r.nodes...)
	nr.nodes = append(nr.nodes, node)
	sort.Ints(nr.nodes)
	nr.points = append(nr.points, r.points...)
	for rep := 0; rep < r.perNode; rep++ {
		nr.points = append(nr.points, point{hash: pointHash(node, rep), node: node})
	}
	sort.Slice(nr.points, func(i, j int) bool {
		if nr.points[i].hash != nr.points[j].hash {
			return nr.points[i].hash < nr.points[j].hash
		}
		return nr.points[i].node < nr.points[j].node
	})
	return nr
}

// Without returns a new ring that no longer contains node; the receiver
// is unchanged (rings are immutable). Removing a non-member returns the
// receiver itself. Key assignments under the new ring differ from the
// receiver's only for keys the removed node owned.
func (r *Ring) Without(node int) *Ring {
	if !r.Has(node) {
		return r
	}
	nr := &Ring{
		perNode: r.perNode,
		points:  make([]point, 0, len(r.points)-r.perNode),
		nodes:   make([]int, 0, len(r.nodes)-1),
	}
	for _, n := range r.nodes {
		if n != node {
			nr.nodes = append(nr.nodes, n)
		}
	}
	for _, pt := range r.points {
		if pt.node != node {
			nr.points = append(nr.points, pt)
		}
	}
	return nr
}

// Owner returns the node owning the given key point (see Point): the
// node of the first virtual point at or after keyPoint on the circle.
// Owner(k) == OwnersN(k, 1)[0] for every key. It panics on an empty
// ring.
func (r *Ring) Owner(keyPoint uint64) int {
	if len(r.points) == 0 {
		panic("ring: Owner on empty ring")
	}
	return r.points[r.search(keyPoint)].node
}

// OwnersN returns the first n DISTINCT nodes encountered walking the
// circle clockwise from keyPoint — the key's primary owner followed by
// its ring-successor nodes, the node set the hot-key replication layer
// materializes data replicas on. Invariants:
//
//   - The result has min(n, NumNodes) distinct members; OwnersN(k, 1)
//     is exactly [Owner(k)].
//   - Prefix-stable in n: OwnersN(k, n) is a prefix of OwnersN(k, n+1).
//   - Minimal change across membership: for r2 = r.With(x), deleting x
//     (if present) from r2.OwnersN(k, n) leaves a prefix of
//     r.OwnersN(k, n) — existing successors never reorder, the new node
//     only splices in; symmetrically for Without.
//
// It panics on an empty ring.
func (r *Ring) OwnersN(keyPoint uint64, n int) []int {
	if len(r.points) == 0 {
		panic("ring: OwnersN on empty ring")
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	owners := make([]int, 0, n)
	start := r.search(keyPoint)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !slices.Contains(owners, node) {
			owners = append(owners, node)
		}
	}
	return owners
}

// search returns the index of the first virtual point at or after
// keyPoint, wrapping to 0 past the top of the circle.
func (r *Ring) search(keyPoint uint64) int {
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= keyPoint
	})
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return i
}

// Point maps a key hash onto the circle. The table's FNV hash is too
// regular in its high bits for short keys, so it is remixed with the
// splitmix64 finalizer before placement; this also decorrelates ring
// position from the hash-table bucket choice within a node.
func Point(keyHash uint64) uint64 { return mix(keyHash) }

// pointHash positions virtual point rep of a node on the circle.
func pointHash(node, rep int) uint64 {
	return mix(uint64(node)<<32 | uint64(uint32(rep)) ^ 0xD1B54A32D192ED03)
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
