package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ditto/internal/hashtable"
	"ditto/internal/sim"
)

// findSlot locates the live slot holding k (test helper; assumes no
// fingerprint collision in the small test tables).
func findSlot(t *testing.T, c *Client, k []byte) hashtable.Slot {
	t.Helper()
	kh := hashtable.KeyHash(k)
	fp := hashtable.Fingerprint(kh)
	for _, b := range [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)} {
		for _, s := range c.ht.ReadBucket(b) {
			if !s.Atomic.IsEmpty() && !s.Atomic.IsHistory() && s.Atomic.FP() == fp {
				return s
			}
		}
	}
	t.Fatalf("slot for %q not found", k)
	return hashtable.Slot{}
}

func TestMGetAllHitUsesTwoDoorbells(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		keys := make([][]byte, 64)
		for i := range keys {
			keys[i] = key(i)
			c.Set(keys[i], value(i))
		}
		before := cl.MN.Node.Stats
		vals, oks := c.MGet(keys)
		after := cl.MN.Node.Stats
		for i := range keys {
			if !oks[i] || !bytes.Equal(vals[i], value(i)) {
				t.Fatalf("key %d: ok=%v", i, oks[i])
			}
		}
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 2 {
			t.Errorf("all-hit MGet used %d doorbell batches, want 2", d)
		}
		if c.Stats.Hits != int64(len(keys)) || c.Stats.Misses != 0 {
			t.Errorf("stats = %+v", c.Stats)
		}

		// An all-miss batch needs only the bucket doorbell.
		before = cl.MN.Node.Stats
		_, oks = c.MGet([][]byte{[]byte("nope-1"), []byte("nope-2")})
		after = cl.MN.Node.Stats
		if oks[0] || oks[1] {
			t.Error("phantom hit")
		}
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 1 {
			t.Errorf("all-miss MGet used %d doorbell batches, want 1", d)
		}
	})
	env.Run()
}

// runBatchOrSeq drives one client through a deterministic mixed workload,
// either with MSet/MGet/MDelete batches or with per-key Set/Get/Delete,
// and returns every Get and Delete observation in order.
func runBatchOrSeq(t *testing.T, batched bool) []string {
	env := sim.NewEnv(7)
	cl := newTestCluster(env, 4000) // oversized: no evictions, so runs compare exactly
	var out []string
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 40; round++ {
			pairs := make([]KV, 8)
			for j := range pairs {
				k := rng.Intn(300)
				pairs[j] = KV{Key: key(k), Value: value(k + round)}
			}
			gets := make([][]byte, 16)
			for j := range gets {
				gets[j] = key(rng.Intn(400)) // beyond 300: guaranteed misses
			}
			dels := make([][]byte, 6)
			for j := range dels {
				dels[j] = key(rng.Intn(350))
			}
			if batched {
				c.MSet(pairs)
				vs, oks := c.MGet(gets)
				for j := range gets {
					if oks[j] {
						out = append(out, string(vs[j]))
					} else {
						out = append(out, "MISS")
					}
				}
				for _, ok := range c.MDelete(dels) {
					out = append(out, fmt.Sprintf("DEL=%v", ok))
				}
			} else {
				for _, kv := range pairs {
					c.Set(kv.Key, kv.Value)
				}
				for _, g := range gets {
					if v, ok := c.Get(g); ok {
						out = append(out, string(v))
					} else {
						out = append(out, "MISS")
					}
				}
				for _, d := range dels {
					out = append(out, fmt.Sprintf("DEL=%v", c.Delete(d)))
				}
			}
		}
		if c.Stats.Hits+c.Stats.Misses != 40*16 {
			t.Errorf("gets accounted = %d, want %d", c.Stats.Hits+c.Stats.Misses, 40*16)
		}
		if c.Stats.Deletes != 40*6 {
			t.Errorf("deletes accounted = %d, want %d", c.Stats.Deletes, 40*6)
		}
	})
	env.Run()
	return out
}

// TestMGetMSetMatchSequential pins observable equivalence: the batched
// pipelines (MGet, MSet, MDelete) must return exactly what per-key
// Get/Set/Delete return on the same deterministic operation sequence.
func TestMGetMSetMatchSequential(t *testing.T) {
	batched := runBatchOrSeq(t, true)
	serial := runBatchOrSeq(t, false)
	if len(batched) != len(serial) {
		t.Fatalf("op counts differ: %d vs %d", len(batched), len(serial))
	}
	for i := range batched {
		if batched[i] != serial[i] {
			t.Fatalf("op %d: batched=%q serial=%q", i, batched[i], serial[i])
		}
	}
}

// TestMDeleteDoorbellBudget pins the batched delete pipeline's shape: an
// all-present batch costs three doorbells (bucket READs, object READs,
// delete CASes), an all-absent batch only the bucket doorbell, and the
// flags match what sequential Deletes would report.
func TestMDeleteDoorbellBudget(t *testing.T) {
	env := sim.NewEnv(8)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		keys := make([][]byte, 32)
		for i := range keys {
			keys[i] = key(i)
			c.Set(keys[i], value(i))
		}
		before := cl.MN.Node.Stats
		oks := c.MDelete(keys)
		after := cl.MN.Node.Stats
		for i, ok := range oks {
			if !ok {
				t.Errorf("key %d not reported deleted", i)
			}
		}
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 3 {
			t.Errorf("all-present MDelete used %d doorbell batches, want 3", d)
		}
		if cl.MN.UsedBytes != 0 {
			t.Errorf("leak: %d bytes after MDelete of everything", cl.MN.UsedBytes)
		}
		before = cl.MN.Node.Stats
		oks = c.MDelete(keys) // second time: nothing left
		after = cl.MN.Node.Stats
		for i, ok := range oks {
			if ok {
				t.Errorf("key %d deleted twice", i)
			}
		}
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 1 {
			t.Errorf("all-absent MDelete used %d doorbell batches, want 1", d)
		}
		if c.Stats.Deletes != 64 {
			t.Errorf("deletes = %d, want 64", c.Stats.Deletes)
		}
	})
	env.Run()
}

func TestMSetDuplicateKeysLastWriteWins(t *testing.T) {
	env := sim.NewEnv(2)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.MSet([]KV{
			{Key: key(1), Value: value(10)},
			{Key: key(1), Value: value(20)},
			{Key: key(1), Value: value(30)},
		})
		v, ok := c.Get(key(1))
		if !ok || !bytes.Equal(v, value(30)) {
			t.Fatalf("duplicate-key MSet: ok=%v", ok)
		}
	})
	env.Run()
}

// TestNoteHitReadsPendingDeltaBeforeAdd is the regression test for the
// frequency double count: the logical frequency reported to experts on a
// hit must be remote snapshot + buffered delta + 1, with the pending
// delta read BEFORE the current hit is buffered. The buggy ordering
// (fc.Add first) folded the current hit into the pending delta and
// yielded snapshot + delta + 2 for every buffered hit.
func TestNoteHitReadsPendingDeltaBeforeAdd(t *testing.T) {
	env := sim.NewEnv(1)
	opts := DefaultOptions(1000, 1000*320)
	opts.FCThreshold = 1000 // keep every delta buffered during the test
	cl := NewCluster(env, opts)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		k := key(1)
		c.Set(k, value(1)) // slot freq initialized to 1
		const hits = 10
		for i := 0; i < hits; i++ {
			if _, ok := c.Get(k); !ok {
				t.Fatal("unexpected miss")
			}
		}
		s := findSlot(t, c, k)
		if s.Freq != 1 {
			t.Fatalf("remote freq flushed prematurely: %d", s.Freq)
		}
		if d := c.fc.PendingDelta(s.Addr); d != hits {
			t.Fatalf("pending delta = %d, want %d", d, hits)
		}
		// The (hits+1)-th access: logical frequency must be
		// snapshot(1) + buffered(hits) + this access(1).
		if got, want := c.noteHit(s, len(k)), uint64(1+hits+1); got != want {
			t.Errorf("noteHit = %d, want %d (double-counted buffered hit?)", got, want)
		}
		if d := c.fc.PendingDelta(s.Addr); d != hits+1 {
			t.Errorf("pending delta after noteHit = %d, want %d", d, hits+1)
		}
		// Flushing reconciles the remote counter with every access seen.
		c.fc.FlushAll()
		s = findSlot(t, c, k)
		if want := uint64(1 + hits + 1); s.Freq != want {
			t.Errorf("flushed remote freq = %d, want %d", s.Freq, want)
		}
	})
	env.Run()
}
