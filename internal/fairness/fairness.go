// Package fairness implements the cache-sharing extension discussed in
// §4.4 of the paper: because Ditto clients and applications cooperate on
// the same compute nodes, a selfish application could free-ride on objects
// other tenants cached. The paper points to FairRide's *expected delaying*
// (Pu et al., NSDI'16): serve a hit on another tenant's object only after
// a delay equivalent to the expected cost of a miss, removing the
// incentive to free-ride while still sharing the data.
//
// The wrapper tags each cached object with the inserting tenant and
// applies the expected delay (probabilistically, per FairRide's blocking
// probability) when a different tenant hits it. The tag is a one-byte
// value prefix — visible to every sharer, which is what expected delaying
// needs — while New also binds the wrapped client to the same tenant ID
// in the core tenancy layer (tenancy.go), so the bytes a fairness tenant
// caches are charged against its quota when the cluster runs in tenant
// mode.
package fairness

import "ditto/internal/core"

// ownerHeader is the tenant tag stored ahead of each value.
const ownerHeader = 1

// Client wraps a Ditto client with tenant tagging and expected delaying.
type Client struct {
	inner  *core.Client
	tenant byte
	// MissCost is the expected cost of a miss (virtual ns); the delay
	// applied to cross-tenant hits.
	MissCost int64
	// BlockProb is the probability a cross-tenant hit is delayed
	// (FairRide's expected delaying uses the sharing probability; 1.0
	// always delays).
	BlockProb float64

	// CrossHits counts hits on other tenants' objects; Delayed counts how
	// many of them were delayed.
	CrossHits, Delayed int64

	// scratch is the retained Set staging buffer (tag + value); the core
	// layer copies the value into its own pooled plan buffer before Set
	// returns, so reuse across calls is safe and the steady-state Set
	// path allocates nothing.
	scratch []byte
}

// New wraps inner for the given tenant id. missCost is the virtual-time
// delay equivalent to fetching from backing storage (the paper's 500 µs).
// The wrapped client is also bound to the same tenant in the core
// tenancy layer when the ID fits (quota accounting shares the namespace).
func New(inner *core.Client, tenant byte, missCost int64) *Client {
	if int(tenant) < core.MaxTenants {
		inner.BindTenant(core.TenantID(tenant))
	}
	return &Client{inner: inner, tenant: tenant, MissCost: missCost, BlockProb: 1}
}

// Inner exposes the wrapped client (stats, weights).
func (c *Client) Inner() *core.Client { return c.inner }

// Set stores a value tagged with the calling tenant.
func (c *Client) Set(key, value []byte) {
	c.scratch = append(append(c.scratch[:0], c.tenant), value...)
	c.inner.Set(key, c.scratch)
}

// Get fetches a value; hits on objects inserted by another tenant are
// served after the expected miss delay, so caching-as-a-free-rider buys
// nothing. The returned value is a fresh copy; use GetAppend to reuse a
// buffer.
func (c *Client) Get(key []byte) ([]byte, bool) { return c.GetAppend(nil, key) }

// GetAppend is Get appending the value to dst and returning the extended
// slice — the allocation-free form for callers that reuse a buffer
// across operations. The owner tag is read and stripped in place, so the
// steady-state path costs one in-buffer shift and no allocation.
func (c *Client) GetAppend(dst, key []byte) ([]byte, bool) {
	base := len(dst)
	raw, ok := c.inner.GetAppend(dst, key)
	if !ok || len(raw)-base < ownerHeader {
		return raw[:base], false
	}
	owner := raw[base]
	copy(raw[base:], raw[base+ownerHeader:]) // strip the tag in place
	raw = raw[:len(raw)-ownerHeader]
	if owner != c.tenant {
		c.CrossHits++
		if c.BlockProb >= 1 || c.inner.Proc().Rand().Float64() < c.BlockProb {
			c.Delayed++
			c.inner.Proc().Sleep(c.MissCost)
		}
	}
	return raw, true
}

// Delete removes key (any tenant may invalidate; cache semantics).
func (c *Client) Delete(key []byte) bool { return c.inner.Delete(key) }

// Close flushes the wrapped client.
func (c *Client) Close() { c.inner.Close() }
