// Package baselines implements every comparison system in the paper's
// evaluation, from scratch, on the same simulated fabric as Ditto:
//
//   - KVS / KVC / KVC-S — the motivation study of Figure 2: a plain
//     RACE-style key-value store on DM, the same store with a
//     lock-protected remote LRU list, and a sharded variant with back-off;
//   - Shard-LRU — the straightforward DM cache baseline of Figures 14
//     (KVC-S with 32 shards and 5 µs back-off, §5.1);
//   - CliqueMap (CM-LRU / CM-LFU) — the state-of-the-art RMA cache: READ
//     Gets, RPC Sets, periodic client→server access-information sync,
//     server-side exact caching structures;
//   - Redis-like — a sharded monolithic-server cache with resharding
//     migration, for the elasticity comparison (Figures 1, 13, 15).
package baselines

import (
	"bytes"
	"encoding/binary"

	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
)

// KVKind selects the Figure 2 variant.
type KVKind int

// The three systems compared in Figure 2.
const (
	// KVS is a plain key-value store: no caching structure at all.
	KVS KVKind = iota
	// KVC adds one global lock-protected LRU list updated on every access;
	// lock failures retry immediately (flooding the RNIC, as the paper
	// observes).
	KVC
	// KVCS shards the LRU list 32 ways and sleeps 5 µs on lock failure.
	KVCS
)

// String names the variant.
func (k KVKind) String() string { return [...]string{"KVS", "KVC", "KVC-S"}[k] }

// KVShards is the LRU-list shard count for KVC-S and Shard-LRU (§3.1, §5.1).
const KVShards = 32

// lock-region layout inside the memory node header is not available
// (header is 64 B), so the KV cluster reserves its lock words and list
// sentinels at the start of the heap via a dedicated region.

// listNode is the remote LRU list node layout: prev (8 B) | next (8 B).
const listNodeBytes = 16

// KVCluster is a Figure-2 cluster: a hash-table KV store on DM, optionally
// with remote LRU lists.
type KVCluster struct {
	Kind   KVKind
	MN     *memnode.MemNode
	Layout hashtable.Layout

	// lockAddr[i], headAddr[i]: lock word and head sentinel of list shard i.
	lockAddr []uint64
	headAddr []uint64
	shards   int

	// Backoff is the sleep after a failed lock CAS (0 for KVC).
	Backoff int64
}

// NewKVCluster builds the store sized for expectedObjects.
func NewKVCluster(env *sim.Env, kind KVKind, expectedObjects int, fabric rdma.Config) *KVCluster {
	slots := expectedObjects * 5 / 2
	cfg := hashtable.Config{Buckets: (slots + 7) / 8, SlotsPerBucket: 8}
	// The KV experiments (Figures 2/14) run with no misses, so memory is
	// not the subject: size generously — objects, per-object list nodes,
	// and one private segment per client (hundreds of clients).
	objBytes := expectedObjects*640 + 32<<20
	mn := memnode.New(env, memnode.Config{
		MemBytes: 64 + cfg.Bytes() + objBytes,
		Fabric:   fabric,
	})
	base := mn.PlaceTable(cfg.Bytes())
	c := &KVCluster{
		Kind:   kind,
		MN:     mn,
		Layout: hashtable.Layout{Config: cfg, Base: base},
	}
	switch kind {
	case KVS:
		return c
	case KVC:
		c.shards = 1
	case KVCS:
		c.shards = KVShards
		c.Backoff = 5 * sim.Microsecond
	}
	// Reserve lock words and list sentinels out of the heap via a bootstrap
	// allocation (server-side setup, no verbs charged).
	c.lockAddr = make([]uint64, c.shards)
	c.headAddr = make([]uint64, c.shards)
	setupProc(env, func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		al := memnode.NewAlloc(mn, ep)
		for i := 0; i < c.shards; i++ {
			lockBlk, ok := al.Alloc(8)
			if !ok {
				panic("baselines: no room for lock words")
			}
			headBlk, ok := al.Alloc(listNodeBytes)
			if !ok {
				panic("baselines: no room for sentinels")
			}
			c.lockAddr[i] = lockBlk
			c.headAddr[i] = headBlk
			// Sentinel initially points to itself.
			mn.Node.PutUint64At(headBlk, headBlk)
			mn.Node.PutUint64At(headBlk+8, headBlk)
		}
	})
	return c
}

// setupProc runs fn to completion inside env synchronously.
func setupProc(env *sim.Env, fn func(p *sim.Proc)) {
	env.Go("setup", fn)
	env.Run()
}

// KVClient is one client of the Figure-2 store.
type KVClient struct {
	c     *KVCluster
	p     *sim.Proc
	ep    *rdma.Endpoint
	ht    *hashtable.Handle
	alloc *memnode.Alloc

	// LockRetries counts failed lock CASes (the RNIC-flooding retries).
	LockRetries int64
}

// NewKVClient connects a client.
func (c *KVCluster) NewKVClient(p *sim.Proc) *KVClient {
	ep := rdma.NewEndpoint(c.MN.Node, p)
	return &KVClient{
		c:     c,
		p:     p,
		ep:    ep,
		ht:    hashtable.NewHandle(c.Layout, ep),
		alloc: memnode.NewAlloc(c.MN, ep),
	}
}

// Get reads a key (2 READs), then — for KVC/KVC-S — performs the remote
// LRU move-to-front under the shard lock.
func (cl *KVClient) Get(key []byte) ([]byte, bool) {
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	for _, b := range [2]int{cl.c.Layout.MainBucket(kh), cl.c.Layout.BackupBucket(kh)} {
		for _, s := range cl.ht.ReadBucket(b) {
			if s.Atomic.IsEmpty() || s.Atomic.FP() != fp {
				continue
			}
			obj := cl.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
			kl := int(binary.LittleEndian.Uint16(obj[0:]))
			vl := int(binary.LittleEndian.Uint32(obj[2:]))
			if 8+kl+vl > len(obj) || !bytes.Equal(obj[8:8+kl], key) {
				continue
			}
			if cl.c.Kind != KVS {
				cl.lruTouch(kh, s)
			}
			return append([]byte(nil), obj[8+kl:8+kl+vl]...), true
		}
	}
	return nil, false
}

// Set inserts or updates a key (READ + WRITE + CAS), plus LRU list insert
// for the caching variants.
func (cl *KVClient) Set(key, value []byte) {
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	size := 8 + len(key) + len(value)

	obj := make([]byte, size)
	binary.LittleEndian.PutUint16(obj[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(obj[2:], uint32(len(value)))
	copy(obj[8:], key)
	copy(obj[8+len(key):], value)

	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("baselines: KV Set cannot find a slot (both buckets full; size the table up)")
		}
		// Scan BOTH buckets for the key first (it may live in the backup
		// bucket), remembering the first empty slot for a fresh insert.
		var target *hashtable.Slot
		retry := false
		var existing *hashtable.Slot
		var bufs [2][]hashtable.Slot
		for bi, b := range [2]int{cl.c.Layout.MainBucket(kh), cl.c.Layout.BackupBucket(kh)} {
			bufs[bi] = cl.ht.ReadBucket(b)
			for i := range bufs[bi] {
				s := &bufs[bi][i]
				if s.Atomic.IsEmpty() {
					if target == nil {
						target = s
					}
					continue
				}
				if s.Atomic.FP() != fp || existing != nil {
					continue
				}
				old := cl.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
				kl := int(binary.LittleEndian.Uint16(old[0:]))
				if 8+kl <= len(old) && bytes.Equal(old[8:8+kl], key) {
					existing = s
				}
			}
		}
		if existing != nil {
			s := *existing
			addr, ok := cl.alloc.Alloc(size)
			if !ok {
				panic("baselines: KV store out of memory (size it for the workload)")
			}
			cl.ep.Write(addr, obj)
			want := hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(size), addr)
			if _, swapped := cl.ht.CASAtomic(s.Addr, s.Atomic, want); swapped {
				cl.alloc.Free(s.Atomic.Pointer(), s.Atomic.SizeBytes())
				if cl.c.Kind != KVS {
					cl.lruTouch(kh, s)
				}
				return
			}
			cl.alloc.Free(addr, size)
			retry = true // lost an update race; re-read
		}
		if retry {
			continue
		}
		if target == nil {
			continue // both buckets full of other keys: wait for churn
		}
		addr, ok := cl.alloc.Alloc(size)
		if !ok {
			panic("baselines: KV store out of memory (size it for the workload)")
		}
		cl.ep.Write(addr, obj)
		want := hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(size), addr)
		if _, swapped := cl.ht.CASAtomic(target.Addr, target.Atomic, want); swapped {
			if cl.c.Kind != KVS {
				cl.lruInsert(kh, target.Addr)
			}
			return
		}
		cl.alloc.Free(addr, size)
	}
}

// shardOf maps a key to its LRU list shard.
func (cl *KVClient) shardOf(kh uint64) int { return int(kh % uint64(cl.c.shards)) }

// lock spins on the shard lock with CAS; KVC retries immediately, KVC-S
// backs off 5 µs — exactly the §3.1 comparison.
func (cl *KVClient) lock(shard int) {
	for {
		if _, ok := cl.ep.CAS(cl.c.lockAddr[shard], 0, uint64(cl.p.ID())+1); ok {
			return
		}
		cl.LockRetries++
		if cl.c.Backoff > 0 {
			cl.p.Sleep(cl.c.Backoff)
		}
	}
}

func (cl *KVClient) unlock(shard int) {
	buf := make([]byte, 8)
	cl.ep.WriteAsync(cl.c.lockAddr[shard], buf)
}

// lruInsert allocates a list node for a new object, records its address
// in the slot's (otherwise unused) hash metadata field so every client can
// find it, and links it at the head of its shard's remote list.
func (cl *KVClient) lruInsert(kh uint64, slotAddr uint64) {
	node, ok := cl.alloc.Alloc(listNodeBytes)
	if !ok {
		panic("baselines: out of memory for list nodes")
	}
	cl.ht.WriteMetaOnInsert(slotAddr, node, 0, 0, 0)
	shard := cl.shardOf(kh)
	cl.lock(shard)
	cl.linkAtHead(shard, node)
	cl.unlock(shard)
}

// lruTouch moves the object's node to the front of its shard list — the
// per-access maintenance that makes remote caching structures expensive.
// The node address was read with the bucket (slot metadata).
func (cl *KVClient) lruTouch(kh uint64, s hashtable.Slot) {
	node := s.Hash
	if node == 0 {
		return // insert's metadata write not visible yet; skip one touch
	}
	shard := cl.shardOf(kh)
	cl.lock(shard)
	// Unlink: READ node, then patch neighbours.
	raw := cl.ep.Read(node, listNodeBytes)
	prev := binary.LittleEndian.Uint64(raw[0:])
	next := binary.LittleEndian.Uint64(raw[8:])
	if prev != 0 && next != 0 && prev != node {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, next)
		cl.ep.Write(prev+8, b) // prev.next = next
		binary.LittleEndian.PutUint64(b, prev)
		cl.ep.Write(next, b) // next.prev = prev
	}
	cl.linkAtHead(shard, node)
	cl.unlock(shard)
}

// linkAtHead links node directly after the shard sentinel (3 verbs).
func (cl *KVClient) linkAtHead(shard int, node uint64) {
	head := cl.c.headAddr[shard]
	raw := cl.ep.Read(head, listNodeBytes) // sentinel: .next = first
	first := binary.LittleEndian.Uint64(raw[8:])
	nb := make([]byte, listNodeBytes)
	binary.LittleEndian.PutUint64(nb[0:], head)
	binary.LittleEndian.PutUint64(nb[8:], first)
	cl.ep.Write(node, nb) // node.prev = head, node.next = first
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, node)
	cl.ep.Write(head+8, b) // head.next = node
	cl.ep.Write(first, b)  // first.prev = node
}

// NewShardLRU builds the Shard-LRU baseline of §5.1: clients maintain 32
// lock-protected LRU lists in the memory pool with one-sided verbs and
// back off 5 µs on lock failures. It is the KVC-S construction reused at
// evaluation scale.
func NewShardLRU(env *sim.Env, expectedObjects int, fabric rdma.Config) *KVCluster {
	return NewKVCluster(env, KVCS, expectedObjects, fabric)
}
