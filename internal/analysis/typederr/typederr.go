// Package typederr keeps crash paths typed: no new panic( in
// internal/core or internal/rdma on paths a fault schedule can reach.
//
// PR 6 migrated the crash paths to typed errors: a fail-stopped node
// surfaces rdma.NodeUnreachableError, a headless ring owner surfaces
// core.NoOwnerError, retry exhaustion wraps core.ErrNoProgress, and the
// crash-tolerant entry points (TrySet) return them while chaos
// harnesses route them through core.IsUnavailable. A bare
// panic("something broke") on any of those paths regresses the
// migration: the chaos suite sees a crash instead of a typed,
// assertable failure, and a production caller loses the retry signal.
//
// The analyzer flags every panic call in the two packages except the
// two structural idioms the convention itself is built from:
//
//   - raising a typed error value: panic(&SomethingError{...}) — how
//     the transport and routing layers surface crash-time failures to
//     catchUnavailable/CatchUnreachable above them;
//   - re-raising inside a recover handler: a function (or deferred
//     closure) that calls recover() may re-panic what it chose not to
//     catch.
//
// Everything else needs an explicit annotation:
//
//	//dittolint:allow typederr (config validation: ...)
//
// reserved for constructor/option validation and API-misuse guards that
// no fault schedule can reach — a misconfigured experiment should still
// fail fast and loudly.
package typederr

import (
	"go/ast"
	"strings"

	"ditto/internal/analysis"
)

// swept packages: the fault-path layers, plus the tenant-path wrapper
// (fairness sits on every multi-tenant op and must raise typed errors
// like the layers beneath it).
var swept = map[string]bool{
	"ditto/internal/core":     true,
	"ditto/internal/rdma":     true,
	"ditto/internal/fairness": true,
}

// Analyzer is the typederr pass.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "no bare panics on fault-reachable paths in core/rdma; raise " +
		"typed error values or return them (PR 6 typed-error migration)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !swept[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc walks one function, tracking whether the innermost
// enclosing function literal (or the declaration itself) calls
// recover().
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var panics []*ast.CallExpr
	recovers := callsRecover(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body) // its own recover scope
			return false
		case *ast.CallExpr:
			if analysis.IsBuiltin(pass.Info, n, "panic") {
				panics = append(panics, n)
			}
		}
		return true
	})
	if recovers {
		return // a recover handler may re-raise what it declined to catch
	}
	for _, call := range panics {
		if len(call.Args) == 1 && isTypedErrorRaise(call.Args[0]) {
			continue
		}
		pass.Reportf(call.Pos(),
			"bare panic on a potentially fault-reachable path; raise a typed error value (&FooError{...}, or wrap ErrNoProgress) per the PR 6 convention, or annotate config validation with //dittolint:allow typederr (reason)")
	}
}

// callsRecover reports whether body calls recover() outside nested
// function literals.
func callsRecover(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if analysis.IsBuiltin(pass.Info, n, "recover") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTypedErrorRaise reports whether the panic argument is a typed error
// value by construction: a (pointer to a) composite literal of a type
// whose name ends in "Error", or a call to errors.New/fmt.Errorf
// (which produce error values — used by raise-style helpers that wrap
// sentinel errors).
func isTypedErrorRaise(arg ast.Expr) bool {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.UnaryExpr:
		if lit, ok := arg.X.(*ast.CompositeLit); ok {
			return isErrorTypeName(lit.Type)
		}
	case *ast.CompositeLit:
		return isErrorTypeName(arg.Type)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(arg.Fun).(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok {
				if (pkg.Name == "fmt" && sel.Sel.Name == "Errorf") ||
					(pkg.Name == "errors" && sel.Sel.Name == "New") {
					return true
				}
			}
		}
	}
	return false
}

func isErrorTypeName(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return strings.HasSuffix(t.Name, "Error")
	case *ast.SelectorExpr:
		return strings.HasSuffix(t.Sel.Name, "Error")
	}
	return false
}
