package bench

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(w io.Writer, scale Scale) error

// Experiments maps experiment IDs (as accepted by dittobench -fig / -table)
// to their runners.
var Experiments = map[string]Runner{
	"1":      Fig01,
	"2":      Fig02,
	"3":      Fig03,
	"4":      Fig04,
	"5":      Fig05,
	"13":     Fig13,
	"14":     Fig14,
	"15":     Fig15,
	"16":     Fig16,
	"17":     Fig17,
	"18":     Fig18,
	"19":     Fig19,
	"20":     Fig20,
	"21":     Fig21,
	"22":     Fig22,
	"23":     Fig23,
	"24":     Fig24,
	"25":     Fig25,
	"table3": Table3,
	// Design-choice ablation sweeps (DESIGN.md §5) — not paper figures.
	"abl-k":     SweepSampleK,
	"abl-fct":   SweepFCThreshold,
	"abl-batch": SweepBatchSize,
	"abl-hist":  SweepHistorySize,
	"abl-mn":    SweepMultiMN,
}

// IDs returns the experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := len(ids[i]), len(ids[j])
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Run executes one experiment by ID.
func Run(id string, w io.Writer, scale Scale) error {
	r, ok := Experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(w, scale)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, scale Scale) error {
	for _, id := range IDs() {
		if err := Run(id, w, scale); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
