package core

import (
	"errors"
	"fmt"

	"ditto/internal/rdma"
)

// Typed failures surfaced by the crash-tolerant MultiClient entry points
// (TrySet; Get/MGet degrade to misses on their own). The legacy
// panicking paths now panic with these same values, so a caller that
// recovers still sees a typed error rather than a bare string.

// ErrNoProgress reports an operation that exhausted its retry budget —
// a misconfigured table, or sustained interference from failures.
var ErrNoProgress = errors.New("core: operation could not make progress")

// NoOwnerError reports a key routed to a ring owner with no backing
// node. The ring and the membership switch atomically, so outside a
// crash window this means a corrupted deployment.
type NoOwnerError struct {
	Node int // the ring owner that has no backing node
}

// Error implements error.
func (e *NoOwnerError) Error() string {
	return fmt.Sprintf("core: key's ring owner %d has no backing node", e.Node)
}

// ErrOverQuota reports a tenant exceeding its byte quota — the quota
// half of every shed decision (see ShedError).
var ErrOverQuota = errors.New("core: tenant over its byte quota")

// ErrShed reports a request rejected up front by overload control: the
// memory node's write-stall rate crossed the configured threshold, so
// batched writes from over-quota tenants are refused without issuing
// verbs. Retry after backoff, or when back under quota.
var ErrShed = errors.New("core: request shed under overload")

// ShedError is the typed failure TryMSet returns when overload control
// rejects a batch. It wraps BOTH sentinels — errors.Is(err, ErrShed)
// and errors.Is(err, ErrOverQuota) hold — because a shed is always the
// conjunction of the two conditions.
type ShedError struct {
	Tenant TenantID
	Usage  int64 // tenant's live bytes at the shed decision
	Quota  int64 // tenant's configured quota
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("core: tenant %d shed under overload (%d B live > %d B quota)",
		e.Tenant, e.Usage, e.Quota)
}

// Unwrap exposes both sentinel causes to errors.Is.
func (e *ShedError) Unwrap() []error { return []error{ErrShed, ErrOverQuota} }

// IsUnavailable reports whether err stems from an unusable node: a
// fail-stopped memory node (rdma.NodeUnreachableError) or a ring owner
// with no backing node (NoOwnerError). Chaos harnesses and retry loops
// treat both as "the pool is reconfiguring; retry after recovery".
func IsUnavailable(err error) bool {
	var no *NoOwnerError
	return rdma.IsUnreachable(err) || errors.As(err, &no)
}

// raise re-raises a typed failure at a legacy panicking API boundary
// (Set, MSet, Delete, MDelete): by the time raise runs, the error has
// been caught, every registration and lock released, and the value
// typed — the panic is those entry points' documented crash-unsafe
// contract, and catchUnavailable recovers it losslessly.
func raise(err error) {
	if err != nil {
		//dittolint:allow typederr (re-raising an already-typed, already-cleaned-up error at the legacy panicking API boundary)
		panic(err)
	}
}

// catchUnavailable runs fn, converting node-unreachable verb panics AND
// typed core errors raised as panics back into an error return.
func catchUnavailable(fn func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *rdma.NodeUnreachableError:
			err = v
		case *NoOwnerError:
			err = v
		case error:
			if errors.Is(v, ErrNoProgress) {
				err = v
				return
			}
			panic(r)
		default:
			panic(r)
		}
	}()
	fn()
	return nil
}
