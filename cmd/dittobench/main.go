// Command dittobench regenerates the tables and figures of the Ditto
// paper's evaluation (SOSP 2023) on the simulated disaggregated-memory
// substrate.
//
// Usage:
//
//	dittobench -list
//	dittobench -fig 14                 # one figure, quick scale
//	dittobench -fig 14 -scale full     # paper-relative scale
//	dittobench -table 3
//	dittobench -all [-scale full]
//
// Output is plain text: the same rows/series each figure plots. See
// EXPERIMENTS.md for measured-vs-paper comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ditto/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure number to regenerate (e.g. 14)")
		table    = flag.String("table", "", "table number to regenerate (e.g. 3)")
		scenario = flag.String("scenario", "", "named scenario to run by ID (e.g. chaos, churn, hotspot; see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs")
		scaleFl  = flag.String("scale", "quick", "experiment scale: quick | full")
		jsonFl   = flag.String("json", "", "also write a machine-readable summary to this path (scenarios that support it)")
		seedFl   = flag.Int64("seed", 0, "override every scenario's built-in simulation seed (0 = per-scenario defaults); pins bench-smoke artifacts across CI reruns")
		cpuProf  = flag.String("cpuprofile", "", "write a host CPU profile of the run to this path (pprof format)")
		memProf  = flag.String("memprofile", "", "write a host heap-allocation profile (alloc_space/alloc_objects) to this path at exit")
	)
	flag.Parse()
	bench.JSONPath = *jsonFl
	bench.Seed = *seedFl

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The heap profile is written on the way out so it covers the whole
		// run; alloc_space/alloc_objects are cumulative, so a GC beforehand
		// only trims the inuse view, not the allocation totals the alloc
		// gate inspects.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	scale, err := bench.ParseScale(*scaleFl)
	if err != nil {
		fatal(err)
	}

	switch {
	case *list:
		for _, id := range bench.IDs() {
			fmt.Printf("%-16s %s\n", id, bench.Describe(id))
		}
	case *all:
		if err := bench.RunAll(os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *fig != "":
		if err := bench.Run(*fig, os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *scenario != "":
		if err := bench.Run(*scenario, os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *table != "":
		if err := bench.Run("table"+*table, os.Stdout, scale); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dittobench:", err)
	os.Exit(1)
}
