// Package stats provides the measurement plumbing of the benchmark
// harness: latency histograms with percentile extraction, throughput
// timelines for the elasticity experiments, CDFs and box-plot summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed latency histogram (1 ns .. ~1 s range,
// ~2% resolution). It records virtual-time durations.
type Histogram struct {
	buckets [1280]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// bucketOf maps a duration to a bucket: 64 buckets per octave.
func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	lg := math.Log2(float64(v))
	b := int(lg * 64)
	if b >= len(Histogram{}.buckets) {
		b = len(Histogram{}.buckets) - 1
	}
	return b
}

// valueOf returns the representative value of a bucket (upper edge).
func valueOf(b int) int64 {
	return int64(math.Exp2(float64(b+1) / 64))
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the sample count.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean sample.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the q-th percentile (q in [0,100]).
func (h *Histogram) Percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q / 100 * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var acc int64
	for b, n := range h.buckets {
		acc += n
		if acc > target {
			v := valueOf(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if other.count > 0 {
		if h.count == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
}

// Timeline accumulates completed operations into fixed-width virtual-time
// windows, for throughput-over-time plots (Figure 1/13).
type Timeline struct {
	window int64
	counts []int64
}

// NewTimeline creates a timeline with the given window width (ns).
func NewTimeline(window int64) *Timeline {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &Timeline{window: window}
}

// Record counts one completion at virtual time t.
func (t *Timeline) Record(at int64) {
	idx := int(at / t.window)
	for len(t.counts) <= idx {
		t.counts = append(t.counts, 0)
	}
	t.counts[idx]++
}

// Series returns (time-in-windows, ops-per-second) points.
func (t *Timeline) Series() (times []float64, opsPerSec []float64) {
	secPerWindow := float64(t.window) / 1e9
	for i, n := range t.counts {
		times = append(times, float64(i)*secPerWindow)
		opsPerSec = append(opsPerSec, float64(n)/secPerWindow)
	}
	return times, opsPerSec
}

// Windows returns the raw per-window counts.
func (t *Timeline) Windows() []int64 { return t.counts }

// CDF computes the empirical CDF of values; Points returns (value,
// cumulative fraction) pairs at each distinct value.
func CDF(values []float64) (xs, ys []float64) {
	if len(values) == 0 {
		return nil, nil
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			ys[len(ys)-1] = float64(i+1) / float64(len(s))
			continue
		}
		xs = append(xs, v)
		ys = append(ys, float64(i+1)/float64(len(s)))
	}
	return xs, ys
}

// Box summarizes a sample for box plots.
type Box struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// BoxStats computes a five-number summary.
func BoxStats(values []float64) Box {
	if len(values) == 0 {
		return Box{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(s) {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	return Box{
		Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1],
		Mean: mean / float64(len(s)), N: len(s),
	}
}

// String renders the box compactly.
func (b Box) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// Mops converts (ops, elapsed virtual ns) to millions of ops per second.
func Mops(ops int64, elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsedNs) / 1e9) / 1e6
}

// Imbalance summarizes how unevenly load is spread over servers: the
// busiest server's share divided by the mean share. 1.0 is perfectly
// even; N (the server count) is total concentration on one server. It
// returns 0 for an empty or all-zero input. The hotspot bench reports it
// over per-MN served-read counts, before and after hot-key replication.
func Imbalance(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}
