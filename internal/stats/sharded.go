package stats

// Sharded counters: hot counters that many clients tick are split into
// per-client cells and aggregated only on read, so the fast path touches
// one owned cache line instead of a shared word. Within the simulator
// exactly one process runs at a time (see internal/sim), so cells need
// no atomics; the padding documents — and preserves, for any future
// real-parallel harness — the paper's one-client-per-core model, where a
// shared counter word would bounce between cores on every operation.

// CounterCell is one shard of a ShardedCounter, owned by a single
// client. It is padded so adjacent cells never share a cache line.
type CounterCell struct {
	n int64
	_ [56]byte // pad to a 64-byte cache line
}

// Inc adds one to the owning client's shard.
func (c *CounterCell) Inc() { c.n++ }

// Add folds delta into the owning client's shard.
func (c *CounterCell) Add(delta int64) { c.n += delta }

// ShardedCounter is a counter sharded into per-client cells. NewCell
// registers a shard (one per client, at client construction); Sum
// aggregates all shards on read. The zero value is ready to use.
type ShardedCounter struct {
	cells []*CounterCell
}

// NewCell registers and returns a new shard. Call once per client, off
// the hot path.
func (s *ShardedCounter) NewCell() *CounterCell {
	c := &CounterCell{}
	s.cells = append(s.cells, c)
	return c
}

// Sum aggregates every shard. Read-side only; the cost is linear in the
// number of registered clients.
func (s *ShardedCounter) Sum() int64 {
	var t int64
	for _, c := range s.cells {
		t += c.n
	}
	return t
}
