// Fixture for the hotalloc analyzer, plan side: loaded by RunFixture
// under the import path ditto/internal/core, so methods on types whose
// name ends in "Plan" are swept. Lines carrying no annotation are the
// sanctioned zero-alloc patterns the real plans use.

package core

type verb struct {
	addr uint64
	data []byte
}

type fakePlan struct {
	c     int
	verbs []verb
	bufs  [][]byte
	done  func()
}

// Step shows the sanctioned idiom — value struct literals appended
// into the plan's retained slice allocate nothing — next to every
// flagged form.
func (pl *fakePlan) Step(eager bool) []verb {
	pl.verbs = append(pl.verbs[:0], verb{addr: 8}) // value literal into retained slice: no finding

	scratch := make([]byte, 40)                    // want `make in hot function Step allocates per call`
	pl.verbs = append(pl.verbs, verb{data: scratch})

	return []verb{{addr: 16}} // want `\[\]core\.verb literal in hot function Step allocates per call`
}

func (pl *fakePlan) Absorb(res []int) {
	pl.done = func() { pl.c++ } // want `function literal in hot function Absorb allocates its closure per call`

	p := &fakePlan{} // want `&core\.fakePlan literal in hot function Absorb heap-allocates per call`
	_ = p

	seen := map[uint64]bool{} // want `map\[uint64\]bool literal in hot function Absorb allocates per call`
	_ = seen

	q := new(fakePlan) // want `new in hot function Absorb allocates per call`
	_ = q
}

func (pl *fakePlan) reset(c int) {
	pl.c = c
	pl.verbs = pl.verbs[:0] // retained-scratch reset: no finding
	// Cold ablation branch, deliberately allocating — the escape hatch.
	if c < 0 {
		//dittolint:allow hotalloc (cold ablation branch: runs only under a disabled-by-default flag)
		pl.bufs = append(pl.bufs, make([]byte, 40))
	}
}

// newFakePlan is a constructor, not a plan method by receiver — the
// allocate-on-construction form stays legal (pool misses call it).
func newFakePlan() *fakePlan {
	return &fakePlan{verbs: make([]verb, 0, 4)} // constructor: no finding
}

// fakeSpecGetPlan mirrors the speculative-Get plan: Step sizes the
// retained READ buffer through a free grow helper and appends its ONE
// hinted READ into the retained verbs slice; Absorb validates the image
// in place. The flagged forms are the regressions that would silently
// re-allocate the hinted fast path (the one allocs_test pins at 0).
type fakeSpecGetPlan struct {
	key   []byte
	buf   []byte
	verbs []verb
	ok    bool
}

func (pl *fakeSpecGetPlan) Step(eager bool) []verb {
	pl.buf = growFixture(pl.buf, 64)                             // free grow helper: no finding
	pl.verbs = append(pl.verbs[:0], verb{addr: 4, data: pl.buf}) // one hinted READ: no finding
	return pl.verbs
}

func (pl *fakeSpecGetPlan) Absorb(res []int) {
	pl.ok = len(res) == 1 && len(pl.buf) >= len(pl.key) // in-place validation: no finding

	keyCopy := []byte{0} // want `\[\]byte literal in hot function Absorb allocates per call`
	_ = keyCopy

	onStale := func() { pl.ok = false } // want `function literal in hot function Absorb allocates its closure per call`
	_ = onStale
}

// growFixture is the free-function grow idiom: allocation lives outside
// the swept plan methods, exactly like core's real grow helper.
func growFixture(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n) // free helper, not a plan method: no finding
	}
	return b[:n]
}

type helper struct{}

// run is a method on a non-Plan receiver: not swept.
func (helper) run() []byte {
	return make([]byte, 8) // non-Plan receiver: no finding
}
