// Fixture for the typederr analyzer: loaded by RunFixture under the
// import path ditto/internal/core, one of the two swept fault-path
// packages.

package core

import (
	"errors"
	"fmt"
)

type fixtureError struct {
	code int
}

func (e *fixtureError) Error() string { return fmt.Sprintf("fixture: %d", e.code) }

var errStalled = errors.New("fixture: stalled")

func barePanic(x int) {
	if x < 0 {
		panic("negative input") // want `bare panic on a potentially fault-reachable path`
	}
}

func bareValuePanic(x int) {
	if x < 0 {
		panic(x) // want `bare panic on a potentially fault-reachable path`
	}
}

func typedRaise(x int) {
	if x < 0 {
		panic(&fixtureError{code: x}) // typed error value: the sanctioned raise idiom
	}
}

func sentinelRaise(x int) {
	if x < 0 {
		panic(fmt.Errorf("%w: x=%d", errStalled, x)) // wrapped sentinel: sanctioned
	}
}

func rethrow(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r) // re-raise inside a recover scope: sanctioned
		}
	}()
	fn()
	return nil
}

func annotated(ok bool) {
	if !ok {
		//dittolint:allow typederr (config validation: fixture guard unreachable by fault schedules)
		panic("fixture misconfigured")
	}
}
