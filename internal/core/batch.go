package core

// Doorbell-batched multi-key operations. Real cache front ends fetch and
// store keys in batches, and Ditto's verb budget (§4.1) makes each key
// cheap — but a round trip per key still serializes on the network RTT.
// MGet, MSet and MDelete run the SAME verb plans as Get, Set and Delete
// (plan.go), only under the exec.Doorbell strategy: each pipeline stage
// across the batch is posted with ONE RNIC doorbell, so the verbs'
// completions overlap and a whole stage costs its RNIC service time plus
// a single RTT.
//
//	MGet:    1 doorbell (all bucket READs) + 1 doorbell (all object READs)
//	MSet:    up to 4 doorbells (bucket READs, candidate object READs,
//	         object WRITEs, publishing CASes)
//	MDelete: up to 3 doorbells (bucket READs, object READs, delete CASes)
//
// Races are resolved exactly as in the serial paths: a key whose snapshot
// went stale, whose publishing CAS lost, or whose buckets were full
// re-runs the same plan through the serial drivers' bounded retry loops,
// so batched and serial operations are observably equivalent.

// KV is one key/value pair of an MSet batch.
type KV struct {
	Key, Value []byte
}

// ------------------------------------------------------------------ MGet ----

// MGet fetches a batch of keys. An all-hit batch costs exactly two
// doorbell batches — every bucket READ, then every object READ — instead
// of two round trips per key; per-key hit handling (stats, frequency,
// last_ts, expert extensions) is identical to Get's. With a location
// cache enabled, hinted keys run specGetPlans instead: their speculative
// object READs join the unhinted keys' bucket READs in the SAME first
// doorbell, so an all-hinted all-valid batch costs exactly ONE doorbell.
func (c *Client) MGet(keys [][]byte) ([][]byte, []bool) { return c.mget(keys, false) }

// mget implements MGet; probe=true silences misses (no counters, no
// regrets, no observer report), the batched counterpart of getProbe —
// MultiClient's forwarding window probes with it.
func (c *Client) mget(keys [][]byte, probe bool) ([][]byte, []bool) {
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	start := c.p.Now()
	// Pooled plans and run scratch. Under doorbell dedup one plan's READ
	// result can alias another plan's buffer, so every plan stays
	// acquired until the whole batch's outputs are consumed (pool.go
	// rule 1); the serial fallbacks below draw from the same free lists
	// but never touch plans still held here. specIdx/getIdx map each
	// in-flight plan back to its key index.
	plans := c.getPlans[:0]
	specs := c.specPlans[:0]
	specIdx := c.specIdx[:0]
	getIdx := c.getIdx[:0]
	run := c.runOps[:0]
	for i := range keys {
		if c.loc != nil {
			if h, ok := c.loc.Lookup(keys[i]); ok {
				sp := c.acquireSpecGetPlan(keys[i], h)
				specs = append(specs, sp)
				specIdx = append(specIdx, i)
				run = append(run, sp)
				continue
			}
		}
		pl := c.acquireGetPlan(keys[i])
		plans = append(plans, pl)
		getIdx = append(getIdx, i)
		run = append(run, pl)
	}
	c.getPlans, c.specPlans, c.runOps = plans, specs, run
	c.specIdx, c.getIdx = specIdx, getIdx
	c.runner.Doorbell.Run(run)

	for j, sp := range specs {
		if !sp.ok {
			continue
		}
		i := specIdx[j]
		c.Stats.SpecGetHits++
		c.touchOnSpecHit(sp)
		c.Stats.Gets++
		c.Stats.Hits++
		c.served.Inc()
		vals[i] = append([]byte(nil), sp.dec.value...)
		oks[i] = true
		c.report(OpGet, start, true)
	}
	for j, pl := range plans {
		if !pl.hit {
			continue
		}
		i := getIdx[j]
		freq := c.touchOnHit(pl.slot, pl.dec, len(keys[i]))
		c.noteLocation(keys[i], pl.slot, pl.dec, freq)
		c.Stats.Gets++
		c.Stats.Hits++
		c.served.Inc()
		vals[i] = append([]byte(nil), pl.dec.value...)
		oks[i] = true
		c.report(OpGet, start, true)
	}
	for j, sp := range specs {
		if sp.ok {
			continue
		}
		// The speculative image failed validation: drop the hint and re-run
		// the key through the serial driver's ordinary bucket walk, which
		// applies the exact hit/miss/probe semantics (and re-records a
		// fresh hint on a hit).
		i := specIdx[j]
		c.Stats.SpecGetFallbacks++
		c.loc.Drop(keys[i])
		vals[i], oks[i] = c.get(keys[i], probe, nil)
	}
	for j, pl := range plans {
		if pl.hit {
			continue
		}
		i := getIdx[j]
		if pl.stale {
			// Rare: the snapshot raced a concurrent update. Re-run the key
			// through the serial driver, which retries bounded re-reads
			// exactly as a lone Get would.
			vals[i], oks[i] = c.get(keys[i], probe, nil)
			continue
		}
		if probe {
			continue
		}
		c.Stats.Gets++
		c.Stats.Misses++
		c.served.Inc()
		if c.adapt != nil {
			c.collectRegrets(pl.histMatches)
			if c.cl.opts.DisableLWH {
				c.probeConventionalIndex()
			}
		}
		c.report(OpGet, start, false)
	}
	for _, pl := range plans {
		c.releaseGetPlan(pl)
	}
	for _, sp := range specs {
		c.releaseSpecGetPlan(sp)
	}
	return vals, oks
}

// ------------------------------------------------------------------ MSet ----

// MSet stores a batch of key/value pairs with up to four doorbell batches
// (bucket READs, candidate object READs, object WRITEs, publishing
// CASes). Each pair runs the same setPlan one Set attempt would —
// update-in-place when the key's current copy is found, else an insert
// into the first reclaimable slot, preferring the main bucket — and any
// pair whose CAS loses a race or whose buckets are full falls back to the
// serial Set retry loop, so batched and serial stores behave identically
// under contention.
func (c *Client) MSet(pairs []KV) {
	if len(pairs) == 0 {
		return
	}
	start := c.p.Now()
	// Same over-budget drain budget a sequence of len(pairs) Sets would
	// have, so batched writes shrink an over-budget heap at the same rate
	// as sequential ones — and, like them, as multi-victim doorbell
	// rounds when the deficit spans more than one block.
	c.drainOverBudget(shrinkEvictBatch * len(pairs))
	plans := c.setPlans[:0]
	run := c.runOps[:0]
	for i := range pairs {
		pl := c.acquireSetPlan(pairs[i].Key, pairs[i].Value)
		plans = append(plans, pl)
		run = append(run, pl)
	}
	c.setPlans, c.runOps = plans, run
	c.runner.Doorbell.Run(run)

	var fallback []int
	for i, pl := range plans {
		switch pl.outcome {
		case setDone:
			c.noteSetLocation(pl)
			c.Stats.Sets++
			c.report(OpSet, start, true)
		case setCASLost:
			// Lost the slot to a concurrent writer, an eviction, or an
			// earlier pair of this very batch: retry serially.
			c.Stats.SetRetries++
			fallback = append(fallback, i)
		case setNoFree:
			fallback = append(fallback, i)
		}
	}
	// Release before the serial retries: the fallbacks re-run their keys
	// with fresh plans and no batch output is read past this point.
	for _, pl := range plans {
		c.releaseSetPlan(pl)
	}
	for _, i := range fallback {
		c.Set(pairs[i].Key, pairs[i].Value) // counts its own Sets/retries
	}
}

// --------------------------------------------------------------- MDelete ----

// MDelete removes a batch of keys with up to three doorbell batches
// (bucket READs, object READs, delete CASes), running the same delPlan a
// serial Delete traverses. The returned flags report, per key, whether a
// copy was deleted — exactly what the corresponding sequence of Delete
// calls would have returned.
func (c *Client) MDelete(keys [][]byte) []bool {
	out := make([]bool, len(keys))
	if len(keys) == 0 {
		return out
	}
	plans := c.delPlans[:0]
	run := c.runOps[:0]
	for i := range keys {
		if c.loc != nil {
			c.loc.Drop(keys[i])
		}
		pl := c.acquireDelPlan(keys[i])
		plans = append(plans, pl)
		run = append(run, pl)
	}
	c.delPlans, c.runOps = plans, run
	c.runner.Doorbell.Run(run)
	for i, pl := range plans {
		c.Stats.Deletes++
		out[i] = pl.deleted
		c.releaseDelPlan(pl)
	}
	return out
}
