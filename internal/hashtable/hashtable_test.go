package hashtable

import (
	"testing"
	"testing/quick"

	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
)

func testTable(t *testing.T, buckets, slots int) (*sim.Env, *memnode.MemNode, Layout) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := Config{Buckets: buckets, SlotsPerBucket: slots}
	mn := memnode.New(env, memnode.Config{MemBytes: cfg.Bytes() + 1<<20, Fabric: rdma.DefaultConfig()})
	base := mn.PlaceTable(cfg.Bytes())
	return env, mn, Layout{Config: cfg, Base: base}
}

func TestAtomicFieldRoundTrip(t *testing.T) {
	a := EncodeAtomic(0xAB, 4, 0x123456789ABC)
	if a.FP() != 0xAB || a.SizeBlocks() != 4 || a.Pointer() != 0x123456789ABC {
		t.Fatalf("decode mismatch: fp=%x size=%d ptr=%x", a.FP(), a.SizeBlocks(), a.Pointer())
	}
	if a.IsEmpty() || a.IsHistory() {
		t.Fatal("flags wrong")
	}
}

func TestAtomicFieldSentinels(t *testing.T) {
	if !AtomicField(0).IsEmpty() {
		t.Fatal("zero field must be empty")
	}
	h := EncodeAtomic(0x12, SizeHistory, 42)
	if !h.IsHistory() || h.IsEmpty() {
		t.Fatal("history tagging broken")
	}
	if h.Pointer() != 42 {
		t.Fatal("history ID lost")
	}
}

func TestEncodeAtomicPointerOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 49-bit pointer")
		}
	}()
	EncodeAtomic(1, 1, 1<<48)
}

func TestSizeToBlocks(t *testing.T) {
	cases := map[int]byte{0: 1, 1: 1, 64: 1, 65: 2, 256: 4, 64 * 300: MaxBlocks}
	for in, want := range cases {
		if got := SizeToBlocks(in); got != want {
			t.Errorf("SizeToBlocks(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestKeyHashNonZeroAndStable(t *testing.T) {
	h1 := KeyHash([]byte("key-1"))
	h2 := KeyHash([]byte("key-1"))
	h3 := KeyHash([]byte("key-2"))
	if h1 == 0 || h1 != h2 || h1 == h3 {
		t.Fatalf("h1=%x h2=%x h3=%x", h1, h2, h3)
	}
	if Fingerprint(h1) == 0 {
		t.Fatal("fingerprint must never be zero")
	}
}

func TestBucketsInRange(t *testing.T) {
	l := Layout{Config: Config{Buckets: 97, SlotsPerBucket: 8}}
	f := func(hash uint64) bool {
		m, b := l.MainBucket(hash), l.BackupBucket(hash)
		return m >= 0 && m < 97 && b >= 0 && b < 97 && m != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCASInsertThenReadBucket(t *testing.T) {
	env, mn, lay := testTable(t, 16, 8)
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		key := []byte("object-7")
		kh := KeyHash(key)
		b := lay.MainBucket(kh)
		slots := h.ReadBucket(b)
		if len(slots) != 8 {
			t.Fatalf("bucket has %d slots", len(slots))
		}
		target := slots[0]
		want := EncodeAtomic(Fingerprint(kh), 4, 0x1000)
		if _, ok := h.CASAtomic(target.Addr, 0, want); !ok {
			t.Fatal("CAS into empty slot failed")
		}
		h.WriteMetaOnInsert(target.Addr, kh, 111, 222, 1)
		got := h.ReadBucket(b)[0]
		if got.Atomic != want {
			t.Fatalf("atomic = %x, want %x", got.Atomic, want)
		}
		if got.Hash != kh || got.InsertTs != 111 || got.LastTs != 222 || got.Freq != 1 {
			t.Fatalf("metadata mismatch: %+v", got)
		}
	})
	env.Run()
}

func TestConcurrentInsertOneWinner(t *testing.T) {
	env, mn, lay := testTable(t, 4, 8)
	slotAddr := lay.SlotAddr(0)
	wins := 0
	for i := 0; i < 6; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
			if _, ok := h.CASAtomic(slotAddr, 0, EncodeAtomic(byte(i+1), 1, uint64(i+1))); ok {
				wins++
			}
		})
	}
	env.Run()
	if wins != 1 {
		t.Fatalf("%d concurrent CAS inserts succeeded", wins)
	}
}

func TestTouchAndFAA(t *testing.T) {
	env, mn, lay := testTable(t, 4, 8)
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		addr := lay.SlotAddr(3)
		h.TouchLastTs(addr, 777)
		if prev := h.FAAFreq(addr, 1); prev != 0 {
			t.Fatalf("freq prev = %d", prev)
		}
		h.FAAFreqAsync(addr, 9)
		s := h.ReadSlot(addr)
		if s.LastTs != 777 || s.Freq != 10 {
			t.Fatalf("slot = %+v", s)
		}
	})
	env.Run()
}

func TestSampleSingleRead(t *testing.T) {
	env, mn, lay := testTable(t, 32, 8)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		h := NewHandle(lay, ep)
		before := mn.Node.Stats.Reads
		got := h.Sample(10, 5)
		if len(got) != 5 {
			t.Fatalf("sampled %d slots", len(got))
		}
		if mn.Node.Stats.Reads-before != 1 {
			t.Fatalf("sampling used %d READs, want 1", mn.Node.Stats.Reads-before)
		}
		for i, s := range got {
			if s.Addr != lay.SlotAddr(10+i) {
				t.Fatalf("slot %d at addr %d", i, s.Addr)
			}
		}
	})
	env.Run()
}

func TestSampleWrapsAround(t *testing.T) {
	env, mn, lay := testTable(t, 4, 4) // 16 slots total
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		got := h.Sample(14, 5) // 14,15,0,1,2
		if len(got) != 5 {
			t.Fatalf("sampled %d", len(got))
		}
		wantIdx := []int{14, 15, 0, 1, 2}
		for i, s := range got {
			if s.Addr != lay.SlotAddr(wantIdx[i]) {
				t.Fatalf("sample[%d] at %d, want slot %d", i, s.Addr, wantIdx[i])
			}
		}
	})
	env.Run()
}

func TestSampleKLargerThanTable(t *testing.T) {
	env, mn, lay := testTable(t, 2, 2)
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		if got := h.Sample(1, 100); len(got) != 4 {
			t.Fatalf("got %d slots, want clamped 4", len(got))
		}
	})
	env.Run()
}

func TestExpertBitmapInInsertTs(t *testing.T) {
	env, mn, lay := testTable(t, 4, 8)
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		addr := lay.SlotAddr(5)
		h.WriteExpertBitmap(addr, 0b101)
		if s := h.ReadSlot(addr); uint64(s.InsertTs) != 0b101 {
			t.Fatalf("bitmap = %b", s.InsertTs)
		}
	})
	env.Run()
}

func TestHistoryEntryTransition(t *testing.T) {
	// Simulates the eviction path: object slot → history entry → reclaimed
	// by a new insert.
	env, mn, lay := testTable(t, 4, 8)
	env.Go("c", func(p *sim.Proc) {
		h := NewHandle(lay, rdma.NewEndpoint(mn.Node, p))
		addr := lay.SlotAddr(0)
		kh := KeyHash([]byte("victim"))
		obj := EncodeAtomic(Fingerprint(kh), 4, 0x4000)
		if _, ok := h.CASAtomic(addr, 0, obj); !ok {
			t.Fatal("insert failed")
		}
		h.WriteMetaOnInsert(addr, kh, 5, 5, 1)

		hist := EncodeAtomic(Fingerprint(kh), SizeHistory, 12345)
		if _, ok := h.CASAtomic(addr, obj, hist); !ok {
			t.Fatal("history transition failed")
		}
		h.WriteExpertBitmap(addr, 0b11)

		s := h.ReadSlot(addr)
		if !s.Atomic.IsHistory() || s.Atomic.Pointer() != 12345 {
			t.Fatalf("history slot = %+v", s)
		}
		if s.Hash != kh {
			t.Fatal("hash of evicted key must survive into the history entry")
		}

		// A new insert reclaims the (expired) history slot via CAS.
		kh2 := KeyHash([]byte("newobj"))
		obj2 := EncodeAtomic(Fingerprint(kh2), 2, 0x8000)
		if _, ok := h.CASAtomic(addr, hist, obj2); !ok {
			t.Fatal("reclaim failed")
		}
		if s := h.ReadSlot(addr); s.Atomic != obj2 {
			t.Fatalf("slot after reclaim = %+v", s)
		}
	})
	env.Run()
}

// Property: encode/decode of arbitrary atomic fields round-trips.
func TestAtomicRoundTripProperty(t *testing.T) {
	f := func(fp, size byte, ptr uint64) bool {
		ptr &= PointerMask
		a := EncodeAtomic(fp, size, ptr)
		return a.FP() == fp && a.SizeBlocks() == size && a.Pointer() == ptr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSizeClassRoundTrip pins the single-size-view property: classifying
// a byte size and decoding the resulting slot size field must agree, and
// the class must cover the object with less than one block of slack.
func TestSizeClassRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw) // within MaxBlocks * BlockSize for BlockSize=64
		if size > MaxBlocks*memnode.BlockSize {
			size %= MaxBlocks * memnode.BlockSize
		}
		blocks := SizeToBlocks(size)
		class := SizeClassBytes(size)
		decoded := EncodeAtomic(1, blocks, 0).SizeBytes()
		if class != decoded {
			t.Logf("size %d: class %d != decoded %d", size, class, decoded)
			return false
		}
		if class < size {
			t.Logf("size %d: class %d does not cover object", size, class)
			return false
		}
		// size 0 legitimately occupies the one-block minimum; any larger
		// size must not waste a whole block (below the MaxBlocks clamp).
		if size > 0 && class-size >= memnode.BlockSize && blocks < MaxBlocks {
			t.Logf("size %d: class %d wastes a whole block", size, class)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBucketsMatchesReadBucket(t *testing.T) {
	env, mn, l := testTable(t, 16, 4)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		h := NewHandle(l, ep)
		for i := 0; i < 10; i++ {
			h.CASAtomic(l.SlotAddr(i*3), 0, EncodeAtomic(byte(i+1), 2, uint64(i*64)))
			h.WriteMetaOnInsert(l.SlotAddr(i*3), uint64(i+100), int64(i), int64(i*2), uint64(i*3))
		}
		want := make([][]Slot, 0, 5)
		bs := []int{0, 3, 7, 3, 15}
		for _, b := range bs {
			want = append(want, h.ReadBucket(b))
		}
		before := mn.Node.Stats
		got := h.ReadBuckets(bs)
		if d := mn.Node.Stats.DoorbellBatches - before.DoorbellBatches; d != 1 {
			t.Errorf("doorbell batches = %d, want 1", d)
		}
		if d := mn.Node.Stats.Reads - before.Reads; d != int64(len(bs)) {
			t.Errorf("reads = %d, want %d", d, len(bs))
		}
		for i := range bs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("bucket %d: %d slots", bs[i], len(got[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Errorf("bucket %d slot %d: got %+v want %+v", bs[i], j, got[i][j], want[i][j])
				}
			}
		}
	})
	env.Run()
}
