package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1..1000 µs
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-500500) > 1 {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 400000 || p50 > 600000 {
		t.Fatalf("p50 = %d", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 950000 || p99 > 1050000 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Percentile(100) != 1000000 {
		t.Fatalf("p100 = %d, want max", h.Percentile(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(1000)
		b.Record(100000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if p := a.Percentile(25); p > 2000 {
		t.Fatalf("p25 = %d", p)
	}
	if p := a.Percentile(75); p < 50000 {
		t.Fatalf("p75 = %d", p)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		h := &Histogram{}
		for _, v := range vals {
			h.Record(int64(v) + 1)
		}
		prev := int64(0)
		for q := 0.0; q <= 100; q += 5 {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(1e9) // 1-second windows
	for i := 0; i < 10; i++ {
		tl.Record(int64(i) * 5e8) // 2 per second
	}
	w := tl.Windows()
	if len(w) != 5 {
		t.Fatalf("%d windows", len(w))
	}
	for i, n := range w {
		if n != 2 {
			t.Fatalf("window %d = %d", i, n)
		}
	}
	times, ops := tl.Series()
	if times[1] != 1 || ops[1] != 2 {
		t.Fatalf("series: %v %v", times, ops)
	}
}

func TestCDF(t *testing.T) {
	xs, ys := CDF([]float64{3, 1, 2, 2})
	if len(xs) != 3 {
		t.Fatalf("xs = %v", xs)
	}
	if xs[0] != 1 || ys[0] != 0.25 {
		t.Fatalf("first point (%v, %v)", xs[0], ys[0])
	}
	if xs[1] != 2 || ys[1] != 0.75 {
		t.Fatalf("dup point (%v, %v)", xs[1], ys[1])
	}
	if ys[2] != 1 {
		t.Fatalf("last y = %v", ys[2])
	}
	if x, y := CDF(nil); x != nil || y != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v %v", b.Q1, b.Q3)
	}
	if b.Mean != 3 {
		t.Fatalf("mean = %v", b.Mean)
	}
	if s := b.String(); len(s) == 0 {
		t.Fatal("empty string")
	}
}

func TestMops(t *testing.T) {
	if m := Mops(13_200_000, 1e9); math.Abs(m-13.2) > 1e-9 {
		t.Fatalf("mops = %v", m)
	}
	if Mops(5, 0) != 0 {
		t.Fatal("zero elapsed not handled")
	}
}

func TestImbalance(t *testing.T) {
	if v := Imbalance([]int64{100, 100, 100, 100}); math.Abs(v-1) > 1e-9 {
		t.Fatalf("even load imbalance = %v, want 1", v)
	}
	if v := Imbalance([]int64{400, 0, 0, 0}); math.Abs(v-4) > 1e-9 {
		t.Fatalf("fully concentrated imbalance = %v, want 4", v)
	}
	if v := Imbalance([]int64{300, 100, 100, 100}); math.Abs(v-2) > 1e-9 {
		t.Fatalf("imbalance = %v, want 2", v)
	}
	if Imbalance(nil) != 0 || Imbalance([]int64{0, 0}) != 0 {
		t.Fatal("degenerate inputs not 0")
	}
}
