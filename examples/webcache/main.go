// Webcache: an HTTP front end backed by Ditto — the cloud-service shape
// the paper's introduction motivates (a look-aside cache between a web
// tier and slow distributed storage).
//
// Real HTTP requests (net/http) are served by a handler that consults a
// Ditto client running in the virtual-time fabric; misses fall through to
// a simulated 500 µs storage tier and populate the cache. Because the
// simulation is single-stepped, HTTP requests are funneled to the Ditto
// client through a request channel — one more illustration of driving the
// simulated cluster from outside.
//
//	go run ./examples/webcache        # serves on :8099, issues demo requests
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"ditto"
)

// request is one cache operation shipped into the simulation.
type request struct {
	key   string
	reply chan string
}

func main() {
	env := ditto.NewEnv(11)
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(10_000, 4<<20))

	reqs := make(chan request, 128)
	done := make(chan struct{})

	// The Ditto client lives inside the simulation and serves the channel.
	go func() {
		env.Go("cache-worker", func(p *ditto.Proc) {
			c := cluster.NewClient(p)
			for r := range reqs {
				if v, ok := c.Get([]byte(r.key)); ok {
					r.reply <- "HIT  " + string(v)
					continue
				}
				// Miss: fetch from the (simulated) storage tier.
				p.Sleep(500 * ditto.Microsecond)
				v := fmt.Sprintf("value-of(%s)", r.key)
				c.Set([]byte(r.key), []byte(v))
				r.reply <- "MISS " + v
			}
		})
		env.Run()
		close(done)
	}()

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing ?key=", http.StatusBadRequest)
			return
		}
		rep := make(chan string, 1)
		reqs <- request{key: key, reply: rep}
		fmt.Fprintln(w, <-rep)
	})

	srv := httptest.NewServer(handler)
	defer srv.Close()
	fmt.Println("webcache serving at", srv.URL)

	// Demo traffic: first access misses, repeats hit.
	for _, key := range []string{"alpha", "beta", "alpha", "alpha", "beta"} {
		resp, err := http.Get(srv.URL + "/?key=" + key)
		if err != nil {
			panic(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-6s -> %s", key, body)
		time.Sleep(10 * time.Millisecond)
	}

	close(reqs)
	<-done
	fmt.Println("done")
}
