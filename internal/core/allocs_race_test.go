//go:build race

package core

import "testing"

// The race detector instruments every allocation, inflating the counts
// the !race twin (allocs_test.go) asserts on — skip under -race.
func TestAllocsPerOpSteadyState(t *testing.T) {
	t.Skip("alloc counts are not meaningful under -race")
}

func TestAllocsPerOpSteadyStateSpecGet(t *testing.T) {
	t.Skip("alloc counts are not meaningful under -race")
}
