package memnode

import (
	"testing"
	"testing/quick"

	"ditto/internal/rdma"
	"ditto/internal/sim"
)

func newTestMN(env *sim.Env, memBytes int) *MemNode {
	return New(env, Config{MemBytes: memBytes, Fabric: rdma.DefaultConfig()})
}

func TestSizeClass(t *testing.T) {
	cases := map[int]int{0: 64, 1: 64, 64: 64, 65: 128, 128: 128, 300: 320, 321: 384}
	for in, want := range cases {
		if got := SizeClass(in); got != want {
			t.Errorf("SizeClass(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPlaceTableLayout(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	addr := mn.PlaceTable(1000)
	if addr != headerBytes {
		t.Fatalf("table addr = %d", addr)
	}
	if mn.heapAddr%BlockSize != 0 {
		t.Fatalf("heap addr %d not block aligned", mn.heapAddr)
	}
	if mn.heapAddr < addr+1000 {
		t.Fatal("heap overlaps table")
	}
}

func TestAllocCarvesAndReuses(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	mn.PlaceTable(256)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		a1, ok := a.Alloc(256)
		if !ok {
			t.Fatal("alloc failed")
		}
		a2, ok := a.Alloc(256)
		if !ok || a2 == a1 {
			t.Fatalf("second alloc %d ok=%v", a2, ok)
		}
		if mn.UsedBytes != 512 {
			t.Fatalf("allocated = %d", mn.UsedBytes)
		}
		a.Free(a1, 256)
		a3, ok := a.Alloc(200) // same 256B class: must reuse a1
		if !ok || a3 != a1 {
			t.Fatalf("free-list reuse failed: got %d want %d", a3, a1)
		}
	})
	env.Run()
}

func TestSegmentRPCIsInfrequent(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	mn.PlaceTable(256)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		for i := 0; i < 100; i++ {
			if _, ok := a.Alloc(256); !ok {
				t.Fatal("alloc failed")
			}
		}
	})
	env.Run()
	// 100 × 256B = 25.6 KB < one 64 KB segment ⇒ exactly 1 RPC.
	if mn.Node.Stats.RPCs != 1 {
		t.Fatalf("RPCs = %d, want 1 (two-level scheme broken)", mn.Node.Stats.RPCs)
	}
}

func TestAllocExhaustionAndRecovery(t *testing.T) {
	env := sim.NewEnv(1)
	mn := New(env, Config{MemBytes: 64 * 1024 * 3, SegmentSize: 64 * 1024, Fabric: rdma.DefaultConfig()})
	mn.PlaceTable(BlockSize) // leaves just under 3 segments of heap
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		var addrs []uint64
		for {
			addr, ok := a.Alloc(1024)
			if !ok {
				break
			}
			addrs = append(addrs, addr)
		}
		if len(addrs) == 0 {
			t.Fatal("no allocations succeeded")
		}
		// After freeing one block, allocation of the same class succeeds.
		a.Free(addrs[0], 1024)
		if _, ok := a.Alloc(1024); !ok {
			t.Fatal("alloc after free failed")
		}
		// Distinct addresses.
		seen := map[uint64]bool{}
		for _, ad := range addrs {
			if seen[ad] {
				t.Fatalf("duplicate address %d", ad)
			}
			seen[ad] = true
		}
	})
	env.Run()
}

func TestFreeSegmentReturnsToController(t *testing.T) {
	env := sim.NewEnv(1)
	mn := New(env, Config{MemBytes: 64*1024 + 4096, SegmentSize: 64 * 1024, Fabric: rdma.DefaultConfig()})
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		r1 := ep.RPC(OpAllocSeg, nil)
		if r1[0] != 1 {
			t.Fatal("first segment alloc failed")
		}
		if r2 := ep.RPC(OpAllocSeg, nil); r2[0] != 0 {
			t.Fatal("second segment alloc should fail")
		}
		ep.RPC(OpFreeSeg, r1[1:9])
		if r3 := ep.RPC(OpAllocSeg, nil); r3[0] != 1 {
			t.Fatal("alloc after segment free failed")
		}
	})
	env.Run()
}

func TestGrowAndLimitHeap(t *testing.T) {
	env := sim.NewEnv(1)
	mn := New(env, Config{MemBytes: 1 << 20, Fabric: rdma.DefaultConfig()})
	mn.SetHeapLimit(128 * 1024)
	if got := mn.HeapBytes(); got != 128*1024 {
		t.Fatalf("heap = %d", got)
	}
	mn.GrowHeap(64 * 1024)
	if got := mn.HeapBytes(); got != 192*1024 {
		t.Fatalf("heap after grow = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("grow beyond region did not panic")
		}
	}()
	mn.GrowHeap(1 << 30)
}

func TestDoubleFreePanics(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		addr, _ := a.Alloc(64)
		a.Free(addr, 64)
		defer func() {
			if recover() == nil {
				t.Error("double free did not panic")
			}
		}()
		a.Free(addr, 64)
	})
	env.Run()
}

// Property: alloc/free sequences never hand out overlapping live blocks.
func TestNoOverlapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv(3)
		ok := true
		mn := newTestMN(env, 1<<20)
		env.Go("c", func(p *sim.Proc) {
			ep := rdma.NewEndpoint(mn.Node, p)
			a := NewAlloc(mn, ep)
			type blk struct {
				addr uint64
				size int
			}
			var live []blk
			for _, op := range ops {
				size := int(op%7+1) * 64
				if op%3 == 0 && len(live) > 0 {
					b := live[len(live)-1]
					live = live[:len(live)-1]
					a.Free(b.addr, b.size)
					continue
				}
				addr, got := a.Alloc(size)
				if !got {
					continue
				}
				for _, b := range live {
					if addr < b.addr+uint64(SizeClass(b.size)) && b.addr < addr+uint64(SizeClass(size)) {
						ok = false
					}
				}
				live = append(live, blk{addr, size})
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSurrenderedBlocksRecycled(t *testing.T) {
	env := sim.NewEnv(3)
	mn := newTestMN(env, 1<<20)
	mn.PlaceTable(256)
	mn.SetHeapLimit(DefaultSegmentSize) // exactly one segment of heap
	env.Go("c", func(p *sim.Proc) {
		// Client 1 takes the whole segment, frees everything, and leaves.
		a1 := NewAlloc(mn, rdma.NewEndpoint(mn.Node, p))
		var blocks []uint64
		for {
			addr, ok := a1.Alloc(256)
			if !ok {
				break
			}
			blocks = append(blocks, addr)
		}
		if len(blocks) == 0 {
			t.Fatal("nothing allocated")
		}
		for _, addr := range blocks {
			a1.Free(addr, 256)
		}
		a1.Surrender()
		if a1.FreeBlocks() != 0 {
			t.Fatalf("%d blocks still parked locally after Surrender", a1.FreeBlocks())
		}

		// Client 2 has no segment and the controller has none left either:
		// without the surrendered pool this alloc would strand the heap.
		a2 := NewAlloc(mn, rdma.NewEndpoint(mn.Node, p))
		addr, ok := a2.Alloc(256)
		if !ok {
			t.Fatal("surrendered space not recycled to a new client")
		}
		found := false
		for _, b := range blocks {
			if b == addr {
				found = true
			}
		}
		if !found {
			t.Fatalf("recycled addr %d is not one of the surrendered blocks", addr)
		}
	})
	env.Run()
}

// TestFreeTrackingCatchesFirstBadFree: with tracking enabled, the very
// first double free panics with the offending address — even when other
// live allocations keep UsedBytes positive (which the net-accounting
// check alone would miss).
func TestFreeTrackingCatchesFirstBadFree(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	mn.EnableFreeTracking()
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		addr1, _ := a.Alloc(100)
		addr2, _ := a.Alloc(100)
		_ = addr2 // stays live: UsedBytes never goes negative below
		if mn.LiveTrackedBlocks() != 2 {
			t.Fatalf("live tracked = %d, want 2", mn.LiveTrackedBlocks())
		}
		a.Free(addr1, 100)
		defer func() {
			if recover() == nil {
				t.Error("double free with a live sibling did not panic")
			}
		}()
		a.Free(addr1, 100)
	})
	env.Run()
}

// TestFreeTrackingWrongClass: freeing a block with the wrong size class
// is caught (it would corrupt a real free list).
func TestFreeTrackingWrongClass(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	mn.EnableFreeTracking()
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		addr, _ := a.Alloc(100) // class 128
		defer func() {
			if recover() == nil {
				t.Error("wrong-class free did not panic")
			}
		}()
		a.Free(addr, 300) // class 320
	})
	env.Run()
}

// TestFreeTrackingReset: ResetFreeTracking forgets old incarnation
// addresses (a restarted node's heap starts over).
func TestFreeTrackingReset(t *testing.T) {
	env := sim.NewEnv(1)
	mn := newTestMN(env, 1<<20)
	mn.EnableFreeTracking()
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		a := NewAlloc(mn, ep)
		a.Alloc(64)
		mn.ResetFreeTracking()
		if mn.LiveTrackedBlocks() != 0 {
			t.Errorf("live tracked after reset = %d", mn.LiveTrackedBlocks())
		}
	})
	env.Run()
}
