// Fixture for the simdet analyzer: loaded by RunFixture under the
// import path ditto/internal/core (a sim-driven package), so every
// determinism rule is live. Lines carrying no annotation are the
// sanctioned patterns.

package core

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `wall-clock time.Now in sim-driven code`
}

func globalSource() int {
	return rand.Intn(10) // want `global math/rand source \(rand\.Intn\)`
}

func seeded(seed int64) int {
	// Sanctioned: an explicitly seeded generator; every draw derives
	// from the seed, and methods on *rand.Rand carry it.
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func unsortedWalk(m map[int]string) int {
	n := 0
	for id := range m { // want `map iteration order`
		n += id
	}
	return n
}

func sortedWalk(m map[int]string) []int {
	ids := make([]int, 0, len(m))
	//dittolint:allow simdet (keys are collected then sorted; iteration order cannot escape)
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func sliceWalk(xs []int) int {
	n := 0
	for _, x := range xs { // slices iterate in index order: no finding
		n += x
	}
	return n
}
