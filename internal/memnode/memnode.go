// Package memnode implements the memory-pool side of Ditto: the memory
// node's address-space layout, the two-level memory management scheme
// (segment allocation served by the weak MN controller, block carving done
// client-side), and the registry of controller RPC opcodes shared by every
// protocol in this repository.
//
// Layout of the registered region:
//
//	[0,   8)          global history counter (48-bit circular, RDMA_FAA'd)
//	[8,   headerEnd)  reserved words
//	[headerEnd, T)    sample-friendly hash table (placed by PlaceTable)
//	[T,   end)        object heap, carved into segments
//
// The controller owns the segment free list; clients obtain segments over
// RPC (infrequent — the second level) and carve 64-byte-granularity blocks
// from them locally (the common case — zero network cost), exactly as the
// two-level scheme of FUSEE that the paper adopts (§5.1 Implementations).
package memnode

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ditto/internal/rdma"
	"ditto/internal/sim"
)

// Controller RPC opcodes. All protocols in this repository register their
// handlers out of this space so a single memory node can host any mix.
const (
	OpAllocSeg uint8 = iota + 1
	OpFreeSeg
	OpWeightUpdate // distributed adaptive caching: lazy weight update
	OpCMSet        // CliqueMap baseline: server-executed Set
	OpCMSync       // CliqueMap baseline: client access-info synchronization
	OpServerOp     // monolithic-server baseline (Redis-like shard op)
	OpFreeBlocks   // surrender a client free list to the controller pool
	OpAllocBlock   // fetch one block from the controller pool
)

// BlockSize is the allocation granularity of the object heap; the paper's
// slot size field counts object sizes in units of 64-byte blocks.
const BlockSize = 64

// DefaultSegmentSize is how much memory one ALLOC RPC hands a client.
const DefaultSegmentSize = 64 * 1024

// headerBytes reserves space for the global history counter and future
// control words at the base of the region.
const headerBytes = 64

// HistCounterAddr is the address of the global history counter.
const HistCounterAddr uint64 = 0

// MemNode wraps an rdma.Node with Ditto's layout and the segment-level
// allocator run by the controller.
type MemNode struct {
	Node *rdma.Node

	segmentSize int
	tableAddr   uint64
	tableBytes  int
	heapAddr    uint64
	heapEnd     uint64
	nextSeg     uint64
	freeSegs    []uint64

	// SegAllocs counts segment allocations served (controller-side metric).
	SegAllocs int64

	// UsedBytes tracks live heap bytes across ALL clients. Free lists are
	// per-client (the evicting client reuses the victim's space, as in the
	// paper), but accounting must be global because any client may evict —
	// and thus free — any other client's allocation.
	UsedBytes int

	// blockPool holds blocks surrendered by departing clients (e.g. the
	// resharder), keyed by size class, so transient clients cannot strand
	// heap space. Served to clients via OpAllocBlock when the segment
	// space is exhausted.
	blockPool map[int][]uint64

	// LowWaterBytes and HighWaterBytes are the free-space watermarks the
	// background reclaimer (core.EnableBackgroundReclaim) runs between:
	// when FreeBytes drops below the low watermark the reclaimer starts
	// evicting, and it keeps going until FreeBytes is back above the high
	// watermark (or until an over-budget heap is drained). Zero values
	// mean "no watermarks": nothing in this package acts on them — they
	// are shared state between the allocator accounting kept here and the
	// reclaimer that polls it.
	LowWaterBytes, HighWaterBytes int

	// Overload signal (core.EnableOverloadControl): write-stall ticks
	// reported by clients via NoteStallTick are bucketed into
	// stallWindowNs-wide virtual-time epochs, and the node counts as
	// overloaded while the current plus previous epoch together exceed
	// stallThreshold ticks — a two-bucket sliding window that needs no
	// per-tick timestamps. stallThreshold == 0 means the signal is off
	// and both NoteStallTick and Overloaded are no-ops.
	stallThreshold int64
	stallWindowNs  int64
	stallEpoch     int64
	stallCur       int64
	stallPrev      int64

	// liveBlocks, when non-nil (EnableFreeTracking), maps every
	// outstanding allocated block to its size class — a precise
	// double-free / double-alloc detector the chaos suite turns on. The
	// UsedBytes>=0 panic in Alloc.Free catches only NET over-freeing;
	// this catches the first bad free, with its address.
	liveBlocks map[uint64]int
}

// Config configures a memory node.
type Config struct {
	// MemBytes is the total registered memory (table + heap + header).
	MemBytes int
	// SegmentSize overrides DefaultSegmentSize when > 0.
	SegmentSize int
	// Fabric is the timing model for the node's NIC/CPU.
	Fabric rdma.Config
}

// New creates a memory node and registers the ALLOC/FREE handlers.
func New(env *sim.Env, cfg Config) *MemNode {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.SegmentSize%BlockSize != 0 {
		panic("memnode: segment size must be a multiple of the block size")
	}
	mn := &MemNode{
		Node:        rdma.NewNode(env, cfg.MemBytes, cfg.Fabric),
		segmentSize: cfg.SegmentSize,
	}
	mn.tableAddr = headerBytes
	mn.heapAddr = headerBytes
	mn.heapEnd = uint64(cfg.MemBytes)
	mn.nextSeg = mn.heapAddr
	mn.blockPool = make(map[int][]uint64)
	mn.Node.Handle(OpAllocSeg, mn.handleAllocSeg)
	mn.Node.Handle(OpFreeSeg, mn.handleFreeSeg)
	mn.Node.Handle(OpFreeBlocks, mn.handleFreeBlocks)
	mn.Node.Handle(OpAllocBlock, mn.handleAllocBlock)
	return mn
}

// PlaceTable reserves bytes for the hash table directly after the header
// and returns its base address. It must be called before any segment is
// allocated.
func (mn *MemNode) PlaceTable(bytes int) uint64 {
	if mn.nextSeg != mn.heapAddr || len(mn.freeSegs) > 0 {
		panic("memnode: PlaceTable after segment allocation")
	}
	if uint64(headerBytes+bytes) > mn.heapEnd {
		panic(fmt.Sprintf("memnode: table of %d bytes does not fit in %d", bytes, mn.heapEnd))
	}
	mn.tableAddr = headerBytes
	mn.tableBytes = bytes
	mn.heapAddr = headerBytes + uint64(bytes)
	// Segments are block-aligned.
	if r := mn.heapAddr % BlockSize; r != 0 {
		mn.heapAddr += BlockSize - r
	}
	mn.nextSeg = mn.heapAddr
	return mn.tableAddr
}

// TableAddr returns the hash table base address.
func (mn *MemNode) TableAddr() uint64 { return mn.tableAddr }

// HeapBytes returns the number of bytes available for cached objects.
func (mn *MemNode) HeapBytes() int { return int(mn.heapEnd - mn.heapAddr) }

// SegmentSize returns the segment granularity.
func (mn *MemNode) SegmentSize() int { return mn.segmentSize }

// GrowHeap extends the heap by bytes (the "add memory" elasticity
// experiments). The underlying region must have been sized generously; in
// simulation we model growth by raising the allocatable limit.
func (mn *MemNode) GrowHeap(bytes int) {
	newEnd := mn.heapEnd + uint64(bytes)
	if newEnd > uint64(mn.Node.MemSize()) {
		panic("memnode: GrowHeap beyond registered region")
	}
	mn.heapEnd = newEnd
}

// ShrinkHeap lowers the allocatable heap end by bytes — the "remove
// memory" elasticity knob, the counterpart of GrowHeap. Segments already
// handed to clients stay usable (the region is only logically released),
// but no new segment is granted beyond the lowered end and OverBudget
// turns true until evictions bring UsedBytes back under the new limit.
func (mn *MemNode) ShrinkHeap(bytes int) {
	if bytes < 0 {
		panic("memnode: ShrinkHeap of negative bytes")
	}
	newEnd := mn.heapEnd - uint64(bytes)
	if newEnd < mn.heapAddr || newEnd > mn.heapEnd {
		newEnd = mn.heapAddr
	}
	mn.heapEnd = newEnd
	// Drop free segments that now lie beyond the heap: they are
	// decommissioned, not reusable.
	kept := mn.freeSegs[:0]
	for _, s := range mn.freeSegs {
		if s+uint64(mn.segmentSize) <= mn.heapEnd {
			kept = append(kept, s)
		}
	}
	mn.freeSegs = kept
}

// OverBudget reports whether live object bytes exceed the heap limit —
// true after a ShrinkHeap until eviction catches up.
func (mn *MemNode) OverBudget() bool { return mn.UsedBytes > mn.HeapBytes() }

// FreeBytes returns the heap bytes not held by live objects. Negative
// while the node is over budget (after a ShrinkHeap).
func (mn *MemNode) FreeBytes() int { return mn.HeapBytes() - mn.UsedBytes }

// SetWatermarks installs the reclaimer's free-space watermarks. low must
// not exceed high; both are clamped to the heap size.
func (mn *MemNode) SetWatermarks(low, high int) {
	if low < 0 || high < low {
		panic("memnode: watermarks need 0 <= low <= high")
	}
	if hb := mn.HeapBytes(); high > hb {
		high = hb
		if low > high {
			low = high
		}
	}
	mn.LowWaterBytes, mn.HighWaterBytes = low, high
}

// BelowLowWater reports whether free space has dipped under the low
// watermark (always false when no watermarks are set) — the reclaimer's
// wake condition. An over-budget heap counts as below any watermark.
// The watermark is clamped to a quarter of the CURRENT heap, so a deep
// ShrinkHeap cannot leave a stale absolute watermark demanding more
// free space than the cache should reasonably hold empty.
func (mn *MemNode) BelowLowWater() bool {
	low := mn.LowWaterBytes
	if cap := mn.HeapBytes() / 4; low > cap {
		low = cap
	}
	return (low > 0 && mn.FreeBytes() < low) || mn.OverBudget()
}

// ReclaimTarget returns the effective high watermark: the configured
// value clamped to half the current heap (see BelowLowWater on why the
// clamp exists).
func (mn *MemNode) ReclaimTarget() int {
	high := mn.HighWaterBytes
	if cap := mn.HeapBytes() / 2; high > cap {
		high = cap
	}
	return high
}

// BelowHighWater reports whether free space is still under the high
// watermark — the reclaimer's keep-going condition (hysteresis: wake
// below low, stop above high).
func (mn *MemNode) BelowHighWater() bool {
	high := mn.ReclaimTarget()
	return (high > 0 && mn.FreeBytes() < high) || mn.OverBudget()
}

// DefaultStallWindowNs is the overload signal's default sliding-window
// width: 1 ms of virtual time, a few hundred stall ticks at the write
// path's 2 µs tick.
const DefaultStallWindowNs = int64(sim.Millisecond)

// EnableOverloadSignal arms the write-stall overload signal: more than
// threshold stall ticks within the (two-epoch) sliding window marks the
// node overloaded. threshold <= 0 disables; windowNs <= 0 picks
// DefaultStallWindowNs.
func (mn *MemNode) EnableOverloadSignal(threshold, windowNs int64) {
	if threshold <= 0 {
		mn.stallThreshold, mn.stallWindowNs = 0, 0
		return
	}
	if windowNs <= 0 {
		windowNs = DefaultStallWindowNs
	}
	mn.stallThreshold, mn.stallWindowNs = threshold, windowNs
	mn.stallEpoch, mn.stallCur, mn.stallPrev = 0, 0, 0
}

// rollStallEpoch advances the two-bucket window to the epoch containing
// virtual time now.
func (mn *MemNode) rollStallEpoch(now int64) {
	e := now / mn.stallWindowNs
	switch {
	case e == mn.stallEpoch:
	case e == mn.stallEpoch+1:
		mn.stallPrev, mn.stallCur = mn.stallCur, 0
		mn.stallEpoch = e
	default:
		mn.stallPrev, mn.stallCur = 0, 0
		mn.stallEpoch = e
	}
}

// NoteStallTick records one write-stall tick at virtual time now (a
// no-op while the signal is disarmed).
func (mn *MemNode) NoteStallTick(now int64) {
	if mn.stallThreshold == 0 {
		return
	}
	mn.rollStallEpoch(now)
	mn.stallCur++
}

// Overloaded reports whether the recent write-stall rate exceeds the
// armed threshold (always false while disarmed).
func (mn *MemNode) Overloaded(now int64) bool {
	if mn.stallThreshold == 0 {
		return false
	}
	mn.rollStallEpoch(now)
	return mn.stallCur+mn.stallPrev > mn.stallThreshold
}

// StallTicksInWindow returns the tick count the overload decision reads
// (diagnostics; 0 while disarmed).
func (mn *MemNode) StallTicksInWindow(now int64) int64 {
	if mn.stallThreshold == 0 {
		return 0
	}
	mn.rollStallEpoch(now)
	return mn.stallCur + mn.stallPrev
}

// SetHeapLimit sets the allocatable heap end to heapAddr+bytes, used to
// start an elastic experiment with a small cache and grow it later.
func (mn *MemNode) SetHeapLimit(bytes int) {
	newEnd := mn.heapAddr + uint64(bytes)
	if newEnd > uint64(mn.Node.MemSize()) {
		panic("memnode: heap limit beyond registered region")
	}
	mn.heapEnd = newEnd
}

// EnableFreeTracking turns on exact block-lifetime tracking: every
// allocation records its address and class, every free must match one.
// Test-harness only (the map costs real memory per live block).
func (mn *MemNode) EnableFreeTracking() {
	if mn.liveBlocks == nil {
		mn.liveBlocks = make(map[uint64]int)
	}
}

// ResetFreeTracking clears the tracker (call after a node Restart wipes
// the heap: outstanding addresses died with the old incarnation).
func (mn *MemNode) ResetFreeTracking() {
	if mn.liveBlocks != nil {
		mn.liveBlocks = make(map[uint64]int)
	}
}

// LiveTrackedBlocks returns the number of outstanding tracked blocks
// (0 when tracking is off).
func (mn *MemNode) LiveTrackedBlocks() int { return len(mn.liveBlocks) }

// noteAlloc records a block handed to a client.
func (mn *MemNode) noteAlloc(addr uint64, cl int) {
	if mn.liveBlocks == nil {
		return
	}
	if prev, live := mn.liveBlocks[addr]; live {
		panic(fmt.Sprintf("memnode: block %#x (class %d) allocated twice (still live as class %d)", addr, cl, prev))
	}
	mn.liveBlocks[addr] = cl
}

// noteFree checks a block being freed against the live set.
func (mn *MemNode) noteFree(addr uint64, cl int) {
	if mn.liveBlocks == nil {
		return
	}
	prev, live := mn.liveBlocks[addr]
	if !live {
		panic(fmt.Sprintf("memnode: double free of block %#x (class %d)", addr, cl))
	}
	if prev != cl {
		panic(fmt.Sprintf("memnode: block %#x freed as class %d but allocated as class %d", addr, cl, prev))
	}
	delete(mn.liveBlocks, addr)
}

func (mn *MemNode) handleAllocSeg([]byte) []byte {
	reply := make([]byte, 9)
	var addr uint64
	switch {
	case len(mn.freeSegs) > 0:
		addr = mn.freeSegs[len(mn.freeSegs)-1]
		mn.freeSegs = mn.freeSegs[:len(mn.freeSegs)-1]
	case mn.nextSeg+uint64(mn.segmentSize) <= mn.heapEnd:
		addr = mn.nextSeg
		mn.nextSeg += uint64(mn.segmentSize)
	default:
		reply[0] = 0 // out of memory
		return reply
	}
	mn.SegAllocs++
	reply[0] = 1
	binary.LittleEndian.PutUint64(reply[1:], addr)
	return reply
}

func (mn *MemNode) handleFreeSeg(payload []byte) []byte {
	addr := binary.LittleEndian.Uint64(payload)
	mn.freeSegs = append(mn.freeSegs, addr)
	return []byte{1}
}

// handleFreeBlocks receives a departing client's free list for one size
// class: class (8 B) followed by the block addresses.
func (mn *MemNode) handleFreeBlocks(payload []byte) []byte {
	cl := int(binary.LittleEndian.Uint64(payload))
	for off := 8; off+8 <= len(payload); off += 8 {
		mn.blockPool[cl] = append(mn.blockPool[cl], binary.LittleEndian.Uint64(payload[off:]))
	}
	return []byte{1}
}

// handleAllocBlock serves one block of the requested size class from the
// surrendered pool.
func (mn *MemNode) handleAllocBlock(payload []byte) []byte {
	cl := int(binary.LittleEndian.Uint64(payload))
	reply := make([]byte, 9)
	lst := mn.blockPool[cl]
	if len(lst) == 0 {
		return reply // reply[0] == 0: pool empty for this class
	}
	addr := lst[len(lst)-1]
	mn.blockPool[cl] = lst[:len(lst)-1]
	reply[0] = 1
	binary.LittleEndian.PutUint64(reply[1:], addr)
	return reply
}

// Alloc is the client-side (first-level) block allocator: it carves
// BlockSize-granularity blocks out of controller-provided segments and
// keeps per-size-class free lists. All methods run inside the owning sim
// process.
type Alloc struct {
	ep *rdma.Endpoint
	mn *MemNode

	cursor    uint64 // next unused byte in the current segment
	remaining int    // bytes left in the current segment
	free      map[int][]uint64

	// segFailBackoff suppresses repeat ALLOC RPCs after the controller
	// reported exhaustion, so steady-state eviction/insert cycles don't
	// spam the weak controller. The client re-probes periodically, which
	// is how it discovers memory grown by the elasticity knobs.
	segFailBackoff int
}

// segRetryInterval is how many failed Allocs to wait before re-asking the
// controller for a segment.
const segRetryInterval = 256

// poolProbeInterval is how often, within a backoff window, the client
// probes the controller's surrendered-block pool.
const poolProbeInterval = 32

// allocFromPool asks the controller for one surrendered block of the
// given size class (one RPC).
func (a *Alloc) allocFromPool(cl int) (uint64, bool) {
	req := make([]byte, 8)
	binary.LittleEndian.PutUint64(req, uint64(cl))
	if blk := a.ep.RPC(OpAllocBlock, req); blk[0] == 1 {
		a.mn.UsedBytes += cl
		addr := binary.LittleEndian.Uint64(blk[1:])
		a.mn.noteAlloc(addr, cl)
		return addr, true
	}
	return 0, false
}

// NewAlloc creates a client allocator speaking to mn through ep.
func NewAlloc(mn *MemNode, ep *rdma.Endpoint) *Alloc {
	return &Alloc{ep: ep, mn: mn, free: make(map[int][]uint64)}
}

// AllocFromPool allocates a block for size bytes straight from the
// controller's surrendered-block pool (one RPC), bypassing the local
// free lists and the segment backoff. Clients stalled behind the
// background reclaimer use it: the reclaimer frees victims onto its own
// lists and surrenders them to the pool, so this is where reclaimed
// space surfaces first.
func (a *Alloc) AllocFromPool(size int) (uint64, bool) {
	return a.allocFromPool(SizeClass(size))
}

// SizeClass rounds size up to the block granularity.
func SizeClass(size int) int {
	if size <= 0 {
		return BlockSize
	}
	return (size + BlockSize - 1) / BlockSize * BlockSize
}

// Alloc returns the address of a block that fits size bytes, or ok=false
// when the memory pool is exhausted (the caller then evicts and retries).
func (a *Alloc) Alloc(size int) (addr uint64, ok bool) {
	cl := SizeClass(size)
	if cl > a.mn.segmentSize {
		panic(fmt.Sprintf("memnode: object of %d bytes exceeds segment size %d", size, a.mn.segmentSize))
	}
	if lst := a.free[cl]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		a.free[cl] = lst[:len(lst)-1]
		a.mn.UsedBytes += cl
		a.mn.noteAlloc(addr, cl)
		return addr, true
	}
	if a.remaining < cl {
		if a.segFailBackoff > 0 {
			a.segFailBackoff--
			// Probe the surrendered-block pool every poolProbeInterval
			// backoff decrements: blocks surrendered while this client is
			// backing off (e.g. by a completed reshard) become reachable
			// within a bounded number of allocs, without adding an RPC to
			// every steady-state eviction cycle.
			if a.segFailBackoff%poolProbeInterval == 0 {
				if addr, ok := a.allocFromPool(cl); ok {
					return addr, true
				}
			}
			return 0, false
		}
		// Second level: fetch a fresh segment from the controller. The tail
		// of the old segment (if any) is parked on free lists so it is not
		// leaked.
		a.shredTail()
		reply := a.ep.RPC(OpAllocSeg, nil)
		if reply[0] == 0 {
			// No segments left: try the controller's pool of blocks
			// surrendered by departed clients before conceding.
			if addr, ok := a.allocFromPool(cl); ok {
				return addr, true
			}
			a.segFailBackoff = segRetryInterval
			return 0, false
		}
		a.cursor = binary.LittleEndian.Uint64(reply[1:])
		a.remaining = a.mn.segmentSize
	}
	addr = a.cursor
	a.cursor += uint64(cl)
	a.remaining -= cl
	a.mn.UsedBytes += cl
	a.mn.noteAlloc(addr, cl)
	return addr, true
}

// shredTail converts the remainder of the current segment into free blocks
// of the largest classes that fit, so switching segments never leaks space.
func (a *Alloc) shredTail() {
	for a.remaining >= BlockSize {
		cl := a.remaining / BlockSize * BlockSize
		if cl > a.mn.segmentSize {
			cl = a.mn.segmentSize
		}
		// Park as one big block in its own class; Alloc of smaller sizes
		// won't use it, but Free/Alloc cycles of equal classes dominate in
		// caches with stable object sizes. Remainders are rare (segment
		// switches only).
		a.free[cl] = append(a.free[cl], a.cursor)
		a.cursor += uint64(cl)
		a.remaining -= cl
	}
	a.remaining = 0
}

// Free returns the block at addr (of the class that fits size) to the
// client-local free list — no network cost, as in the paper's design where
// the evicting client reuses the victim's space. The block need not have
// been allocated by this client: evictions free other clients' blocks.
func (a *Alloc) Free(addr uint64, size int) {
	cl := SizeClass(size)
	a.mn.noteFree(addr, cl)
	a.free[cl] = append(a.free[cl], addr)
	a.mn.UsedBytes -= cl
	if a.mn.UsedBytes < 0 {
		panic("memnode: double free (used bytes went negative)")
	}
}

// Surrender returns every locally parked free block (and the tail of the
// current segment) to the controller's block pool, one RPC per size
// class. Long-lived clients keep their lists — local reuse is the zero-
// cost common case — but a transient client (the resharder) must call
// this before going away, or the space it freed would be stranded.
func (a *Alloc) Surrender() {
	a.shredTail()
	classes := make([]int, 0, len(a.free))
	for cl := range a.free {
		if len(a.free[cl]) > 0 {
			classes = append(classes, cl)
		}
	}
	sort.Ints(classes) // deterministic RPC order
	for _, cl := range classes {
		lst := a.free[cl]
		payload := make([]byte, 8+8*len(lst))
		binary.LittleEndian.PutUint64(payload, uint64(cl))
		for i, addr := range lst {
			binary.LittleEndian.PutUint64(payload[8+8*i:], addr)
		}
		a.ep.RPC(OpFreeBlocks, payload)
	}
	a.free = make(map[int][]uint64)
}

// FreeBlocks reports how many blocks are parked on local free lists.
func (a *Alloc) FreeBlocks() int {
	n := 0
	for _, lst := range a.free {
		n += len(lst)
	}
	return n
}
