package core

import (
	"bytes"
	"fmt"

	"ditto/internal/adaptive"
	"ditto/internal/cachealgo"
	"ditto/internal/fccache"
	"ditto/internal/hashtable"
	"ditto/internal/history"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
)

// getRetries bounds re-reads when a stale pointer is observed under
// concurrent updates.
const getRetries = 3

// evictAttempts bounds resampling before giving up on one eviction round
// (generous: under heavy multi-client thrash, CAS losses burn attempts).
const evictAttempts = 512

// Stats are per-client operation counters.
type Stats struct {
	Gets, Sets, Deletes int64
	Hits, Misses        int64
	Evictions           int64
	Regrets             int64
	SetRetries          int64
	BucketEvictions     int64
}

// HitRate returns Hits/(Hits+Misses).
func (s *Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Client is one Ditto client: the library instance an application links
// against on a compute node. It must run inside its own sim process.
type Client struct {
	cl    *Cluster
	p     *sim.Proc
	ep    *rdma.Endpoint
	ht    *hashtable.Handle
	alloc *memnode.Alloc
	hist  *history.Client
	adapt *adaptive.Client
	fc    *fccache.Cache

	experts []cachealgo.Algorithm
	extOff  []int // offset of each expert's extension segment

	// Stats accumulates this client's counters.
	Stats Stats

	// OnOp, when non-nil, observes every completed Get/Set with its
	// virtual-time latency; benchmark harnesses install collectors here.
	OnOp func(op OpKind, latency int64, hit bool)
}

// OpKind labels operations for OnOp.
type OpKind int

// Operation kinds reported to OnOp.
const (
	OpGet OpKind = iota
	OpSet
)

// NewClient creates a Ditto client for process p. Each application thread
// gets its own client, matching the paper's one-client-per-core model.
func (cl *Cluster) NewClient(p *sim.Proc) *Client {
	ep := rdma.NewEndpoint(cl.MN.Node, p)
	c := &Client{
		cl:    cl,
		p:     p,
		ep:    ep,
		ht:    hashtable.NewHandle(cl.Layout, ep),
		alloc: memnode.NewAlloc(cl.MN, ep),
		hist:  history.NewClient(ep, hashtable.NewHandle(cl.Layout, ep), cl.histSize),
	}
	off := 0
	for _, name := range cl.opts.Experts {
		a, err := cachealgo.New(name)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		c.experts = append(c.experts, a)
		c.extOff = append(c.extOff, off)
		off += a.ExtSize()
	}
	if cl.Adaptive() {
		c.adapt = adaptive.NewClient(adaptive.Config{
			NumExperts:   len(c.experts),
			LearningRate: cl.opts.LearningRate,
			HistorySize:  cl.histSize,
			BatchSize:    cl.opts.BatchSize,
			Eager:        cl.opts.EagerWeightSync,
		}, ep)
	}
	c.fc = fccache.New(cl.opts.FCCacheBytes, cl.opts.FCThreshold, c.ht.FAAFreqAsync)
	return c
}

// Weights exposes the client's local expert weights (nil when adaptive
// caching is off).
func (c *Client) Weights() adaptive.Weights {
	if c.adapt == nil {
		return nil
	}
	return c.adapt.Weights()
}

// Proc returns the owning sim process.
func (c *Client) Proc() *sim.Proc { return c.p }

// Close flushes client-side buffered state (FC cache deltas, pending
// weight penalties).
func (c *Client) Close() {
	c.fc.FlushAll()
	if c.adapt != nil {
		c.adapt.Sync()
	}
}

// ----------------------------------------------------------------- Get ----

// Get fetches the value cached under key, returning ok=false on a miss.
// Critical path: one READ of the key's bucket plus one READ of the object
// (a second bucket READ only on overflow), with metadata maintenance off
// the critical path (§4.1).
func (c *Client) Get(key []byte) ([]byte, bool) { return c.get(key, false) }

// getProbe is a Get whose miss is silent: no counters, no regret
// collection, no observer report. MultiClient's forwarding window probes
// with it so a key sitting on its old owner does not record a phantom
// miss (and adaptive penalties) on the new owner for every forwarded
// hit. A probe that hits counts as a normal Get.
func (c *Client) getProbe(key []byte) ([]byte, bool) { return c.get(key, true) }

func (c *Client) get(key []byte, probe bool) ([]byte, bool) {
	start := c.p.Now()
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	buckets := [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)}

	var histMatches []hashtable.Slot
	for attempt := 0; attempt < getRetries; attempt++ {
		stale := false
		histMatches = histMatches[:0]
		for _, b := range buckets {
			slots := c.ht.ReadBucket(b)
			for _, s := range slots {
				switch {
				case s.Atomic.IsEmpty():
				case s.Atomic.IsHistory():
					if s.Hash == kh {
						histMatches = append(histMatches, s)
					}
				case s.Atomic.FP() == fp:
					obj := c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
					dec := decodeObject(obj)
					if !dec.ok {
						stale = true
						continue
					}
					if !bytes.Equal(dec.key, key) {
						continue // fingerprint collision
					}
					c.touchOnHit(s, dec, len(key))
					c.Stats.Gets++
					c.Stats.Hits++
					val := append([]byte(nil), dec.value...)
					c.report(OpGet, start, true)
					return val, true
				}
			}
		}
		if !stale {
			break
		}
	}

	if probe {
		return nil, false
	}
	c.Stats.Gets++
	c.Stats.Misses++
	if c.adapt != nil {
		c.collectRegrets(histMatches)
		if c.cl.opts.DisableLWH {
			// Conventional design: a separate remote hash index over the
			// history must be probed on every miss.
			c.ep.Read(memnode.HistCounterAddr, 8)
		}
	}
	c.report(OpGet, start, false)
	return nil, false
}

// noteHit buffers this hit's +1 in the FC cache and returns the key's
// logical frequency including it. The pending delta MUST be read before
// fc.Add: the remote snapshot s.Freq predates every buffered increment,
// so the logical count is snapshot + buffered-before-this-hit + 1. Adding
// first would fold the current hit into the pending delta and count it
// twice whenever it was buffered, biasing LFU-family expert priorities
// upward on exactly the keys the FC cache combines hardest.
func (c *Client) noteHit(s hashtable.Slot, keyLen int) uint64 {
	freq := s.Freq + 1 + c.fc.PendingDelta(s.Addr)
	c.fc.Add(s.Addr, keyLen)
	return freq
}

// touchOnHit applies the framework's metadata maintenance after a hit:
// the stateful freq through the FC cache (combined RDMA_FAA), the
// stateless last_ts with one asynchronous RDMA_WRITE, and any expert
// extension metadata with one more asynchronous RDMA_WRITE to the object.
func (c *Client) touchOnHit(s hashtable.Slot, dec decodedObject, keyLen int) {
	now := c.p.Now()
	freq := c.noteHit(s, keyLen)
	c.ht.TouchLastTs(s.Addr, now)
	if c.cl.opts.DisableSFHT {
		// Metadata scattered with the object: stateless fields cannot be
		// grouped into a single WRITE.
		c.ep.WriteAsync(s.Atomic.Pointer(), make([]byte, 8))
	}
	if len(dec.ext) > 0 {
		meta := cachealgo.Metadata{
			Size:     s.Atomic.SizeBytes(),
			InsertTs: s.InsertTs,
			LastTs:   s.LastTs,
			Freq:     freq,
		}
		for i, a := range c.experts {
			n := a.ExtSize()
			if n == 0 {
				continue
			}
			meta.Ext = dec.ext[c.extOff[i] : c.extOff[i]+n]
			a.UpdateExt(&meta, now)
		}
		c.ep.WriteAsync(s.Atomic.Pointer()+objHeader, dec.ext)
	}
}

// collectRegrets penalizes experts recorded in valid history entries for
// the missed key (§4.3.1 "Regret collection"), then consumes the entries.
func (c *Client) collectRegrets(matches []hashtable.Slot) {
	if len(matches) == 0 {
		return
	}
	// One cheap counter refresh per miss-with-candidates keeps expiry
	// checks honest for get-dominated clients.
	c.hist.RefreshCounter()
	for _, s := range matches {
		bitmap, age, ok := c.hist.Match(s, s.Hash)
		if !ok {
			continue
		}
		c.adapt.Penalize(bitmap, age)
		c.Stats.Regrets++
		c.hist.ClearHash(s.Addr)
	}
}

// ----------------------------------------------------------------- Set ----

// shrinkEvictBatch bounds how many over-budget evictions one Set absorbs
// after a ShrinkCache, amortizing the drain across the write path.
const shrinkEvictBatch = 8

// Set inserts or updates key. Critical path for an insert: one READ
// (bucket search), one WRITE (object to a free location) and one CAS
// (publish the pointer) — §4.1 — plus eviction work only when the memory
// pool is full.
func (c *Client) Set(key, value []byte) {
	start := c.p.Now()
	c.Stats.Sets++
	for i := 0; i < shrinkEvictBatch && c.cl.MN.OverBudget(); i++ {
		if !c.evictOne() {
			break
		}
	}
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	size := objBytes(len(key), len(value), c.cl.totalExt)

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.Stats.SetRetries++
			// Hot keys attract concurrent out-of-place updates; the CAS
			// loser backs off briefly (like the paper's lock back-off) so
			// contenders don't stay lock-stepped.
			c.p.Sleep(c.p.Rand().Int63n(2 * sim.Microsecond))
		}
		if attempt > 4096 {
			panic("core: Set could not make progress (table misconfigured?)")
		}
		if c.trySet(kh, fp, key, value, size) {
			c.report(OpSet, start, true)
			return
		}
	}
}

// allocOrEvict allocates size bytes, evicting objects until space frees
// up; it panics only when the pool is exhausted with nothing evictable.
func (c *Client) allocOrEvict(size int) uint64 {
	addr, ok := c.alloc.Alloc(size)
	for !ok {
		if !c.evictOne() {
			panic("core: memory pool exhausted and nothing evictable")
		}
		addr, ok = c.alloc.Alloc(size)
	}
	return addr
}

// trySet performs one attempt; false means a CAS race or full bucket was
// handled and the caller should retry.
func (c *Client) trySet(kh uint64, fp byte, key, value []byte, size int) bool {
	now := c.p.Now()
	main := c.cl.Layout.MainBucket(kh)
	backup := c.cl.Layout.BackupBucket(kh)

	var free *hashtable.Slot
	var fullSlots []hashtable.Slot
	for _, b := range [2]int{main, backup} {
		slots := c.ht.ReadBucket(b)
		for i := range slots {
			s := slots[i]
			if s.Atomic.IsEmpty() || s.Atomic.IsHistory() {
				continue
			}
			if s.Atomic.FP() != fp {
				continue
			}
			obj := c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
			dec := decodeObject(obj)
			if dec.ok && bytes.Equal(dec.key, key) {
				return c.updateInPlace(s, dec, key, value, size, now)
			}
		}
		if free == nil {
			for i := range slots {
				if c.hist.Reclaimable(slots[i]) {
					free = &slots[i]
					break
				}
			}
		}
		fullSlots = append(fullSlots, slots...)
		if free != nil {
			break // insert into the main bucket when possible
		}
	}

	if free == nil {
		// Both buckets full of live objects and valid history entries:
		// evict the lowest-priority live object from the key's buckets
		// directly (slot reclaimed immediately; no history entry for this
		// corner case — see DESIGN.md §6). If the buckets hold no live
		// object at all (all history), sacrifice the oldest history entry.
		if !c.bucketEvict(fullSlots) {
			c.reclaimOldestHistory(fullSlots)
		}
		return false // retry with a freed slot
	}

	addr := c.allocOrEvict(size)

	ext := c.initExts(size, now)
	c.ep.Write(addr, encodeObject(key, value, ext))
	want := hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(size), addr)
	if _, swapped := c.ht.CASAtomic(free.Addr, free.Atomic, want); !swapped {
		c.alloc.Free(addr, size)
		return false
	}
	c.finishInsert(free.Addr, kh, now)
	return true
}

// updateInPlace implements the UPDATE flavour of Set: write the new value
// to a fresh block and CAS the slot's pointer (out-of-place update, as in
// RACE hashing).
func (c *Client) updateInPlace(s hashtable.Slot, old decodedObject, key, value []byte, size int, now int64) bool {
	addr := c.allocOrEvict(size)
	ext := c.updateExt(s, old, size, now)
	c.ep.Write(addr, encodeObject(key, value, ext))
	want := hashtable.EncodeAtomic(s.Atomic.FP(), hashtable.SizeToBlocks(size), addr)
	if _, swapped := c.ht.CASAtomic(s.Addr, s.Atomic, want); !swapped {
		c.alloc.Free(addr, size)
		return false
	}
	c.finishUpdate(s, len(key), now)
	return true
}

// updateExt rebuilds an object's extension metadata for an out-of-place
// update. The frequency convention matches noteHit — snapshot + pending
// delta + 1 for the current access, with the pending delta read before
// the access is buffered (finishUpdate's fc.Add runs only after the CAS
// publishes the update).
func (c *Client) updateExt(s hashtable.Slot, old decodedObject, size int, now int64) []byte {
	ext := make([]byte, c.cl.totalExt)
	copy(ext, old.ext)
	meta := cachealgo.Metadata{
		Size:     hashtable.SizeClassBytes(size),
		InsertTs: s.InsertTs,
		LastTs:   s.LastTs,
		Freq:     s.Freq + 1 + c.fc.PendingDelta(s.Addr),
	}
	for i, a := range c.experts {
		if n := a.ExtSize(); n > 0 {
			meta.Ext = ext[c.extOff[i] : c.extOff[i]+n]
			a.UpdateExt(&meta, now)
		}
	}
	return ext
}

// finishUpdate applies the post-CAS effects of a successful out-of-place
// update: free the superseded block, buffer the access's freq increment,
// and touch last_ts (async).
func (c *Client) finishUpdate(s hashtable.Slot, keyLen int, now int64) {
	c.alloc.Free(s.Atomic.Pointer(), s.Atomic.SizeBytes())
	c.fc.Add(s.Addr, keyLen)
	c.ht.TouchLastTs(s.Addr, now)
}

// finishInsert applies the post-CAS effects of a successful insert: drop
// any stale buffered delta bound to the recycled slot and initialize the
// slot metadata (async).
func (c *Client) finishInsert(slotAddr uint64, kh uint64, now int64) {
	c.fc.Forget(slotAddr)
	c.ht.WriteMetaOnInsert(slotAddr, kh, now, now, 1)
}

// initExts builds the initial extension metadata for a new object.
func (c *Client) initExts(size int, now int64) []byte {
	if c.cl.totalExt == 0 {
		return nil
	}
	ext := make([]byte, c.cl.totalExt)
	meta := cachealgo.Metadata{
		Size:     hashtable.SizeClassBytes(size),
		InsertTs: now,
		LastTs:   now,
		Freq:     1,
	}
	for i, a := range c.experts {
		if n := a.ExtSize(); n > 0 {
			meta.Ext = ext[c.extOff[i] : c.extOff[i]+n]
			a.InitExt(&meta, now)
		}
	}
	return ext
}

// ----------------------------------------------------------- Migration ----

// migrateIn inserts key with the access metadata it carried on its old
// memory node — the SET half of a reshard's READ-old/SET-new/delete-behind
// step. Unlike Set it never overwrites: if the key is already present the
// destination copy is newer (a client raced ahead during the forwarding
// window) and must win, so migrateIn returns inserted=false and leaves it
// alone. On insert it returns the created slot and its atomic field so the
// resharder can undo the copy with a precise CAS if the source copy turns
// out to have changed under it.
func (c *Client) migrateIn(key, value, ext []byte, insertTs, lastTs int64, freq uint64) (inserted bool, slotAddr uint64, atom hashtable.AtomicField) {
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	size := objBytes(len(key), len(value), c.cl.totalExt)

	for attempt := 0; ; attempt++ {
		if attempt > 4096 {
			panic("core: migrateIn could not make progress (table misconfigured?)")
		}
		main := c.cl.Layout.MainBucket(kh)
		backup := c.cl.Layout.BackupBucket(kh)

		// Unlike trySet — which stops at the main bucket once it has a free
		// slot, keeping an insert at one bucket READ (§4.1's verb budget) —
		// the absence check here must cover BOTH buckets before committing:
		// a newer client-written copy can sit in the backup bucket, and
		// inserting the migrated value ahead of it in the main bucket would
		// shadow it (Get scans main first). Migration is off the critical
		// path, so the extra READ is the right trade.
		var free *hashtable.Slot
		var fullSlots []hashtable.Slot
		for _, b := range [2]int{main, backup} {
			slots := c.ht.ReadBucket(b)
			for i := range slots {
				s := slots[i]
				if s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != fp {
					continue
				}
				obj := c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
				if dec := decodeObject(obj); dec.ok && bytes.Equal(dec.key, key) {
					return false, 0, 0 // newer copy already here; it wins
				}
			}
			if free == nil { // prefer the main bucket, as trySet does
				for i := range slots {
					if c.hist.Reclaimable(slots[i]) {
						free = &slots[i]
						break
					}
				}
			}
			fullSlots = append(fullSlots, slots...)
		}
		if free == nil {
			if !c.bucketEvict(fullSlots) {
				c.reclaimOldestHistory(fullSlots)
			}
			continue
		}

		addr := c.allocOrEvict(size)
		// The extension layout matches across nodes (same expert list), so
		// the old node's expert metadata transfers verbatim; pad or trim
		// defensively in case configurations ever diverge.
		e := make([]byte, c.cl.totalExt)
		copy(e, ext)
		c.ep.Write(addr, encodeObject(key, value, e))
		want := hashtable.EncodeAtomic(fp, hashtable.SizeToBlocks(size), addr)
		if _, swapped := c.ht.CASAtomic(free.Addr, free.Atomic, want); !swapped {
			c.alloc.Free(addr, size)
			continue // lost the slot race; re-read and re-check presence
		}
		c.fc.Forget(free.Addr)
		c.ht.WriteMetaOnInsert(free.Addr, kh, insertTs, lastTs, freq)
		// Post-publish duplicate sweep: a client Set that read the buckets
		// before our CAS landed can have published the same key into a
		// DIFFERENT slot (both CASes succeed when concurrent slot-freeing
		// hands the two writers different free slots). That copy is newer
		// by construction — ours must yield.
		if c.hasOtherCopy(kh, fp, key, free.Addr) {
			c.dropMigrated(free.Addr, want)
			return false, 0, 0
		}
		return true, free.Addr, want
	}
}

// hasOtherCopy reports whether a live copy of key exists in its buckets
// at a slot other than exclAddr.
func (c *Client) hasOtherCopy(kh uint64, fp byte, key []byte, exclAddr uint64) bool {
	for _, b := range [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)} {
		for _, s := range c.ht.ReadBucket(b) {
			if s.Addr == exclAddr || s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != fp {
				continue
			}
			obj := c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
			if dec := decodeObject(obj); dec.ok && bytes.Equal(dec.key, key) {
				return true
			}
		}
	}
	return false
}

// surrenderFreeBlocks hands the client's local free lists back to the MN
// controller; called by transient clients (the resharder) on their way
// out so freed space is not stranded.
func (c *Client) surrenderFreeBlocks() { c.alloc.Surrender() }

// dropMigrated undoes a migrateIn insert with a precise CAS on the exact
// slot/value it created. A failed CAS means a client already replaced or
// deleted the copy — the newer state wins and nothing is freed.
func (c *Client) dropMigrated(slotAddr uint64, atom hashtable.AtomicField) {
	if _, swapped := c.ht.CASAtomic(slotAddr, atom, 0); swapped {
		c.alloc.Free(atom.Pointer(), atom.SizeBytes())
		c.fc.Forget(slotAddr)
	}
}

// -------------------------------------------------------------- Delete ----

// Delete removes key from the cache, reporting whether it was present.
// The scan covers BOTH buckets to completion rather than stopping at the
// first match: a reshard's migration window can briefly leave two live
// copies of a key (a migrated copy and a racing write), and deleting only
// the first would let the survivor resurrect the key.
func (c *Client) Delete(key []byte) bool {
	c.Stats.Deletes++
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	deleted := false
	for _, b := range [2]int{c.cl.Layout.MainBucket(kh), c.cl.Layout.BackupBucket(kh)} {
		for _, s := range c.ht.ReadBucket(b) {
			if s.Atomic.IsEmpty() || s.Atomic.IsHistory() || s.Atomic.FP() != fp {
				continue
			}
			obj := c.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
			dec := decodeObject(obj)
			if !dec.ok || !bytes.Equal(dec.key, key) {
				continue
			}
			if _, swapped := c.ht.CASAtomic(s.Addr, s.Atomic, 0); swapped {
				c.alloc.Free(s.Atomic.Pointer(), s.Atomic.SizeBytes())
				c.fc.Forget(s.Addr)
				deleted = true
			}
			// On a lost CAS race someone else deleted or replaced this
			// copy; keep scanning for further copies either way.
		}
	}
	return deleted
}
