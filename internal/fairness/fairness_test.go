package fairness

import (
	"bytes"
	"testing"

	"ditto/internal/core"
	"ditto/internal/sim"
)

const missCost = 500 * sim.Microsecond

func newCluster(env *sim.Env) *core.Cluster {
	return core.NewCluster(env, core.DefaultOptions(500, 500*320))
}

func TestOwnTenantHitsAreFast(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("a", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		a.Set([]byte("k"), []byte("v"))
		start := p.Now()
		v, ok := a.Get([]byte("k"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("got %q ok=%v", v, ok)
		}
		if lat := p.Now() - start; lat >= missCost {
			t.Fatalf("own-tenant hit delayed: %d ns", lat)
		}
		if a.CrossHits != 0 {
			t.Fatal("own hit counted as cross-tenant")
		}
	})
	env.Run()
}

func TestCrossTenantHitsAreDelayed(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		a.Set([]byte("shared"), []byte("v"))

		start := p.Now()
		v, ok := b.Get([]byte("shared"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("cross-tenant read failed: %q %v", v, ok)
		}
		if lat := p.Now() - start; lat < missCost {
			t.Fatalf("free ride not delayed: %d ns < %d", lat, missCost)
		}
		if b.CrossHits != 1 || b.Delayed != 1 {
			t.Fatalf("counters: %+v", b)
		}
	})
	env.Run()
}

func TestOwnershipTransfersOnOverwrite(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		a.Set([]byte("k"), []byte("va"))
		b.Set([]byte("k"), []byte("vb")) // B now pays for it...
		start := p.Now()
		if v, _ := b.Get([]byte("k")); !bytes.Equal(v, []byte("vb")) {
			t.Fatalf("got %q", v)
		}
		if lat := p.Now() - start; lat >= missCost {
			t.Fatal("owner delayed on own object after overwrite")
		}
	})
	env.Run()
}

func TestBlockProbZeroDisablesDelaying(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		b := New(cl.NewClient(p), 2, missCost)
		b.BlockProb = 0
		a.Set([]byte("k"), []byte("v"))
		start := p.Now()
		b.Get([]byte("k"))
		if lat := p.Now() - start; lat >= missCost {
			t.Fatal("delayed despite BlockProb=0")
		}
		if b.CrossHits != 1 || b.Delayed != 0 {
			t.Fatalf("counters: %+v", b)
		}
	})
	env.Run()
}

// TestExpectedDelayingBlockProb drives the same cross-tenant read
// sequence through the three interesting blocking probabilities. The
// delayed counts are seed-pinned: BlockProb 0 and 1 are degenerate
// (never/always), and 0.5 consumes one RNG draw per cross hit from the
// sim's seeded stream, so the count is exact for this seed — a change
// in the draw order or the branch structure shows up as a diff here.
func TestExpectedDelayingBlockProb(t *testing.T) {
	const crossGets = 40
	cases := []struct {
		name        string
		prob        float64
		wantDelayed int64
	}{
		{"never", 0, 0},
		{"half", 0.5, 24}, // pinned: env seed 1, 40 draws
		{"always", 1, crossGets},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv(1)
			cl := newCluster(env)
			env.Go("tenants", func(p *sim.Proc) {
				owner := New(cl.NewClient(p), 1, missCost)
				rider := New(cl.NewClient(p), 2, missCost)
				rider.BlockProb = tc.prob
				for i := 0; i < crossGets; i++ {
					owner.Set([]byte{byte(i)}, []byte("v"))
				}
				start := p.Now()
				for i := 0; i < crossGets; i++ {
					if _, ok := rider.Get([]byte{byte(i)}); !ok {
						t.Fatalf("cross-tenant read %d missed", i)
					}
				}
				if rider.CrossHits != crossGets {
					t.Fatalf("CrossHits = %d, want %d", rider.CrossHits, crossGets)
				}
				if rider.Delayed != tc.wantDelayed {
					t.Fatalf("Delayed = %d, want %d (seed-pinned)", rider.Delayed, tc.wantDelayed)
				}
				// Every delay is exactly one missCost sleep; the verb time
				// around it is orders of magnitude smaller.
				if elapsed := p.Now() - start; elapsed < rider.Delayed*missCost {
					t.Fatalf("elapsed %d ns < %d delays x %d ns", elapsed, rider.Delayed, missCost)
				}
			})
			env.Run()
		})
	}
}

// TestShortRawValueReadsAsMiss pins the defensive edge: an object too
// short to carry the owner tag (stored around the wrapper, e.g. an
// empty value through the inner client) reads as a miss rather than a
// mis-attributed hit — for both the copying Get and the in-place
// GetAppend, which must also leave the caller's prefix intact.
func TestShortRawValueReadsAsMiss(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("c", func(p *sim.Proc) {
		a := New(cl.NewClient(p), 1, missCost)
		a.Inner().Set([]byte("bare"), nil) // zero-length raw: no tag byte
		if v, ok := a.Get([]byte("bare")); ok {
			t.Fatalf("tagless object served as a hit: %q", v)
		}
		if a.CrossHits != 0 || a.Delayed != 0 {
			t.Fatalf("tagless object touched the fairness counters: %+v", a)
		}
		dst := append(make([]byte, 0, 16), "prefix"...)
		out, ok := a.GetAppend(dst, []byte("bare"))
		if ok || string(out) != "prefix" {
			t.Fatalf("GetAppend on tagless object: ok=%v out=%q", ok, out)
		}
	})
	env.Run()
}

func TestFreeRidingBuysNothing(t *testing.T) {
	// The economic property: a tenant that never inserts sees effective
	// latency no better than running against storage directly.
	env := sim.NewEnv(1)
	cl := newCluster(env)
	env.Go("tenants", func(p *sim.Proc) {
		owner := New(cl.NewClient(p), 1, missCost)
		rider := New(cl.NewClient(p), 2, missCost)
		for i := 0; i < 50; i++ {
			owner.Set([]byte{byte(i)}, []byte("v"))
		}
		start := p.Now()
		for i := 0; i < 50; i++ {
			rider.Get([]byte{byte(i)})
		}
		perOp := (p.Now() - start) / 50
		if perOp < missCost {
			t.Fatalf("free rider got %d ns/op, cheaper than storage %d", perOp, missCost)
		}
	})
	env.Run()
}
