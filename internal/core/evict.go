package core

import (
	"encoding/binary"

	"ditto/internal/cachealgo"
	"ditto/internal/exec"
	"ditto/internal/hashtable"
	"ditto/internal/rdma"
)

// candidate pairs a sampled slot with the metadata view the priority
// functions consume — plus, in tenant mode, the owning tenant and lease
// expiry parsed from the object header the ext READ covers.
type candidate struct {
	slot   hashtable.Slot
	meta   cachealgo.Metadata
	tenant TenantID
	expiry int64
}

// evictOne performs one sample-based eviction (§4.2): sample a window of
// slots with one READ, let every expert nominate its lowest-priority
// candidate, pick the deciding expert by weight, evict its nominee, and
// (when adaptive) convert the victim's slot into a lightweight history
// entry. The verb sequence is the evictPlan in plan.go — the same plan
// the background reclaimer and the over-budget drains run as doorbell
// batches — traversed serially here.
//
// It returns false when no object could be evicted after bounded
// resampling (e.g. an empty cache).
func (c *Client) evictOne() bool { return c.evictBatch(1, exec.Serial) == 1 }

// evictBatch reclaims up to n victims with evict plans executed under
// strat: exec.Doorbell samples several windows and CASes several victims
// per round (one doorbell per stage across the batch), exec.Serial runs
// the same plans one verb per round trip. CAS losers and empty windows
// resample in later rounds, bounded by evictAttempts plan executions in
// total; a full-table sample that found nothing live ends the batch
// early — nothing is evictable. Returns the number of victims reclaimed.
func (c *Client) evictBatch(n int, strat exec.Strategy) int {
	won, attempts := 0, 0
	for won < n && attempts < evictAttempts {
		m := n - won
		if rem := evictAttempts - attempts; m > rem {
			m = rem
		}
		// Pooled plans on the eviction-specific scratch (runEv): inline
		// eviction can fire while an M-operation's doorbell round is
		// mid-absorb on runOps, so the two must not share a slice.
		plans := c.evPlans[:0]
		run := c.runEv[:0]
		for i := 0; i < m; i++ {
			pl := c.acquireEvictPlan()
			plans = append(plans, pl)
			run = append(run, pl)
		}
		c.evPlans, c.runEv = plans, run
		attempts += m
		c.runner.RunPlans(strat, run)
		exhausted := false
		for _, pl := range plans {
			switch pl.outcome {
			case evictWon:
				won++
			case evictNone:
				if pl.fullScan {
					// The sample covered every slot and found nothing live:
					// nothing further is evictable. Finish counting this
					// round's wins (later plans in the batch may still have
					// reclaimed something) before giving up.
					exhausted = true
					continue
				}
				c.Stats.EvictResamples++
			case evictLost:
				c.Stats.EvictResamples++
			}
		}
		for _, pl := range plans {
			c.releaseEvictPlan(pl)
		}
		if exhausted {
			return won
		}
	}
	return won
}

// drainOverBudget evicts until the node is back under budget, reclaiming
// up to max victims, with rounds sized by the remaining deficit and the
// running victim-size estimate — so a heap shrunk by many blocks frees
// them as multi-victim doorbell rounds instead of one victim per RTT
// chain. With a background reclaimer enabled the inline work is skipped
// entirely: the drain kicks the reclaimer and lets the write proceed.
func (c *Client) drainOverBudget(max int) {
	if !c.cl.MN.OverBudget() {
		return
	}
	if c.cl.reclaimEnabled {
		c.cl.kickReclaimer()
		return
	}
	for done := 0; done < max && c.cl.MN.OverBudget(); {
		n := c.cl.victimsFor(-c.cl.MN.FreeBytes())
		if n > max-done {
			n = max - done
		}
		got := c.evictBatch(n, c.cl.reclaimStrategy())
		if got == 0 {
			return
		}
		done += got
	}
}

// liveCandidate filters one sampled slot down to an eviction candidate
// with the default metadata view attached — the one definition of the
// slot filter and the metadata/frequency convention, shared by the
// serial bucket-eviction path and the evictPlan's sample stage.
func (c *Client) liveCandidate(s hashtable.Slot) (candidate, bool) {
	if s.Atomic.IsEmpty() || s.Atomic.IsHistory() {
		return candidate{}, false
	}
	// Frequency convention (shared with noteHit/updateExt): remote
	// snapshot plus the buffered delta. Sampling is not an access, so
	// no +1 and no fc.Add here.
	return candidate{slot: s, meta: cachealgo.Metadata{
		Size:     s.Atomic.SizeBytes(),
		InsertTs: s.InsertTs,
		LastTs:   s.LastTs,
		Freq:     s.Freq + c.fc.PendingDelta(s.Addr),
	}}, true
}

// needsExtRead reports whether candidates cost one more READ each:
// extension metadata is configured, the DisableSFHT ablation stores ALL
// metadata with the object, or tenant mode needs each candidate's
// header (tenant tag + lease expiry) for quota/TTL-aware nomination.
func (c *Client) needsExtRead() bool {
	return c.cl.opts.DisableSFHT || c.cl.tenantMode || c.cl.totalExt > 0
}

// extReadOp is that READ — the one definition of its addressing —
// and applyExt attaches its completion to the candidate. Tenant mode
// uses the header-inclusive shape: the same single fixed-size READ per
// candidate, widened by the 24-byte header.
func (c *Client) extReadOp(s hashtable.Slot) rdma.BatchOp {
	if c.cl.opts.DisableSFHT || c.cl.tenantMode {
		// Metadata stored with objects: the READ covers the header too.
		return rdma.BatchOp{
			Kind: rdma.BatchRead, Addr: s.Atomic.Pointer(), Len: objHeader + c.cl.totalExt,
		}
	}
	return rdma.BatchOp{
		Kind: rdma.BatchRead, Addr: s.Atomic.Pointer() + objHeader, Len: c.cl.totalExt,
	}
}

func (c *Client) applyExt(cand *candidate, data []byte) {
	if c.cl.opts.DisableSFHT || c.cl.tenantMode {
		if c.cl.tenantMode {
			cand.tenant = TenantID(data[objTenantOff])
			cand.expiry = int64(binary.LittleEndian.Uint64(data[objExpiryOff:]))
		}
		if c.cl.totalExt > 0 {
			cand.meta.Ext = data[objHeader:]
		}
		return
	}
	cand.meta.Ext = data
}

// buildCandidates filters a sample down to live object slots and attaches
// metadata. With the sample-friendly hash table all default metadata
// arrived with the sample READ; extension metadata (or, under the
// DisableSFHT ablation, all metadata) costs one more READ per candidate.
func (c *Client) buildCandidates(slots []hashtable.Slot) []candidate {
	cands := make([]candidate, 0, len(slots))
	for _, s := range slots {
		cand, ok := c.liveCandidate(s)
		if !ok {
			continue
		}
		if c.needsExtRead() {
			c.applyExt(&cand, c.issueRead(c.extReadOp(s)))
		}
		cands = append(cands, cand)
	}
	return cands
}

// bucketEvict frees a slot in the key's own buckets when both are full of
// live objects and valid history entries: the deciding expert's
// lowest-priority live object is deleted outright (slot reclaimed
// immediately). Rare by construction (the table is oversized), counted in
// Stats.BucketEvictions.
func (c *Client) bucketEvict(slots []hashtable.Slot) bool {
	cands := c.buildCandidates(slots)
	if len(cands) == 0 {
		return false
	}
	// Tenant policies mirror evictPlan.nominate: an expired lease is
	// reclaimed first (Delete-equivalent, so no expert is consulted or
	// blamed), then the candidate set narrows to over-quota tenants when
	// any is present — bucket pressure must not evict an in-quota
	// tenant's key while an over-quota tenant occupies the same bucket.
	if c.cl.tenantMode {
		now := c.p.Now()
		for i := range cands {
			if ex := cands[i].expiry; ex != 0 && ex <= now {
				return c.takeBucketVictim(cands[i], nil, 0)
			}
		}
		if mask := c.cl.overQuotaMask(); mask != 0 {
			n := 0
			for i := range cands {
				if mask&(1<<uint(cands[i].tenant)) != 0 {
					cands[n] = cands[i]
					n++
				}
			}
			if n > 0 {
				cands = cands[:n]
			}
		}
	}
	deciding := 0
	if c.adapt != nil {
		deciding = c.adapt.PickExpert(c.p.Rand())
	}
	a := c.experts[deciding]
	now := c.p.Now()
	best, bestP := -1, 0.0
	for i := range cands {
		m := cands[i].meta
		if off := c.extOff[deciding]; a.ExtSize() > 0 {
			m.Ext = cands[i].meta.Ext[off : off+a.ExtSize()]
		}
		p := a.Priority(&m, now)
		if best < 0 || p < bestP {
			best, bestP = i, p
		}
	}
	return c.takeBucketVictim(cands[best], a, bestP)
}

// takeBucketVictim claims one bucket-eviction victim: CAS the slot
// empty, free the object, and settle counters. blamed is nil for an
// expired-lease victim — reclaiming a dead lease is Delete-equivalent,
// so no expert earns the eviction credit.
func (c *Client) takeBucketVictim(victim candidate, blamed cachealgo.Algorithm, p float64) bool {
	if _, won := c.ht.CASAtomic(victim.slot.Addr, victim.slot.Atomic, 0); !won {
		return false
	}
	if obs, ok := blamed.(cachealgo.EvictionObserver); ok {
		obs.OnEvict(p)
	}
	c.freeStampAsync(victim.slot.Atomic.Pointer())
	c.alloc.Free(victim.slot.Atomic.Pointer(),
		victim.slot.Atomic.SizeBytes())
	c.fc.Forget(victim.slot.Addr)
	c.accountTenant(victim.tenant, -int64(victim.slot.Atomic.SizeBytes()))
	c.cl.noteVictimBlocks(int(victim.slot.Atomic.SizeBlocks()))
	c.Stats.Evictions++
	c.Stats.BucketEvictions++
	if c.cl.onEvictHash != nil {
		c.cl.onEvictHash(victim.slot.Hash)
	}
	return true
}

// reclaimOldestHistory frees the bucket-local history entry closest to
// expiry so an insert can proceed when a bucket is saturated with valid
// history entries (shortening the logical FIFO for those entries only).
func (c *Client) reclaimOldestHistory(slots []hashtable.Slot) {
	best := -1
	var bestAge uint64
	for i, s := range slots {
		if !s.Atomic.IsHistory() {
			continue
		}
		if age := c.hist.Age(s.Atomic.Pointer()); best < 0 || age > bestAge {
			best, bestAge = i, age
		}
	}
	if best >= 0 {
		c.ht.CASAtomic(slots[best].Addr, slots[best].Atomic, 0)
	}
}

// report delivers an operation sample to the installed observer.
func (c *Client) report(op OpKind, start int64, hit bool) {
	if c.OnOp != nil {
		c.OnOp(op, c.p.Now()-start, hit)
	}
}
