// Package loccache is the client-side location cache behind one-RTT
// speculative Gets: a per-client, bounded map from key to the remote
// location a live copy of that key was last observed at.
//
// A hint is a pure acceleration structure, never a source of truth. The
// read path uses it to issue ONE speculative READ of the remembered
// object block and then validates the returned image in place (inline
// key, incarnation stamp, tenant, lease expiry — see core's
// specGetPlan); any mismatch silently falls back to the ordinary
// two-RTT bucket walk. Correctness therefore never depends on hint
// invalidation: a stale hint costs one wasted READ, nothing more, so
// nothing in the system ever needs to find or update another client's
// cache.
//
// The cache is zero-lock by construction, not by cleverness: it is owned
// by exactly one core.Client, which the simulation (like the paper's
// one-client-per-core model) runs in a single process, so reads and
// writes need no synchronization at all. The hot paths are also
// allocation-free at steady state: Lookup and a Record that refreshes an
// existing key compile to non-allocating map accesses; only the first
// Record of a new key allocates (its interned key string).
//
// Bounded by a CLOCK (second-chance) policy over a fixed entry arena:
// Lookup marks the entry referenced, and an insert past capacity sweeps
// the clock hand to the first unreferenced entry, clearing marks as it
// passes. Eviction order is a function of the access sequence alone —
// no map iteration, no wall clock — keeping the simulation
// deterministic.
package loccache

// Hint is everything the speculative read path remembers about a key's
// last observed copy: where to READ (Addr/Len, the block address and its
// size-class bytes), how to validate what comes back (Ver, the image's
// unique incarnation stamp, and Tenant), and the slot-metadata snapshot
// (SlotAddr, InsertTs, LastTs, Freq) that lets a validated hit run the
// same asynchronous metadata maintenance as an ordinary hit without
// re-reading the bucket. Freq and LastTs are the client's own running
// estimate — refreshed on every hit, blind to other clients' accesses
// between refreshes — which is exactly the fidelity the eviction
// heuristics need and no more.
type Hint struct {
	Addr     uint64 // object block address on the memory node
	Len      int    // size-class bytes to READ (header + ext + key + value)
	Ver      uint64 // incarnation stamp of the observed image (never 0)
	Tenant   uint8  // tenant the image was stamped with
	SlotAddr uint64 // hash-table slot publishing the block
	InsertTs int64
	LastTs   int64
	Freq     uint64
}

// entry is one arena slot: the interned key, its hint, and the CLOCK
// reference bit.
type entry struct {
	key string
	h   Hint
	ref bool
}

// Cache is the bounded location cache. The zero value is not usable;
// construct with New.
type Cache struct {
	capacity int
	idx      map[string]int32
	ents     []entry
	free     []int32 // arena slots vacated by Drop, reused before eviction
	hand     int     // CLOCK hand over the arena
}

// New returns a cache bounded to capacity entries (capacity must be
// positive).
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("loccache: capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		idx:      make(map[string]int32, capacity),
		ents:     make([]entry, 0, capacity),
	}
}

// Lookup returns the hint recorded for key, marking the entry recently
// used. Allocation-free.
func (c *Cache) Lookup(key []byte) (Hint, bool) {
	i, ok := c.idx[string(key)]
	if !ok {
		return Hint{}, false
	}
	e := &c.ents[i]
	e.ref = true
	return e.h, true
}

// Record stores (or refreshes) the hint for key. Refreshing an existing
// key is allocation-free; a new key interns its string and may evict the
// CLOCK victim when the cache is full.
func (c *Cache) Record(key []byte, h Hint) {
	if i, ok := c.idx[string(key)]; ok {
		e := &c.ents[i]
		e.h = h
		e.ref = true
		return
	}
	var i int32
	switch {
	case len(c.free) > 0:
		i, c.free = c.free[len(c.free)-1], c.free[:len(c.free)-1]
	case len(c.ents) < c.capacity:
		i = int32(len(c.ents))
		c.ents = append(c.ents, entry{})
	default:
		i = c.evict()
	}
	e := &c.ents[i]
	e.key = string(key)
	e.h = h
	e.ref = true
	c.idx[e.key] = i
}

// evict advances the CLOCK hand to the first unreferenced entry,
// clearing reference bits as it passes, removes that victim from the
// index and returns its arena slot. Terminates within one full sweep:
// after every bit is cleared the next entry is unreferenced.
func (c *Cache) evict() int32 {
	for {
		e := &c.ents[c.hand]
		if e.ref {
			e.ref = false
			c.hand = (c.hand + 1) % len(c.ents)
			continue
		}
		i := int32(c.hand)
		delete(c.idx, e.key)
		c.hand = (c.hand + 1) % len(c.ents)
		return i
	}
}

// Drop forgets key's hint, if present. Allocation-free. Dropping is only
// ever an optimization (the dropped hint would have failed validation
// and fallen back); the read path calls it after a fallback so the next
// Get goes straight to the bucket walk.
func (c *Cache) Drop(key []byte) {
	i, ok := c.idx[string(key)]
	if !ok {
		return
	}
	delete(c.idx, string(key))
	c.ents[i] = entry{}
	c.free = append(c.free, i)
}

// Len returns the number of hints currently cached.
func (c *Cache) Len() int { return len(c.idx) }

// Cap returns the configured capacity bound.
func (c *Cache) Cap() int { return c.capacity }
