package core

import (
	"bytes"
	"testing"

	"ditto/internal/sim"
)

// TestMultiClientRouteUniform checks that the consistent-hash routing
// spreads a large key population evenly enough across MNs that no shard
// becomes a hotspot.
func TestMultiClientRouteUniform(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 4, DefaultOptions(4000, 4000*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		counts := make(map[int]int)
		const n = 20000
		for i := 0; i < n; i++ {
			cur, old := c.owner(key(i))
			if old != -1 {
				t.Fatalf("forwarding window active outside a reshard")
			}
			counts[cur]++
		}
		mean := n / mc.NumNodes()
		for id, got := range counts {
			if got < mean*6/10 || got > mean*14/10 {
				t.Errorf("node %d owns %d of %d keys, want within 40%% of %d", id, got, n, mean)
			}
		}
		if len(counts) != 4 {
			t.Errorf("only %d of 4 nodes receive keys", len(counts))
		}
	})
	env.Run()
}

// TestMultiClusterAddNodeKeepsKeys is the headline reshard invariant:
// every key written before an AddNode stays readable with its exact value
// DURING the live migration and after it completes, and the new node ends
// up owning a share of the data.
func TestMultiClusterAddNodeKeepsKeys(t *testing.T) {
	env := sim.NewEnv(1)
	const n = 300
	mc := NewMultiCluster(env, 2, DefaultOptions(1500, 1500*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		id := mc.AddNode()
		if !mc.Resharding() {
			t.Fatal("AddNode did not start a reshard")
		}
		during := 0
		for mc.Resharding() {
			i := int(p.Rand().Int63n(n))
			v, ok := c.Get(key(i))
			if !ok {
				t.Fatalf("key %d unreadable during reshard", i)
			}
			if !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d stale during reshard", i)
			}
			during++
		}
		if during == 0 {
			t.Error("reshard finished before any concurrent read")
		}
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale after reshard", i)
			}
		}
		if mc.NumNodes() != 3 {
			t.Fatalf("nodes = %d after AddNode", mc.NumNodes())
		}
		if mc.MigratedKeys == 0 || mc.Reshards != 1 {
			t.Fatalf("migration stats: moved=%d reshards=%d", mc.MigratedKeys, mc.Reshards)
		}
		if mc.nodes[id].MN.UsedBytes == 0 {
			t.Error("new node holds no data after reshard")
		}
	})
	env.Run()
}

// TestMultiClusterRemoveNodeDrains checks the scale-in direction: a
// drained node's keys migrate to the survivors, stay readable throughout,
// and the node leaves the pool empty.
func TestMultiClusterRemoveNodeDrains(t *testing.T) {
	env := sim.NewEnv(2)
	const n = 300
	mc := NewMultiCluster(env, 3, DefaultOptions(1500, 1500*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		victimID := mc.NodeID(2)
		victim := mc.Node(2)
		mc.RemoveNode(victimID)
		during := 0
		for mc.Resharding() {
			i := int(p.Rand().Int63n(n))
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale during drain", i)
			}
			during++
		}
		if during == 0 {
			t.Error("drain finished before any concurrent read")
		}
		if mc.NumNodes() != 2 {
			t.Fatalf("nodes = %d after RemoveNode", mc.NumNodes())
		}
		if victim.MN.UsedBytes != 0 {
			t.Errorf("drained node still holds %d bytes", victim.MN.UsedBytes)
		}
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale after drain", i)
			}
		}
	})
	env.Run()
}

// TestMultiClusterSetDuringReshard: writes racing the migration must win —
// after the reshard, the freshest value is served, never a migrated stale
// copy.
func TestMultiClusterSetDuringReshard(t *testing.T) {
	env := sim.NewEnv(3)
	const n = 200
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	fresh := func(i int) []byte { return bytes.Repeat([]byte{0xAB}, 80) }
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		mc.AddNode()
		rewritten := 0
		for i := 0; i < n && mc.Resharding(); i++ {
			c.Set(key(i), fresh(i))
			rewritten++
		}
		if rewritten == 0 {
			t.Skip("reshard completed before any overwrite landed")
		}
		mc.WaitReshard(p)
		for i := 0; i < rewritten; i++ {
			v, ok := c.Get(key(i))
			if !ok {
				t.Fatalf("key %d lost after reshard", i)
			}
			if !bytes.Equal(v, fresh(i)) {
				t.Fatalf("key %d serves a stale pre-reshard value", i)
			}
		}
		for i := rewritten; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("untouched key %d lost or stale", i)
			}
		}
	})
	env.Run()
}

// TestMultiClusterDeleteDuringReshard: a key deleted while its shard is
// migrating must stay deleted — the resharder may not resurrect it.
func TestMultiClusterDeleteDuringReshard(t *testing.T) {
	env := sim.NewEnv(4)
	const n = 200
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		mc.AddNode()
		deleted := 0
		for i := 0; i < n/2 && mc.Resharding(); i++ {
			c.Delete(key(i))
			deleted++
		}
		if deleted == 0 {
			t.Skip("reshard completed before any delete landed")
		}
		mc.WaitReshard(p)
		for i := 0; i < deleted; i++ {
			if _, ok := c.Get(key(i)); ok {
				t.Fatalf("deleted key %d resurrected by the reshard", i)
			}
		}
		for i := deleted; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("surviving key %d lost or stale", i)
			}
		}
	})
	env.Run()
}

// TestMultiClusterSerialMembershipChanges grows 2→4 and back down to 2,
// checking data integrity across the whole sequence.
func TestMultiClusterSerialMembershipChanges(t *testing.T) {
	env := sim.NewEnv(5)
	const n = 200
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		a := mc.AddNode()
		mc.WaitReshard(p)
		b := mc.AddNode()
		mc.WaitReshard(p)
		if mc.NumNodes() != 4 {
			t.Fatalf("nodes = %d, want 4", mc.NumNodes())
		}
		mc.RemoveNode(a)
		mc.WaitReshard(p)
		mc.RemoveNode(b)
		mc.WaitReshard(p)
		if mc.NumNodes() != 2 {
			t.Fatalf("nodes = %d, want 2", mc.NumNodes())
		}
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale after grow+shrink cycle", i)
			}
		}
		if mc.Reshards != 4 {
			t.Fatalf("reshards = %d, want 4", mc.Reshards)
		}
	})
	env.Run()
}

// TestMultiClusterValidationElastic covers the membership-change guard
// rails.
func TestMultiClusterValidationElastic(t *testing.T) {
	env := sim.NewEnv(6)
	mc := NewMultiCluster(env, 1, DefaultOptions(100, 100*320))
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("RemoveNode(last)", func() { mc.RemoveNode(mc.NodeID(0)) })
	expectPanic("RemoveNode(unknown)", func() { mc.RemoveNode(99) })
	mc.AddNode()
	expectPanic("AddNode mid-reshard", func() { mc.AddNode() })
	env.Run() // drain the resharder
	if mc.Resharding() {
		t.Fatal("reshard still pending after Run")
	}
}

// TestClusterShrinkCache exercises the single-node "remove memory" knob:
// after ShrinkCache the budget drops immediately and the write path drains
// live data down under the new limit.
func TestClusterShrinkCache(t *testing.T) {
	env := sim.NewEnv(7)
	cl := NewCluster(env, DefaultOptions(500, 500*320))
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 500; i++ {
			c.Set(key(i), value(i))
		}
		before := cl.MN.HeapBytes()
		cl.ShrinkCache(before * 3 / 4)
		if got := cl.MN.HeapBytes(); got >= before {
			t.Fatalf("heap did not shrink: %d -> %d", before, got)
		}
		if !cl.MN.OverBudget() {
			t.Fatal("cache not over budget after halving a full heap")
		}
		// Ordinary writes amortize the drain.
		for i := 0; i < 500 && cl.MN.OverBudget(); i++ {
			c.Set(key(i%100), value(i))
		}
		if cl.MN.OverBudget() {
			t.Fatalf("still over budget after drain: used=%d heap=%d",
				cl.MN.UsedBytes, cl.MN.HeapBytes())
		}
		if c.Stats.Evictions == 0 {
			t.Error("shrink drained without evictions")
		}
	})
	env.Run()
}

// TestMultiClusterShrinkCache checks the pool-wide shrink splits across
// MNs like GrowCache does.
func TestMultiClusterShrinkCache(t *testing.T) {
	env := sim.NewEnv(8)
	mc := NewMultiCluster(env, 2, DefaultOptions(200, 128000))
	before := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	mc.ShrinkCache(32000)
	after := mc.Node(0).MN.HeapBytes() + mc.Node(1).MN.HeapBytes()
	if before-after < 32000 {
		t.Fatalf("shrank %d, want >= 32000", before-after)
	}
}
