package core

// Multi-tenant serving: quotas, TTL leases, and overload shedding.
//
// A TenantID rides in every stored object's header (object.go), so the
// policies need no side tables: per-tenant byte usage is accounted in
// sharded counters at the verbs that transfer block ownership (insert /
// update / delete / evict / migrate CAS wins), quota enforcement steers
// the eviction sampler's nomination toward over-quota tenants
// (plan.go's evictPlan), a lease expiry stamped at construction makes
// lapsed entries read as misses immediately and reclaimable by the
// background reclaimer (never by readers — the read path stays
// zero-alloc and write-free), and overload control sheds batched writes
// from over-quota tenants when the memory node's write-stall rate says
// the reclaimer cannot keep up.
//
// Everything is gated on tenantMode, which SetTenantQuota enables: a
// deployment that never sets a quota runs the seed's exact verb shapes
// and never reads the header's tenant/expiry fields.

// TenantID identifies the application a stored object belongs to. It is
// stamped into the object header at construction (Set) by the client's
// bound tenant and never rewritten.
type TenantID uint8

// MaxTenants bounds tenant IDs (0..MaxTenants-1) so the over-quota set
// fits one 64-bit mask snapshotted per eviction attempt.
const MaxTenants = 64

// DefaultTenant is the tenant unbound clients write as: a single-tenant
// deployment is "tenant 0 everywhere".
const DefaultTenant TenantID = 0

// ------------------------------------------------------------ Cluster ----

// SetTenantQuota assigns tenant t a byte quota (block-rounded usage is
// compared against it; 0 removes the quota) and switches the cluster
// into tenant mode. Enforcement is eviction-side: an over-quota tenant
// is preferred as the eviction victim before the global expert policy
// runs, so it cannot displace an in-quota tenant — and, with overload
// control enabled, its batched writes are shed while the node's
// reclaimer is behind.
func (cl *Cluster) SetTenantQuota(t TenantID, bytes int64) {
	if int(t) >= MaxTenants {
		//dittolint:allow typederr (config validation: tenant IDs are a deployment-time constant)
		panic("core: tenant ID out of range")
	}
	cl.ensureTenantMode()
	cl.tenantQuota[t] = bytes
}

// ensureTenantMode flips the cluster into tenant mode, creating the
// usage counter existing clients' cells were pre-registered against.
func (cl *Cluster) ensureTenantMode() {
	cl.tenantMode = true
}

// TenantMode reports whether any tenant policy is active.
func (cl *Cluster) TenantMode() bool { return cl.tenantMode }

// TenantQuota returns tenant t's byte quota (0 = unlimited).
func (cl *Cluster) TenantQuota(t TenantID) int64 { return cl.tenantQuota[t] }

// TenantUsage sums tenant t's live block-rounded bytes across every
// client's accounting cell. Read-side only.
func (cl *Cluster) TenantUsage(t TenantID) int64 { return cl.tenantUsage.Sum(int(t)) }

// OverQuota reports whether tenant t currently exceeds its quota.
func (cl *Cluster) OverQuota(t TenantID) bool {
	q := cl.tenantQuota[t]
	return q > 0 && cl.tenantUsage.Sum(int(t)) > q
}

// overQuotaMask snapshots the set of over-quota tenants as a bitmask —
// one aggregation per eviction attempt, taken at plan reset so a batch
// of plans sees one consistent set under either execution strategy.
func (cl *Cluster) overQuotaMask() uint64 {
	var mask uint64
	for t, q := range cl.tenantQuota {
		if q > 0 && cl.tenantUsage.Sum(t) > q {
			mask |= 1 << uint(t)
		}
	}
	return mask
}

// EnableOverloadControl arms the write-stall overload signal: when the
// node accumulates more than threshold write-stall ticks within a
// sliding window of windowNs virtual ns, TryMSet sheds batches from
// over-quota tenants (typed ErrShed/ErrOverQuota) until the stall rate
// subsides. threshold <= 0 disables; windowNs <= 0 picks 1 ms.
func (cl *Cluster) EnableOverloadControl(threshold int64, windowNs int64) {
	cl.MN.EnableOverloadSignal(threshold, windowNs)
}

// Overloaded reports the current overload-signal state (diagnostics and
// benches; the shed decision itself lives in TryMSet).
func (cl *Cluster) Overloaded(now int64) bool { return cl.MN.Overloaded(now) }

// ------------------------------------------------------------- Client ----

// BindTenant binds this client to tenant t: subsequent Sets stamp t
// into the object header and the client's byte accounting cell charges
// t. Unbound clients are DefaultTenant.
func (c *Client) BindTenant(t TenantID) {
	if int(t) >= MaxTenants {
		//dittolint:allow typederr (config validation: tenant IDs are a deployment-time constant)
		panic("core: tenant ID out of range")
	}
	c.tenant = t
}

// Tenant returns the client's bound tenant.
func (c *Client) Tenant() TenantID { return c.tenant }

// SetTTL is Set with a lease: the object's header carries an absolute
// expiry stamp (now + ttl virtual ns) written at construction — after
// the lease lapses the entry reads as a miss immediately (Get/MGet) and
// becomes preferred reclaim fodder for the eviction sampler; no reader
// ever issues a cleanup verb. ttl <= 0 is a plain Set.
func (c *Client) SetTTL(key, value []byte, ttl int64) {
	if ttl <= 0 {
		c.Set(key, value)
		return
	}
	c.nextExpiry = c.p.Now() + ttl
	c.Set(key, value)
	c.nextExpiry = 0
}

// accountTenant folds a block-ownership change (delta bytes,
// block-rounded) into tenant t's shard of the cluster usage counter.
// Called from the plan completions that transfer ownership; a no-op
// outside tenant mode so the seed hot path is unchanged.
func (c *Client) accountTenant(t TenantID, delta int64) {
	if c.cl.tenantMode {
		c.tcell.Add(int(t), delta)
	}
}

// TryMSet is MSet with overload shedding: while the cluster is in
// tenant mode, this client's tenant is over its quota, AND the memory
// node's write-stall rate is past the overload threshold
// (EnableOverloadControl), the batch is rejected up front — no verbs
// issued — with a *ShedError wrapping ErrShed and ErrOverQuota. In-quota
// tenants are never shed, so their p99 rides through the overload.
func (c *Client) TryMSet(pairs []KV) error {
	if c.cl.tenantMode && c.cl.OverQuota(c.tenant) && c.cl.MN.Overloaded(c.p.Now()) {
		c.Stats.ShedOps += int64(len(pairs))
		return &ShedError{
			Tenant: c.tenant,
			Usage:  c.cl.TenantUsage(c.tenant),
			Quota:  c.cl.TenantQuota(c.tenant),
		}
	}
	c.MSet(pairs)
	return nil
}

// ------------------------------------------------------- MultiCluster ----

// SetTenantQuota assigns tenant t a pool-wide byte quota, split evenly
// across the current memory nodes (keys are hash-partitioned, so each
// node sees ~1/n of every tenant's footprint). Nodes provisioned later
// inherit the same per-node slice — AddNode grows the aggregate quota
// with the pool, exactly as it grows aggregate cache bytes.
func (mc *MultiCluster) SetTenantQuota(t TenantID, bytes int64) {
	if int(t) >= MaxTenants {
		//dittolint:allow typederr (config validation: tenant IDs are a deployment-time constant)
		panic("core: tenant ID out of range")
	}
	per := bytes
	if n := int64(len(mc.order)); bytes > 0 && n > 1 {
		per = (bytes + n - 1) / n
	}
	mc.tenantMode = true
	mc.tenantPerNode[t] = per
	for _, id := range mc.order {
		mc.nodes[id].SetTenantQuota(t, per)
	}
}

// TenantMode reports whether any tenant policy is active pool-wide.
func (mc *MultiCluster) TenantMode() bool { return mc.tenantMode }

// TenantUsage sums tenant t's live block-rounded bytes across every
// node in the pool.
func (mc *MultiCluster) TenantUsage(t TenantID) int64 {
	var sum int64
	for _, id := range mc.order {
		sum += mc.nodes[id].TenantUsage(t)
	}
	return sum
}

// TenantOverQuota reports whether tenant t exceeds its aggregate quota
// across the pool — the signal the hot-key replication layer uses to
// refuse (and dissolve) replica copies for over-quota tenants, since
// replication multiplies a tenant's footprint by 1+R.
func (mc *MultiCluster) TenantOverQuota(t TenantID) bool {
	if !mc.tenantMode {
		return false
	}
	var usage, quota int64
	for _, id := range mc.order {
		cl := mc.nodes[id]
		usage += cl.TenantUsage(t)
		quota += cl.TenantQuota(t)
	}
	return quota > 0 && usage > quota
}

// EnableOverloadControl arms the write-stall overload signal on every
// node (see Cluster.EnableOverloadControl); nodes added later inherit it.
func (mc *MultiCluster) EnableOverloadControl(threshold, windowNs int64) {
	mc.overloadThreshold, mc.overloadWindowNs = threshold, windowNs
	for _, id := range mc.order {
		mc.nodes[id].EnableOverloadControl(threshold, windowNs)
	}
}

// -------------------------------------------------------- MultiClient ----

// BindTenant binds this client — and every per-node client it has opened
// or will open — to tenant t.
func (m *MultiClient) BindTenant(t TenantID) {
	if int(t) >= MaxTenants {
		//dittolint:allow typederr (config validation: tenant IDs are a deployment-time constant)
		panic("core: tenant ID out of range")
	}
	m.tenant = t
	for _, id := range sortedNodeIDs(m.clients) {
		m.clients[id].BindTenant(t)
	}
}

// Tenant returns the client's bound tenant.
func (m *MultiClient) Tenant() TenantID { return m.tenant }
