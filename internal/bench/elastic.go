package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/exec"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// ElasticReshard measures Ditto's second memory-elasticity axis: scaling
// the memory pool from 2 to 4 MNs mid-run with live resharding. This goes
// beyond the paper's evaluation (which grows one MN's heap with no
// migration, Figures 13/22) by exercising the §5.1 multi-MN note: the
// consistent-hash ring moves only ~half the keys, migration runs through
// the same one-sided verbs as client traffic, and the forwarding window
// keeps every key readable throughout.
//
// The scenario runs twice, once per reshard strategy of the verb-plan
// executor (internal/exec): Serial issues one verb per round trip — the
// paper-faithful baseline — while Doorbell (the default) pipelines the
// table scan and the per-key migrations as doorbell batches. Three equal
// phases are reported for each: steady state on 2 MNs, the reshard window
// (both AddNode migrations run here), and steady state on 4 MNs. The
// shape to expect: client throughput holds (or rises with the aggregate
// RNIC budget) through the window instead of collapsing the way Figure
// 1's stop-the-world Redis migration does, the hit rate stays flat
// because no key is lost in flight, and the Doorbell strategy completes
// the same migration in a fraction of the Serial reshard time.
func ElasticReshard(w io.Writer, scale Scale) error {
	header(w, "Elastic reshard: live MN scale-out 2→4 under load")
	keys := scale.pick(4000, 20000)
	clients := scale.pick(8, 32)
	phase := int64(scale.pick(10, 40)) * sim.Millisecond

	type phaseRow struct {
		Phase   string  `json:"phase"`
		Mops    float64 `json:"mops"`
		HitRate float64 `json:"hit_rate"`
	}
	type stratRow struct {
		Strategy  string     `json:"strategy"`
		Phases    []phaseRow `json:"phases"`
		ReshardMs float64    `json:"reshard_ms"`
		Migrated  int64      `json:"migrated_keys"`
	}
	var rows []stratRow

	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		env := sim.NewEnv(benchSeed(17))
		mc := core.NewMultiCluster(env, 2, core.DefaultOptions(keys*2, keys*512))
		mc.ReshardStrategy = strat
		factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
		RunLoad(env, factory, loadKeys(keys), 16)

		const phases = 3
		var ops, hits, misses [phases]int64
		t0 := env.Now()
		end := t0 + phases*phase
		for i := 0; i < clients; i++ {
			i := i
			env.Go("client", func(p *sim.Proc) {
				c := mc.NewClient(p)
				g := workload.NewYCSB(workload.YCSBB, uint64(keys), 256)
				rng := rand.New(rand.NewSource(int64(100 + i)))
				for p.Now() < end {
					r := g.Next(rng)
					key := workload.KeyBytes(r.Key)
					ph := int((p.Now() - t0) / phase)
					if ph >= phases {
						ph = phases - 1
					}
					if r.Write {
						c.Set(key, valueFor(r))
					} else if _, ok := c.Get(key); ok {
						hits[ph]++
					} else {
						misses[ph]++
					}
					ops[ph]++
				}
			})
		}
		// Phase 2 boundary: add two MNs back to back, each a live reshard.
		env.GoAt(t0+phase, "scale-out", func(p *sim.Proc) {
			mc.AddNode()
			mc.WaitReshard(p)
			mc.AddNode()
			mc.WaitReshard(p)
		})
		env.Run()

		sr := stratRow{
			Strategy:  strat.String(),
			ReshardMs: float64(mc.ReshardNs) / float64(sim.Millisecond),
			Migrated:  mc.MigratedKeys,
		}
		labels := [phases]string{"before (2 MN)", "reshard", "after (4 MN)"}
		fmt.Fprintf(w, "-- %s resharder --\n", strat)
		row(w, "phase", "tput(Mops)", "hit rate")
		for ph := 0; ph < phases; ph++ {
			total := hits[ph] + misses[ph]
			hr := 0.0
			if total > 0 {
				hr = float64(hits[ph]) / float64(total)
			}
			row(w, labels[ph], stats.Mops(ops[ph], phase), hr)
			sr.Phases = append(sr.Phases, phaseRow{Phase: labels[ph], Mops: stats.Mops(ops[ph], phase), HitRate: hr})
		}
		fmt.Fprintf(w, "reshards: %d, keys migrated: %d (of %d loaded), reshard time: %.2f ms, final MNs: %d\n",
			mc.Reshards, mc.MigratedKeys, keys, sr.ReshardMs, mc.NumNodes())
		rows = append(rows, sr)
	}
	if len(rows) == 2 && rows[1].ReshardMs > 0 {
		fmt.Fprintf(w, "doorbell reshard speedup vs serial: %.2fx\n",
			rows[0].ReshardMs/rows[1].ReshardMs)
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario": "elastic-reshard",
		"scale":    scale.String(),
		"keys":     keys,
		"clients":  clients,
		"results":  rows,
	})
}
