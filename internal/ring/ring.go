// Package ring implements the consistent-hash ring that routes keys to
// memory nodes in a multi-MN Ditto deployment.
//
// The paper's multi-MN compatibility note (§5.1) hash-partitions the key
// space across memory nodes. A fixed modulo would reshuffle almost every
// key when the node count changes; the ring instead places each node at
// Replicas pseudo-random points on a 64-bit circle and assigns a key to
// the first node point at or after the key's point. Adding a node then
// reassigns only the keys that land on the new node's arcs (~1/n of the
// key space), and removing a node reassigns only the removed node's keys
// — exactly the property live resharding needs so a scale-out migrates
// the minimum amount of cached data.
//
// Rings are immutable: With and Without return new rings, so a reshard
// can hold the old and new ring side by side and serve the forwarding
// window from both.
package ring

import "sort"

// DefaultReplicas is the number of virtual points per node. 128 points
// keep the per-node load within roughly ±10% of even (relative imbalance
// shrinks with 1/sqrt(replicas)).
const DefaultReplicas = 128

// point is one virtual node position on the circle.
type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over integer node IDs.
type Ring struct {
	replicas int
	points   []point // sorted by (hash, node)
	nodes    []int   // sorted member IDs
}

// New builds a ring with the given virtual-point count per node
// (DefaultReplicas when replicas <= 0) and initial members.
func New(replicas int, nodes ...int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	for _, n := range nodes {
		r = r.With(n)
	}
	return r
}

// Replicas returns the virtual-point count per node.
func (r *Ring) Replicas() int { return r.replicas }

// Nodes returns the member IDs in ascending order. The caller must not
// modify the returned slice.
func (r *Ring) Nodes() []int { return r.nodes }

// NumNodes returns the member count.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// Has reports whether node is a member.
func (r *Ring) Has(node int) bool {
	i := sort.SearchInts(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// With returns a new ring that additionally contains node. Adding an
// existing member returns the receiver unchanged.
func (r *Ring) With(node int) *Ring {
	if r.Has(node) {
		return r
	}
	nr := &Ring{
		replicas: r.replicas,
		points:   make([]point, 0, len(r.points)+r.replicas),
		nodes:    make([]int, 0, len(r.nodes)+1),
	}
	nr.nodes = append(nr.nodes, r.nodes...)
	nr.nodes = append(nr.nodes, node)
	sort.Ints(nr.nodes)
	nr.points = append(nr.points, r.points...)
	for rep := 0; rep < r.replicas; rep++ {
		nr.points = append(nr.points, point{hash: pointHash(node, rep), node: node})
	}
	sort.Slice(nr.points, func(i, j int) bool {
		if nr.points[i].hash != nr.points[j].hash {
			return nr.points[i].hash < nr.points[j].hash
		}
		return nr.points[i].node < nr.points[j].node
	})
	return nr
}

// Without returns a new ring that no longer contains node. Removing a
// non-member returns the receiver unchanged.
func (r *Ring) Without(node int) *Ring {
	if !r.Has(node) {
		return r
	}
	nr := &Ring{
		replicas: r.replicas,
		points:   make([]point, 0, len(r.points)-r.replicas),
		nodes:    make([]int, 0, len(r.nodes)-1),
	}
	for _, n := range r.nodes {
		if n != node {
			nr.nodes = append(nr.nodes, n)
		}
	}
	for _, pt := range r.points {
		if pt.node != node {
			nr.points = append(nr.points, pt)
		}
	}
	return nr
}

// Owner returns the node owning the given key point (see Point). It
// panics on an empty ring.
func (r *Ring) Owner(keyPoint uint64) int {
	if len(r.points) == 0 {
		panic("ring: Owner on empty ring")
	}
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= keyPoint
	})
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].node
}

// Point maps a key hash onto the circle. The table's FNV hash is too
// regular in its high bits for short keys, so it is remixed with the
// splitmix64 finalizer before placement; this also decorrelates ring
// position from the hash-table bucket choice within a node.
func Point(keyHash uint64) uint64 { return mix(keyHash) }

// pointHash positions virtual point rep of a node on the circle.
func pointHash(node, rep int) uint64 {
	return mix(uint64(node)<<32 | uint64(uint32(rep)) ^ 0xD1B54A32D192ED03)
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
