// Elastic: demonstrates Ditto's headline property — compute and memory
// scale independently, instantly, with no data migration — plus the
// second memory axis this reproduction adds: growing the memory POOL by
// whole nodes at runtime, with live resharding.
//
// Phase 1 runs 8 clients; phase 2 doubles the compute pool (throughput
// jumps immediately); phase 3 shrinks it back (resources reclaimed
// immediately). Then the cache memory is grown mid-run with zero
// disruption. Finally a 2-MN deployment scales out to 4 MNs while
// clients keep reading: the consistent-hash ring moves only the keys
// whose owner changed, every key stays readable through the migration
// window, and the new nodes end up serving their share.
//
//	go run ./examples/elastic
package main

import (
	"fmt"

	"ditto"
	"ditto/internal/workload"
)

const phase = 10 * ditto.Millisecond

func main() {
	env := ditto.NewEnv(3)
	const keys = 5000
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(keys*2, keys*512))

	// Load the key space.
	env.Go("loader", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		for i := 0; i < keys; i++ {
			c.Set(workload.KeyBytes(uint64(i)), make([]byte, 240))
		}
	})
	env.Run()

	counts := make([]int, 3) // completed ops per phase
	t0 := env.Now()
	spawn := func(seed int64, stop int64) {
		env.Go("client", func(p *ditto.Proc) {
			c := cluster.NewClient(p)
			g := workload.NewYCSB(workload.YCSBC, keys, 256)
			for p.Now() < stop {
				c.Get(workload.KeyBytes(g.Next(p.Rand()).Key))
				if ph := int((p.Now() - t0) / phase); ph >= 0 && ph < 3 {
					counts[ph]++
				}
			}
			_ = seed
		})
	}
	end := t0 + 3*phase
	for i := 0; i < 8; i++ {
		spawn(int64(i), end)
	}
	// Double the compute pool for the middle phase only — no resharding,
	// no migration, instant effect.
	env.GoAt(t0+phase, "scale-out", func(p *ditto.Proc) {
		for i := 0; i < 8; i++ {
			spawn(int64(100+i), t0+2*phase)
		}
	})
	env.Run()

	fmt.Println("compute elasticity (read-only YCSB-C, virtual time):")
	labels := []string{"8 clients ", "16 clients", "8 clients "}
	for i, n := range counts {
		mops := float64(n) / (float64(phase) / 1e9) / 1e6
		fmt.Printf("  phase %d (%s): %6.2f Mops\n", i+1, labels[i], mops)
	}

	fmt.Println("\nmemory elasticity: growing the cache mid-run (no migration):")
	fmt.Printf("  heap before: %d KB\n", cluster.MN.HeapBytes()/1024)
	cluster.GrowCache(keys * 256)
	fmt.Printf("  heap after:  %d KB (available to every client immediately)\n",
		cluster.MN.HeapBytes()/1024)

	nodeElasticity()
}

// nodeElasticity scales a multi-MN pool from 2 to 4 nodes mid-run: the
// second memory-elasticity axis, with live resharding instead of the
// stop-the-world migration of Figure 1's Redis experiment.
func nodeElasticity() {
	env := ditto.NewEnv(9)
	const keys = 4000
	pool := ditto.NewMultiCluster(env, 2, ditto.DefaultOptions(keys*2, keys*512))

	env.Go("loader", func(p *ditto.Proc) {
		c := pool.NewClient(p)
		for i := 0; i < keys; i++ {
			c.Set(workload.KeyBytes(uint64(i)), make([]byte, 240))
		}
	})
	env.Run()

	fmt.Println("\nnode elasticity: scaling the memory pool 2→4 MNs, live:")
	var during, duringMiss, after int
	env.Go("reader", func(p *ditto.Proc) {
		c := pool.NewClient(p)
		pool.AddNode()
		for pool.Resharding() { // reads racing the first migration
			if _, ok := c.Get(workload.KeyBytes(uint64(p.Rand().Int63n(keys)))); ok {
				during++
			} else {
				duringMiss++
			}
		}
		pool.AddNode()
		pool.WaitReshard(p)
		for i := 0; i < keys; i++ {
			if _, ok := c.Get(workload.KeyBytes(uint64(i))); ok {
				after++
			}
		}
	})
	env.Run()

	fmt.Printf("  reads served during migration: %d hits, %d misses\n", during, duringMiss)
	fmt.Printf("  keys readable after scale-out: %d / %d\n", after, keys)
	fmt.Printf("  keys migrated: %d across %d reshards (modulo routing would move nearly all %d)\n",
		pool.MigratedKeys, pool.Reshards, keys)
	for i := 0; i < pool.NumNodes(); i++ {
		fmt.Printf("  MN %d holds %4d KB\n", pool.NodeID(i), pool.Node(i).MN.UsedBytes/1024)
	}
}
