package typederr_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/typederr"
)

// TestFixture runs typederr over its testdata package, loaded as
// ditto/internal/core (a swept fault-path package): bare panics are
// flagged, typed-error raises, recover-scope re-raises, and annotated
// config validation are not.
func TestFixture(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analysis.RunFixture(t, l, typederr.Analyzer, "../testdata/typederr", "ditto/internal/core")
}

// TestUnsweptPackage: the same fixture outside core/rdma produces no
// findings — the convention binds only the fault-path layers.
func TestUnsweptPackage(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("../testdata/typederr", "ditto/internal/hashtable")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{typederr.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("typederr flagged an unswept package: %v", diags)
	}
}
