// Package fairness implements the cache-sharing extension discussed in
// §4.4 of the paper: because Ditto clients and applications cooperate on
// the same compute nodes, a selfish application could free-ride on objects
// other tenants cached. The paper points to FairRide's *expected delaying*
// (Pu et al., NSDI'16): serve a hit on another tenant's object only after
// a delay equivalent to the expected cost of a miss, removing the
// incentive to free-ride while still sharing the data.
//
// The wrapper tags each cached object with the inserting tenant and
// applies the expected delay (probabilistically, per FairRide's blocking
// probability) when a different tenant hits it.
package fairness

import "ditto/internal/core"

// ownerHeader is the tenant tag stored ahead of each value.
const ownerHeader = 1

// Client wraps a Ditto client with tenant tagging and expected delaying.
type Client struct {
	inner  *core.Client
	tenant byte
	// MissCost is the expected cost of a miss (virtual ns); the delay
	// applied to cross-tenant hits.
	MissCost int64
	// BlockProb is the probability a cross-tenant hit is delayed
	// (FairRide's expected delaying uses the sharing probability; 1.0
	// always delays).
	BlockProb float64

	// CrossHits counts hits on other tenants' objects; Delayed counts how
	// many of them were delayed.
	CrossHits, Delayed int64
}

// New wraps inner for the given tenant id. missCost is the virtual-time
// delay equivalent to fetching from backing storage (the paper's 500 µs).
func New(inner *core.Client, tenant byte, missCost int64) *Client {
	return &Client{inner: inner, tenant: tenant, MissCost: missCost, BlockProb: 1}
}

// Inner exposes the wrapped client (stats, weights).
func (c *Client) Inner() *core.Client { return c.inner }

// Set stores a value tagged with the calling tenant.
func (c *Client) Set(key, value []byte) {
	buf := make([]byte, ownerHeader+len(value))
	buf[0] = c.tenant
	copy(buf[ownerHeader:], value)
	c.inner.Set(key, buf)
}

// Get fetches a value; hits on objects inserted by another tenant are
// served after the expected miss delay, so caching-as-a-free-rider buys
// nothing.
func (c *Client) Get(key []byte) ([]byte, bool) {
	raw, ok := c.inner.Get(key)
	if !ok {
		return nil, false
	}
	if len(raw) < ownerHeader {
		return nil, false
	}
	owner, value := raw[0], raw[ownerHeader:]
	if owner != c.tenant {
		c.CrossHits++
		if c.BlockProb >= 1 || c.inner.Proc().Rand().Float64() < c.BlockProb {
			c.Delayed++
			c.inner.Proc().Sleep(c.MissCost)
		}
	}
	return value, true
}

// Delete removes key (any tenant may invalidate; cache semantics).
func (c *Client) Delete(key []byte) bool { return c.inner.Delete(key) }

// Close flushes the wrapped client.
func (c *Client) Close() { c.inner.Close() }
