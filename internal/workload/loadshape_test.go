package workload

import (
	"fmt"
	"testing"
)

// TestShapePinned pins the exact envelope values at fixed sample times.
// The chaos bench derives its arrival sequence from these rates, so any
// drift here silently changes every seed-reproducible benchmark — the
// goldens make such a change an explicit test edit.
func TestShapePinned(t *testing.T) {
	flash := FlashCrowd(1, 5, 1_000, 2_000, 3_000, 4_000)
	diurnal := Diurnal(0.5, 2, 10_000)
	cases := []struct {
		name  string
		shape *Shape
		t     int64
		want  string // Rate formatted to 6 decimals
	}{
		{"steady-any", Steady(), 123_456, "1.000000"},
		{"flash-before", flash, 0, "1.000000"},
		{"flash-ramp-start", flash, 1_000, "1.000000"},
		{"flash-ramp-quarter", flash, 1_500, "2.000000"},
		{"flash-ramp-mid", flash, 2_000, "3.000000"},
		{"flash-peak-start", flash, 3_000, "5.000000"},
		{"flash-peak-hold", flash, 5_999, "5.000000"},
		{"flash-decay-mid", flash, 8_000, "3.000000"},
		{"flash-after", flash, 10_000, "1.000000"},
		{"diurnal-trough", diurnal, 0, "0.500000"},
		{"diurnal-rise", diurnal, 2_500, "1.250000"},
		{"diurnal-peak", diurnal, 5_000, "2.000000"},
		{"diurnal-fall", diurnal, 7_500, "1.250000"},
		{"diurnal-wrap", diurnal, 10_000, "0.500000"},
		{"diurnal-second-period", diurnal, 15_000, "2.000000"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := fmt.Sprintf("%.6f", c.shape.Rate(c.t)); got != c.want {
				t.Fatalf("Rate(%d) = %s, want %s", c.t, got, c.want)
			}
		})
	}
}

// TestShapeGap checks the rate→gap inversion and its 1ns floor.
func TestShapeGap(t *testing.T) {
	flash := FlashCrowd(1, 4, 0, 0, 1_000, 0)
	if g := flash.Gap(8_000, 500); g != 2_000 {
		t.Fatalf("peak gap = %d, want 2000", g)
	}
	if g := flash.Gap(8_000, 5_000); g != 8_000 {
		t.Fatalf("baseline gap = %d, want 8000", g)
	}
	if g := flash.Gap(2, 500); g != 1 {
		t.Fatalf("gap floor = %d, want 1", g)
	}
}

// TestShapeClamps checks the constructors sanitize degenerate inputs.
func TestShapeClamps(t *testing.T) {
	if r := FlashCrowd(0, 0.5, 0, 1, 1, 1).Rate(0); r != 1 {
		t.Fatalf("degenerate flash base: Rate=%v, want 1", r)
	}
	if p := FlashCrowd(2, 1, 0, 1, 1, 1).Peak(); p != 2 {
		t.Fatalf("peak below base not clamped: %v", p)
	}
	d := Diurnal(-1, 0, 0)
	if r := d.Rate(0); r != 0.1 {
		t.Fatalf("degenerate diurnal trough: Rate=%v, want 0.1", r)
	}
}
