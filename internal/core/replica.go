package core

// Hot-key replication with load-aware read spreading.
//
// The consistent-hash ring (internal/ring) maps every key to exactly one
// memory node, so a zipfian workload saturates the node owning the hot
// tail while its peers idle. This layer relieves that skew with the
// hotness signal Ditto's clients already maintain (§4.2.2/§4.3): when a
// hit's logical frequency — remote snapshot + pending FC-cache delta +
// this hit, the accounting convention shared by noteHit/updateExt —
// crosses MultiCluster.HotThreshold, the key is PROMOTED: its value is
// materialized on the R ring-successor nodes of its primary owner
// (ring.OwnersN) and recorded in the cluster-shared hot-key directory
// (internal/hotset). Reads of a promoted key then rotate across the
// primary and its replicas (spreading the RNIC load 1/(1+R)); writes go
// through the primary first and then update every replica with
// publish-CAS-ordered verb plans — the same setPlan/delPlan declared in
// plan.go — executed under MultiCluster.ReplicaStrategy (exec.Serial or
// exec.Doorbell, identical results).
//
// Observable equivalence with the unreplicated cache rests on one
// invariant: AFTER ANY COMPLETED WRITE, EVERY COPY A SPREAD READ CAN
// REACH EQUALS THAT WRITE. It is maintained by:
//
//   - Per-key write serialization: writers and maintainers hold the
//     hotset entry lock across primary write + replica fan-out, so
//     replica update order cannot diverge across concurrent writers.
//   - Invalidate-first write-through: a replicated write, under the
//     entry lock, DELETES every replica copy before its primary
//     publishing CAS and only then re-materializes them. A spreadable
//     replica therefore only ever holds the primary's current value or
//     nothing (a probe miss falls back to the primary): once a reader
//     has seen a new value from any copy, no copy can serve the old one
//     — reads stay monotonic with no reader-side locking. Without the
//     invalidation, a reader could see the primary's new value and then
//     a not-yet-updated replica's old one mid-fan-out: a non-monotonic
//     pair no single-copy cache can produce.
//   - Write-repair + warming: a writer that found NO entry runs
//     unreplicated but REGISTERED (hotset.BeginWrite — pure
//     bookkeeping, nothing ever blocks on it, so promotion cannot
//     starve even when hot keys always have writes in flight), then
//     re-checks the directory after its publishing CAS and, if an entry
//     appeared meanwhile, repairs it before returning: re-read the
//     primary under the entry lock and push its CURRENT value (not the
//     writer's own — concurrent repairs then converge regardless of
//     lock order) to every replica. The registry closes the divergence
//     window the lock cannot see: promotion publishes its entry as
//     WARMING when any registered write is in flight at publish time,
//     readers refuse to spread from warming entries, and the entry
//     turns spreadable only when a repair or replicated fan-out
//     completes with no other registered writer left — a lock-held
//     moment at which every copy provably equals the primary, after
//     which unreplicated writers can no longer exist (any new writer
//     finds the entry and goes through the lock). Entries are BORN
//     warming: materialization itself is a fan-out over copies readers
//     must not spread to yet.
//   - Epoch staleness: entries record the routing epoch of promotion. A
//     ring switch bumps the epoch, so readers refuse to spread from
//     stale entries and writers demote them on first touch. Promotions
//     are refused while a reshard window is open, an in-flight
//     promotion self-demotes on the epoch change, and the resharder
//     demotes every entry — dissolving every replica copy — BEFORE its
//     migration scan begins (demoteAll), so the scan only ever
//     encounters single copies: a replica copy reaching the scan could
//     make the authoritative primary copy look like a migration
//     duplicate and get it garbage-collected.
//
// Demotion is load-aware in the other direction too: replication pays
// 1+R writes per Set, so an entry whose write count overtakes its spread
// reads (demoteMinWrites/demoteWriteReadRatio) is dropped, and the
// directory evicts its least-recently-read entry when full. A replica
// miss (copy not yet materialized, or evicted) silently falls back to
// the primary — spreading can never turn a present key into a miss.

import (
	"fmt"

	"ditto/internal/exec"
	"ditto/internal/hashtable"
	"ditto/internal/hotset"
	"ditto/internal/rdma"
	"ditto/internal/ring"
)

// defaultMaxHotKeys bounds the hot-key directory when
// EnableHotKeyReplication is given no explicit capacity. The hot tail of
// a zipfian workload is short — a few hundred keys cover most of the
// skewed mass — and every entry costs 1+R object copies of heap.
const defaultMaxHotKeys = 256

// promoQueueCap bounds the per-operation promotion candidate queue; hits
// beyond it re-candidate on a later operation.
const promoQueueCap = 16

// Write-heavy demotion: an entry is dropped once it has absorbed at
// least demoteMinWrites write-throughs AND its writes exceed
// demoteWriteReadRatio times its spread reads since promotion — at that
// point the 1+R-copy write fan-out costs more RNIC budget than read
// spreading recovers.
const (
	demoteMinWrites      = 16
	demoteWriteReadRatio = 2
)

// EnableHotKeyReplication turns on hot-key replication: keys whose hit
// frequency reaches threshold are copied to the factor ring-successor
// nodes of their primary owner and their reads spread across all copies.
// maxHotKeys caps the directory (defaultMaxHotKeys when <= 0). Call it
// before creating clients — the promotion signal is installed when a
// client connects. Replication is usable on a single-node pool (it just
// never promotes) and survives AddNode/RemoveNode: a ring switch demotes
// every entry and still-hot keys re-promote under the new ring.
func (mc *MultiCluster) EnableHotKeyReplication(factor int, threshold uint64, maxHotKeys int) {
	if factor < 1 {
		factor = 1
	}
	if threshold < 1 {
		threshold = 1
	}
	if maxHotKeys <= 0 {
		maxHotKeys = defaultMaxHotKeys
	}
	mc.ReplicaFactor = factor
	mc.HotThreshold = threshold
	mc.hot = hotset.New(mc.Env, maxHotKeys)
	for _, id := range mc.order {
		mc.installEvictHook(id, mc.nodes[id])
	}
}

// installEvictHook points one node's eviction-victim hook at the hot-key
// directory: evicting a promoted key's primary copy flags its entry so
// the next directory touch demotes it — otherwise the replicas would
// keep serving a key the cache decided to drop. The hook sees only the
// victim's key hash (slots store no key bytes) and must not issue verbs,
// so it marks and returns; every eviction path (sample plans, the
// background reclaimer, bucket evictions) reports through it.
func (mc *MultiCluster) installEvictHook(id int, cl *Cluster) {
	cl.onEvictHash = func(kh uint64) { mc.hot.MarkPrimaryEvicted(id, kh) }
}

// noteHotCandidate is the Client.onHit hook: it queues a key for
// promotion when its observed hit frequency crosses the threshold. It
// must not issue verbs (it runs inside the hit path), so the promotion
// itself — which reads the value and materializes copies — is deferred
// to drainPromotions at the next operation boundary. The hit's decoded
// tenant rides along: replication multiplies a key's footprint by 1+R,
// so an over-quota tenant's keys are refused promotion — a noisy
// neighbor cannot amplify its own overage through the hot tail.
func (m *MultiClient) noteHotCandidate(key []byte, tenant TenantID, freq uint64) {
	mc := m.mc
	if freq < mc.HotThreshold || mc.snap().oldRing != nil || mc.NumNodes() < 2 {
		return
	}
	if mc.TenantOverQuota(tenant) {
		return
	}
	if mc.hot.Lookup(key) != nil || len(m.promo) >= promoQueueCap {
		return
	}
	m.promo = append(m.promo, promoCand{key: append([]byte(nil), key...), tenant: tenant})
}

// drainPromotions promotes every queued candidate. Called at the top of
// Get/MGet/Set/MSet, so promotion verbs never extend the operation that
// detected the hotness.
func (m *MultiClient) drainPromotions() {
	if len(m.promo) == 0 {
		return
	}
	pending := m.promo
	m.promo = nil
	for _, cand := range pending {
		m.promote(cand.key, cand.tenant)
	}
}

// promote materializes key's value on its ring-successor nodes and
// publishes the hotset entry. The entry is inserted "born locked", so no
// writer can interleave with materialization; unreplicated writes
// already in flight are reconciled by their own write-repair re-check
// (see the file comment). Promotion aborts when the key is gone (deleted
// or evicted since the qualifying hit) and demotes itself when a ring
// switch lands mid-materialization.
func (m *MultiClient) promote(key []byte, tenant TenantID) {
	mc := m.mc
	if mc.snap().oldRing != nil || mc.hot.Lookup(key) != nil {
		return
	}
	if mc.TenantOverQuota(tenant) {
		return // usage moved since the qualifying hit; re-candidate later
	}
	// Capture the epoch BEFORE deriving the successor list: everything
	// from here to Insert can yield (the victim demotions below issue
	// verbs), and a ring switch in one of those yields must make the
	// entry's final epoch check fail — an entry recording the
	// post-switch epoch over pre-switch owners would evade both that
	// check and the resharder's window-opening sweep, putting replica
	// copies in front of the migration scan.
	route := mc.snap()
	epoch := route.epoch
	owners := route.hashRing.OwnersN(ring.Point(hashtable.KeyHash(key)), 1+mc.ReplicaFactor)
	if len(owners) < 2 {
		return // single-node pool: nothing to spread to
	}
	now := m.p.Now()
	// Full directory: demote the least-recently-read entry to make room.
	for mc.hot.Len() >= mc.hot.Limit() {
		v := mc.hot.Victim()
		if v == nil {
			return // every entry under maintenance; retry on a later hit
		}
		if e := mc.hot.Lock(m.p, v.Key); e != nil {
			m.demoteLocked(e)
		}
	}
	// The demotions above may have yielded: re-validate before the
	// atomic (yield-free) check-and-insert.
	if cur := mc.snap(); cur.oldRing != nil || cur.epoch != epoch {
		return
	}
	e := &hotset.Entry{
		Key:      append([]byte(nil), key...),
		KeyHash:  hashtable.KeyHash(key),
		Epoch:    epoch,
		Primary:  owners[0],
		Replicas: owners[1:],
		Tenant:   byte(tenant),
	}
	e.Touch(now) // not Victim's immediate minimum before its first read
	// Born warming: no reader may spread until materialization is
	// complete AND no unreplicated write that could supersede the
	// snapshot is in flight.
	e.Warming = true
	if !mc.hot.Insert(m.p, e) {
		return // raced another promoter
	}
	val, ok := m.readQuiet(e.Primary, key)
	if !ok {
		mc.hot.Remove(e) // key vanished since the qualifying hit
		return
	}
	if err := m.updateReplicas(e, key, val); err != nil {
		// Promotion is opportunistic maintenance: a fan-out that cannot
		// be driven to completion must not take down the reader whose
		// hit triggered it. Take the copies back; the underlying fault
		// resurfaces loudly on the next direct write.
		m.demoteLocked(e)
		return
	}
	if e.Epoch != mc.snap().epoch {
		// A reshard window opened mid-materialization: the copies sit on
		// successors of a ring that is already being replaced. Take them
		// back rather than publish a stale entry.
		m.demoteLocked(e)
		return
	}
	// An unreplicated write in flight right now may have published a
	// value our snapshot predates: stay warming (readers won't spread)
	// until that writer's repair — or a later replicated fan-out —
	// observes write-quiescence and clears it.
	e.Warming = mc.hot.InflightWrites(key) > 0
	mc.hot.Unlock(e)
	mc.Promotions++
}

// getSpread serves one read of a replicated key from its rotation-chosen
// copy. served=false falls back to the routed (primary) path: the key is
// not replicated, its entry is stale, the rotation chose the primary
// itself, or the chosen replica missed (copy not yet materialized, or
// evicted) — a replica miss is silent (getProbe), so the fall-back
// counts exactly one logical operation, like an unreplicated Get.
func (m *MultiClient) getSpread(key []byte) (val []byte, ok, served bool) {
	mc := m.mc
	e := mc.hot.Lookup(key)
	if e == nil {
		return nil, false, false
	}
	if s := mc.snap(); e.Epoch != s.epoch || s.oldRing != nil {
		m.demoteKey(key) // ring moved under the replica set
		return nil, false, false
	}
	if e.Evicted {
		// The primary copy was evicted: the cache dropped this key, so
		// the replicas must not resurrect it. Dissolve them and fall back
		// to the routed path (which will miss, as an unreplicated cache
		// would).
		m.demoteKey(key)
		return nil, false, false
	}
	if e.Warming {
		// Pre-entry writes may not have been repaired into the copies
		// yet: serve through the primary until the entry validates.
		e.NoteRead(m.p.Now())
		return nil, false, false
	}
	target := e.ReadTarget(m.p.Now())
	if target == e.Primary {
		return nil, false, false
	}
	c := m.clientFor(target)
	if c == nil {
		return nil, false, false
	}
	var v []byte
	var hit bool
	if rdma.CatchUnreachable(func() { v, hit = c.getProbe(key) }) != nil {
		// The replica fail-stopped mid-probe: its copy died with it. Fall
		// back to the primary; the stale entry demotes on a later touch.
		return nil, false, false
	}
	if hit {
		mc.SpreadReads++
		return v, true, true
	}
	return nil, false, false
}

// mgetSpread is getSpread over a batch: replica-targeted keys are probed
// with one batched stat-silent MGet per chosen node, hits fill
// vals/oks, and every other index — unreplicated, stale-entry,
// primary-targeted, or probe-missed — is returned for the routed path.
func (m *MultiClient) mgetSpread(keys [][]byte, vals [][]byte, oks []bool) []int {
	mc := m.mc
	remaining := make([]int, 0, len(keys))
	var groups map[int][]int
	for i := range keys {
		e := mc.hot.Lookup(keys[i])
		if e == nil {
			remaining = append(remaining, i)
			continue
		}
		if s := mc.snap(); e.Epoch != s.epoch || s.oldRing != nil || e.Evicted {
			m.demoteKey(keys[i])
			remaining = append(remaining, i)
			continue
		}
		if e.Warming {
			e.NoteRead(m.p.Now())
			remaining = append(remaining, i)
			continue
		}
		target := e.ReadTarget(m.p.Now())
		if target == e.Primary || m.clientFor(target) == nil {
			remaining = append(remaining, i)
			continue
		}
		if groups == nil {
			groups = make(map[int][]int)
		}
		groups[target] = append(groups[target], i)
	}
	for _, node := range mc.snap().fanoutOrder(groups) {
		idxs, ok := groups[node]
		if !ok {
			continue
		}
		missed, ran := m.mgetGroup(node, idxs, keys, vals, oks, true)
		if ran {
			mc.SpreadReads += int64(len(idxs) - len(missed))
		}
		remaining = append(remaining, missed...)
	}
	return remaining
}

// setReplicated writes one replicated key with e's lock HELD, in
// invalidate-first order: delete every replica copy, publish the
// primary's CAS, then re-materialize the replicas. From the moment the
// new value is readable on the primary, every replica is empty or
// already updated — a spread read can never return the superseded
// value, and after the unlock every copy equals this write. Stale and
// write-heavy entries are demoted instead (the demote's invalidation
// also completes before the write returns).
func (m *MultiClient) setReplicated(e *hotset.Entry, key, value []byte) error {
	mc := m.mc
	// An Evicted entry counts as stale: its primary copy is gone, so the
	// copy set must be dissolved before this write lands unreplicated.
	route := mc.snap()
	stale := e.Epoch != route.epoch || route.oldRing != nil || e.Evicted
	e.Writes++
	writeHeavy := e.Writes >= demoteMinWrites && e.Writes > demoteWriteReadRatio*e.Reads
	// A tenant that went over quota since promotion loses its replica
	// copies on the next write-through: demotion dissolves the 1+R-copy
	// amplification of its footprint, the same direction quota eviction
	// pushes from below.
	overQuota := mc.TenantOverQuota(TenantID(e.Tenant))
	if stale || writeHeavy || overQuota {
		// Demote, then store unreplicated — registered for the store's
		// span exactly like Set's no-entry branch, so a promotion that
		// re-publishes this key mid-store comes up warming and is
		// repaired before this write returns. A node fail-stop mid-store
		// must not leak the registration (a forever-registered write
		// would pin the entry warming permanently), so the registration
		// is released before the typed failure resurfaces.
		m.demoteLocked(e)
		mc.hot.BeginWrite(key)
		err := catchUnavailable(func() { m.setDirect(key, value) })
		if err == nil {
			err = m.resyncAfterWrite(key)
		}
		mc.hot.EndWrite(key)
		return err
	}
	m.invalidateReplicas(e) // replicas empty before the new value is readable
	if err := catchUnavailable(func() { m.setDirect(key, value) }); err != nil {
		// The primary's owner fail-stopped before the write landed. The
		// replicas are already invalidated — no copy can serve the old
		// value — so dissolving the entry (which releases the lock, so
		// future writers are not deadlocked behind a live-but-failed
		// owner) leaves the key simply absent, then the typed failure
		// surfaces to the caller.
		m.demoteLocked(e)
		return err
	}
	if err := m.updateReplicas(e, key, value); err != nil {
		// The primary holds the new value but the fan-out could not be
		// driven to completion (a misconfigured table). Dissolve the
		// copy set — the key stays correct unreplicated — and surface
		// the configuration fault.
		m.demoteLocked(e)
		return err
	}
	if e.Warming && mc.hot.InflightWrites(key) == 0 {
		// Every pre-entry writer has completed (and repaired): our
		// fan-out just made all copies equal to the primary, so the
		// entry is safe to spread from.
		e.Warming = false
	}
	mc.hot.Unlock(e)
	return nil
}

// updateReplicas stores (key, value) on every replica node of e as a
// fan-out of ordinary setPlans (plan.go) run under ReplicaStrategy; any
// plan that hits a complication (full bucket, lost CAS) finishes through
// the serial retry path, exactly as a client Set would. Replica stores
// are maintenance: they keep the per-node copies, but do not count as
// logical Sets in any client's Stats.
func (m *MultiClient) updateReplicas(e *hotset.Entry, key, value []byte) error {
	plans := make([]*setPlan, 0, len(e.Replicas))
	clients := make([]*Client, 0, len(e.Replicas))
	run := make([]exec.Plan, 0, len(e.Replicas))
	for _, id := range e.Replicas {
		c := m.clientFor(id)
		if c == nil {
			continue // node left the pool; the stale entry is demoted on next touch
		}
		pl := c.newSetPlan(key, value)
		plans = append(plans, pl)
		clients = append(clients, c)
		run = append(run, pl)
	}
	if len(run) == 0 {
		return nil
	}
	// A replica that fail-stops mid-fan-out is skipped: its copies died
	// with it, and a missing copy is always safe — a spread read that
	// probe-misses falls back to the primary. (Under Doorbell the batch
	// has partial semantics: live siblings' verbs applied, the dead
	// node's did not; the per-replica finish below drives each survivor
	// to completion from whatever outcome its plan reached.)
	_ = rdma.CatchUnreachable(func() { exec.Run(m.mc.ReplicaStrategy, run...) })
	// A store that exhausts its retry budget (ErrNoProgress: a
	// misconfigured table) is remembered but does not abandon the
	// remaining replicas mid-store; the caller demotes the entry, so no
	// partial copy set outlives the error.
	var firstErr error
	for i, pl := range plans {
		c, pl := clients[i], pl
		if c.cl.dead {
			continue
		}
		var err error
		if rdma.CatchUnreachable(func() { err = m.finishReplicaStore(c, key, value, pl) }) != nil {
			continue // this replica fail-stopped mid-store; skip it
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// finishReplicaStore drives one replica's store to completion from
// whatever outcome the fan-out attempt reached, mirroring Client.Set's
// retry loop (evict on full buckets, fresh snapshot on a lost CAS)
// without its stats accounting. A store that exhausts its retry budget
// returns an ErrNoProgress-wrapped error (a misconfigured table) rather
// than completing partially.
func (m *MultiClient) finishReplicaStore(c *Client, key, value []byte, pl *setPlan) error {
	for attempt := 0; ; attempt++ {
		switch pl.outcome {
		case setDone:
			return nil
		case setNoFree:
			if !c.bucketEvict(pl.scanned) {
				c.reclaimOldestHistory(pl.scanned)
			}
		case setCASLost:
			// Lost a race (concurrent writer or this fan-out's own
			// evictions): retry with a fresh snapshot.
		}
		if attempt > 4096 {
			return fmt.Errorf("%w: replica store stalled (table misconfigured?)", ErrNoProgress)
		}
		pl = c.newSetPlan(key, value)
		exec.RunSerial(pl)
	}
}

// readQuiet reads key's value from one node with raw get plans — no
// stats, no frequency touch, no observer report — for maintenance reads
// (promotion's value snapshot) that must not perturb the hit accounting.
func (m *MultiClient) readQuiet(node int, key []byte) ([]byte, bool) {
	c := m.clientFor(node)
	if c == nil {
		return nil, false
	}
	var val []byte
	var hit bool
	if rdma.CatchUnreachable(func() {
		for attempt := 0; attempt < getRetries; attempt++ {
			pl := c.newGetPlan(key)
			exec.RunSerial(pl)
			if pl.hit {
				val, hit = append([]byte(nil), pl.dec.value...), true
				return
			}
			if !pl.stale {
				return
			}
		}
	}) != nil {
		// The node fail-stopped mid-read: its copy is gone. Callers treat
		// a maintenance-read miss as "key vanished" and demote — exactly
		// right for a crashed primary.
		return nil, false
	}
	return val, hit
}

// invalidateReplicas deletes every replica copy of e — a fan-out of
// delPlans (plan.go) under ReplicaStrategy. delPlans have no fallback
// edges (a lost delete CAS means someone else already removed or
// replaced that copy), so one pass suffices. Replica nodes that left the
// pool are skipped: their copies left with them.
func (m *MultiClient) invalidateReplicas(e *hotset.Entry) {
	run := make([]exec.Plan, 0, len(e.Replicas))
	for _, id := range e.Replicas {
		if c := m.clientFor(id); c != nil {
			run = append(run, c.newDelPlan(e.Key))
		}
	}
	if len(run) > 0 {
		// A replica that fail-stops mid-invalidation needs none: its
		// copies died with it, which is exactly the post-state an
		// invalidation establishes. Live siblings' deletes still apply
		// (partial doorbell semantics), so the invariant — no spreadable
		// copy holds a superseded value — survives the crash.
		_ = rdma.CatchUnreachable(func() { exec.Run(m.mc.ReplicaStrategy, run...) })
	}
}

// demoteLocked removes a LOCKED entry from the replicated set:
// invalidate every replica copy, then drop the entry (which releases the
// lock and wakes waiters into the unreplicated path).
func (m *MultiClient) demoteLocked(e *hotset.Entry) {
	m.invalidateReplicas(e)
	m.mc.hot.Remove(e)
	m.mc.Demotions++
}

// resyncAfterWrite is the registered unreplicated write paths' post-CAS
// re-check (callers still hold their BeginWrite registration): if an
// entry exists for a key that was just written (or deleted) OUTSIDE the
// entry lock — a promotion raced the write — repair it before the write
// returns. The repair re-reads the primary under the lock and pushes
// its CURRENT value to every replica (so concurrent repairs converge on
// the newest unreplicated CAS, whichever order their locks are granted
// in), clearing the warming state when it is the last registered writer;
// a primary miss means the key was deleted, so the entry is demoted
// instead. Stale entries are demoted rather than repaired, matching
// every other touch of a stale entry. On the common no-entry case this
// is a single map lookup.
func (m *MultiClient) resyncAfterWrite(key []byte) error {
	e := m.mc.hot.Lock(m.p, key)
	if e == nil {
		return nil
	}
	if s := m.mc.snap(); e.Epoch != s.epoch || s.oldRing != nil || e.Evicted {
		m.demoteLocked(e)
		return nil
	}
	e.Writes++
	val, ok := m.readQuiet(e.Primary, key)
	if !ok {
		m.demoteLocked(e)
		return nil
	}
	if err := m.updateReplicas(e, key, val); err != nil {
		m.demoteLocked(e)
		return err
	}
	if m.mc.hot.InflightWrites(key) == 1 {
		// This repair is the last registered writer standing: the value
		// just pushed is the primary's current one and no unreplicated
		// CAS can land after it (any new writer sees the entry), so the
		// entry is safe to spread from.
		e.Warming = false
	}
	m.mc.hot.Unlock(e)
	return nil
}

// demoteKey demotes key's entry if one exists, waiting out any
// maintainer currently holding it. It is the read paths' lazy cleanup of
// stale entries and the reshard sweep's workhorse; on the (common) miss
// it is one map lookup.
func (m *MultiClient) demoteKey(key []byte) {
	if e := m.mc.hot.Lock(m.p, key); e != nil {
		m.demoteLocked(e)
	}
}

// demoteAll demotes every entry in the directory — the resharder's
// window-opening sweep, run before any table scanning. Entries locked
// by concurrent maintainers (including an in-flight promotion, which
// self-demotes once it observes the epoch change) are waited for via
// Lock; entries that vanish meanwhile are skipped (Lock returns nil).
func (m *MultiClient) demoteAll() {
	for _, k := range m.mc.hot.Keys() {
		m.demoteKey(k)
	}
}
