// Verb-call classification shared by the verbplan and lockverb
// checkers.

package analysis

import (
	"go/ast"
	"go/types"
)

// RDMAPath is the import path of the transport package whose verb API
// the analyzers guard. When the pluggable-transport refactor lands, the
// Transport interface's methods join endpointVerbs and the checkers
// follow without restructuring.
const RDMAPath = "ditto/internal/rdma"

// ExecPath is the verb-plan executor's import path.
const ExecPath = "ditto/internal/exec"

// endpointVerbs are the rdma.Endpoint methods that put traffic on the
// wire: the one-sided verbs, the doorbell batch post, and the two-sided
// RPC. Accessors (Proc, Node) are not verbs.
var endpointVerbs = map[string]bool{
	"Read":       true,
	"Write":      true,
	"WriteAsync": true,
	"CAS":        true,
	"FAA":        true,
	"FAAAsync":   true,
	"PostBatch":  true,
	"RPC":        true,
}

// RDMAVerb reports whether call issues an rdma verb — an
// rdma.Endpoint verb method, or the package-level rdma.PostMulti
// multi-endpoint doorbell — returning a display name like
// "rdma.Endpoint.Read".
func RDMAVerb(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || FuncPkgPath(fn) != RDMAPath {
		return "", false
	}
	if recv := ReceiverNamed(fn); recv != nil {
		if recv.Obj().Name() == "Endpoint" && endpointVerbs[fn.Name()] {
			return "rdma.Endpoint." + fn.Name(), true
		}
		return "", false
	}
	if fn.Name() == "PostMulti" {
		return "rdma.PostMulti", true
	}
	return "", false
}

// BlockingVerbIssue reports whether call can block on verb traffic:
// a direct rdma verb, or a plan-executor entry point — the free
// functions (exec.Run, exec.RunSerial, exec.RunDoorbell) and the
// pooled runners' methods (Runner.RunOne/RunPlans, SerialRunner.Run,
// DoorbellRunner.Run) — which issue verbs on the caller's behalf.
func BlockingVerbIssue(info *types.Info, call *ast.CallExpr) (string, bool) {
	if name, ok := RDMAVerb(info, call); ok {
		return name, true
	}
	fn := CalleeFunc(info, call)
	if fn == nil || FuncPkgPath(fn) != ExecPath {
		return "", false
	}
	if recv := ReceiverNamed(fn); recv != nil {
		switch recv.Obj().Name() {
		case "Runner":
			if fn.Name() == "RunOne" || fn.Name() == "RunPlans" {
				return "exec.Runner." + fn.Name(), true
			}
		case "SerialRunner", "DoorbellRunner":
			if fn.Name() == "Run" {
				return "exec." + recv.Obj().Name() + ".Run", true
			}
		}
		return "", false
	}
	switch fn.Name() {
	case "Run", "RunSerial", "RunDoorbell":
		return "exec." + fn.Name(), true
	}
	return "", false
}
