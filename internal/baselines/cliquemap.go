package baselines

import (
	"bytes"
	"encoding/binary"

	"ditto/internal/cachealgo"
	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/simcache"
)

// CMAlgo selects CliqueMap's server-side caching algorithm.
type CMAlgo int

// The two CliqueMap variants evaluated in the paper (§5.1).
const (
	CMLRU CMAlgo = iota
	CMLFU
)

// String names the variant.
func (a CMAlgo) String() string { return [...]string{"CM-LRU", "CM-LFU"}[a] }

// CMSyncEvery is how many accesses a client buffers before shipping its
// access records to the server (CliqueMap syncs periodically; the exact
// period is a deployment knob).
const CMSyncEvery = 100

// cmRecordBytes is the wire size of one access record (key hash + count).
const cmRecordBytes = 12

// CMCluster reimplements CliqueMap per the paper's description: Gets are
// client-initiated one-sided READs against an RMA-readable index; Sets are
// RPCs executed by server CPUs; clients record access information locally
// and ship it to the server periodically, where server CPUs merge it into
// an exact LRU/LFU structure that drives evictions. Replication and fault
// tolerance are disabled, as in the paper's comparison.
type CMCluster struct {
	Algo   CMAlgo
	MN     *memnode.MemNode
	Layout hashtable.Layout

	capacityBytes int
	usedBytes     int

	// Server-side state (MN CPU territory).
	index map[uint64]cmEntry // key hash → slot index
	order *simcache.Cache    // exact recency/frequency structure
	alloc *serverAlloc

	// Evictions counts server-side evictions.
	Evictions int64
	// SyncRecords counts access records merged by the server.
	SyncRecords int64
}

type cmEntry struct {
	slotIdx int
	addr    uint64
	size    int
}

// serverAlloc is the server's trivial local allocator (monolithic-server
// memory management costs no verbs).
type serverAlloc struct {
	next uint64
	end  uint64
	free map[int][]uint64
}

func (a *serverAlloc) alloc(size int) (uint64, bool) {
	cl := memnode.SizeClass(size)
	if lst := a.free[cl]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[cl] = lst[:len(lst)-1]
		return addr, true
	}
	if a.next+uint64(cl) > a.end {
		return 0, false
	}
	addr := a.next
	a.next += uint64(cl)
	return addr, true
}

func (a *serverAlloc) release(addr uint64, size int) {
	cl := memnode.SizeClass(size)
	a.free[cl] = append(a.free[cl], addr)
}

// NewCMCluster builds a CliqueMap serving capacityBytes of cached objects.
// The fabric should use a CliqueMap-tuned RPC cost (see CMFabric).
func NewCMCluster(env *sim.Env, algo CMAlgo, expectedObjects, capacityBytes int, fabric rdma.Config) *CMCluster {
	slots := expectedObjects * 5 / 2
	cfg := hashtable.Config{Buckets: (slots + 7) / 8, SlotsPerBucket: 8}
	mn := memnode.New(env, memnode.Config{
		MemBytes: 64 + cfg.Bytes() + capacityBytes*2 + (1 << 20),
		Fabric:   fabric,
	})
	base := mn.PlaceTable(cfg.Bytes())
	var inner cachealgo.Algorithm
	if algo == CMLRU {
		inner = cachealgo.NewLRU()
	} else {
		inner = cachealgo.NewLFU()
	}
	c := &CMCluster{
		Algo:          algo,
		MN:            mn,
		Layout:        hashtable.Layout{Config: cfg, Base: base},
		capacityBytes: capacityBytes,
		index:         make(map[uint64]cmEntry),
		// The order structure tracks every cached object exactly; capacity
		// is enforced in bytes by the cluster, so give it headroom here.
		order: simcache.New(inner, expectedObjects*4+16),
		alloc: &serverAlloc{
			next: base + uint64(cfg.Bytes()),
			end:  uint64(mn.Node.MemSize()),
			free: map[int][]uint64{},
		},
	}
	mn.Node.Handle(memnode.OpCMSet, c.handleSet)
	mn.Node.Handle(memnode.OpCMSync, c.handleSync)
	return c
}

// CMFabric returns the fabric config for CliqueMap (default RPC costs;
// the access-record merge work is charged separately in handleSync).
func CMFabric() rdma.Config {
	return rdma.DefaultConfig()
}

// cmMergeNs is the MN CPU time to merge one access record into the exact
// server-side caching structure. This is what saturates the server on
// read-heavy workloads (§5.3) and why Figure 15 shows CliqueMap needing
// 20+ extra cores to approach Ditto.
const cmMergeNs = 1200

// handleSet executes a Set on the server CPU: allocate, store, index,
// update the caching structure, evict while over capacity.
func (c *CMCluster) handleSet(payload []byte) []byte {
	kl := int(binary.LittleEndian.Uint16(payload[0:]))
	key := payload[8 : 8+kl]
	kh := hashtable.KeyHash(key)
	size := len(payload)

	if old, ok := c.index[kh]; ok {
		c.alloc.release(old.addr, old.size)
		c.usedBytes += memnode.SizeClass(size) - memnode.SizeClass(old.size)
		c.writeObject(old.slotIdx, kh, payload, size)
		c.order.Access(kh, size)
		return []byte{1}
	}
	for c.usedBytes+memnode.SizeClass(size) > c.capacityBytes {
		c.evictOne()
	}
	slotIdx, ok := c.findSlot(kh)
	if !ok {
		c.evictOne() // pathological bucket pressure
		slotIdx, ok = c.findSlot(kh)
		if !ok {
			return []byte{0}
		}
	}
	c.writeObject(slotIdx, kh, payload, size)
	c.usedBytes += memnode.SizeClass(size)
	c.order.Access(kh, size)
	return []byte{1}
}

// writeObject allocates and stores the payload, publishing it in the slot
// (server-side memory operations: no fabric cost).
func (c *CMCluster) writeObject(slotIdx int, kh uint64, payload []byte, size int) {
	addr, ok := c.alloc.alloc(size)
	if !ok {
		// Capacity eviction should have freed space; reclaim harder.
		for !ok && len(c.index) > 0 {
			c.evictOne()
			addr, ok = c.alloc.alloc(size)
		}
		if !ok {
			panic("baselines: CliqueMap heap exhausted")
		}
	}
	copy(c.MN.Node.Mem()[addr:], payload)
	slotAddr := c.Layout.SlotAddr(slotIdx)
	atomic := hashtable.EncodeAtomic(hashtable.Fingerprint(kh), hashtable.SizeToBlocks(size), addr)
	c.MN.Node.PutUint64At(slotAddr, uint64(atomic))
	c.MN.Node.PutUint64At(slotAddr+8, kh)
	e := c.index[kh]
	e.slotIdx, e.addr, e.size = slotIdx, addr, size
	c.index[kh] = e
}

// findSlot picks a free slot in the key's buckets.
func (c *CMCluster) findSlot(kh uint64) (int, bool) {
	for _, b := range [2]int{c.Layout.MainBucket(kh), c.Layout.BackupBucket(kh)} {
		for i := 0; i < c.Layout.SlotsPerBucket; i++ {
			idx := b*c.Layout.SlotsPerBucket + i
			if c.MN.Node.Uint64At(c.Layout.SlotAddr(idx)) == 0 {
				return idx, true
			}
		}
	}
	return 0, false
}

// evictOne removes the exact victim chosen by the server's caching
// structure.
func (c *CMCluster) evictOne() {
	victim, ok := c.order.EvictOne()
	if !ok {
		panic("baselines: CliqueMap has nothing to evict")
	}
	e, ok := c.index[victim]
	if !ok {
		return // structure/index divergence after slot-pressure eviction
	}
	c.MN.Node.PutUint64At(c.Layout.SlotAddr(e.slotIdx), 0)
	c.alloc.release(e.addr, e.size)
	c.usedBytes -= memnode.SizeClass(e.size)
	delete(c.index, victim)
	c.Evictions++
}

// handleSync merges one client's buffered access records into the
// server-side caching structure — the CPU work that bottlenecks CliqueMap
// on read-heavy workloads. The merge occupies the MN CPU (delaying
// subsequent RPCs) without blocking the syncing client, which does not
// need the result.
func (c *CMCluster) handleSync(payload []byte) []byte {
	records := int64(len(payload) / cmRecordBytes)
	c.MN.Node.CPU().Acquire(records * cmMergeNs)
	for off := 0; off+cmRecordBytes <= len(payload); off += cmRecordBytes {
		kh := binary.LittleEndian.Uint64(payload[off:])
		n := int(binary.LittleEndian.Uint32(payload[off+8:]))
		c.SyncRecords++
		if e, ok := c.index[kh]; ok {
			for i := 0; i < n; i++ {
				c.order.Access(kh, e.size)
			}
		}
	}
	return []byte{1}
}

// CMClient is a CliqueMap client.
type CMClient struct {
	c  *CMCluster
	p  *sim.Proc
	ep *rdma.Endpoint
	ht *hashtable.Handle

	pending []uint64 // access records in order (order matters for LRU)

	// Hits/Misses count Get outcomes.
	Hits, Misses int64
}

// NewCMClient connects a client.
func (c *CMCluster) NewCMClient(p *sim.Proc) *CMClient {
	ep := rdma.NewEndpoint(c.MN.Node, p)
	return &CMClient{
		c:  c,
		p:  p,
		ep: ep,
		ht: hashtable.NewHandle(c.Layout, ep),
	}
}

// Get performs CliqueMap's one-sided Get: read the index bucket, read the
// object, verify the key; record the access locally.
func (cl *CMClient) Get(key []byte) ([]byte, bool) {
	kh := hashtable.KeyHash(key)
	fp := hashtable.Fingerprint(kh)
	for _, b := range [2]int{cl.c.Layout.MainBucket(kh), cl.c.Layout.BackupBucket(kh)} {
		for _, s := range cl.ht.ReadBucket(b) {
			if s.Atomic.IsEmpty() || s.Atomic.FP() != fp || s.Hash != kh {
				continue
			}
			obj := cl.ep.Read(s.Atomic.Pointer(), s.Atomic.SizeBytes())
			kl := int(binary.LittleEndian.Uint16(obj[0:]))
			vl := int(binary.LittleEndian.Uint32(obj[2:]))
			if 8+kl+vl > len(obj) || !bytes.Equal(obj[8:8+kl], key) {
				continue
			}
			cl.recordAccess(kh)
			cl.Hits++
			return append([]byte(nil), obj[8+kl:8+kl+vl]...), true
		}
	}
	cl.Misses++
	return nil, false
}

// Set ships the operation to the server CPU as an RPC.
func (cl *CMClient) Set(key, value []byte) bool {
	payload := make([]byte, 8+len(key)+len(value))
	binary.LittleEndian.PutUint16(payload[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(payload[2:], uint32(len(value)))
	copy(payload[8:], key)
	copy(payload[8+len(key):], value)
	reply := cl.ep.RPC(memnode.OpCMSet, payload)
	cl.recordAccess(hashtable.KeyHash(key))
	return reply[0] == 1
}

// recordAccess buffers an access record and syncs every CMSyncEvery
// accesses. Records keep their order: the server replays them into its
// exact LRU/LFU structure, so ordering is semantically significant.
func (cl *CMClient) recordAccess(kh uint64) {
	cl.pending = append(cl.pending, kh)
	if len(cl.pending) >= CMSyncEvery {
		cl.FlushSync()
	}
}

// FlushSync ships buffered access records to the server in access order.
func (cl *CMClient) FlushSync() {
	if len(cl.pending) == 0 {
		return
	}
	payload := make([]byte, 0, len(cl.pending)*cmRecordBytes)
	var rec [cmRecordBytes]byte
	for _, kh := range cl.pending {
		binary.LittleEndian.PutUint64(rec[0:], kh)
		binary.LittleEndian.PutUint32(rec[8:], 1)
		payload = append(payload, rec[:]...)
	}
	cl.pending = cl.pending[:0]
	cl.ep.RPC(memnode.OpCMSync, payload)
}
