package core

// Plan pooling: the zero-allocation hot path.
//
// Every Get/Set/Delete attempt used to allocate its plan object, its
// per-stage verb group, the READ buffers the verbs delivered into, and
// the decoded-slot scratch — all of it dead the moment the operation
// returned. Each client now keeps free lists of finished plan objects
// and reuses every buffer they own. The lifecycle is
//
//	acquire → reset → run → release
//
// with two rules the correctness of buffer reuse hangs on:
//
//  1. A plan is released only after the driver has consumed everything
//     that may alias its buffers — the decoded value views, the scanned
//     slots, the history matches. Under doorbell execution an identical
//     READ is issued once and fanned out, so one plan's result can alias
//     ANOTHER plan's buffer; batch drivers therefore release their plans
//     only after the whole batch's outputs are consumed.
//  2. reset re-draws any construction-time randomness in the same order
//     as a fresh plan would (see newEvictPlan), so pooling is invisible
//     to the deterministic simulation.
//
// Migrate-mode set plans (the resharder's insert-if-absent) are NOT
// pooled: they are cold-path, long-lived, and owned by transient
// clients.

import "ditto/internal/loccache"

// grow returns buf resized to n bytes, reusing its capacity when it
// suffices. The contents are unspecified — callers must fully overwrite
// (READ delivery does) or clear the returned slice.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// bufAt returns a pointer to the i-th buffer of a grow-only buffer
// list, extending the list as needed. Plans use one list entry per verb
// index so concurrent in-flight READs of one stage never share a
// delivery buffer.
func bufAt(bufs *[][]byte, i int) *[]byte {
	for len(*bufs) <= i {
		*bufs = append(*bufs, nil)
	}
	return &(*bufs)[i]
}

func (c *Client) acquireGetPlan(key []byte) *getPlan {
	var pl *getPlan
	if n := len(c.freeGet); n > 0 {
		pl, c.freeGet = c.freeGet[n-1], c.freeGet[:n-1]
	} else {
		pl = &getPlan{}
	}
	pl.reset(c, key)
	return pl
}

func (c *Client) releaseGetPlan(pl *getPlan) {
	c.freeGet = append(c.freeGet, pl)
}

func (c *Client) acquireSpecGetPlan(key []byte, h loccache.Hint) *specGetPlan {
	var pl *specGetPlan
	if n := len(c.freeSpec); n > 0 {
		pl, c.freeSpec = c.freeSpec[n-1], c.freeSpec[:n-1]
	} else {
		pl = &specGetPlan{}
	}
	pl.reset(c, key, h)
	return pl
}

func (c *Client) releaseSpecGetPlan(pl *specGetPlan) {
	c.freeSpec = append(c.freeSpec, pl)
}

func (c *Client) acquireSetPlan(key, value []byte) *setPlan {
	var pl *setPlan
	if n := len(c.freeSet); n > 0 {
		pl, c.freeSet = c.freeSet[n-1], c.freeSet[:n-1]
	} else {
		pl = &setPlan{}
	}
	pl.reset(c, key, value)
	return pl
}

func (c *Client) releaseSetPlan(pl *setPlan) {
	c.freeSet = append(c.freeSet, pl)
}

func (c *Client) acquireDelPlan(key []byte) *delPlan {
	var pl *delPlan
	if n := len(c.freeDel); n > 0 {
		pl, c.freeDel = c.freeDel[n-1], c.freeDel[:n-1]
	} else {
		pl = &delPlan{}
	}
	pl.reset(c, key)
	return pl
}

func (c *Client) releaseDelPlan(pl *delPlan) {
	c.freeDel = append(c.freeDel, pl)
}

func (c *Client) acquireEvictPlan() *evictPlan {
	var pl *evictPlan
	if n := len(c.freeEv); n > 0 {
		pl, c.freeEv = c.freeEv[n-1], c.freeEv[:n-1]
	} else {
		pl = &evictPlan{}
	}
	pl.reset(c)
	return pl
}

func (c *Client) releaseEvictPlan(pl *evictPlan) {
	c.freeEv = append(c.freeEv, pl)
}
