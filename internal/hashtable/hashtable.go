// Package hashtable implements Ditto's sample-friendly hash table
// (§4.2.1): the object index of the cache, co-designed with sampling.
//
// The table is an array of buckets, each with a fixed number of 40-byte
// slots laid out in the memory node's registered region:
//
//	offset 0  atomic field (8 B, modified only with RDMA_CAS):
//	            fp (1 B) | size (1 B, in 64-B blocks; 0=empty, 0xFF=history) |
//	            pointer (6 B, object address — or history ID in a history entry)
//	offset 8  hash      (8 B)  hash of the object ID (used for history matching)
//	offset 16 insert_ts (8 B)  insert timestamp — or expert bitmap in a history entry
//	offset 24 last_ts   (8 B)  last-access timestamp (stateless → RDMA_WRITE)
//	offset 32 freq      (8 B)  access counter       (stateful  → RDMA_FAA)
//
// Storing the default access information next to the index slots is what
// makes Ditto's sampling cheap: one RDMA_READ of K consecutive slots at a
// random offset yields K eviction candidates together with everything the
// priority functions need. The stateless metadata (hash, insert_ts,
// last_ts) is contiguous so it can be updated with a single RDMA_WRITE;
// the stateful freq is updated with RDMA_FAA (§4.2.1, "access information
// organization").
package hashtable

import (
	"fmt"

	"ditto/internal/memnode"
	"ditto/internal/rdma"
)

// Slot layout constants.
const (
	SlotBytes   = 40
	offAtomic   = 0
	offHash     = 8
	offInsertTs = 16
	offLastTs   = 24
	offFreq     = 32

	// SizeEmpty marks a free slot; SizeHistory tags a history entry
	// (0xFF rather than 0 because 0 means empty — §4.3.1).
	SizeEmpty   = 0x00
	SizeHistory = 0xFF

	// MaxBlocks is the largest representable object size in blocks; larger
	// objects chain additional blocks (the paper links a second memory
	// block for large objects).
	MaxBlocks = 0xFE

	// PointerMask extracts the 48-bit pointer from an atomic field.
	PointerMask = (uint64(1) << 48) - 1
)

// Config sizes a table.
type Config struct {
	Buckets        int
	SlotsPerBucket int
}

// DefaultSlotsPerBucket matches an RNIC-friendly bucket of 8 slots
// (320 bytes, well within one READ).
const DefaultSlotsPerBucket = 8

// Bytes returns the table's size in the registered region.
func (c Config) Bytes() int { return c.Buckets * c.SlotsPerBucket * SlotBytes }

// NumSlots returns the total slot count.
func (c Config) NumSlots() int { return c.Buckets * c.SlotsPerBucket }

// Layout is a table placed at a base address.
type Layout struct {
	Config
	Base uint64
}

// SlotAddr returns the address of slot idx (0 <= idx < NumSlots).
func (l Layout) SlotAddr(idx int) uint64 {
	return l.Base + uint64(idx)*SlotBytes
}

// BucketAddr returns the address of the first slot of bucket b.
func (l Layout) BucketAddr(b int) uint64 {
	return l.Base + uint64(b*l.SlotsPerBucket)*SlotBytes
}

// FNV-1a 64-bit parameters (hash/fnv's constants, inlined so the hot
// path avoids the hash.Hash64 interface allocation per call).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyHash hashes an object ID (FNV-1a, 64-bit). Bits are split between the
// bucket index (low), and the fingerprint (high). Every Get/Set/route
// decision hashes its key, so this is computed inline rather than through
// hash/fnv, whose constructor allocates; the values are identical.
func KeyHash(key []byte) uint64 {
	v := uint64(fnvOffset64)
	for _, b := range key {
		v ^= uint64(b)
		v *= fnvPrime64
	}
	if v == 0 {
		v = 1 // reserve 0 so empty metadata is never a valid hash
	}
	return v
}

// Fingerprint derives the 1-byte fp from a key hash.
func Fingerprint(hash uint64) byte {
	fp := byte(hash >> 56)
	if fp == 0 {
		fp = 1 // fp 0 is reserved for empty slots
	}
	return fp
}

// MainBucket maps a key hash to its primary bucket.
func (l Layout) MainBucket(hash uint64) int {
	return int(hash % uint64(l.Buckets))
}

// BackupBucket maps a key hash to its secondary (overflow) bucket, RACE
// style: a second, independent choice.
func (l Layout) BackupBucket(hash uint64) int {
	b := int((hash >> 16) % uint64(l.Buckets))
	if b == l.MainBucket(hash) {
		b = (b + 1) % l.Buckets
	}
	return b
}

// AtomicField packs fp|size|pointer; it is the unit of RDMA_CAS.
type AtomicField uint64

// EncodeAtomic builds an atomic field.
func EncodeAtomic(fp byte, sizeBlocks byte, pointer uint64) AtomicField {
	if pointer > PointerMask {
		panic(fmt.Sprintf("hashtable: pointer %#x exceeds 48 bits", pointer))
	}
	return AtomicField(uint64(fp)<<56 | uint64(sizeBlocks)<<48 | pointer)
}

// FP returns the fingerprint byte.
func (a AtomicField) FP() byte { return byte(a >> 56) }

// SizeBlocks returns the size byte (64-B blocks; SizeEmpty / SizeHistory
// are sentinels).
func (a AtomicField) SizeBlocks() byte { return byte(a >> 48) }

// Pointer returns the 48-bit pointer (or history ID).
func (a AtomicField) Pointer() uint64 { return uint64(a) & PointerMask }

// SizeBytes returns the object's heap footprint in bytes, the single
// decoding of the size field every reader must use (meaningless for the
// SizeEmpty/SizeHistory sentinels).
func (a AtomicField) SizeBytes() int { return int(a.SizeBlocks()) * memnode.BlockSize }

// IsEmpty reports a free slot (the whole atomic field is zero).
func (a AtomicField) IsEmpty() bool { return a == 0 }

// IsHistory reports a history entry.
func (a AtomicField) IsHistory() bool { return a.SizeBlocks() == SizeHistory }

// SizeClassBytes returns the byte size the slot's size field represents
// for an object of the given size (block-granular, as priority functions
// see it). Both size views — classifying a byte size here and decoding a
// slot's size field in AtomicField.SizeBytes — are defined in terms of
// memnode.BlockSize, so they cannot diverge if the block size changes.
func SizeClassBytes(size int) int {
	return int(SizeToBlocks(size)) * memnode.BlockSize
}

// SizeToBlocks converts a byte size to the slot's block count.
func SizeToBlocks(size int) byte {
	b := (size + memnode.BlockSize - 1) / memnode.BlockSize
	if b < 1 {
		b = 1
	}
	if b > MaxBlocks {
		b = MaxBlocks
	}
	return byte(b)
}

// Slot is a decoded slot snapshot together with its address.
type Slot struct {
	Addr     uint64
	Atomic   AtomicField
	Hash     uint64
	InsertTs int64 // expert bitmap for history entries
	LastTs   int64
	Freq     uint64
}

// decodeSlot decodes one 40-byte slot image.
func decodeSlot(addr uint64, b []byte) Slot {
	return Slot{
		Addr:     addr,
		Atomic:   AtomicField(le64(b[offAtomic:])),
		Hash:     le64(b[offHash:]),
		InsertTs: int64(le64(b[offInsertTs:])),
		LastTs:   int64(le64(b[offLastTs:])),
		Freq:     le64(b[offFreq:]),
	}
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Handle is a client's connection to the table: all operations issue
// simulated RDMA verbs through the endpoint and therefore must run inside
// that endpoint's sim process.
type Handle struct {
	Layout Layout
	EP     *rdma.Endpoint

	// wbuf backs the small asynchronous metadata writes (WriteMetaOnInsert,
	// TouchLastTs, WriteExpertBitmap). Reuse is safe because WriteAsync
	// applies its payload before returning (see rdma.Endpoint.WriteAsync) —
	// and a Handle belongs to one sim process, so no concurrent writer
	// exists. This removes a heap allocation from every metadata update on
	// the Get/Set fast path.
	wbuf [32]byte
}

// NewHandle binds a client endpoint to a table layout.
func NewHandle(l Layout, ep *rdma.Endpoint) *Handle {
	return &Handle{Layout: l, EP: ep}
}

// BucketReadOp returns the verb that fetches bucket b — the one
// definition of a bucket READ, shared by the synchronous paths below and
// by the verb plans that post the same read inside doorbell batches.
func (l Layout) BucketReadOp(b int) rdma.BatchOp {
	return rdma.BatchOp{
		Kind: rdma.BatchRead,
		Addr: l.BucketAddr(b),
		Len:  l.SlotsPerBucket * SlotBytes,
	}
}

// DecodeBucket decodes a bucket image fetched by any read path (a
// synchronous READ or a doorbell batch) into slots, as ReadBucket would.
func (l Layout) DecodeBucket(b int, raw []byte) []Slot {
	return l.AppendBucket(nil, b, raw)
}

// AppendBucket is DecodeBucket appending into dst — the allocation-free
// form pooled verb plans use with a plan-owned scratch slice.
func (l Layout) AppendBucket(dst []Slot, b int, raw []byte) []Slot {
	base := l.BucketAddr(b)
	for i := 0; i < l.SlotsPerBucket; i++ {
		dst = append(dst, decodeSlot(base+uint64(i*SlotBytes), raw[i*SlotBytes:(i+1)*SlotBytes]))
	}
	return dst
}

// ReadBucket fetches bucket b with one RDMA_READ and decodes its slots.
func (h *Handle) ReadBucket(b int) []Slot {
	op := h.Layout.BucketReadOp(b)
	return h.Layout.DecodeBucket(b, h.EP.Read(op.Addr, op.Len))
}

// ReadBuckets fetches the given buckets with ONE doorbell batch of
// RDMA_READs: each bucket costs its message-service time on the RNIC, but
// all round trips overlap, so a multi-key operation pays ~one READ
// latency for its whole bucket set. Duplicate bucket indices are read
// twice; callers dedup when it matters. The result is indexed like bs.
func (h *Handle) ReadBuckets(bs []int) [][]Slot {
	if len(bs) == 0 {
		return nil
	}
	ops := make([]rdma.BatchOp, len(bs))
	for i, b := range bs {
		ops[i] = h.Layout.BucketReadOp(b)
	}
	res := h.EP.PostBatch(ops)
	out := make([][]Slot, len(bs))
	for i, b := range bs {
		out[i] = h.Layout.DecodeBucket(b, res[i].Data)
	}
	return out
}

// ReadSlot fetches a single slot (one RDMA_READ).
func (h *Handle) ReadSlot(addr uint64) Slot {
	raw := h.EP.Read(addr, SlotBytes)
	return decodeSlot(addr, raw)
}

// SampleOps returns the RDMA_READ verb(s) that fetch k consecutive slots
// starting at slot index startIdx — one READ, plus a second only when the
// run wraps around the end of the table. The one definition of a sample
// READ, shared by the synchronous Sample below and the eviction verb
// plan that posts the same reads inside doorbell batches; decode each
// completion with DecodeSlots.
func (l Layout) SampleOps(startIdx, k int) []rdma.BatchOp {
	return l.AppendSampleOps(nil, startIdx, k)
}

// AppendSampleOps is SampleOps appending into dst — the allocation-free
// form pooled verb plans use with a plan-owned scratch slice.
func (l Layout) AppendSampleOps(dst []rdma.BatchOp, startIdx, k int) []rdma.BatchOp {
	n := l.NumSlots()
	if k > n {
		k = n
	}
	startIdx %= n
	first := k
	if startIdx+k > n {
		first = n - startIdx
	}
	dst = append(dst, rdma.BatchOp{
		Kind: rdma.BatchRead, Addr: l.SlotAddr(startIdx), Len: first * SlotBytes,
	})
	if rest := k - first; rest > 0 {
		dst = append(dst, rdma.BatchOp{
			Kind: rdma.BatchRead, Addr: l.SlotAddr(0), Len: rest * SlotBytes,
		})
	}
	return dst
}

// DecodeSlots decodes a run of consecutive slot images fetched from base
// by any read path (a synchronous READ or a doorbell batch).
func (l Layout) DecodeSlots(base uint64, raw []byte) []Slot {
	return l.AppendSlots(nil, base, raw)
}

// AppendSlots is DecodeSlots appending into dst — the allocation-free
// form pooled verb plans use with a plan-owned scratch slice.
func (l Layout) AppendSlots(dst []Slot, base uint64, raw []byte) []Slot {
	for i := 0; i < len(raw)/SlotBytes; i++ {
		dst = append(dst, decodeSlot(base+uint64(i*SlotBytes), raw[i*SlotBytes:(i+1)*SlotBytes]))
	}
	return dst
}

// Sample fetches k consecutive slots starting at a random slot index with
// ONE RDMA_READ — the sample-friendly co-design. Runs wrap around the end
// of the table with a second read only at the boundary.
func (h *Handle) Sample(startIdx, k int) []Slot {
	var out []Slot
	for _, op := range h.Layout.SampleOps(startIdx, k) {
		out = append(out, h.Layout.DecodeSlots(op.Addr, h.EP.Read(op.Addr, op.Len))...)
	}
	return out
}

// CASAtomic atomically swaps a slot's atomic field, returning the value
// observed and whether the swap took effect.
func (h *Handle) CASAtomic(slotAddr uint64, expect, swap AtomicField) (AtomicField, bool) {
	old, ok := h.EP.CAS(slotAddr+offAtomic, uint64(expect), uint64(swap))
	return AtomicField(old), ok
}

// WriteMetaOnInsert initializes the stateless metadata (hash, insert_ts,
// last_ts) with a single asynchronous RDMA_WRITE — they are contiguous by
// design — and the freq with a second write folded into the same message in
// practice; we charge it as part of the same 32-byte write.
func (h *Handle) WriteMetaOnInsert(slotAddr uint64, hash uint64, insertTs, lastTs int64, freq uint64) {
	buf := h.wbuf[:32]
	put64(buf[0:], hash)
	put64(buf[8:], uint64(insertTs))
	put64(buf[16:], uint64(lastTs))
	put64(buf[24:], freq)
	h.EP.WriteAsync(slotAddr+offHash, buf)
}

// TouchLastTs updates the stateless last-access timestamp with one
// asynchronous RDMA_WRITE (§4.2.1: stateless information is grouped so one
// WRITE suffices).
func (h *Handle) TouchLastTs(slotAddr uint64, ts int64) {
	buf := h.wbuf[:8]
	put64(buf, uint64(ts))
	h.EP.WriteAsync(slotAddr+offLastTs, buf)
}

// FAAFreq adds delta to the stateful freq counter with RDMA_FAA and
// returns the previous value.
func (h *Handle) FAAFreq(slotAddr uint64, delta uint64) uint64 {
	return h.EP.FAA(slotAddr+offFreq, delta)
}

// FAAFreqAsync adds delta to freq without waiting (used when the FC cache
// flushes a combined delta off the critical path).
func (h *Handle) FAAFreqAsync(slotAddr uint64, delta uint64) {
	h.EP.FAAAsync(slotAddr+offFreq, delta)
}

// WriteExpertBitmap stores a history entry's expert bitmap in the
// insert_ts field with an asynchronous RDMA_WRITE (§4.3.1).
func (h *Handle) WriteExpertBitmap(slotAddr uint64, bitmap uint64) {
	buf := h.wbuf[:8]
	put64(buf, bitmap)
	h.EP.WriteAsync(slotAddr+offInsertTs, buf)
}

// FreqAddr exposes the freq field address (the FC cache records it).
func FreqAddr(slotAddr uint64) uint64 { return slotAddr + offFreq }

// AtomicAddr exposes the atomic field address of a slot (doorbell-batched
// CASes target it directly; single CASes go through CASAtomic).
func AtomicAddr(slotAddr uint64) uint64 { return slotAddr + offAtomic }
