// Package sim implements a deterministic discrete-event virtual-time
// execution environment.
//
// Ditto's evaluation depends on counting round trips and on which shared
// resource (the memory-node RNIC's message rate, or the memory-node CPU)
// saturates first. This package provides the substrate used to model that
// behaviour without RDMA hardware: goroutine-backed processes advance a
// shared virtual clock one event at a time, and Resource models k-server
// FIFO queueing in virtual time.
//
// Exactly one process runs at any instant; processes hand control back to
// the scheduler whenever they sleep, wait, or finish. Interleaving therefore
// happens at event boundaries, which is precisely the granularity at which
// remote verbs (READ/WRITE/CAS/FAA) interleave on real disaggregated
// memory. The model is fully deterministic for a fixed seed.
package sim

import (
	"fmt"
	"math/rand"
)

// Virtual-time unit constants. Virtual time is int64 nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
	Minute      int64 = 60 * Second
)

// event is a scheduled wake-up of a process.
type event struct {
	t   int64
	seq uint64 // tiebreak for deterministic ordering of same-time events
	p   *Proc
}

// eventHeap is a hand-rolled binary min-heap over events, ordered by
// (t, seq). It deliberately does NOT implement container/heap: that
// interface boxes the 24-byte event struct into an interface{} on every
// Push AND every Pop, and the event heap is the single hottest allocation
// site in the whole simulator (every Sleep, yield and verb completion
// goes through it). The (t, seq) order is a strict total order (seq is
// unique), so pops are deterministic regardless of internal layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push adds ev and restores the heap invariant. The backing array is
// reused across pops, so steady-state pushes allocate nothing.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	// Sift up.
	s := *h
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if !s.less(j, parent) {
			break
		}
		s[j], s[parent] = s[parent], s[j]
		j = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = event{} // drop the Proc reference so finished procs can be collected
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return ev
}

// Env is a virtual-time environment. Create one with NewEnv, register
// processes with Go, and drive them with Run.
type Env struct {
	now     int64
	seq     uint64
	events  eventHeap
	sched   chan struct{} // processes signal the scheduler here after yielding
	running int           // live (started, unfinished) processes
	nextID  int
	seed    int64
	stopped bool
	procs   []*Proc // every registered process, in Go order (for FindProc)
	cur     *Proc   // the process executing right now (self-Kill guard)
}

// NewEnv returns an environment at virtual time zero. The seed determines
// every random choice made by processes that use their per-process RNG.
func NewEnv(seed int64) *Env {
	return &Env{
		sched: make(chan struct{}),
		seed:  seed,
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Env) Now() int64 { return e.now }

// Stop makes Run return after the currently running process yields.
// Remaining events are discarded. Processes blocked in Sleep or Wait never
// resume; their goroutines are abandoned (acceptable for one-shot
// experiment runs, which always terminate the whole environment).
func (e *Env) Stop() { e.stopped = true }

func (e *Env) push(t int64, p *Proc) {
	e.seq++
	e.events.push(event{t: t, seq: e.seq, p: p})
}

// Proc is a process executing in virtual time. A Proc must only be used
// from its own goroutine (the function passed to Go) — except for the
// crash API (Env.Kill, Killed, OnCrash-registered state), which other
// processes use to model fail-stop node and process failures.
type Proc struct {
	env     *Env
	resume  chan struct{}
	id      int
	name    string
	rng     *rand.Rand
	done    bool
	killed  bool
	onCrash []func() // LIFO cleanup hooks run by Env.Kill
}

// ID returns the process's unique id, assigned in Go order.
func (p *Proc) ID() int { return p.id }

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Rand returns the process's private deterministic RNG.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.env.now }

// Killed reports whether the process was removed by Env.Kill. Crash-aware
// shared structures (e.g. per-entry locks) consult it to detect abandoned
// ownership: a killed process will never run again, so whatever it held
// can be safely stolen.
func (p *Proc) Killed() bool { return p.killed }

// Alive reports whether the process has neither finished nor been killed.
func (p *Proc) Alive() bool { return !p.done }

// OnCrash registers a cleanup hook run if this process is killed by
// Env.Kill (hooks run LIFO, most recent first). Hooks execute in the
// killer's scheduling slice: they MUST NOT yield (no Sleep, no verbs, no
// blocking waits) but may register new processes with Env.Go — the idiom
// crash-recovery supervisors use to respawn a died worker. Hooks do not
// run on normal process exit.
func (p *Proc) OnCrash(fn func()) { p.onCrash = append(p.onCrash, fn) }

// Go registers fn as a new process starting at the current virtual time.
// It may be called before Run or from inside a running process (e.g. to add
// clients mid-experiment, as the elasticity experiments do).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt registers fn as a new process that starts at virtual time t (which
// must be >= Now).
func (e *Env) GoAt(t int64, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: GoAt(%d) in the past (now=%d)", t, e.now))
	}
	p := &Proc{
		env:    e,
		resume: make(chan struct{}),
		id:     e.nextID,
		name:   name,
		rng:    rand.New(rand.NewSource(e.seed ^ int64(uint64(e.nextID+1)*0x9e3779b97f4a7c15>>1))),
	}
	e.nextID++
	e.running++
	e.procs = append(e.procs, p)
	go func() {
		// The final yield is deferred so the scheduler survives a process
		// that exits via runtime.Goexit (e.g. t.Fatal inside a test body).
		defer func() {
			p.done = true
			e.running--
			e.sched <- struct{}{}
		}()
		<-p.resume // wait for the scheduler to start us
		fn(p)
	}()
	e.push(t, p)
	return p
}

// Run executes events until none remain or Stop is called. It must be
// called from the goroutine that owns the Env (typically the test or
// benchmark body). Run may be called repeatedly; later Go calls followed by
// Run continue the same timeline.
func (e *Env) Run() {
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.pop()
		if ev.p.done {
			continue // stale wake-up for a finished process
		}
		if ev.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.t
		e.cur = ev.p
		ev.p.resume <- struct{}{}
		<-e.sched
		e.cur = nil
	}
	e.stopped = false
}

// Kill removes process p from the simulation immediately: a fail-stop
// crash at the current virtual time. p never runs again — its pending
// wake-ups are discarded, condition variables that would wake it skip it,
// and its goroutine is abandoned exactly as Stop abandons blocked
// processes (acceptable for one-shot experiment runs). p's OnCrash hooks
// run LIFO in the caller's scheduling slice before Kill returns, so
// supervisors can respawn replacements with a consistent view of the
// crash instant. Killing a finished or already-killed process is a no-op;
// a process cannot kill itself (a self-crash is just returning).
// Kill reports whether p was actually removed.
func (e *Env) Kill(p *Proc) bool {
	if p.done {
		return false
	}
	if e.cur == p {
		panic("sim: a process cannot Kill itself")
	}
	p.done = true
	p.killed = true
	e.running--
	for i := len(p.onCrash) - 1; i >= 0; i-- {
		p.onCrash[i]()
	}
	p.onCrash = nil
	return true
}

// FindProc returns the most recently registered live process with the
// given name, or nil. Fault injectors use it to aim a Kill at an
// internally spawned process — "the resharder", "the reclaimer" — without
// the spawning subsystem having to export its handles.
func (e *Env) FindProc(name string) *Proc {
	for i := len(e.procs) - 1; i >= 0; i-- {
		if p := e.procs[i]; !p.done && p.name == name {
			return p
		}
	}
	return nil
}

// yield returns control to the scheduler and blocks until resumed.
func (p *Proc) yield() {
	p.env.sched <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d nanoseconds. d < 0 is
// treated as 0 (a pure yield that lets same-time events interleave).
func (p *Proc) Sleep(d int64) {
	if d < 0 {
		d = 0
	}
	p.env.push(p.env.now+d, p)
	p.yield()
}

// SleepUntil advances the process to virtual time t. If t is in the past it
// behaves like Sleep(0).
func (p *Proc) SleepUntil(t int64) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.push(t, p)
	p.yield()
}

// park blocks the process without scheduling a wake-up. Something else must
// wake it via wake.
func (p *Proc) park() { p.yield() }

// wake schedules p to resume at time t.
func (e *Env) wake(p *Proc, t int64) { e.push(t, p) }

// Cond is a virtual-time condition variable: processes Wait, another
// process Broadcasts to wake all waiters at the current virtual time.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a condition variable bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every waiter at the current virtual time. The caller
// keeps running; waiters resume when the caller next yields.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.env.wake(w, c.env.now)
	}
	c.waiters = c.waiters[:0]
}

// NumWaiters returns how many processes are blocked on the Cond.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Resource models a k-server FIFO queue in virtual time: think NIC message
// processors or memory-node CPU cores. Acquire reserves the earliest
// available server for a given service time and returns the completion
// time; the caller decides whether to wait for it (synchronous verb) or not
// (asynchronous/doorbell verb). Because exactly one process runs at a time,
// no locking is needed.
type Resource struct {
	env  *Env
	free []int64 // next-free virtual time per server
	// Busy accumulates total service time charged, for utilization stats.
	Busy int64
	// Ops counts Acquire calls.
	Ops int64
}

// NewResource creates a resource with `servers` parallel servers.
func NewResource(env *Env, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{env: env, free: make([]int64, servers)}
}

// Servers returns the number of parallel servers.
func (r *Resource) Servers() int { return len(r.free) }

// SetServers changes the number of servers (used by experiments that scale
// MN CPU cores at runtime). Growing adds idle servers; shrinking drops the
// busiest ones.
func (r *Resource) SetServers(n int) {
	if n < 1 {
		panic("sim: resource needs at least one server")
	}
	for len(r.free) < n {
		r.free = append(r.free, r.env.now)
	}
	if len(r.free) > n {
		// Keep the n earliest-free servers.
		for i := 0; i < n; i++ {
			for j := i + 1; j < len(r.free); j++ {
				if r.free[j] < r.free[i] {
					r.free[i], r.free[j] = r.free[j], r.free[i]
				}
			}
		}
		r.free = r.free[:n]
	}
}

// Acquire reserves the earliest-free server for svc nanoseconds of service
// starting no earlier than now, and returns the completion time.
func (r *Resource) Acquire(svc int64) int64 {
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	start := r.free[best]
	if now := r.env.now; start < now {
		start = now
	}
	end := start + svc
	r.free[best] = end
	r.Busy += svc
	r.Ops++
	return end
}

// Utilization returns Busy divided by (servers × elapsed) for elapsed > 0.
func (r *Resource) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / (float64(elapsed) * float64(len(r.free)))
}

// FaultSchedule arms fail-stop faults at virtual-time points. It is the
// deterministic substrate of the chaos suite (internal/chaos): every
// fault time and every randomized choice inside a fault function derives
// from the schedule's seed, so a failing run reproduces from that one
// number. Faults are ordinary processes — they fire at event boundaries,
// exactly where concurrent verbs interleave — named "fault:<name>" so
// transcripts show which injection ran.
type FaultSchedule struct {
	env  *Env
	rng  *rand.Rand
	seed int64
	// Armed records every scheduled (time, name) pair in arming order, so
	// a failure report can print the exact schedule alongside the seed.
	Armed []FaultPoint
}

// FaultPoint is one armed fault: when it fires and what it is called.
type FaultPoint struct {
	T    int64
	Name string
}

// NewFaultSchedule creates a schedule whose randomized choices (Between,
// Rand) derive from seed.
func NewFaultSchedule(env *Env, seed int64) *FaultSchedule {
	return &FaultSchedule{
		env:  env,
		rng:  rand.New(rand.NewSource(seed ^ 0x5deece66d)),
		seed: seed,
	}
}

// Seed returns the schedule's seed (printed by failing chaos runs).
func (f *FaultSchedule) Seed() int64 { return f.seed }

// Rand exposes the schedule's deterministic RNG for fault functions that
// need further choices (which node to kill, which key range to target).
func (f *FaultSchedule) Rand() *rand.Rand { return f.rng }

// At arms fault to fire at virtual time t (>= now).
func (f *FaultSchedule) At(t int64, name string, fault func(p *Proc)) {
	if t < f.env.now {
		t = f.env.now
	}
	f.Armed = append(f.Armed, FaultPoint{T: t, Name: name})
	f.env.GoAt(t, "fault:"+name, fault)
}

// Between arms fault at a seed-chosen time in [lo, hi] and returns the
// chosen time.
func (f *FaultSchedule) Between(lo, hi int64, name string, fault func(p *Proc)) int64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	t := lo + f.rng.Int63n(hi-lo+1)
	f.At(t, name, fault)
	return t
}

// String renders the armed schedule for failure reports.
func (f *FaultSchedule) String() string {
	s := fmt.Sprintf("seed=%d", f.seed)
	for _, a := range f.Armed {
		s += fmt.Sprintf(" [%s@%dns]", a.Name, a.T)
	}
	return s
}
