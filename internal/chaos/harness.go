// Package chaos is the randomized fault-injection invariant suite for
// the Ditto simulator. Each test composes a sim.FaultSchedule (crashes
// of memory nodes, resharders, reclaimers) with a seeded workload and
// checks safety invariants that must hold across every interleaving:
//
//   - no key is lost outside the crashed node's ownership,
//   - reads are monotonic and never stale (a hit returns the latest
//     confirmed write, or an ambiguous in-flight one),
//   - no heap block is double-freed (memnode free tracking panics),
//   - the pool converges after the fault (accepts and serves the full
//     key space again).
//
// Every run derives from a single seed; failures print the full fault
// schedule so `CHAOS_SEED=<n> go test ./internal/chaos/` reproduces the
// exact interleaving.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"ditto/internal/core"
	"ditto/internal/sim"
)

// Seeds is the pinned seed matrix every schedule runs under in CI.
var Seeds = []int64{1, 3, 5, 7, 11, 13, 17, 19}

// RunSeeds runs fn once per pinned seed, or once under the seed named
// by the CHAOS_SEED environment variable (the reproduction knob).
func RunSeeds(t *testing.T, fn func(t *testing.T, seed int64)) {
	seeds := Seeds
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fn(t, seed)
		})
	}
}

// Harness couples a seeded sim + pool with a client-visible model of
// the store: per key, the latest confirmed version, the latest
// attempted version (ambiguous when a crash window swallowed the ack),
// and the highest version any read has observed. Its Get/Set wrappers
// check the read invariants on every operation.
type Harness struct {
	T   *testing.T
	Env *sim.Env
	FS  *sim.FaultSchedule
	MC  *core.MultiCluster

	// ValSize is the byte length of generated values (>= header; the
	// padding bytes are derived from key+version so parse detects
	// corruption). Set it before the first Val call.
	ValSize int

	confirmed []uint64
	attempted []uint64
	ambiguous []bool
	// seen tracks, per client, the highest version each key returned to
	// THAT client — reads are sequential within a client (a sim proc),
	// so regression there is a true monotonic-read violation, while two
	// clients' overlapping reads may legally order either way.
	seen map[*core.MultiClient][]uint64
	keys int

	Hits, Misses int64
}

// New builds a seeded env + fault schedule + n-node pool over a keys-
// sized model, with memnode free tracking armed on every node so a
// double free anywhere panics the run.
func New(t *testing.T, seed int64, nodes, keys int, opts core.Options) *Harness {
	env := sim.NewEnv(seed)
	h := &Harness{
		T:         t,
		Env:       env,
		FS:        sim.NewFaultSchedule(env, seed),
		MC:        core.NewMultiCluster(env, nodes, opts),
		ValSize:   96,
		confirmed: make([]uint64, keys),
		attempted: make([]uint64, keys),
		ambiguous: make([]bool, keys),
		seen:      make(map[*core.MultiClient][]uint64),
		keys:      keys,
	}
	for i := 0; i < h.MC.NumNodes(); i++ {
		h.MC.Node(i).MN.EnableFreeTracking()
	}
	return h
}

// Failf fails the run with the fault schedule prefixed, so the failure
// message alone reproduces the interleaving.
func (h *Harness) Failf(format string, args ...any) {
	h.T.Helper()
	h.T.Fatalf("chaos[%s] t=%dns: %s",
		h.FS.String(), h.Env.Now(), fmt.Sprintf(format, args...))
}

// TrackNode arms free tracking on the node with stable ID id — call it
// right after AddNode, before the migration's first allocation lands.
func (h *Harness) TrackNode(id int) {
	for i := 0; i < h.MC.NumNodes(); i++ {
		if h.MC.NodeID(i) == id {
			h.MC.Node(i).MN.EnableFreeTracking()
			return
		}
	}
	h.Failf("TrackNode: unknown node %d", id)
}

// Key returns the canonical chaos key for index i.
func Key(i int) []byte { return []byte(fmt.Sprintf("chaos-%06d", i)) }

// valHeader is "k%06d.v%08d." — 18 bytes before the padding.
const valHeader = 18

// Val builds the versioned value for key i: a parseable header plus
// padding derived from (i, ver) so reads verify integrity end to end.
func (h *Harness) Val(i int, ver uint64) []byte {
	b := make([]byte, 0, h.ValSize)
	b = append(b, fmt.Sprintf("k%06d.v%08d.", i, ver)...)
	pad := byte(i) ^ byte(ver) ^ 0xa5
	for len(b) < h.ValSize {
		b = append(b, pad)
	}
	return b
}

// parseVal decodes a value and verifies its padding.
func (h *Harness) parseVal(v []byte) (key int, ver uint64, ok bool) {
	if len(v) != h.ValSize || v[0] != 'k' || v[7] != '.' || v[8] != 'v' || v[17] != '.' {
		return 0, 0, false
	}
	k, err := strconv.Atoi(string(v[1:7]))
	if err != nil {
		return 0, 0, false
	}
	vr, err := strconv.ParseUint(string(v[9:17]), 10, 64)
	if err != nil {
		return 0, 0, false
	}
	pad := byte(k) ^ byte(vr) ^ 0xa5
	for _, b := range v[valHeader:] {
		if b != pad {
			return 0, 0, false
		}
	}
	return k, vr, true
}

// Set writes version ver of key i, recording the outcome in the model.
// An unavailable error is legal inside a crash window — the write's
// outcome is then ambiguous; any other error fails the run.
func (h *Harness) Set(c *core.MultiClient, i int, ver uint64) {
	h.attempted[i] = ver
	err := c.TrySet(Key(i), h.Val(i, ver))
	if err == nil {
		h.confirmed[i] = ver
		h.ambiguous[i] = false
		return
	}
	if core.IsUnavailable(err) {
		// Unless a concurrent reader already observed the write landing,
		// its outcome is unknown.
		if h.confirmed[i] != ver {
			h.ambiguous[i] = true
		}
		return
	}
	h.Failf("TrySet(key %d, v%d): non-unavailable error: %v", i, ver, err)
}

// MustSet writes version ver of key i and requires it to land — for use
// outside crash windows, where TrySet has no excuse to fail.
func (h *Harness) MustSet(c *core.MultiClient, i int, ver uint64) {
	h.attempted[i] = ver
	if err := c.TrySet(Key(i), h.Val(i, ver)); err != nil {
		h.Failf("Set(key %d, v%d) failed outside a crash window: %v", i, ver, err)
	}
	h.confirmed[i] = ver
	h.ambiguous[i] = false
}

// BumpSet writes the next version of key i via Set.
func (h *Harness) BumpSet(c *core.MultiClient, i int) {
	h.Set(c, i, h.attempted[i]+1)
}

// Get reads key i and checks the read invariants. A sim Get spans many
// events (slot probe, then block read), so a read overlapping a write
// may legally return either version; the sound checks are interval-
// based:
//
//   - a hit must be well-formed for this key (integrity),
//   - its version must be >= the version confirmed when the read BEGAN
//     (no stale copies: an invalidate-skipping replica write or a ghost
//     copy resurrected by a crash fails here),
//   - its version must be <= the latest attempted write (no phantoms),
//   - within one client, versions never regress (monotonic reads —
//     reads are sequential inside a sim proc).
//
// Misses are always legal (crash loss, eviction). Observing a version
// above the confirmed one proves that write landed, so it is confirmed
// retroactively.
func (h *Harness) Get(c *core.MultiClient, i int) (uint64, bool) {
	h.T.Helper()
	startConfirmed := h.confirmed[i]
	v, ok := c.Get(Key(i))
	if !ok {
		h.Misses++
		return 0, false
	}
	h.Hits++
	ki, ver, pok := h.parseVal(v)
	if !pok || ki != i {
		h.Failf("key %d returned corrupt value %q", i, v)
	}
	if ver < startConfirmed {
		h.Failf("stale read on key %d: got v%d, but v%d was confirmed before the read began",
			i, ver, startConfirmed)
	}
	if ver > h.attempted[i] {
		h.Failf("phantom read on key %d: got v%d, never written (attempted v%d)",
			i, ver, h.attempted[i])
	}
	seen := h.seen[c]
	if seen == nil {
		seen = make([]uint64, h.keys)
		h.seen[c] = seen
	}
	if ver < seen[i] {
		h.Failf("monotonic-read violation on key %d: this client saw v%d after v%d",
			i, ver, seen[i])
	}
	seen[i] = ver
	if ver > h.confirmed[i] {
		h.confirmed[i] = ver
		if h.ambiguous[i] && ver == h.attempted[i] {
			h.ambiguous[i] = false
		}
	}
	return ver, true
}

// Confirmed returns the latest confirmed version of key i.
func (h *Harness) Confirmed(i int) uint64 { return h.confirmed[i] }

// CheckConverged rewrites keys [lo, hi) at their next versions and
// re-reads them: a recovered pool must accept and immediately serve the
// range. Callers pick a range that fits in cache.
func (h *Harness) CheckConverged(c *core.MultiClient, lo, hi int) {
	h.T.Helper()
	for i := lo; i < hi; i++ {
		h.MustSet(c, i, h.attempted[i]+1)
	}
	for i := lo; i < hi; i++ {
		if _, ok := h.Get(c, i); !ok {
			h.Failf("post-recovery key %d missing right after its rewrite", i)
		}
	}
}

// CheckEventuallyConverged is CheckConverged for pools still draining an
// over-budget backlog, where a freshly rewritten key is legal eviction
// fodder (under LFU every once-written object ties at freq 1, so recency
// does not shield the rewrite). Each key retries rewrite-then-read a
// bounded number of times; a key that cannot stick even once in that
// many tries means the pool is thrashing pathologically or wedged —
// which IS a failure.
func (h *Harness) CheckEventuallyConverged(c *core.MultiClient, lo, hi int) {
	h.T.Helper()
	const retries = 8
	for i := lo; i < hi; i++ {
		stuck := true
		for a := 0; a < retries && stuck; a++ {
			h.MustSet(c, i, h.attempted[i]+1)
			_, ok := h.Get(c, i)
			stuck = !ok
		}
		if stuck {
			h.Failf("post-recovery key %d failed to stick in %d rewrite attempts", i, retries)
		}
	}
}
