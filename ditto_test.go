package ditto_test

import (
	"bytes"
	"fmt"
	"testing"

	"ditto"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	env := ditto.NewEnv(1)
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(1000, 1<<20))
	env.Go("app", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		v, ok := c.Get([]byte("k"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Errorf("got %q ok=%v", v, ok)
		}
		if !c.Delete([]byte("k")) {
			t.Error("delete failed")
		}
		c.Close()
	})
	env.Run()
}

func TestPublicAPICustomExperts(t *testing.T) {
	env := ditto.NewEnv(1)
	opts := ditto.DefaultOptions(500, 160<<10) // ~640 objects of this class
	opts.Experts = []string{"GDSF", "HYPERBOLIC"}
	cluster := ditto.NewCluster(env, opts)
	env.Go("app", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		for i := 0; i < 2000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i%800))
			if _, ok := c.Get(key); !ok {
				c.Set(key, make([]byte, 200))
			}
		}
		if c.Stats.Hits == 0 || c.Stats.Evictions == 0 {
			t.Errorf("stats = %+v", c.Stats)
		}
		if w := c.Weights(); len(w) != 2 {
			t.Errorf("weights = %v", w)
		}
	})
	env.Run()
}

func TestAlgorithmsListed(t *testing.T) {
	algos := ditto.Algorithms()
	if len(algos) != 12 {
		t.Fatalf("expected the 12 integrated algorithms, got %d: %v", len(algos), algos)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		env := ditto.NewEnv(99)
		cluster := ditto.NewCluster(env, ditto.DefaultOptions(200, 128<<10))
		var hits int64
		for w := 0; w < 4; w++ {
			w := w
			env.Go("app", func(p *ditto.Proc) {
				c := cluster.NewClient(p)
				for i := 0; i < 500; i++ {
					key := []byte(fmt.Sprintf("key-%d", (i*7+w*13)%600))
					if _, ok := c.Get(key); !ok {
						c.Set(key, make([]byte, 100))
					}
				}
				hits += c.Stats.Hits
			})
		}
		env.Run()
		return hits, env.Now()
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", h1, t1, h2, t2)
	}
}
