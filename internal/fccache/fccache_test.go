package fccache

import (
	"testing"
	"testing/quick"
)

type flushLog struct {
	addrs  []uint64
	deltas []uint64
}

func (f *flushLog) fn(addr, delta uint64) {
	f.addrs = append(f.addrs, addr)
	f.deltas = append(f.deltas, delta)
}

func (f *flushLog) total() uint64 {
	var s uint64
	for _, d := range f.deltas {
		s += d
	}
	return s
}

func TestThresholdFlush(t *testing.T) {
	log := &flushLog{}
	c := New(1<<20, 10, log.fn)
	for i := 0; i < 9; i++ {
		c.Add(100, 8)
	}
	if len(log.deltas) != 0 {
		t.Fatalf("flushed before threshold: %v", log.deltas)
	}
	c.Add(100, 8) // 10th increment hits t=10
	if len(log.deltas) != 1 || log.deltas[0] != 10 || log.addrs[0] != 100 {
		t.Fatalf("flush log = %+v", log)
	}
	if c.Len() != 0 {
		t.Fatal("entry not removed after flush")
	}
}

func TestCombiningReducesFAAsByThreshold(t *testing.T) {
	// The paper's claim: RDMA_FAAs reduced to up to 1/t.
	log := &flushLog{}
	c := New(1<<20, 10, log.fn)
	const accesses = 1000
	for i := 0; i < accesses; i++ {
		c.Add(42, 8)
	}
	c.FlushAll()
	if c.Flushes != accesses/10 {
		t.Fatalf("flushes = %d, want %d", c.Flushes, accesses/10)
	}
	if log.total() != accesses {
		t.Fatalf("lost increments: flushed %d of %d", log.total(), accesses)
	}
}

func TestCapacityEvictsEarliestInsert(t *testing.T) {
	log := &flushLog{}
	// Room for ~2 entries of (8+24)=32 bytes.
	c := New(64, 1000, log.fn)
	c.Add(1, 8)
	c.Add(2, 8)
	c.Add(3, 8) // overflows: entry for addr 1 (earliest) must flush
	if len(log.addrs) != 1 || log.addrs[0] != 1 {
		t.Fatalf("flush log = %+v", log)
	}
}

func TestDisabledCacheFlushesImmediately(t *testing.T) {
	log := &flushLog{}
	c := New(0, 10, log.fn)
	c.Add(7, 8)
	c.Add(7, 8)
	if len(log.deltas) != 2 || log.deltas[0] != 1 {
		t.Fatalf("disabled cache buffered: %+v", log)
	}
}

func TestPendingDeltaAndForget(t *testing.T) {
	log := &flushLog{}
	c := New(1<<20, 100, log.fn)
	c.Add(5, 8)
	c.Add(5, 8)
	if d := c.PendingDelta(5); d != 2 {
		t.Fatalf("pending = %d", d)
	}
	if d := c.PendingDelta(6); d != 0 {
		t.Fatalf("pending for absent = %d", d)
	}
	c.Forget(5)
	if c.Len() != 0 || len(log.deltas) != 0 {
		t.Fatal("forget flushed or kept the entry")
	}
	c.FlushAll()
	if len(log.deltas) != 0 {
		t.Fatal("forgotten entry flushed")
	}
}

func TestFlushAllDrainsEverything(t *testing.T) {
	log := &flushLog{}
	c := New(1<<20, 100, log.fn)
	for a := uint64(0); a < 20; a++ {
		for i := uint64(0); i <= a%5; i++ {
			c.Add(a, 8)
		}
	}
	c.FlushAll()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("len=%d used=%d after FlushAll", c.Len(), c.UsedBytes())
	}
}

// Property: no increment is ever lost or duplicated — the sum of flushed
// deltas equals the number of Adds (after FlushAll), for arbitrary access
// streams, capacities and thresholds.
func TestConservationProperty(t *testing.T) {
	f := func(addrs []uint8, capKB uint8, threshold uint8) bool {
		log := &flushLog{}
		c := New(int(capKB)*64, uint64(threshold%16)+1, log.fn)
		for _, a := range addrs {
			c.Add(uint64(a), 8)
		}
		c.FlushAll()
		return log.total() == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: per-address conservation holds as well.
func TestPerAddressConservationProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		got := map[uint64]uint64{}
		c := New(256, 5, func(a, d uint64) { got[a] += d })
		want := map[uint64]uint64{}
		for _, a := range addrs {
			want[uint64(a)]++
			c.Add(uint64(a), 8)
		}
		c.FlushAll()
		if len(got) != len(want) && len(addrs) > 0 {
			// got may have fewer keys only if want has zero-count keys —
			// impossible here, so lengths must match when non-empty.
			return false
		}
		for a, w := range want {
			if got[a] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
