package workload

import "math"

// A Shape is a deterministic load envelope over virtual time: Rate(t)
// returns the relative request intensity at time t (1.0 = baseline).
// Drivers pace an open-loop workload by dividing their baseline
// inter-arrival gap by the rate (Gap), so the same Shape reproduces the
// same arrival sequence in every run — which is what lets the chaos
// bench overlay a flash crowd on a fault schedule and stay seed-
// reproducible.
type Shape struct {
	kind shapeKind

	// Flash crowd: intensity base before start, ramping linearly to
	// peak over rampUp ns, holding for hold ns, ramping back over
	// rampDown ns.
	base, peak               float64
	start, ramp, hold, decay int64

	// Diurnal: intensity swings sinusoidally between trough (at t = 0)
	// and peak (at t = period/2) with the given period.
	period int64
	trough float64
}

type shapeKind int

const (
	steadyShape shapeKind = iota
	flashShape
	diurnalShape
)

// Steady returns the identity envelope: Rate(t) == 1 for all t.
func Steady() *Shape { return &Shape{kind: steadyShape} }

// FlashCrowd returns a flash-crowd envelope: base intensity until
// start, a linear ramp to peak over ramp ns, a plateau of hold ns, and
// a linear decay back to base over decay ns. This is the load spike the
// paper's hot-spot experiments model: a sudden crowd arriving on a
// service and leaving again.
func FlashCrowd(base, peak float64, start, ramp, hold, decay int64) *Shape {
	if base <= 0 {
		base = 1
	}
	if peak < base {
		peak = base
	}
	return &Shape{
		kind: flashShape,
		base: base, peak: peak,
		start: start, ramp: ramp, hold: hold, decay: decay,
	}
}

// Diurnal returns a day/night envelope: intensity starts at trough at
// t = 0 and swings sinusoidally up to peak at t = period/2.
func Diurnal(trough, peak float64, period int64) *Shape {
	if trough <= 0 {
		trough = 0.1
	}
	if peak < trough {
		peak = trough
	}
	if period <= 0 {
		period = 1
	}
	return &Shape{kind: diurnalShape, trough: trough, peak: peak, period: period}
}

// Rate returns the relative intensity at virtual time t.
func (s *Shape) Rate(t int64) float64 {
	switch s.kind {
	case flashShape:
		switch {
		case t < s.start:
			return s.base
		case t < s.start+s.ramp:
			frac := float64(t-s.start) / float64(s.ramp)
			return s.base + (s.peak-s.base)*frac
		case t < s.start+s.ramp+s.hold:
			return s.peak
		case t < s.start+s.ramp+s.hold+s.decay:
			frac := float64(t-s.start-s.ramp-s.hold) / float64(s.decay)
			return s.peak - (s.peak-s.base)*frac
		default:
			return s.base
		}
	case diurnalShape:
		phase := 2 * math.Pi * float64(t%s.period) / float64(s.period)
		return s.trough + (s.peak-s.trough)*(1-math.Cos(phase))/2
	default:
		return 1
	}
}

// Gap converts a baseline inter-arrival gap into the shaped gap at time
// t: higher intensity means shorter gaps. The result is at least 1 ns
// so an open-loop driver always advances virtual time.
func (s *Shape) Gap(baseGapNs, t int64) int64 {
	g := int64(float64(baseGapNs) / s.Rate(t))
	if g < 1 {
		g = 1
	}
	return g
}

// Peak returns the envelope's maximum intensity (used by benches to
// size the key set for the crowd).
func (s *Shape) Peak() float64 {
	switch s.kind {
	case flashShape:
		return s.peak
	case diurnalShape:
		return s.peak
	default:
		return 1
	}
}
