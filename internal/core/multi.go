package core

import (
	"ditto/internal/hashtable"
	"ditto/internal/sim"
)

// MultiCluster is a Ditto deployment over several memory nodes. The paper
// evaluates with one MN but notes Ditto "is compatible with memory pools
// with multiple MNs as long as the memory pool offers the required
// interfaces" (§5.1): keys are hash-partitioned across MNs, each MN hosts
// its own table shard, heap, history counter and controller. Compute-side
// elasticity is unchanged; memory elasticity gains a second axis (grow one
// MN, or add MNs at a reshard boundary).
//
// Adaptive state is kept per MN: each MN's controller aggregates the
// weights for the keys it hosts. Access patterns are hash-split, so the
// per-MN mixes converge to the global mix.
type MultiCluster struct {
	Env      *sim.Env
	clusters []*Cluster
}

// NewMultiCluster creates n memory nodes, each provisioned with opts
// scaled down by n (objects and bytes split evenly).
func NewMultiCluster(env *sim.Env, n int, opts Options) *MultiCluster {
	if n < 1 {
		panic("core: need at least one memory node")
	}
	per := opts
	per.ExpectedObjects = (opts.ExpectedObjects + n - 1) / n
	per.CacheBytes = (opts.CacheBytes + n - 1) / n
	if per.MaxCacheBytes > 0 {
		per.MaxCacheBytes = (opts.MaxCacheBytes + n - 1) / n
	}
	mc := &MultiCluster{Env: env}
	for i := 0; i < n; i++ {
		mc.clusters = append(mc.clusters, NewCluster(env, per))
	}
	return mc
}

// NumNodes returns the memory-node count.
func (mc *MultiCluster) NumNodes() int { return len(mc.clusters) }

// Node returns the i-th memory node's cluster view (for resource knobs and
// stats).
func (mc *MultiCluster) Node(i int) *Cluster { return mc.clusters[i] }

// GrowCache grows every MN's heap by bytes/n — memory elasticity across
// the pool.
func (mc *MultiCluster) GrowCache(bytes int) {
	per := (bytes + len(mc.clusters) - 1) / len(mc.clusters)
	for _, cl := range mc.clusters {
		cl.GrowCache(per)
	}
}

// MultiClient routes operations to the MN owning each key.
type MultiClient struct {
	mc      *MultiCluster
	clients []*Client
}

// NewClient connects process p to every memory node.
func (mc *MultiCluster) NewClient(p *sim.Proc) *MultiClient {
	m := &MultiClient{mc: mc}
	for _, cl := range mc.clusters {
		m.clients = append(m.clients, cl.NewClient(p))
	}
	return m
}

// route picks the owning MN for a key. The key hash is remixed
// (Fibonacci multiplier, high bits) so MN choice is independent of the
// bucket choice within the MN — FNV's high bits alone are too regular for
// short keys.
func (m *MultiClient) route(key []byte) *Client {
	h := hashtable.KeyHash(key) * 0x9E3779B97F4A7C15
	return m.clients[int((h>>33)%uint64(len(m.clients)))]
}

// Get fetches key from its owning MN.
func (m *MultiClient) Get(key []byte) ([]byte, bool) { return m.route(key).Get(key) }

// Set stores key on its owning MN.
func (m *MultiClient) Set(key, value []byte) { m.route(key).Set(key, value) }

// Delete removes key from its owning MN.
func (m *MultiClient) Delete(key []byte) bool { return m.route(key).Delete(key) }

// Close flushes buffered client state on every MN.
func (m *MultiClient) Close() {
	for _, c := range m.clients {
		c.Close()
	}
}

// Stats aggregates per-MN client stats.
func (m *MultiClient) Stats() Stats {
	var s Stats
	for _, c := range m.clients {
		s.Gets += c.Stats.Gets
		s.Sets += c.Stats.Sets
		s.Deletes += c.Stats.Deletes
		s.Hits += c.Stats.Hits
		s.Misses += c.Stats.Misses
		s.Evictions += c.Stats.Evictions
		s.Regrets += c.Stats.Regrets
		s.SetRetries += c.Stats.SetRetries
		s.BucketEvictions += c.Stats.BucketEvictions
	}
	return s
}
