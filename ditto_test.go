package ditto_test

import (
	"bytes"
	"fmt"
	"testing"

	"ditto"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	env := ditto.NewEnv(1)
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(1000, 1<<20))
	env.Go("app", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		v, ok := c.Get([]byte("k"))
		if !ok || !bytes.Equal(v, []byte("v")) {
			t.Errorf("got %q ok=%v", v, ok)
		}
		if !c.Delete([]byte("k")) {
			t.Error("delete failed")
		}
		c.Close()
	})
	env.Run()
}

func TestPublicAPICustomExperts(t *testing.T) {
	env := ditto.NewEnv(1)
	opts := ditto.DefaultOptions(500, 160<<10) // ~640 objects of this class
	opts.Experts = []string{"GDSF", "HYPERBOLIC"}
	cluster := ditto.NewCluster(env, opts)
	env.Go("app", func(p *ditto.Proc) {
		c := cluster.NewClient(p)
		for i := 0; i < 2000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i%800))
			if _, ok := c.Get(key); !ok {
				c.Set(key, make([]byte, 200))
			}
		}
		if c.Stats.Hits == 0 || c.Stats.Evictions == 0 {
			t.Errorf("stats = %+v", c.Stats)
		}
		if w := c.Weights(); len(w) != 2 {
			t.Errorf("weights = %v", w)
		}
	})
	env.Run()
}

func TestPublicAPIElasticPool(t *testing.T) {
	env := ditto.NewEnv(2)
	pool := ditto.NewMultiCluster(env, 2, ditto.DefaultOptions(1000, 1000*320))
	env.Go("app", func(p *ditto.Proc) {
		c := pool.NewClient(p)
		for i := 0; i < 200; i++ {
			c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
		}
		id := pool.AddNode()
		pool.WaitReshard(p)
		for i := 0; i < 200; i++ {
			v, ok := c.Get([]byte(fmt.Sprintf("key-%d", i)))
			if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
				t.Fatalf("key %d lost or stale after scale-out", i)
			}
		}
		pool.RemoveNode(id)
		pool.WaitReshard(p)
		if pool.NumNodes() != 2 {
			t.Fatalf("nodes = %d after scale-in", pool.NumNodes())
		}
		for i := 0; i < 200; i++ {
			if _, ok := c.Get([]byte(fmt.Sprintf("key-%d", i))); !ok {
				t.Fatalf("key %d lost after scale-in", i)
			}
		}
	})
	env.Run()
	pool.ShrinkCache(64 << 10) // both byte-granular axes exist pool-wide
	pool.GrowCache(64 << 10)
}

func TestAlgorithmsListed(t *testing.T) {
	algos := ditto.Algorithms()
	if len(algos) != 12 {
		t.Fatalf("expected the 12 integrated algorithms, got %d: %v", len(algos), algos)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		env := ditto.NewEnv(99)
		cluster := ditto.NewCluster(env, ditto.DefaultOptions(200, 128<<10))
		var hits int64
		for w := 0; w < 4; w++ {
			w := w
			env.Go("app", func(p *ditto.Proc) {
				c := cluster.NewClient(p)
				for i := 0; i < 500; i++ {
					key := []byte(fmt.Sprintf("key-%d", (i*7+w*13)%600))
					if _, ok := c.Get(key); !ok {
						c.Set(key, make([]byte, 100))
					}
				}
				hits += c.Stats.Hits
			})
		}
		env.Run()
		return hits, env.Now()
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", h1, t1, h2, t2)
	}
}
