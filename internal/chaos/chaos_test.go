package chaos

import (
	"math/rand"
	"testing"

	"ditto/internal/core"
	"ditto/internal/sim"
)

// The six fault schedules. Each one targets a crash-tolerance
// safeguard built in earlier PRs and carries at least one invariant
// that fails if that safeguard is reverted:
//
//   - MN crash mid-reshard     → CrashNode's atomic ring+membership
//     update and ring.Without stability (survivor keys keep owners).
//   - resharder killed mid-way → spawnResharder's OnCrash respawn and
//     the shared reshardState (reshard completes, zero keys lost).
//   - replica node loss        → invalidate-first replica writes and
//     hotset crash wake/lock stealing (no stale spread reads).
//   - reclaimer killed         → spawnReclaimer's OnCrash respawn and
//     verb-plan eviction free accounting (no double free, no wedge).
//   - MN crash mid-reclaim, two tenants → quota-steered victim
//     nomination and per-tenant byte accounting (the in-quota tenant
//     loses nothing outside the crashed node, and every surviving
//     node's tenant cells still sum to its live heap bytes).
//   - stale hints across crash+reshard+reclaim → the speculative Get's
//     read-validate fallback ladder and the incarnation/free-stamp
//     discipline (hints are never invalidated, yet deleted keys stay
//     deleted and no read returns another tenant's bytes).

// TestChaosMNCrashMidReshard crashes a seed-chosen original node while
// an AddNode reshard is migrating keys onto a new one, with a reader
// sampling throughout. A key may disappear only if the victim owned it
// under the old OR the new ring (its single copy lived on one of the
// two); every other key must keep its exact confirmed value, and the
// reconfigured pool must converge.
func TestChaosMNCrashMidReshard(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const keys = 600
		h := New(t, seed, 4, keys, core.DefaultOptions(8000, 8000*320))
		mc, env, fs := h.MC, h.Env, h.FS
		done := false
		finished := false
		env.Go("driver", func(p *sim.Proc) {
			c := mc.NewClient(p)
			for i := 0; i < keys; i++ {
				h.MustSet(c, i, 1)
			}
			oldOwner := make([]int, keys)
			for i := range oldOwner {
				oldOwner[i] = mc.OwnerOf(Key(i))
			}
			victim := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
			newID := mc.AddNode()
			h.TrackNode(newID)
			newOwner := make([]int, keys)
			for i := range newOwner {
				newOwner[i] = mc.OwnerOf(Key(i))
			}
			tCrash := fs.Between(env.Now()+20_000, env.Now()+300_000,
				"crash-mn", func(*sim.Proc) { mc.CrashNode(victim) })
			mc.WaitReshard(p)
			for env.Now() <= tCrash {
				p.Sleep(50_000)
			}
			survivors, lost := 0, 0
			for i := 0; i < keys; i++ {
				mayLose := oldOwner[i] == victim || newOwner[i] == victim
				if _, ok := h.Get(c, i); !ok {
					if !mayLose {
						h.Failf("key %d lost but neither of its owners crashed (old=%d new=%d victim=%d)",
							i, oldOwner[i], newOwner[i], victim)
					}
					lost++
					continue
				}
				survivors++
			}
			if survivors == 0 {
				h.Failf("every key lost after one crash of %d nodes", 4)
			}
			h.CheckConverged(c, 0, keys)
			done = true
			if mc.NodeCrashes != 1 {
				h.Failf("NodeCrashes=%d, want 1", mc.NodeCrashes)
			}
			finished = true
		})
		env.Go("reader", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
			c := mc.NewClient(p)
			// Deadline-bounded: if the driver wedges (a reverted respawn
			// hook), the reader must drain too so the sim runs out of
			// events and the finished check reports the wedge.
			for !done && env.Now() < 60_000_000 {
				h.Get(c, rng.Intn(keys))
				p.Sleep(2_000)
			}
		})
		env.Run()
		if !finished {
			h.Failf("driver never finished (reshard or recovery wedged)")
		}
	})
}

// TestChaosResharderKilledMidMigration kills the resharder process one
// or two times (seed-chosen) while a RemoveNode drain is migrating
// keys. No memory node dies, so the respawned resharder must finish the
// drain with ZERO keys lost — and the model must stay exact throughout.
func TestChaosResharderKilledMidMigration(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const keys = 500
		h := New(t, seed, 3, keys, core.DefaultOptions(6000, 6000*320))
		mc, env, fs := h.MC, h.Env, h.FS
		done := false
		finished := false
		killsLanded := 0
		env.Go("driver", func(p *sim.Proc) {
			c := mc.NewClient(p)
			for i := 0; i < keys; i++ {
				h.MustSet(c, i, 1)
			}
			drop := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
			mc.RemoveNode(drop)
			kill := func(*sim.Proc) {
				if rp := env.FindProc("resharder"); rp != nil && env.Kill(rp) {
					killsLanded++
				}
			}
			fs.Between(env.Now()+20_000, env.Now()+250_000, "kill-resharder", kill)
			if fs.Rand().Intn(2) == 0 {
				fs.Between(env.Now()+260_000, env.Now()+500_000, "kill-resharder-2", kill)
			}
			mc.WaitReshard(p)
			for i := 0; i < keys; i++ {
				if _, ok := h.Get(c, i); !ok {
					h.Failf("key %d lost to a resharder crash (no memory node died)", i)
				}
			}
			done = true
			if int(mc.ReshardRestarts) != killsLanded {
				h.Failf("ReshardRestarts=%d but %d kills landed", mc.ReshardRestarts, killsLanded)
			}
			h.CheckConverged(c, 0, keys)
			finished = true
		})
		env.Go("reader", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed ^ 0x51ed2701))
			c := mc.NewClient(p)
			for !done && env.Now() < 60_000_000 {
				h.Get(c, rng.Intn(keys))
				p.Sleep(1_500)
			}
		})
		env.Run()
		if !finished {
			h.Failf("reshard never completed after %d resharder kills", killsLanded)
		}
	})
}

// TestChaosReplicaNodeLossUnderSpreadReads promotes a handful of hot
// keys (replication factor 2), then crashes a seed-chosen node in the
// middle of a mixed read/write storm over those keys. The per-read
// checks carry the invariant: a hit must be the latest confirmed
// version — a stale replica surviving an invalidate-first write, or a
// read routed to a dead replica's ghost copy, fails the run.
func TestChaosReplicaNodeLossUnderSpreadReads(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const keys = 64
		const hot = 8
		h := New(t, seed, 4, keys, core.DefaultOptions(4000, 4000*320))
		mc, env, fs := h.MC, h.Env, h.FS
		mc.EnableHotKeyReplication(2, 8, 32)
		finished := false
		env.Go("driver", func(p *sim.Proc) {
			c := mc.NewClient(p)
			for i := 0; i < keys; i++ {
				h.MustSet(c, i, 1)
			}
			// Hammer the hot subset until promotion happens.
			for r := 0; r < 40; r++ {
				for i := 0; i < hot; i++ {
					h.Get(c, i)
				}
			}
			victim := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
			tCrash := fs.Between(env.Now()+10_000, env.Now()+200_000,
				"crash-replica-node", func(*sim.Proc) { mc.CrashNode(victim) })
			rng := rand.New(rand.NewSource(seed ^ 0x2545f491))
			for env.Now() < tCrash+400_000 {
				i := rng.Intn(hot)
				if rng.Intn(6) == 0 {
					h.BumpSet(c, i)
				} else {
					h.Get(c, i)
				}
				p.Sleep(1_000)
			}
			if mc.NodeCrashes != 1 {
				h.Failf("NodeCrashes=%d, want 1", mc.NodeCrashes)
			}
			h.CheckConverged(c, 0, keys)
			finished = true
		})
		// A second independent reader spreads load across replicas
		// concurrently with the writer — the interleaving that exposes
		// stale copies if invalidate-first ordering is reverted.
		env.Go("spreader", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
			c := mc.NewClient(p)
			for !finished && env.Now() < 60_000_000 {
				h.Get(c, rng.Intn(hot))
				p.Sleep(900)
			}
		})
		env.Run()
		if !finished {
			h.Failf("driver wedged across the replica-node crash")
		}
	})
}

// TestChaosMNCrashMidReclaimTwoTenants runs a noisy over-quota tenant's
// write churn past pool capacity (background reclaimers continuously
// evicting, quota steering pointed at the noisy tenant) alongside a
// small in-quota tenant, then crashes a seed-chosen node mid-reclaim.
// Invariants through recovery:
//
//   - the in-quota tenant loses NO key outside the crashed node's
//     ownership — sustained quota-steered reclaim never chose one of
//     its victims, and the crash takes only what it hosted;
//   - every surviving node's per-tenant accounting cells sum exactly to
//     its live heap bytes (no drift through evictions, overwrites, or
//     the crash window's ambiguous writes);
//   - free tracking (armed by the harness) panics on any double free;
//   - the reconfigured pool converges for both tenants.
func TestChaosMNCrashMidReclaimTwoTenants(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const quietKeys = 40
		const span = 4000 // noisy churn keys, ~1.6x pool capacity
		const keys = quietKeys + span
		h := New(t, seed, 3, keys, core.DefaultOptions(2500, 2500*320))
		h.ValSize = 240
		mc, env, fs := h.MC, h.Env, h.FS
		// Tenant mode BEFORE any write (accounting is gated on it). The
		// noisy tenant's quota binds at ~200 KB — far below the churn's
		// working set — so reclaim steers at it for the whole run; the
		// quiet tenant's never binds.
		mc.SetTenantQuota(1, 200*1024)
		mc.SetTenantQuota(2, 1<<40)
		for i := 0; i < mc.NumNodes(); i++ {
			mc.Node(i).EnableBackgroundReclaim(0, 0)
		}
		finished := false
		crashed := false
		env.Go("driver", func(p *sim.Proc) {
			noisy := mc.NewClient(p)
			noisy.BindTenant(1)
			quiet := mc.NewClient(p)
			quiet.BindTenant(2)
			for i := 0; i < quietKeys; i++ {
				h.MustSet(quiet, i, 1)
			}
			owner := make([]int, quietKeys)
			for i := range owner {
				owner[i] = mc.OwnerOf(Key(i))
			}
			victim := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
			fs.Between(1_500_000, 5_000_000, "crash-mn-mid-reclaim", func(*sim.Proc) {
				mc.CrashNode(victim)
				crashed = true
			})
			rng := rand.New(rand.NewSource(seed ^ 0x3c6ef372))
			for i := 0; i < span; i++ {
				h.Set(noisy, quietKeys+i, 1)
				if i%8 == 0 { // keep the quiet tenant's reads flowing
					h.Get(quiet, rng.Intn(quietKeys))
				}
			}
			if !crashed {
				h.Failf("crash never landed inside the churn window")
			}
			if mc.NodeCrashes != 1 {
				h.Failf("NodeCrashes=%d, want 1", mc.NodeCrashes)
			}
			// Quota invariant through sustained reclaim + crash: the
			// in-quota tenant's only legal losses are the crashed node's.
			for i := 0; i < quietKeys; i++ {
				if _, ok := h.Get(quiet, i); !ok && owner[i] != victim {
					h.Failf("in-quota tenant lost key %d owned by surviving node %d (victim=%d)",
						i, owner[i], victim)
				}
			}
			// Accounting identity on every surviving node: tenant cells
			// sum to live heap bytes, through evictions and the crash.
			for i := 0; i < mc.NumNodes(); i++ {
				cl := mc.Node(i)
				var sum int64
				for tnt := 0; tnt < 3; tnt++ {
					sum += cl.TenantUsage(core.TenantID(tnt))
				}
				if sum != int64(cl.MN.UsedBytes) {
					h.Failf("node %d: tenant usage %d != live bytes %d after crash+reclaim",
						mc.NodeID(i), sum, cl.MN.UsedBytes)
				}
			}
			h.CheckConverged(quiet, 0, quietKeys)
			// The noisy tenant converges only eventually: while it is over
			// quota, steering narrows every eviction sample to ITS keys, so
			// even a freshly rewritten one is legal fodder. Lifting the
			// quota (the operator's post-incident move) restores the global
			// policy — but the crash-shrunk pool is still draining over
			// budget, and under LFU every once-written object ties at
			// freq 1, so fresh rewrites stay legal victims until the drain
			// settles. Bounded rewrite-and-read retries are the sound
			// check; a key that cannot stick at all means a wedge.
			mc.SetTenantQuota(1, 1<<40)
			h.CheckEventuallyConverged(noisy, keys-200, keys)
			finished = true
		})
		env.Run()
		if !finished {
			h.Failf("driver never finished (reclaim or recovery wedged)")
		}
	})
}

// TestChaosReclaimerKilledUnderChurn kills background reclaimers (one
// or two kills, seed-chosen) while a write churn runs the pool well
// past capacity. No node dies, so every write must land; memnode free
// tracking (armed by the harness) panics the run on any double free in
// the eviction/reclaim paths; and the respawned reclaimers must keep
// evicting — the pool must not wedge.
func TestChaosReclaimerKilledUnderChurn(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const span = 6000
		h := New(t, seed, 2, span, core.DefaultOptions(2500, 2500*320))
		h.ValSize = 240
		mc, env, fs := h.MC, h.Env, h.FS
		for i := 0; i < mc.NumNodes(); i++ {
			mc.Node(i).EnableBackgroundReclaim(0, 0)
		}
		finished := false
		killsLanded := 0
		kill := func(*sim.Proc) {
			if rp := env.FindProc("reclaimer"); rp != nil && env.Kill(rp) {
				killsLanded++
			}
		}
		fs.Between(2_000_000, 6_000_000, "kill-reclaimer", kill)
		fs.Between(6_500_000, 12_000_000, "kill-reclaimer-2", kill)
		env.Go("churn", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed ^ 0x61c88647))
			c := mc.NewClient(p)
			for i := 0; i < span; i++ {
				h.MustSet(c, i, 1)
				if i%16 == 0 && i > 50 {
					h.Get(c, i-rng.Intn(40))
				}
			}
			if killsLanded == 0 {
				h.Failf("no reclaimer kill landed; the schedule proved nothing")
			}
			restarts := 0
			evictions := int64(0)
			for i := 0; i < mc.NumNodes(); i++ {
				restarts += int(mc.Node(i).ReclaimerRestarts())
				evictions += mc.Node(i).ReclaimerStats().Evictions
			}
			if restarts != killsLanded {
				h.Failf("reclaimer restarts=%d but %d kills landed", restarts, killsLanded)
			}
			if evictions == 0 {
				h.Failf("respawned reclaimers never evicted under churn")
			}
			// The most recent window must be exact: churn overwrote
			// nothing here, so hits must carry the right versions and
			// the pool must still accept writes.
			h.CheckConverged(c, span-200, span)
			finished = true
		})
		env.Run()
		if !finished {
			h.Failf("churn never completed (reclaimer loss wedged writes)")
		}
	})
}

// TestChaosStaleHintsAcrossCrashReshardReclaim is the only schedule
// that turns the client-side location cache ON — and then invalidates
// nothing, ever, while making every recorded hint stale in a different
// way: an MN crash drops a node's heap wholesale, an AddNode reshard
// migrates keys (freeing the source copies), quota-steered reclaim
// churns the noisy tenant's blocks through free/realloc cycles, and a
// writer bumps versions under an independent reader's feet. Speculative
// Gets ride those stale hints throughout; read-validate must reject
// every dead image. Invariants:
//
//   - a key deleted after the reshard settles stays deleted on every
//     re-read — including through a reader whose hint for it was
//     recorded before the delete and never dropped (no resurrection
//     from a freed-then-reused block);
//   - every hit parses exactly (parseVal): a speculative read that
//     returns another tenant's bytes — a stale hint landing on a
//     reallocated block — fails as corruption;
//   - the usual model checks on every read: no stale version, no
//     phantom, per-client monotonic;
//   - the in-quota tenant loses no key outside the crashed node's
//     ownership, and the pool converges for both tenants.
func TestChaosStaleHintsAcrossCrashReshardReclaim(t *testing.T) {
	RunSeeds(t, func(t *testing.T, seed int64) {
		const quietKeys = 40
		const tombKeys = 16
		const span = 4000 // noisy churn keys, ~1.6x pool capacity
		const keys = quietKeys + tombKeys + span
		opts := core.DefaultOptions(2500, 2500*320)
		// Far fewer slots than live hints per client, so CLOCK eviction
		// churns the hint set at the same time the hints themselves rot.
		opts.LocCacheSlots = 64
		h := New(t, seed, 3, keys, opts)
		h.ValSize = 240
		mc, env, fs := h.MC, h.Env, h.FS
		mc.SetTenantQuota(1, 200*1024) // noisy: binds far below the churn
		mc.SetTenantQuota(2, 1<<40)    // quiet: never binds
		for i := 0; i < mc.NumNodes(); i++ {
			mc.Node(i).EnableBackgroundReclaim(0, 0)
		}
		finished := false
		crashed := false
		deleted := false
		done := false
		var noisy, quiet, spec *core.MultiClient
		env.Go("driver", func(p *sim.Proc) {
			noisy = mc.NewClient(p)
			noisy.BindTenant(1)
			quiet = mc.NewClient(p)
			quiet.BindTenant(2)
			for i := 0; i < quietKeys; i++ {
				h.MustSet(quiet, i, 1)
			}
			// Tombstone keys: written and hinted now, deleted later. The
			// independent reader hints them too — ITS hints survive the
			// delete (only the deleting client drops its own).
			for i := 0; i < tombKeys; i++ {
				h.MustSet(noisy, quietKeys+i, 1)
				h.Get(noisy, quietKeys+i)
			}
			owner := make([]int, quietKeys)
			for i := range owner {
				owner[i] = mc.OwnerOf(Key(i))
			}
			victim := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
			newID := mc.AddNode()
			h.TrackNode(newID)
			newOwner := make([]int, quietKeys)
			for i := range newOwner {
				newOwner[i] = mc.OwnerOf(Key(i))
			}
			fs.Between(1_500_000, 5_000_000, "crash-mn-stale-hints", func(*sim.Proc) {
				mc.CrashNode(victim)
				crashed = true
			})
			rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
			base := quietKeys + tombKeys
			for i := 0; i < span; i++ {
				h.Set(noisy, base+i, 1)
				if i%8 == 0 { // rot the reader's quiet hints by version
					h.BumpSet(quiet, rng.Intn(quietKeys))
				}
				if i%8 == 4 {
					h.Get(quiet, rng.Intn(quietKeys))
				}
			}
			if !crashed {
				h.Failf("crash never landed inside the churn window")
			}
			if mc.NodeCrashes != 1 {
				h.Failf("NodeCrashes=%d, want 1", mc.NodeCrashes)
			}
			// Delete only once the ring is stable: a delete racing a live
			// migration may legally flicker (deleteDirect's contract), and
			// this schedule's claim is about HINTS, not reshard ordering.
			mc.WaitReshard(p)
			for i := 0; i < tombKeys; i++ {
				noisy.Delete(Key(quietKeys + i))
			}
			deleted = true
			// Keep churning so the tombstones' freed blocks are reallocated
			// under live hints, then re-read them: deleted keys must stay
			// deleted through this client's full walk too.
			for r := 0; r < 4; r++ {
				for i := 0; i < span/8; i++ {
					h.BumpSet(noisy, base+rng.Intn(span))
				}
				for i := 0; i < tombKeys; i++ {
					if v, ok := h.Get(noisy, quietKeys+i); ok {
						h.Failf("deleted key %d resurrected (v%d) after churn round %d",
							quietKeys+i, v, r)
					}
				}
			}
			// Quota invariant through reclaim + crash, as in the two-tenant
			// reclaim schedule: the in-quota tenant's only legal losses are
			// the crashed node's (under either ring).
			for i := 0; i < quietKeys; i++ {
				if _, ok := h.Get(quiet, i); !ok && owner[i] != victim && newOwner[i] != victim {
					h.Failf("in-quota tenant lost key %d owned by surviving nodes %d/%d (victim=%d)",
						i, owner[i], newOwner[i], victim)
				}
			}
			h.CheckConverged(quiet, 0, quietKeys)
			done = true
			mc.SetTenantQuota(1, 1<<40)
			h.CheckEventuallyConverged(noisy, keys-200, keys)
			finished = true
		})
		// Independent speculating reader: its hints for the quiet and
		// tombstone keys are recorded early and never refreshed by the
		// driver's writes or deletes, so they go stale through every fault
		// in the schedule while it keeps reading through them.
		env.Go("speculator", func(p *sim.Proc) {
			spec = mc.NewClient(p)
			spec.BindTenant(2)
			rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
			for !done && env.Now() < 120_000_000 {
				i := rng.Intn(quietKeys + tombKeys)
				v, ok := h.Get(spec, i)
				if ok && deleted && i >= quietKeys {
					h.Failf("deleted key %d resurrected through a stale hint (v%d)", i, v)
				}
				p.Sleep(2_000)
			}
		})
		env.Run()
		if !finished {
			h.Failf("driver never finished (hint fallback, reshard, or reclaim wedged)")
		}
		// The schedule is vacuous if speculation never actually ran — or
		// if no stale hint was ever exercised. Require both outcomes.
		st := noisy.Stats()
		st.Add(quiet.Stats())
		st.Add(spec.Stats())
		if st.SpecGetHits == 0 {
			h.Failf("no speculative Get ever hit: the schedule exercised nothing")
		}
		if st.SpecGetFallbacks == 0 {
			h.Failf("no speculative Get ever fell back: no hint went stale under faults")
		}
	})
}
