package core

import (
	"testing"

	"ditto/internal/sim"
	"ditto/internal/workload"
)

// forceEvictions fills the cache well past capacity.
func forceEvictions(c *Client, n int) {
	for i := 0; i < n; i++ {
		c.Set(key(i), value(i))
	}
}

func TestAblationSFHTCostsExtraReads(t *testing.T) {
	// Without the sample-friendly hash table, every eviction candidate
	// costs an extra READ (metadata lives with the object).
	run := func(disable bool) int64 {
		env := sim.NewEnv(1)
		opts := DefaultOptions(100, 100*320)
		opts.DisableSFHT = disable
		cl := NewCluster(env, opts)
		var reads int64
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			forceEvictions(c, 600)
			reads = cl.MN.Node.Stats.Reads
		})
		env.Run()
		return reads
	}
	with, without := run(false), run(true)
	if without <= with {
		t.Fatalf("DisableSFHT used %d READs, full design %d — ablation has no cost", without, with)
	}
}

func TestAblationLWHCostsExtraVerbs(t *testing.T) {
	run := func(disable bool) int64 {
		env := sim.NewEnv(1)
		opts := DefaultOptions(100, 100*320)
		opts.DisableLWH = disable
		cl := NewCluster(env, opts)
		var total int64
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			forceEvictions(c, 600)
			for i := 0; i < 600; i++ {
				c.Get(key(i)) // misses probe the (conventional) history index
			}
			total = cl.MN.Node.Stats.Total()
		})
		env.Run()
		return total
	}
	with, without := run(false), run(true)
	if without <= with {
		t.Fatalf("DisableLWH used %d verbs, lightweight %d — ablation has no cost", without, with)
	}
}

func TestAblationFCCacheReducesFAAs(t *testing.T) {
	run := func(fcBytes int) int64 {
		env := sim.NewEnv(1)
		opts := DefaultOptions(1000, 1000*320)
		opts.FCCacheBytes = fcBytes
		cl := NewCluster(env, opts)
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			c.Set([]byte("hot"), []byte("v"))
			for i := 0; i < 1000; i++ {
				c.Get([]byte("hot"))
			}
		})
		env.Run()
		return cl.MN.Node.Stats.FAAs
	}
	with, without := run(10<<20), run(0)
	if with*5 > without {
		t.Fatalf("FC cache only reduced FAAs %d -> %d (want >= 5x on a hot key)", without, with)
	}
}

func TestAdaptiveBeatsWorstExpertOnChangingWorkload(t *testing.T) {
	// End-to-end adaptivity: on a phase-alternating workload the adaptive
	// configuration must at least clearly beat the losing expert and sit
	// near the winning one.
	trace := workload.Changing(12000, 4000, 77).Build()
	run := func(experts ...string) float64 {
		env := sim.NewEnv(5)
		opts := DefaultOptions(400, 400*320)
		opts.Experts = experts
		cl := NewCluster(env, opts)
		var hits, total int
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for _, r := range trace {
				kb := workload.KeyBytes(r.Key)
				if _, ok := c.Get(kb); ok {
					hits++
				} else {
					c.Set(kb, value(int(r.Key)))
				}
				total++
			}
		})
		env.Run()
		return float64(hits) / float64(total)
	}
	lru := run("LRU")
	lfu := run("LFU")
	both := run("LRU", "LFU")
	worst, best := lru, lfu
	if lfu < worst {
		worst, best = lfu, lru
	}
	// The adaptive configuration must never sit materially below the losing
	// expert, and when the experts clearly differ it must land at least a
	// quarter of the way toward the winner.
	if both < worst-0.01 {
		t.Fatalf("adaptive %.3f below worst expert %.3f (lru %.3f lfu %.3f)",
			both, worst, lru, lfu)
	}
	if best-worst > 0.02 && both <= worst+(best-worst)/4 {
		t.Fatalf("adaptive %.3f did not track the better expert (lru %.3f lfu %.3f)",
			both, lru, lfu)
	}
}

func TestDisableSFHTStillCorrect(t *testing.T) {
	env := sim.NewEnv(1)
	opts := DefaultOptions(200, 200*320)
	opts.DisableSFHT = true
	opts.DisableLWH = true
	opts.EagerWeightSync = true
	cl := NewCluster(env, opts)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 1000; i++ {
			kb := key(i % 400)
			if _, ok := c.Get(kb); !ok {
				c.Set(kb, value(i%400))
			}
		}
		if c.Stats.Hits == 0 {
			t.Error("no hits under ablation config")
		}
		v, ok := c.Get(key(399))
		if ok && len(v) != 64 {
			t.Errorf("corrupted value under ablation config: %d bytes", len(v))
		}
	})
	env.Run()
}

func TestSampleKInfluencesEvictionQuality(t *testing.T) {
	// Larger K approximates the exact policy better: with K=16 the LRU
	// expert must retain recent keys at least as well as K=1 (random-ish).
	run := func(k int) float64 {
		env := sim.NewEnv(9)
		opts := DefaultOptions(150, 150*320)
		opts.Experts = []string{"LRU"}
		opts.SampleK = k
		cl := NewCluster(env, opts)
		var hits, total int
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for i := 0; i < 6000; i++ {
				k := (i / 4) % 300 // working set ~300 with recency structure
				kb := key(k)
				if _, ok := c.Get(kb); ok {
					hits++
				} else {
					c.Set(kb, value(k))
				}
				total++
			}
		})
		env.Run()
		return float64(hits) / float64(total)
	}
	k1, k16 := run(1), run(16)
	if k16 < k1 {
		t.Fatalf("K=16 hit rate %.3f below K=1 %.3f", k16, k1)
	}
}
