package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse wraps one source string into the file list buildAllowIndex
// consumes.
func parse(t *testing.T, src string) (*token.FileSet, []*Diagnostic, allowIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := buildAllowIndex(fset, []*ast.File{f})
	out := make([]*Diagnostic, len(bad))
	for i := range bad {
		out[i] = &bad[i]
	}
	return fset, out, idx
}

func TestAllowAnnotationParsing(t *testing.T) {
	src := `package p

func a() {
	//dittolint:allow simdet (order-independent body)
	_ = 1
}

func b() {
	//dittolint:allow typederr
	_ = 2
}

func c() {
	// dittolint:allow is mentioned in prose here, with a space after
	// the slashes: not an annotation, not malformed either.
	_ = 3
}
`
	_, bad, idx := parse(t, src)
	// b's annotation has no parenthesized reason: exactly one malformed
	// finding, attributed to the pseudo-analyzer "allow".
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed annotation, got %d: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "allow" || !strings.Contains(bad[0].Message, "malformed") {
		t.Fatalf("unexpected malformed diagnostic: %v", bad[0])
	}
	// a's annotation suppresses simdet on its own line (4) and the line
	// below (5) — and only for simdet.
	if !idx.allows("simdet", token.Position{Filename: "fix.go", Line: 5}) {
		t.Error("annotation does not cover the line below it")
	}
	if !idx.allows("simdet", token.Position{Filename: "fix.go", Line: 4}) {
		t.Error("annotation does not cover its own line")
	}
	if idx.allows("simdet", token.Position{Filename: "fix.go", Line: 6}) {
		t.Error("annotation leaks two lines down")
	}
	if idx.allows("verbplan", token.Position{Filename: "fix.go", Line: 5}) {
		t.Error("annotation suppresses an analyzer it does not name")
	}
}

func TestLoaderResolvesModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "ditto" {
		t.Fatalf("module path = %q, want ditto", l.ModulePath())
	}
	pkg, err := l.Load("ditto/internal/exec")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "exec" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	paths, err := l.ListPackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Fatalf("ListPackages leaked a testdata dir: %s", p)
		}
	}
}
