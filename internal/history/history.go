// Package history implements Ditto's lightweight eviction history
// (§4.3.1): the record of "who evicted what" that the distributed adaptive
// caching scheme mines for regrets.
//
// Monolithic adaptive caches keep an actual FIFO queue plus a hash index
// of history entries. On DM both would cost extra round trips, so Ditto:
//
//   - embeds history entries in the sample-friendly hash table itself: an
//     evicted object's slot is CASed from (fp|size|pointer) to
//     (fp|0xFF|historyID), its hash field is left in place for regret
//     matching, and the insert_ts field is reused for the expert bitmap;
//   - replaces the FIFO queue with a *logical* one built from a global
//     48-bit circular counter in MN memory: each entry's history ID is a
//     position in a logical ring, and an entry is expired once the counter
//     has advanced more than the history capacity past it (lazy eviction —
//     expired entries are simply reclaimed by later inserts).
package history

import (
	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
)

// counterMask keeps IDs within the 48-bit circular space (the pointer
// field of a slot holds 6 bytes).
const counterMask = (uint64(1) << 48) - 1

// Client is one Ditto client's view of the eviction history.
type Client struct {
	ep       *rdma.Endpoint
	ht       *hashtable.Handle
	capacity uint64 // l: logical FIFO queue length (entries)

	// cachedCounter is the last observed global counter value. FAAs on
	// insert refresh it for free; expiry checks use it (slight staleness is
	// safe: it only delays expiry by at most the staleness).
	cachedCounter uint64

	// Inserts and Expired count history entries created and entries
	// detected expired during validity checks.
	Inserts, Expired int64
}

// NewClient creates a history client over the given endpoint/table with a
// FIFO capacity of l entries. The paper sets l to the cache size in
// objects (following LeCaR).
func NewClient(ep *rdma.Endpoint, ht *hashtable.Handle, l int) *Client {
	if l < 1 {
		panic("history: capacity must be >= 1")
	}
	return &Client{ep: ep, ht: ht, capacity: uint64(l)}
}

// Capacity returns l.
func (c *Client) Capacity() uint64 { return c.capacity }

// NextID atomically fetches-and-increments the global history counter
// (one RDMA_FAA) and returns the acquired history ID — the synchronous
// issue of NextIDOp, absorbed by AbsorbID.
func (c *Client) NextID() uint64 {
	op := c.NextIDOp()
	return c.AbsorbID(c.ep.FAA(op.Addr, op.Delta))
}

// NextIDOp returns the RDMA_FAA verb that acquires a history ID, for
// callers that post it inside a doorbell batch instead of issuing it
// synchronously (the eviction verb plan). Feed the completion's old
// value to AbsorbID.
func (c *Client) NextIDOp() rdma.BatchOp {
	return rdma.BatchOp{Kind: rdma.BatchFAA, Addr: memnode.HistCounterAddr, Delta: 1}
}

// AbsorbID folds a NextIDOp completion (the FAA's old value) into the
// client's cached counter, exactly as NextID would have, and returns the
// acquired history ID.
func (c *Client) AbsorbID(old uint64) uint64 {
	v := old & counterMask
	c.cachedCounter = (v + 1) & counterMask
	return v
}

// EntryFor builds the history-entry atomic field that replaces a
// victim's slot: same fingerprint, the history size sentinel, and the
// acquired ID in the pointer bits — the swap value of Insert's CAS, for
// plans that stage that CAS themselves.
func EntryFor(victim hashtable.Slot, id uint64) hashtable.AtomicField {
	return hashtable.EncodeAtomic(victim.Atomic.FP(), hashtable.SizeHistory, id)
}

// FinishInsert applies the post-CAS effects of a history insert staged
// by a plan (the CAS itself already won): the asynchronous expert-bitmap
// WRITE and the insert count. Insert = NextIDOp/AbsorbID + the EntryFor
// CAS + FinishInsert.
func (c *Client) FinishInsert(victimAddr uint64, expertBitmap uint64) {
	c.ht.WriteExpertBitmap(victimAddr, expertBitmap)
	c.Inserts++
}

// RefreshCounter reads the global counter (one RDMA_READ); normally
// unnecessary because inserts refresh it, but exposed for clients that
// only ever look up.
func (c *Client) RefreshCounter() uint64 {
	buf := c.ep.Read(memnode.HistCounterAddr, 8)
	v := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40
	c.cachedCounter = v & counterMask
	return c.cachedCounter
}

// IsExpired reports whether a history ID has logically left the FIFO
// queue, honouring 48-bit wrap-around (§4.3.1's validity check with
// v1, v2 and l).
func (c *Client) IsExpired(id uint64) bool {
	d := (c.cachedCounter - id) & counterMask
	expired := d > c.capacity
	if expired {
		c.Expired++
	}
	return expired
}

// Age returns the entry's logical position in the FIFO queue (0 = newest);
// the regret penalty discount d^t uses it as t.
func (c *Client) Age(id uint64) uint64 {
	return (c.cachedCounter - id) & counterMask
}

// Insert converts a victim's slot into a history entry: one RDMA_FAA for
// the ID (in NextID), one RDMA_CAS on the atomic field, and an
// asynchronous RDMA_WRITE of the expert bitmap into the insert_ts field.
// It returns the history ID and whether the CAS won (a concurrent client
// may have raced on the same victim). Insert IS the synchronous
// composition of the plan-facing pieces (NextIDOp/AbsorbID + EntryFor +
// FinishInsert), so the two execution shapes cannot drift apart.
func (c *Client) Insert(victim hashtable.Slot, expertBitmap uint64) (uint64, bool) {
	id := c.NextID()
	if _, ok := c.ht.CASAtomic(victim.Addr, victim.Atomic, EntryFor(victim, id)); !ok {
		return id, false
	}
	c.FinishInsert(victim.Addr, expertBitmap)
	return id, true
}

// Match inspects a slot encountered during lookup and reports whether it
// is a valid (unexpired) history entry for the key hash — i.e. a regret.
// The expert bitmap and the entry's age are returned for weight updates.
func (c *Client) Match(slot hashtable.Slot, keyHash uint64) (bitmap uint64, age uint64, ok bool) {
	if !slot.Atomic.IsHistory() || slot.Hash != keyHash {
		return 0, 0, false
	}
	id := slot.Atomic.Pointer()
	if c.IsExpired(id) {
		return 0, 0, false
	}
	return uint64(slot.InsertTs), c.Age(id), true
}

// Reclaimable reports whether a slot may be treated as empty by an insert:
// truly empty, an expired history entry (lazy eviction), or a consumed
// history entry whose hash was cleared after its regret was collected.
func (c *Client) Reclaimable(slot hashtable.Slot) bool {
	if slot.Atomic.IsEmpty() {
		return true
	}
	if !slot.Atomic.IsHistory() {
		return false
	}
	if slot.Hash == 0 {
		return true
	}
	return c.IsExpired(slot.Atomic.Pointer())
}

// ClearHash marks a history entry consumed after its regret has been
// collected (one asynchronous RDMA_WRITE zeroing the hash field), so the
// same miss cannot be penalized twice and inserts may reclaim the slot —
// the embedded-history equivalent of LeCaR deleting a history entry on a
// history hit.
func (c *Client) ClearHash(slotAddr uint64) {
	c.ht.WriteMetaOnInsert(slotAddr, 0, 0, 0, 0)
}
