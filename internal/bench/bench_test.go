package bench

import (
	"bytes"
	"strings"
	"testing"

	"ditto/internal/sim"
	"ditto/internal/workload"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"": Quick, "quick": Quick, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("no error for unknown scale")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	want := []string{"1", "2", "3", "4", "5", "13", "14", "15", "16", "17",
		"18", "19", "20", "21", "22", "23", "24", "25", "table3"}
	for _, id := range want {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	extras := []string{"abl-k", "abl-fct", "abl-batch", "abl-hist", "abl-mn",
		"elastic-reshard", "batched-throughput"}
	for _, id := range extras {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("extra experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(want)+len(extras) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want)+len(extras))
	}
	for id, e := range Experiments {
		if e.Desc == "" {
			t.Errorf("experiment %s has no description", id)
		}
		if Describe(id) != e.Desc {
			t.Errorf("Describe(%s) mismatch", id)
		}
	}
}

func TestElasticReshardScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("elastic-reshard", &buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"before (2 MN)", "reshard", "after (4 MN)", "keys migrated"} {
		if !strings.Contains(out, want) {
			t.Errorf("elastic-reshard output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "reshards: 0") || strings.Contains(out, "keys migrated: 0 ") {
		t.Errorf("no live migration happened:\n%s", out)
	}
	if !strings.Contains(out, "final MNs: 4") {
		t.Errorf("scale-out did not reach 4 MNs:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("99", &bytes.Buffer{}, Quick); err == nil {
		t.Fatal("no error for unknown experiment")
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table3", &buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, algo := range []string{"LRU", "LFU", "GDSF", "HYPERBOLIC"} {
		if !strings.Contains(out, algo) {
			t.Errorf("table 3 missing %s", algo)
		}
	}
}

func TestFig04ShowsCrossover(t *testing.T) {
	// The calibrated webmail workload must reproduce the paper's Figure 4
	// shape: LRU best at small cache sizes, LFU best at large ones.
	var buf bytes.Buffer
	if err := Fig04(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	firstBest, lastBest := "", ""
	for _, ln := range lines {
		switch {
		case strings.Contains(ln, "5%") && firstBest == "":
			firstBest = best(ln)
		case strings.Contains(ln, "60%"):
			lastBest = best(ln)
		}
	}
	if firstBest != "LRU" {
		t.Errorf("small-cache best = %q, want LRU\n%s", firstBest, out)
	}
	if lastBest != "LFU" {
		t.Errorf("large-cache best = %q, want LFU\n%s", lastBest, out)
	}
}

func best(line string) string {
	if strings.Contains(line, "LFU") {
		return "LFU"
	}
	if strings.Contains(line, "LRU") {
		return "LRU"
	}
	return ""
}

func TestRunTraceWarmupExcluded(t *testing.T) {
	env := sim.NewEnv(1)
	calls := 0
	factory := func(p *sim.Proc) CacheOps { calls++; return countingOps{&calls, p} }
	trace := make([]workload.Req, 100)
	for i := range trace {
		trace[i] = workload.Req{Key: uint64(i % 10), Size: 64}
	}
	res := RunTrace(env, factory, trace, 2, 2, 0)
	// Two loops executed, but only the second measured.
	if res.Ops != 100 {
		t.Fatalf("measured ops = %d, want 100", res.Ops)
	}
	if calls != 2 { // one client instance per process
		t.Fatalf("factory called %d times", calls)
	}
	if res.Hits+res.Misses != res.Ops {
		t.Fatalf("hits+misses = %d", res.Hits+res.Misses)
	}
}

// countingOps hits every second Get.
type countingOps struct {
	calls *int
	p     *sim.Proc
}

func (c countingOps) Get(key []byte) ([]byte, bool) {
	c.p.Sleep(sim.Microsecond)
	return nil, key[len(key)-1]%2 == 0
}

func (c countingOps) Set(key, value []byte) { c.p.Sleep(sim.Microsecond) }

func TestRunClosedLoopAggregates(t *testing.T) {
	env := sim.NewEnv(1)
	calls := 0
	factory := func(p *sim.Proc) CacheOps { calls++; return countingOps{&calls, p} }
	gen := func(int) workload.Generator { return workload.NewUniform(100, 64, 0.2) }
	res := RunClosedLoop(env, factory, gen, 4, 50, 1)
	if res.Ops != 200 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.ElapsedNs <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.Hist.Count() != 200 {
		t.Fatalf("histogram has %d samples", res.Hist.Count())
	}
	if res.Mops() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestValueForSized(t *testing.T) {
	v := valueFor(workload.Req{Key: 5, Size: 256})
	if len(v) != 240 {
		t.Fatalf("value len = %d", len(v))
	}
	v = valueFor(workload.Req{Key: 5, Size: 4})
	if len(v) < 8 {
		t.Fatalf("tiny value len = %d", len(v))
	}
}

// TestBatchedThroughputSpeedup pins the batching lever's acceptance bar:
// MGet(32) batches must reach at least 3x the throughput of 32
// sequential Gets under YCSB-C at default (quick) scale, with no hit
// rate regression — the load phase populates every key, so both runs
// must stay at hit rate 1.
func TestBatchedThroughputSpeedup(t *testing.T) {
	seq := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 1)
	batched := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 32)
	if seq.HitRate() != 1 || batched.HitRate() != 1 {
		t.Fatalf("hit rates: seq=%v batched=%v, want 1", seq.HitRate(), batched.HitRate())
	}
	if sp := batched.Mops() / seq.Mops(); sp < 3 {
		t.Fatalf("MGet(32) speedup = %.2fx, want >= 3x (seq %.3f Mops, batched %.3f Mops)",
			sp, seq.Mops(), batched.Mops())
	}
}
