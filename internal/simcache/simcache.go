// Package simcache is a single-machine cache simulator over the
// cachealgo framework. The paper uses exactly such a simulator for its
// motivation studies (Figures 3, 4 and 5: hit rates versus client counts
// and cache sizes on real-world traces); the baselines also use it for
// their server-side exact LRU/LFU structures.
//
// Two eviction modes are provided:
//
//   - exact: the true minimum-priority object is evicted (LRU via a
//     recency list would be equivalent; we use a lazily-rebuilt heap that
//     works for any algorithm whose priority changes only on access);
//   - sampled: Ditto's approximation — K random objects are sampled and
//     the lowest-priority one is evicted.
package simcache

import (
	"container/heap"
	"math/rand"

	"ditto/internal/cachealgo"
)

type entry struct {
	key  uint64
	meta cachealgo.Metadata
	ver  uint64 // bumped on each access; stale heap items are skipped
}

type heapItem struct {
	key  uint64
	prio float64
	ver  uint64
}

type prioHeap []heapItem

func (h prioHeap) Len() int            { return len(h) }
func (h prioHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Cache simulates one cache instance running one caching algorithm.
type Cache struct {
	algo     cachealgo.Algorithm
	capacity int // object count capacity
	sampleK  int // 0 = exact eviction
	entries  map[uint64]*entry
	keys     []uint64 // dense key set for O(1) sampling
	keyIdx   map[uint64]int
	h        prioHeap
	clock    int64
	rng      *rand.Rand

	// Hits and Misses count accesses.
	Hits, Misses int64
	// Evictions counts evicted objects.
	Evictions int64
}

// New creates an exact-eviction cache holding capacity objects.
func New(algo cachealgo.Algorithm, capacity int) *Cache {
	return newCache(algo, capacity, 0, 1)
}

// NewSampled creates a cache using Ditto-style sampled eviction with K
// samples.
func NewSampled(algo cachealgo.Algorithm, capacity, k int, seed int64) *Cache {
	if k < 1 {
		panic("simcache: sample K must be >= 1")
	}
	return newCache(algo, capacity, k, seed)
}

func newCache(algo cachealgo.Algorithm, capacity, k int, seed int64) *Cache {
	if capacity < 1 {
		panic("simcache: capacity must be >= 1")
	}
	return &Cache{
		algo:     algo,
		capacity: capacity,
		sampleK:  k,
		entries:  make(map[uint64]*entry, capacity+1),
		keyIdx:   make(map[uint64]int, capacity+1),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether key is cached, without recording an access.
func (c *Cache) Contains(key uint64) bool {
	_, ok := c.entries[key]
	return ok
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Access records a request for key with the given object size, admitting
// the object on a miss (evicting first if full). It reports whether the
// access hit.
func (c *Cache) Access(key uint64, size int) bool {
	c.clock++
	if e, ok := c.entries[key]; ok {
		c.Hits++
		c.touch(e)
		return true
	}
	c.Misses++
	c.insert(key, size)
	return false
}

// touch applies the framework's default metadata update plus the
// algorithm's extension rule, mirroring internal/core's access path.
func (c *Cache) touch(e *entry) {
	e.meta.Freq++
	c.algo.UpdateExt(&e.meta, c.clock)
	e.meta.LastTs = c.clock
	e.ver++
	if c.sampleK == 0 {
		heap.Push(&c.h, heapItem{e.key, c.algo.Priority(&e.meta, c.clock), e.ver})
	}
}

func (c *Cache) insert(key uint64, size int) {
	for len(c.entries) >= c.capacity {
		c.evict()
	}
	e := &entry{key: key}
	e.meta = cachealgo.Metadata{
		Size:     size,
		InsertTs: c.clock,
		LastTs:   c.clock,
		Freq:     1,
	}
	if n := c.algo.ExtSize(); n > 0 {
		e.meta.Ext = make([]byte, n)
		c.algo.InitExt(&e.meta, c.clock)
	}
	c.entries[key] = e
	c.keyIdx[key] = len(c.keys)
	c.keys = append(c.keys, key)
	if c.sampleK == 0 {
		heap.Push(&c.h, heapItem{key, c.algo.Priority(&e.meta, c.clock), e.ver})
	}
}

// Resize changes the capacity; shrinking evicts immediately.
func (c *Cache) Resize(capacity int) {
	if capacity < 1 {
		panic("simcache: capacity must be >= 1")
	}
	c.capacity = capacity
	for len(c.entries) > c.capacity {
		c.evict()
	}
}

func (c *Cache) evict() {
	c.EvictOne()
}

// EvictOne forces one eviction by the cache's algorithm and returns the
// victim's key (ok=false when the cache is empty). Server-side baselines
// (CliqueMap) use it to drive their own capacity accounting.
func (c *Cache) EvictOne() (uint64, bool) {
	var victim *entry
	var vprio float64
	if c.sampleK == 0 {
		victim, vprio = c.popExact()
	} else {
		victim, vprio = c.pickSampled()
	}
	if victim == nil {
		return 0, false
	}
	if obs, ok := c.algo.(cachealgo.EvictionObserver); ok {
		obs.OnEvict(vprio)
	}
	c.remove(victim.key)
	c.Evictions++
	return victim.key, true
}

func (c *Cache) popExact() (*entry, float64) {
	for c.h.Len() > 0 {
		item := heap.Pop(&c.h).(heapItem)
		e, ok := c.entries[item.key]
		if !ok || e.ver != item.ver {
			continue // stale
		}
		return e, item.prio
	}
	return nil, 0
}

func (c *Cache) pickSampled() (*entry, float64) {
	if len(c.keys) == 0 {
		return nil, 0
	}
	var best *entry
	bestPrio := 0.0
	for i := 0; i < c.sampleK; i++ {
		k := c.keys[c.rng.Intn(len(c.keys))]
		e := c.entries[k]
		p := c.algo.Priority(&e.meta, c.clock)
		if best == nil || p < bestPrio {
			best, bestPrio = e, p
		}
	}
	return best, bestPrio
}

func (c *Cache) remove(key uint64) {
	idx, ok := c.keyIdx[key]
	if !ok {
		return
	}
	last := len(c.keys) - 1
	moved := c.keys[last]
	c.keys[idx] = moved
	c.keyIdx[moved] = idx
	c.keys = c.keys[:last]
	delete(c.keyIdx, key)
	delete(c.entries, key)
}
