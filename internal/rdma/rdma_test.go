package rdma

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ditto/internal/sim"
)

func testNode(env *sim.Env) *Node {
	cfg := DefaultConfig()
	return NewNode(env, 1<<20, cfg)
}

func TestReadWriteRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		data := []byte("hello disaggregated world")
		ep.Write(64, data)
		got := ep.Read(64, len(data))
		if !bytes.Equal(got, data) {
			t.Errorf("read back %q", got)
		}
	})
	env.Run()
	if node.Stats.Reads != 1 || node.Stats.Writes != 1 {
		t.Errorf("stats = %+v", node.Stats)
	}
}

func TestVerbLatencyIsRTTPlusService(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		start := p.Now()
		ep.Read(0, 8)
		lat := p.Now() - start
		want := node.cfg.RTT + node.msgSvc(8)
		if lat != want {
			t.Errorf("latency = %d, want %d", lat, want)
		}
	})
	env.Run()
}

func TestCASSemantics(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		if old, ok := ep.CAS(128, 0, 42); !ok || old != 0 {
			t.Errorf("first CAS: old=%d ok=%v", old, ok)
		}
		if old, ok := ep.CAS(128, 0, 7); ok || old != 42 {
			t.Errorf("failing CAS: old=%d ok=%v", old, ok)
		}
		if old, ok := ep.CAS(128, 42, 7); !ok || old != 42 {
			t.Errorf("second CAS: old=%d ok=%v", old, ok)
		}
		if v := binary.LittleEndian.Uint64(node.mem[128:]); v != 7 {
			t.Errorf("mem = %d", v)
		}
	})
	env.Run()
}

func TestCASContentionOnlyOneWins(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	wins := 0
	for i := 0; i < 8; i++ {
		env.Go("c", func(p *sim.Proc) {
			ep := NewEndpoint(node, p)
			if _, ok := ep.CAS(0, 0, uint64(p.ID())+1); ok {
				wins++
			}
		})
	}
	env.Run()
	if wins != 1 {
		t.Fatalf("%d CASes won, want exactly 1", wins)
	}
}

func TestFAAIsAtomicAcrossClients(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	const perClient = 100
	for i := 0; i < 8; i++ {
		env.Go("c", func(p *sim.Proc) {
			ep := NewEndpoint(node, p)
			for k := 0; k < perClient; k++ {
				ep.FAA(8, 1)
			}
		})
	}
	env.Run()
	if v := node.Uint64At(8); v != 8*perClient {
		t.Fatalf("counter = %d, want %d", v, 8*perClient)
	}
}

func TestFAAReturnsPreviousValue(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		if prev := ep.FAA(16, 5); prev != 0 {
			t.Errorf("prev = %d", prev)
		}
		if prev := ep.FAA(16, 3); prev != 5 {
			t.Errorf("prev = %d", prev)
		}
	})
	env.Run()
}

func TestAsyncWriteDoesNotBlock(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		start := p.Now()
		ep.WriteAsync(0, make([]byte, 64))
		if p.Now() != start {
			t.Error("async write advanced caller time")
		}
	})
	env.Run()
	if node.Stats.AsyncOps != 1 {
		t.Errorf("async ops = %d", node.Stats.AsyncOps)
	}
}

func TestRPCExecutesHandlerAndCostsCPU(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	node.Handle(9, func(payload []byte) []byte {
		return append([]byte("ok:"), payload...)
	})
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		start := p.Now()
		reply := ep.RPC(9, []byte("ping"))
		if string(reply) != "ok:ping" {
			t.Errorf("reply = %q", reply)
		}
		if p.Now()-start < node.cfg.RTT+node.cfg.RPCSvc {
			t.Errorf("RPC too fast: %d", p.Now()-start)
		}
	})
	env.Run()
	if node.CPU().Busy == 0 {
		t.Error("RPC consumed no MN CPU")
	}
	if node.Stats.RPCs != 1 {
		t.Errorf("rpc count = %d", node.Stats.RPCs)
	}
}

func TestRPCThroughputBoundedByCPU(t *testing.T) {
	// With 1 MN core at RPCSvc=1500ns, aggregate RPC throughput must
	// saturate near 1/1500ns ≈ 0.67 Mops regardless of client count.
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	node := NewNode(env, 1<<16, cfg)
	node.Handle(1, func([]byte) []byte { return nil })
	const clients, opsEach = 16, 200
	for i := 0; i < clients; i++ {
		env.Go("c", func(p *sim.Proc) {
			ep := NewEndpoint(node, p)
			for k := 0; k < opsEach; k++ {
				ep.RPC(1, nil)
			}
		})
	}
	env.Run()
	elapsed := env.Now()
	opsPerSec := float64(clients*opsEach) / (float64(elapsed) / 1e9)
	wantMax := 1e9 / float64(cfg.RPCSvc)
	if opsPerSec > wantMax*1.05 {
		t.Fatalf("RPC throughput %.0f ops/s exceeds CPU bound %.0f", opsPerSec, wantMax)
	}
	if opsPerSec < wantMax*0.8 {
		t.Fatalf("RPC throughput %.0f ops/s far below CPU bound %.0f", opsPerSec, wantMax)
	}
}

func TestOneSidedThroughputBoundedByNIC(t *testing.T) {
	// One-sided verbs must saturate at the RNIC message rate, far above the
	// CPU-bound RPC rate — the core asymmetry the paper exploits.
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.ByteSvcNs = 0
	node := NewNode(env, 1<<16, cfg)
	// Each synchronous client sustains at most 1/RTT = 0.5 Mops, so we need
	// well over RTT/MsgSvc = 80 clients of offered load to saturate the NIC.
	const clients, opsEach = 128, 200
	for i := 0; i < clients; i++ {
		env.Go("c", func(p *sim.Proc) {
			ep := NewEndpoint(node, p)
			for k := 0; k < opsEach; k++ {
				ep.Read(0, 8)
			}
		})
	}
	env.Run()
	opsPerSec := float64(clients*opsEach) / (float64(env.Now()) / 1e9)
	nicBound := 1e9 / float64(cfg.MsgSvc)
	if opsPerSec > nicBound*1.05 {
		t.Fatalf("throughput %.0f above NIC bound %.0f", opsPerSec, nicBound)
	}
	if opsPerSec < nicBound*0.7 {
		t.Fatalf("throughput %.0f well below NIC bound %.0f (not saturating)", opsPerSec, nicBound)
	}
}

func TestScalingMNCoresScalesRPCs(t *testing.T) {
	run := func(cores int) float64 {
		env := sim.NewEnv(1)
		cfg := DefaultConfig()
		cfg.CPUCores = cores
		node := NewNode(env, 1<<16, cfg)
		node.Handle(1, func([]byte) []byte { return nil })
		const clients, opsEach = 32, 100
		for i := 0; i < clients; i++ {
			env.Go("c", func(p *sim.Proc) {
				ep := NewEndpoint(node, p)
				for k := 0; k < opsEach; k++ {
					ep.RPC(1, nil)
				}
			})
		}
		env.Run()
		return float64(clients*opsEach) / (float64(env.Now()) / 1e9)
	}
	t1, t4 := run(1), run(4)
	if t4 < 3*t1 {
		t.Fatalf("4 cores only %.1fx faster than 1 core", t4/t1)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	env := sim.NewEnv(1)
	node := NewNode(env, 128, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		defer func() {
			if recover() == nil {
				t.Error("no panic on out-of-bounds read")
			}
		}()
		ep.Read(120, 16)
	})
	env.Run()
}

func TestDuplicateHandlerPanics(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	node.Handle(3, func([]byte) []byte { return nil })
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate opcode")
		}
	}()
	node.Handle(3, func([]byte) []byte { return nil })
}

func TestServerSideWordAccess(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	node.PutUint64At(256, 0xdeadbeef)
	if v := node.Uint64At(256); v != 0xdeadbeef {
		t.Fatalf("got %x", v)
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Reads: 1, Writes: 2, CASes: 3, FAAs: 4, RPCs: 5}
	if s.Total() != 15 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestPostBatchSemantics(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		ep.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		node.PutUint64At(64, 10)
		res := ep.PostBatch([]BatchOp{
			{Kind: BatchWrite, Addr: 128, Data: []byte("doorbell")},
			{Kind: BatchRead, Addr: 128, Len: 8}, // posted after the write: must see it
			{Kind: BatchCAS, Addr: 64, Expect: 10, Swap: 20},
			{Kind: BatchCAS, Addr: 64, Expect: 10, Swap: 30}, // stale expect: must fail
			{Kind: BatchFAA, Addr: 64, Delta: 2},
			{Kind: BatchRead, Addr: 0, Len: 8},
		})
		if !bytes.Equal(res[1].Data, []byte("doorbell")) {
			t.Errorf("in-batch read after write = %q", res[1].Data)
		}
		if !res[2].Swapped || res[2].Old != 10 {
			t.Errorf("first CAS: %+v", res[2])
		}
		if res[3].Swapped || res[3].Old != 20 {
			t.Errorf("second CAS should observe the first: %+v", res[3])
		}
		if res[4].Old != 20 {
			t.Errorf("FAA old = %d, want 20", res[4].Old)
		}
		if v := node.Uint64At(64); v != 22 {
			t.Errorf("counter = %d, want 22", v)
		}
		if !bytes.Equal(res[5].Data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
			t.Errorf("read = %v", res[5].Data)
		}
	})
	env.Run()
	if node.Stats.DoorbellBatches != 1 || node.Stats.BatchedVerbs != 6 {
		t.Errorf("batch stats = %+v", node.Stats)
	}
	// Batched verbs are also counted per kind (1 plain write + 1 batch write).
	if node.Stats.Reads != 2 || node.Stats.Writes != 2 || node.Stats.CASes != 2 || node.Stats.FAAs != 1 {
		t.Errorf("verb stats = %+v", node.Stats)
	}
}

// TestPostBatchOverlapsRoundTrips pins the doorbell cost model: N batched
// reads cost N message-service times plus ONE round trip, against
// N x (service + RTT) when issued synchronously one by one.
func TestPostBatchOverlapsRoundTrips(t *testing.T) {
	const n = 32
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		ops := make([]BatchOp, n)
		for i := range ops {
			ops[i] = BatchOp{Kind: BatchRead, Addr: uint64(i * 8), Len: 8}
		}
		start := p.Now()
		ep.PostBatch(ops)
		batched := p.Now() - start

		start = p.Now()
		for i := 0; i < n; i++ {
			ep.Read(uint64(i*8), 8)
		}
		sequential := p.Now() - start

		wantBatched := int64(n)*node.msgSvc(8) + node.cfg.RTT
		wantSeq := int64(n) * (node.msgSvc(8) + node.cfg.RTT)
		if batched != wantBatched {
			t.Errorf("batched latency = %d, want %d", batched, wantBatched)
		}
		if sequential != wantSeq {
			t.Errorf("sequential latency = %d, want %d", sequential, wantSeq)
		}
		if batched*3 > sequential {
			t.Errorf("batching should overlap round trips: batched=%d sequential=%d", batched, sequential)
		}
	})
	env.Run()
}

func TestPostBatchEmpty(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		if res := ep.PostBatch(nil); res != nil {
			t.Errorf("empty batch returned %v", res)
		}
	})
	env.Run()
	if node.Stats.DoorbellBatches != 0 {
		t.Errorf("empty batch counted: %+v", node.Stats)
	}
}
