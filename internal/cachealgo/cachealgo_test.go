package cachealgo

import (
	"math"
	"testing"
	"testing/quick"
)

// meta builds metadata with optional extension storage for the algorithm.
func meta(a Algorithm, size int, insertTs, lastTs int64, freq uint64) *Metadata {
	m := &Metadata{Size: size, InsertTs: insertTs, LastTs: lastTs, Freq: freq}
	if n := a.ExtSize(); n > 0 {
		m.Ext = make([]byte, n)
	}
	return m
}

func TestLRUPrefersOldest(t *testing.T) {
	a := NewLRU()
	old := meta(a, 64, 0, 100, 5)
	recent := meta(a, 64, 0, 900, 1)
	if a.Priority(old, 1000) >= a.Priority(recent, 1000) {
		t.Fatal("LRU must rank the older access lower")
	}
}

func TestLFUPrefersColdest(t *testing.T) {
	a := NewLFU()
	cold := meta(a, 64, 0, 900, 1)
	hot := meta(a, 64, 0, 100, 50)
	if a.Priority(cold, 1000) >= a.Priority(hot, 1000) {
		t.Fatal("LFU must rank the lower-frequency object lower")
	}
}

func TestMRUIsInverseOfLRU(t *testing.T) {
	lru, mru := NewLRU(), NewMRU()
	m1 := meta(lru, 64, 0, 100, 1)
	m2 := meta(lru, 64, 0, 200, 1)
	if (lru.Priority(m1, 0) < lru.Priority(m2, 0)) == (mru.Priority(m1, 0) < mru.Priority(m2, 0)) {
		t.Fatal("MRU must order opposite to LRU")
	}
}

func TestFIFOUsesInsertTime(t *testing.T) {
	a := NewFIFO()
	oldIn := meta(a, 64, 10, 999, 9)
	newIn := meta(a, 64, 500, 501, 1)
	if a.Priority(oldIn, 1000) >= a.Priority(newIn, 1000) {
		t.Fatal("FIFO must evict the earliest-inserted object")
	}
}

func TestSizeEvictsLargest(t *testing.T) {
	a := NewSize()
	big := meta(a, 4096, 0, 0, 1)
	small := meta(a, 64, 0, 0, 1)
	if a.Priority(big, 0) >= a.Priority(small, 0) {
		t.Fatal("SIZE must rank larger objects lower")
	}
}

func TestGDSInflation(t *testing.T) {
	a := NewGDS()
	m1 := meta(a, 100, 0, 0, 1)
	a.InitExt(m1, 0)
	p1 := a.Priority(m1, 0)
	if math.Abs(p1-1.0/100) > 1e-12 {
		t.Fatalf("initial H = %v, want cost/size = 0.01", p1)
	}
	// After evicting a victim with priority 5, L inflates and new objects
	// enter above the old ones.
	a.OnEvict(5)
	m2 := meta(a, 100, 0, 0, 1)
	a.InitExt(m2, 0)
	if p2 := a.Priority(m2, 0); p2 <= 5 {
		t.Fatalf("post-inflation H = %v, want > 5", p2)
	}
	// L never decreases.
	a.OnEvict(1)
	m3 := meta(a, 100, 0, 0, 1)
	a.InitExt(m3, 0)
	if p3 := a.Priority(m3, 0); p3 < 5 {
		t.Fatalf("L decreased: %v", p3)
	}
}

func TestGDSRespectsCost(t *testing.T) {
	a := NewGDS()
	cheap := meta(a, 100, 0, 0, 1)
	cheap.Cost = 1
	dear := meta(a, 100, 0, 0, 1)
	dear.Cost = 10
	a.InitExt(cheap, 0)
	a.InitExt(dear, 0)
	if a.Priority(cheap, 0) >= a.Priority(dear, 0) {
		t.Fatal("GDS must keep high-cost objects longer")
	}
}

func TestGDSFWeighsFrequency(t *testing.T) {
	a := NewGDSF()
	cold := meta(a, 100, 0, 0, 1)
	hot := meta(a, 100, 0, 0, 100)
	a.InitExt(cold, 0)
	hot.Freq = 100
	a.UpdateExt(hot, 0)
	if a.Priority(cold, 0) >= a.Priority(hot, 0) {
		t.Fatal("GDSF must rank frequent objects higher")
	}
}

func TestLFUDAAgesOut(t *testing.T) {
	a := NewLFUDA()
	// A very hot object cached early.
	hot := meta(a, 64, 0, 0, 100)
	a.UpdateExt(hot, 0)
	hotP := a.Priority(hot, 0)
	// Massive inflation after it stops being accessed.
	a.OnEvict(hotP + 1000)
	fresh := meta(a, 64, 0, 0, 1)
	a.InitExt(fresh, 0)
	if a.Priority(fresh, 0) <= hotP {
		t.Fatal("LFUDA dynamic aging failed: fresh object ranked below stale-hot one")
	}
}

func TestLRUKListing1Semantics(t *testing.T) {
	a := NewLRU2()
	m := meta(a, 64, 100, 100, 1)
	a.InitExt(m, 100)

	// Fewer than K accesses: FIFO on insert_ts.
	if p := a.Priority(m, 200); p != 100 {
		t.Fatalf("freq<K priority = %v, want insert_ts 100", p)
	}

	// Second access at t=300: K-th most recent access is the insert (100).
	m.Freq = 2
	a.UpdateExt(m, 300)
	m.LastTs = 300
	if p := a.Priority(m, 400); p != 100 {
		t.Fatalf("freq=2 priority = %v, want 100", p)
	}

	// Third access at t=500: 2nd most recent is t=300.
	m.Freq = 3
	a.UpdateExt(m, 500)
	m.LastTs = 500
	if p := a.Priority(m, 600); p != 300 {
		t.Fatalf("freq=3 priority = %v, want 300", p)
	}
}

func TestLRUKInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for K=0")
		}
	}()
	NewLRUK(0)
}

func TestLRFUDecaysAndBumps(t *testing.T) {
	a := NewLRFU()
	m := meta(a, 64, 0, 0, 1)
	a.InitExt(m, 0)
	p0 := a.Priority(m, 0)
	if p0 != 1 {
		t.Fatalf("initial CRF = %v", p0)
	}
	// CRF decays with time...
	if p := a.Priority(m, 1e10); p >= p0 {
		t.Fatalf("CRF did not decay: %v", p)
	}
	// ...and each access adds 1 to the decayed value.
	m.Freq = 2
	a.UpdateExt(m, 1e10)
	m.LastTs = 1e10
	p1 := a.Priority(m, 1e10)
	if p1 <= 1 || p1 > 2 {
		t.Fatalf("CRF after second access = %v, want in (1,2]", p1)
	}
}

func TestLIRSScanResistance(t *testing.T) {
	a := NewLIRS()
	// A one-hit-wonder from a scan, accessed recently.
	scan := meta(a, 64, 900, 900, 1)
	a.InitExt(scan, 900)
	// A LIR block with small IRR, accessed a while ago.
	lir := meta(a, 64, 0, 500, 10)
	a.InitExt(lir, 0)
	putI64ForTest(lir.Ext, 450) // previous access at 450 → IRR 50
	if a.Priority(scan, 1000) >= a.Priority(lir, 1000) {
		t.Fatal("LIRS must prefer evicting one-time (HIR) blocks over LIR blocks")
	}
}

func TestHyperbolicRanksByRate(t *testing.T) {
	a := NewHyperbolic()
	// Object A: 10 accesses over age 1000 (rate 0.01).
	fast := meta(a, 64, 0, 0, 10)
	// Object B: 2 accesses over age 10 (rate 0.2).
	burst := meta(a, 64, 990, 0, 2)
	if a.Priority(fast, 1000) >= a.Priority(burst, 1000) {
		t.Fatal("hyperbolic must rank by request rate, not raw count")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"LRU", "LFU", "MRU", "GDS", "LIRS", "FIFO", "SIZE", "GDSF", "LRFU", "LRUK", "LFUDA", "HYPERBOLIC"}
	infos := All()
	if len(infos) != len(want) {
		t.Fatalf("registry has %d algorithms, want %d", len(infos), len(want))
	}
	for i, w := range want {
		if infos[i].Name != w {
			t.Errorf("registry[%d] = %s, want %s", i, infos[i].Name, w)
		}
	}
	for _, info := range infos {
		a, err := New(info.Name)
		if err != nil {
			t.Errorf("New(%s): %v", info.Name, err)
			continue
		}
		if a.Name() != info.Name {
			t.Errorf("instance name %s != %s", a.Name(), info.Name)
		}
		if info.LOC <= 0 || info.LOC > 25 {
			t.Errorf("%s: implausible LOC %d (paper: all under 23)", info.Name, info.LOC)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("BELADY"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// Property: every registered algorithm returns finite priorities for
// arbitrary (valid) metadata and never mutates default fields.
func TestPrioritiesFiniteProperty(t *testing.T) {
	for _, info := range All() {
		info := info
		a := info.New()
		f := func(size uint16, ins, last uint32, freq uint16, nowDelta uint16) bool {
			m := meta(a, int(size)+1, int64(ins), int64(ins)+int64(last), uint64(freq)+1)
			now := m.LastTs + int64(nowDelta)
			if a.ExtSize() > 0 {
				a.InitExt(m, m.InsertTs)
				a.UpdateExt(m, m.LastTs)
			}
			savedFreq, savedLast := m.Freq, m.LastTs
			p := a.Priority(m, now)
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
			return m.Freq == savedFreq && m.LastTs == savedLast
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", info.Name, err)
		}
	}
}

func putI64ForTest(b []byte, v int64) { putI64(b, v) }
