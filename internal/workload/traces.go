package workload

import (
	"fmt"
	"math/rand"
)

// Phase parameterizes one regime of a synthetic trace. Each request picks
// a component by probability:
//
//   - burst: re-access one of the most recently used keys (recency
//     structure → rewards LRU);
//   - zipf: access a stable skewed hot set (frequency structure → rewards
//     LFU);
//   - scan: sequential one-shot sweep over cold keys (pollutes recency
//     caches → punishes LRU);
//   - remainder: uniform over the footprint.
type Phase struct {
	Requests    int
	PBurst      float64
	PZipf       float64
	PScan       float64
	BurstWindow int     // how many recent distinct keys bursts re-touch
	ZipfFrac    float64 // fraction of the footprint forming the hot set
	ZipfTheta   float64
}

// TraceSpec describes a reproducible synthetic trace standing in for one
// of the paper's real-world workloads (Table 2).
type TraceSpec struct {
	Name       string
	Footprint  int // unique keys
	ObjectSize int
	Seed       int64
	Phases     []Phase
}

// Requests totals the phase lengths.
func (s TraceSpec) Requests() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Requests
	}
	return n
}

// Build materializes the trace deterministically.
func (s TraceSpec) Build() []Req {
	if s.Footprint < 16 {
		panic("workload: footprint too small")
	}
	size := s.ObjectSize
	if size <= 0 {
		size = DefaultObjectSize
	}
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]Req, 0, s.Requests())

	// Recent-key ring shared across phases (recency carries over).
	recent := make([]uint64, 0, s.Footprint)
	scanCursor := 0

	for _, ph := range s.Phases {
		zipfN := uint64(float64(s.Footprint) * ph.ZipfFrac)
		if zipfN < 1 {
			zipfN = 1
		}
		theta := ph.ZipfTheta
		if theta <= 0 {
			theta = 0.99
		}
		var zipf *ScrambledZipfian
		if ph.PZipf > 0 {
			zipf = NewScrambledZipfian(zipfN, theta)
		}
		window := ph.BurstWindow
		if window < 1 {
			window = s.Footprint / 10
			if window < 1 {
				window = 1
			}
		}
		for i := 0; i < ph.Requests; i++ {
			var key uint64
			x := rng.Float64()
			switch {
			case x < ph.PBurst:
				if len(recent) == 0 {
					key = uint64(rng.Intn(s.Footprint))
					break
				}
				w := window
				if w > len(recent) {
					w = len(recent)
				}
				key = recent[len(recent)-1-rng.Intn(w)]
			case x < ph.PBurst+ph.PZipf:
				key = zipf.Next(rng)
			case x < ph.PBurst+ph.PZipf+ph.PScan:
				key = uint64(scanCursor % s.Footprint)
				scanCursor++
			default:
				key = uint64(rng.Intn(s.Footprint))
			}
			out = append(out, Req{Key: key, Size: size})
			if len(recent) == 0 || recent[len(recent)-1] != key {
				recent = append(recent, key)
				if len(recent) > 4*window {
					recent = recent[len(recent)-2*window:]
				}
			}
		}
	}
	return out
}

// ------------------------- named workload stand-ins ----------------------

// LRUFriendly builds a pure recency workload: bursty re-references over a
// drifting working set, no stable frequency structure.
func LRUFriendly(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "lru-friendly",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:    requests,
			PBurst:      0.80,
			PScan:       0.15,
			BurstWindow: footprint / 12,
		}},
	}
}

// LFUFriendly builds a pure frequency workload: a stable Zipf hot set
// polluted by sequential scans that defeat recency caches.
func LFUFriendly(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "lfu-friendly",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:  requests,
			PZipf:     0.65,
			PScan:     0.30,
			ZipfFrac:  0.25,
			ZipfTheta: 0.99,
		}},
	}
}

// Changing builds the four-phase workload of Figure 19 (after LeCaR):
// phases alternate between LRU-friendly and LFU-friendly regimes.
func Changing(requestsPerPhase, footprint int, seed int64) TraceSpec {
	lru := Phase{
		Requests:    requestsPerPhase,
		PBurst:      0.80,
		PScan:       0.15,
		BurstWindow: footprint / 12,
	}
	// The LFU-friendly phase is strongly anti-LRU: a small stable hot set
	// buried in heavy sequential scanning.
	lfu := Phase{
		Requests:  requestsPerPhase,
		PZipf:     0.50,
		PScan:     0.45,
		ZipfFrac:  0.12,
		ZipfTheta: 0.95,
	}
	return TraceSpec{
		Name:      "changing",
		Footprint: footprint,
		Seed:      seed,
		Phases:    []Phase{lru, lfu, lru, lfu},
	}
}

// Webmail approximates the FIU webmail block-IO trace: a blend of diurnal
// recency bursts, a stable frequently-read set, and backup-like scans. The
// mix is calibrated so that — as the paper's Figure 4 shows for the real
// trace — LRU wins at small cache sizes and LFU overtakes it at larger
// ones.
func Webmail(requests, footprint int, seed int64) TraceSpec {
	// Real webmail traffic is diurnal: recency-leaning stretches alternate
	// with frequency-leaning ones. The average mix (0.30 burst, 0.50 zipf,
	// 0.20 scan) is what produces Figure 4's LRU→LFU crossover with cache
	// size; the alternation is what Figures 5b and 21 exploit (the best
	// algorithm shifts within the trace).
	recency := Phase{
		Requests:    requests / 4,
		PBurst:      0.50,
		PZipf:       0.30,
		PScan:       0.15,
		BurstWindow: footprint / 50,
		ZipfFrac:    0.50,
		ZipfTheta:   0.70,
	}
	frequency := Phase{
		Requests:    requests / 4,
		PBurst:      0.10,
		PZipf:       0.60,
		PScan:       0.30,
		BurstWindow: footprint / 50,
		ZipfFrac:    0.15,
		ZipfTheta:   0.90,
	}
	return TraceSpec{
		Name:      "webmail",
		Footprint: footprint,
		Seed:      seed,
		Phases:    []Phase{recency, frequency, recency, frequency},
	}
}

// TwitterTransient approximates a transient-cache cluster trace: highly
// skewed, recency-heavy.
func TwitterTransient(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "twitter-transient",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:    requests,
			PBurst:      0.60,
			PZipf:       0.30,
			PScan:       0.05,
			BurstWindow: footprint / 25,
			ZipfFrac:    0.10,
			ZipfTheta:   0.99,
		}},
	}
}

// TwitterStorage approximates a storage-cache cluster trace: frequency-
// dominated with moderate skew.
func TwitterStorage(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "twitter-storage",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:  requests,
			PZipf:     0.70,
			PScan:     0.20,
			ZipfFrac:  0.35,
			ZipfTheta: 0.99,
		}},
	}
}

// TwitterCompute approximates a compute-cache cluster trace: mixed regime.
func TwitterCompute(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "twitter-compute",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:    requests,
			PBurst:      0.35,
			PZipf:       0.40,
			PScan:       0.15,
			BurstWindow: footprint / 15,
			ZipfFrac:    0.25,
			ZipfTheta:   0.99,
		}},
	}
}

// IBMLike approximates an IBM Cloud Object Storage trace: large footprint,
// skewed reads, light scanning.
func IBMLike(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "ibm-objectstore",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:    requests,
			PBurst:      0.25,
			PZipf:       0.50,
			PScan:       0.15,
			BurstWindow: footprint / 10,
			ZipfFrac:    0.20,
			ZipfTheta:   0.99,
		}},
	}
}

// CloudPhysicsLike approximates a CloudPhysics VM block-IO trace:
// sequential runs with looping re-reads.
func CloudPhysicsLike(requests, footprint int, seed int64) TraceSpec {
	return TraceSpec{
		Name:      "cloudphysics",
		Footprint: footprint,
		Seed:      seed,
		Phases: []Phase{{
			Requests:    requests,
			PBurst:      0.50,
			PZipf:       0.15,
			PScan:       0.30,
			BurstWindow: footprint / 8,
			ZipfFrac:    0.30,
			ZipfTheta:   0.99,
		}},
	}
}

// Suite returns a family of n trace specs spanning the recency/frequency
// spectrum, standing in for the paper's 74-workload (Fig 5a) and
// 33-workload (Fig 18) suites. Each spec varies the component mix,
// footprint and seed deterministically.
func Suite(n, requests, footprint int) []TraceSpec {
	kinds := []func(int, int, int64) TraceSpec{
		LRUFriendly, LFUFriendly, Webmail,
		TwitterTransient, TwitterStorage, TwitterCompute,
		IBMLike, CloudPhysicsLike,
	}
	specs := make([]TraceSpec, 0, n)
	for i := 0; i < n; i++ {
		base := kinds[i%len(kinds)](requests, footprint+997*i%footprint, int64(1000+i))
		base.Name = fmt.Sprintf("%s-%02d", base.Name, i)
		// Perturb the mix so every member is distinct.
		ph := &base.Phases[0]
		tweak := float64(i%5) * 0.03
		ph.PBurst = clamp01(ph.PBurst + tweak - 0.06)
		ph.PScan = clamp01(ph.PScan + 0.02*float64(i%3))
		specs = append(specs, base)
	}
	return specs
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}
