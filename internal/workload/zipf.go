// Package workload provides the request generators used by the paper's
// evaluation: YCSB core workloads A–D with scrambled-Zipfian keys
// (θ = 0.99), and a family of synthetic traces reproducing the recency/
// frequency regimes of the real-world trace suites (FIU webmail, Twitter
// compute/storage/transient, IBM object store, CloudPhysics) — see Table 2
// and DESIGN.md §2 for the substitution rationale.
package workload

import (
	"math"
	"math/rand"
)

// Zipfian samples ranks in [0, n) with the YCSB Zipfian distribution of
// exponent theta (< 1, unlike math/rand.Zipf which requires s > 1). It is
// a direct port of the standard YCSB ZipfianGenerator.
type Zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
}

// NewZipfian builds a generator over n items. theta is the skew (YCSB
// default 0.99).
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the n-th generalized harmonic number of order theta.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next samples a rank: 0 is the most popular item.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// N returns the item count.
func (z *Zipfian) N() uint64 { return z.n }

// ScrambledZipfian spreads the Zipfian ranks over the key space with a
// hash, as YCSB does, so popular keys are not clustered.
type ScrambledZipfian struct {
	z *Zipfian
}

// NewScrambledZipfian builds a scrambled generator over n keys.
func NewScrambledZipfian(n uint64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, theta)}
}

// Next returns a key in [0, n).
func (s *ScrambledZipfian) Next(rng *rand.Rand) uint64 {
	return fnvHash64(s.z.Next(rng)) % s.z.n
}

// fnvHash64 is YCSB's FNV hash used for scrambling.
func fnvHash64(v uint64) uint64 {
	const offset = 0xCBF29CE484222325
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Latest samples keys skewed toward the most recently inserted item, for
// YCSB-D. Track the insert frontier with Advance.
type Latest struct {
	z     *Zipfian
	count uint64
}

// NewLatest builds a latest-distribution generator with an initial item
// count.
func NewLatest(initial uint64, theta float64) *Latest {
	if initial == 0 {
		initial = 1
	}
	return &Latest{z: NewZipfian(initial, theta), count: initial}
}

// Next returns a key, 0-based, biased to recent inserts.
func (l *Latest) Next(rng *rand.Rand) uint64 {
	r := l.z.Next(rng)
	if r >= l.count {
		r = l.count - 1
	}
	return l.count - 1 - r
}

// Advance records a new insert (the new key is count-1 after the call).
func (l *Latest) Advance() uint64 {
	l.count++
	return l.count - 1
}

// Count returns the current item count.
func (l *Latest) Count() uint64 { return l.count }
