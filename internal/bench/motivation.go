package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/baselines"
	"ditto/internal/cachealgo"
	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/simcache"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// Fig01 reproduces Figure 1: Redis throughput while scaling 16→32→16
// shards under read-only YCSB-C. Scale-out capacity arrives only after
// minutes-equivalent migration; scale-in reclamation is delayed equally.
// (Virtual time is compressed: paper minutes ≡ harness milliseconds.)
func Fig01(w io.Writer, scale Scale) error {
	header(w, "Figure 1: Redis resource adjustment (scale out/in with migration)")
	phase := int64(scale.pick(40, 200)) * sim.Millisecond
	keys := scale.pick(20000, 200000)
	clients := scale.pick(64, 192)
	baseShards := scale.pick(8, 32)

	env := sim.NewEnv(1)
	cluster := baselines.NewRedisCluster(env, baseShards, keys)
	// Migration sized to occupy ~60% of a phase.
	migBytes := int64(cluster.MigrationRate * float64(baseShards) * float64(phase) / 1e9 * 0.6)

	gen := workload.NewYCSB(workload.YCSBC, uint64(keys), 256)
	env.Go("load", func(p *sim.Proc) {
		cl := cluster.NewRedisClient(p)
		for k := 0; k < keys; k++ {
			cl.Set(uint64(k), valueFor(workload.Req{Key: uint64(k), Size: 256}))
		}
	})
	env.Run()

	timeline := stats.NewTimeline(phase / 10)
	t0 := env.Now()
	end := t0 + 3*phase
	for i := 0; i < clients; i++ {
		i := i
		env.Go("client", func(p *sim.Proc) {
			cl := cluster.NewRedisClient(p)
			rng := rand.New(rand.NewSource(int64(i)))
			for p.Now() < end {
				cl.Get(gen.Next(rng).Key)
				timeline.Record(p.Now() - t0)
			}
		})
	}
	env.GoAt(t0+phase, "scale-out", func(p *sim.Proc) {
		cluster.ScaleTo(2*baseShards, keys, migBytes)
	})
	env.GoAt(t0+2*phase, "scale-in", func(p *sim.Proc) {
		cluster.ScaleTo(baseShards, keys, migBytes)
	})
	env.Run()

	fmt.Fprintf(w, "shards %d -> %d at t=%.0fms -> %d at t=%.0fms; migration ~%.0fms each\n",
		baseShards, 2*baseShards, float64(phase)/1e6, baseShards, float64(2*phase)/1e6,
		float64(phase)*0.6/1e6)
	row(w, "t(ms)", "Mops")
	times, ops := timeline.Series()
	for i := range times {
		row(w, fmt.Sprintf("%.1f", times[i]*1e3), ops[i]/1e6)
	}
	return nil
}

// Fig02 reproduces Figure 2: the cost of maintaining caching structures on
// DM. (a) single-client throughput and latency of KVC, KVC-S, KVS;
// (b) throughput with growing client counts.
func Fig02(w io.Writer, scale Scale) error {
	header(w, "Figure 2a: single-client performance (YCSB-C, no misses)")
	keys := scale.pick(2000, 20000)
	opsEach := scale.pick(3000, 20000)

	single := map[baselines.KVKind]Result{}
	for _, kind := range []baselines.KVKind{baselines.KVS, baselines.KVC, baselines.KVCS} {
		res := runKV(kind, keys, 1, opsEach)
		single[kind] = res
	}
	row(w, "system", "Mops", "p50(us)", "p99(us)")
	for _, kind := range []baselines.KVKind{baselines.KVS, baselines.KVC, baselines.KVCS} {
		r := single[kind]
		row(w, kind.String(), r.Mops(), r.P50(), r.P99())
	}

	header(w, "Figure 2b: multi-client throughput (YCSB-C, no misses)")
	clientCounts := []int{1, 8, 16, 32, 64}
	if scale == Quick {
		clientCounts = []int{1, 8, 32, 64}
	}
	row(w, "clients", "KVS(Mops)", "KVC(Mops)", "KVC-S(Mops)")
	for _, n := range clientCounts {
		per := opsEach / n * 2
		if per < 200 {
			per = 200
		}
		kvs := runKV(baselines.KVS, keys, n, per)
		kvc := runKV(baselines.KVC, keys, n, per)
		kvcs := runKV(baselines.KVCS, keys, n, per)
		row(w, fmt.Sprintf("%d", n), kvs.Mops(), kvc.Mops(), kvcs.Mops())
	}
	return nil
}

func runKV(kind baselines.KVKind, keys, clients, opsEach int) Result {
	env := sim.NewEnv(7)
	c := baselines.NewKVCluster(env, kind, keys, kvFabric())
	factory := func(p *sim.Proc) CacheOps { return kvOps{c.NewKVClient(p)} }
	reqs := make([]workload.Req, keys)
	for i := range reqs {
		reqs[i] = workload.Req{Key: uint64(i), Size: 256}
	}
	RunLoad(env, factory, reqs, min(clients*2, 16))
	gen := func(int) workload.Generator { return workload.NewYCSB(workload.YCSBC, uint64(keys), 256) }
	return RunClosedLoop(env, factory, gen, clients, opsEach, 99)
}

func kvFabric() rdma.Config { return rdma.DefaultConfig() }

// kvOps adapts KVClient to CacheOps.
type kvOps struct{ c *baselines.KVClient }

func (k kvOps) Get(key []byte) ([]byte, bool) { return k.c.Get(key) }
func (k kvOps) Set(key, value []byte)         { k.c.Set(key, value) }

// Fig03 reproduces Figure 3: hit rates of LRU/LFU as compute resources
// shift between an LRU-friendly and an LFU-friendly application.
func Fig03(w io.Writer, scale Scale) error {
	header(w, "Figure 3: hit rate vs. client split between LRU-friendly and LFU-friendly apps")
	n := scale.pick(40000, 200000)
	footprint := scale.pick(4000, 20000)
	lruTrace := workload.LRUFriendly(n, footprint, 31).Build()
	lfuTrace := workload.LFUFriendly(n, footprint, 32).Build()
	total := 16
	capObjs := footprint / 5

	row(w, "lfu-clients", "LRU hit", "LFU hit")
	for nLFU := 0; nLFU <= total; nLFU += 4 {
		combined := mixApps(lruTrace, lfuTrace, total-nLFU, nLFU)
		lru := hitRateOn(combined, cachealgo.NewLRU(), capObjs)
		lfu := hitRateOn(combined, cachealgo.NewLFU(), capObjs)
		row(w, fmt.Sprintf("%d/%d", nLFU, total), lru, lfu)
	}
	return nil
}

// mixApps interleaves nA clients running trace A with nB clients running
// trace B — the combined access pattern the shared cache observes.
func mixApps(a, b []workload.Req, nA, nB int) []workload.Req {
	var shards [][]workload.Req
	if nA > 0 {
		shards = append(shards, workload.Shard(a, nA)...)
	}
	if nB > 0 {
		shards = append(shards, workload.Shard(b, nB)...)
	}
	return workload.Interleave(shards)
}

func hitRateOn(reqs []workload.Req, algo cachealgo.Algorithm, capObjs int) float64 {
	c := simcache.New(algo, capObjs)
	for _, r := range reqs {
		c.Access(r.Key, r.Size)
	}
	return c.HitRate()
}

// Fig04 reproduces Figure 4: LRU vs LFU hit rate on one workload across
// cache sizes — the best algorithm flips with the memory resource.
func Fig04(w io.Writer, scale Scale) error {
	header(w, "Figure 4: LRU vs LFU across cache sizes (webmail-like)")
	n := scale.pick(60000, 400000)
	footprint := scale.pick(6000, 40000)
	trace := workload.Webmail(n, footprint, 4).Build()

	row(w, "cache(%fp)", "LRU hit", "LFU hit", "best")
	for _, pct := range []int{5, 10, 20, 30, 40, 60} {
		capObjs := footprint * pct / 100
		lru := hitRateOn(trace, cachealgo.NewLRU(), capObjs)
		lfu := hitRateOn(trace, cachealgo.NewLFU(), capObjs)
		best := "LRU"
		if lfu > lru {
			best = "LFU"
		}
		row(w, fmt.Sprintf("%d%%", pct), lru, lfu, best)
	}
	return nil
}

// Fig05 reproduces Figure 5: (a) the CDF over the workload suite of the
// relative hit-rate change as the client count varies 1→512; (b) one trace
// where the best algorithm flips with the client count.
func Fig05(w io.Writer, scale Scale) error {
	header(w, "Figure 5a: CDF of relative hit-rate change (varying client counts)")
	nSpecs := scale.pick(16, 74)
	n := scale.pick(30000, 120000)
	footprint := scale.pick(3000, 12000)
	clientCounts := []int{1, 8, 64, 512}
	if scale == Quick {
		clientCounts = []int{1, 8, 64}
	}
	specs := workload.Suite(nSpecs, n, footprint)

	var lruChanges, lfuChanges []float64
	bestFlips := 0
	for _, spec := range specs {
		trace := spec.Build()
		capObjs := spec.Footprint / 10
		relChange := func(algo func() cachealgo.Algorithm) (float64, []float64) {
			var rates []float64
			for _, k := range clientCounts {
				combined := workload.Interleave(workload.Shard(trace, k))
				rates = append(rates, hitRateOn(combined, algo(), capObjs))
			}
			lo, hi := rates[0], rates[0]
			for _, r := range rates {
				if r < lo {
					lo = r
				}
				if r > hi {
					hi = r
				}
			}
			if hi == 0 {
				return 0, rates
			}
			return (hi - lo) / hi, rates
		}
		dLRU, lruRates := relChange(func() cachealgo.Algorithm { return cachealgo.NewLRU() })
		dLFU, lfuRates := relChange(func() cachealgo.Algorithm { return cachealgo.NewLFU() })
		lruChanges = append(lruChanges, dLRU)
		lfuChanges = append(lfuChanges, dLFU)
		bestAt := func(i int) bool { return lruRates[i] >= lfuRates[i] }
		for i := 1; i < len(clientCounts); i++ {
			if bestAt(i) != bestAt(0) {
				bestFlips++
				break
			}
		}
	}
	row(w, "percentile", "LRU rel.change", "LFU rel.change")
	xs1, ys1 := stats.CDF(lruChanges)
	xs2, ys2 := stats.CDF(lfuChanges)
	for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		row(w, fmt.Sprintf("p%.0f", q*100), cdfInvert(xs1, ys1, q), cdfInvert(xs2, ys2, q))
	}
	fmt.Fprintf(w, "best algorithm flips with client count on %d/%d workloads\n", bestFlips, len(specs))

	header(w, "Figure 5b: hit rate vs concurrent clients (single trace)")
	trace := workload.Webmail(n, footprint, 55).Build()
	capObjs := footprint / 10
	row(w, "clients", "LRU hit", "LFU hit")
	for _, k := range clientCounts {
		combined := workload.Interleave(workload.Shard(trace, k))
		row(w, fmt.Sprintf("%d", k),
			hitRateOn(combined, cachealgo.NewLRU(), capObjs),
			hitRateOn(combined, cachealgo.NewLFU(), capObjs))
	}
	return nil
}

// cdfInvert returns the smallest x with CDF(x) >= q.
func cdfInvert(xs, ys []float64, q float64) float64 {
	for i, y := range ys {
		if y >= q {
			return xs[i]
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
