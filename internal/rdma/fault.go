package rdma

import (
	"errors"
	"fmt"

	"ditto/internal/sim"
)

// Fail-stop node failures. A failed node's RNIC answers nothing: every
// verb against it blocks for the client's completion timeout and then
// surfaces *NodeUnreachableError. The error travels as a panic so the
// deep call chains in internal/core (probe → plan → executor → verb)
// don't have to thread an error return through every hop; protocol
// boundaries convert it back to an error with CatchUnreachable.
//
// Failure detection is only ever observed at verb completion points —
// the same places a real client sees a timed-out work completion — so a
// doorbell batch whose node dies mid-flight behaves atomically: none of
// its effects apply ("the completion never arrived").

// NodeUnreachableError reports a verb posted to a failed node.
type NodeUnreachableError struct {
	// Node names the unreachable node when the owner set Node.Name.
	Node string
}

// Error implements error.
func (e *NodeUnreachableError) Error() string {
	if e.Node == "" {
		return "rdma: node unreachable"
	}
	return fmt.Sprintf("rdma: node %q unreachable", e.Node)
}

// IsUnreachable reports whether err wraps a NodeUnreachableError.
func IsUnreachable(err error) bool {
	var ue *NodeUnreachableError
	return errors.As(err, &ue)
}

// CatchUnreachable runs fn, converting a NodeUnreachableError panic from
// any verb inside it back into an error return. Other panics propagate.
func CatchUnreachable(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ue, ok := r.(*NodeUnreachableError); ok {
				err = ue
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// Fail marks the node unreachable (fail-stop). In-flight verbs whose
// callers are still sleeping toward completion will time out rather than
// apply: the failure point is the event boundary, exactly like a real
// NIC going silent.
func (n *Node) Fail() { n.down = true }

// Restart brings a failed node back with ZEROED memory — DRAM does not
// survive fail-stop. RPC handlers stay registered (they are the static
// protocol, not state). The owner must re-initialize layout before
// serving clients again.
func (n *Node) Restart() {
	for i := range n.mem {
		n.mem[i] = 0
	}
	n.down = false
}

// Down reports whether the node is currently failed.
func (n *Node) Down() bool { return n.down }

// failTimeout is the virtual time a client charges before declaring the
// node unreachable (Config.FailTimeout, defaulting to 10×RTT — a few
// retransmission rounds on a lossless fabric).
func (n *Node) failTimeout() int64 {
	if n.cfg.FailTimeout > 0 {
		return n.cfg.FailTimeout
	}
	return 10 * n.cfg.RTT
}

// unreachable charges p the completion timeout and raises the typed
// failure panic. Every verb path funnels node-down detection through
// here so the timeout cost model stays uniform.
func (n *Node) unreachable(p *sim.Proc) {
	p.Sleep(n.failTimeout())
	panic(&NodeUnreachableError{Node: n.Name})
}
