// Fixture half 1: this file is named plan.go, and the fixture loads as
// ditto/internal/core — the one (package, file) pair where core may
// issue raw verbs. Nothing here is flagged.

package core

import "ditto/internal/rdma"

func planRead(ep *rdma.Endpoint, addr uint64) []byte {
	return ep.Read(addr, 8) // sanctioned: plan.go is core's verb vocabulary
}

func planBatch(ep *rdma.Endpoint, ops []rdma.BatchOp) []rdma.BatchResult {
	return ep.PostBatch(ops) // sanctioned likewise
}

// planSpecRead is the speculative-Get shape: ONE hinted object READ.
// Sanctioned here and only here — the one-RTT path stays inside the
// declared verb vocabulary.
func planSpecRead(ep *rdma.Endpoint, hintAddr uint64, hintLen int) []byte {
	return ep.Read(hintAddr, hintLen) // sanctioned: plan.go owns the hinted READ
}
