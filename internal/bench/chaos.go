package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

// Chaos measures fault recovery end to end: a 4-MN pool with hot-key
// replication and background reclaim serves a read-heavy cache-aside
// workload paced by a flash-crowd load shape, a seed-chosen MN is
// fail-stopped at the crowd's peak, and a replacement node joins 500µs
// later. The scenario reports the three recovery figures the chaos
// suite asserts qualitatively (internal/chaos) as quantities:
//
//   - error_window_ns: span between the first and last client op that
//     surfaced an unavailable error around the crash,
//   - recovery_ns: time from the crash until a 250µs window's hit rate
//     first returns to >= 90% of the pre-fault hit rate,
//   - post_fault_hit_rate: aggregate hit rate from that point on.
//
// Everything — workload, fault time, victim — derives from one seed
// (-seed), so identical seeds produce identical BENCH_chaos.json.
func Chaos(w io.Writer, scale Scale) error {
	header(w, "Chaos: MN crash + replacement under flash-crowd load — recovery and error window")
	seed := benchSeed(47)
	const nodes = 4
	objects := scale.pick(4000, 16000)
	clients := scale.pick(6, 16)

	env := sim.NewEnv(seed)
	fs := sim.NewFaultSchedule(env, seed)
	mc := core.NewMultiCluster(env, nodes, core.DefaultOptions(objects, objects*320))
	mc.EnableBackgroundReclaim(0, 0)
	mc.EnableHotKeyReplication(2, 64, 128)

	// Keyspace at 3/4 of capacity: fully cacheable, so the pre-fault
	// hit rate is high and the post-crash dip is attributable to the
	// lost node, not to eviction noise.
	keyspace := uint64(objects) * 3 / 4
	env.Go("load", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := uint64(0); i < keyspace; i++ {
			c.Set(workload.KeyBytes(i), make([]byte, 240))
		}
	})
	env.Run()

	t0 := env.Now()
	victim := mc.NodeID(fs.Rand().Intn(mc.NumNodes()))
	tCrash := fs.Between(t0+2_000_000, t0+3_000_000, "crash-mn",
		func(*sim.Proc) { mc.CrashNode(victim) })
	reshardDone := int64(-1)
	fs.At(tCrash+500_000, "add-replacement", func(p *sim.Proc) {
		id := mc.AddNode()
		mc.WaitReshard(p)
		reshardDone = env.Now()
		_ = id
	})
	end := tCrash + 10_000_000

	// The flash crowd peaks across the crash: ramp starts 1ms before,
	// holds 3x load until 2ms after, then decays — recovery is measured
	// under pressure, not in a lull.
	shape := workload.FlashCrowd(1, 3, tCrash-1_000_000, 500_000, 2_500_000, 1_000_000)

	// Per-250µs buckets of hits/misses, plus the unavailable-error span.
	const bucketNs = 250_000
	type bucket struct{ hits, misses int64 }
	buckets := make(map[int64]*bucket)
	tally := func(hit bool) {
		b := buckets[env.Now()/bucketNs]
		if b == nil {
			b = &bucket{}
			buckets[env.Now()/bucketNs] = b
		}
		if hit {
			b.hits++
		} else {
			b.misses++
		}
	}
	var errCount int64
	firstErr, lastErr := int64(-1), int64(-1)
	noteErr := func() {
		errCount++
		if firstErr < 0 {
			firstErr = env.Now()
		}
		lastErr = env.Now()
	}

	for i := 0; i < clients; i++ {
		i := i
		env.Go("client", func(p *sim.Proc) {
			c := mc.NewClient(p)
			rng := rand.New(rand.NewSource(seed*1_000 + int64(i)))
			next := zipfSampler(rng, 0.9, keyspace)
			const baseGap = 2_000
			for env.Now() < end {
				key := workload.KeyBytes(next())
				if rng.Intn(10) < 8 {
					if _, ok := c.Get(key); ok {
						tally(true)
					} else {
						tally(false)
						// Cache-aside fill: this is how the lost
						// node's keys come back.
						if err := c.TrySet(key, make([]byte, 240)); err != nil {
							noteErr()
						}
					}
				} else if err := c.TrySet(key, make([]byte, 240)); err != nil {
					noteErr()
				}
				p.Sleep(shape.Gap(baseGap, env.Now()))
			}
		})
	}
	env.Run()

	// Pre-fault hit rate: buckets fully inside [t0+500µs, tCrash).
	var ids []int64
	for id := range buckets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	rate := func(h, m int64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	var preH, preM int64
	for _, id := range ids {
		if id*bucketNs >= t0+500_000 && (id+1)*bucketNs <= tCrash {
			preH += buckets[id].hits
			preM += buckets[id].misses
		}
	}
	preHit := rate(preH, preM)

	// Recovery: first post-crash bucket whose hit rate is back to 90%
	// of pre-fault; post-fault hit rate aggregates from there on.
	recoveryNs := int64(-1)
	var postH, postM int64
	for _, id := range ids {
		if id*bucketNs < tCrash {
			continue
		}
		b := buckets[id]
		if recoveryNs < 0 {
			if b.hits+b.misses > 0 && rate(b.hits, b.misses) >= 0.9*preHit {
				recoveryNs = (id+1)*bucketNs - tCrash
			} else {
				continue
			}
		}
		postH += b.hits
		postM += b.misses
	}
	postHit := rate(postH, postM)
	errWindowNs := int64(0)
	if firstErr >= 0 {
		errWindowNs = lastErr - firstErr
	}

	row(w, "seed", "pre hit", "post hit", "post/pre", "recovery(us)", "err window(us)", "errors")
	row(w, seed, preHit, postHit, safeRatio(postHit, preHit),
		float64(recoveryNs)/1000, float64(errWindowNs)/1000, errCount)
	fmt.Fprintf(w, "  crash at +%.0fus (node %d), replacement reshard done at +%.0fus, schedule: %s\n",
		float64(tCrash-t0)/1000, victim, float64(reshardDone-t0)/1000, fs.String())

	return writeJSONSummary(w, map[string]interface{}{
		"scenario":            "chaos",
		"scale":               scale.String(),
		"seed":                seed,
		"nodes":               nodes,
		"objects":             objects,
		"clients":             clients,
		"crash_ns":            tCrash - t0,
		"reshard_done_ns":     reshardDone - t0,
		"pre_fault_hit_rate":  preHit,
		"post_fault_hit_rate": postHit,
		"post_over_pre":       safeRatio(postHit, preHit),
		"recovery_ns":         recoveryNs,
		"error_window_ns":     errWindowNs,
		"errors":              errCount,
		"node_crashes":        mc.NodeCrashes,
		"fault_schedule":      fs.String(),
	})
}

// safeRatio returns a/b, or 0 when b is 0.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
