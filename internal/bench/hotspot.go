package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// hotspotRow is one measured configuration of the hotspot scenario, as
// serialized into BENCH_hotspot.json.
type hotspotRow struct {
	Theta       float64 `json:"theta"`
	Workload    string  `json:"workload"` // "read-only" | "mixed-5pct-writes"
	Mode        string  `json:"mode"`     // "unreplicated" | "replicated"
	Mops        float64 `json:"mops"`
	Speedup     float64 `json:"speedup_vs_unreplicated"`
	HitRate     float64 `json:"hit_rate"`
	Imbalance   float64 `json:"read_imbalance"` // max node share / mean share (1.0 = even)
	Promotions  int64   `json:"promotions"`
	Demotions   int64   `json:"demotions"`
	SpreadReads int64   `json:"spread_reads"`
}

// Hotspot measures the hot-key replication lever on a 4-MN pool, with
// and without replication. The headline rows are read-only zipfian
// closed loops (the canonical YCSB-C-style cache read workload) across
// skew exponents from YCSB's 0.99 up to the heavy hot tails real cache
// front ends report: unreplicated, the ring concentrates the hot tail
// on whichever MNs own the top keys and their RNICs become the binding
// resource while the others idle — visible as read_imbalance well above
// 1. With replication (factor 3: hot keys copied to every other MN),
// promoted reads rotate across all four nodes, imbalance collapses to
// ~1, and closed-loop throughput scales with the aggregate RNIC budget:
// >=2x at the heavy tail, smaller at moderate skew where no single node
// is as saturated.
//
// The final pair repeats the heavy tail with 5% writes. Every write to
// a replicated key suspends that key's spreading for the write's span
// (the invalidate-first write-through empties the replicas before the
// new value becomes readable — the price of linearizable reads), and
// under saturation those spans stretch, so the speedup shrinks. That
// shape is the point: replication pays on read-dominated hot keys,
// which is why write-heavy keys are demoted rather than replicated.
func Hotspot(w io.Writer, scale Scale) error {
	header(w, "Hotspot: hot-key replication + load-aware read spreading, 4 MNs")
	keys := scale.pick(2048, 16384)
	clients := scale.pick(48, 96)
	opsEach := scale.pick(1500, 8000)

	var rows []hotspotRow
	configs := []struct {
		theta      float64
		writeDenom int // 0 = read-only, N = 1-in-N writes
		label      string
	}{
		{0.99, 0, "read-only"},
		{1.3, 0, "read-only"},
		{1.6, 0, "read-only"},
		{1.6, 20, "mixed-5pct-writes"},
	}
	for _, cfg := range configs {
		fmt.Fprintf(w, "-- zipf theta=%.2f, %s --\n", cfg.theta, cfg.label)
		row(w, "mode", "tput(Mops)", "speedup", "hit rate", "imbalance")
		base := 0.0
		for _, replicate := range []bool{false, true} {
			res, imb, mc := runHotspot(cfg.theta, replicate, keys, clients, opsEach, cfg.writeDenom)
			if !replicate {
				base = res.Mops()
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.Mops() / base
			}
			mode := "unreplicated"
			if replicate {
				mode = "replicated"
			}
			row(w, mode, res.Mops(), speedup, res.HitRate(), imb)
			rows = append(rows, hotspotRow{
				Theta: cfg.theta, Workload: cfg.label, Mode: mode,
				Mops: res.Mops(), Speedup: speedup, HitRate: res.HitRate(), Imbalance: imb,
				Promotions: mc.Promotions, Demotions: mc.Demotions, SpreadReads: mc.SpreadReads,
			})
			if replicate {
				fmt.Fprintf(w, "promotions: %d, demotions: %d, spread reads: %d\n",
					mc.Promotions, mc.Demotions, mc.SpreadReads)
			}
		}
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario": "hotspot",
		"scale":    scale.String(),
		"keys":     keys,
		"clients":  clients,
		"nodes":    4,
		"results":  rows,
	})
}

// runHotspot runs `clients` closed-loop clients (zipf(theta)-skewed
// keys; writeDenom == 0 means read-only, N means 1-in-N ops are Sets)
// against a 4-MN pool and reports the result plus the per-node
// served-read imbalance. theta <= 1 uses the YCSB scrambled-zipfian
// generator; heavier tails use the classical zipf sampler
// (math/rand.Zipf), whose rank-0 key is simply key 0 — ring placement
// hashes the key bytes, so the hot ranks still land on effectively
// random nodes.
func runHotspot(theta float64, replicate bool, keys, clients, opsEach, writeDenom int) (Result, float64, *core.MultiCluster) {
	env := sim.NewEnv(benchSeed(29))
	opts := core.DefaultOptions(keys*3, keys*1200) // headroom for 1+R hot-key copies
	// The replication lever only matters once a single MN's RNIC is the
	// binding resource. The default calibration's 40 M msg/s per node
	// needs hundreds of closed-loop clients to saturate; scale the
	// message rate down (the reproduction target is the SHAPE: what
	// happens once the hot node saturates) so a quick run reaches that
	// regime with tens of clients.
	opts.Fabric.MsgSvc = 300 // ~3.3 M msg/s per MN
	mc := core.NewMultiCluster(env, 4, opts)
	if replicate {
		// Copies on every other MN, promotion after a few dozen observed
		// hits, directory comfortably covering the hot tail.
		mc.EnableHotKeyReplication(3, 32, 512)
	}
	factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
	RunLoad(env, factory, loadKeys(keys), 16)

	res := Result{}
	start := env.Now()
	for w := 0; w < clients; w++ {
		w := w
		env.Go("client", func(p *sim.Proc) {
			m := mc.NewClient(p)
			rng := rand.New(rand.NewSource(int64(300 + w)))
			next := zipfSampler(rng, theta, uint64(keys))
			for i := 0; i < opsEach; i++ {
				k := workload.KeyBytes(next())
				if writeDenom > 0 && rng.Intn(writeDenom) == 0 {
					m.Set(k, make([]byte, 240))
				} else if _, ok := m.Get(k); ok {
					res.Hits++
				} else {
					res.Misses++
				}
				res.Ops++
			}
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start

	served := make([]int64, mc.NumNodes())
	for i := range served {
		served[i] = mc.Node(i).ServedReads()
	}
	return res, stats.Imbalance(served), mc
}

// zipfSampler returns a key sampler for the given skew: the YCSB
// scrambled-zipfian port for theta < 1, math/rand's classical zipf for
// theta >= 1 (the YCSB formula diverges there).
func zipfSampler(rng *rand.Rand, theta float64, keys uint64) func() uint64 {
	if theta < 1 {
		z := workload.NewScrambledZipfian(keys, theta)
		return func() uint64 { return z.Next(rng) }
	}
	z := rand.NewZipf(rng, theta, 1, keys-1)
	return z.Uint64
}
