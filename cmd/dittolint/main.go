// Command dittolint is Ditto's single lint entry point: the
// project-invariant analyzer suite (simdet, verbplan, lockverb,
// hotalloc, typederr) bundled with the stock correctness passes
// (atomic, copylocks, and the gated nilness stub) behind one binary.
//
// It runs two ways:
//
//	dittolint [./...]                   standalone: type-check the module
//	                                    from source and report findings
//	                                    (also runs stock `go vet ./...`
//	                                    first unless -novet is given)
//	go vet -vettool=$(which dittolint) ./...
//	                                    vettool mode: cmd/go drives one
//	                                    invocation per package with gc
//	                                    export data (fast, exact, CI's
//	                                    gating configuration)
//
// Exit status: 0 clean, 1 findings, 2 driver failure. Findings print as
//
//	file:line:col: analyzer: message
//
// and are suppressed only by a reasoned annotation on the offending
// line: //dittolint:allow <analyzer> (reason). See docs/TESTING.md
// ("Static analysis") for the catalog of analyzers and the invariant
// each one encodes.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ditto/internal/analysis"
	"ditto/internal/analysis/hotalloc"
	"ditto/internal/analysis/lockverb"
	"ditto/internal/analysis/simdet"
	"ditto/internal/analysis/stock"
	"ditto/internal/analysis/typederr"
	"ditto/internal/analysis/verbplan"
)

// suite is every analyzer dittolint runs, project invariants first.
var suite = []*analysis.Analyzer{
	simdet.Analyzer,
	verbplan.Analyzer,
	lockverb.Analyzer,
	hotalloc.Analyzer,
	typederr.Analyzer,
	stock.Atomic,
	stock.Copylocks,
	stock.Nilness,
}

func main() {
	// Vettool protocol, step 1: version stamp for cmd/go's build cache.
	// The phrasing mirrors x/tools: a "devel" version line must end in a
	// buildID= field (cmd/go rejects it otherwise), and hashing the tool
	// binary itself makes the vet cache invalidate whenever the analyzer
	// suite changes.
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, selfHash())
		return
	}
	// Step 2: analyzer-flag discovery. Dittolint exposes no per-analyzer
	// flags, so the set is empty.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Step 3: one package unit, described by a JSON .cfg file.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		analysis.RunVettool(os.Args[1], suite)
		return
	}

	standalone()
}

// standalone type-checks the module from source and runs the suite over
// every package (or the packages named as directory arguments).
func standalone() {
	fs := flag.NewFlagSet("dittolint", flag.ExitOnError)
	novet := fs.Bool("novet", false, "skip running stock `go vet ./...` first")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dittolint [-novet] [-list] [./... | pkgdir...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range suite {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}

	// Stock go vet first (printf, unreachable, stdlib atomic/copylocks,
	// ...): dittolint is the single entry point, and the stock passes
	// fail it exactly like the project analyzers do.
	if !*novet {
		cmd := exec.Command("go", "vet", "./...")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "dittolint: stock `go vet ./...` failed")
			os.Exit(1)
		}
	}

	var paths []string
	args := fs.Args()
	wholeModule := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." {
			wholeModule = true
			continue
		}
		abs, err := filepath.Abs(a)
		if err != nil {
			fatal(err)
		}
		rel, err := filepath.Rel(mustModuleRoot(loader), abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("package %s is outside the module", a))
		}
		if rel == "." {
			paths = append(paths, loader.ModulePath())
		} else {
			paths = append(paths, loader.ModulePath()+"/"+filepath.ToSlash(rel))
		}
	}
	if wholeModule {
		all, err := loader.ListPackages()
		if err != nil {
			fatal(err)
		}
		paths = append(paths, all...)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dittolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// selfHash returns a sha256 of the running binary — the vettool's
// content ID for cmd/go's vet result cache.
func selfHash() []byte {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fatal(err)
	}
	h := sha256.Sum256(data)
	return h[:]
}

// mustModuleRoot recovers the loader's module root (the directory
// holding go.mod) for resolving directory arguments.
func mustModuleRoot(l *analysis.Loader) string {
	dir, err := filepath.Abs(".")
	if err != nil {
		fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			fatal(fmt.Errorf("no go.mod found"))
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
	os.Exit(2)
}
