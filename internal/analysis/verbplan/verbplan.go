// Package verbplan enforces PR 3's declare-once invariant: every
// cache-operation verb sequence is declared exactly once, as a verb
// plan, and raw rdma verbs are issued only by the layers that implement
// that machinery.
//
// The paper's client-centric design keeps every operation a short,
// fixed sequence of one-sided verbs with well-defined fallback edges.
// PR 3 made that structural: get/set/delete/migrate are declared once
// in internal/core/plan.go and run by the internal/exec executor under
// Serial or Doorbell strategies. A raw endpoint.Read in, say, client.go
// quietly re-creates a second copy of an operation's verb sequence —
// exactly the drift the refactor removed — and bypasses the doorbell
// batching, stats accounting, and fault paths the plans carry.
//
// Raw verb issue (rdma.Endpoint.{Read,Write,WriteAsync,CAS,FAA,
// FAAAsync,PostBatch,RPC} and rdma.PostMulti) is therefore legal only
// from:
//
//   - ditto/internal/rdma — the transport itself;
//   - ditto/internal/exec — the plan executor;
//   - ditto/internal/baselines — the paper's comparison systems, which
//     deliberately hand-write their verb sequences;
//   - ditto/internal/core, file plan.go only — the single file where
//     core's verb vocabulary (plans and the documented single-verb
//     maintenance accesses) lives;
//   - the wire-format handle layer BELOW plans: hashtable, memnode,
//     history, adaptive. These packages own remote data layouts the
//     way rdma owns the wire; plans compose their typed accessors.
//
// Everything else — core outside plan.go, bench drivers, examples —
// must go through a declared plan or a handle-layer accessor.
package verbplan

import (
	"go/ast"
	"path/filepath"

	"ditto/internal/analysis"
)

// sanctioned packages may issue raw verbs anywhere in the package.
var sanctioned = map[string]bool{
	"ditto/internal/rdma":      true,
	"ditto/internal/exec":      true,
	"ditto/internal/baselines": true,
	"ditto/internal/hashtable": true,
	"ditto/internal/memnode":   true,
	"ditto/internal/history":   true,
	"ditto/internal/adaptive":  true,
}

// sanctionedFiles may issue raw verbs in specific files of otherwise
// swept packages: core's verb vocabulary lives in plan.go alone.
var sanctionedFiles = map[string]map[string]bool{
	"ditto/internal/core": {"plan.go": true},
}

// Analyzer is the verbplan pass.
var Analyzer = &analysis.Analyzer{
	Name: "verbplan",
	Doc: "raw rdma verb calls are only legal from the executor, the " +
		"transport, plan.go, the handle layer, and baselines; everything " +
		"else goes through a declared verb plan (PR 3 invariant)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if sanctioned[pass.Path] {
		return nil
	}
	files := sanctionedFiles[pass.Path]
	for _, file := range pass.Files {
		if files[filepath.Base(pass.Fset.Position(file.Pos()).Filename)] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, isVerb := analysis.RDMAVerb(pass.Info, call); isVerb {
				pass.Reportf(call.Pos(),
					"raw %s call outside the verb-plan layer; declare the verb sequence as a plan in plan.go (or a handle-layer accessor) and run it through internal/exec", name)
			}
			return true
		})
	}
	return nil
}
