// Package adaptive implements Ditto's distributed adaptive caching scheme
// (§4.3): cache replacement as a multi-armed bandit over multiple caching
// algorithms ("experts"), driven by regret minimization, with the lazy
// weight update protocol between clients and the MN controller (§4.3.2).
//
// Each client keeps local expert weights and makes eviction decisions with
// them. When a missed key hits in the eviction history (a regret), the
// experts whose bitmap appears in the history entry are penalized:
//
//	w_Ei ← w_Ei · e^(−λ·d^t)
//
// where λ is the learning rate, t the entry's age in the logical FIFO
// queue, and d = 0.005^(1/N) the discount rate for a history of N entries
// (following LeCaR). Thanks to e^a·e^b = e^(a+b), clients buffer only the
// per-expert SUM of exponents and ship it to the controller every
// BatchSize regrets; the controller folds the sums into the global weights
// and replies with them, so clients re-synchronize without client-to-
// client coordination.
package adaptive

import (
	"encoding/binary"
	"math"
	"math/rand"

	"ditto/internal/memnode"
	"ditto/internal/rdma"
)

// minWeight keeps every expert's normalized weight above a floor so a
// long-losing expert can recover when the workload turns (LeCaR clamps
// similarly).
const minWeight = 0.01

// DiscountRate returns d = 0.005^(1/N) for a history of N entries.
func DiscountRate(historySize int) float64 {
	if historySize < 1 {
		historySize = 1
	}
	return math.Pow(0.005, 1/float64(historySize))
}

// Weights is a normalized weight vector over experts.
type Weights []float64

func newUniform(n int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// normalize rescales to sum 1 with the floor applied.
func (w Weights) normalize() {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		copy(w, newUniform(len(w)))
		return
	}
	for i := range w {
		w[i] /= sum
	}
	// Lift floored weights to exactly minWeight and take the mass from the
	// unfloored ones, so the result still sums to 1.
	deficit, free := 0.0, 0.0
	for i := range w {
		if w[i] < minWeight {
			deficit += minWeight - w[i]
			w[i] = minWeight
		} else {
			free += w[i]
		}
	}
	if deficit > 0 && free > deficit {
		scale := (free - deficit) / free
		for i := range w {
			if w[i] > minWeight {
				w[i] *= scale
			}
		}
	}
}

// Client is one Ditto client's adaptive state.
type Client struct {
	n         int
	lr        float64
	discount  float64
	batchSize int
	local     Weights
	pending   []float64 // per-expert exponent sums awaiting offload
	buffered  int
	ep        *rdma.Endpoint
	eager     bool // ablation: sync on every regret

	// Regrets counts penalties applied; Syncs counts RPC offloads.
	Regrets, Syncs int64
}

// Config configures a client.
type Config struct {
	NumExperts   int
	LearningRate float64 // paper default 0.1
	HistorySize  int     // determines the discount rate
	BatchSize    int     // paper default 100 local updates per RPC
	Eager        bool    // ablation: disable lazy batching
}

// NewClient creates the client-side adaptive state speaking to the
// controller through ep (ep may be nil for purely local simulations, in
// which case weights never sync globally).
func NewClient(cfg Config, ep *rdma.Endpoint) *Client {
	if cfg.NumExperts < 1 {
		panic("adaptive: need at least one expert")
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 100
	}
	return &Client{
		n:         cfg.NumExperts,
		lr:        cfg.LearningRate,
		discount:  DiscountRate(cfg.HistorySize),
		batchSize: cfg.BatchSize,
		local:     newUniform(cfg.NumExperts),
		pending:   make([]float64, cfg.NumExperts),
		ep:        ep,
		eager:     cfg.Eager,
	}
}

// Weights returns the client's current local weights (read-only view).
func (c *Client) Weights() Weights { return c.local }

// PickExpert samples an expert index proportionally to the local weights
// (step 2 of Figure 8: candidates of higher-weight experts are more likely
// to be evicted).
func (c *Client) PickExpert(rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range c.local {
		acc += w
		if x < acc {
			return i
		}
	}
	return c.n - 1
}

// Penalize applies a regret against every expert set in bitmap, for a
// history entry of the given age, then offloads lazily if the batch is
// full.
func (c *Client) Penalize(bitmap uint64, age uint64) {
	exponent := c.lr * math.Pow(c.discount, float64(age))
	for i := 0; i < c.n; i++ {
		if bitmap&(1<<uint(i)) == 0 {
			continue
		}
		c.local[i] *= math.Exp(-exponent)
		c.pending[i] += exponent
		c.Regrets++
	}
	c.local.normalize()
	c.buffered++
	if c.eager || c.buffered >= c.batchSize {
		c.Sync()
	}
}

// Sync offloads the buffered penalty sums to the controller with one RPC
// and adopts the global weights from the reply. A nil endpoint makes Sync
// a no-op (local-only mode).
func (c *Client) Sync() {
	c.buffered = 0
	if c.ep == nil {
		for i := range c.pending {
			c.pending[i] = 0
		}
		return
	}
	payload := make([]byte, 8*c.n)
	for i, e := range c.pending {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(e))
		c.pending[i] = 0
	}
	reply := c.ep.RPC(memnode.OpWeightUpdate, payload)
	for i := range c.local {
		c.local[i] = math.Float64frombits(binary.LittleEndian.Uint64(reply[8*i:]))
	}
	c.Syncs++
}

// Service is the controller-side global weight state, registered on the
// memory node. The controller is weak (1–2 cores) but the lazy update
// makes this RPC rare, so it never bottlenecks (§4.3.2).
type Service struct {
	global Weights

	// Updates counts weight-update RPCs served.
	Updates int64
}

// RegisterService installs the weight-update handler on the node and
// returns the service.
func RegisterService(node *rdma.Node, numExperts int) *Service {
	s := &Service{global: newUniform(numExperts)}
	node.Handle(memnode.OpWeightUpdate, func(payload []byte) []byte {
		s.Updates++
		n := len(s.global)
		for i := 0; i < n && 8*i+8 <= len(payload); i++ {
			exp := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			s.global[i] *= math.Exp(-exp)
		}
		s.global.normalize()
		reply := make([]byte, 8*n)
		for i, w := range s.global {
			binary.LittleEndian.PutUint64(reply[8*i:], math.Float64bits(w))
		}
		return reply
	})
	return s
}

// Global returns the controller's current global weights.
func (s *Service) Global() Weights { return s.global }
