package rdma

import (
	"errors"
	"testing"

	"ditto/internal/sim"
)

// TestFailedNodeVerbsTimeOut: every verb against a failed node charges
// the fail timeout and surfaces NodeUnreachableError via CatchUnreachable.
func TestFailedNodeVerbsTimeOut(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	node.Name = "mn0"
	node.Handle(1, func(p []byte) []byte { return p })
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		ep.Write(0, []byte("before"))
		node.Fail()
		verbs := []struct {
			name string
			fn   func()
		}{
			{"read", func() { ep.Read(0, 6) }},
			{"write", func() { ep.Write(0, []byte("x")) }},
			{"write-async", func() { ep.WriteAsync(0, []byte("x")) }},
			{"cas", func() { ep.CAS(0, 0, 1) }},
			{"faa", func() { ep.FAA(0, 1) }},
			{"rpc", func() { ep.RPC(1, []byte("hi")) }},
			{"batch", func() { ep.PostBatch([]BatchOp{{Kind: BatchRead, Addr: 0, Len: 6}}) }},
		}
		for _, v := range verbs {
			start := p.Now()
			err := CatchUnreachable(v.fn)
			if err == nil {
				t.Fatalf("%s against failed node returned nil error", v.name)
			}
			if !IsUnreachable(err) {
				t.Fatalf("%s: error %v is not NodeUnreachableError", v.name, err)
			}
			if elapsed := p.Now() - start; elapsed < node.failTimeout() {
				t.Errorf("%s charged %dns, want >= timeout %dns", v.name, elapsed, node.failTimeout())
			}
		}
	})
	env.Run()
}

// TestFailMidFlightDiscardsEffect: a write posted before the node fails,
// whose completion would land after, must NOT apply (the completion never
// arrived).
func TestFailMidFlightDiscardsEffect(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("writer", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		err := CatchUnreachable(func() { ep.Write(0, []byte{0xAA}) })
		if !IsUnreachable(err) {
			t.Fatalf("mid-flight write error = %v", err)
		}
	})
	env.Go("chaos", func(p *sim.Proc) {
		// Fire inside the writer's RTT sleep (RTT is 2 µs).
		p.Sleep(node.cfg.RTT / 2)
		node.Fail()
	})
	env.Run()
	if node.mem[0] != 0 {
		t.Fatalf("mid-flight write applied: mem[0]=%#x", node.mem[0])
	}
}

// TestRestartZeroesMemory: Restart brings the node back empty — DRAM does
// not survive fail-stop — and verbs work again.
func TestRestartZeroesMemory(t *testing.T) {
	env := sim.NewEnv(1)
	node := testNode(env)
	env.Go("c", func(p *sim.Proc) {
		ep := NewEndpoint(node, p)
		ep.Write(100, []byte("persist?"))
		node.Fail()
		if !node.Down() {
			t.Fatal("Down() = false after Fail")
		}
		node.Restart()
		if node.Down() {
			t.Fatal("Down() = true after Restart")
		}
		got := ep.Read(100, 8)
		for i, b := range got {
			if b != 0 {
				t.Fatalf("byte %d survived restart: %#x", i, b)
			}
		}
	})
	env.Run()
}

// TestPostMultiPartialFailure: a multi-endpoint round where one node is
// down still applies the live node's batch, then surfaces the error.
func TestPostMultiPartialFailure(t *testing.T) {
	env := sim.NewEnv(1)
	alive := testNode(env)
	dead := testNode(env)
	dead.Name = "mn-dead"
	env.Go("c", func(p *sim.Proc) {
		epA := NewEndpoint(alive, p)
		epD := NewEndpoint(dead, p)
		dead.Fail()
		err := CatchUnreachable(func() {
			PostMulti([]EndpointBatch{
				{EP: epA, Ops: []BatchOp{{Kind: BatchWrite, Addr: 0, Data: []byte{1}}}},
				{EP: epD, Ops: []BatchOp{{Kind: BatchWrite, Addr: 0, Data: []byte{2}}}},
			})
		})
		if !IsUnreachable(err) {
			t.Fatalf("PostMulti error = %v", err)
		}
	})
	env.Run()
	if alive.mem[0] != 1 {
		t.Error("live node's batch did not apply")
	}
	if dead.mem[0] != 0 {
		t.Error("dead node's batch applied")
	}
}

// TestCatchUnreachablePassesOtherPanics: unrelated panics are not eaten.
func TestCatchUnreachablePassesOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	_ = CatchUnreachable(func() { panic("something else") })
}

// TestIsUnreachableWrapped: IsUnreachable sees through fmt.Errorf %w chains.
func TestIsUnreachableWrapped(t *testing.T) {
	base := &NodeUnreachableError{Node: "mn1"}
	if !IsUnreachable(base) {
		t.Error("bare error not recognized")
	}
	if !IsUnreachable(errors.Join(errors.New("ctx"), base)) {
		t.Error("wrapped error not recognized")
	}
	if IsUnreachable(errors.New("other")) {
		t.Error("foreign error recognized")
	}
	if base.Error() == "" || (&NodeUnreachableError{}).Error() == "" {
		t.Error("empty error strings")
	}
}
