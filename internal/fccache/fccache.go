// Package fccache implements Ditto's client-side frequency-counter (FC)
// cache (§4.2.2): a write-combining buffer for the RDMA_FAAs that keep the
// stateful freq counters in the memory pool up to date.
//
// Each Get/Set increments an object's freq counter. Issuing one RDMA_FAA
// per access consumes the RNIC message rate and contends on the RNIC's
// internal atomic locks, so — like write combining in modern processors —
// the FC cache buffers per-object deltas and flushes a combined delta with
// a single RDMA_FAA when either (a) the buffered delta reaches the
// threshold t, reducing FAAs by up to 1/t, or (b) the cache is full, in
// which case the entry with the earliest insert time is flushed.
package fccache

import "container/heap"

// FlushFunc applies a combined delta to the remote counter at addr
// (typically hashtable.Handle.FAAFreqAsync). The cache guarantees every
// buffered increment is handed to exactly one FlushFunc call — no delta
// is dropped or double-flushed — so the remote counter converges on the
// true count as flushes land, lagging by at most the buffered deltas.
type FlushFunc func(addr uint64, delta uint64)

// entryOverhead approximates per-entry bookkeeping bytes beyond the object
// ID (slot address + delta + insert time).
const entryOverhead = 24

// DefaultMaxLag bounds how many subsequent accesses an entry may buffer
// before being force-flushed. The paper tracks each entry's insert time
// "to ensure that the frequency counters in the memory pool do not lag too
// much" (§4.2.2); without this bound, mid-frequency objects would look
// permanently cold to LFU-family experts sampling the remote counters.
const DefaultMaxLag = 48

type entry struct {
	addr     uint64
	delta    uint64
	insertAt int64
	bytes    int
	index    int // heap index
}

type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].insertAt < h[j].insertAt }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x interface{}) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Cache is one client's FC cache. It is not safe for concurrent use; each
// Ditto client owns one (clients are sim processes, so this is free).
// Invariants the rest of the system leans on: the sum of all flushed
// deltas plus all still-buffered deltas equals Buffered (no increment is
// lost or duplicated); UsedBytes never exceeds the configured capacity
// after Add returns; and no entry buffers past the maxLag age bound, so
// a remote counter can lag its true value by at most threshold-1
// increments per client for at most maxLag of that client's accesses.
type Cache struct {
	capacityBytes int
	threshold     uint64
	maxLag        int64
	flush         FlushFunc
	entries       map[uint64]*entry
	order         entryHeap
	free          []*entry // recycled entries: steady-state Add/evict churn allocates nothing
	usedBytes     int
	seq           int64

	// Buffered counts increments absorbed; Flushes counts FAAs issued.
	Buffered, Flushes int64
}

// New creates an FC cache of capacityBytes with flush threshold t.
// capacityBytes <= 0 disables buffering entirely (every Add flushes
// immediately — used by the ablation experiments).
func New(capacityBytes int, threshold uint64, flush FlushFunc) *Cache {
	if threshold < 1 {
		threshold = 1
	}
	return &Cache{
		capacityBytes: capacityBytes,
		threshold:     threshold,
		maxLag:        DefaultMaxLag,
		flush:         flush,
		entries:       make(map[uint64]*entry),
	}
}

// SetMaxLag overrides the age bound (in subsequent Add operations) after
// which a buffered entry is force-flushed; lag <= 0 disables the bound.
// Lowering the bound takes effect on the next Add (existing over-age
// entries flush then, not immediately).
func (c *Cache) SetMaxLag(lag int64) { c.maxLag = lag }

// Len returns the number of buffered entries (each holding a non-zero
// pending delta — fully flushed entries leave the cache).
func (c *Cache) Len() int { return len(c.entries) }

// UsedBytes returns the buffered entries' footprint. It is <= the
// configured capacity whenever control is outside Add.
func (c *Cache) UsedBytes() int { return c.usedBytes }

// Add buffers a +1 for the freq counter at addr. idBytes is the object-ID
// size, which determines the entry's footprint (the paper sizes the FC
// cache in MB because entries vary with object-ID size). Add either
// buffers the increment or flushes a combined delta containing it —
// never both — so callers that need the key's logical frequency must
// read PendingDelta BEFORE calling Add (the noteHit/updateExt
// convention; reading after would double-count this access whenever it
// was buffered).
func (c *Cache) Add(addr uint64, idBytes int) {
	c.Buffered++
	c.seq++ // seq counts accesses: entry age is measured in accesses
	if c.capacityBytes <= 0 {
		c.Flushes++
		c.flush(addr, 1)
		return
	}
	if e, ok := c.entries[addr]; ok {
		e.delta++
		if e.delta >= c.threshold {
			c.evict(e)
		}
		return
	}
	var e *entry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free = c.free[:n-1]
		*e = entry{addr: addr, delta: 1, insertAt: c.seq, bytes: idBytes + entryOverhead}
	} else {
		e = &entry{addr: addr, delta: 1, insertAt: c.seq, bytes: idBytes + entryOverhead}
	}
	c.entries[addr] = e
	heap.Push(&c.order, e)
	c.usedBytes += e.bytes
	for c.usedBytes > c.capacityBytes && len(c.order) > 0 {
		c.evict(c.order[0]) // earliest insert time
	}
	if e.delta >= c.threshold {
		c.evict(e)
	}
	// Age-based flush: entries buffered for more than maxLag accesses are
	// pushed out so remote counters stay fresh.
	if c.maxLag > 0 {
		for len(c.order) > 0 && c.seq-c.order[0].insertAt > c.maxLag {
			c.evict(c.order[0])
		}
	}
}

// evict flushes one entry's combined delta with a single FAA.
func (c *Cache) evict(e *entry) {
	if _, live := c.entries[e.addr]; !live {
		return
	}
	heap.Remove(&c.order, e.index)
	delete(c.entries, e.addr)
	c.usedBytes -= e.bytes
	c.Flushes++
	addr, delta := e.addr, e.delta
	c.free = append(c.free, e)
	c.flush(addr, delta)
}

// FlushAll drains every buffered entry (used at client shutdown and by
// tests that need exact remote counters). Afterwards Len and
// PendingDelta are 0 for every address: the remote counters hold the
// complete count.
func (c *Cache) FlushAll() {
	for len(c.order) > 0 {
		c.evict(c.order[0])
	}
}

// PendingDelta reports the buffered delta for addr (0 if none) so read
// paths can correct for counter lag: remote snapshot + PendingDelta is
// the key's logical frequency as this client knows it. Must be read
// before Add buffers the current access (see Add).
func (c *Cache) PendingDelta(addr uint64) uint64 {
	if e, ok := c.entries[addr]; ok {
		return e.delta
	}
	return 0
}

// Forget drops any buffered delta for addr without flushing — the one
// deliberate exception to the nothing-is-dropped invariant, used when
// the owning slot was evicted or recycled and the counter no longer
// belongs to the same object (flushing would credit the new tenant with
// the old object's hits).
func (c *Cache) Forget(addr uint64) {
	if e, ok := c.entries[addr]; ok {
		heap.Remove(&c.order, e.index)
		delete(c.entries, addr)
		c.usedBytes -= e.bytes
		c.free = append(c.free, e)
	}
}
