package bench

import (
	"io"
	"math/rand"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

// batchedRow is one measured configuration of the batched-throughput
// scenario, as serialized into the JSON summary.
type batchedRow struct {
	Workload string  `json:"workload"`
	Batch    int     `json:"batch"`
	Mops     float64 `json:"mops"`
	Speedup  float64 `json:"speedup_vs_seq"`
	HitRate  float64 `json:"hit_rate"`

	// Host-side cost of simulating the measured phase (see Result):
	// allocations and wall-clock nanoseconds per key-operation. These
	// track the simulator's own hot path, not Ditto's virtual-time
	// performance; the alloc gate diffs them across commits.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HostNsPerOp float64 `json:"host_ns_per_op"`
}

// BatchedThroughput measures the doorbell-batching lever: MGet/MSet
// pipelines against per-key Get/Set over a 2-MN pool, across batch sizes
// 1/8/32/128, under YCSB-C (read-only) and YCSB-A (50% writes, the mixed
// workload). Batch size 1 IS the sequential baseline — the speedup
// column is each batch size's throughput relative to it. The shape to
// expect: throughput grows steeply with batch size while round trips
// amortize, then flattens as the RNIC message rate (which batching does
// not reduce) becomes the binding resource.
func BatchedThroughput(w io.Writer, scale Scale) error {
	header(w, "Batched throughput: doorbell-batched MGet/MSet vs sequential ops")
	keys := scale.pick(4000, 20000)
	clients := scale.pick(4, 8)
	opsEach := scale.pick(4096, 32768) // key-operations per client
	batchSizes := []int{1, 8, 32, 128}

	var rows []batchedRow
	for _, wl := range []struct {
		name string
		kind workload.YCSBKind
	}{
		{"ycsb-c", workload.YCSBC},
		{"mixed", workload.YCSBA},
	} {
		row(w, wl.name, "batch", "tput(Mops)", "speedup", "hit rate", "allocs/op", "host ns/op")
		base := 0.0
		for _, bs := range batchSizes {
			res := runBatchedYCSB(wl.kind, keys, clients, opsEach, bs)
			if bs == 1 {
				base = res.Mops()
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.Mops() / base
			}
			row(w, "", bs, res.Mops(), speedup, res.HitRate(), res.AllocsPerOp(), res.HostNsPerOp())
			rows = append(rows, batchedRow{
				Workload: wl.name, Batch: bs,
				Mops: res.Mops(), Speedup: speedup, HitRate: res.HitRate(),
				AllocsPerOp: res.AllocsPerOp(), HostNsPerOp: res.HostNsPerOp(),
			})
		}
	}
	return writeJSONSummary(w, map[string]interface{}{
		"scenario": "batched-throughput",
		"scale":    scale.String(),
		"keys":     keys,
		"clients":  clients,
		"results":  rows,
	})
}

// runBatchedYCSB runs `clients` closed-loop clients against a 2-MN pool,
// each issuing opsEach key-operations in windows of batchSize requests:
// the window's writes go out as one MSet, its reads as one MGet.
// batchSize 1 degenerates to per-key Set/Get — the sequential baseline.
func runBatchedYCSB(kind workload.YCSBKind, keys, clients, opsEach, batchSize int) Result {
	env := sim.NewEnv(benchSeed(23))
	mc := core.NewMultiCluster(env, 2, core.DefaultOptions(keys*2, keys*512))
	factory := func(p *sim.Proc) CacheOps { return mc.NewClient(p) }
	RunLoad(env, factory, loadKeys(keys), 16)

	res := Result{}
	meter := startHostMeter()
	start := env.Now()
	for w := 0; w < clients; w++ {
		w := w
		env.Go("client", func(p *sim.Proc) {
			m := mc.NewClient(p)
			g := workload.NewYCSB(kind, uint64(keys), 256)
			rng := rand.New(rand.NewSource(int64(40 + w)))
			for done := 0; done < opsEach; done += batchSize {
				n := batchSize
				if rem := opsEach - done; n > rem {
					n = rem
				}
				var pairs []core.KV
				var gets [][]byte
				for j := 0; j < n; j++ {
					r := g.Next(rng)
					if r.Write {
						pairs = append(pairs, core.KV{Key: workload.KeyBytes(r.Key), Value: valueFor(r)})
					} else {
						gets = append(gets, workload.KeyBytes(r.Key))
					}
				}
				if batchSize == 1 {
					for _, kv := range pairs {
						m.Set(kv.Key, kv.Value)
					}
					for _, k := range gets {
						if _, ok := m.Get(k); ok {
							res.Hits++
						} else {
							res.Misses++
						}
					}
				} else {
					m.MSet(pairs)
					_, oks := m.MGet(gets)
					for _, ok := range oks {
						if ok {
							res.Hits++
						} else {
							res.Misses++
						}
					}
				}
				res.Ops += int64(n)
			}
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start
	meter.stop(&res)
	return res
}
