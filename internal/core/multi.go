package core

import (
	"bytes"
	"sort"
	"sync/atomic"

	"ditto/internal/exec"
	"ditto/internal/hashtable"
	"ditto/internal/hotset"
	"ditto/internal/rdma"
	"ditto/internal/ring"
	"ditto/internal/sim"
)

// MultiCluster is a Ditto deployment over several memory nodes. The paper
// evaluates with one MN but notes Ditto "is compatible with memory pools
// with multiple MNs as long as the memory pool offers the required
// interfaces" (§5.1): keys are partitioned across MNs by a consistent-hash
// ring (internal/ring), each MN hosts its own table shard, heap, history
// counter and controller. Compute-side elasticity is unchanged; memory
// elasticity gains a second axis — grow/shrink one MN's heap, or add and
// remove whole MNs at runtime with AddNode and RemoveNode.
//
// A membership change starts a reshard: a background sim process walks the
// affected table shards with the same one-sided verbs clients use (READ
// the old copy, SET it on the new owner, delete behind) and migrates only
// the keys whose ring owner changed. While the reshard is in flight the
// old and new rings are both live: Gets that miss on the new owner are
// forwarded to the old owner, so no key ever disappears mid-migration,
// and the migration copy never overwrites a value written during the
// window (the copy is insert-if-absent, and it is undone with a precise
// CAS when the source copy was concurrently deleted or replaced).
//
// The repair discipline is detect-then-repair, not atomic, so two
// bounded staleness windows exist DURING a reshard and are resolved by
// its end: a Delete racing the migration of its own key can see the dead
// value transiently readable for a few verb round trips before the undo
// lands, and a write racing a migrated insert into a different slot can
// be shadowed by the stale copy until the resharder's final verification
// sweep drops it. Neither survives the reshard.
//
// Adaptive state is kept per MN: each MN's controller aggregates the
// weights for the keys it hosts. Access patterns are hash-split, so the
// per-MN mixes converge to the global mix.
type MultiCluster struct {
	Env *sim.Env

	perNode Options          // per-MN sizing, fixed at construction
	nodes   map[int]*Cluster // node ID → cluster
	order   []int            // active node IDs, in Node() index order
	nextID  int

	// route is the pool's routing state as ONE immutable snapshot behind
	// an atomic pointer (RCU-style): readers load it once and route a
	// whole decision against a consistent view — ring, forwarding window,
	// drain target and epoch can never tear apart — while membership
	// changes publish a fresh snapshot in one store (publishRoute). The
	// rings themselves are already immutable (ring.With/Without return
	// new rings), so a loaded snapshot stays valid forever; it just goes
	// stale, which the epoch comparison detects.
	route atomic.Pointer[routeSnapshot]
	done  *sim.Cond // broadcast when a reshard completes

	// ReshardStrategy selects how the resharder executes its migration
	// plans: exec.Doorbell (the default) pipelines the table scan and the
	// per-key migrations as doorbell batches, cutting reshard completion
	// time; exec.Serial issues one verb per round trip, the paper-faithful
	// baseline. Results are identical — any migration that hits a race
	// under Doorbell is demoted to the serial per-slot path.
	ReshardStrategy exec.Strategy

	// Reshards counts completed membership changes; MigratedKeys counts
	// objects moved between MNs by resharding; ReshardNs accumulates the
	// virtual time spent inside reshard windows.
	Reshards     int64
	MigratedKeys int64
	ReshardNs    int64

	// NodeCrashes counts fail-stopped nodes (CrashNode); ReshardRestarts
	// counts resharder incarnations respawned after a kill.
	NodeCrashes     int64
	ReshardRestarts int64

	// Hot-key replication (replica.go). hot is nil until
	// EnableHotKeyReplication is called; every knob and counter below is
	// inert while it is.
	hot *hotset.Set

	// HotThreshold is the hit frequency at which a key is promoted into
	// the replicated set; ReplicaFactor is R, the number of ring-successor
	// nodes a promoted key's value is copied to beyond its primary owner.
	// Both are set by EnableHotKeyReplication.
	HotThreshold  uint64
	ReplicaFactor int

	// ReplicaStrategy selects how replica fan-out verb plans (copy
	// materialization, write-through updates, invalidations) execute:
	// exec.Doorbell (the default) posts the fan-out as one doorbell batch
	// across the replica endpoints; exec.Serial issues one verb per round
	// trip. Results are identical — a plan that hits a complication is
	// demoted to the serial retry path either way.
	ReplicaStrategy exec.Strategy

	// ReclaimStrategy selects how eviction plan batches execute on every
	// node — the background reclaimers' rounds and the write paths'
	// over-budget drains — mirroring ReshardStrategy/ReplicaStrategy:
	// every node reads it at use time (a per-node override installed by
	// provision), so assigning it any time takes effect pool-wide.
	ReclaimStrategy exec.Strategy

	// reclaimLow/reclaimHigh remember EnableBackgroundReclaim's
	// watermarks so nodes provisioned later (AddNode) get a reclaimer of
	// their own.
	reclaimAll              bool
	reclaimLow, reclaimHigh int

	// Multi-tenancy (tenancy.go). Per-node quotas are provisioned like
	// CacheBytes: SetTenantQuota splits the pool-wide quota evenly across
	// the current members, and provision hands the same per-node slice to
	// nodes added later — AddNode grows the aggregate quota with the pool,
	// exactly as it grows aggregate cache bytes. Inert until
	// SetTenantQuota is called.
	tenantMode        bool
	tenantPerNode     [MaxTenants]int64
	overloadThreshold int64
	overloadWindowNs  int64

	// Promotions and Demotions count replicated-set membership changes;
	// SpreadReads counts reads served by a replica instead of the
	// primary — the work the replication layer moved off hot nodes.
	Promotions  int64
	Demotions   int64
	SpreadReads int64
}

// routeSnapshot is one immutable routing view. Everything a routing
// decision consults lives here, so loading the snapshot once gives an
// operation a consistent picture regardless of concurrent membership
// changes; members caches the active node IDs in ascending order so
// fan-out paths iterate a pre-sorted slice instead of re-sorting their
// group keys per call.
type routeSnapshot struct {
	hashRing *ring.Ring // current (target) routing ring
	oldRing  *ring.Ring // pre-reshard ring; non-nil while migrating
	draining int        // node being drained by RemoveNode (-1 otherwise)
	epoch    uint64     // bumped on every ring change (clients re-route)
	members  []int      // active node IDs, ascending (provision order)
}

// owner returns the owner of key under this snapshot's routing ring,
// plus the old owner to forward to (-1 when no forwarding window
// applies).
func (s *routeSnapshot) owner(key []byte) (cur, old int) {
	pt := ring.Point(hashtable.KeyHash(key))
	cur, old = s.hashRing.Owner(pt), -1
	if prev := s.oldRing; prev != nil {
		if o := prev.Owner(pt); o != cur {
			old = o
		}
	}
	return cur, old
}

// fanoutOrder returns the group map's keys in ascending order. In the
// steady state every group key is a pool member, so the snapshot's
// pre-sorted members slice serves as the iteration order (callers skip
// IDs with no group) and nothing is sorted or allocated per call; a
// stray owner — a ring member with no backing node, possible in
// degraded deployments — falls back to sorting the keys.
func (s *routeSnapshot) fanoutOrder(groups map[int][]int) []int {
	found := 0
	for _, id := range s.members {
		if _, ok := groups[id]; ok {
			found++
		}
	}
	if found == len(groups) {
		return s.members
	}
	return sortedNodeIDs(groups)
}

// snap loads the current routing snapshot.
func (mc *MultiCluster) snap() *routeSnapshot { return mc.route.Load() }

// publishRoute installs a new routing snapshot — THE atomic switch every
// membership change funnels through. The caller finishes all membership
// bookkeeping (mc.nodes, mc.order) first, without yielding, so the
// published members list matches the rings; the epoch advances with
// every publish, which is what in-flight operations' staleness checks
// key on.
func (mc *MultiCluster) publishRoute(hashRing, oldRing *ring.Ring, draining int) {
	var epoch uint64
	if prev := mc.route.Load(); prev != nil {
		epoch = prev.epoch + 1
	}
	mc.route.Store(&routeSnapshot{
		hashRing: hashRing,
		oldRing:  oldRing,
		draining: draining,
		epoch:    epoch,
		members:  append([]int(nil), mc.order...),
	})
}

// NewMultiCluster creates n memory nodes, each provisioned with opts
// scaled down by n (objects and bytes split evenly). Nodes added later
// with AddNode get the same per-node provisioning.
func NewMultiCluster(env *sim.Env, n int, opts Options) *MultiCluster {
	if n < 1 {
		//dittolint:allow typederr (config validation at pool construction)
		panic("core: need at least one memory node")
	}
	per := opts
	per.ExpectedObjects = (opts.ExpectedObjects + n - 1) / n
	per.CacheBytes = (opts.CacheBytes + n - 1) / n
	if per.MaxCacheBytes > 0 {
		per.MaxCacheBytes = (opts.MaxCacheBytes + n - 1) / n
	}
	mc := &MultiCluster{
		Env:             env,
		perNode:         per,
		nodes:           make(map[int]*Cluster),
		done:            sim.NewCond(env),
		ReshardStrategy: exec.Doorbell,
		ReplicaStrategy: exec.Doorbell,
		ReclaimStrategy: exec.Doorbell,
	}
	h := ring.New(0)
	for i := 0; i < n; i++ {
		id := mc.provision()
		h = h.With(id)
	}
	mc.publishRoute(h, nil, -1)
	return mc
}

// provision creates one MN and registers it, without touching the routing
// ring — the caller decides whether the join is immediate (construction)
// or via a reshard (AddNode). Nodes inherit the pool's reclaim strategy,
// its background reclaimer (when enabled) and the hot-key eviction hook,
// so a node added mid-run behaves like its peers.
func (mc *MultiCluster) provision() int {
	id := mc.nextID
	mc.nextID++
	cl := NewCluster(mc.Env, mc.perNode)
	cl.reclaimStratFn = func() exec.Strategy { return mc.ReclaimStrategy }
	if mc.reclaimAll {
		cl.EnableBackgroundReclaim(mc.reclaimLow, mc.reclaimHigh)
	}
	if mc.hot != nil {
		mc.installEvictHook(id, cl)
	}
	if mc.tenantMode {
		for t, q := range mc.tenantPerNode {
			if q > 0 {
				cl.SetTenantQuota(TenantID(t), q)
			}
		}
	}
	if mc.overloadThreshold > 0 {
		cl.EnableOverloadControl(mc.overloadThreshold, mc.overloadWindowNs)
	}
	mc.nodes[id] = cl
	mc.order = append(mc.order, id)
	return id
}

// EnableBackgroundReclaim starts a proactive reclaimer on every memory
// node (see Cluster.EnableBackgroundReclaim), applying the pool's
// ReclaimStrategy to each; nodes added later by AddNode get one too.
// low/high <= 0 pick the per-node defaults.
func (mc *MultiCluster) EnableBackgroundReclaim(low, high int) {
	mc.reclaimAll = true
	mc.reclaimLow, mc.reclaimHigh = low, high
	for _, id := range mc.order {
		mc.nodes[id].EnableBackgroundReclaim(low, high)
	}
}

// NumNodes returns the memory-node count (a draining node counts until
// its removal completes).
func (mc *MultiCluster) NumNodes() int { return len(mc.order) }

// Node returns the i-th memory node's cluster view (for resource knobs and
// stats). Indices shift when RemoveNode completes; NodeID gives the stable
// handle.
func (mc *MultiCluster) Node(i int) *Cluster { return mc.nodes[mc.order[i]] }

// NodeID returns the i-th node's stable ID (as returned by AddNode and
// accepted by RemoveNode).
func (mc *MultiCluster) NodeID(i int) int { return mc.order[i] }

// Resharding reports whether a membership change is still migrating keys.
func (mc *MultiCluster) Resharding() bool { return mc.snap().oldRing != nil }

// OwnerOf returns the node ID that currently routes key — the owner
// under the live ring (the NEW ring during a reshard). Chaos harnesses
// use it to partition keys into "owned by the crashed node" vs
// survivors when asserting which keys may legally disappear.
func (mc *MultiCluster) OwnerOf(key []byte) int {
	return mc.snap().hashRing.Owner(ring.Point(hashtable.KeyHash(key)))
}

// WaitReshard blocks p until no reshard is in flight.
func (mc *MultiCluster) WaitReshard(p *sim.Proc) {
	for mc.snap().oldRing != nil {
		mc.done.Wait(p)
	}
}

// AddNode provisions a new memory node, joins it to the ring, and starts
// migrating the keys it now owns (~1/n of the key space) in a background
// sim process. It returns the new node's ID immediately; use WaitReshard
// to observe completion. Only one membership change may be in flight.
func (mc *MultiCluster) AddNode() int {
	if mc.snap().oldRing != nil {
		//dittolint:allow typederr (API-misuse guard: membership changes are declared one at a time)
		panic("core: AddNode during an in-flight reshard (WaitReshard first)")
	}
	sources := append([]int(nil), mc.order...) // keys move only from old MNs
	id := mc.provision()
	mc.startReshard(mc.snap().hashRing.With(id), sources, -1)
	return id
}

// RemoveNode drains node id: its keys migrate to the surviving owners in a
// background sim process, Gets keep being served from the draining node
// until its copies move, and the node leaves the pool when the drain
// completes. Only one membership change may be in flight.
func (mc *MultiCluster) RemoveNode(id int) {
	if mc.snap().oldRing != nil {
		//dittolint:allow typederr (API-misuse guard: membership changes are declared one at a time)
		panic("core: RemoveNode during an in-flight reshard (WaitReshard first)")
	}
	if _, ok := mc.nodes[id]; !ok {
		//dittolint:allow typederr (API-misuse guard: the harness names nodes it created)
		panic("core: RemoveNode of unknown node")
	}
	if len(mc.order) == 1 {
		//dittolint:allow typederr (API-misuse guard: an empty pool has no semantics)
		panic("core: cannot remove the last memory node")
	}
	mc.startReshard(mc.snap().hashRing.Without(id), []int{id}, id)
}

// CrashNode fail-stops node id: every copy it hosted is lost, in-flight
// verbs against it fail with rdma.NodeUnreachableError after a timeout,
// and the pool reconfigures immediately — the node leaves both routing
// rings and the membership in one atomic step (no verbs between them),
// so clients observe either the old pool or the new one, never a
// half-removed node. Unlike RemoveNode there is no drain: the crashed
// node's keys become misses and re-enter the cache through the normal
// miss path on their new owners.
//
// The consistent-hash ring's Without reassigns ONLY the crashed node's
// ranges, so every surviving key keeps its owner — the basis of the
// chaos suite's "no key lost outside the crashed node's ownership"
// invariant. Crashing is legal mid-reshard (the resharder catches the
// unreachable error and drops the node from its remaining work) but the
// last node cannot crash — an empty pool has no failure semantics worth
// modeling.
func (mc *MultiCluster) CrashNode(id int) {
	cl, ok := mc.nodes[id]
	if !ok {
		//dittolint:allow typederr (API-misuse guard: the harness names nodes it created)
		panic("core: CrashNode of unknown node")
	}
	if len(mc.order) == 1 {
		//dittolint:allow typederr (API-misuse guard: an empty pool has no failure semantics)
		panic("core: cannot crash the last memory node")
	}
	cl.Crash()
	s := mc.snap()
	h := s.hashRing.Without(id)
	old := s.oldRing
	if old != nil {
		old = old.Without(id)
	}
	draining := s.draining
	if draining == id {
		draining = -1
	}
	delete(mc.nodes, id)
	for i, nid := range mc.order {
		if nid == id {
			mc.order = append(mc.order[:i], mc.order[i+1:]...)
			break
		}
	}
	// One publish switches both rings, the drain target and the
	// membership together (no verbs since Crash), so clients observe the
	// old pool or the new one, never a half-removed node.
	mc.publishRoute(h, old, draining)
	mc.NodeCrashes++
	if mc.hot != nil {
		// Entry locks held by procs that died with the node (or by the
		// killed reclaimer) must be stealable; wake the parked waiters.
		mc.hot.CrashWake()
	}
}

// maxReshardPasses bounds the straggler sweeps of one reshard. A pass that
// migrates nothing ends the reshard; extra passes catch keys written to an
// old owner by clients whose routing decision raced the ring switch.
const maxReshardPasses = 8

// reshardState carries one membership change's progress across resharder
// incarnations. Fault injection may kill the resharder mid-migration;
// the OnCrash-respawned replacement shares this state so the inserts
// list survives (the verification sweep must cover copies published
// before the crash) while the scan passes simply restart — migration is
// insert-if-absent, so re-scanning is idempotent.
type reshardState struct {
	sources   []int
	dropID    int
	inserts   []migratedCopy
	start     int64
	restarts  int64
	finalized bool // ring/membership switch done; only cleanup remains
}

// migratedCopy remembers one insert the resharder published, so the
// end-of-reshard verification sweep can find and resolve duplicates.
type migratedCopy struct {
	// dstID names the destination NODE, not a client handle: the sweep
	// may run in a respawned resharder incarnation whose predecessor
	// (and its clients, bound to the dead process) were killed — it must
	// resolve a live client of its own at sweep time.
	dstID  int
	kh     uint64
	fp     byte
	key    []byte
	addr   uint64
	atom   hashtable.AtomicField
	tenant TenantID // owning tenant, for usage credit if the copy is dropped
}

// startReshard switches the routing ring to newRing and spawns the
// resharder process that migrates every key whose owner changed, scanning
// the given source nodes. dropID >= 0 names a node to retire when the
// migration completes (RemoveNode).
func (mc *MultiCluster) startReshard(newRing *ring.Ring, sources []int, dropID int) {
	mc.publishRoute(newRing, mc.snap().hashRing, dropID)
	mc.spawnResharder(&reshardState{
		sources: sources,
		dropID:  dropID,
		start:   mc.Env.Now(),
	})
}

// spawnResharder runs one resharder incarnation over st. If the process
// is killed by fault injection, its OnCrash hook respawns a replacement
// sharing st, so the membership change always completes; every verb
// sequence against a node that fail-stops mid-reshard is caught and the
// node is simply dropped from the remaining work (CrashNode removes it
// from the pool, so the next pass no longer sees it).
func (mc *MultiCluster) spawnResharder(st *reshardState) {
	mc.Env.Go("resharder", func(p *sim.Proc) {
		p.OnCrash(func() {
			st.restarts++
			mc.ReshardRestarts++
			mc.spawnResharder(st)
			if mc.hot != nil {
				// The dead incarnation may hold hot-entry locks; wake the
				// parked waiters so they observe the owner died and steal.
				mc.hot.CrashWake()
			}
		})
		m := mc.NewClient(p)
		if !st.finalized {
			mc.runReshard(p, m, st)
		}
		// The resharder is transient: return its free lists (the space of
		// every source copy it deleted) to the surviving controllers, or
		// that heap space would be stranded when this client goes away.
		for _, id := range sortedNodeIDs(m.clients) {
			cl, alive := mc.nodes[id]
			if !alive || cl.dead {
				continue
			}
			c := m.clients[id]
			_ = rdma.CatchUnreachable(func() { c.surrenderFreeBlocks() })
		}
		m.Close()
		mc.done.Broadcast()
	})
}

// runReshard performs the migration passes and the ring/membership
// switch for one membership change. Separated from spawnResharder so a
// respawned incarnation that finds st.finalized already set skips
// straight to cleanup (a kill can land between the switch and the
// free-list surrender).
func (mc *MultiCluster) runReshard(p *sim.Proc, m *MultiClient, st *reshardState) {
	// Dissolve the hot-key replica sets BEFORE scanning anything: the
	// migrate plan's insert-if-absent treats any existing destination
	// copy as "newer by construction", which replica copies violate —
	// a scanned replica copy migrated into a key's new owner would
	// make the real primary copy look like a duplicate (its removal
	// would then be a lost write), and on RemoveNode a replica copy
	// promoted to primary-by-migration would afterwards be deleted by
	// its own entry's demotion. Demoting everything first (promotion
	// is refused while the window is open, and an in-flight promotion
	// self-demotes on the epoch change, so the directory stays empty)
	// means the scan only ever sees single copies.
	if mc.hot != nil {
		for try := 0; try < 4; try++ {
			if rdma.CatchUnreachable(func() { m.demoteAll() }) == nil {
				break
			}
			// A node fail-stopped mid-demote; its copies died with it, and
			// demotion is idempotent, so retry over the survivors.
		}
	}
	for pass := 0; pass < maxReshardPasses; pass++ {
		pending := int64(0)
		for _, id := range st.sources {
			cl, ok := mc.nodes[id]
			if !ok || cl.dead {
				continue // crashed out of the pool; nothing left to scan
			}
			src := id
			if rdma.CatchUnreachable(func() {
				pending += mc.migrateNode(m, src, &st.inserts)
			}) != nil {
				// A node (the source, or a migration destination) fail-
				// stopped mid-scan. Count the interrupted scan as pending
				// work: by the next pass CrashNode has removed the node, so
				// either the source is skipped above or the keys re-route
				// to a live owner.
				pending++
			}
		}
		if pending == 0 && pass >= 1 {
			break
		}
	}
	// A draining node must be completely empty before it can leave the
	// pool — a key left behind would become a permanent miss. This
	// converges unconditionally: no Set routes to the drained node (it
	// is absent from the current ring), so its population strictly
	// shrinks. These extra passes double as the insert-free separation
	// the verification sweep below relies on.
	if st.dropID >= 0 {
		for {
			cl, ok := mc.nodes[st.dropID]
			if !ok || cl.dead {
				break // the draining node crashed; its copies died with it
			}
			var moved int64
			if rdma.CatchUnreachable(func() {
				moved = mc.migrateNode(m, st.dropID, &st.inserts)
			}) != nil {
				continue // re-check liveness and retry over survivors
			}
			if moved == 0 {
				break
			}
		}
	}
	// Final duplicate verification. The migrate plan's immediate
	// post-publish sweep has a
	// TOCTOU hole: a client Set that read the buckets before our CAS
	// landed can publish the same key into a DIFFERENT slot just after
	// the sweep, leaving two live copies with ours (stale) possibly
	// first in Get's scan order. By now at least one full scan pass
	// separates us from every insert, and a Set attempt's read-to-CAS
	// span is a handful of verbs — any Set still in flight re-read the
	// buckets after our copy was visible and updated it in place. So a
	// duplicate found here is a completed racing write: drop our copy.
	// A destination that crashed since the insert lost both copies with
	// the node — nothing to resolve there.
	for _, ins := range st.inserts {
		dst := m.clientFor(ins.dstID)
		if dst == nil || dst.cl.dead {
			continue // the destination crashed: both copies died with it
		}
		ins := ins
		_ = rdma.CatchUnreachable(func() {
			if dst.hasOtherCopy(ins.kh, ins.fp, ins.key, ins.addr) {
				dst.dropMigrated(ins.addr, ins.atom, ins.tenant)
			}
		})
	}
	// Membership bookkeeping first, then ONE snapshot publish (no verbs
	// between these steps), so clients observe the window closing and
	// the membership change atomically.
	mc.Reshards++
	mc.ReshardNs += p.Now() - st.start
	if st.dropID >= 0 {
		if _, ok := mc.nodes[st.dropID]; ok {
			delete(mc.nodes, st.dropID)
			for i, id := range mc.order {
				if id == st.dropID {
					mc.order = append(mc.order[:i], mc.order[i+1:]...)
					break
				}
			}
		}
	}
	mc.publishRoute(mc.snap().hashRing, nil, -1)
	st.finalized = true
}

// reshardScanBuckets is how many table buckets one scan doorbell covers
// under the Doorbell strategy, and reshardBatch how many migrations run
// as one lock-step plan batch (each plan spans the source and one
// destination endpoint).
const (
	reshardScanBuckets = 16
	reshardBatch       = 32
)

// migrateNode walks one source MN's table shard and moves every live
// object whose ring owner changed: READ the object, insert-if-absent on
// the new owner (carrying its hotness metadata), then delete the source
// copy behind it with a CAS that verifies the copy did not change while
// in flight — the migratePlan of plan.go. If that CAS fails — the key was
// concurrently deleted, evicted, or replaced — the fresh insert is undone
// with a precise CAS so a dead value can never resurface. Successful
// inserts are appended to inserts for the end-of-reshard duplicate
// verification. Returns the amount of pending work observed: keys
// actually moved plus source slots that changed mid-copy (a failed source
// CAS may mean a straggler write replaced the copy, so another pass must
// re-visit it).
//
// Under exec.Doorbell the walk is pipelined: one doorbell reads
// reshardScanBuckets buckets, one reads every live object behind them,
// and the owner-changed keys migrate as lock-step batches of migrate
// plans — bucket READs, object WRITEs, publishing CASes and source delete
// CASes each amortize their RTT across the batch. Any plan that hits a
// race or a full bucket is demoted to the serial per-slot path, so the
// two strategies produce identical results.
func (mc *MultiCluster) migrateNode(m *MultiClient, srcID int, inserts *[]migratedCopy) int64 {
	src := m.clientFor(srcID)
	cl := mc.nodes[srcID]
	if src == nil || cl == nil {
		return 0
	}
	doorbell := mc.ReshardStrategy == exec.Doorbell
	step := 1
	if doorbell {
		step = reshardScanBuckets
	}
	pending := int64(0)
	for b0 := 0; b0 < cl.Layout.Buckets; b0 += step {
		n := step
		if rem := cl.Layout.Buckets - b0; n > rem {
			n = rem
		}
		var chunk [][]hashtable.Slot
		if doorbell {
			bs := make([]int, n)
			for i := range bs {
				bs[i] = b0 + i
			}
			chunk = src.ht.ReadBuckets(bs)
		} else {
			chunk = [][]hashtable.Slot{src.ht.ReadBucket(b0)}
		}
		var live []hashtable.Slot
		for _, slots := range chunk {
			for _, s := range slots {
				if s.Atomic.IsEmpty() || s.Atomic.IsHistory() {
					continue
				}
				live = append(live, s)
			}
		}
		var objs [][]byte
		if doorbell {
			objs = src.readObjects(live)
		} else {
			objs = make([][]byte, len(live))
			for i, s := range live {
				objs[i] = src.readObject(s)
			}
		}
		// Collect the slots whose ring owner changed. Within one batch a
		// key may only appear once: two same-key plans in flight together
		// could each observe the other's fresh insert in its duplicate
		// sweep and both yield, losing the key. Extra copies (possible
		// transiently during a window) count as pending and are re-visited
		// by the next pass, after the first copy settled.
		var seen map[string]bool
		if doorbell {
			seen = make(map[string]bool)
		}
		type migItem struct {
			s     hashtable.Slot
			dec   decodedObject
			kh    uint64
			owner int
		}
		var items []migItem
		for i, s := range live {
			dec := decodeObject(objs[i])
			if !dec.ok {
				continue // reused memory behind a stale slot snapshot
			}
			kh := hashtable.KeyHash(dec.key)
			owner := mc.snap().hashRing.Owner(ring.Point(kh))
			if owner == srcID {
				continue
			}
			if doorbell {
				if seen[string(dec.key)] {
					pending++
					continue
				}
				seen[string(dec.key)] = true
			}
			items = append(items, migItem{s: s, dec: dec, kh: kh, owner: owner})
		}
		if !doorbell {
			for _, it := range items {
				pending += mc.migrateSlot(src, m.clientFor(it.owner), it.owner, it.s, it.dec, it.kh, inserts)
			}
			continue
		}
		for lo := 0; lo < len(items); lo += reshardBatch {
			hi := lo + reshardBatch
			if hi > len(items) {
				hi = len(items)
			}
			batch := items[lo:hi]
			plans := make([]*migratePlan, len(batch))
			run := make([]exec.Plan, len(batch))
			for j, it := range batch {
				plans[j] = newMigratePlan(src, m.clientFor(it.owner), it.s, it.dec)
				run[j] = plans[j]
			}
			exec.RunDoorbell(run)
			for j, pl := range plans {
				it := batch[j]
				switch pl.outcome {
				case migMoved:
					*inserts = append(*inserts, migratedCopy{
						dstID: it.owner, kh: it.kh, fp: hashtable.Fingerprint(it.kh),
						key: pl.ins.key, addr: pl.ins.slotAddr, atom: pl.ins.want,
						tenant: pl.ins.tenant,
					})
					mc.MigratedKeys++
					pending++
				case migSkipped:
					// Destination already newer; source copy GC'd in-plan.
				default:
					// Complication (full bucket, lost CAS, source changed):
					// demote this slot to the serial retry path, which
					// re-reads and redoes the copy from a fresh snapshot.
					pending += mc.migrateSlot(src, m.clientFor(it.owner), it.owner, it.s, it.dec, it.kh, inserts)
				}
			}
		}
	}
	return pending
}

// migrateSlotRetries bounds the per-slot redo loop when the source copy
// keeps changing under the copy (straggler writes are finite — only
// operations in flight at the ring switch route to an old owner).
const migrateSlotRetries = 8

// migrateSlot moves one live object from src to dst with serially-run
// migrate plans, retrying in place when the source copy is replaced
// mid-copy so a straggler write cannot be stranded on the old owner.
// Returns 1 when a copy moved (or retries were exhausted under sustained
// churn — pending work the pass loop revisits), 0 when the key turned out
// to be gone or already superseded on the destination.
func (mc *MultiCluster) migrateSlot(src, dst *Client, dstID int, s hashtable.Slot, dec decodedObject,
	kh uint64, inserts *[]migratedCopy) int64 {

	for try := 0; try < migrateSlotRetries; try++ {
		pl := newMigratePlan(src, dst, s, dec)
		exec.RunSerial(pl)
		switch pl.outcome {
		case migMoved:
			// Record for the verification sweep only now that the insert
			// SURVIVED — an entry for an undone insert would let the
			// sweep's precise CAS fire on an ABA reuse of the slot (same
			// fingerprint, same size class, recycled block address) and
			// delete an unrelated live object.
			*inserts = append(*inserts, migratedCopy{
				dstID: dstID, kh: kh, fp: hashtable.Fingerprint(kh),
				key: pl.ins.key, addr: pl.ins.slotAddr, atom: pl.ins.want,
				tenant: pl.ins.tenant,
			})
			mc.MigratedKeys++
			return 1
		case migSkipped:
			// The destination already held a newer client-written copy:
			// the source removal was garbage collection, not a migration,
			// and must not inflate the stat.
			return 0
		case migFallback:
			// Destination complication. For full buckets, make room the
			// way a blocked insert would; for a lost publish CAS, simply
			// re-attempt with a fresh snapshot (presence is re-checked).
			if pl.ins.outcome == setNoFree {
				if !dst.bucketEvict(pl.ins.scanned) {
					dst.reclaimOldestHistory(pl.ins.scanned)
				}
			}
		case migRetry:
			// The source slot changed while we copied it (the plan already
			// took back any stale insert). Re-read the slot: if it still
			// holds the same key (a straggler write replaced the value),
			// redo the copy with the fresh value; otherwise the key was
			// deleted, evicted or re-slotted and there is nothing to move.
			s2 := src.ht.ReadSlot(s.Addr)
			if s2.Atomic.IsEmpty() || s2.Atomic.IsHistory() || s2.Atomic.FP() != s.Atomic.FP() {
				return 0
			}
			obj := src.readObject(s2)
			dec2 := decodeObject(obj)
			if !dec2.ok || !bytes.Equal(dec2.key, dec.key) {
				return 0
			}
			s, dec = s2, dec2
		}
	}
	// Retries exhausted under sustained churn: report pending work so the
	// pass loop revisits this slot.
	return 1
}

// stayingNodes returns the active node IDs excluding one being drained —
// byte-budget changes granted to a node about to leave the pool would
// evaporate with it.
func (mc *MultiCluster) stayingNodes() []int {
	ids := make([]int, 0, len(mc.order))
	draining := mc.snap().draining
	for _, id := range mc.order {
		if id != draining {
			ids = append(ids, id)
		}
	}
	return ids
}

// GrowCache grows every surviving MN's heap by an equal share — memory
// elasticity across the pool.
func (mc *MultiCluster) GrowCache(bytes int) {
	ids := mc.stayingNodes()
	per := (bytes + len(ids) - 1) / len(ids)
	for _, id := range ids {
		mc.nodes[id].GrowCache(per)
	}
}

// ShrinkCache lowers every surviving MN's heap budget by an equal share —
// the pool-wide counterpart of GrowCache (see Cluster.ShrinkCache).
func (mc *MultiCluster) ShrinkCache(bytes int) {
	ids := mc.stayingNodes()
	per := (bytes + len(ids) - 1) / len(ids)
	for _, id := range ids {
		mc.nodes[id].ShrinkCache(per)
	}
}

// MultiClient routes operations to the MN owning each key. During a
// reshard it serves the forwarding window: Gets that miss on a key's new
// owner retry on its old owner, Sets go to the new owner only, Deletes
// clear the old copy before the new one. With hot-key replication
// enabled (replica.go) it additionally spreads reads of promoted keys
// across the primary and its replicas, and writes through to every copy.
type MultiClient struct {
	mc      *MultiCluster
	p       *sim.Proc
	clients map[int]*Client
	tenant  TenantID    // bound tenant, propagated to every per-node client
	promo   []promoCand // hot-key promotion candidates queued by the hit hook
}

// promoCand is one queued hot-key promotion candidate: the key plus the
// owning tenant observed at the qualifying hit, so the promotion can
// stamp the hotset entry and the quota gate can veto replication for
// over-quota tenants.
type promoCand struct {
	key    []byte
	tenant TenantID
}

// NewClient connects process p to every current memory node; connections
// to nodes added later are opened lazily on first use. Enable hot-key
// replication (EnableHotKeyReplication) before creating clients: the
// promotion signal is installed at connection time.
func (mc *MultiCluster) NewClient(p *sim.Proc) *MultiClient {
	m := &MultiClient{mc: mc, p: p, clients: make(map[int]*Client)}
	for _, id := range mc.order {
		m.clients[id] = m.connect(mc.nodes[id])
	}
	return m
}

// connect opens one per-MN client, wiring the hot-key promotion hook
// when replication is enabled.
func (m *MultiClient) connect(cl *Cluster) *Client {
	c := cl.NewClient(m.p)
	if m.mc.hot != nil {
		c.onHit = m.noteHotCandidate
	}
	if m.tenant != DefaultTenant {
		c.BindTenant(m.tenant)
	}
	return c
}

// clientFor returns the per-MN client for node id, connecting lazily. It
// returns nil when the node has left the pool.
func (m *MultiClient) clientFor(id int) *Client {
	if c, ok := m.clients[id]; ok {
		return c
	}
	cl, ok := m.mc.nodes[id]
	if !ok {
		return nil
	}
	c := m.connect(cl)
	m.clients[id] = c
	return c
}

// routeRetries bounds re-routing when a reshard switches the ring in the
// middle of an operation.
const routeRetries = 4

// owner returns the current owner of key under the routing ring, plus the
// old owner to forward to (-1 when no forwarding window applies).
func (m *MultiClient) owner(key []byte) (cur, old int) {
	return m.mc.snap().owner(key)
}

// Get fetches key from its owning MN. During a reshard a miss on the new
// owner is retried on the old owner, so a key in flight between MNs is
// always observable from one of the two. When hot-key replication is on,
// a promoted key's read may instead be served by one of its replicas
// (getSpread in replica.go); a replica miss falls back to the routed
// path below, so spreading never turns a present key into a miss.
func (m *MultiClient) Get(key []byte) ([]byte, bool) {
	if m.mc.hot != nil {
		m.drainPromotions()
		if v, ok, served := m.getSpread(key); served {
			return v, ok
		}
	}
	return m.getRouted(key)
}

// getFrom runs one Get (counting, or stat-silent probe) on c, degrading
// a node fail-stop mid-verb to a miss: the copy the verbs were chasing
// died with the node, which is what a miss means. The caller's epoch
// re-check then re-routes — CrashNode bumps the epoch — so the retried
// probe lands on the key's surviving owner.
func getFrom(c *Client, key []byte, probe bool) (v []byte, ok bool) {
	if rdma.CatchUnreachable(func() {
		if probe {
			v, ok = c.getProbe(key)
		} else {
			v, ok = c.Get(key)
		}
	}) != nil {
		return nil, false
	}
	return v, ok
}

// getRouted is the unreplicated Get path: route to the ring owner, serve
// the forwarding window during a reshard.
func (m *MultiClient) getRouted(key []byte) ([]byte, bool) {
	for attempt := 0; ; attempt++ {
		snap := m.mc.snap()
		cur, old := snap.owner(key)
		curClient := m.clientFor(cur)
		if old < 0 {
			if curClient != nil {
				if v, ok := getFrom(curClient, key, false); ok {
					return v, true
				}
			}
		} else {
			// Forwarding window: probe with stat-silent Gets so a key
			// still sitting on its old owner does not record a phantom
			// miss on the new owner for every forwarded hit. The key may
			// migrate old→new between the two probes; after a migration
			// it stays put, so one re-probe of the new owner settles that
			// race without amplifying genuine misses.
			if curClient != nil {
				if v, ok := getFrom(curClient, key, true); ok {
					return v, true
				}
			}
			if c := m.clientFor(old); c != nil {
				if v, ok := getFrom(c, key, true); ok {
					return v, true
				}
			}
			if curClient != nil {
				if v, ok := getFrom(curClient, key, true); ok {
					return v, true
				}
			}
		}
		// A ring switch mid-operation means we probed stale owners:
		// re-route and retry (bounded) before declaring a miss.
		if m.mc.snap().epoch == snap.epoch || attempt >= routeRetries {
			if old >= 0 || curClient == nil {
				// Either the probes were silent (forwarding window), or
				// the owner's client vanished mid-route and nothing ran
				// at all: count the one logical miss explicitly, so
				// Stats().HitRate() cannot overstate the hit rate during
				// a shrink.
				m.countMiss(cur, old)
			}
			return nil, false
		}
	}
}

// countMiss records one logical Get miss on a surviving client: the
// key's current owner when connected, else its old owner, else any node
// still in the pool. A Get that returns false must always increment
// Gets and Misses on SOME client — dropping it (as happened when the
// forwarding window closed around a just-removed node) silently inflated
// the aggregate hit rate. The miss also counts toward that node's
// ServedReads, keeping the per-node load ledger consistent with the
// non-windowed miss path.
func (m *MultiClient) countMiss(cur, old int) {
	c := m.clientFor(cur)
	if c == nil && old >= 0 {
		c = m.clientFor(old)
	}
	if c == nil {
		for _, id := range m.mc.order {
			if c = m.clientFor(id); c != nil {
				break
			}
		}
	}
	if c != nil {
		c.Stats.Gets++
		c.Stats.Misses++
		c.served.Inc()
	}
}

// MGet fetches a batch of keys: each key routes to its ring owner, and
// every owner serves its whole group with one doorbell-batched MGet.
// During a reshard the forwarding window is preserved with batched
// stat-silent probes, in Get's exact order — new owner, old owner, new
// owner again to settle the migration race — and every key that stays
// missing counts one logical miss on a surviving client.
func (m *MultiClient) MGet(keys [][]byte) ([][]byte, []bool) {
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	var pending []int
	if m.mc.hot != nil {
		// Replicated keys spread to their rotation-chosen replicas first
		// (batched silent probes, replica.go); whatever misses — plus
		// every unreplicated key — continues through the routed path.
		m.drainPromotions()
		pending = m.mgetSpread(keys, vals, oks)
	} else {
		pending = make([]int, len(keys))
		for i := range keys {
			pending[i] = i
		}
	}
	for attempt := 0; ; attempt++ {
		snap := m.mc.snap()
		stable := make(map[int][]int) // cur owner → key indices, no window
		window := make(map[int][]int) // cur owner → key indices in a window
		oldOf := make(map[int]int)    // key index → old owner
		for _, i := range pending {
			cur, old := snap.owner(keys[i])
			if old < 0 {
				stable[cur] = append(stable[cur], i)
			} else {
				window[cur] = append(window[cur], i)
				oldOf[i] = old
			}
		}

		// Stable keys: one counting batch per owner; a nil client (owner
		// vanished mid-route) leaves the group's misses uncounted for the
		// final accounting below, like the probes.
		var counted, silent []int
		for _, owner := range snap.fanoutOrder(stable) {
			idxs, ok := stable[owner]
			if !ok {
				continue
			}
			missed, ran := m.mgetGroup(owner, idxs, keys, vals, oks, false)
			if ran {
				counted = append(counted, missed...)
			} else {
				silent = append(silent, missed...)
			}
		}

		// Forwarding window: silent probe batches on the new owners, the
		// old owners, then the new owners once more.
		var winMissed []int
		for _, owner := range snap.fanoutOrder(window) {
			idxs, ok := window[owner]
			if !ok {
				continue
			}
			missed, _ := m.mgetGroup(owner, idxs, keys, vals, oks, true)
			winMissed = append(winMissed, missed...)
		}
		for pass := 0; pass < 2 && len(winMissed) > 0; pass++ {
			regrouped := make(map[int][]int)
			for _, i := range winMissed {
				owner := oldOf[i]
				if pass == 1 { // final settle pass re-probes the new owner
					owner, _ = m.owner(keys[i])
				}
				regrouped[owner] = append(regrouped[owner], i)
			}
			winMissed = winMissed[:0]
			for _, owner := range snap.fanoutOrder(regrouped) {
				idxs, ok := regrouped[owner]
				if !ok {
					continue
				}
				missed, _ := m.mgetGroup(owner, idxs, keys, vals, oks, true)
				winMissed = append(winMissed, missed...)
			}
		}
		silent = append(silent, winMissed...)

		if m.mc.snap().epoch == snap.epoch || attempt >= routeRetries {
			// The silent misses (window probes, vanished owners) were
			// never counted: record one logical miss each on a surviving
			// client, as Get does.
			for _, i := range silent {
				cur, old := m.owner(keys[i])
				m.countMiss(cur, old)
			}
			return vals, oks
		}
		// A ring switch mid-batch: re-route every key still missing.
		pending = append(counted, silent...)
		sort.Ints(pending)
	}
}

// mgetGroup runs one batched (probe or counting) MGet for the given key
// indices on one node, filling vals/oks for hits. It returns the indices
// that missed and whether a client actually ran the batch (false when
// the node has left the pool, in which case nothing was counted).
func (m *MultiClient) mgetGroup(owner int, idxs []int, keys, vals [][]byte, oks []bool, probe bool) (missed []int, ran bool) {
	c := m.clientFor(owner)
	if c == nil {
		return idxs, false
	}
	sub := make([][]byte, len(idxs))
	for j, i := range idxs {
		sub[j] = keys[i]
	}
	var vs [][]byte
	var os []bool
	if rdma.CatchUnreachable(func() { vs, os = c.mget(sub, probe) }) != nil {
		// The node fail-stopped mid-batch: every copy it held died with
		// it. Report the whole group missed and uncounted; the caller's
		// epoch re-check re-routes to the surviving owners.
		return idxs, false
	}
	for j, i := range idxs {
		if os[j] {
			vals[i], oks[i] = vs[j], true
		} else {
			missed = append(missed, i)
		}
	}
	return missed, true
}

// MSet stores a batch of pairs: one doorbell-batched MSet per owning MN.
// During a reshard each windowed key's pre-reshard copy is deleted from
// its old owner after the write lands, exactly as Set does per key.
// Replicated keys are peeled off first and written through Set's
// replicated path one by one (hot keys are read-heavy by definition, so
// a batch rarely carries more than a few); the batch semantics of the
// rest are unchanged.
func (m *MultiClient) MSet(pairs []KV) {
	if len(pairs) == 0 {
		return
	}
	if m.mc.hot != nil {
		m.drainPromotions()
		// One atomic pass (no verbs): peel off currently-replicated pairs
		// and register the rest, so a promotion published after this
		// instant either sees the registration or is found by m.Set.
		rest := make([]KV, 0, len(pairs))
		var hot []KV
		for _, kv := range pairs {
			if m.mc.hot.Lookup(kv.Key) != nil {
				hot = append(hot, kv)
			} else {
				m.mc.hot.BeginWrite(kv.Key)
				rest = append(rest, kv)
			}
		}
		for _, kv := range hot {
			m.Set(kv.Key, kv.Value)
		}
		m.msetDirect(rest)
		// Promotions racing the batch may have snapshotted pre-write
		// values: repair every just-written key's entry, as Set does,
		// each before its own unregistration.
		var firstErr error
		for i := range rest {
			if err := m.resyncAfterWrite(rest[i].Key); err != nil && firstErr == nil {
				firstErr = err
			}
			m.mc.hot.EndWrite(rest[i].Key)
		}
		raise(firstErr)
		return
	}
	m.msetDirect(pairs)
}

// msetDirect is the unreplicated MSet path. The reshard's straggler-pass
// safety net assumes a write's routing decision is at most one
// operation's span stale; a multi-group batch could stretch that
// arbitrarily, so the epoch is re-checked before each group and the
// remaining pairs re-route serially after a mid-batch ring switch — the
// residual window is then one group's span, the same bound a serial Set
// has.
func (m *MultiClient) msetDirect(pairs []KV) {
	if len(pairs) == 0 {
		return
	}
	snap := m.mc.snap()
	groups := make(map[int][]int)
	oldOf := make(map[int]int)
	for i := range pairs {
		cur, old := snap.owner(pairs[i].Key)
		groups[cur] = append(groups[cur], i)
		if old >= 0 {
			oldOf[i] = old
		}
	}
	owners := snap.fanoutOrder(groups)
	for gi, owner := range owners {
		idxs := groups[owner]
		if len(idxs) == 0 {
			continue
		}
		c := m.clientFor(owner)
		if m.mc.snap().epoch != snap.epoch || c == nil {
			// The ring switched (or the owner left the pool) while earlier
			// groups' verbs were in flight: every remaining routing
			// decision is stale. Re-route the rest per pair — Set routes
			// at issue time, restoring the design's staleness bound.
			for _, o := range owners[gi:] {
				for _, i := range groups[o] {
					m.Set(pairs[i].Key, pairs[i].Value)
				}
			}
			return
		}
		sub := make([]KV, len(idxs))
		for j, i := range idxs {
			sub[j] = pairs[i]
		}
		if rdma.CatchUnreachable(func() { c.MSet(sub) }) != nil {
			// The owner fail-stopped mid-batch; none of this group's
			// outcomes are knowable. CrashNode has already re-routed the
			// key space, so store the group (and everything after it)
			// per pair against the new owners.
			for _, o := range owners[gi:] {
				for _, i := range groups[o] {
					m.Set(pairs[i].Key, pairs[i].Value)
				}
			}
			return
		}
		for _, i := range idxs {
			if old, windowed := oldOf[i]; windowed {
				if oc := m.clientFor(old); oc != nil {
					_ = rdma.CatchUnreachable(func() { oc.Delete(pairs[i].Key) })
				}
			}
		}
	}
}

// sortedNodeIDs returns a node-keyed map's IDs in ascending order — the
// one deterministic-iteration helper for maps that may hold departed
// nodes (Close, Stats, the resharder's free-list surrender over
// connected clients) and routeSnapshot.fanoutOrder's stray-owner
// fallback. The operation fan-outs themselves iterate the snapshot's
// cached members instead of sorting per call.
func sortedNodeIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	//dittolint:allow simdet (this helper IS the sanctioned pattern: the keys are sorted before any caller iterates them)
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Set stores key on its owning MN. When the key is replicated, the write
// goes through the primary first and then updates every replica before
// returning (setReplicated in replica.go), all under the key's entry
// lock — so after any completed Set, every copy a spread read can reach
// holds the written value. A write that found no entry runs unreplicated
// and registered (BeginWrite, atomically with the nil lock result), and
// repairs any entry a racing promotion published meanwhile
// (resyncAfterWrite) before unregistering and returning.
func (m *MultiClient) Set(key, value []byte) {
	raise(m.TrySet(key, value))
}

// TrySet is Set with crash-time failures surfaced as errors instead of
// panics: when the key's owner fail-stops mid-write, it returns an error
// satisfying IsUnavailable (the write may or may not have landed — the
// node took the answer with it), and the caller retries after the pool
// reconfigures. Internal bookkeeping (entry locks, write registrations)
// is always released before the error returns, so a failed TrySet never
// wedges later writers.
func (m *MultiClient) TrySet(key, value []byte) error {
	var serr error
	if err := catchUnavailable(func() { serr = m.set(key, value) }); err != nil {
		return err
	}
	return serr
}

func (m *MultiClient) set(key, value []byte) error {
	if m.mc.hot == nil {
		m.setDirect(key, value)
		return nil
	}
	m.drainPromotions()
	if e := m.mc.hot.Lock(m.p, key); e != nil {
		return m.setReplicated(e, key, value)
	}
	m.mc.hot.BeginWrite(key)
	err := catchUnavailable(func() { m.setDirect(key, value) })
	if err == nil {
		err = m.resyncAfterWrite(key)
	}
	m.mc.hot.EndWrite(key)
	return err
}

// setDirect is the unreplicated Set path. During a reshard the new owner
// gets the write and any pre-reshard copy on the old owner is deleted,
// so a later eviction of the fresh value cannot let the resharder
// resurrect the superseded one. (The resharder's source CAS fails once
// the old copy is gone, and its insert-if-absent never overwrites the
// write; a write racing a migrated insert into a different slot may be
// shadowed until the reshard's verification sweep — see the package
// comment.)
func (m *MultiClient) setDirect(key, value []byte) {
	cur, old := m.owner(key)
	c := m.clientFor(cur)
	if c == nil {
		// Reads degrade when a routed owner has no backing node (the miss
		// is counted on a survivor), but a write has nowhere to land: the
		// ring and the membership switch atomically, so this is a
		// corrupted deployment — fail loudly and typed, not with a nil
		// dereference (TrySet converts this back into an error).
		panic(&NoOwnerError{Node: cur})
	}
	c.Set(key, value)
	if old >= 0 {
		if oc := m.clientFor(old); oc != nil {
			// A pre-reshard copy on an old owner that fail-stops mid-delete
			// died with the node — the cleanup's goal is already met.
			_ = rdma.CatchUnreachable(func() { oc.Delete(key) })
		}
	}
}

// Delete removes key from its owning MN. A replicated key is demoted
// first — its replicas are invalidated under the entry lock BEFORE the
// primary copy is cleared, so no spread read can hit a replica after the
// delete returns — and the span is registered like an unreplicated
// write, so a promotion racing the delete publishes warming and is then
// repaired before returning: resyncAfterWrite finds the primary gone
// and demotes the entry.
func (m *MultiClient) Delete(key []byte) bool {
	if m.mc.hot == nil {
		return m.deleteDirect(key)
	}
	e := m.mc.hot.Lock(m.p, key)
	m.mc.hot.BeginWrite(key)
	if e != nil {
		m.demoteLocked(e)
	}
	ok := m.deleteDirect(key)
	// The registration is released before a repair failure surfaces: a
	// forever-registered write would pin a racing promotion's entry
	// warming permanently.
	err := m.resyncAfterWrite(key)
	m.mc.hot.EndWrite(key)
	raise(err)
	return ok
}

// deleteDirect is the unreplicated Delete path. During a reshard both
// owners are cleared, old copy first — that ordering, combined with the
// resharder's verify-then-undo CAS discipline, ensures a racing
// migration cannot durably resurrect the deleted key (the dead value may
// flicker back for the few verb round trips between the resharder's
// insert and its undo, but never outlives the reshard).
func (m *MultiClient) deleteDirect(key []byte) bool {
	cur, old := m.owner(key)
	deleted := false
	// An owner that fail-stops mid-delete achieves the deletion by dying:
	// its copy is gone either way, so the unreachable error degrades to
	// "nothing was there".
	if old >= 0 {
		if c := m.clientFor(old); c != nil {
			_ = rdma.CatchUnreachable(func() { deleted = c.Delete(key) })
		}
	}
	if c := m.clientFor(cur); c != nil {
		_ = rdma.CatchUnreachable(func() {
			if c.Delete(key) {
				deleted = true
			}
		})
	}
	return deleted
}

// MDelete removes a batch of keys: one doorbell-batched MDelete per
// owning MN. Replicated keys are demoted first (replicas invalidated
// before any primary copy is cleared), the whole batch is registered,
// and raced promotions are repaired after, per key, exactly as Delete
// does.
func (m *MultiClient) MDelete(keys [][]byte) []bool {
	if m.mc.hot == nil {
		return m.mdeleteDirect(keys)
	}
	for _, k := range keys {
		e := m.mc.hot.Lock(m.p, k)
		m.mc.hot.BeginWrite(k)
		if e != nil {
			m.demoteLocked(e)
		}
	}
	out := m.mdeleteDirect(keys)
	// Every registration is released — a repair failure on one key must
	// not strand the rest of the batch registered — before the first
	// failure surfaces.
	var firstErr error
	for _, k := range keys {
		if err := m.resyncAfterWrite(k); err != nil && firstErr == nil {
			firstErr = err
		}
		m.mc.hot.EndWrite(k)
	}
	raise(firstErr)
	return out
}

// mdeleteDirect is the unreplicated MDelete path. During a reshard each
// windowed key is also cleared on its old owner FIRST, batched per old
// owner, preserving Delete's per-key ordering (old copy before current
// copy) so a racing migration cannot durably resurrect a deleted key.
// Like MSet, the epoch is re-checked before each group: after a
// mid-batch ring switch every remaining routing decision is stale, so
// the rest re-routes per key — otherwise a key migrated to a new owner
// between routing and issue would survive its own deletion.
func (m *MultiClient) mdeleteDirect(keys [][]byte) []bool {
	out := make([]bool, len(keys))
	if len(keys) == 0 {
		return out
	}
	snap := m.mc.snap()
	groups := make(map[int][]int) // current owner → key indices
	oldGroups := make(map[int][]int)
	for i := range keys {
		cur, old := snap.owner(keys[i])
		groups[cur] = append(groups[cur], i)
		if old >= 0 {
			oldGroups[old] = append(oldGroups[old], i)
		}
	}
	type delGroup struct {
		owner int
		idxs  []int
		cur   bool // a current-owner group: completes its keys
	}
	var seq []delGroup
	for _, owner := range snap.fanoutOrder(oldGroups) {
		if idxs, ok := oldGroups[owner]; ok {
			seq = append(seq, delGroup{owner: owner, idxs: idxs})
		}
	}
	for _, owner := range snap.fanoutOrder(groups) {
		if idxs, ok := groups[owner]; ok {
			seq = append(seq, delGroup{owner: owner, idxs: idxs, cur: true})
		}
	}
	done := make([]bool, len(keys)) // current-owner batch ran for this key
	for _, g := range seq {
		c := m.clientFor(g.owner)
		if m.mc.snap().epoch != snap.epoch || (c == nil && g.cur) {
			// The ring switched (or a current owner left the pool) while
			// earlier groups' verbs were in flight. Delete routes at issue
			// time — re-route every unfinished key per key, restoring the
			// design's staleness bound (re-clearing an old copy is
			// idempotent).
			for i := range keys {
				if !done[i] && m.Delete(keys[i]) {
					out[i] = true
				}
			}
			return out
		}
		if c == nil {
			continue // an old owner left the pool: nothing to clear there
		}
		sub := make([][]byte, len(g.idxs))
		for j, i := range g.idxs {
			sub[j] = keys[i]
		}
		var oks []bool
		if rdma.CatchUnreachable(func() { oks = c.MDelete(sub) }) != nil {
			// The node fail-stopped mid-batch: every copy it held is gone,
			// which is the post-state a delete wants. Presence answers for
			// this group are lost (out stays false) and the keys are left
			// not-done, so a concurrent ring switch re-routes them above.
			continue
		}
		for j, ok := range oks {
			if ok {
				out[g.idxs[j]] = true
			}
		}
		if g.cur {
			for _, i := range g.idxs {
				done[i] = true
			}
		}
	}
	return out
}

// Close flushes buffered client state on every connected MN. Flushes to
// nodes that fail-stopped (or left the pool) are skipped — their remote
// state died with them.
func (m *MultiClient) Close() {
	for _, id := range sortedNodeIDs(m.clients) {
		c := m.clients[id]
		if c.cl.dead {
			continue
		}
		_ = rdma.CatchUnreachable(func() { c.Close() })
	}
}

// Stats aggregates per-MN client stats.
func (m *MultiClient) Stats() Stats {
	var s Stats
	for _, id := range sortedNodeIDs(m.clients) {
		s.Add(m.clients[id].Stats)
	}
	return s
}
