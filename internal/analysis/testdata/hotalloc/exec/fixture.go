// Fixture for the hotalloc analyzer, executor side: loaded by
// RunFixture under the import path ditto/internal/exec, so methods on
// Runner, SerialRunner, and DoorbellRunner are swept — and the free
// functions (the documented allocate-per-call form) are not.

package exec

type Plan interface{ Step() []int }

type Result struct{ Old uint64 }

type SerialRunner struct {
	free [][]Result
}

func (r *SerialRunner) Run(p Plan) {
	var res []Result
	if n := len(r.free); n > 0 {
		res, r.free = r.free[n-1][:0], r.free[:n-1] // free-list pop: no finding
	}
	res = append(res, Result{}) // append into pooled buffer: no finding
	r.free = append(r.free, res)
}

type DoorbellRunner struct {
	busy    bool
	batches map[uint64]int
}

func (r *DoorbellRunner) Run(plans []Plan) {
	defer func() { r.busy = false }() // want `function literal in hot function Run allocates its closure per call`
	if r.batches == nil {
		//dittolint:allow hotalloc (once-per-runner lazy init, not per call)
		r.batches = make(map[uint64]int)
	}
	res := make([]Result, len(plans)) // want `make in hot function Run allocates per call`
	_ = res
}

type Runner struct {
	Serial   SerialRunner
	Doorbell DoorbellRunner
}

func (r *Runner) RunOne(p Plan) {
	rs := []Result{{}} // want `\[\]exec\.Result literal in hot function RunOne allocates per call`
	_ = rs
	r.Serial.Run(p)
}

// RunSerial is the free allocate-per-call form: not swept.
func RunSerial(p Plan) {
	res := make([]Result, 4) // free function: no finding
	_ = res
}
