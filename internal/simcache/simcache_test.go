package simcache

import (
	"testing"
	"testing/quick"

	"ditto/internal/cachealgo"
)

func TestExactLRUOrder(t *testing.T) {
	c := New(cachealgo.NewLRU(), 3)
	c.Access(1, 64)
	c.Access(2, 64)
	c.Access(3, 64)
	c.Access(1, 64) // 1 is now most recent; 2 is LRU
	c.Access(4, 64) // evicts 2
	if c.Contains(2) {
		t.Fatal("LRU victim 2 still cached")
	}
	for _, k := range []uint64{1, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestExactLFUOrder(t *testing.T) {
	c := New(cachealgo.NewLFU(), 3)
	c.Access(1, 64)
	c.Access(1, 64)
	c.Access(1, 64)
	c.Access(2, 64)
	c.Access(2, 64)
	c.Access(3, 64)
	c.Access(4, 64) // 3 has freq 1 → victim
	if c.Contains(3) {
		t.Fatal("LFU victim 3 still cached")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Fatal("wrong working set after LFU eviction")
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := New(cachealgo.NewLRU(), 10)
	for i := 0; i < 5; i++ {
		c.Access(uint64(i), 64)
	}
	for i := 0; i < 5; i++ {
		c.Access(uint64(i), 64)
	}
	if c.Hits != 5 || c.Misses != 5 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(cachealgo.NewLFU(), 16)
	for i := 0; i < 1000; i++ {
		c.Access(uint64(i%77), 64)
		if c.Len() > 16 {
			t.Fatalf("len %d exceeds capacity at access %d", c.Len(), i)
		}
	}
}

func TestSampledEvictionApproximatesExact(t *testing.T) {
	// On a skewed workload, sampled LRU with K=5 must land within a few
	// points of exact LRU — the premise of Ditto's sample-based eviction
	// (§4.2, sampling borrowed from Redis).
	run := func(k int) float64 {
		var c *Cache
		if k == 0 {
			c = New(cachealgo.NewLRU(), 200)
		} else {
			c = NewSampled(cachealgo.NewLRU(), 200, k, 7)
		}
		// Zipf-ish: key i with probability ∝ 1/(i+1) via simple pattern.
		x := uint64(12345)
		for i := 0; i < 60000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			key := (x >> 33) % 1000
			key = key * key / 1000 // skew toward small keys
			c.Access(key, 64)
		}
		return c.HitRate()
	}
	exact, sampled := run(0), run(5)
	diff := exact - sampled
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Fatalf("sampled LRU off by %.3f (exact %.3f, sampled %.3f)", diff, exact, sampled)
	}
}

func TestResizeShrinkEvicts(t *testing.T) {
	c := New(cachealgo.NewLRU(), 100)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i), 64)
	}
	c.Resize(10)
	if c.Len() != 10 {
		t.Fatalf("len after shrink = %d", c.Len())
	}
	// The 10 most recently used keys survive under LRU.
	for i := 90; i < 100; i++ {
		if !c.Contains(uint64(i)) {
			t.Fatalf("recent key %d evicted on shrink", i)
		}
	}
}

func TestResizeGrowKeepsContents(t *testing.T) {
	c := New(cachealgo.NewLRU(), 4)
	for i := 0; i < 4; i++ {
		c.Access(uint64(i), 64)
	}
	c.Resize(100)
	if c.Len() != 4 {
		t.Fatalf("grow changed len to %d", c.Len())
	}
	c.Access(99, 64)
	if c.Evictions != 0 {
		t.Fatal("grow caused eviction")
	}
}

func TestGDSEvictionObserverWired(t *testing.T) {
	algo := cachealgo.NewGDS()
	c := New(algo, 2)
	c.Access(1, 64)
	c.Access(2, 64)
	c.Access(3, 64) // forces an eviction → OnEvict must fire (L inflates)
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestAllAlgorithmsRunOnChurn(t *testing.T) {
	for _, info := range cachealgo.All() {
		c := NewSampled(info.New(), 64, 5, 11)
		x := uint64(99)
		for i := 0; i < 5000; i++ {
			x = x*2862933555777941757 + 3037000493
			c.Access((x>>40)%500, int(64+(x%4)*64))
			if c.Len() > 64 {
				t.Fatalf("%s: capacity exceeded", info.Name)
			}
		}
		if c.Hits == 0 {
			t.Errorf("%s: zero hits on skewed churn", info.Name)
		}
	}
}

// Property: hits+misses equals accesses and len never exceeds capacity for
// arbitrary key streams under every eviction mode.
func TestAccountingProperty(t *testing.T) {
	f := func(keys []uint16, sampled bool) bool {
		var c *Cache
		if sampled {
			c = NewSampled(cachealgo.NewLFU(), 8, 3, 5)
		} else {
			c = New(cachealgo.NewLFU(), 8)
		}
		for _, k := range keys {
			c.Access(uint64(k%64), 64)
			if c.Len() > 8 {
				return false
			}
		}
		return c.Hits+c.Misses == int64(len(keys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero capacity", func() { New(cachealgo.NewLRU(), 0) })
	assertPanics("zero K", func() { NewSampled(cachealgo.NewLRU(), 4, 0, 1) })
	assertPanics("resize zero", func() { New(cachealgo.NewLRU(), 4).Resize(0) })
}
