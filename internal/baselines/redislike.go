package baselines

import (
	"encoding/binary"

	"ditto/internal/cachealgo"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
	"ditto/internal/simcache"
)

// RedisCluster models a monolithic-server caching cluster à la Redis
// Cluster / ElastiCache: N single-core shard VMs, every operation an RPC
// to the shard owning the key, sample-based LRU eviction per shard, and —
// the crux of Figures 1 and 13 — resharding data migration whenever the
// cluster is scaled, during which throughput dips and the resource change
// takes minutes to pay off.
type RedisCluster struct {
	env    *sim.Env
	shards []*redisShard

	// routable is how many shards currently serve traffic; scale-out adds
	// shards but they become routable only when migration completes.
	routable int

	// MigrationRate is bytes/second a shard can migrate (network+CPU
	// budget for resharding; paper observes minutes for gigabytes).
	MigrationRate float64

	// Migrating reports the end time of the ongoing migration (0 = none).
	MigratingUntil int64
}

// redisShard is one shard VM: its own node (NIC+1 CPU core) and local
// store.
type redisShard struct {
	node  *rdma.Node
	cache *simcache.Cache
	data  map[uint64][]byte

	// migrationLoad is injected CPU work (resharding) — it occupies the
	// shard CPU resource so foreground RPCs queue behind it.
	cluster *RedisCluster
}

// RedisFabric tunes per-op server cost: ~1.1 µs CPU per request
// (≈0.9 Mops/core, a realistic Redis figure) and the same 2 µs network RTT.
func RedisFabric() rdma.Config {
	cfg := rdma.DefaultConfig()
	cfg.RPCSvc = 1100
	cfg.RPCByteSvcNs = 0.2
	cfg.CPUCores = 1
	// A shard VM's NIC is not the bottleneck; keep it fast.
	cfg.MsgSvc = 10
	return cfg
}

// NewRedisCluster creates a cluster of n shards, each caching
// perShardObjects with sample-based LRU (Redis samples 5).
func NewRedisCluster(env *sim.Env, n, perShardObjects int) *RedisCluster {
	c := &RedisCluster{env: env, routable: n, MigrationRate: 256 << 20}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, c.newShard(perShardObjects, int64(i)))
	}
	return c
}

func (c *RedisCluster) newShard(objects int, seed int64) *redisShard {
	sh := &redisShard{
		node:    rdma.NewNode(c.env, 4096, RedisFabric()),
		cache:   simcache.NewSampled(cachealgo.NewLRU(), objects, 5, seed+12345),
		data:    map[uint64][]byte{},
		cluster: c,
	}
	sh.node.Handle(memnode.OpServerOp, sh.handleOp)
	return sh
}

// Shards returns the current shard count (including not-yet-routable).
func (c *RedisCluster) Shards() int { return len(c.shards) }

// Routable returns how many shards serve traffic.
func (c *RedisCluster) Routable() int { return c.routable }

// shardOf routes a key.
func (c *RedisCluster) shardOf(key uint64) int {
	return int(mixHash(key) % uint64(c.routable))
}

// mixHash spreads keys over shards (FNV-1a over the 8 key bytes).
func mixHash(v uint64) uint64 {
	const prime = 1099511628211
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// handleOp executes one Get/Set on the shard CPU.
// Payload: op(1) | key(8) | valLen(4) | value. Reply: ok(1) | value.
func (sh *redisShard) handleOp(payload []byte) []byte {
	op := payload[0]
	key := binary.LittleEndian.Uint64(payload[1:])
	switch op {
	case 0: // GET
		v, ok := sh.data[key]
		if !ok {
			return []byte{0}
		}
		sh.cache.Access(key, len(v))
		return append([]byte{1}, v...)
	default: // SET
		vl := int(binary.LittleEndian.Uint32(payload[9:]))
		v := append([]byte(nil), payload[13:13+vl]...)
		before := sh.cache.Evictions
		sh.cache.Access(key, len(v))
		if sh.cache.Evictions > before {
			// Mirror the cache's eviction decisions in the data map.
			for k := range sh.data {
				if !sh.cache.Contains(k) {
					delete(sh.data, k)
				}
			}
		}
		sh.data[key] = v
		return []byte{1}
	}
}

// RedisClient talks to the cluster through per-shard endpoints.
type RedisClient struct {
	c   *RedisCluster
	p   *sim.Proc
	eps []*rdma.Endpoint

	// Hits/Misses count Get outcomes.
	Hits, Misses int64
}

// NewRedisClient connects a client to every shard.
func (c *RedisCluster) NewRedisClient(p *sim.Proc) *RedisClient {
	cl := &RedisClient{c: c, p: p}
	for _, sh := range c.shards {
		cl.eps = append(cl.eps, rdma.NewEndpoint(sh.node, p))
	}
	return cl
}

// refresh picks up shards added after the client connected.
func (cl *RedisClient) refresh() {
	for len(cl.eps) < len(cl.c.shards) {
		cl.eps = append(cl.eps, rdma.NewEndpoint(cl.c.shards[len(cl.eps)].node, cl.p))
	}
}

// Get fetches a key (one RPC to the owning shard).
func (cl *RedisClient) Get(key uint64) ([]byte, bool) {
	cl.refresh()
	var req [9]byte
	binary.LittleEndian.PutUint64(req[1:], key)
	reply := cl.eps[cl.c.shardOf(key)].RPC(memnode.OpServerOp, req[:])
	if len(reply) == 0 || reply[0] == 0 {
		cl.Misses++
		return nil, false
	}
	cl.Hits++
	return reply[1:], true
}

// Set stores a key (one RPC).
func (cl *RedisClient) Set(key uint64, value []byte) {
	cl.refresh()
	req := make([]byte, 13+len(value))
	req[0] = 1
	binary.LittleEndian.PutUint64(req[1:], key)
	binary.LittleEndian.PutUint32(req[9:], uint32(len(value)))
	copy(req[13:], value)
	cl.eps[cl.c.shardOf(key)].RPC(memnode.OpServerOp, req[:])
}

// ScaleTo reshards the cluster to n shards. The call returns immediately;
// a background migration occupies the source shards' CPUs and only at its
// completion do the new shards become routable (scale-out) or the old
// shards' memory get reclaimed (scale-in). This is the behaviour Figure 1
// measures on Redis and Figure 13 shows Ditto avoiding.
func (c *RedisCluster) ScaleTo(n, perShardObjects int, movedBytes int64) {
	if n == len(c.shards) {
		return
	}
	grow := n > len(c.shards)
	for len(c.shards) < n {
		c.shards = append(c.shards, c.newShard(perShardObjects, int64(len(c.shards))))
	}
	// Migration: movedBytes spread over the routable shards' CPUs in 1 ms
	// slices so foreground traffic contends with it.
	perShard := movedBytes / int64(c.routable)
	dur := int64(float64(perShard) / c.MigrationRate * 1e9)
	end := c.env.Now() + dur
	c.MigratingUntil = end
	for i := 0; i < c.routable; i++ {
		sh := c.shards[i]
		c.env.Go("migrate", func(p *sim.Proc) {
			// Resharding consumes ~12% of the source shard CPU until done
			// (Figure 1 observes a single-digit throughput dip and a
			// minutes-long delay before the new capacity pays off).
			for p.Now() < end {
				sh.node.CPU().Acquire(120 * sim.Microsecond)
				p.Sleep(sim.Millisecond)
			}
		})
	}
	c.env.GoAt(end, "migration-done", func(p *sim.Proc) {
		if grow {
			c.routable = n
		} else {
			c.shards = c.shards[:n]
			c.routable = n
		}
		c.MigratingUntil = 0
	})
	if !grow {
		// Scale-in routes to the surviving shards immediately, but memory
		// is reclaimed only when migration ends (the delayed reclamation of
		// Figure 1).
		c.routable = n
	}
}
