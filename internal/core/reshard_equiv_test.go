package core

// Equivalence of batched operations and of the two reshard strategies
// across live membership changes: MSet/MDelete batches must behave like
// their sequential counterparts while keys migrate, and the Doorbell
// resharder must produce results identical to the Serial one while
// finishing measurably faster.

import (
	"bytes"
	"math/rand"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
)

// TestMultiMSetMDeleteDuringLiveReshard drives MSet and MDelete batches
// across a live AddNode reshard — under both reshard strategies — and
// checks every observation against an exact model, mirroring the
// Get/Set equivalence coverage in batch_test.go. Delete's one documented
// staleness window (a dead value transiently readable until the
// resharder's undo lands) is tolerated only WHILE the reshard is in
// flight; once it completes, deleted keys must be gone for good.
func TestMultiMSetMDeleteDuringLiveReshard(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		t.Run(strat.String(), func(t *testing.T) {
			env := sim.NewEnv(6)
			mc := NewMultiCluster(env, 2, DefaultOptions(4000, 4000*320))
			mc.ReshardStrategy = strat
			model := make(map[string][]byte)
			// Keys whose deletion raced the reshard window: exempt from
			// strict absence checks until the reshard completes.
			risky := make(map[string]bool)
			env.Go("mutator", func(p *sim.Proc) {
				m := mc.NewClient(p)
				rng := rand.New(rand.NewSource(43))
				pairs := make([]KV, 0, 400)
				for i := 0; i < 400; i++ {
					pairs = append(pairs, KV{Key: key(i), Value: value(i)})
					model[string(key(i))] = value(i)
				}
				m.MSet(pairs)
				for round := 0; round < 60; round++ {
					if round == 5 {
						mc.AddNode()
					}
					batch := make([]KV, 6)
					for j := range batch {
						k := rng.Intn(500)
						v := value(k*7 + round)
						batch[j] = KV{Key: key(k), Value: v}
						model[string(key(k))] = v
						delete(risky, string(key(k)))
					}
					m.MSet(batch)

					dels := make([][]byte, 4)
					for j := range dels {
						dels[j] = key(rng.Intn(500))
					}
					oks := m.MDelete(dels)
					for j, d := range dels {
						_, present := model[string(d)]
						if present && !oks[j] {
							t.Errorf("round %d (resharding=%v): present key %s not deleted",
								round, mc.Resharding(), d)
						}
						if !present && oks[j] && !mc.Resharding() && !risky[string(d)] {
							t.Errorf("round %d: absent key %s reported deleted", round, d)
						}
						delete(model, string(d))
						if mc.Resharding() {
							risky[string(d)] = true
						}
					}

					gets := make([][]byte, 12)
					for j := range gets {
						gets[j] = key(rng.Intn(600))
					}
					vs, gok := m.MGet(gets)
					for j := range gets {
						want, present := model[string(gets[j])]
						if risky[string(gets[j])] && mc.Resharding() {
							continue // delete racing the migration window
						}
						if gok[j] != present {
							t.Errorf("round %d (resharding=%v) key %s: ok=%v, present=%v",
								round, mc.Resharding(), gets[j], gok[j], present)
						} else if present && !bytes.Equal(vs[j], want) {
							t.Errorf("round %d key %s: stale value", round, gets[j])
						}
					}
				}
				mc.WaitReshard(p)
				// Post-reshard sweep: the model must hold exactly — deleted
				// keys gone (no resurrection), written keys fresh.
				all := make([][]byte, 600)
				for i := range all {
					all[i] = key(i)
				}
				vs, oks := m.MGet(all)
				for i := range all {
					want, present := model[string(all[i])]
					if oks[i] != present {
						t.Errorf("post-reshard key %d: ok=%v, present=%v", i, oks[i], present)
					} else if present && !bytes.Equal(vs[i], want) {
						t.Errorf("post-reshard key %d: stale value", i)
					}
				}
				s := m.Stats()
				if s.Gets != s.Hits+s.Misses {
					t.Errorf("accounting broken: %+v", s)
				}
			})
			env.Run()
			if mc.Reshards != 1 || mc.NumNodes() != 3 {
				t.Errorf("reshards=%d nodes=%d", mc.Reshards, mc.NumNodes())
			}
		})
	}
}

// TestReshardStrategiesIdenticalAndDoorbellFaster pins the tentpole
// claim: with the same starting state, the Doorbell resharder migrates
// exactly the same keys to exactly the same readable end state as the
// Serial resharder — and completes the reshard in less virtual time.
func TestReshardStrategiesIdenticalAndDoorbellFaster(t *testing.T) {
	const n = 1500
	run := func(strat exec.Strategy) (map[string]string, int64, int64) {
		env := sim.NewEnv(13)
		mc := NewMultiCluster(env, 2, DefaultOptions(2*n, 2*n*320))
		mc.ReshardStrategy = strat
		final := make(map[string]string)
		env.Go("c", func(p *sim.Proc) {
			c := mc.NewClient(p)
			for i := 0; i < n; i++ {
				c.Set(key(i), value(i))
			}
			mc.AddNode()
			mc.WaitReshard(p)
			for i := 0; i < n; i++ {
				if v, ok := c.Get(key(i)); ok {
					final[string(key(i))] = string(v)
				}
			}
		})
		env.Run()
		return final, mc.MigratedKeys, mc.ReshardNs
	}
	serialState, serialMoved, serialNs := run(exec.Serial)
	doorState, doorMoved, doorNs := run(exec.Doorbell)

	if len(serialState) != n || len(doorState) != n {
		t.Fatalf("keys readable after reshard: serial=%d doorbell=%d, want %d",
			len(serialState), len(doorState), n)
	}
	for k, v := range serialState {
		if doorState[k] != v {
			t.Fatalf("key %s differs across strategies", k)
		}
	}
	if serialMoved != doorMoved {
		t.Errorf("migrated keys differ: serial=%d doorbell=%d", serialMoved, doorMoved)
	}
	if doorNs >= serialNs {
		t.Errorf("doorbell reshard not faster: %d ns vs serial %d ns", doorNs, serialNs)
	}
	t.Logf("reshard time: serial=%dns doorbell=%dns (%.2fx), %d keys moved",
		serialNs, doorNs, float64(serialNs)/float64(doorNs), doorMoved)
}

// TestMDeleteHoldsAcrossRingSwitch deletes every key in batches while a
// reshard migrates them and while its completion flips the routing epoch
// mid-stream: no deletion may be lost. A batch whose routing decision
// went stale (ring switched between routing and issue) must re-route per
// key — otherwise a key migrated to its new owner in that window would
// survive its own deletion and resurface here.
func TestMDeleteHoldsAcrossRingSwitch(t *testing.T) {
	env := sim.NewEnv(21)
	const n = 600
	mc := NewMultiCluster(env, 2, DefaultOptions(3000, 3000*320))
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		pairs := make([]KV, n)
		keys := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i] = key(i)
			pairs[i] = KV{Key: keys[i], Value: value(i)}
		}
		m.MSet(pairs)
		mc.AddNode()
		for lo := 0; lo < n; lo += 16 {
			hi := lo + 16
			if hi > n {
				hi = n
			}
			for j, ok := range m.MDelete(keys[lo:hi]) {
				if !ok {
					t.Errorf("present key %d not deleted (resharding=%v)", lo+j, mc.Resharding())
				}
			}
		}
		mc.WaitReshard(p)
		_, oks := m.MGet(keys)
		for i, ok := range oks {
			if ok {
				t.Errorf("key %d survived its deletion across the reshard", i)
			}
		}
	})
	env.Run()
}

// TestSerialReshardKeepsKeysUnderLoad re-runs the headline reshard
// invariant with the Serial strategy (the default elastic tests exercise
// Doorbell), so the demoted per-slot path keeps full coverage: every key
// stays readable with its exact value during and after the migration.
func TestSerialReshardKeepsKeysUnderLoad(t *testing.T) {
	env := sim.NewEnv(9)
	const n = 300
	mc := NewMultiCluster(env, 2, DefaultOptions(1500, 1500*320))
	mc.ReshardStrategy = exec.Serial
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		mc.AddNode()
		during := 0
		for mc.Resharding() {
			i := int(p.Rand().Int63n(n))
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale during serial reshard", i)
			}
			during++
		}
		if during == 0 {
			t.Error("reshard finished before any concurrent read")
		}
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale after serial reshard", i)
			}
		}
	})
	env.Run()
	if mc.MigratedKeys == 0 {
		t.Error("serial reshard moved nothing")
	}
}
