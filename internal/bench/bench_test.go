package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"": Quick, "quick": Quick, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("no error for unknown scale")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	want := []string{"1", "2", "3", "4", "5", "13", "14", "15", "16", "17",
		"18", "19", "20", "21", "22", "23", "24", "25", "table3"}
	for _, id := range want {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	extras := []string{"abl-k", "abl-fct", "abl-batch", "abl-hist", "abl-mn",
		"elastic-reshard", "batched-throughput", "hotspot", "churn", "chaos",
		"tenants"}
	for _, id := range extras {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("extra experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(want)+len(extras) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want)+len(extras))
	}
	for id, e := range Experiments {
		if e.Desc == "" {
			t.Errorf("experiment %s has no description", id)
		}
		if Describe(id) != e.Desc {
			t.Errorf("Describe(%s) mismatch", id)
		}
	}
}

func TestElasticReshardScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("elastic-reshard", &buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"before (2 MN)", "reshard", "after (4 MN)", "keys migrated"} {
		if !strings.Contains(out, want) {
			t.Errorf("elastic-reshard output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "reshards: 0") || strings.Contains(out, "keys migrated: 0 ") {
		t.Errorf("no live migration happened:\n%s", out)
	}
	if !strings.Contains(out, "final MNs: 4") {
		t.Errorf("scale-out did not reach 4 MNs:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("99", &bytes.Buffer{}, Quick); err == nil {
		t.Fatal("no error for unknown experiment")
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table3", &buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, algo := range []string{"LRU", "LFU", "GDSF", "HYPERBOLIC"} {
		if !strings.Contains(out, algo) {
			t.Errorf("table 3 missing %s", algo)
		}
	}
}

func TestFig04ShowsCrossover(t *testing.T) {
	// The calibrated webmail workload must reproduce the paper's Figure 4
	// shape: LRU best at small cache sizes, LFU best at large ones.
	var buf bytes.Buffer
	if err := Fig04(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	firstBest, lastBest := "", ""
	for _, ln := range lines {
		switch {
		case strings.Contains(ln, "5%") && firstBest == "":
			firstBest = best(ln)
		case strings.Contains(ln, "60%"):
			lastBest = best(ln)
		}
	}
	if firstBest != "LRU" {
		t.Errorf("small-cache best = %q, want LRU\n%s", firstBest, out)
	}
	if lastBest != "LFU" {
		t.Errorf("large-cache best = %q, want LFU\n%s", lastBest, out)
	}
}

func best(line string) string {
	if strings.Contains(line, "LFU") {
		return "LFU"
	}
	if strings.Contains(line, "LRU") {
		return "LRU"
	}
	return ""
}

func TestRunTraceWarmupExcluded(t *testing.T) {
	env := sim.NewEnv(1)
	calls := 0
	factory := func(p *sim.Proc) CacheOps { calls++; return countingOps{&calls, p} }
	trace := make([]workload.Req, 100)
	for i := range trace {
		trace[i] = workload.Req{Key: uint64(i % 10), Size: 64}
	}
	res := RunTrace(env, factory, trace, 2, 2, 0)
	// Two loops executed, but only the second measured.
	if res.Ops != 100 {
		t.Fatalf("measured ops = %d, want 100", res.Ops)
	}
	if calls != 2 { // one client instance per process
		t.Fatalf("factory called %d times", calls)
	}
	if res.Hits+res.Misses != res.Ops {
		t.Fatalf("hits+misses = %d", res.Hits+res.Misses)
	}
}

// countingOps hits every second Get.
type countingOps struct {
	calls *int
	p     *sim.Proc
}

func (c countingOps) Get(key []byte) ([]byte, bool) {
	c.p.Sleep(sim.Microsecond)
	return nil, key[len(key)-1]%2 == 0
}

func (c countingOps) Set(key, value []byte) { c.p.Sleep(sim.Microsecond) }

func TestRunClosedLoopAggregates(t *testing.T) {
	env := sim.NewEnv(1)
	calls := 0
	factory := func(p *sim.Proc) CacheOps { calls++; return countingOps{&calls, p} }
	gen := func(int) workload.Generator { return workload.NewUniform(100, 64, 0.2) }
	res := RunClosedLoop(env, factory, gen, 4, 50, 1)
	if res.Ops != 200 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.ElapsedNs <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.Hist.Count() != 200 {
		t.Fatalf("histogram has %d samples", res.Hist.Count())
	}
	if res.Mops() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestValueForSized(t *testing.T) {
	v := valueFor(workload.Req{Key: 5, Size: 256})
	if len(v) != 240 {
		t.Fatalf("value len = %d", len(v))
	}
	v = valueFor(workload.Req{Key: 5, Size: 4})
	if len(v) < 8 {
		t.Fatalf("tiny value len = %d", len(v))
	}
}

// TestBatchedThroughputSpeedup pins the batching lever's acceptance bar:
// MGet(32) batches must reach at least 3x the throughput of 32
// sequential Gets under YCSB-C at default (quick) scale, with no hit
// rate regression — the load phase populates every key, so both runs
// must stay at hit rate 1.
func TestBatchedThroughputSpeedup(t *testing.T) {
	seq, _, _ := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 1, false)
	batched, _, _ := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 32, false)
	if seq.HitRate() != 1 || batched.HitRate() != 1 {
		t.Fatalf("hit rates: seq=%v batched=%v, want 1", seq.HitRate(), batched.HitRate())
	}
	if sp := batched.Mops() / seq.Mops(); sp < 3 {
		t.Fatalf("MGet(32) speedup = %.2fx, want >= 3x (seq %.3f Mops, batched %.3f Mops)",
			sp, seq.Mops(), batched.Mops())
	}
}

// TestBatchedLocCacheSpeculation pins the location cache's acceptance
// bar on the read-dominated workload at quick-scale parameters: with
// hints on, a majority of Gets must go speculative, the measured READ
// verbs per Get must drop well below the 2.0 classic floor, and
// throughput must improve — deterministically, same seed both runs.
func TestBatchedLocCacheSpeculation(t *testing.T) {
	off, specOff, vpgOff := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 32, false)
	on, specOn, vpgOn := runBatchedYCSB(workload.YCSBC, 2000, 4, 2048, 32, true)
	if specOff != 0 {
		t.Fatalf("spec hit rate = %v with the cache off, want 0", specOff)
	}
	if specOn < 0.5 {
		t.Fatalf("spec hit rate = %.3f with the cache on, want >= 0.5", specOn)
	}
	if vpgOn >= vpgOff || vpgOn > 1.6 {
		t.Fatalf("verbs/get = %.3f with hints (%.3f without), want < 1.6 and below the off run", vpgOn, vpgOff)
	}
	if on.Mops() <= off.Mops() {
		t.Fatalf("loc-cache throughput %.3f Mops did not beat %.3f Mops", on.Mops(), off.Mops())
	}
	if on.HitRate() != off.HitRate() {
		t.Fatalf("hit rate changed with hints: %v vs %v", on.HitRate(), off.HitRate())
	}
}

// TestHotspotReplicationSpeedup pins the hotspot scenario's headline
// claim at quick-scale parameters: on the heavy-tailed zipf workload,
// hot-key replication must at least double read throughput over
// unreplicated ring routing and flatten the per-node read imbalance.
// The sim is deterministic, so these are exact regression bounds, not
// flaky performance assertions.
func TestHotspotReplicationSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	unrep := runHotspot(1.6, false, false, 2048, 48, 1500, 0)
	rep := runHotspot(1.6, true, false, 2048, 48, 1500, 0)
	if sp := rep.res.Mops() / unrep.res.Mops(); sp < 2 {
		t.Fatalf("replication speedup = %.2fx, want >= 2x (unrep %.3f Mops, rep %.3f Mops)",
			sp, unrep.res.Mops(), rep.res.Mops())
	}
	if unrep.imb < 1.5 {
		t.Fatalf("unreplicated imbalance = %.2f: the workload is not skewed enough to test spreading", unrep.imb)
	}
	if rep.imb > 1.2 {
		t.Fatalf("replicated imbalance = %.2f, want near 1 (spreading not working)", rep.imb)
	}
	if rep.mc.Promotions == 0 || rep.mc.SpreadReads == 0 {
		t.Fatalf("replication never engaged: promotions=%d spread=%d", rep.mc.Promotions, rep.mc.SpreadReads)
	}
	// The write-mix shape: every hot write suspends its key's spreading
	// for the write's span, so the speedup shrinks but must remain a
	// clear win over unreplicated routing.
	unrepW := runHotspot(1.6, false, false, 2048, 48, 1500, 20)
	repW := runHotspot(1.6, true, false, 2048, 48, 1500, 20)
	if sp := repW.res.Mops() / unrepW.res.Mops(); sp < 1.3 {
		t.Fatalf("mixed-write replication speedup = %.2fx, want >= 1.3x", sp)
	}
	if repW.mc.SpreadReads == 0 {
		t.Fatal("mixed-write run never spread a read")
	}
	// Speculation composes with spreading: hints record per node, so with
	// the location cache on the replicated heavy tail must go mostly
	// one-RTT while keeping the imbalance collapsed.
	repS := runHotspot(1.6, true, true, 2048, 48, 1500, 0)
	if repS.spec < 0.5 {
		t.Fatalf("replicated spec hit rate = %.3f, want >= 0.5", repS.spec)
	}
	if repS.vpg >= rep.vpg {
		t.Fatalf("verbs/get with hints = %.3f, not below the hintless %.3f", repS.vpg, rep.vpg)
	}
	if repS.res.Mops() <= rep.res.Mops() {
		t.Fatalf("loc-cache replicated throughput %.3f Mops did not beat %.3f Mops",
			repS.res.Mops(), rep.res.Mops())
	}
	if repS.imb > 1.2 {
		t.Fatalf("loc-cache replicated imbalance = %.2f, want near 1", repS.imb)
	}
}

// TestChurnReclaimSpeedup pins the churn scenario's headline at
// quick-scale parameters: under write-heavy zipf churn at full
// occupancy, background doorbell reclaim must beat inline serial
// eviction on Set p99 AND carry the eviction load off the clients. The
// sim is deterministic, so these are exact regression bounds.
func TestChurnReclaimSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	inline, inlineHist, inlineStats, _ := runChurn(2000, 8, 2500, false, exec.Serial)
	back, backHist, backStats, rs := runChurn(2000, 8, 2500, true, exec.Doorbell)
	inlineP99 := float64(inlineHist.Percentile(99))
	backP99 := float64(backHist.Percentile(99))
	if backP99 >= inlineP99 {
		t.Fatalf("background doorbell reclaim p99 = %.1fus not better than inline serial %.1fus",
			backP99/1000, inlineP99/1000)
	}
	if back.Mops() <= inline.Mops() {
		t.Errorf("background reclaim throughput %.3f Mops not above inline %.3f",
			back.Mops(), inline.Mops())
	}
	if rs.Evictions == 0 {
		t.Fatal("reclaimer evicted nothing")
	}
	if heap := backStats.Evictions - backStats.BucketEvictions; heap > rs.Evictions/10 {
		t.Errorf("clients still evicted %d victims inline for heap pressure (reclaimer did %d)",
			heap, rs.Evictions)
	}
	if inlineStats.WriteStallNs == 0 {
		t.Error("inline mode recorded no eviction-stall time; workload not at occupancy")
	}
	if backStats.WriteStallNs >= inlineStats.WriteStallNs {
		t.Errorf("background reclaim did not reduce eviction-stall time: %dns vs %dns",
			backStats.WriteStallNs, inlineStats.WriteStallNs)
	}
}

// TestTenantNoisyNeighborIsolation pins the tenants scenario's
// acceptance bar at quick-scale parameters: with a binding quota on the
// churn tenant, the in-quota serving tenant's Get p99 and hit rate must
// each degrade less than 10% from its solo baseline, and its footprint
// must survive intact — while the same churn with NO quota visibly
// erodes that footprint. The sim is deterministic, so these are exact
// regression bounds.
func TestTenantNoisyNeighborIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	solo := runTenants(2000, 4, 8, 3000, false, true)
	noQuota := runTenants(2000, 4, 8, 3000, true, false)
	quota := runTenants(2000, 4, 8, 3000, true, true)

	if p99Deg := (quota.VictimGetP99Us - solo.VictimGetP99Us) / solo.VictimGetP99Us; p99Deg >= 0.10 {
		t.Fatalf("victim p99 degraded %.1f%% under a quota'd noisy neighbor, want < 10%% (solo %.1fus, quota %.1fus)",
			p99Deg*100, solo.VictimGetP99Us, quota.VictimGetP99Us)
	}
	if hitDeg := (solo.VictimHitRate - quota.VictimHitRate) / solo.VictimHitRate; hitDeg >= 0.10 {
		t.Fatalf("victim hit rate degraded %.1f%% under a quota'd noisy neighbor, want < 10%% (solo %.3f, quota %.3f)",
			hitDeg*100, solo.VictimHitRate, quota.VictimHitRate)
	}
	// Quota steering keeps the victim's footprint intact...
	if quota.VictimUsageBytes < solo.VictimUsageBytes*9/10 {
		t.Fatalf("victim footprint eroded despite quotas: %d B vs solo %d B",
			quota.VictimUsageBytes, solo.VictimUsageBytes)
	}
	// ...while the unquota'd churn demonstrably erodes it (the negative
	// space that proves the scenario exerts real pressure).
	if noQuota.VictimUsageBytes >= solo.VictimUsageBytes*3/4 {
		t.Fatalf("unquota'd churn did not pressure the victim: %d B vs solo %d B",
			noQuota.VictimUsageBytes, solo.VictimUsageBytes)
	}
	if quota.NoisyShedOps == 0 {
		t.Fatal("overload control never shed a batched write from the over-quota tenant")
	}
}

// TestJSONRefusesForeignOverwrite pins the -json clobber guard: a path
// holding a different scenario's artifact must be refused with a clear
// error, while re-running the same scenario refreshes it in place.
func TestJSONRefusesForeignOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_a.json"
	defer func() { JSONPath, jsonWrittenBy = "", "" }()

	JSONPath, jsonWrittenBy = path, ""
	var buf bytes.Buffer
	if err := writeJSONSummary(&buf, map[string]interface{}{"scenario": "aaa", "x": 1}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Same scenario, fresh invocation: refresh in place.
	JSONPath, jsonWrittenBy = path, ""
	if err := writeJSONSummary(&buf, map[string]interface{}{"scenario": "aaa", "x": 2}); err != nil {
		t.Fatalf("same-scenario refresh refused: %v", err)
	}
	// Different scenario, fresh invocation: must refuse, artifact intact.
	JSONPath, jsonWrittenBy = path, ""
	err := writeJSONSummary(&buf, map[string]interface{}{"scenario": "bbb"})
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("foreign overwrite not refused: %v", err)
	}
	blob, rerr := os.ReadFile(path)
	if rerr != nil || !strings.Contains(string(blob), `"aaa"`) || !strings.Contains(string(blob), `"x": 2`) {
		t.Fatalf("artifact damaged by refused write: %s", blob)
	}
	// Within one -all run the suffixing convention still applies: the
	// second scenario diverts to its own file rather than erroring.
	if err := writeJSONSummary(&buf, map[string]interface{}{"scenario": "aaa", "x": 3}); err != nil {
		t.Fatalf("registered-scenario rewrite: %v", err)
	}
	if err := writeJSONSummary(&buf, map[string]interface{}{"scenario": "ccc"}); err != nil {
		t.Fatalf("multi-scenario run diverted write failed: %v", err)
	}
	if _, err := os.Stat(dir + "/BENCH_a-ccc.json"); err != nil {
		t.Fatalf("diverted artifact missing: %v", err)
	}
}
