package adaptive

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ditto/internal/rdma"
	"ditto/internal/sim"
)

func TestDiscountRate(t *testing.T) {
	d := DiscountRate(1000)
	if d <= 0 || d >= 1 {
		t.Fatalf("d = %v", d)
	}
	if got := math.Pow(d, 1000); math.Abs(got-0.005) > 1e-9 {
		t.Fatalf("d^N = %v, want 0.005", got)
	}
	if DiscountRate(0) != DiscountRate(1) {
		t.Fatal("degenerate history size not clamped")
	}
}

func TestUniformStart(t *testing.T) {
	c := NewClient(Config{NumExperts: 4, HistorySize: 100}, nil)
	for _, w := range c.Weights() {
		if math.Abs(w-0.25) > 1e-12 {
			t.Fatalf("weights = %v", c.Weights())
		}
	}
}

func TestPenalizeShiftsWeight(t *testing.T) {
	c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1 << 30}, nil)
	for i := 0; i < 50; i++ {
		c.Penalize(0b01, 0) // expert 0 keeps regretting
	}
	w := c.Weights()
	if w[0] >= w[1] {
		t.Fatalf("penalized expert not demoted: %v", w)
	}
	if sum := w[0] + w[1]; math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights not normalized: %v", w)
	}
	if w[0] < minWeight-1e-12 {
		t.Fatalf("weight below floor: %v", w)
	}
}

func TestOlderRegretsPenalizedLess(t *testing.T) {
	fresh := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1 << 30}, nil)
	stale := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1 << 30}, nil)
	fresh.Penalize(0b01, 0)
	stale.Penalize(0b01, 100)
	if fresh.Weights()[0] >= stale.Weights()[0] {
		t.Fatalf("young regret %v should hit harder than old %v",
			fresh.Weights()[0], stale.Weights()[0])
	}
}

func TestBitmapPenalizesMultipleExperts(t *testing.T) {
	c := NewClient(Config{NumExperts: 3, HistorySize: 100, BatchSize: 1 << 30}, nil)
	c.Penalize(0b011, 0)
	w := c.Weights()
	if !(w[2] > w[0] && w[2] > w[1]) {
		t.Fatalf("weights = %v", w)
	}
	if math.Abs(w[0]-w[1]) > 1e-12 {
		t.Fatalf("equally-guilty experts diverged: %v", w)
	}
}

func TestPickExpertFollowsWeights(t *testing.T) {
	c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1 << 30}, nil)
	for i := 0; i < 200; i++ {
		c.Penalize(0b01, 0)
	}
	rng := rand.New(rand.NewSource(5))
	picks := [2]int{}
	for i := 0; i < 10000; i++ {
		picks[c.PickExpert(rng)]++
	}
	// Expert 0 is at the floor (~1%); it must be picked rarely but not never.
	if picks[0] == 0 {
		t.Fatal("floored expert never picked (cannot recover)")
	}
	if picks[0] > 1000 {
		t.Fatalf("demoted expert picked %d/10000 times", picks[0])
	}
}

func TestLazySyncBatches(t *testing.T) {
	env := sim.NewEnv(1)
	node := rdma.NewNode(env, 1<<12, rdma.DefaultConfig())
	svc := RegisterService(node, 2)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(node, p)
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 10}, ep)
		for i := 0; i < 35; i++ {
			c.Penalize(0b01, 0)
		}
		if c.Syncs != 3 {
			t.Errorf("syncs = %d, want 3 (batch of 10, 35 regrets)", c.Syncs)
		}
	})
	env.Run()
	if svc.Updates != 3 {
		t.Fatalf("controller updates = %d", svc.Updates)
	}
	g := svc.Global()
	if g[0] >= g[1] {
		t.Fatalf("global weights did not learn: %v", g)
	}
}

func TestEagerModeSyncsEveryRegret(t *testing.T) {
	env := sim.NewEnv(1)
	node := rdma.NewNode(env, 1<<12, rdma.DefaultConfig())
	RegisterService(node, 2)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(node, p)
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 100, Eager: true}, ep)
		for i := 0; i < 7; i++ {
			c.Penalize(0b10, 0)
		}
		if c.Syncs != 7 {
			t.Errorf("eager syncs = %d, want 7", c.Syncs)
		}
	})
	env.Run()
}

func TestGlobalAggregatesAcrossClients(t *testing.T) {
	// Two clients regret against different experts; the controller's global
	// view must reflect the imbalance (client A regrets expert 0 three
	// times as often).
	env := sim.NewEnv(1)
	node := rdma.NewNode(env, 1<<12, rdma.DefaultConfig())
	svc := RegisterService(node, 2)
	env.Go("a", func(p *sim.Proc) {
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 5}, rdma.NewEndpoint(node, p))
		for i := 0; i < 60; i++ {
			c.Penalize(0b01, 0)
			p.Sleep(sim.Microsecond)
		}
	})
	env.Go("b", func(p *sim.Proc) {
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 5}, rdma.NewEndpoint(node, p))
		for i := 0; i < 20; i++ {
			c.Penalize(0b10, 0)
			p.Sleep(3 * sim.Microsecond)
		}
	})
	env.Run()
	g := svc.Global()
	if g[0] >= g[1] {
		t.Fatalf("global weights = %v, expert 0 should be lighter", g)
	}
}

func TestSyncAdoptsGlobalWeights(t *testing.T) {
	env := sim.NewEnv(1)
	node := rdma.NewNode(env, 1<<12, rdma.DefaultConfig())
	RegisterService(node, 2)
	env.Go("warm", func(p *sim.Proc) {
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1}, rdma.NewEndpoint(node, p))
		for i := 0; i < 30; i++ {
			c.Penalize(0b01, 0)
		}
	})
	env.Run()
	var adopted Weights
	env.Go("fresh", func(p *sim.Proc) {
		c := NewClient(Config{NumExperts: 2, HistorySize: 100, BatchSize: 1}, rdma.NewEndpoint(node, p))
		c.Sync() // no local regrets: must still adopt the global view
		adopted = append(Weights{}, c.Weights()...)
	})
	env.Run()
	if adopted[0] >= adopted[1] {
		t.Fatalf("fresh client did not adopt global weights: %v", adopted)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero experts")
		}
	}()
	NewClient(Config{NumExperts: 0}, nil)
}

// Property: weights remain a valid distribution (sum 1, all >= floor)
// under arbitrary penalty sequences.
func TestWeightsStayNormalizedProperty(t *testing.T) {
	f := func(bitmaps []uint8, ages []uint8) bool {
		c := NewClient(Config{NumExperts: 3, HistorySize: 50, BatchSize: 1 << 30}, nil)
		for i, b := range bitmaps {
			age := uint64(0)
			if len(ages) > 0 {
				age = uint64(ages[i%len(ages)])
			}
			c.Penalize(uint64(b&0b111), age)
		}
		sum := 0.0
		for _, w := range c.Weights() {
			if w < minWeight-1e-9 || math.IsNaN(w) {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
