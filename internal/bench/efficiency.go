package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ditto/internal/baselines"
	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// cmOps adapts CMClient to CacheOps.
type cmOps struct{ c *baselines.CMClient }

func (k cmOps) Get(key []byte) ([]byte, bool) { return k.c.Get(key) }
func (k cmOps) Set(key, value []byte)         { k.c.Set(key, value) }

// dittoNoMissCluster builds a Ditto cluster big enough that the loaded key
// space never misses (the Figure 14/15 regime).
func dittoNoMissCluster(env *sim.Env, keys int, experts ...string) *core.Cluster {
	opts := core.DefaultOptions(keys*2, keys*512)
	if len(experts) > 0 {
		opts.Experts = experts
	}
	return core.NewCluster(env, opts)
}

// Fig13 reproduces Figure 13: Ditto's throughput while (a) CPU cores in
// the compute pool scale 32→64→32 and (b) the cache memory is grown —
// both without data migration, so the effect is immediate.
func Fig13(w io.Writer, scale Scale) error {
	header(w, "Figure 13: Ditto under dynamic resource adjustment (no migration)")
	phase := int64(scale.pick(15, 60)) * sim.Millisecond
	keys := scale.pick(8000, 100000)
	baseClients := scale.pick(24, 32)

	env := sim.NewEnv(3)
	cl := dittoNoMissCluster(env, keys)
	factory := DittoFactory(cl)
	reqs := make([]workload.Req, keys)
	for i := range reqs {
		reqs[i] = workload.Req{Key: uint64(i), Size: 256}
	}
	RunLoad(env, factory, reqs, 16)

	timeline := stats.NewTimeline(phase / 10)
	lat := &stats.Histogram{}
	t0 := env.Now()
	end := t0 + 3*phase
	spawn := func(i int, stop int64) {
		env.Go("client", func(p *sim.Proc) {
			c := cl.NewClient(p)
			g := workload.NewYCSB(workload.YCSBC, uint64(keys), 256)
			rng := rand.New(rand.NewSource(int64(i)))
			for p.Now() < stop {
				r := g.Next(rng)
				s := p.Now()
				c.Get(workload.KeyBytes(r.Key))
				lat.Record(p.Now() - s)
				timeline.Record(p.Now() - t0)
			}
		})
	}
	for i := 0; i < baseClients; i++ {
		spawn(i, end)
	}
	// Phase 2: double the compute pool; the extra clients stop at phase 3.
	env.GoAt(t0+phase, "scale-out", func(p *sim.Proc) {
		for i := 0; i < baseClients; i++ {
			spawn(1000+i, t0+2*phase)
		}
	})
	env.Run()

	fmt.Fprintf(w, "clients %d -> %d at t=%.0fms -> %d at t=%.0fms (immediate effect)\n",
		baseClients, 2*baseClients, float64(phase)/1e6, baseClients, float64(2*phase)/1e6)
	row(w, "t(ms)", "Mops")
	times, ops := timeline.Series()
	for i := range times {
		row(w, fmt.Sprintf("%.1f", times[i]*1e3), ops[i]/1e6)
	}
	fmt.Fprintf(w, "latency p50=%.1fus p99=%.1fus\n",
		float64(lat.Percentile(50))/1000, float64(lat.Percentile(99))/1000)

	// Memory elasticity: grow the heap mid-run; throughput must stay flat
	// (no migration, no disruption).
	header(w, "Figure 13 (memory): growing cache memory mid-run")
	env2 := sim.NewEnv(4)
	cl2 := dittoNoMissCluster(env2, keys)
	factory2 := DittoFactory(cl2)
	RunLoad(env2, factory2, reqs, 16)
	timeline2 := stats.NewTimeline(phase / 10)
	t0 = env2.Now()
	end2 := t0 + 2*phase
	for i := 0; i < baseClients; i++ {
		i := i
		env2.Go("client", func(p *sim.Proc) {
			c := cl2.NewClient(p)
			g := workload.NewYCSB(workload.YCSBC, uint64(keys), 256)
			rng := rand.New(rand.NewSource(int64(i)))
			for p.Now() < end2 {
				c.Get(workload.KeyBytes(g.Next(rng).Key))
				timeline2.Record(p.Now() - t0)
			}
		})
	}
	env2.GoAt(t0+phase, "grow-memory", func(p *sim.Proc) {
		cl2.GrowCache(keys * 256)
	})
	env2.Run()
	fmt.Fprintf(w, "cache grown +50%% at t=%.0fms\n", float64(phase)/1e6)
	row(w, "t(ms)", "Mops")
	times2, ops2 := timeline2.Series()
	for i := range times2 {
		row(w, fmt.Sprintf("%.1f", times2[i]*1e3), ops2[i]/1e6)
	}
	return nil
}

// Fig14 reproduces Figure 14: throughput and tail latency of Ditto,
// Shard-LRU, CM-LRU and CM-LFU on YCSB A–D with growing client counts, in
// the no-miss regime.
func Fig14(w io.Writer, scale Scale) error {
	keys := scale.pick(4000, 50000)
	baseOps := scale.pick(30000, 200000)
	clientCounts := []int{1, 8, 32, 64, 128}
	if scale == Full {
		clientCounts = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	}

	for _, kind := range []workload.YCSBKind{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBD} {
		header(w, fmt.Sprintf("Figure 14: %s throughput & p99 vs clients", kind))
		row(w, "clients", "Ditto(Mops)", "p99(us)", "ShardLRU", "p99(us)", "CM-LRU", "p99(us)", "CM-LFU", "p99(us)")
		for _, n := range clientCounts {
			per := baseOps / n
			if per < 150 {
				per = 150
			}
			d := runDittoYCSB(kind, keys, n, per)
			s := runShardLRUYCSB(kind, keys, n, per)
			cm1 := runCMYCSB(baselines.CMLRU, kind, keys, n, per)
			cm2 := runCMYCSB(baselines.CMLFU, kind, keys, n, per)
			row(w, fmt.Sprintf("%d", n),
				d.Mops(), d.P99(), s.Mops(), s.P99(),
				cm1.Mops(), cm1.P99(), cm2.Mops(), cm2.P99())
		}
	}
	return nil
}

func ycsbGen(kind workload.YCSBKind, keys int) func(int) workload.Generator {
	return func(int) workload.Generator { return workload.NewYCSB(kind, uint64(keys), 256) }
}

func loadKeys(keys int) []workload.Req {
	reqs := make([]workload.Req, keys)
	for i := range reqs {
		reqs[i] = workload.Req{Key: uint64(i), Size: 256}
	}
	return reqs
}

func runDittoYCSB(kind workload.YCSBKind, keys, clients, opsEach int) Result {
	env := sim.NewEnv(11)
	cl := dittoNoMissCluster(env, keys)
	factory := DittoFactory(cl)
	RunLoad(env, factory, loadKeys(keys), 16)
	return RunClosedLoop(env, factory, ycsbGen(kind, keys), clients, opsEach, 5)
}

func runShardLRUYCSB(kind workload.YCSBKind, keys, clients, opsEach int) Result {
	env := sim.NewEnv(12)
	c := baselines.NewShardLRU(env, keys*2, kvFabric())
	factory := func(p *sim.Proc) CacheOps { return kvOps{c.NewKVClient(p)} }
	RunLoad(env, factory, loadKeys(keys), 16)
	return RunClosedLoop(env, factory, ycsbGen(kind, keys), clients, opsEach, 5)
}

func runCMYCSB(algo baselines.CMAlgo, kind workload.YCSBKind, keys, clients, opsEach int) Result {
	env := sim.NewEnv(13)
	c := baselines.NewCMCluster(env, algo, keys*2, keys*512, baselines.CMFabric())
	factory := func(p *sim.Proc) CacheOps { return cmOps{c.NewCMClient(p)} }
	RunLoad(env, factory, loadKeys(keys), 16)
	return RunClosedLoop(env, factory, ycsbGen(kind, keys), clients, opsEach, 5)
}

// Fig15 reproduces Figure 15: throughput of CliqueMap, Redis and Ditto as
// MN-side CPU cores grow, on write-intensive YCSB-A and read-only YCSB-C.
// Ditto needs no MN compute, so its line is flat at the top.
func Fig15(w io.Writer, scale Scale) error {
	keys := scale.pick(4000, 50000)
	clients := scale.pick(64, 256)
	opsEach := scale.pick(600, 2000)
	coreCounts := []int{1, 4, 8, 16, 32}
	if scale == Quick {
		coreCounts = []int{1, 4, 16}
	}

	for _, kind := range []workload.YCSBKind{workload.YCSBA, workload.YCSBC} {
		header(w, fmt.Sprintf("Figure 15: %s throughput vs MN CPU cores (%d clients)", kind, clients))
		// Ditto does not use MN cores: measure once.
		d := runDittoYCSB(kind, keys, clients, opsEach)
		row(w, "cores", "CliqueMap", "Redis", "Ditto")
		for _, cores := range coreCounts {
			cm := runCMCores(kind, keys, clients, opsEach, cores)
			rd := runRedisYCSB(kind, keys, clients, opsEach, cores)
			row(w, fmt.Sprintf("%d", cores), cm.Mops(), rd.Mops(), d.Mops())
		}
	}
	return nil
}

func runCMCores(kind workload.YCSBKind, keys, clients, opsEach, cores int) Result {
	env := sim.NewEnv(14)
	fab := baselines.CMFabric()
	fab.CPUCores = cores
	c := baselines.NewCMCluster(env, baselines.CMLRU, keys*2, keys*512, fab)
	factory := func(p *sim.Proc) CacheOps { return cmOps{c.NewCMClient(p)} }
	RunLoad(env, factory, loadKeys(keys), 16)
	return RunClosedLoop(env, factory, ycsbGen(kind, keys), clients, opsEach, 5)
}

// redisOps adapts RedisClient to CacheOps using numeric keys parsed from
// the canonical key encoding.
type redisOps struct{ c *baselines.RedisClient }

func (r redisOps) Get(key []byte) ([]byte, bool) { return r.c.Get(keyOf(key)) }
func (r redisOps) Set(key, value []byte)         { r.c.Set(keyOf(key), value) }

// keyOf parses workload.KeyBytes ("k%015x").
func keyOf(key []byte) uint64 {
	var v uint64
	for _, c := range key[1:] {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v |= uint64(c-'a') + 10
		}
	}
	return v
}

func runRedisYCSB(kind workload.YCSBKind, keys, clients, opsEach, shards int) Result {
	env := sim.NewEnv(15)
	c := baselines.NewRedisCluster(env, shards, keys*2)
	factory := func(p *sim.Proc) CacheOps { return redisOps{c.NewRedisClient(p)} }
	RunLoad(env, factory, loadKeys(keys), 16)
	return RunClosedLoop(env, factory, ycsbGen(kind, keys), clients, opsEach, 5)
}
