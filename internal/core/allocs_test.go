//go:build !race

package core

import (
	"testing"

	"ditto/internal/sim"
)

// TestAllocsPerOpSmoke pins a generous ceiling on the Go allocations
// per serial-path Get and Set (sim bookkeeping included — every yield
// allocates an event). The point is not the exact figure but catching
// gross regressions: a per-op map, an unbounded buffer copy, or verb
// plans rebuilt per probe would blow well past these bounds. The counts
// are meaningless under the race detector, so the -race build gets a
// skipping twin (allocs_race_test.go).
func TestAllocsPerOpSmoke(t *testing.T) {
	env := sim.NewEnv(11)
	cl := NewCluster(env, DefaultOptions(1000, 1000*320))
	env.Go("meter", func(p *sim.Proc) {
		c := cl.NewClient(p)
		k, v := key(1), value(1)
		c.Set(k, v)
		gets := testing.AllocsPerRun(200, func() { c.Get(k) })
		sets := testing.AllocsPerRun(200, func() { c.Set(k, v) })
		t.Logf("allocs/op: get=%.1f set=%.1f", gets, sets)
		if gets > 60 {
			t.Errorf("Get allocates %.1f objects/op, ceiling 60", gets)
		}
		if sets > 120 {
			t.Errorf("Set allocates %.1f objects/op, ceiling 120", sets)
		}
	})
	env.Run()
}
