// Package analysis is Ditto's project-invariant analyzer framework: a
// self-contained, stdlib-only mirror of the golang.org/x/tools/go/analysis
// API surface that dittolint's checkers are written against.
//
// Six PRs of growth have produced load-bearing conventions — every verb
// sequence declared once as a plan (PR 3), seed-deterministic sim and
// chaos runs (PR 6), typed errors instead of panics on crash paths, the
// FC-cache pending-delta accounting (PR 2) — that were, until this
// package, enforced only by tests that had to imagine each regression in
// advance. The analyzers under internal/analysis/... encode those
// contracts as compiler-adjacent checks that fail CI on the violating
// line (cmd/dittolint is the driver).
//
// Why not depend on golang.org/x/tools directly? The build environment
// is offline and the module is dependency-free; x/tools is not in the
// module cache, so the dependency is gated: this package provides the
// same Analyzer/Pass/Reportf shape (plus a testdata-driven fixture
// runner, fixture.go, mirroring analysistest), and an analyzer written
// here ports to the x/tools API by changing imports only. The loader
// (loader.go) type-checks the module from source with go/types and the
// stdlib source importer; the vettool driver (unitchecker.go) speaks
// cmd/go's -vettool protocol using gc export data, so
// `go vet -vettool=$(dittolint) ./...` works exactly as it would with an
// x/tools multichecker.
//
// Suppression: a finding whose line (or the line above it) carries a
//
//	//dittolint:allow <analyzer> (reason)
//
// comment is dropped. The annotation names exactly one analyzer; the
// parenthesized reason is mandatory — an allowlisted violation with no
// stated reason is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one project-invariant check. It is the exact
// shape of golang.org/x/tools/go/analysis.Analyzer that dittolint uses,
// so checkers port between the two frameworks by changing imports.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// dittolint:allow annotations. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest states the invariant it encodes and which PR
	// introduced that invariant.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical
// "file:line:col: analyzer: message" form the CI job greps.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File

	// Path is the package's import path. Fixture packages (fixture.go)
	// may declare a synthetic path so package-scoped analyzers (simdet,
	// typederr) can be exercised outside their real directories.
	Path string

	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
	allow allowIndex
}

// Reportf records a finding at pos unless a dittolint:allow annotation
// for this analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowIndex records, per file and line, which analyzers a
// dittolint:allow comment suppresses. An annotation covers its own line
// and the line directly below it (so it can ride at end-of-line or as a
// comment above the statement).
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(analyzer string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// allowPrefix is the annotation marker. Like every Go pragma, the form
// is strict: the comment must start exactly with "//dittolint:allow"
// (no space after the slashes — prose that merely mentions the marker
// is not an annotation), and the reason is not optional.
const allowPrefix = "//dittolint:allow"

// buildAllowIndex scans the files' comments for dittolint:allow
// annotations. Malformed annotations (no analyzer name, or no
// parenthesized reason) are returned as diagnostics attributed to the
// pseudo-analyzer "allow", so a sloppy suppression fails the lint run
// instead of silently suppressing nothing.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if name == "" || !strings.HasPrefix(reason, "(") || !strings.HasSuffix(reason, ")") || len(reason) < 3 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "malformed dittolint:allow annotation: want //dittolint:allow <analyzer> (reason)",
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][name] = true
			}
		}
	}
	return idx, bad
}

// Run executes the analyzers over the package and returns their
// findings sorted by position. Malformed allow annotations are included
// as findings.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow, bad := buildAllowIndex(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			allow:    allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// ---------------------------------------------------------------------------
// Type-resolution helpers shared by the checkers.

// CalleeFunc resolves the *types.Func a call expression invokes —
// through a plain identifier, a package-qualified selector, or a method
// selector — or nil for builtins, conversions, and function-valued
// expressions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named Go builtin
// (e.g. "panic").
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// ReceiverNamed returns the defined type of fn's receiver (through one
// pointer indirection), or nil for package-level functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// FuncPkgPath returns the import path of the package declaring fn ("",
// for builtins and error.Error).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
