package core

// Eviction as verb plans: Serial/Doorbell equivalence of eviction
// batches, the occupancy-sized sample window (regression for the
// ExpectedObjects-based sizing that scanned blind windows on sparse
// tables), and the proactive background reclaimer.

import (
	"bytes"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
)

// TestEvictStrategiesEquivalent pins the tentpole equivalence: with the
// same starting state and seed, a batch of eviction plans reclaims
// exactly the same victims — same surviving keys, same stats, same
// expert weights — whether it runs under exec.Serial or exec.Doorbell.
// The plans pre-draw their randomness AND their priority-evaluation
// time at construction, so the strategies consume the same random
// sequence and time-dependent experts (Hyperbolic, and LRFU's
// extension metadata, which also exercises the plan's ext-READ stage)
// rank identically; the test additionally asserts that no attempt had
// to resample (EvictResamples == 0), which certifies the chosen seed
// exercises the collision-free regime where the equivalence is exact
// rather than statistical.
func TestEvictStrategiesEquivalent(t *testing.T) {
	for _, experts := range [][]string{
		{"LRU", "LFU"},
		{"LRU", "LRFU", "HYPERBOLIC"},
	} {
		t.Run(experts[len(experts)-1], func(t *testing.T) {
			testEvictStrategiesEquivalent(t, experts)
		})
	}
}

func testEvictStrategiesEquivalent(t *testing.T, experts []string) {
	const keys, evictions = 3000, 32
	run := func(strat exec.Strategy) (map[string]bool, Stats, []float64) {
		env := sim.NewEnv(17)
		cl := newTestCluster(env, 4000, experts...)
		survivors := make(map[string]bool)
		var st Stats
		var weights []float64
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for i := 0; i < keys; i++ {
				c.Set(key(i), value(i))
			}
			got := 0
			for got < evictions {
				got += c.evictBatch(8, strat)
			}
			st = c.Stats
			weights = append([]float64(nil), c.Weights()...)
			for i := 0; i < keys; i++ {
				pl := c.newGetPlan(key(i)) // stat-silent probe
				exec.RunSerial(pl)
				if pl.hit {
					survivors[string(key(i))] = true
				}
			}
		})
		env.Run()
		return survivors, st, weights
	}

	serialSurv, serialStats, serialW := run(exec.Serial)
	doorSurv, doorStats, doorW := run(exec.Doorbell)

	if serialStats.EvictResamples != 0 || doorStats.EvictResamples != 0 {
		t.Fatalf("seed hit victim collisions (resamples serial=%d doorbell=%d); equivalence not exact",
			serialStats.EvictResamples, doorStats.EvictResamples)
	}
	if serialStats.Evictions != evictions || doorStats.Evictions != evictions {
		t.Fatalf("evictions: serial=%d doorbell=%d, want %d",
			serialStats.Evictions, doorStats.Evictions, evictions)
	}
	if len(serialSurv) != len(doorSurv) {
		t.Fatalf("survivors differ: serial=%d doorbell=%d", len(serialSurv), len(doorSurv))
	}
	for k := range serialSurv {
		if !doorSurv[k] {
			t.Fatalf("key %s survived serial but not doorbell eviction", k)
		}
	}
	if serialStats.SampledSlots != doorStats.SampledSlots {
		t.Errorf("sampled slots differ: serial=%d doorbell=%d",
			serialStats.SampledSlots, doorStats.SampledSlots)
	}
	if len(serialW) != len(doorW) {
		t.Fatalf("weight vectors differ in length")
	}
	for i := range serialW {
		if serialW[i] != doorW[i] {
			t.Errorf("expert %d weight differs: serial=%v doorbell=%v", i, serialW[i], doorW[i])
		}
	}
}

// TestEvictionDoorbellBatchFaster pins the perf half: reclaiming many
// victims as doorbell-batched plans costs less virtual time than the
// same reclaim one verb per round trip.
func TestEvictionDoorbellBatchFaster(t *testing.T) {
	run := func(strat exec.Strategy) int64 {
		env := sim.NewEnv(23)
		cl := newTestCluster(env, 4000)
		var elapsed int64
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for i := 0; i < 800; i++ {
				c.Set(key(i), value(i))
			}
			start := p.Now()
			for got := 0; got < 64; {
				got += c.evictBatch(16, strat)
			}
			elapsed = p.Now() - start
		})
		env.Run()
		return elapsed
	}
	serialNs, doorNs := run(exec.Serial), run(exec.Doorbell)
	if doorNs >= serialNs {
		t.Fatalf("doorbell eviction not faster: %dns vs serial %dns", doorNs, serialNs)
	}
	t.Logf("64 evictions: serial=%dns doorbell=%dns (%.2fx)",
		serialNs, doorNs, float64(serialNs)/float64(doorNs))
}

// TestEvictWindowEmptyTable is the regression for the sample-window
// sizing: on an empty table the window must cover the whole table ONCE
// and conclude definitively that nothing is evictable, instead of
// burning the full resample budget on windows sized for the design load.
func TestEvictWindowEmptyTable(t *testing.T) {
	env := sim.NewEnv(3)
	cl := newTestCluster(env, 4000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		if c.evictOne() {
			t.Fatal("evicted from an empty cache")
		}
		n := int64(cl.Layout.NumSlots())
		if c.Stats.SampledSlots != n {
			t.Errorf("sampled %d slots on an empty table, want one full scan (%d)",
				c.Stats.SampledSlots, n)
		}
		if c.Stats.EvictResamples != 0 {
			t.Errorf("resampled %d times on an empty table, want 0", c.Stats.EvictResamples)
		}
	})
	env.Run()
}

// TestEvictWindowSparseTable checks the other half of the sizing fix:
// with live occupancy far below ExpectedObjects, the window grows to
// match so an eviction still lands within a few attempts. (The design-
// load sizing sampled ~k*(n/ExpectedObjects+1) slots — a few dozen out
// of ten thousand — and needed tens of resamples to find anything.)
func TestEvictWindowSparseTable(t *testing.T) {
	env := sim.NewEnv(3)
	cl := newTestCluster(env, 4000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		const sparse = 12
		for i := 0; i < sparse; i++ {
			c.Set(key(i), value(i))
		}
		if !c.evictOne() {
			t.Fatal("could not evict from a sparse table")
		}
		if c.Stats.EvictResamples > 8 {
			t.Errorf("sparse-table eviction needed %d resamples, want <= 8",
				c.Stats.EvictResamples)
		}
		// The key count must have dropped by exactly the one victim.
		live := 0
		for i := 0; i < sparse; i++ {
			pl := c.newGetPlan(key(i))
			exec.RunSerial(pl)
			if pl.hit {
				live++
			}
		}
		if live != sparse-1 {
			t.Errorf("live keys after one eviction: %d, want %d", live, sparse-1)
		}
	})
	env.Run()
}

// TestBackgroundReclaimerKeepsWritesUnstalled drives write-heavy churn
// at ~100% occupancy with the background reclaimer enabled and checks
// that (a) the reclaimer does the eviction work, (b) the client write
// path stays off the heap-pressure eviction chain (its only evictions
// are the unrelated bucket-pressure corner case), (c) the cache stays
// exact — recently written keys read back with their exact values — and
// (d) the node ends under its watermark regime. Objects are sized like
// the benches' (320-byte class) so the HEAP binds before the table does.
func TestBackgroundReclaimerKeepsWritesUnstalled(t *testing.T) {
	bigValue := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 240) }
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		t.Run(strat.String(), func(t *testing.T) {
			env := sim.NewEnv(7)
			cl := NewCluster(env, DefaultOptions(2000, 2000*320))
			cl.ReclaimStrategy = strat
			cl.EnableBackgroundReclaim(0, 0)
			env.Go("c", func(p *sim.Proc) {
				c := cl.NewClient(p)
				const span = 5000 // ~2.5x capacity: steady-state churn
				for i := 0; i < span; i++ {
					c.Set(key(i), bigValue(i))
				}
				// Whatever survived must be exact (a fresh key is a fair
				// LFU victim, so presence is not guaranteed — staleness
				// or corruption is what eviction must never cause).
				hits := 0
				for i := 0; i < span; i++ {
					if v, ok := c.Get(key(i)); ok {
						hits++
						if !bytes.Equal(v, bigValue(i)) {
							t.Fatalf("key %d stale under churn", i)
						}
					}
				}
				if hits < span/4 {
					t.Fatalf("only %d/%d keys survived churn in a cache sized for ~%d", hits, span, 2000)
				}
				if heapEvicts := c.Stats.Evictions - c.Stats.BucketEvictions; heapEvicts > 0 {
					t.Errorf("client evicted %d victims inline for heap pressure; reclaimer should carry the load",
						heapEvicts)
				}
				t.Logf("client: %d bucket evictions, %d stall ticks (%dns stalled)",
					c.Stats.BucketEvictions, c.Stats.WriteStallTicks, c.Stats.WriteStallNs)
			})
			env.Run()
			rs := cl.ReclaimerStats()
			if rs.Evictions == 0 {
				t.Fatal("background reclaimer evicted nothing")
			}
			if rs.ReclaimerWakeups == 0 {
				t.Error("reclaimer wakeups not counted")
			}
			if cl.MN.OverBudget() {
				t.Error("node still over budget after the run")
			}
			t.Logf("reclaimer: %d evictions, %d wakeups, %d sampled slots",
				rs.Evictions, rs.ReclaimerWakeups, rs.SampledSlots)
		})
	}
}

// TestReclaimerDrainsShrink checks that ShrinkCache pressure is drained
// by the reclaimer alone: the shrink kicks it, and the heap is back
// under budget without any client write absorbing eviction work.
func TestReclaimerDrainsShrink(t *testing.T) {
	env := sim.NewEnv(5)
	cl := newTestCluster(env, 2000)
	cl.EnableBackgroundReclaim(0, 0)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 1500; i++ {
			c.Set(key(i), value(i))
		}
		// Shrink the heap to half the LIVE bytes: the node is now deeply
		// over budget, and no further writes run — the reclaimer must
		// drain the deficit alone off the shrink's kick.
		cl.ShrinkCache(cl.MN.HeapBytes() - cl.MN.UsedBytes/2)
	})
	env.Run()
	if cl.MN.OverBudget() {
		t.Fatalf("still over budget after shrink: free=%d", cl.MN.FreeBytes())
	}
	if cl.ReclaimerStats().Evictions == 0 {
		t.Fatal("reclaimer evicted nothing after shrink")
	}
}
