module ditto

go 1.24
