// Vettool-protocol driver: lets cmd/dittolint run under
// `go vet -vettool=...`, mirroring x/tools' unitchecker without the
// x/tools dependency.
//
// cmd/go drives a vettool in three steps: `tool -V=full` for a version
// stamp (build-cache key), `tool -flags` for the JSON description of
// analyzer flags (dittolint has none), then one invocation per package
// with a JSON config file argument ending in ".cfg". The config names
// the package's Go files and maps every import to the gc export data
// cmd/go already compiled, so type-checking here is exact and fast (no
// source re-typechecking). Dependencies are visited with VetxOnly set —
// they exist only to produce analysis facts, which dittolint's
// analyzers do not use — so for them the driver just writes an empty
// facts file and exits.

package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// VetConfig is the JSON schema cmd/go writes for each vetted package
// (a subset of x/tools unitchecker.Config: the fields dittolint needs).
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVettool executes one vettool-protocol invocation against cfgFile
// and exits the process with vet's conventions: 0 clean, 1 findings,
// 2 driver failure.
func RunVettool(cfgFile string, analyzers []*Analyzer) {
	code, err := vetUnit(cfgFile, analyzers, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// vetUnit analyzes the package described by cfgFile, printing findings
// to w. Returns the process exit code.
func vetUnit(cfgFile string, analyzers []*Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// The facts file must exist even when there is nothing to report —
	// cmd/go reads it unconditionally. Dittolint's analyzers are
	// fact-free, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependencies are visited for facts only.
		return 0, nil
	}
	// For a package with tests, cmd/go drives the TEST VARIANTS as the
	// package's vet actions: "p [p.test]" (the package's own files plus
	// its in-package _test.go files) and "p_test [p.test]" (external
	// tests), while the plain "p" unit appears only as a VetxOnly
	// dependency. The conventions exempt test code but must still bind
	// the package's own files, so the unit is analyzed under its LOGICAL
	// import path (the part before " [", which package-scoped analyzers
	// key on) and findings in _test.go files are dropped afterwards.
	// Units with no non-test files (external test packages, the
	// generated .test main) are skipped outright.
	logical, _, _ := strings.Cut(cfg.ImportPath, " [")
	if strings.HasSuffix(logical, ".test") || !hasNonTestFiles(&cfg) {
		return 0, nil
	}
	pkg, err := typecheckUnit(&cfg, logical)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	reported := 0
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue // tests may issue raw verbs, use wall-clock time, and panic freely
		}
		fmt.Fprintln(w, d)
		reported++
	}
	if reported > 0 {
		return 1, nil
	}
	return 0, nil
}

// hasNonTestFiles reports whether the unit contains any non-_test.go
// file the conventions bind.
func hasNonTestFiles(cfg *VetConfig) bool {
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}

// typecheckUnit parses and type-checks the unit's files against the gc
// export data cmd/go supplied. logical is the unit's import path with
// any " [p.test]" variant suffix stripped — the path analyzers key on.
func typecheckUnit(cfg *VetConfig, logical string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(importPath)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(logical, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return &Package{
		Path:  logical,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
