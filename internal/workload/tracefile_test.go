package workload

import (
	"strings"
	"testing"
)

func TestLoadTwitterTrace(t *testing.T) {
	data := `# comment
0,keyA,8,100,1,get,0
1,keyB,8,200,1,set,3600
2,keyA,8,100,2,get,0
3,keyC,8,50,1,gets,0
`
	reqs, err := LoadTwitterTrace(strings.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("got %d reqs", len(reqs))
	}
	if reqs[0].Key != reqs[2].Key {
		t.Error("same key interned to different ids")
	}
	if reqs[0].Key == reqs[1].Key {
		t.Error("different keys collided")
	}
	if !reqs[1].Write || reqs[0].Write || reqs[3].Write {
		t.Errorf("op parsing wrong: %+v", reqs)
	}
	if reqs[0].Size != 108 || reqs[1].Size != 208 {
		t.Errorf("sizes wrong: %d %d", reqs[0].Size, reqs[1].Size)
	}
}

func TestLoadTwitterTraceTruncates(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("0,k,8,100,1,get,0\n")
	}
	reqs, err := LoadTwitterTrace(strings.NewReader(sb.String()), 10)
	if err != nil || len(reqs) != 10 {
		t.Fatalf("got %d reqs, err %v", len(reqs), err)
	}
}

func TestLoadTwitterTraceMalformed(t *testing.T) {
	if _, err := LoadTwitterTrace(strings.NewReader("only,three,fields\n"), 0); err == nil {
		t.Fatal("no error for malformed line")
	}
}

func TestLoadCSVTraceWithHeader(t *testing.T) {
	data := `key,size,op
a,128,get
b,256,set
a,128,get
`
	reqs, err := LoadCSVTrace(strings.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d reqs (header not skipped?)", len(reqs))
	}
	if reqs[0].Size != 128 || !reqs[1].Write || reqs[1].Size != 256 {
		t.Errorf("parse wrong: %+v", reqs)
	}
	if reqs[0].Key != reqs[2].Key {
		t.Error("interning broken")
	}
}

func TestLoadCSVTraceBareKeys(t *testing.T) {
	reqs, err := LoadCSVTrace(strings.NewReader("1001\n1002\n1001\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d reqs", len(reqs))
	}
	if reqs[0].Size != DefaultObjectSize {
		t.Errorf("default size not applied: %d", reqs[0].Size)
	}
	if Footprint(reqs) != 2 {
		t.Errorf("footprint = %d", Footprint(reqs))
	}
}

func TestLoadedTraceRunsThroughSimulator(t *testing.T) {
	data := `key,size
hot,64
hot,64
cold1,64
hot,64
cold2,64
hot,64
`
	reqs, err := LoadCSVTrace(strings.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Footprint(reqs); got != 3 {
		t.Fatalf("footprint = %d", got)
	}
	shards := Shard(reqs, 2)
	if len(Interleave(shards)) != len(reqs) {
		t.Fatal("shard/interleave lost requests")
	}
}
