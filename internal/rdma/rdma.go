// Package rdma simulates the CPU-bypass fabric that Ditto assumes between
// the compute pool and the memory pool of a disaggregated-memory (DM)
// cluster.
//
// The paper's protocols are defined entirely in terms of one-sided RDMA
// verbs (READ, WRITE, ATOMIC_CAS, ATOMIC_FAA) against memory-node (MN)
// memory, plus an RPC channel to the MN's weak controller CPU. This package
// provides exactly those primitives on top of the virtual-time kernel in
// internal/sim:
//
//   - every synchronous verb costs one round trip (Config.RTT) plus queueing
//     on the MN RNIC, which is modelled as a message-rate-limited resource —
//     the bottleneck the paper identifies for Ditto itself;
//   - RPCs additionally queue on the MN CPU resource — the bottleneck the
//     paper identifies for CliqueMap and Redis-like designs;
//   - CAS and FAA have exact atomic semantics (only one process runs at any
//     virtual instant, and verbs interleave at event boundaries exactly as
//     concurrent one-sided verbs interleave on real hardware).
//
// Functional behaviour is real (bytes actually move); only time is
// simulated.
package rdma

import (
	"encoding/binary"
	"fmt"

	"ditto/internal/sim"
)

// Config holds the fabric's timing model. The defaults are calibrated so
// that the reproduction exhibits the paper's resource-saturation shapes
// (see DESIGN.md §2): a ~2 µs RTT and an RNIC message rate in the tens of
// millions of messages per second, against MN CPU cores that serve roughly
// half a million RPCs per second each.
type Config struct {
	// RTT is the network round-trip time charged to every synchronous verb.
	RTT int64
	// MsgSvc is the MN RNIC service time per message (1/message-rate).
	MsgSvc int64
	// ByteSvcNs is the additional RNIC service time per payload byte,
	// in nanoseconds (fractional; models link bandwidth).
	ByteSvcNs float64
	// NICUnits is the number of parallel RNIC processing units.
	NICUnits int
	// CPUCores is the number of MN CPU cores available to the controller.
	CPUCores int
	// RPCSvc is the base MN CPU time consumed by one RPC.
	RPCSvc int64
	// RPCByteSvcNs is additional MN CPU time per RPC payload byte.
	RPCByteSvcNs float64
	// FailTimeout is how long a client waits on a failed node before
	// surfacing NodeUnreachableError; 0 means 10×RTT (see fault.go).
	FailTimeout int64
}

// DefaultConfig returns the calibration used throughout the evaluation
// harness.
func DefaultConfig() Config {
	return Config{
		RTT:          2 * sim.Microsecond,
		MsgSvc:       25,   // 40 M messages/s aggregate
		ByteSvcNs:    0.02, // small-message regime: message rate, not bandwidth, binds
		NICUnits:     1,
		CPUCores:     1, // the paper uses 1 core to model weak MN compute
		RPCSvc:       1500,
		RPCByteSvcNs: 0.5,
	}
}

// Stats counts fabric operations, used by tests and by the ablation
// experiments to verify how many verbs each protocol issues.
type Stats struct {
	Reads      int64
	Writes     int64
	CASes      int64
	FAAs       int64
	RPCs       int64
	AsyncOps   int64
	ReadBytes  int64
	WriteBytes int64

	// DoorbellBatches counts PostBatch calls; BatchedVerbs counts the
	// verbs they carried (those verbs are also counted in their per-kind
	// counters above).
	DoorbellBatches int64
	BatchedVerbs    int64
}

// Total returns the total number of verbs (including RPCs).
func (s *Stats) Total() int64 {
	return s.Reads + s.Writes + s.CASes + s.FAAs + s.RPCs
}

// Handler serves an RPC opcode on the memory node's controller.
type Handler func(payload []byte) []byte

// Node is a memory node: registered memory, an RNIC, and a weak controller
// CPU that serves RPCs. All state is safe to access from any sim process
// because only one process runs at a time.
type Node struct {
	env      *sim.Env
	mem      []byte
	nic      *sim.Resource
	cpu      *sim.Resource
	handlers map[uint8]Handler
	cfg      Config
	down     bool // fail-stop: set by Fail, cleared by Restart (fault.go)

	// Name optionally labels the node in NodeUnreachableError messages.
	Name string

	// Stats accumulates verb counts across all endpoints.
	Stats Stats
}

// NewNode creates a memory node with size bytes of registered memory.
func NewNode(env *sim.Env, size int, cfg Config) *Node {
	if cfg.NICUnits < 1 {
		cfg.NICUnits = 1
	}
	if cfg.CPUCores < 1 {
		cfg.CPUCores = 1
	}
	return &Node{
		env:      env,
		mem:      make([]byte, size),
		nic:      sim.NewResource(env, cfg.NICUnits),
		cpu:      sim.NewResource(env, cfg.CPUCores),
		handlers: make(map[uint8]Handler),
		cfg:      cfg,
	}
}

// Env returns the node's simulation environment.
func (n *Node) Env() *sim.Env { return n.env }

// Config returns the node's timing configuration.
func (n *Node) Config() Config { return n.cfg }

// MemSize returns the size of the registered region in bytes.
func (n *Node) MemSize() int { return len(n.mem) }

// CPU exposes the controller CPU resource so experiments can scale MN cores
// (Figure 15) or inspect utilization.
func (n *Node) CPU() *sim.Resource { return n.cpu }

// NIC exposes the RNIC resource for utilization inspection.
func (n *Node) NIC() *sim.Resource { return n.nic }

// Handle registers an RPC handler for an opcode. Registering the same
// opcode twice panics: opcodes are a static protocol.
func (n *Node) Handle(op uint8, h Handler) {
	if _, dup := n.handlers[op]; dup {
		//dittolint:allow typederr (protocol-misuse guard: opcodes are a static protocol, registered at startup)
		panic(fmt.Sprintf("rdma: duplicate RPC opcode %d", op))
	}
	n.handlers[op] = h
}

func (n *Node) check(addr uint64, length int) {
	if length < 0 || addr+uint64(length) > uint64(len(n.mem)) {
		//dittolint:allow typederr (memory-safety guard: an out-of-region verb is a client bug, the simulated NIC's local protection fault)
		panic(fmt.Sprintf("rdma: access [%d,+%d) outside region of %d bytes",
			addr, length, len(n.mem)))
	}
}

func (n *Node) msgSvc(bytes int) int64 {
	return n.cfg.MsgSvc + int64(n.cfg.ByteSvcNs*float64(bytes))
}

// Endpoint is a client-side queue pair bound to one sim process. Verbs
// advance that process's virtual time.
type Endpoint struct {
	node *Node
	p    *sim.Proc
}

// NewEndpoint connects process p to the node.
func NewEndpoint(node *Node, p *sim.Proc) *Endpoint {
	return &Endpoint{node: node, p: p}
}

// Proc returns the owning process.
func (e *Endpoint) Proc() *sim.Proc { return e.p }

// Node returns the remote node.
func (e *Endpoint) Node() *Node { return e.node }

// Read performs a one-sided RDMA_READ of length bytes at addr and returns a
// copy of the data as observed at completion time.
func (e *Endpoint) Read(addr uint64, length int) []byte {
	return e.doSync(BatchOp{Kind: BatchRead, Addr: addr, Len: length}).Data
}

// ReadInto is Read delivering into buf when buf has capacity for length
// bytes (the returned slice then aliases buf); otherwise it allocates as
// Read does. Same cost model and completion semantics as Read.
func (e *Endpoint) ReadInto(addr uint64, length int, buf []byte) []byte {
	return e.doSync(BatchOp{Kind: BatchRead, Addr: addr, Len: length, Buf: buf}).Data
}

// Write performs a one-sided RDMA_WRITE and waits for completion.
func (e *Endpoint) Write(addr uint64, data []byte) {
	e.doSync(BatchOp{Kind: BatchWrite, Addr: addr, Data: data})
}

// WriteAsync posts an RDMA_WRITE without waiting for its completion (the
// paper uses unsignalled writes for metadata off the critical path). The
// message still consumes RNIC capacity; the data is applied immediately,
// which is a benign simplification for metadata that only this client
// updates in the window.
func (e *Endpoint) WriteAsync(addr uint64, data []byte) {
	e.doAsync(BatchOp{Kind: BatchWrite, Addr: addr, Data: data})
}

// CAS atomically compares-and-swaps the 8-byte word at addr. It returns the
// value observed before the operation and whether the swap happened.
func (e *Endpoint) CAS(addr uint64, expect, swap uint64) (old uint64, swapped bool) {
	res := e.doSync(BatchOp{Kind: BatchCAS, Addr: addr, Expect: expect, Swap: swap})
	return res.Old, res.Swapped
}

// FAA atomically fetches-and-adds delta to the 8-byte word at addr,
// returning the previous value.
func (e *Endpoint) FAA(addr uint64, delta uint64) uint64 {
	return e.doSync(BatchOp{Kind: BatchFAA, Addr: addr, Delta: delta}).Old
}

// FAAAsync posts a fetch-and-add without waiting (used by the FC cache when
// flushing combined frequency updates off the critical path).
func (e *Endpoint) FAAAsync(addr uint64, delta uint64) {
	e.doAsync(BatchOp{Kind: BatchFAA, Addr: addr, Delta: delta})
}

// doSync issues one verb, blocks for queueing plus one RTT, and applies
// its effect at completion time — the single-verb degenerate case of the
// shared issue/apply machinery below.
func (e *Endpoint) doSync(op BatchOp) BatchResult {
	n := e.node
	if n.down {
		n.unreachable(e.p)
	}
	end := n.issueOp(&op)
	e.p.SleepUntil(end + n.cfg.RTT)
	if n.down {
		// Failed mid-flight: the completion never arrives, the effect
		// never applies.
		n.unreachable(e.p)
	}
	var res BatchResult
	n.applyOp(&op, &res)
	return res
}

// doAsync issues one verb without waiting for its completion. The message
// consumes RNIC capacity exactly as a batched or synchronous verb would
// (same issueOp/applyOp machinery, same stat accounting); only the
// completion wait is skipped.
func (e *Endpoint) doAsync(op BatchOp) {
	n := e.node
	if n.down {
		// Even an unsignalled post is detected eventually; model it as
		// detected at post time so async metadata paths fail loudly.
		n.unreachable(e.p)
	}
	n.Stats.AsyncOps++
	n.issueOp(&op)
	var res BatchResult
	n.applyOp(&op, &res)
}

// BatchKind selects the verb of one entry in a doorbell batch.
type BatchKind uint8

// Verbs a doorbell batch may carry.
const (
	BatchRead BatchKind = iota
	BatchWrite
	BatchCAS
	BatchFAA
)

// BatchOp describes one verb in a doorbell batch. Fields beyond Kind and
// Addr are per-kind: Len for reads, Data for writes, Expect/Swap for CAS,
// Delta for FAA.
type BatchOp struct {
	Kind   BatchKind
	Addr   uint64
	Len    int    // BatchRead: bytes to fetch
	Data   []byte // BatchWrite: payload
	Expect uint64 // BatchCAS: compare value
	Swap   uint64 // BatchCAS: swap value
	Delta  uint64 // BatchFAA: addend

	// Buf, when it has capacity for Len bytes, receives a BatchRead's
	// data in place of a fresh allocation (BatchResult.Data then aliases
	// it). Pooled verb plans pass their own scratch here; leaving Buf nil
	// preserves the classic allocate-per-read behaviour.
	Buf []byte
}

// BatchResult is the completion of one BatchOp.
type BatchResult struct {
	Data    []byte // BatchRead: the fetched bytes
	Old     uint64 // BatchCAS / BatchFAA: value observed before the op
	Swapped bool   // BatchCAS: whether the swap took effect
}

// issueOp validates one verb, records its stats, and acquires its RNIC
// message service, returning the completion time. Every verb path —
// synchronous singles, asynchronous (unsignalled) singles, and doorbell
// batches — goes through this one function, so they all share one cost
// model and one stat-accounting convention.
func (n *Node) issueOp(op *BatchOp) int64 {
	var bytes int
	switch op.Kind {
	case BatchRead:
		n.check(op.Addr, op.Len)
		n.Stats.Reads++
		n.Stats.ReadBytes += int64(op.Len)
		bytes = op.Len
	case BatchWrite:
		n.check(op.Addr, len(op.Data))
		n.Stats.Writes++
		n.Stats.WriteBytes += int64(len(op.Data))
		bytes = len(op.Data)
	case BatchCAS:
		n.check(op.Addr, 8)
		n.Stats.CASes++
		bytes = 8
	case BatchFAA:
		n.check(op.Addr, 8)
		n.Stats.FAAs++
		bytes = 8
	default:
		//dittolint:allow typederr (protocol-misuse guard: BatchOp kinds are a closed enum)
		panic(fmt.Sprintf("rdma: unknown batch op kind %d", op.Kind))
	}
	return n.nic.Acquire(n.msgSvc(bytes))
}

// applyOp performs one issued verb's effect and fills its completion.
// Effects take hold when this runs — at completion time for synchronous
// and batched verbs (the caller slept first), immediately for
// asynchronous ones.
func (n *Node) applyOp(op *BatchOp, res *BatchResult) {
	switch op.Kind {
	case BatchRead:
		out := op.Buf
		if cap(out) < op.Len {
			out = make([]byte, op.Len)
		} else {
			out = out[:op.Len]
		}
		copy(out, n.mem[op.Addr:op.Addr+uint64(op.Len)])
		res.Data = out
	case BatchWrite:
		copy(n.mem[op.Addr:op.Addr+uint64(len(op.Data))], op.Data)
	case BatchCAS:
		old := binary.LittleEndian.Uint64(n.mem[op.Addr:])
		res.Old = old
		if old == op.Expect {
			binary.LittleEndian.PutUint64(n.mem[op.Addr:], op.Swap)
			res.Swapped = true
		}
	case BatchFAA:
		old := binary.LittleEndian.Uint64(n.mem[op.Addr:])
		res.Old = old
		binary.LittleEndian.PutUint64(n.mem[op.Addr:], old+op.Delta)
	}
}

// PostBatch posts N verbs with ONE RNIC doorbell and waits for all of
// their completions. This is the doorbell-batching cost model: every verb
// still consumes RNIC capacity (the message rate binds exactly as for
// individual verbs), but the round trips overlap — the caller blocks
// until the LAST completion plus one RTT instead of paying queueing plus
// an RTT per verb. All effects take hold at completion time in posting
// order, matching in-order execution on one queue pair: a read posted
// after a write in the same batch observes that write.
func (e *Endpoint) PostBatch(ops []BatchOp) []BatchResult {
	if len(ops) == 0 {
		return nil
	}
	n := e.node
	if n.down {
		n.unreachable(e.p)
	}
	n.Stats.DoorbellBatches++
	n.Stats.BatchedVerbs += int64(len(ops))
	var last int64
	for i := range ops {
		if end := n.issueOp(&ops[i]); end > last {
			last = end
		}
	}
	e.p.SleepUntil(last + n.cfg.RTT)
	if n.down {
		// Atomic batch failure: the node died before completion, so NONE
		// of the batch's effects apply.
		n.unreachable(e.p)
	}
	res := make([]BatchResult, len(ops))
	for i := range ops {
		n.applyOp(&ops[i], &res[i])
	}
	return res
}

// EndpointBatch is one endpoint's share of a multi-endpoint doorbell
// round: the ops to post on that endpoint's queue pair.
type EndpointBatch struct {
	EP  *Endpoint
	Ops []BatchOp

	// Res receives the completions when the round is posted with
	// PostMultiInPlace: resized (reusing capacity) to len(Ops), or set
	// nil for a batch whose node was down. PostMulti ignores it.
	Res []BatchResult
}

// PostMulti posts one doorbell batch per entry and overlaps the round
// trips ACROSS endpoints as well as within each batch: queue pairs to
// different nodes are independent, so all verbs are issued up front and
// the caller sleeps once, until the latest completion (per-node RTTs may
// differ). Effects apply in posting order, batches in entry order. Every
// endpoint must belong to the same process — the caller's.
func PostMulti(batches []EndpointBatch) [][]BatchResult {
	out := make([][]BatchResult, len(batches))
	postMulti(batches, out)
	return out
}

// PostMultiInPlace is PostMulti writing completions into each entry's Res
// slice (reusing its capacity) instead of allocating a fresh result set —
// the form the pooled doorbell runner uses so a steady-state round
// allocates nothing. Timing, ordering, and failure semantics are
// identical to PostMulti.
func PostMultiInPlace(batches []EndpointBatch) {
	postMulti(batches, nil)
}

// postMulti issues, sleeps, and applies one multi-endpoint round. When
// out is non-nil the bi-th batch's completions go to freshly allocated
// out[bi]; otherwise they go to batches[bi].Res, resized in place.
func postMulti(batches []EndpointBatch, out [][]BatchResult) {
	var p *sim.Proc
	var last int64
	var downNode *Node
	for _, b := range batches {
		if len(b.Ops) == 0 {
			continue
		}
		n := b.EP.node
		if p == nil {
			p = b.EP.p
		} else if p != b.EP.p {
			//dittolint:allow typederr (API-misuse guard: a doorbell round belongs to one process)
			panic("rdma: PostMulti endpoints span processes")
		}
		if n.down {
			// Dead queue pair: nothing issues; the whole round fails
			// after the live batches complete (real QPs are independent).
			downNode = n
			continue
		}
		n.Stats.DoorbellBatches++
		n.Stats.BatchedVerbs += int64(len(b.Ops))
		for i := range b.Ops {
			if end := n.issueOp(&b.Ops[i]) + n.cfg.RTT; end > last {
				last = end
			}
		}
	}
	if p == nil {
		return
	}
	p.SleepUntil(last)
	for bi := range batches {
		b := &batches[bi]
		n := b.EP.node
		if n.down {
			// Down at post time or failed mid-flight: none of this
			// batch's effects apply. Live siblings still complete —
			// callers must treat a failed fan-out as partially applied.
			downNode = n
			if out != nil {
				out[bi] = nil
			} else {
				b.Res = nil
			}
			continue
		}
		var res []BatchResult
		if out != nil {
			res = make([]BatchResult, len(b.Ops))
			out[bi] = res
		} else {
			if cap(b.Res) < len(b.Ops) {
				b.Res = make([]BatchResult, len(b.Ops))
			} else {
				b.Res = b.Res[:len(b.Ops)]
			}
			res = b.Res
			for i := range res {
				res[i] = BatchResult{}
			}
		}
		for i := range b.Ops {
			n.applyOp(&b.Ops[i], &res[i])
		}
	}
	if downNode != nil {
		downNode.unreachable(p)
	}
}

// RPC sends a request to the MN controller and returns its reply. The
// request consumes two NIC messages (request + reply) and queues on the MN
// CPU, which is the scarce resource the paper's baselines saturate.
func (e *Endpoint) RPC(op uint8, payload []byte) []byte {
	n := e.node
	h, ok := n.handlers[op]
	if !ok {
		//dittolint:allow typederr (protocol-misuse guard: opcodes are a static protocol)
		panic(fmt.Sprintf("rdma: no handler for RPC opcode %d", op))
	}
	if n.down {
		n.unreachable(e.p)
	}
	n.Stats.RPCs++
	n.nic.Acquire(n.msgSvc(len(payload)))
	svc := n.cfg.RPCSvc + int64(n.cfg.RPCByteSvcNs*float64(len(payload)))
	end := n.cpu.Acquire(svc)
	reply := h(payload)
	n.nic.Acquire(n.msgSvc(len(reply)))
	e.p.SleepUntil(end + n.cfg.RTT)
	if n.down {
		// The controller died before the reply arrived. The handler may
		// have executed — classic RPC ambiguity — but the node's state
		// is lost with it, so callers just see the timeout.
		n.unreachable(e.p)
	}
	return reply
}

// Mem returns direct access to the registered region. It exists for
// server-side components that legitimately live on the node (the
// controller, or the monolithic-server baselines) and for tests; client
// protocols must never touch it.
func (n *Node) Mem() []byte { return n.mem }

// Uint64At reads an 8-byte little-endian word server-side (no cost).
func (n *Node) Uint64At(addr uint64) uint64 {
	n.check(addr, 8)
	return binary.LittleEndian.Uint64(n.mem[addr:])
}

// PutUint64At writes an 8-byte little-endian word server-side (no cost).
func (n *Node) PutUint64At(addr uint64, v uint64) {
	n.check(addr, 8)
	binary.LittleEndian.PutUint64(n.mem[addr:], v)
}
