// Command dittobench regenerates the tables and figures of the Ditto
// paper's evaluation (SOSP 2023) on the simulated disaggregated-memory
// substrate.
//
// Usage:
//
//	dittobench -list
//	dittobench -fig 14                 # one figure, quick scale
//	dittobench -fig 14 -scale full     # paper-relative scale
//	dittobench -table 3
//	dittobench -all [-scale full]
//
// Output is plain text: the same rows/series each figure plots. See
// EXPERIMENTS.md for measured-vs-paper comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"ditto/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure number to regenerate (e.g. 14)")
		table    = flag.String("table", "", "table number to regenerate (e.g. 3)")
		scenario = flag.String("scenario", "", "named scenario to run by ID (e.g. chaos, churn, hotspot; see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs")
		scaleFl  = flag.String("scale", "quick", "experiment scale: quick | full")
		jsonFl   = flag.String("json", "", "also write a machine-readable summary to this path (scenarios that support it)")
		seedFl   = flag.Int64("seed", 0, "override every scenario's built-in simulation seed (0 = per-scenario defaults); pins bench-smoke artifacts across CI reruns")
	)
	flag.Parse()
	bench.JSONPath = *jsonFl
	bench.Seed = *seedFl

	scale, err := bench.ParseScale(*scaleFl)
	if err != nil {
		fatal(err)
	}

	switch {
	case *list:
		for _, id := range bench.IDs() {
			fmt.Printf("%-16s %s\n", id, bench.Describe(id))
		}
	case *all:
		if err := bench.RunAll(os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *fig != "":
		if err := bench.Run(*fig, os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *scenario != "":
		if err := bench.Run(*scenario, os.Stdout, scale); err != nil {
			fatal(err)
		}
	case *table != "":
		if err := bench.Run("table"+*table, os.Stdout, scale); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dittobench:", err)
	os.Exit(1)
}
