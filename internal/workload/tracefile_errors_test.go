package workload

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// Table-driven error-path coverage for the trace loaders: malformed
// lines, truncated numeric fields, maxReqs truncation, and lines that
// brush against (and exceed) the 1<<20 scanner buffer.

func TestLoadTwitterTraceErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		maxReqs int
		wantN   int  // requests expected when wantErr is false
		wantErr bool // any error
	}{
		{"empty-input", "", 0, 0, false},
		{"only-comments-and-blanks", "# a comment\n\n   \n# another\n", 0, 0, false},
		{"one-field", "justakey\n", 0, 0, true},
		{"five-fields", "0,k,8,100,1\n", 0, 0, true},
		{"malformed-after-good-line", "0,k,8,100,1,get,0\nbad,line\n", 0, 0, true},
		{"six-fields-no-ttl-ok", "0,k,8,100,1,get\n", 0, 1, false},
		// Truncated / non-numeric size fields fall back to the default
		// object size rather than erroring: real traces have holes.
		{"non-numeric-sizes", "0,k,?,?,1,get,0\n", 0, 1, false},
		{"negative-sizes", "0,k,-5,-3,1,get,0\n", 0, 1, false},
		{"maxreqs-truncates", strings.Repeat("0,k,8,100,1,get,0\n", 50), 7, 7, false},
		{"maxreqs-stops-before-bad-tail", strings.Repeat("0,k,8,100,1,get,0\n", 5) + "bad\n", 5, 5, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reqs, err := LoadTwitterTrace(strings.NewReader(c.input), c.maxReqs)
			if c.wantErr {
				if err == nil {
					t.Fatalf("no error (got %d reqs)", len(reqs))
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(reqs) != c.wantN {
				t.Fatalf("got %d reqs, want %d", len(reqs), c.wantN)
			}
		})
	}
	// Fallback sizing for the non-numeric case must be the default.
	reqs, err := LoadTwitterTrace(strings.NewReader("0,k,?,?,1,get,0\n"), 0)
	if err != nil || len(reqs) != 1 || reqs[0].Size != DefaultObjectSize {
		t.Fatalf("fallback size: reqs=%v err=%v", reqs, err)
	}
}

func TestLoadCSVTraceErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		maxReqs int
		wantN   int
	}{
		{"empty-input", "", 0, 0},
		{"header-only", "key,size,op\n", 0, 0},
		// First line is valid data so the header heuristic (line 1 with a
		// non-numeric size column) does not swallow the truncated lines.
		{"truncated-size-field", "k,64\na,\nb,oops\n", 0, 3},
		{"negative-size-ignored", "a,-12\n", 0, 1},
		{"unknown-op-is-read", "a,64,frobnicate\n", 0, 1},
		{"maxreqs-truncates", strings.Repeat("k,64\n", 50), 9, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reqs, err := LoadCSVTrace(strings.NewReader(c.input), c.maxReqs)
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(reqs) != c.wantN {
				t.Fatalf("got %d reqs, want %d", len(reqs), c.wantN)
			}
			for _, r := range reqs {
				if r.Size <= 0 {
					t.Fatalf("non-positive size survived: %+v", r)
				}
			}
		})
	}
	reqs, err := LoadCSVTrace(strings.NewReader("a,-12\n"), 0)
	if err != nil || reqs[0].Size != DefaultObjectSize {
		t.Fatalf("negative size not defaulted: %+v err=%v", reqs, err)
	}
	if reqs, _ := LoadCSVTrace(strings.NewReader("a,64,frobnicate\n"), 0); reqs[0].Write {
		t.Fatal("unknown op classified as write")
	}
}

// TestLoadTraceOversizedLines drives both loaders right up to and past
// the 1<<20 scanner buffer: a line just under the cap parses, one over
// it surfaces bufio.ErrTooLong instead of silently corrupting the
// trace.
func TestLoadTraceOversizedLines(t *testing.T) {
	const cap = 1 << 20
	bigKey := strings.Repeat("x", cap-64) // fits with room for the other fields
	hugeKey := strings.Repeat("x", cap+1) // exceeds the buffer on its own

	t.Run("twitter-near-cap", func(t *testing.T) {
		line := "0," + bigKey + ",8,100,1,get,0\n"
		reqs, err := LoadTwitterTrace(strings.NewReader(line), 0)
		if err != nil || len(reqs) != 1 {
			t.Fatalf("near-cap line: reqs=%d err=%v", len(reqs), err)
		}
	})
	t.Run("twitter-over-cap", func(t *testing.T) {
		line := "0," + hugeKey + ",8,100,1,get,0\n"
		_, err := LoadTwitterTrace(strings.NewReader(line), 0)
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("want bufio.ErrTooLong, got %v", err)
		}
	})
	t.Run("csv-near-cap", func(t *testing.T) {
		line := bigKey + ",64\n"
		reqs, err := LoadCSVTrace(strings.NewReader(line), 0)
		if err != nil || len(reqs) != 1 || reqs[0].Size != 64 {
			t.Fatalf("near-cap line: reqs=%+v err=%v", reqs, err)
		}
	})
	t.Run("csv-over-cap", func(t *testing.T) {
		_, err := LoadCSVTrace(strings.NewReader(hugeKey+"\n"), 0)
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("want bufio.ErrTooLong, got %v", err)
		}
	})
}
