// Package hotalloc guards the zero-allocation hot path: no per-call
// heap allocation may appear in the pooled plan methods or the pooled
// executor's run loops.
//
// The perf PR that introduced plan pooling (acquire → reset → run →
// release, internal/core/pool.go) and the pooled runners
// (exec.Runner/SerialRunner/DoorbellRunner) got steady-state Get and
// Set to 0 allocs/op, and internal/core/allocs_test.go pins that
// number. But the alloc-ceiling test only covers the operations it
// drives; a regression on a path it doesn't reach — a closure captured
// in an eviction stage, a fresh slice literal in a reshard-window
// branch — survives until someone profiles again. This analyzer makes
// the discipline structural by flagging, inside the hot functions, the
// syntactic forms that heap-allocate per call:
//
//   - function literals (closures allocate their capture environment),
//   - make and new,
//   - &T{...} composite literals (escaping pointer → heap),
//   - slice and map composite literals.
//
// Plain value struct literals are NOT flagged: exec.Verb{...} appended
// into a plan's retained verbs slice is the idiom the plans are built
// from, and it allocates nothing.
//
// The hot functions are, syntactically:
//
//   - in ditto/internal/exec: methods on Runner, SerialRunner, and
//     DoorbellRunner (the pooled run loops). The free functions
//     Run/RunSerial/RunDoorbell stay unswept — they are the documented
//     allocate-per-call form for tests and cold paths;
//   - in ditto/internal/core: methods on the plan types (receiver type
//     name ending in "Plan") — Step, Absorb, reset, and the stage
//     helpers they call through the receiver.
//
// Deliberate allocations — pool-growth on a free-list miss, a
// once-per-runner map init, a cold ablation branch — state why with
// //dittolint:allow hotalloc (reason); the annotation is the audit
// trail for every allocation the hot path is still allowed to make.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ditto/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "no per-call heap allocation (closure, make/new, &T{} or " +
		"slice/map literal) in pooled plan methods or executor run " +
		"loops (zero-alloc hot-path contract, enforced at 0 allocs/op " +
		"by internal/core/allocs_test.go)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotFunc(pass.Path, fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// hotFunc reports whether fd is one of the swept hot functions.
func hotFunc(path string, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	name := recvTypeName(fd.Recv.List[0].Type)
	switch path {
	case "ditto/internal/exec":
		return name == "Runner" || name == "SerialRunner" || name == "DoorbellRunner"
	case "ditto/internal/core":
		return strings.HasSuffix(name, "Plan")
	case "ditto/internal/fairness":
		// The multi-tenant wrapper sits on every tenant-path op: its
		// Get/Set must stay alloc-free too (retained scratch, GetAppend).
		return name == "Client"
	}
	return false
}

// recvTypeName unwraps a method receiver's type expression to the bare
// type name.
func recvTypeName(expr ast.Expr) string {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// check walks one hot function's body for per-call allocation forms.
func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Composite literals already reported as part of an enclosing &X{}
	// are not reported again on their own.
	reported := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal in hot function %s allocates its closure per call; hoist the state onto the plan/runner, or annotate with //dittolint:allow hotalloc (reason)",
				fd.Name.Name)
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				reported[cl] = true
				pass.Reportf(n.Pos(),
					"&%s literal in hot function %s heap-allocates per call; draw from the free list or reuse retained scratch, or annotate with //dittolint:allow hotalloc (reason)",
					litTypeName(pass.Info, cl), fd.Name.Name)
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			if tv, ok := pass.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(),
						"%s literal in hot function %s allocates per call; append into a retained slice (verbs idiom) or reuse scratch, or annotate with //dittolint:allow hotalloc (reason)",
						litTypeName(pass.Info, n), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			for _, b := range [...]string{"make", "new"} {
				if analysis.IsBuiltin(pass.Info, n, b) {
					pass.Reportf(n.Pos(),
						"%s in hot function %s allocates per call; reuse retained scratch (grow/bufAt, free lists), or annotate with //dittolint:allow hotalloc (reason)",
						b, fd.Name.Name)
				}
			}
		}
		return true
	})
}

// litTypeName renders a composite literal's type for the diagnostic.
func litTypeName(info *types.Info, cl *ast.CompositeLit) string {
	if tv, ok := info.Types[cl]; ok {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return "composite"
}
