// Package bench is the evaluation harness: one runner per table/figure of
// the paper, each printing the same rows/series the paper reports.
// DESIGN.md §4 maps every experiment to its runner; EXPERIMENTS.md records
// measured-vs-paper outcomes.
//
// Absolute numbers come from the calibrated fabric model (DESIGN.md §2);
// the reproduction target is the SHAPE: who wins, by what factor, where
// crossovers fall. Timeline experiments compress the paper's minutes-long
// phases into virtual milliseconds — the migration/elasticity behaviour is
// rate-based, so the shape is unchanged.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/stats"
	"ditto/internal/workload"
)

// JSONPath, when non-empty, makes scenarios that support structured
// output (batched-throughput, elastic-reshard) also write a
// machine-readable JSON summary there; the CI bench-smoke step uses it
// to seed the perf trajectory (BENCH_*.json artifacts). When several
// such scenarios run in one invocation (-all), the first keeps the path
// as given and the rest write to "<path>-<scenario><ext>" so no summary
// is silently overwritten.
var JSONPath string

// jsonWrittenBy is the scenario that already claimed JSONPath this run.
var jsonWrittenBy string

// Seed, when non-zero, overrides every scenario's built-in simulation
// seed (dittobench -seed). The built-ins make each scenario
// deterministic on its own; the override lets CI pin ONE seed across
// every bench-smoke scenario so a rerun of the workflow reproduces the
// exact BENCH_*.json artifacts, and lets a developer vary the seed to
// check a result is not a seed artifact.
var Seed int64

// benchSeed returns the scenario seed: the -seed override when set,
// else the scenario's built-in default.
func benchSeed(def int64) int64 {
	if Seed != 0 {
		return Seed
	}
	return def
}

// writeJSONSummary writes a scenario's summary to JSONPath (when set)
// and notes it on w — the one artifact convention shared by every
// scenario that supports -json. A path already holding a DIFFERENT
// scenario's artifact (from an earlier invocation) is refused with an
// error instead of silently clobbering it: BENCH_*.json files seed the
// perf trajectory, and overwriting, say, BENCH_reshard.json with a
// hotspot summary would leave a stale artifact under a misleading name.
// Re-running the same scenario refreshes its artifact in place.
func writeJSONSummary(w io.Writer, payload map[string]interface{}) error {
	if JSONPath == "" {
		return nil
	}
	scenario, _ := payload["scenario"].(string)
	path := JSONPath
	if jsonWrittenBy != "" && jsonWrittenBy != scenario {
		ext := filepath.Ext(path)
		path = strings.TrimSuffix(path, ext) + "-" + scenario + ext
	} else {
		jsonWrittenBy = scenario
	}
	if err := refuseForeignArtifact(path, scenario); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "json summary written to %s\n", path)
	return nil
}

// refuseForeignArtifact returns an error when path already holds a JSON
// summary whose "scenario" differs from scenario. A missing file, an
// unreadable file, or one with no scenario field (not one of ours) does
// not block the write.
func refuseForeignArtifact(path, scenario string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil // nothing there (or unreadable): nothing to clobber
	}
	var existing struct {
		Scenario string `json:"scenario"`
	}
	if json.Unmarshal(blob, &existing) != nil || existing.Scenario == "" {
		return nil
	}
	if existing.Scenario != scenario {
		return fmt.Errorf("bench: refusing to overwrite %s: it holds scenario %q, not %q (delete it or pass a different -json path)",
			path, existing.Scenario, scenario)
	}
	return nil
}

// Scale selects experiment sizing.
type Scale int

// Quick sizes experiments for seconds-long runs (CI); Full approaches the
// paper's relative scales (minutes-long runs).
const (
	Quick Scale = iota
	Full
)

// ParseScale parses "quick"/"full".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q", s)
}

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Full {
		return f
	}
	return q
}

// Result aggregates one measured configuration.
type Result struct {
	Ops       int64
	ElapsedNs int64
	Hits      int64
	Misses    int64
	Hist      *stats.Histogram

	// HostNs and HostAllocs are the REAL cost of simulating the measured
	// phase — wall-clock nanoseconds and Go heap allocations on the host —
	// captured by hostMeter. Virtual time (ElapsedNs) answers "how fast is
	// Ditto"; these answer "how fast is the simulator's hot path", the
	// figure the zero-allocation work optimizes and the alloc gate tracks.
	HostNs     int64
	HostAllocs int64
}

// Mops returns throughput in millions of ops per second of virtual time.
func (r Result) Mops() float64 { return stats.Mops(r.Ops, r.ElapsedNs) }

// HitRate returns the hit fraction.
func (r Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// P50 and P99 return latency percentiles in microseconds.
func (r Result) P50() float64 { return float64(r.Hist.Percentile(50)) / 1000 }

// P99 returns the 99th-percentile latency in microseconds.
func (r Result) P99() float64 { return float64(r.Hist.Percentile(99)) / 1000 }

// HostNsPerOp returns host wall-clock nanoseconds per simulated operation.
func (r Result) HostNsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.HostNs) / float64(r.Ops)
}

// AllocsPerOp returns host heap allocations per simulated operation.
func (r Result) AllocsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.HostAllocs) / float64(r.Ops)
}

// hostMeter samples wall clock and cumulative allocation counts around a
// measured phase. The bench package is host-side instrumentation, outside
// the simulation's determinism sweep, so real time is fine here; nothing
// it reads feeds back into the simulated run.
type hostMeter struct {
	start   time.Time
	mallocs uint64
}

// startHostMeter begins a measurement window.
func startHostMeter() hostMeter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return hostMeter{start: time.Now(), mallocs: ms.Mallocs}
}

// stop charges the window's host cost to res.
func (h hostMeter) stop(res *Result) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HostNs = time.Since(h.start).Nanoseconds()
	res.HostAllocs = int64(ms.Mallocs - h.mallocs)
}

// CacheOps is the operation interface shared by every system's client so
// the runners below are system-agnostic.
type CacheOps interface {
	Get(key []byte) ([]byte, bool)
	Set(key, value []byte)
}

// ClientFactory builds a system client inside a sim process.
type ClientFactory func(p *sim.Proc) CacheOps

// valueFor synthesizes a deterministic value of the request's size.
func valueFor(r workload.Req) []byte {
	n := r.Size - 16
	if n < 8 {
		n = 8
	}
	v := make([]byte, n)
	b := byte(r.Key)
	for i := range v {
		v[i] = b + byte(i)
	}
	return v
}

// RunLoad inserts every distinct key of reqs once, sharded over `clients`
// loader processes (the paper's load phase).
func RunLoad(env *sim.Env, factory ClientFactory, reqs []workload.Req, clients int) {
	shards := workload.Shard(dedup(reqs), clients)
	for _, sh := range shards {
		mine := sh
		env.Go("loader", func(p *sim.Proc) {
			c := factory(p)
			for _, r := range mine {
				c.Set(workload.KeyBytes(r.Key), valueFor(r))
			}
		})
	}
	env.Run()
}

func dedup(reqs []workload.Req) []workload.Req {
	seen := make(map[uint64]bool, len(reqs))
	out := make([]workload.Req, 0, len(reqs))
	for _, r := range reqs {
		if !seen[r.Key] {
			seen[r.Key] = true
			out = append(out, r)
		}
	}
	return out
}

// RunClosedLoop runs `clients` closed-loop clients for opsEach generator-
// driven operations each and aggregates throughput/latency (Figures 2, 14,
// 15, 25: the no-miss regime — Sets overwrite loaded keys).
func RunClosedLoop(env *sim.Env, factory ClientFactory, gen func(client int) workload.Generator,
	clients, opsEach int, seed int64) Result {

	res := Result{Hist: &stats.Histogram{}}
	start := env.Now()
	for w := 0; w < clients; w++ {
		w := w
		g := gen(w)
		env.Go("client", func(p *sim.Proc) {
			c := factory(p)
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < opsEach; i++ {
				r := g.Next(rng)
				t0 := p.Now()
				if r.Write {
					c.Set(workload.KeyBytes(r.Key), valueFor(r))
				} else if _, ok := c.Get(workload.KeyBytes(r.Key)); ok {
					res.Hits++
				} else {
					res.Misses++
				}
				res.Hist.Record(p.Now() - t0)
				res.Ops++
			}
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - start
	return res
}

// RunTrace replays a trace: each client owns a shard; a Get miss sleeps
// `penalty` (the 500 µs distributed-storage fetch of §5.4) and then Sets
// the object. loops > 1 re-runs the shard (the paper iterates the workload
// after warm-up); the first pass is warm-up and is excluded from stats.
func RunTrace(env *sim.Env, factory ClientFactory, trace []workload.Req,
	clients, loops int, penalty int64) Result {

	if loops < 2 {
		loops = 2 // one warm-up + one measured
	}
	res := Result{Hist: &stats.Histogram{}}
	shards := workload.Shard(trace, clients)
	barrier := sim.NewCond(env)
	waiting := 0
	var measureStart int64

	for w := 0; w < clients; w++ {
		mine := shards[w]
		env.Go("client", func(p *sim.Proc) {
			c := factory(p)
			for loop := 0; loop < loops; loop++ {
				if loop == 1 {
					// Synchronize the start of measurement across clients
					// (warm-up pass excluded, as in §5.4).
					waiting++
					if waiting == clients {
						measureStart = p.Now()
						barrier.Broadcast()
					} else {
						barrier.Wait(p)
					}
				}
				for _, r := range mine {
					t0 := p.Now()
					key := workload.KeyBytes(r.Key)
					hit := false
					if _, ok := c.Get(key); ok {
						hit = true
					} else {
						if penalty > 0 {
							p.Sleep(penalty)
						}
						c.Set(key, valueFor(r))
					}
					if loop >= 1 {
						if hit {
							res.Hits++
						} else {
							res.Misses++
						}
						res.Hist.Record(p.Now() - t0)
						res.Ops++
					}
				}
			}
		})
	}
	env.Run()
	res.ElapsedNs = env.Now() - measureStart
	return res
}

// DittoFactory adapts a core.Cluster to ClientFactory.
func DittoFactory(cl *core.Cluster) ClientFactory {
	return func(p *sim.Proc) CacheOps { return cl.NewClient(p) }
}

// table prints an aligned row.
func row(w io.Writer, cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		switch v := c.(type) {
		case string:
			fmt.Fprintf(w, "%-14s", v)
		case float64:
			fmt.Fprintf(w, "%12.3f", v)
		case int:
			fmt.Fprintf(w, "%12d", v)
		case int64:
			fmt.Fprintf(w, "%12d", v)
		default:
			fmt.Fprintf(w, "%12v", v)
		}
	}
	fmt.Fprintln(w)
}

// header prints a section title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
