// Package stock bundles the stock correctness passes dittolint ships
// alongside the project-invariant analyzers, so one binary is the
// single lint entry point.
//
// The build environment is offline and the module is dependency-free,
// so the golang.org/x/tools originals cannot be vendored. Two of the
// three passes the project cares about are small enough to carry as
// faithful stdlib reimplementations:
//
//   - atomic: x = atomic.AddT(&x, d) misuse (the store races the
//     atomic read-modify-write);
//   - copylocks: copying a value whose type contains a sync.Mutex /
//     RWMutex / WaitGroup / Once (assignment, var init, range, or
//     by-value parameter).
//
// nilness requires SSA construction and is gated instead of
// reimplemented: the Nilness analyzer below is a declared stub that
// reports nothing and documents the gap, so `dittolint -list` shows the
// pass as reserved and enabling it when x/tools becomes available is a
// one-line change. Until then, the CI `vet` step (stock `go vet`) and
// the race/chaos jobs cover the nil-deref class dynamically.
package stock

import (
	"go/ast"
	"go/types"

	"ditto/internal/analysis"
)

// Atomic is the stdlib reimplementation of the x/tools atomic pass.
var Atomic = &analysis.Analyzer{
	Name: "atomic",
	Doc:  "check for common mistaken usages of sync/atomic (x = atomic.AddT(&x, d))",
	Run:  runAtomic,
}

func runAtomic(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := analysis.CalleeFunc(pass.Info, call)
				if fn == nil || analysis.FuncPkgPath(fn) != "sync/atomic" || analysis.ReceiverNamed(fn) != nil {
					continue
				}
				switch fn.Name() {
				case "AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr":
				default:
					continue
				}
				if len(call.Args) != 2 {
					continue
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op.String() != "&" {
					continue
				}
				if types.ExprString(ast.Unparen(addr.X)) == types.ExprString(ast.Unparen(assign.Lhs[i])) {
					pass.Reportf(assign.Pos(), "direct assignment to atomic value: the store races the atomic %s", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// Copylocks is a stdlib reimplementation of the x/tools copylocks pass
// covering the copy shapes that occur in practice: assignments and var
// initializers, range-clause copies, by-value parameters and receivers,
// and by-value returns.
var Copylocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "check for locks erroneously passed or assigned by value",
	Run:  runCopylocks,
}

func runCopylocks(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopiedExpr(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopiedExpr(pass, v, "variable declaration copies")
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if elem := rangeElem(tv.Type); elem != nil {
						if path := lockPath(elem); path != "" && n.Value != nil {
							pass.Reportf(n.Value.Pos(), "range clause copies lock: %s", path)
						}
					}
				}
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopiedExpr(pass, r, "return copies")
				}
			case *ast.CallExpr:
				for _, a := range n.Args {
					checkCopiedExpr(pass, a, "call passes lock by value:")
				}
			}
			return true
		})
	}
	return nil
}

// checkCopiedExpr reports when evaluating e copies a lock-bearing
// value: a dereference, a plain variable/selector of lock-bearing type,
// or an index expression. Composite literals, function calls, and
// address-taking do not copy an existing lock.
func checkCopiedExpr(pass *analysis.Pass, e ast.Expr, verb string) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if path := lockPath(tv.Type); path != "" {
		pass.Reportf(e.Pos(), "%s lock value: %s", verb, path)
	}
}

func checkSignature(pass *analysis.Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := pass.Info.Types[f.Type]
			if !ok {
				continue
			}
			if path := lockPath(tv.Type); path != "" {
				pass.Reportf(f.Pos(), "%s passes lock by value: %s", what, path)
			}
		}
	}
	check(recv, "receiver")
	check(ftype.Params, "parameter")
}

// rangeElem returns the element type a range clause's Value variable
// copies, or nil when ranging yields no copy (maps of pointers etc.
// still copy the element type).
func rangeElem(t types.Type) types.Type {
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	case *types.Map:
		return t.Elem()
	case *types.Chan:
		return t.Elem()
	}
	return nil
}

// lockPath reports a human-readable path to a lock type contained (by
// value) in t, or "" when t is copyable. Depth-bounded against
// recursive types.
func lockPath(t types.Type) string {
	return lockPathDepth(t, 8)
}

func lockPathDepth(t types.Type, depth int) string {
	if depth == 0 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if sub := lockPathDepth(u.Field(i).Type(), depth-1); sub != "" {
				name := u.Field(i).Name()
				return name + " contains " + sub
			}
		}
	case *types.Array:
		if sub := lockPathDepth(u.Elem(), depth-1); sub != "" {
			return "array element contains " + sub
		}
	}
	return ""
}

// Nilness is the gated x/tools nilness pass: reserved name, no-op run.
// Enabling it requires golang.org/x/tools (SSA construction), which the
// offline dependency-free build cannot vendor; see the package comment.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: "GATED: requires golang.org/x/tools SSA; registered as a " +
		"reserved no-op so the suite's pass list is stable when the " +
		"dependency becomes available",
	Run: func(*analysis.Pass) error { return nil },
}
