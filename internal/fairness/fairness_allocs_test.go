//go:build !race

package fairness

import (
	"testing"

	"ditto/internal/core"
	"ditto/internal/sim"
)

// TestAllocsPerOpSteadyState extends the core zero-allocation contract
// to the fairness wrapper: a steady-state tagged Set (retained scratch
// buffer) and a GetAppend with a reused destination — own-tenant or
// cross-tenant — must allocate NOTHING once the pools are warm. The
// counts are meaningless under the race detector, so the -race build
// skips this file entirely (build tag).
func TestAllocsPerOpSteadyState(t *testing.T) {
	env := sim.NewEnv(11)
	cl := core.NewCluster(env, core.DefaultOptions(1000, 1000*320))
	env.Go("meter", func(p *sim.Proc) {
		own := New(cl.NewClient(p), 1, missCost)
		rider := New(cl.NewClient(p), 2, missCost)
		// The cross-tenant measurement keeps the probabilistic branch live
		// (one RNG draw per hit) without the virtual-time sleep, which
		// would dominate the loop for nothing — the draw is the alloc risk.
		rider.BlockProb = 0

		k, v := []byte("steady-key"), []byte("steady-value-64b")
		dst := make([]byte, 0, 128)
		for r := 0; r < 3; r++ { // warm plan pools, scratch, event heap
			own.Set(k, v)
			dst, _ = own.GetAppend(dst[:0], k)
			dst, _ = rider.GetAppend(dst[:0], k)
		}

		sets := testing.AllocsPerRun(200, func() { own.Set(k, v) })
		gets := testing.AllocsPerRun(200, func() { dst, _ = own.GetAppend(dst[:0], k) })
		cross := testing.AllocsPerRun(200, func() { dst, _ = rider.GetAppend(dst[:0], k) })
		t.Logf("allocs/op: set=%.1f get=%.1f cross-get=%.1f", sets, gets, cross)
		if sets != 0 {
			t.Errorf("steady-state tagged Set allocates %.1f objects/op, want 0", sets)
		}
		if gets != 0 {
			t.Errorf("steady-state GetAppend allocates %.1f objects/op, want 0", gets)
		}
		if cross != 0 {
			t.Errorf("steady-state cross-tenant GetAppend allocates %.1f objects/op, want 0", cross)
		}
	})
	env.Run()
}
