package core

// Model-based equivalence of the hot-key replication layer: with
// replication enabled, every observable result (Get/MGet values and
// presence, Delete outcomes, stats accounting) must match the
// unreplicated single-copy semantics — under both replica fan-out
// strategies, through write-heavy demotion, and across a live reshard.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ditto/internal/exec"
	"ditto/internal/sim"
)

// hotOptions returns a pool sized so nothing is evicted (observable
// equivalence of a cache demands an eviction-free regime, as in
// reshard_equiv_test.go).
func hotOptions(keys int) Options { return DefaultOptions(keys, keys*320) }

// TestReplicatedEquivalenceDuringLiveReshard drives a mixed workload —
// skewed Gets/MGets that trigger promotion, plus Sets/MSets/Deletes/
// MDeletes over the same keys — against an exact model, with a live
// AddNode reshard in the middle, under both replica fan-out strategies.
// Every read must return exactly the model's value, every delete
// outcome must match presence, the post-reshard sweep must hold exactly,
// and the replication machinery must actually have engaged (promotions
// and spread reads observed).
func TestReplicatedEquivalenceDuringLiveReshard(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		t.Run(strat.String(), func(t *testing.T) {
			const n = 400
			env := sim.NewEnv(31)
			mc := NewMultiCluster(env, 4, hotOptions(4*n))
			mc.ReplicaStrategy = strat
			mc.EnableHotKeyReplication(2, 4, 64)
			model := make(map[string][]byte)
			risky := make(map[string]bool) // deletes that raced the reshard window
			env.Go("mutator", func(p *sim.Proc) {
				m := mc.NewClient(p)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < n; i++ {
					m.Set(key(i), value(i))
					model[string(key(i))] = value(i)
				}
				hot := func() int { return rng.Intn(8) } // the skewed tail
				for round := 0; round < 80; round++ {
					if round == 20 {
						mc.AddNode()
					}
					// Skewed reads: hammer the hot tail so keys cross the
					// promotion threshold, plus uniform background reads.
					for j := 0; j < 6; j++ {
						k := hot()
						if j >= 4 {
							k = rng.Intn(n)
						}
						v, ok := m.Get(key(k))
						want, present := model[string(key(k))]
						if risky[string(key(k))] && mc.Resharding() {
							continue
						}
						if ok != present {
							t.Errorf("round %d (resharding=%v) key %d: ok=%v present=%v",
								round, mc.Resharding(), k, ok, present)
						} else if present && !bytes.Equal(v, want) {
							t.Errorf("round %d key %d: stale value", round, k)
						}
					}
					gets := make([][]byte, 8)
					for j := range gets {
						if j < 4 {
							gets[j] = key(hot())
						} else {
							gets[j] = key(rng.Intn(n))
						}
					}
					vs, oks := m.MGet(gets)
					for j := range gets {
						want, present := model[string(gets[j])]
						if risky[string(gets[j])] && mc.Resharding() {
							continue
						}
						if oks[j] != present {
							t.Errorf("round %d (resharding=%v) MGet %s: ok=%v present=%v",
								round, mc.Resharding(), gets[j], oks[j], present)
						} else if present && !bytes.Equal(vs[j], want) {
							t.Errorf("round %d MGet %s: stale value", round, gets[j])
						}
					}
					// Writes hit the hot tail too: write-through must keep
					// every replica equal to the model.
					k := hot()
					v := value(k*13 + round)
					m.Set(key(k), v)
					model[string(key(k))] = v
					delete(risky, string(key(k)))
					batch := make([]KV, 3)
					for j := range batch {
						bk := rng.Intn(n)
						bv := value(bk*7 + round)
						batch[j] = KV{Key: key(bk), Value: bv}
						model[string(key(bk))] = bv
						delete(risky, string(key(bk)))
					}
					m.MSet(batch)
					if round%4 == 0 {
						dk := key(rng.Intn(n))
						ok := m.Delete(dk)
						_, present := model[string(dk)]
						if present && !ok {
							t.Errorf("round %d: present key %s not deleted", round, dk)
						}
						delete(model, string(dk))
						if mc.Resharding() {
							risky[string(dk)] = true
						}
					}
					if round%7 == 0 {
						dels := [][]byte{key(hot()), key(rng.Intn(n))}
						oks := m.MDelete(dels)
						for j, dk := range dels {
							_, present := model[string(dk)]
							if present && !oks[j] {
								t.Errorf("round %d: present key %s not MDeleted", round, dk)
							}
							delete(model, string(dk))
							if mc.Resharding() {
								risky[string(dk)] = true
							}
						}
					}
				}
				mc.WaitReshard(p)
				// Post-reshard sweep: exact model equality, no resurrected
				// deletes, no stale replica readable anywhere.
				all := make([][]byte, n)
				for i := range all {
					all[i] = key(i)
				}
				vs, oks := m.MGet(all)
				for i := range all {
					want, present := model[string(all[i])]
					if oks[i] != present {
						t.Errorf("post-reshard key %d: ok=%v present=%v", i, oks[i], present)
					} else if present && !bytes.Equal(vs[i], want) {
						t.Errorf("post-reshard key %d: stale value", i)
					}
				}
				// And per-key sweeps cover every rotation position, so a
				// stale copy on ANY replica would be caught.
				for pass := 0; pass < 4; pass++ {
					for i := 0; i < 16; i++ {
						v, ok := m.Get(key(i))
						want, present := model[string(key(i))]
						if ok != present || (present && !bytes.Equal(v, want)) {
							t.Errorf("rotation sweep key %d: ok=%v present=%v", i, ok, present)
						}
					}
				}
				s := m.Stats()
				if s.Gets != s.Hits+s.Misses {
					t.Errorf("accounting broken: %+v", s)
				}
			})
			env.Run()
			if mc.Promotions == 0 {
				t.Error("no key was ever promoted — the test exercised nothing")
			}
			if mc.SpreadReads == 0 {
				t.Error("no read was served by a replica")
			}
			if mc.Reshards != 1 || mc.NumNodes() != 5 {
				t.Errorf("reshards=%d nodes=%d", mc.Reshards, mc.NumNodes())
			}
		})
	}
}

// TestReplicatedMatchesUnreplicated runs the same deterministic skewed
// workload twice — replication off and on (both fan-out strategies) —
// and requires identical observable results: every Get's (value, ok)
// sequence and the aggregate logical-operation counts must match.
func TestReplicatedMatchesUnreplicated(t *testing.T) {
	type obs struct {
		vals  []string
		stats Stats
	}
	run := func(enable bool, strat exec.Strategy) obs {
		const n = 200
		env := sim.NewEnv(5)
		mc := NewMultiCluster(env, 3, hotOptions(3*n))
		if enable {
			mc.ReplicaStrategy = strat
			mc.EnableHotKeyReplication(2, 3, 32)
		}
		var o obs
		env.Go("c", func(p *sim.Proc) {
			m := mc.NewClient(p)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < n; i++ {
				m.Set(key(i), value(i))
			}
			for round := 0; round < 60; round++ {
				for j := 0; j < 8; j++ {
					k := rng.Intn(6) // heavily skewed
					if j >= 6 {
						k = rng.Intn(n)
					}
					v, ok := m.Get(key(k))
					o.vals = append(o.vals, fmt.Sprintf("%d:%v:%s", k, ok, v))
				}
				k := rng.Intn(6)
				m.Set(key(k), value(k*31+round))
				if round%9 == 0 {
					m.Delete(key(rng.Intn(n)))
				}
			}
			o.stats = m.Stats()
		})
		env.Run()
		if enable && mc.Promotions == 0 {
			t.Fatal("replication never engaged")
		}
		return o
	}
	base := run(false, exec.Serial)
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		got := run(true, strat)
		if len(base.vals) != len(got.vals) {
			t.Fatalf("%v: observation counts differ: %d vs %d", strat, len(base.vals), len(got.vals))
		}
		for i := range base.vals {
			if base.vals[i] != got.vals[i] {
				t.Fatalf("%v: observation %d differs: %q vs %q", strat, i, base.vals[i], got.vals[i])
			}
		}
		// Logical-operation ledgers must agree: replica maintenance
		// (fan-out stores, invalidations, promotion snapshots) is not a
		// logical operation and must not leak into any counter.
		if base.stats.Gets != got.stats.Gets || base.stats.Hits != got.stats.Hits ||
			base.stats.Misses != got.stats.Misses || base.stats.Sets != got.stats.Sets ||
			base.stats.Deletes != got.stats.Deletes {
			t.Fatalf("%v: ledgers differ:\nunreplicated %+v\nreplicated   %+v", strat, base.stats, got.stats)
		}
	}
}

// TestConcurrentSpreadReadsAreMonotonic runs one writer bumping a
// versioned value on a handful of hot keys against concurrent readers
// hammering the same keys — the regime where promotions race
// unreplicated writes and the write-repair path (resyncAfterWrite) does
// real work. With a single writer per key, linearizability implies every
// reader's observed version sequence per key is non-decreasing: a
// decrease would mean a spread read served a pre-write replica AFTER a
// newer value was returned — exactly the stale-replica bug the repair
// protocol exists to prevent.
func TestConcurrentSpreadReadsAreMonotonic(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Serial, exec.Doorbell} {
		for _, seed := range []int64{17, 99, 1234} {
			seed := seed
			t.Run(fmt.Sprintf("%v/seed%d", strat, seed), func(t *testing.T) {
				testMonotonicSpreadReads(t, strat, seed)
			})
		}
	}
}

func testMonotonicSpreadReads(t *testing.T, strat exec.Strategy, seed int64) {
	const hotKeys = 4
	env := sim.NewEnv(seed)
	mc := NewMultiCluster(env, 4, hotOptions(2000))
	mc.ReplicaStrategy = strat
	mc.EnableHotKeyReplication(3, 3, 32)
	version := func(v []byte) int {
		n := 0
		fmt.Sscanf(string(v), "v%d", &n)
		return n
	}
	env.Go("writer", func(p *sim.Proc) {
		m := mc.NewClient(p)
		for i := 0; i < hotKeys; i++ {
			m.Set(key(i), []byte("v0"))
		}
		for v := 1; v <= 200; v++ {
			m.Set(key(v%hotKeys), []byte(fmt.Sprintf("v%d", v)))
		}
	})
	for r := 0; r < 6; r++ {
		env.Go("reader", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond) // let the initial values land
			m := mc.NewClient(p)
			last := make([]int, hotKeys)
			for i := 0; i < 400; i++ {
				k := i % hotKeys
				v, ok := m.Get(key(k))
				if !ok {
					continue // not yet written
				}
				if got := version(v); got < last[k] {
					t.Errorf("key %d: version went backwards %d → %d (stale replica)",
						k, last[k], got)
				} else {
					last[k] = got
				}
			}
		})
	}
	env.Run()
	if mc.Promotions == 0 || mc.SpreadReads == 0 {
		t.Fatalf("replication never engaged: promotions=%d spread=%d",
			mc.Promotions, mc.SpreadReads)
	}
}

// TestReplicatedKeysSurviveRemoveNode drains a node while hot keys are
// replicated with factor 3 (copies on every other node) — so every hot
// key whose primary is the drained node has its new ring owner among
// its own replica nodes. The resharder must dissolve the replica sets
// BEFORE its migration scan: a replica copy reaching the scan would
// make the migrating primary copy look like a duplicate (its removal
// garbage-collects the authoritative value), and the entry's later
// demotion would then delete the only surviving copy — silently losing
// keys no unreplicated pool would lose.
func TestReplicatedKeysSurviveRemoveNode(t *testing.T) {
	const n = 300
	env := sim.NewEnv(23)
	mc := NewMultiCluster(env, 4, hotOptions(4*n))
	mc.EnableHotKeyReplication(3, 3, 64)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		for i := 0; i < n; i++ {
			m.Set(key(i), value(i))
		}
		// Promote a band of keys — with n spread over 4 nodes, some of
		// them are primaried on the node about to drain.
		for pass := 0; pass < 8; pass++ {
			for i := 0; i < 32; i++ {
				m.Get(key(i))
			}
		}
		if mc.Promotions == 0 {
			t.Fatal("nothing promoted; the test exercises nothing")
		}
		mc.RemoveNode(mc.NodeID(0))
		mc.WaitReshard(p)
		for i := 0; i < n; i++ {
			v, ok := m.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost or stale after draining a replicated key's primary (ok=%v)", i, ok)
			}
		}
	})
	env.Run()
	if mc.NumNodes() != 3 || mc.Reshards != 1 {
		t.Fatalf("nodes=%d reshards=%d", mc.NumNodes(), mc.Reshards)
	}
}

// TestWriteHeavyKeyIsDemoted pins load-aware demotion: a promoted key
// whose writes overtake its spread reads must leave the replicated set
// (and its reads must still be exact afterwards).
func TestWriteHeavyKeyIsDemoted(t *testing.T) {
	const n = 100
	env := sim.NewEnv(9)
	mc := NewMultiCluster(env, 3, hotOptions(3*n))
	mc.EnableHotKeyReplication(2, 3, 32)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		for i := 0; i < n; i++ {
			m.Set(key(i), value(i))
		}
		for j := 0; j < 8; j++ { // promote key 0
			m.Get(key(0))
		}
		if mc.Promotions == 0 {
			t.Fatal("key 0 was not promoted")
		}
		last := []byte(nil)
		for w := 0; w < 3*demoteMinWrites; w++ {
			last = value(w + 1000)
			m.Set(key(0), last)
		}
		if mc.Demotions == 0 {
			t.Error("write-heavy key was never demoted")
		}
		for j := 0; j < 6; j++ {
			v, ok := m.Get(key(0))
			if !ok || !bytes.Equal(v, last) {
				t.Fatalf("read %d after demotion: ok=%v", j, ok)
			}
		}
	})
	env.Run()
}

// TestDeleteDemotesAndRemovesEverywhere pins Delete's ordering: after a
// replicated key's Delete returns, no rotation position may serve it.
func TestDeleteDemotesAndRemovesEverywhere(t *testing.T) {
	const n = 100
	env := sim.NewEnv(12)
	mc := NewMultiCluster(env, 4, hotOptions(4*n))
	mc.EnableHotKeyReplication(3, 3, 32)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		for i := 0; i < n; i++ {
			m.Set(key(i), value(i))
		}
		for j := 0; j < 10; j++ {
			m.Get(key(1))
		}
		if mc.SpreadReads == 0 {
			t.Fatal("reads never spread")
		}
		if !m.Delete(key(1)) {
			t.Fatal("present key not deleted")
		}
		for j := 0; j < 8; j++ { // every rotation position of every node
			if _, ok := m.Get(key(1)); ok {
				t.Fatalf("deleted key readable on rotation %d", j)
			}
		}
		s := m.Stats()
		if s.Gets != s.Hits+s.Misses {
			t.Errorf("accounting broken: %+v", s)
		}
	})
	env.Run()
}

// TestReplicatedTrySetTypedAfterPrimaryFail: a write to a REPLICATED key
// whose primary fail-stops must surface a typed unavailable error
// through TrySet — not a panic — with the entry lock released and the
// copy set dissolved. This is the regression test for the replica
// fan-out panic→typed-error conversion (setReplicated/updateReplicas/
// resyncAfterWrite returning errors instead of panicking): reverting
// those error returns turns the TrySet below back into a test-killing
// panic, and dittolint's typederr analyzer flags the reverted panic
// sites besides.
func TestReplicatedTrySetTypedAfterPrimaryFail(t *testing.T) {
	const n = 100
	env := sim.NewEnv(17)
	mc := NewMultiCluster(env, 3, hotOptions(3*n))
	mc.EnableHotKeyReplication(2, 3, 32)
	env.Go("c", func(p *sim.Proc) {
		m := mc.NewClient(p)
		for i := 0; i < n; i++ {
			m.Set(key(i), value(i))
		}
		for j := 0; j < 8; j++ { // promote key 0
			m.Get(key(0))
		}
		e := mc.hot.Lookup(key(0))
		if e == nil {
			t.Fatal("key 0 was not promoted")
		}
		primary := e.Primary
		// Fail the primary's fabric WITHOUT reconfiguring the pool: the
		// replicated write path still routes to the dead node, so the
		// fan-out must fail typed, dissolve the entry, and release its
		// lock rather than wedge later writers.
		mc.nodes[primary].MN.Node.Fail()
		err := m.TrySet(key(0), value(1000))
		if err == nil {
			t.Fatal("TrySet through a failed primary returned nil")
		}
		if !IsUnavailable(err) {
			t.Fatalf("TrySet error not IsUnavailable: %v", err)
		}
		if mc.hot.Lookup(key(0)) != nil {
			t.Fatal("failed replicated write left the entry published")
		}
		// Reconfigure and retry: the write must land on a survivor (the
		// entry lock was released, so this writer is not deadlocked
		// behind the failed fan-out).
		mc.CrashNode(primary)
		if err := m.TrySet(key(0), value(1001)); err != nil {
			t.Fatalf("TrySet after CrashNode errored: %v", err)
		}
		if v, ok := m.Get(key(0)); !ok || !bytes.Equal(v, value(1001)) {
			t.Fatal("key not readable after reroute")
		}
	})
	env.Run()
}
