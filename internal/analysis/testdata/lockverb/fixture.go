// Fixture for the lockverb analyzer: sync mutexes held across blocking
// verb issue. The analyzer sweeps every package, so the fixture's
// import path does not matter.

package lockverb

import (
	"sync"

	"ditto/internal/exec"
	"ditto/internal/rdma"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ep *rdma.Endpoint
}

func (g *guarded) verbUnderLock(addr uint64) []byte {
	g.mu.Lock()
	v := g.ep.Read(addr, 8) // want `rdma\.Endpoint\.Read issued while holding mutex g\.mu`
	g.mu.Unlock()
	return v
}

func (g *guarded) verbUnderDeferredUnlock(addr uint64) []byte {
	g.mu.Lock()
	defer g.mu.Unlock()       // pins g.mu held for the rest of the function
	return g.ep.Read(addr, 8) // want `rdma\.Endpoint\.Read issued while holding mutex g\.mu`
}

func (g *guarded) execUnderRLock(plans []exec.Plan) {
	g.rw.RLock()
	exec.Run(exec.Serial, plans...) // want `exec\.Run issued while holding mutex g\.rw`
	g.rw.RUnlock()
}

func (g *guarded) releasedBeforeVerb(addr uint64) []byte {
	g.mu.Lock()
	g.mu.Unlock()
	return g.ep.Read(addr, 8) // released before the verb: no finding
}

func (g *guarded) lockAroundLocalWork(addr uint64) []byte {
	v := g.ep.Read(addr, 8) // no mutex held yet: no finding
	g.mu.Lock()
	addr++ // local work only under the mutex
	g.mu.Unlock()
	return v
}

func (g *guarded) pooledRunnerUnderLock(r *exec.Runner, p exec.Plan, plans []exec.Plan) {
	g.mu.Lock()
	r.RunOne(exec.Serial, p)         // want `exec\.Runner\.RunOne issued while holding mutex g\.mu`
	r.RunPlans(exec.Doorbell, plans) // want `exec\.Runner\.RunPlans issued while holding mutex g\.mu`
	r.Serial.Run(p)                  // want `exec\.SerialRunner\.Run issued while holding mutex g\.mu`
	r.Doorbell.Run(plans)            // want `exec\.DoorbellRunner\.Run issued while holding mutex g\.mu`
	g.mu.Unlock()
	r.RunOne(exec.Serial, p) // released: no finding
}
