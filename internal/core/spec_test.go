package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ditto/internal/hashtable"
	"ditto/internal/sim"
)

// newSpecCluster is newTestCluster with the location cache enabled, so
// Gets of hinted keys take the one-RTT speculative path.
func newSpecCluster(env *sim.Env, objects, slots int) *Cluster {
	opts := DefaultOptions(objects, objects*320)
	opts.LocCacheSlots = slots
	return NewCluster(env, opts)
}

// TestSpecGetVerbBudget pins the tentpole claim: a hinted Get is exactly
// ONE synchronous READ — no bucket READ, no CAS, no RPC — with metadata
// riding on the usual single async WRITE. The writer's own Set records
// the hint (noteSetLocation), so the very first Get after a Set already
// runs speculatively.
func TestSpecGetVerbBudget(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newSpecCluster(env, 1000, 256)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		for i := 0; i < 2; i++ {
			s0 := cl.MN.Node.Stats
			v, ok := c.Get([]byte("k"))
			d := cl.MN.Node.Stats
			if !ok || !bytes.Equal(v, []byte("v")) {
				t.Fatalf("get %d: ok=%v v=%q", i, ok, v)
			}
			if reads := d.Reads - s0.Reads; reads != 1 {
				t.Errorf("get %d used %d READs, want 1 (speculative)", i, reads)
			}
			if cas := d.CASes - s0.CASes; cas != 0 {
				t.Errorf("get %d used %d CASes, want 0", i, cas)
			}
			if rpcs := d.RPCs - s0.RPCs; rpcs != 0 {
				t.Errorf("get %d used %d RPCs, want 0", i, rpcs)
			}
			if w := d.Writes - s0.Writes; w != 1 {
				t.Errorf("get %d used %d WRITEs, want 1 (async last_ts)", i, w)
			}
		}
		if c.Stats.SpecGetHits != 2 || c.Stats.SpecGetFallbacks != 0 {
			t.Errorf("spec stats = %d hits / %d fallbacks, want 2/0",
				c.Stats.SpecGetHits, c.Stats.SpecGetFallbacks)
		}
	})
	env.Run()
}

// TestSpecGetFallbackOnConcurrentUpdate pins the read-validate ladder: a
// concurrent out-of-place update moves the key to a new block, so the
// reader's stale hint fails validation (the old block's stamp was
// cleared on free), the Get silently falls back and returns the NEW
// value, and the refreshed hint speculates successfully again.
func TestSpecGetFallbackOnConcurrentUpdate(t *testing.T) {
	env := sim.NewEnv(2)
	cl := newSpecCluster(env, 1000, 256)
	env.Go("c", func(p *sim.Proc) {
		reader := cl.NewClient(p)
		writer := cl.NewClient(p)
		reader.Set([]byte("k"), []byte("v1"))
		if _, ok := reader.Get([]byte("k")); !ok {
			t.Fatal("warm get missed")
		}
		writer.Set([]byte("k"), []byte("v2"))
		v, ok := reader.Get([]byte("k"))
		if !ok || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("after update: ok=%v v=%q, want v2", ok, v)
		}
		if reader.Stats.SpecGetFallbacks != 1 {
			t.Errorf("fallbacks = %d, want 1", reader.Stats.SpecGetFallbacks)
		}
		s0 := cl.MN.Node.Stats
		if v, _ = reader.Get([]byte("k")); !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("refreshed hint returned %q", v)
		}
		if reads := cl.MN.Node.Stats.Reads - s0.Reads; reads != 1 {
			t.Errorf("refreshed hint used %d READs, want 1", reads)
		}
	})
	env.Run()
}

// TestSpecGetNoResurrectionAfterDelete pins the soundness property the
// free-stamp exists for: after ANOTHER client deletes the key, the stale
// hint must not resurrect the old image from freed memory — the
// speculative read fails validation and the Get misses.
func TestSpecGetNoResurrectionAfterDelete(t *testing.T) {
	env := sim.NewEnv(3)
	cl := newSpecCluster(env, 1000, 256)
	env.Go("c", func(p *sim.Proc) {
		reader := cl.NewClient(p)
		deleter := cl.NewClient(p)
		reader.Set([]byte("k"), []byte("v"))
		if _, ok := reader.Get([]byte("k")); !ok {
			t.Fatal("warm get missed")
		}
		if !deleter.Delete([]byte("k")) {
			t.Fatal("delete reported key absent")
		}
		if v, ok := reader.Get([]byte("k")); ok {
			t.Fatalf("deleted key resurrected: %q", v)
		}
		if reader.Stats.SpecGetFallbacks != 1 {
			t.Errorf("fallbacks = %d, want 1", reader.Stats.SpecGetFallbacks)
		}
		if reader.Stats.Misses != 1 {
			t.Errorf("misses = %d, want 1", reader.Stats.Misses)
		}
	})
	env.Run()
}

// TestSpecGetLeaseExpiryFallsBack pins tenantMode composition: a hinted
// key whose lease lapses must NOT be served speculatively — the
// validation rejects the expired image and the full plan applies the
// exact lease-as-miss semantics.
func TestSpecGetLeaseExpiryFallsBack(t *testing.T) {
	env := sim.NewEnv(4)
	cl := newSpecCluster(env, 1000, 256)
	cl.SetTenantQuota(1, 1<<40) // enables tenantMode
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.BindTenant(1)
		const ttl = 10 * sim.Millisecond
		c.SetTTL([]byte("k"), []byte("v"), ttl)
		if _, ok := c.Get([]byte("k")); !ok {
			t.Fatal("live lease missed")
		}
		if c.Stats.SpecGetHits != 1 {
			t.Errorf("live-lease spec hits = %d, want 1", c.Stats.SpecGetHits)
		}
		p.Sleep(ttl + sim.Millisecond)
		if _, ok := c.Get([]byte("k")); ok {
			t.Fatal("lapsed lease served")
		}
		if c.Stats.SpecGetFallbacks != 1 {
			t.Errorf("fallbacks = %d, want 1", c.Stats.SpecGetFallbacks)
		}
	})
	env.Run()
}

// TestMGetSpecDoorbellStaging pins the batched staging the tentpole
// requires: hinted keys' speculative READs and unhinted keys' bucket
// READs share the SAME first doorbell. An all-hinted all-valid batch is
// ONE doorbell of n READs; a mixed batch is two (the unhinted keys'
// object READs form the second), not three.
func TestMGetSpecDoorbellStaging(t *testing.T) {
	env := sim.NewEnv(5)
	cl := newSpecCluster(env, 1000, 256)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		other := cl.NewClient(p) // its Sets leave c without hints
		hinted := make([][]byte, 16)
		unhinted := make([][]byte, 16)
		for i := range hinted {
			hinted[i] = key(i)
			c.Set(hinted[i], value(i))
		}
		for i := range unhinted {
			unhinted[i] = key(100 + i)
			other.Set(unhinted[i], value(100+i))
		}

		before := cl.MN.Node.Stats
		vals, oks := c.MGet(hinted)
		after := cl.MN.Node.Stats
		for i := range hinted {
			if !oks[i] || !bytes.Equal(vals[i], value(i)) {
				t.Fatalf("hinted key %d: ok=%v", i, oks[i])
			}
		}
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 1 {
			t.Errorf("all-hinted MGet used %d doorbells, want 1", d)
		}
		if reads := after.Reads - before.Reads; reads != int64(len(hinted)) {
			t.Errorf("all-hinted MGet used %d READs, want %d", reads, len(hinted))
		}
		if c.Stats.SpecGetHits != int64(len(hinted)) {
			t.Errorf("spec hits = %d, want %d", c.Stats.SpecGetHits, len(hinted))
		}

		mixed := append(append([][]byte{}, hinted...), unhinted...)
		before = cl.MN.Node.Stats
		vals, oks = c.MGet(mixed)
		after = cl.MN.Node.Stats
		for i := range mixed {
			if !oks[i] {
				t.Fatalf("mixed key %d missed", i)
			}
		}
		_ = vals
		if d := after.DoorbellBatches - before.DoorbellBatches; d != 2 {
			t.Errorf("mixed MGet used %d doorbells, want 2 (spec READs share the first)", d)
		}
		if c.Stats.SpecGetFallbacks != 0 {
			t.Errorf("fallbacks = %d, want 0", c.Stats.SpecGetFallbacks)
		}
	})
	env.Run()
}

// TestSpecGetOverflowBucketHint is the regression test for the
// overflow-path fix: a key living in its BACKUP bucket (main bucket
// full) must still get a hint recorded on the full-walk hit, so its
// repeat reads reach one RTT like any other key's.
func TestSpecGetOverflowBucketHint(t *testing.T) {
	env := sim.NewEnv(6)
	cl := newSpecCluster(env, 1000, 256)
	env.Go("c", func(p *sim.Proc) {
		writer := cl.NewClient(p)
		reader := cl.NewClient(p)

		// Find SlotsPerBucket+1 keys sharing one main bucket: the last
		// insert overflows into its backup bucket.
		per := cl.Options().SlotsPerBucket
		byBucket := map[int][]int{}
		var colliding []int
		for i := 0; i < 100000 && colliding == nil; i++ {
			b := cl.Layout.MainBucket(hashtable.KeyHash(key(i)))
			byBucket[b] = append(byBucket[b], i)
			if len(byBucket[b]) == per+1 {
				colliding = byBucket[b]
			}
		}
		if colliding == nil {
			t.Fatal("no bucket collision found in 100000 keys")
		}
		for _, i := range colliding {
			writer.Set(key(i), value(i))
		}
		last := colliding[len(colliding)-1]
		kh := hashtable.KeyHash(key(last))
		if spillSlot(writer, kh, cl.Layout.MainBucket(kh)) {
			t.Skip("last insert did not overflow (history slot reclaimed)")
		}

		// First read: the full walk (reader has no hint) must record one.
		if v, ok := reader.Get(key(last)); !ok || !bytes.Equal(v, value(last)) {
			t.Fatalf("overflowed key unreadable: ok=%v", ok)
		}
		s0 := cl.MN.Node.Stats
		if _, ok := reader.Get(key(last)); !ok {
			t.Fatal("repeat read missed")
		}
		if reads := cl.MN.Node.Stats.Reads - s0.Reads; reads != 1 {
			t.Errorf("repeat read of overflowed key used %d READs, want 1", reads)
		}
		if reader.Stats.SpecGetHits != 1 {
			t.Errorf("spec hits = %d, want 1", reader.Stats.SpecGetHits)
		}
	})
	env.Run()
}

// spillSlot reports whether key hash kh still resolves to a live slot in
// bucket b (i.e. it did NOT overflow to its backup bucket).
func spillSlot(c *Client, kh uint64, b int) bool {
	fp := hashtable.Fingerprint(kh)
	for _, s := range c.ht.ReadBucket(b) {
		if !s.Atomic.IsEmpty() && !s.Atomic.IsHistory() && s.Atomic.FP() == fp {
			return true
		}
	}
	return false
}

// runSpecOrSeed drives one client through a deterministic mixed
// workload and returns every observation plus the run's virtual end
// time. slots=0 is the seed configuration (no location cache).
func runSpecOrSeed(t *testing.T, slots int, batched bool) ([]string, int64) {
	env := sim.NewEnv(9)
	opts := DefaultOptions(4000, 4000*320) // oversized: no evictions
	opts.LocCacheSlots = slots
	cl := NewCluster(env, opts)
	var out []string
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < 40; round++ {
			pairs := make([]KV, 8)
			for j := range pairs {
				k := rng.Intn(200)
				pairs[j] = KV{Key: key(k), Value: value(k + round)}
			}
			gets := make([][]byte, 16)
			for j := range gets {
				gets[j] = key(rng.Intn(300)) // beyond 200: guaranteed misses
			}
			dels := make([][]byte, 4)
			for j := range dels {
				dels[j] = key(rng.Intn(250))
			}
			if batched {
				c.MSet(pairs)
				vs, oks := c.MGet(gets)
				for j := range gets {
					if oks[j] {
						out = append(out, string(vs[j]))
					} else {
						out = append(out, "MISS")
					}
				}
				for _, ok := range c.MDelete(dels) {
					out = append(out, fmt.Sprintf("DEL=%v", ok))
				}
			} else {
				for _, kv := range pairs {
					c.Set(kv.Key, kv.Value)
				}
				for _, g := range gets {
					if v, ok := c.Get(g); ok {
						out = append(out, string(v))
					} else {
						out = append(out, "MISS")
					}
				}
				for _, d := range dels {
					out = append(out, fmt.Sprintf("DEL=%v", c.Delete(d)))
				}
			}
		}
		if slots > 0 && c.Stats.SpecGetHits == 0 {
			t.Error("workload never took the speculative path")
		}
	})
	env.Run()
	return out, env.Now()
}

// TestSpecGetObservablyEquivalent pins the correctness half of the perf
// claim: with the location cache on, serial and batched drivers return
// exactly what the cache-off (seed-shaped) run returns on the same
// deterministic workload — speculation changes latencies, never values.
// It also pins the perf direction itself: the read-heavy cache-on runs
// finish in strictly less virtual time than their cache-off twins.
func TestSpecGetObservablyEquivalent(t *testing.T) {
	seedSerial, tSeedSerial := runSpecOrSeed(t, 0, false)
	seedBatch, tSeedBatch := runSpecOrSeed(t, 0, true)
	specSerial, tSpecSerial := runSpecOrSeed(t, 256, false)
	specBatch, tSpecBatch := runSpecOrSeed(t, 256, true)

	for name, got := range map[string][]string{
		"seed-batched": seedBatch, "spec-serial": specSerial, "spec-batched": specBatch,
	} {
		if len(got) != len(seedSerial) {
			t.Fatalf("%s: op count %d, want %d", name, len(got), len(seedSerial))
		}
		for i := range got {
			if got[i] != seedSerial[i] {
				t.Fatalf("%s: op %d = %q, seed-serial = %q", name, i, got[i], seedSerial[i])
			}
		}
	}
	if tSpecSerial >= tSeedSerial {
		t.Errorf("serial: cache-on took %d ns >= cache-off %d ns", tSpecSerial, tSeedSerial)
	}
	if tSpecBatch >= tSeedBatch {
		t.Errorf("batched: cache-on took %d ns >= cache-off %d ns", tSpecBatch, tSeedBatch)
	}
}
