// Package exec is the verb-plan executor: the single engine behind
// Ditto's serial, batched, and migration I/O.
//
// The paper's client-centric design (§4.1) makes every cache operation a
// short, fixed sequence of one-sided verbs composed client-side — bucket
// READ(s), object READ(s), an object WRITE, a publishing CAS — with
// fallback edges where a snapshot can go stale or a CAS can lose a race.
// This package lets an operation be expressed ONCE as such a staged verb
// plan (a Plan), and runs any set of plans under a pluggable Strategy:
//
//   - Serial: one verb per round trip, traversing each plan lazily — a
//     stage short-circuits as soon as its outcome is known (a Get that
//     hits in the main bucket never reads the backup bucket). This is the
//     paper's per-key critical path and its verb budget.
//   - Doorbell: plans advance in lock-step rounds; each round gathers
//     every plan's next verbs and posts them per endpoint with ONE RNIC
//     doorbell (rdma.Endpoint.PostBatch), so the whole round costs its
//     RNIC service time plus a single RTT. Plans traverse eagerly (both
//     candidate buckets at once) so a round is one pipeline stage across
//     the batch. Identical READs posted by different plans in the same
//     round are issued once and fanned out.
//
// Plans whose doorbell attempt hits a complication (stale snapshot, lost
// CAS, full bucket) simply finish with that outcome; their drivers demote
// them to the serial retry path, which re-runs the SAME plan definition
// under the Serial strategy — so batched and sequential execution are
// observably equivalent by construction, and the verb sequences live in
// exactly one place.
package exec

import "ditto/internal/rdma"

// Strategy selects how a set of plans traverses its verb stages. The
// strategies differ ONLY in traversal shape and round-trip overlap —
// every plan reaches the same outcome under either (complications
// included), which is what lets drivers demote a doorbell plan to the
// serial retry path without changing observable behaviour.
type Strategy int

// The two execution strategies.
const (
	// Serial runs plans one at a time, one synchronous verb per round
	// trip, with lazy (short-circuiting) stage traversal.
	Serial Strategy = iota
	// Doorbell runs plans in lock-step rounds, posting each round's verbs
	// as one doorbell batch per endpoint, with eager stage traversal.
	Doorbell
)

// String returns the strategy's lowercase name ("serial"/"doorbell"),
// stable for use in subtest names and bench output.
func (s Strategy) String() string {
	if s == Doorbell {
		return "doorbell"
	}
	return "serial"
}

// Verb is one one-sided verb of a plan stage, addressed to the endpoint
// that must issue it (plans may span endpoints: a migration reads and
// CASes the source node while writing the destination, and a replica
// fan-out writes several destinations at once). A Verb is immutable
// once emitted by Step: the executor may issue it in any round-trip
// order relative to OTHER plans' verbs, but never reorders verbs within
// one plan's emission.
type Verb struct {
	EP *rdma.Endpoint
	Op rdma.BatchOp
}

// Result is the completion of one Verb. Results are delivered to Absorb
// in the same order as the Verbs of the group that produced them —
// Result[i] completes Verb[i] — regardless of strategy.
type Result = rdma.BatchResult

// Plan is one cache operation attempt expressed as staged verb groups.
// The executor repeatedly calls Step for the next group, issues it under
// the strategy, and feeds the completions to Absorb; a nil Step ends the
// plan (its outcome is plan-specific state the driver inspects).
//
// eager selects the batched shape of a stage — e.g. read BOTH candidate
// buckets, then ALL candidate objects, as one group each — over the
// serial shape, which yields the smallest group whose result can
// short-circuit the rest (one bucket, then one object at a time). This
// flag is the ONLY difference between how the two strategies traverse a
// plan; everything else (what is read, how results are interpreted,
// which fallback edge is taken) is shared.
type Plan interface {
	Step(eager bool) []Verb
	Absorb(res []Result)
}

// Run executes the plans under the strategy until every plan finishes
// (Step returns an empty group). Under Serial the plans run one after
// another to completion; under Doorbell they advance together in
// lock-step rounds. Either way, every plan's Absorb has seen the
// completion of every verb it emitted by the time Run returns.
func Run(s Strategy, plans ...Plan) {
	if s == Doorbell {
		RunDoorbell(plans)
		return
	}
	for _, p := range plans {
		RunSerial(p)
	}
}

// RunSerial drives one plan to completion with synchronous verbs: each
// verb of a group costs queueing plus one RTT, exactly as the hand-written
// per-key paths did.
func RunSerial(p Plan) {
	for {
		vs := p.Step(false)
		if len(vs) == 0 {
			return
		}
		res := make([]Result, len(vs))
		for i, v := range vs {
			res[i] = issueSync(v)
		}
		p.Absorb(res)
	}
}

// issueSync issues one verb through the endpoint's synchronous API.
func issueSync(v Verb) Result {
	switch v.Op.Kind {
	case rdma.BatchRead:
		return Result{Data: v.EP.ReadInto(v.Op.Addr, v.Op.Len, v.Op.Buf)}
	case rdma.BatchWrite:
		v.EP.Write(v.Op.Addr, v.Op.Data)
		return Result{}
	case rdma.BatchCAS:
		old, swapped := v.EP.CAS(v.Op.Addr, v.Op.Expect, v.Op.Swap)
		return Result{Old: old, Swapped: swapped}
	case rdma.BatchFAA:
		return Result{Old: v.EP.FAA(v.Op.Addr, v.Op.Delta)}
	}
	panic("exec: unknown verb kind")
}

// Runner is the pooled form of Run: one per client (or reclaimer), so
// its scratch is single-proc-owned and steady-state execution allocates
// nothing. The free functions Run/RunSerial/RunDoorbell remain as the
// allocate-per-call form for tests and cold paths.
//
// Plans driven through a Runner must not retain the []Result slice
// passed to Absorb past the Absorb call — it is recycled for the next
// stage. (Result.Data buffers are not recycled by the runner; their
// lifetime is whatever the plan arranged via BatchOp.Buf.)
type Runner struct {
	Serial   SerialRunner
	Doorbell DoorbellRunner
	one      [1]Plan
}

// RunOne drives a single plan under the strategy, like Run(s, p) but
// through the pooled runners.
func (r *Runner) RunOne(s Strategy, p Plan) {
	if s == Doorbell {
		r.one[0] = p
		r.Doorbell.Run(r.one[:])
		r.one[0] = nil
		return
	}
	r.Serial.Run(p)
}

// RunPlans drives a set of plans under the strategy, like Run(s,
// plans...) but through the pooled runners.
func (r *Runner) RunPlans(s Strategy, plans []Plan) {
	if s == Doorbell {
		r.Doorbell.Run(plans)
		return
	}
	for _, p := range plans {
		r.Serial.Run(p)
	}
}

// SerialRunner is RunSerial with a stack of reusable per-stage result
// buffers. The stack makes it re-entrant: an Absorb that starts a nested
// serial run (a Set falling into inline eviction) pops its own buffers
// and returns them before the outer stage resumes.
type SerialRunner struct {
	free [][]Result
}

// Run drives one plan to completion as RunSerial does, without the
// per-stage allocation.
func (r *SerialRunner) Run(p Plan) {
	for {
		vs := p.Step(false)
		if len(vs) == 0 {
			return
		}
		var res []Result
		if n := len(r.free); n > 0 {
			res, r.free = r.free[n-1][:0], r.free[:n-1]
		}
		for _, v := range vs {
			res = append(res, issueSync(v))
		}
		p.Absorb(res)
		r.free = append(r.free, res)
	}
}

// slot maps one plan verb to its position in an endpoint batch.
type slot struct {
	ep  *rdma.Endpoint
	idx int
}

// epBatch accumulates one endpoint's ops for a round.
type epBatch struct {
	ep    *rdma.Endpoint
	ops   []rdma.BatchOp
	reads map[readKey]int // dedup: identical READs issue once
	res   []Result
}

// readKey identifies a read for within-round deduplication.
type readKey struct {
	addr uint64
	len  int
}

// RunDoorbell drives the plans in lock-step rounds. Each round collects
// every unfinished plan's next verb group, posts one doorbell batch per
// endpoint (endpoints in first-use order, verbs in plan order) with the
// round trips overlapped across endpoints too (rdma.PostMulti — queue
// pairs to different nodes are independent, so a round spanning the
// migration source and several destinations still costs ~one RTT),
// scatters the completions back, and lets every plan absorb before the
// next round begins. Plans at different stages coexist in a round — a
// plan that skips a stage (no candidate objects to read) posts its next
// stage's verbs alongside the others', which only merges doorbells,
// never reorders one plan's own verbs. Identical READs across plans are
// issued once; WRITE/CAS/FAA are never deduplicated.
func RunDoorbell(plans []Plan) {
	type pending struct {
		plan  Plan
		slots []slot
	}
	active := make([]Plan, 0, len(plans))
	active = append(active, plans...)
	for len(active) > 0 {
		var round []pending
		var order []*epBatch
		batches := make(map[*rdma.Endpoint]*epBatch)
		next := active[:0]
		for _, p := range active {
			vs := p.Step(true)
			if len(vs) == 0 {
				continue // plan finished
			}
			pd := pending{plan: p, slots: make([]slot, len(vs))}
			for i, v := range vs {
				b := batches[v.EP]
				if b == nil {
					b = &epBatch{ep: v.EP, reads: make(map[readKey]int)}
					batches[v.EP] = b
					order = append(order, b)
				}
				if v.Op.Kind == rdma.BatchRead {
					k := readKey{addr: v.Op.Addr, len: v.Op.Len}
					if j, seen := b.reads[k]; seen {
						pd.slots[i] = slot{ep: v.EP, idx: j}
						continue
					}
					b.reads[k] = len(b.ops)
				}
				pd.slots[i] = slot{ep: v.EP, idx: len(b.ops)}
				b.ops = append(b.ops, v.Op)
			}
			round = append(round, pd)
			next = append(next, p)
		}
		if len(round) == 0 {
			return
		}
		posts := make([]rdma.EndpointBatch, len(order))
		for i, b := range order {
			posts[i] = rdma.EndpointBatch{EP: b.ep, Ops: b.ops}
		}
		for i, res := range rdma.PostMulti(posts) {
			order[i].res = res
		}
		for _, pd := range round {
			res := make([]Result, len(pd.slots))
			for i, s := range pd.slots {
				res[i] = batches[s.ep].res[s.idx]
			}
			pd.plan.Absorb(res)
		}
		active = next
	}
}

// dbPending is one plan's share of a pooled doorbell round: its verbs
// occupy slots [lo, hi) of the runner's slot arena. Ranges (not
// subslices) because the arena may grow while later plans append.
type dbPending struct {
	plan   Plan
	lo, hi int
}

// DoorbellRunner is RunDoorbell with every piece of round state —
// the active set, the per-endpoint batches and their result slices, the
// slot arena, the post list — retained across runs, so a steady-state
// round allocates nothing (results land in place via
// rdma.PostMultiInPlace). Re-entrant runs (an Absorb that falls into
// doorbell-strategy eviction) take the classic allocating path rather
// than clobbering the in-flight round's state.
type DoorbellRunner struct {
	busy    bool
	active  []Plan
	round   []dbPending
	order   []*epBatch
	batches map[*rdma.Endpoint]*epBatch
	freeEB  []*epBatch
	posts   []rdma.EndpointBatch
	slots   []slot
	res     []Result
}

// Run drives the plans exactly as RunDoorbell does — same rounds, same
// dedup, same posting order — reusing the runner's scratch.
func (r *DoorbellRunner) Run(plans []Plan) {
	if r.busy {
		RunDoorbell(plans)
		return
	}
	r.busy = true
	//dittolint:allow hotalloc (deferred busy-reset closure is open-coded by the compiler and stack-allocated; kept for panic safety)
	defer func() { r.busy = false }()
	if r.batches == nil {
		//dittolint:allow hotalloc (once-per-runner lazy init, not per call)
		r.batches = make(map[*rdma.Endpoint]*epBatch)
	}
	r.active = append(r.active[:0], plans...)
	active := r.active
	for len(active) > 0 {
		r.round = r.round[:0]
		r.slots = r.slots[:0]
		r.freeEB = append(r.freeEB, r.order...)
		r.order = r.order[:0]
		clear(r.batches)
		next := active[:0]
		for _, p := range active {
			vs := p.Step(true)
			if len(vs) == 0 {
				continue // plan finished
			}
			lo := len(r.slots)
			for _, v := range vs {
				b := r.batches[v.EP]
				if b == nil {
					b = r.getEpBatch(v.EP)
					r.batches[v.EP] = b
					r.order = append(r.order, b)
				}
				if v.Op.Kind == rdma.BatchRead {
					k := readKey{addr: v.Op.Addr, len: v.Op.Len}
					if j, seen := b.reads[k]; seen {
						r.slots = append(r.slots, slot{ep: v.EP, idx: j})
						continue
					}
					b.reads[k] = len(b.ops)
				}
				r.slots = append(r.slots, slot{ep: v.EP, idx: len(b.ops)})
				b.ops = append(b.ops, v.Op)
			}
			r.round = append(r.round, dbPending{plan: p, lo: lo, hi: len(r.slots)})
			next = append(next, p)
		}
		if len(r.round) == 0 {
			break
		}
		r.posts = r.posts[:0]
		for _, b := range r.order {
			r.posts = append(r.posts, rdma.EndpointBatch{EP: b.ep, Ops: b.ops, Res: b.res[:0]})
		}
		rdma.PostMultiInPlace(r.posts)
		for i, b := range r.order {
			b.res = r.posts[i].Res
		}
		for _, pd := range r.round {
			res := r.res[:0]
			for _, s := range r.slots[pd.lo:pd.hi] {
				res = append(res, r.batches[s.ep].res[s.idx])
			}
			pd.plan.Absorb(res)
			r.res = res[:0]
		}
		active = next
	}
	// Drop plan references so finished plans are not pinned by the
	// runner between operations (they go back to the caller's pool).
	clear(r.active[:cap(r.active)])
	r.active = r.active[:0]
	for i := range r.round {
		r.round[i].plan = nil
	}
}

// getEpBatch recycles an endpoint batch from the free list or makes one.
func (r *DoorbellRunner) getEpBatch(ep *rdma.Endpoint) *epBatch {
	if n := len(r.freeEB); n > 0 {
		b := r.freeEB[n-1]
		r.freeEB = r.freeEB[:n-1]
		b.ep = ep
		b.ops = b.ops[:0]
		b.res = b.res[:0]
		clear(b.reads)
		return b
	}
	//dittolint:allow hotalloc (free-list miss: pool growth, amortized to zero at steady state)
	return &epBatch{ep: ep, reads: make(map[readKey]int)}
}
