// Fixture runner: a stdlib mirror of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one directory under internal/analysis/testdata holding a
// small package that exercises one analyzer: every line that must be
// flagged carries a trailing
//
//	// want `regexp`
//
// comment (backquoted regular expression matched against the
// diagnostic message), and every sanctioned-pattern line carries none.
// RunFixture loads the directory under a caller-chosen import path —
// package-scoped analyzers (simdet, typederr) key on real paths like
// ditto/internal/core — runs the analyzer, and fails the test on any
// unmatched expectation or unexpected diagnostic.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// wantRe extracts the backquoted pattern of a "// want `...`" comment.
var wantRe = regexp.MustCompile("^want\\s+`(.*)`$")

// expectation is one parsed want comment.
type expectation struct {
	pos     token.Position
	pattern *regexp.Regexp
	matched bool
}

// TB is the subset of *testing.T the fixture runner needs (kept
// abstract so the framework's own tests can capture failures).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads fixture directory dir as a package with import path
// asPath, runs the analyzer over it, and checks its diagnostics against
// the fixture's want comments. The loader should be shared across a
// test binary's fixtures (NewLoader per call re-type-checks the stdlib
// from source).
func RunFixture(t TB, l *Loader, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}
	expects, err := parseWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", e.pos, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation on d's line whose pattern
// matches d's message.
func claim(expects []*expectation, d Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.pos.Filename != d.Pos.Filename || e.pos.Line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants collects the fixture's want comments.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want") {
					continue
				}
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					return nil, fmt.Errorf("%s: malformed want comment %q (use // want `regexp`)", fset.Position(c.Pos()), c.Text)
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern: %v", fset.Position(c.Pos()), err)
				}
				out = append(out, &expectation{pos: fset.Position(c.Pos()), pattern: re})
			}
		}
	}
	return out, nil
}
